// Command macawsim regenerates the paper's evaluation tables.
//
// Usage:
//
//	macawsim [-table table1..table11|all] [-chaos] [-audit] [-total SECONDS] [-warmup SECONDS] [-seed N] [-paper]
//	         [-jobs N] [-shards N] [-metrics FILE] [-tracejson FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Each table prints the paper's reported packets-per-second next to this
// reproduction's measurements. -paper selects the paper's 500 s run length;
// the default is a faster 120 s run that exhibits the same shapes. -jobs N
// runs the independent simulations on N workers (capped at the core count);
// every run is seeded before dispatch, so the output is byte-identical to
// the serial (-jobs 1) path. -shards N parallelizes *within* each eligible
// simulation: the building's causally independent radio components — proved
// disconnected by the medium's negligibility-range certificate — execute on
// separate event heaps across up to N goroutines and merge canonically, so
// output is byte-identical to -shards 1. Runs the sharded engine cannot
// reproduce exactly (scenario mods, -metrics, -tracejson) stay serial
// automatically.
// -chaos replaces the table set with the robustness table: MACA vs MACAW
// under injected faults (burst loss, asymmetric links, crash/restart,
// mobility), each run swept by the FSM liveness watchdog.
// -audit attaches the protocol-conformance oracle to every run: each station
// is checked online against the paper's Appendix A/B rules (exchange
// ordering, deferral, backoff headers, delivery), and any violation aborts
// with a replayable report naming the seed, station, and rule. The oracle is
// passive — audited output is byte-identical to an unaudited run.
// -metrics FILE writes a JSON document of per-station and per-stream metrics
// (delay histograms, backoff time-series, FSM residency, queue depths) for
// every run; -tracejson FILE writes every run's MAC-internal events as JSON
// Lines for cmd/macawtrace -summarize. Both collectors are passive: the
// table output is byte-identical with or without them, at any -jobs value.
// -sweep "kind=v1,v2;…" replaces the table set with a warm-started parameter
// sweep: each protocol simulates its warmup once, and that warmed network is
// forked — state adopted and byte-verified — into one variant per typed
// delta, which applies its parameter change at the warmup barrier and runs
// only the tail. The rendered table is byte-identical to -sweep-cold, which
// simulates every variant from scratch. -warm-cache DIR persists each warm
// state as a snapshot keyed by the delta-free configuration: later sweeps
// byte-verify their warmup against it (divergence fails closed), and stale
// or corrupt entries are rewarmed and overwritten.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"macaw/internal/experiments"
	"macaw/internal/metrics"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
	"macaw/internal/trace"
)

func main() {
	table := flag.String("table", "all", "experiment to regenerate (table1..table11, ext-*, all, or ext)")
	total := flag.Float64("total", 0, "simulated seconds (0 = preset)")
	warmup := flag.Float64("warmup", 0, "warmup seconds excluded from measurement (0 = preset)")
	seed := flag.Int64("seed", 1, "random seed")
	paper := flag.Bool("paper", false, "use the paper's 500s/50s run length")
	format := flag.String("format", "text", "output format: text or csv")
	jobs := flag.Int("jobs", 1, "number of simulations to run concurrently (output is identical for any value)")
	shards := flag.Int("shards", 1, "max parallel event heaps per simulation: spatially independent radio components run concurrently (output is identical for any value)")
	chaos := flag.Bool("chaos", false, "emit the fault-injection robustness table instead of the paper tables")
	auditFlag := flag.Bool("audit", false, "check every run against the paper's protocol rules; violations abort with a replayable report")
	metricsOut := flag.String("metrics", "", "write per-station/per-stream metrics for every run as JSON to this file")
	traceOut := flag.String("tracejson", "", "write every run's MAC events as JSON Lines to this file")
	traceMax := flag.Int("tracemax", experiments.DefaultTraceMax, "max trace events recorded per run with -tracejson (overflow is counted, not kept)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	checkEvery := flag.Float64("checkpoint-every", 0, "write a snapshot of every run each N simulated seconds (0 with -checkpoint-dir = total/8)")
	checkDir := flag.String("checkpoint-dir", "", "directory for snapshot files and the completed-run manifest (sweeps resume past runs already in the manifest)")
	restorePath := flag.String("restore", "", "restore this snapshot file: replay its run to the barrier, verify bit-identical state, and continue (ignores -table)")
	sweepSpec := flag.String("sweep", "", "run a warm-started parameter sweep instead of the tables: \"kind=v1,v2[;kind2=v3,…]\" over typed deltas (backoff.min, backoff.max, mild.inc, mild.dec, load.rate, retry.limit); one warmup per protocol is forked into every variant (ignores -table)")
	sweepCold := flag.Bool("sweep-cold", false, "with -sweep, run every variant from scratch instead of forking a warmed network (same table, no speedup; for measuring the warm-start win)")
	warmCache := flag.String("warm-cache", "", "with -sweep, directory of warm-state snapshots: warmed state is byte-verified against the cached entry (divergence fails closed); missing or corrupt entries are rewarmed and rewritten")
	warmCacheMax := flag.Int("warm-cache-max", 0, "with -warm-cache, keep at most N warm snapshots, evicting the oldest (0 = unbounded)")
	flag.Parse()

	if err := validateFlags(flagSet{
		sweep: *sweepSpec, restore: *restorePath,
		warmCache: *warmCache, warmCacheMax: *warmCacheMax, sweepCold: *sweepCold,
		checkEvery: *checkEvery, shards: *shards,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: %v\n", err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macawsim: -memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "macawsim: -memprofile: %v\n", err)
				os.Exit(2)
			}
		}()
	}

	cfg := experiments.Quick()
	if *paper {
		cfg = experiments.Paper()
	}
	if *total > 0 {
		cfg.Total = sim.FromSeconds(*total)
	}
	if *warmup > 0 {
		cfg.Warmup = sim.FromSeconds(*warmup)
	}
	cfg.Seed = *seed
	cfg.Audit = *auditFlag
	cfg.Shards = *shards
	if *metricsOut != "" {
		cfg.Metrics = metrics.NewSink()
	}
	if *traceOut != "" {
		cfg.Trace = trace.NewJSONLSink()
		cfg.TraceMax = *traceMax
	}
	if cfg.Warmup >= cfg.Total {
		fmt.Fprintln(os.Stderr, "macawsim: warmup must be shorter than total")
		os.Exit(2)
	}
	if *checkEvery > 0 || *checkDir != "" || *restorePath != "" {
		cfg.Checkpoint = checkpointPlan(*checkEvery, *checkDir, cfg.Total)
	}

	if *restorePath != "" {
		restoreAndContinue(*restorePath, cfg, *format)
		return
	}

	if *sweepSpec != "" {
		runSweep(cfg.WithRunner(experiments.NewRunner(*jobs)), *sweepSpec, experiments.SweepOptions{
			CacheDir: *warmCache, CacheMax: *warmCacheMax, Cold: *sweepCold,
		}, *format)
		return
	}

	var gens []experiments.Generator
	switch {
	case *chaos:
		gens = []experiments.Generator{experiments.ChaosGenerator()}
	default:
		gens = tableGens(*table)
	}

	// The serial and parallel paths produce the same tables in the same
	// order; -jobs only changes how many simulations are in flight. The
	// runner is used even at -jobs 1 so a failed run reports which
	// (table, seed) died instead of crashing from a worker goroutine.
	tabs, err := experiments.NewRunner(*jobs).Tables(gens, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: %v\n", err)
		os.Exit(1)
	}

	if cfg.Metrics != nil {
		if err := writeFile(*metricsOut, cfg.Metrics.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: -metrics: %v\n", err)
			os.Exit(2)
		}
	}
	if cfg.Trace != nil {
		if err := writeFile(*traceOut, cfg.Trace.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: -tracejson: %v\n", err)
			os.Exit(2)
		}
		if d := cfg.Trace.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "macawsim: -tracejson: %d events beyond the per-run cap (%d) were dropped; raise -tracemax to keep them\n", d, cfg.TraceMax)
		}
	}

	if *format == "csv" {
		for _, tab := range tabs {
			fmt.Printf("# %s\n%s\n", tab.ID, tab.CSV())
		}
		return
	}
	fmt.Printf("MACAW reproduction — %gs runs, %gs warmup, seed %d\n\n",
		cfg.Total.Seconds(), cfg.Warmup.Seconds(), cfg.Seed)
	for _, tab := range tabs {
		fmt.Println(tab.Render())
	}
}

// checkpointPlan builds the CLI's checkpoint plan: periodic snapshot
// barriers, an optional snapshot directory with a completed-run manifest
// (sweeps resume past everything recorded there), and a SIGINT/SIGTERM
// handler that flushes one final checkpoint before exiting.
func checkpointPlan(everySec float64, dir string, total sim.Duration) *experiments.CheckpointPlan {
	plan := &experiments.CheckpointPlan{Every: sim.FromSeconds(everySec)}
	if plan.Every <= 0 {
		plan.Every = total / 8
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: -checkpoint-dir: %v\n", err)
			os.Exit(2)
		}
		plan.Dir = dir
		man, err := snapshot.OpenManifest(filepath.Join(dir, "manifest.bin"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "macawsim: manifest: %v; starting a fresh ledger\n", err)
		}
		plan.Manifest = man
		if man.Len() > 0 {
			fmt.Fprintf(os.Stderr, "macawsim: resuming: %d completed runs already in the manifest\n", man.Len())
		}
	}
	plan.OnAbort = func(last string) {
		if last != "" {
			fmt.Fprintf(os.Stderr, "macawsim: interrupted; final checkpoint: %s\n", last)
		} else {
			fmt.Fprintln(os.Stderr, "macawsim: interrupted before the first checkpoint barrier")
		}
		os.Exit(130)
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		plan.RequestStop()
		<-sigs // a second signal exits without waiting for a barrier
		os.Exit(130)
	}()
	return plan
}

// restoreAndContinue implements -restore: decode the snapshot (typed errors,
// never a panic), replay its run to the barrier, verify the replayed state
// is bit-identical to the stored inventory, and continue to completion.
func restoreAndContinue(path string, cfg experiments.RunConfig, format string) {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: -restore: %v\n", err)
		os.Exit(2)
	}
	tab, err := experiments.ReplayRun(snap, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: -restore: %v\n", err)
		os.Exit(1)
	}
	if format == "csv" {
		fmt.Printf("# %s\n%s\n", tab.ID, tab.CSV())
		return
	}
	fmt.Printf("MACAW reproduction — restored %s at t=%gs, seed %d\n\n",
		snap.Run, snap.Barrier.Seconds(), snap.Seed)
	fmt.Println(tab.Render())
}

// runSweep implements -sweep: parse the variant spec, execute the sweep
// grid (warm-started unless -sweep-cold), and render the variants-by-
// protocol throughput and fairness tables with a one-line execution summary
// on stderr.
func runSweep(cfg experiments.RunConfig, spec string, opts experiments.SweepOptions, format string) {
	variants, err := experiments.ParseSweepSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: -sweep: %v\n", err)
		os.Exit(2)
	}
	tabs, info, err := experiments.RunSweepTables(cfg, variants, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawsim: -sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "macawsim: sweep: %d variants x %d protocols (%d warmups, %d forks, %d cold runs, cache %d hits / %d writes)\n",
		info.Variants, info.Protocols, info.Warmups, info.Forks, info.ColdRuns, info.CacheHits, info.CacheWrites)
	if format == "csv" {
		for _, tab := range tabs {
			fmt.Printf("# %s\n%s\n", tab.ID, tab.CSV())
		}
		return
	}
	fmt.Printf("MACAW reproduction — %gs runs, %gs warmup, seed %d\n\n",
		cfg.Total.Seconds(), cfg.Warmup.Seconds(), cfg.Seed)
	for _, tab := range tabs {
		fmt.Println(tab.Render())
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tableGens resolves the -table selector to generators, exiting on a typo.
func tableGens(table string) []experiments.Generator {
	var gens []experiments.Generator
	switch table {
	case "all":
		gens = append(experiments.All(), experiments.Extensions()...)
	case "ext":
		gens = experiments.Extensions()
	default:
		g, ok := experiments.ByID(table)
		if !ok {
			for _, e := range experiments.Extensions() {
				if e.ID == table {
					g, ok = e, true
					break
				}
			}
		}
		if !ok {
			ids := experiments.IDs()
			for _, e := range experiments.Extensions() {
				ids = append(ids, e.ID)
			}
			fmt.Fprintf(os.Stderr, "macawsim: unknown experiment %q; available: %s\n",
				table, strings.Join(ids, ", "))
			os.Exit(2)
		}
		gens = []experiments.Generator{g}
	}
	return gens
}
