package main

import "fmt"

// This file validates flag combinations immediately after flag.Parse, before
// any work (or file creation) happens. Three combinations are contradictory
// and historically failed silently — -restore returned before the -sweep
// branch was ever reached, the warm-cache knobs were read only inside the
// sweep path, and -checkpoint-every forced runs onto the serial engine so
// -shards was ignored. Each now fails closed with a FlagConflictError naming
// both flags, so the caller learns which half of the contradiction to drop.

// FlagConflictError reports two flags that cannot be combined (or a flag
// whose prerequisite flag is missing). Flag is the flag being rejected;
// Other is the flag it conflicts with or requires.
type FlagConflictError struct {
	Flag   string // the rejected flag, e.g. "-restore"
	Other  string // the flag it conflicts with or requires, e.g. "-sweep"
	Reason string // one clause explaining the contradiction
}

func (e *FlagConflictError) Error() string {
	return fmt.Sprintf("flag %s conflicts with %s: %s", e.Flag, e.Other, e.Reason)
}

// flagSet is the subset of parsed flag state the validator inspects.
type flagSet struct {
	sweep        string
	restore      string
	warmCache    string
	warmCacheMax int
	sweepCold    bool
	checkEvery   float64
	shards       int
}

// validateFlags rejects contradictory flag combinations with a typed error
// naming both flags. It runs before any flag takes effect, so a rejected
// invocation leaves no partial output behind.
func validateFlags(f flagSet) error {
	if f.sweep != "" && f.restore != "" {
		return &FlagConflictError{Flag: "-restore", Other: "-sweep",
			Reason: "a restored run replays one recorded table; a sweep builds its own grid"}
	}
	if f.warmCache != "" && f.sweep == "" {
		return &FlagConflictError{Flag: "-warm-cache", Other: "-sweep",
			Reason: "the warm-state cache only feeds a sweep's warmup"}
	}
	if f.warmCacheMax != 0 && f.sweep == "" {
		return &FlagConflictError{Flag: "-warm-cache-max", Other: "-sweep",
			Reason: "the warm-state cache only feeds a sweep's warmup"}
	}
	if f.sweepCold && f.sweep == "" {
		return &FlagConflictError{Flag: "-sweep-cold", Other: "-sweep",
			Reason: "cold execution is a mode of the sweep grid"}
	}
	if f.checkEvery > 0 && f.shards > 1 {
		return &FlagConflictError{Flag: "-checkpoint-every", Other: "-shards",
			Reason: "checkpoint barriers require the serial event engine"}
	}
	return nil
}
