package main

import (
	"errors"
	"strings"
	"testing"
)

// TestFlagConflictsFailClosed pins the three contradictory flag combinations
// that used to fail silently: -restore returned before the -sweep branch was
// reached, the warm-cache knobs were only read inside the sweep path, and
// -checkpoint-every forced the serial engine so -shards was ignored. Each
// must now produce a FlagConflictError naming both flags.
func TestFlagConflictsFailClosed(t *testing.T) {
	cases := []struct {
		name       string
		fs         flagSet
		flag, with string
	}{
		{"sweep+restore", flagSet{sweep: "mild.dec=2", restore: "snap.bin"}, "-restore", "-sweep"},
		{"warm-cache without sweep", flagSet{warmCache: "cache/"}, "-warm-cache", "-sweep"},
		{"warm-cache-max without sweep", flagSet{warmCacheMax: 4}, "-warm-cache-max", "-sweep"},
		{"sweep-cold without sweep", flagSet{sweepCold: true}, "-sweep-cold", "-sweep"},
		{"checkpoint-every+shards", flagSet{checkEvery: 10, shards: 4}, "-checkpoint-every", "-shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.fs)
			if err == nil {
				t.Fatalf("validateFlags(%+v) = nil, want FlagConflictError", tc.fs)
			}
			var fc *FlagConflictError
			if !errors.As(err, &fc) {
				t.Fatalf("validateFlags(%+v) = %T %v, want *FlagConflictError", tc.fs, err, err)
			}
			if fc.Flag != tc.flag || fc.Other != tc.with {
				t.Fatalf("conflict = (%s, %s), want (%s, %s)", fc.Flag, fc.Other, tc.flag, tc.with)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.flag) || !strings.Contains(msg, tc.with) {
				t.Fatalf("error %q does not name both %s and %s", msg, tc.flag, tc.with)
			}
		})
	}
}

// TestFlagCombinationsAllowed pins the combinations that must keep working:
// the validator only rejects contradictions, never plain usage.
func TestFlagCombinationsAllowed(t *testing.T) {
	cases := []struct {
		name string
		fs   flagSet
	}{
		{"defaults", flagSet{shards: 1}},
		{"sweep alone", flagSet{sweep: "mild.dec=2", shards: 1}},
		{"sweep with cache and cold", flagSet{sweep: "cw.min=7", warmCache: "c/", warmCacheMax: 8, sweepCold: true, shards: 1}},
		{"restore alone", flagSet{restore: "snap.bin", shards: 1}},
		{"checkpoint serial", flagSet{checkEvery: 10, shards: 1}},
		{"shards without checkpoint", flagSet{shards: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := validateFlags(tc.fs); err != nil {
				t.Fatalf("validateFlags(%+v) = %v, want nil", tc.fs, err)
			}
		})
	}
}
