// Command macawtrace runs one of the paper's configurations and prints a
// packet-level trace: every clean reception (including overhears) and every
// corrupted reception at an intended destination, per station.
//
// Usage:
//
//	macawtrace [-figure figureN] [-proto maca|macaw|csma] [-seconds N] [-from N] [-seed N] [-json] [-carrier]
package main

import (
	"flag"
	"fmt"
	"os"

	"macaw/internal/core"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/topo"
	"macaw/internal/trace"
)

func main() {
	figure := flag.String("figure", "figure5", "topology to run")
	proto := flag.String("proto", "macaw", "protocol: maca, macaw or csma")
	seconds := flag.Float64("seconds", 0.5, "trace window length in seconds")
	from := flag.Float64("from", 0, "trace window start in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	asJSON := flag.Bool("json", false, "emit the trace as JSON")
	carrier := flag.Bool("carrier", false, "include carrier-sense transitions")
	flag.Parse()

	l, ok := topo.All()[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "macawtrace: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	var f core.MACFactory
	switch *proto {
	case "maca":
		f = core.MACAFactory()
	case "macaw":
		f = core.MACAWFactory(macaw.DefaultOptions())
	case "csma":
		f = core.CSMAFactory(csma.Options{ACK: true})
	default:
		fmt.Fprintf(os.Stderr, "macawtrace: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	n := core.NewNetwork(*seed)
	if err := l.Build(n, f); err != nil {
		fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder(n.Sim)
	rec.From = sim.FromSeconds(*from)
	rec.To = rec.From + sim.FromSeconds(*seconds)
	rec.Carrier = *carrier
	rec.AttachAll(n)

	res := n.Run(rec.To+sim.Second, 0)
	if *asJSON {
		if err := rec.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# %s over %s, trace [%gs, %gs)\n", *proto, l.Name, rec.From.Seconds(), rec.To.Seconds())
	rec.WriteText(os.Stdout)
	fmt.Println()
	fmt.Println(res)
}
