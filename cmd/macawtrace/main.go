// Command macawtrace runs one of the paper's configurations and prints a
// packet-level trace: every clean reception (including overhears) and every
// corrupted reception at an intended destination, per station.
//
// Usage:
//
//	macawtrace [-figure figureN] [-proto maca|macaw|csma|token|dcf|tournament] [-seconds N] [-from N] [-seed N] [-json] [-carrier]
//	macawtrace -jsonl [same flags]     emit a typed JSONL trace including MAC-internal events
//	macawtrace -summarize FILE         summarize a JSONL trace (from -jsonl or macawsim -tracejson)
//	macawtrace -from-checkpoint FILE   time-travel: restore a macawsim snapshot taken just before the
//	                                   moment of interest (an oracle violation, a wedge) and re-run it
//	                                   with full JSONL tracing from the checkpoint barrier onward
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"macaw/internal/core"
	"macaw/internal/experiments"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/dcf"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/mac/tournament"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
	"macaw/internal/topo"
	"macaw/internal/trace"
)

func main() {
	figure := flag.String("figure", "figure5", "topology to run")
	proto := flag.String("proto", "macaw", "protocol: maca, macaw, csma, token, dcf or tournament")
	seconds := flag.Float64("seconds", 0.5, "trace window length in seconds")
	from := flag.Float64("from", 0, "trace window start in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	asJSON := flag.Bool("json", false, "emit the trace as JSON")
	asJSONL := flag.Bool("jsonl", false, "emit the trace as JSON Lines, including MAC-internal events (states, timers, queues, retries, drops)")
	carrier := flag.Bool("carrier", false, "include carrier-sense transitions")
	summarize := flag.String("summarize", "", "summarize a JSONL trace file instead of running a simulation")
	fromCheckpoint := flag.String("from-checkpoint", "", "restore this macawsim snapshot and emit a JSONL trace of the run from the checkpoint barrier onward")
	traceMax := flag.Int("tracemax", experiments.DefaultTraceMax, "max events recorded per run with -from-checkpoint")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fromCheckpoint != "" {
		if err := traceFromCheckpoint(*fromCheckpoint, *traceMax); err != nil {
			fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	l, ok := topo.All()[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "macawtrace: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	var f core.MACFactory
	switch *proto {
	case "maca":
		f = core.MACAFactory()
	case "macaw":
		f = core.MACAWFactory(macaw.DefaultOptions())
	case "csma":
		f = core.CSMAFactory(csma.Options{ACK: true})
	case "token":
		f = core.TokenFactory(token.Options{})
	case "dcf":
		f = core.DCFFactory(dcf.Options{})
	case "tournament":
		f = core.TournamentFactory(tournament.Options{})
	default:
		fmt.Fprintf(os.Stderr, "macawtrace: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	n := core.NewNetwork(*seed)
	rec := trace.NewRecorder(n.Sim)
	rec.From = sim.FromSeconds(*from)
	rec.To = rec.From + sim.FromSeconds(*seconds)
	rec.Carrier = *carrier
	if *asJSONL {
		// MAC-internal events come from the observer bridge, installed at MAC
		// construction; the radio wrappers already record receptions, so the
		// bridge's own rx events are suppressed.
		rec.OmitBridgeRx = true
		n.AddMACObserver(rec.MACObserver)
	}
	if err := l.Build(n, f); err != nil {
		fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
		os.Exit(1)
	}
	rec.AttachAll(n)

	res := n.Run(rec.To+sim.Second, 0)
	if *asJSONL {
		if err := rec.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *asJSON {
		if err := rec.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "macawtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("# %s over %s, trace [%gs, %gs)\n", *proto, l.Name, rec.From.Seconds(), rec.To.Seconds())
	rec.WriteText(os.Stdout)
	fmt.Println()
	fmt.Println(res)
}

// traceFromCheckpoint is the time-travel triage mode: restore a snapshot —
// replay to the barrier, verify the state inventory is bit-identical, and
// continue — with MAC-internal tracing enabled from the barrier onward. The
// restored run's tail prints as JSON Lines for -summarize. Because the
// continuation is bit-identical to the original run, the emitted trace shows
// exactly the events that led to the moment of interest (say, an oracle
// violation a few virtual seconds after the checkpoint).
func traceFromCheckpoint(path string, traceMax int) error {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return err
	}
	cfg := experiments.RunConfig{
		Trace:     trace.NewJSONLSink(),
		TraceFrom: snap.Barrier,
		TraceMax:  traceMax,
	}
	if _, err := experiments.ReplayRun(snap, cfg); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "macawtrace: restored %s at t=%gs, tracing to run end\n",
		snap.Run, snap.Barrier.Seconds())
	if err := cfg.Trace.WriteRunJSONL(os.Stdout, snap.Run); err != nil {
		return err
	}
	if d := cfg.Trace.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "macawtrace: %d events beyond the per-run cap (%d) were dropped; raise -tracemax to keep them\n", d, traceMax)
	}
	return nil
}

// summarizeFile reads a JSONL trace and prints one summary block per run:
// per-station event timelines, frame counts by type, backoff evolution
// toward each destination (the Figure 2-style trace), FSM residency, and
// queue extremes.
func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.DecodeJSONL(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Println("empty trace")
		return nil
	}

	byRun := map[string][]trace.Event{}
	for _, e := range events {
		byRun[e.Run] = append(byRun[e.Run], e)
	}
	runs := make([]string, 0, len(byRun))
	for r := range byRun {
		runs = append(runs, r)
	}
	sort.Strings(runs)
	for _, r := range runs {
		summarizeRun(r, byRun[r])
	}
	return nil
}

// stationSummary accumulates one station's slice of a run.
type stationSummary struct {
	total    int
	kinds    map[trace.Kind]int
	txTypes  map[string]int
	backoff  map[string][]float64 // dst -> observed backoff values, in order
	resident map[string]sim.Duration
	curState string
	curSince sim.Time
	first    sim.Time
	last     sim.Time
	queueMax int
}

func summarizeRun(run string, events []trace.Event) {
	stations := map[string]*stationSummary{}
	var names []string
	for _, e := range events {
		ss := stations[e.Station]
		if ss == nil {
			ss = &stationSummary{
				kinds:    map[trace.Kind]int{},
				txTypes:  map[string]int{},
				backoff:  map[string][]float64{},
				resident: map[string]sim.Duration{},
				curState: "IDLE",
				curSince: e.At,
				first:    e.At,
			}
			stations[e.Station] = ss
			names = append(names, e.Station)
		}
		ss.total++
		ss.kinds[e.Kind]++
		ss.last = e.At
		switch e.Kind {
		case trace.Transmit:
			ss.txTypes[e.Type.String()]++
			if e.Backoff > 0 {
				dst := fmt.Sprintf("%v", e.Dst)
				ss.backoff[dst] = append(ss.backoff[dst], float64(e.Backoff))
			}
		case trace.State:
			ss.resident[ss.curState] += e.At - ss.curSince
			ss.curState, ss.curSince = e.To, e.At
		case trace.Queue:
			if e.QLen > ss.queueMax {
				ss.queueMax = e.QLen
			}
		}
	}
	sort.Strings(names)

	title := run
	if title == "" {
		title = "(unlabelled run)"
	}
	lo, hi := events[0].At, events[0].At
	for _, e := range events {
		if e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
	}
	fmt.Printf("run %s: %d events, %d stations, %.3fs–%.3fs\n",
		title, len(events), len(names), lo.Seconds(), hi.Seconds())
	for _, name := range names {
		ss := stations[name]
		ss.resident[ss.curState] += ss.last - ss.curSince
		fmt.Printf("  %-4s %6d events  [%.3fs, %.3fs]  %s\n",
			name, ss.total, ss.first.Seconds(), ss.last.Seconds(), kindLine(ss.kinds))
		if len(ss.txTypes) > 0 {
			fmt.Printf("       tx by type: %s\n", countLine(ss.txTypes))
		}
		if ss.kinds[trace.Queue] > 0 {
			fmt.Printf("       queue max depth: %d\n", ss.queueMax)
		}
		if total := residencyTotal(ss.resident); total > 0 {
			fmt.Printf("       fsm residency: %s\n", residencyLine(ss.resident, total))
		}
		dsts := make([]string, 0, len(ss.backoff))
		for d := range ss.backoff {
			dsts = append(dsts, d)
		}
		sort.Strings(dsts)
		for _, d := range dsts {
			fmt.Printf("       backoff->%s: %s\n", d, sparkline(ss.backoff[d]))
		}
	}
	fmt.Println()
}

// kindLine renders event counts by kind in a stable order.
func kindLine(kinds map[trace.Kind]int) string {
	order := []trace.Kind{trace.Transmit, trace.Receive, trace.Corrupt, trace.Deliver,
		trace.State, trace.Timer, trace.Queue, trace.Retry, trace.Drop, trace.Carrier, trace.Mark}
	var parts []string
	for _, k := range order {
		if n := kinds[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", k, n))
		}
	}
	return strings.Join(parts, ", ")
}

// countLine renders a name->count map sorted by name.
func countLine(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %d", k, m[k]))
	}
	return strings.Join(parts, ", ")
}

func residencyTotal(m map[string]sim.Duration) sim.Duration {
	var t sim.Duration
	for _, d := range m {
		t += d
	}
	return t
}

// residencyLine renders per-state time shares sorted by share, largest first.
func residencyLine(m map[string]sim.Duration, total sim.Duration) string {
	type sd struct {
		s string
		d sim.Duration
	}
	var all []sd
	for s, d := range m {
		if d > 0 {
			all = append(all, sd{s, d})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].s < all[j].s
	})
	var parts []string
	for _, x := range all {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", x.s, 100*float64(x.d)/float64(total)))
	}
	return strings.Join(parts, ", ")
}

// sparkline renders a backoff trace as min/max plus a coarse shape of up to
// 32 sampled values — enough to see Figure 2-style capture and decay.
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return "-"
	}
	min, max := vs[0], vs[0]
	for _, v := range vs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	stride := 1
	for len(vs)/stride > 32 {
		stride *= 2
	}
	var shape []string
	for i := 0; i < len(vs); i += stride {
		shape = append(shape, fmt.Sprintf("%.0f", vs[i]))
	}
	return fmt.Sprintf("n=%d min=%g max=%g  %s", len(vs), min, max, strings.Join(shape, " "))
}
