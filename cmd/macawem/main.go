// Command macawem runs the live emulation: the real MACAW protocol stack
// exchanging the binary wire frames over UDP sockets through an air broker
// that applies the radio physics in (time-dilated) real time.
//
// Run everything in one process:
//
//	macawem -demo
//
// Or distribute across processes:
//
//	macawem -broker -listen 127.0.0.1:7700
//	macawem -station 1 -pos 0,0,6  -connect 127.0.0.1:7700 -sendto 2
//	macawem -station 2 -pos 6,0,6 -connect 127.0.0.1:7700
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/netem"
	"macaw/internal/phy"
)

func main() {
	demo := flag.Bool("demo", false, "run a broker and two stations in-process")
	brokerMode := flag.Bool("broker", false, "run the air broker")
	listen := flag.String("listen", "127.0.0.1:7700", "broker listen address")
	station := flag.Int("station", 0, "run a station with this id")
	pos := flag.String("pos", "0,0,6", "station position in feet: x,y,z")
	connect := flag.String("connect", "127.0.0.1:7700", "broker address to connect to")
	sendto := flag.Int("sendto", 0, "destination station id for generated traffic (0 = receive only)")
	rate := flag.Float64("rate", 2, "offered packets per wall-clock second")
	scale := flag.Float64("scale", netem.DefaultScale, "time dilation factor")
	seconds := flag.Float64("seconds", 30, "how long to run (demo and station modes)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	switch {
	case *demo:
		runDemo(ctx, *scale, *seconds)
	case *brokerMode:
		b, err := netem.NewBroker(*listen, *scale, phy.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		b.Logf = log.Printf
		log.Printf("air broker on %v (scale %gx)", b.Addr(), *scale)
		b.Run(ctx)
	case *station > 0:
		runStation(ctx, *connect, frame.NodeID(*station), parsePos(*pos), *scale, frame.NodeID(*sendto), *rate, *seconds)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parsePos(s string) geom.Vec3 {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		log.Fatalf("bad -pos %q, want x,y,z", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad -pos %q: %v", s, err)
		}
		v[i] = f
	}
	return geom.V(v[0], v[1], v[2])
}

func buildMACAW(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) }

func runStation(ctx context.Context, broker string, id frame.NodeID, pos geom.Vec3, scale float64,
	dst frame.NodeID, rate, seconds float64) {

	st, err := netem.NewStation(broker, id, pos, scale, netem.EmuConfig(), buildMACAW)
	if err != nil {
		log.Fatal(err)
	}
	st.Deliver = func(src frame.NodeID, payload []byte) {
		log.Printf("station %v: data from %v: %q", id, src, payload)
	}
	st.Sent = func(p *mac.Packet) {
		log.Printf("station %v: packet to %v acknowledged", id, p.Dst)
	}
	log.Printf("station %v joined at %v", id, pos)

	if dst != 0 && rate > 0 {
		go func() {
			tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer tick.Stop()
			n := 0
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					n++
					st.Enqueue(&mac.Packet{Dst: dst, Size: frame.DefaultDataBytes,
						Payload: []byte(fmt.Sprintf("live frame %d from %v", n, id))})
				}
			}
		}()
	}
	runCtx, cancel := context.WithTimeout(ctx, time.Duration(seconds*float64(time.Second)))
	defer cancel()
	st.Run(runCtx)
	log.Printf("station %v stats: %+v", id, st.MAC().Stats())
}

func runDemo(ctx context.Context, scale, seconds float64) {
	b, err := netem.NewBroker("127.0.0.1:0", scale, phy.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(seconds*float64(time.Second)))
	defer cancel()
	go b.Run(ctx)
	log.Printf("demo: broker on %v, scale %gx (one slot = %.0fms wall)", b.Addr(), scale, 0.9375*scale)

	go runStation(ctx, b.Addr().String(), 2, geom.V(6, 0, 6), scale, 0, 0, seconds)
	time.Sleep(200 * time.Millisecond)
	runStation(ctx, b.Addr().String(), 1, geom.V(0, 0, 6), scale, 2, 1, seconds)
}
