// Command macawtopo inspects the paper's network configurations: station
// placement, the realized hearing graph, and the declared streams. It also
// generates seeded synthetic large topologies for scaling studies.
//
// Usage:
//
//	macawtopo [-figure figure1..figure11]
//	macawtopo -rand N [-seed N] [-mode uniform|cluster] [-area FT] [-rate PPS]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"macaw/internal/core"
	"macaw/internal/topo"
)

func main() {
	figure := flag.String("figure", "", "figure to inspect (default: all)")
	randN := flag.Int("rand", 0, "generate a seeded random topology with N stations instead of a figure")
	seed := flag.Int64("seed", 1, "random-topology seed")
	mode := flag.String("mode", "cluster", "random placement: uniform or cluster")
	area := flag.Float64("area", 0, "random-topology floor side in feet (0 = density-preserving default)")
	rate := flag.Float64("rate", 0, "random-topology per-stream offered load in pps (0 = default)")
	flag.Parse()

	if *randN > 0 {
		if *mode != "uniform" && *mode != "cluster" {
			fmt.Fprintf(os.Stderr, "macawtopo: unknown -mode %q (uniform or cluster)\n", *mode)
			os.Exit(2)
		}
		l := topo.Random(topo.RandomSpec{
			N:         *randN,
			Seed:      *seed,
			Clustered: *mode == "cluster",
			AreaFt:    *area,
			Rate:      *rate,
		})
		showRandom(l)
		return
	}

	layouts := topo.All()
	var names []string
	for name := range layouts {
		names = append(names, name)
	}
	sort.Strings(names)

	if *figure != "" {
		if _, ok := layouts[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "macawtopo: unknown figure %q (have %v)\n", *figure, names)
			os.Exit(2)
		}
		names = []string{*figure}
	}

	for _, name := range names {
		show(layouts[name])
	}
}

// showRandom summarizes a generated topology: station/stream counts and the
// hearing-degree distribution, the quantity the medium's neighborhood index
// scales with. Full per-station listings would be unreadable at N=1000.
func showRandom(l topo.Layout) {
	fmt.Printf("%s — %s\n", l.Name, l.Doc)
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err != nil {
		fmt.Printf("  BUILD ERROR: %v\n", err)
		return
	}
	bases := 0
	for _, s := range l.Stations {
		if s.Base {
			bases++
		}
	}
	fmt.Printf("  stations: %d (%d bases, %d pads), streams: %d\n",
		len(l.Stations), bases, len(l.Stations)-bases, len(l.Streams))
	g := n.HearingGraph()
	minDeg, maxDeg, sum := len(l.Stations), 0, 0
	for _, heard := range g {
		d := len(heard)
		sum += d
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("  hearing degree: min %d, mean %.1f, max %d\n",
		minDeg, float64(sum)/float64(len(g)), maxDeg)
	fmt.Printf("  medium neighborhood: index=%v, avg %.1f of %d radios\n",
		n.Medium.IndexEnabled(), n.Medium.AvgNeighbors(), len(l.Stations))
}

func show(l topo.Layout) {
	fmt.Printf("%s — %s\n", l.Name, l.Doc)
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err != nil {
		fmt.Printf("  BUILD ERROR: %v\n", err)
		return
	}
	fmt.Println("  stations:")
	for _, s := range l.Stations {
		kind := "pad "
		if s.Base {
			kind = "base"
		}
		fmt.Printf("    %-4s %-4s at %v\n", kind, s.Name, s.Pos)
	}
	if len(l.Streams) > 0 {
		fmt.Println("  streams:")
		for _, s := range l.Streams {
			start := ""
			if s.StartSec > 0 {
				start = fmt.Sprintf(" (starts at %gs)", s.StartSec)
			}
			fmt.Printf("    %s -> %s  %v %g pps%s\n", s.From, s.To, s.Kind, s.Rate, start)
		}
	}
	fmt.Println("  hearing graph:")
	g := n.HearingGraph()
	var stationNames []string
	for name := range g {
		stationNames = append(stationNames, name)
	}
	sort.Strings(stationNames)
	for _, name := range stationNames {
		fmt.Printf("    %-4s hears %v\n", name, g[name])
	}
	fmt.Println()
}
