// Command macawtopo inspects the paper's network configurations: station
// placement, the realized hearing graph, and the declared streams.
//
// Usage:
//
//	macawtopo [-figure figure1..figure11]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"macaw/internal/core"
	"macaw/internal/topo"
)

func main() {
	figure := flag.String("figure", "", "figure to inspect (default: all)")
	flag.Parse()

	layouts := topo.All()
	var names []string
	for name := range layouts {
		names = append(names, name)
	}
	sort.Strings(names)

	if *figure != "" {
		if _, ok := layouts[*figure]; !ok {
			fmt.Fprintf(os.Stderr, "macawtopo: unknown figure %q (have %v)\n", *figure, names)
			os.Exit(2)
		}
		names = []string{*figure}
	}

	for _, name := range names {
		show(layouts[name])
	}
}

func show(l topo.Layout) {
	fmt.Printf("%s — %s\n", l.Name, l.Doc)
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err != nil {
		fmt.Printf("  BUILD ERROR: %v\n", err)
		return
	}
	fmt.Println("  stations:")
	for _, s := range l.Stations {
		kind := "pad "
		if s.Base {
			kind = "base"
		}
		fmt.Printf("    %-4s %-4s at %v\n", kind, s.Name, s.Pos)
	}
	if len(l.Streams) > 0 {
		fmt.Println("  streams:")
		for _, s := range l.Streams {
			start := ""
			if s.StartSec > 0 {
				start = fmt.Sprintf(" (starts at %gs)", s.StartSec)
			}
			fmt.Printf("    %s -> %s  %v %g pps%s\n", s.From, s.To, s.Kind, s.Rate, start)
		}
	}
	fmt.Println("  hearing graph:")
	g := n.HearingGraph()
	var stationNames []string
	for name := range g {
		stationNames = append(stationNames, name)
	}
	sort.Strings(stationNames)
	for _, name := range stationNames {
		fmt.Printf("    %-4s hears %v\n", name, g[name])
	}
	fmt.Println()
}
