// Command macawd is the experiment-campaign daemon: macawsim's table, chaos,
// and sweep generators behind an HTTP/JSON service, at campaign scale.
//
// Usage:
//
//	macawd [-listen ADDR] [-state DIR] [-jobs N]
//
// A client POSTs a campaign manifest to /campaigns — run specs (paper
// tables, extensions, chaos, warm-started sweeps) expanded over seed lists
// at one shared run length — and the daemon fans the resulting jobs out
// through the experiments worker pool. Per-run results stream back as JSONL
// (the metrics snapshot schema of DESIGN.md §12), in job-declaration order,
// byte-identical to the equivalent macawsim invocation.
//
// Every completed job is recorded in a content-addressed cache under
// -state, keyed on (canonical config hash, seed) and flushed atomically
// per job. The cache is also the campaign ledger: a daemon killed
// mid-campaign — SIGKILL included — re-schedules the persisted campaign on
// restart and serves every job that finished from the cache, re-simulating
// only the rest; resubmitting an identical campaign (or an overlapping one)
// is served from cache hits instead of re-simulation. SIGTERM/SIGINT drain
// gracefully: in-flight runs finish and flush their ledger entries, queued
// runs are left for the next start, and the readiness probe flips to 503
// while /healthz keeps answering.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"macaw/internal/campaign"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8791", "address to serve the campaign API on (host:0 picks a free port, printed on stderr)")
	state := flag.String("state", "macawd-state", "state directory: campaign records and the content-addressed result cache")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = one per CPU core)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max time to wait for in-flight runs on SIGTERM before exiting anyway")
	flag.Parse()

	eng, err := campaign.NewEngine(*state, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawd: %v\n", err)
		os.Exit(2)
	}
	srv := campaign.NewServer(eng)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "macawd: -listen: %v\n", err)
		os.Exit(2)
	}
	// The resolved address line is load-bearing: with ":0" it is how
	// scripts (and the e2e harness) learn the port.
	fmt.Fprintf(os.Stderr, "macawd: listening on %s (state %s, %d workers)\n",
		ln.Addr(), *state, eng.Jobs())

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "macawd: %v: draining (in-flight runs finish, queued runs resume on restart)\n", sig)
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sigs // a second signal exits without waiting for the drain
			fmt.Fprintln(os.Stderr, "macawd: second signal; exiting immediately")
			os.Exit(130)
		}()
		drained := make(chan struct{})
		go func() {
			eng.Drain() // finish in-flight runs, flush the ledger
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "macawd: drain timeout; exiting with runs still in flight")
		}
		hs.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "macawd: drained; bye")
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "macawd: serve: %v\n", err)
			os.Exit(1)
		}
	}
}
