package macaw_test

import (
	"fmt"
	"runtime"
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/experiments"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

// One benchmark per table of the paper's evaluation. Each iteration
// regenerates the table on a shortened run and reports the headline
// throughput as a custom pps metric, so regressions in either simulator
// performance (ns/op) or protocol behaviour (pps) are visible.

func benchTable(b *testing.B, run func(experiments.RunConfig) experiments.Table, col int) {
	b.Helper()
	cfg := experiments.Bench()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		last = run(cfg)
	}
	b.ReportMetric(last.MeasuredTotal(col), "pps")
}

func BenchmarkTable1(b *testing.B)  { benchTable(b, experiments.Table1, 1) }
func BenchmarkTable2(b *testing.B)  { benchTable(b, experiments.Table2, 1) }
func BenchmarkTable3(b *testing.B)  { benchTable(b, experiments.Table3, 1) }
func BenchmarkTable4(b *testing.B)  { benchTable(b, experiments.Table4, 1) }
func BenchmarkTable5(b *testing.B)  { benchTable(b, experiments.Table5, 1) }
func BenchmarkTable6(b *testing.B)  { benchTable(b, experiments.Table6, 1) }
func BenchmarkTable7(b *testing.B)  { benchTable(b, experiments.Table7, 0) }
func BenchmarkTable8(b *testing.B)  { benchTable(b, experiments.Table8, 1) }
func BenchmarkTable9(b *testing.B)  { benchTable(b, experiments.Table9, 1) }
func BenchmarkTable10(b *testing.B) { benchTable(b, experiments.Table10, 1) }
func BenchmarkTable11(b *testing.B) { benchTable(b, experiments.Table11, 1) }

// benchAllTables regenerates every paper table per iteration, serially for
// jobs <= 1 or on a jobs-wide worker pool otherwise. The ns/op ratio between
// the serial and parallel variants is the runner's wall-clock speedup; the
// results themselves are identical by construction (TestParallelMatchesSerial).
func benchAllTables(b *testing.B, jobs int) {
	b.Helper()
	cfg := experiments.Bench()
	gens := experiments.All()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if jobs <= 1 {
			for _, g := range gens {
				last = g.Run(cfg)
			}
		} else {
			tabs, err := experiments.NewRunner(jobs).Tables(gens, cfg)
			if err != nil {
				b.Fatal(err)
			}
			last = tabs[len(tabs)-1]
		}
	}
	b.ReportMetric(last.MeasuredTotal(1), "pps")
}

func BenchmarkAllTablesSerial(b *testing.B) { benchAllTables(b, 1) }

func BenchmarkAllTablesParallel(b *testing.B) {
	jobs := runtime.GOMAXPROCS(0)
	if jobs < 4 {
		jobs = 4
	}
	benchAllTables(b, jobs)
}

// singleStream runs one saturating UDP pad-to-base stream under the given
// factory and reports its throughput.
func singleStream(b *testing.B, f core.MACFactory) {
	b.Helper()
	var pps float64
	for i := 0; i < b.N; i++ {
		n := core.NewNetwork(int64(i + 1))
		p := n.AddStation("P", geom.V(-4, 0, 6), f)
		base := n.AddStation("B", geom.V(0, 0, 12), f)
		n.AddStream(p, base, core.UDP, 64)
		res := n.Run(30*sim.Second, 5*sim.Second)
		pps = res.PPS("P-B")
	}
	b.ReportMetric(pps, "pps")
}

// Ablation benches for the design choices DESIGN.md calls out: each strips
// one MACAW mechanism so its cost/benefit is directly measurable.

func BenchmarkAblationExchangeBasic(b *testing.B) {
	singleStream(b, core.MACAWFactory(macaw.Options{Exchange: macaw.Basic}))
}

func BenchmarkAblationExchangeWithACK(b *testing.B) {
	singleStream(b, core.MACAWFactory(macaw.Options{Exchange: macaw.WithACK}))
}

func BenchmarkAblationExchangeFull(b *testing.B) {
	singleStream(b, core.MACAWFactory(macaw.Options{Exchange: macaw.Full}))
}

func BenchmarkAblationBEBvsMILD(b *testing.B) {
	for _, strat := range []backoff.Strategy{backoff.NewBEB(), backoff.NewMILD()} {
		strat := strat
		b.Run(strat.Name(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				n := core.NewNetwork(int64(i + 1))
				base := n.AddStation("B", geom.V(0, 0, 12), core.MACAWFactoryWith(
					macaw.Options{Exchange: macaw.Basic},
					func() backoff.Policy { return backoff.NewSingle(strat, true) }))
				for _, name := range []string{"P1", "P2", "P3", "P4"} {
					p := n.AddStation(name, geom.V(float64(len(name)), 2, 6), core.MACAWFactoryWith(
						macaw.Options{Exchange: macaw.Basic},
						func() backoff.Policy { return backoff.NewSingle(strat, true) }))
					n.AddStream(p, base, core.UDP, 64)
				}
				res := n.Run(20*sim.Second, 2*sim.Second)
				total = res.TotalPPS()
			}
			b.ReportMetric(total, "pps")
		})
	}
}

// BenchmarkAblationCubeGrid compares the paper's cube-quantized propagation
// against the exact-distance model: the physics substitution must not change
// throughput.
func BenchmarkAblationCubeGrid(b *testing.B) {
	for _, cube := range []bool{true, false} {
		cube := cube
		name := "exact"
		if cube {
			name = "cubegrid"
		}
		b.Run(name, func(b *testing.B) {
			var pps float64
			for i := 0; i < b.N; i++ {
				n := core.NewNetwork(int64(i + 1))
				params := phy.DefaultParams()
				params.CubeGrid = cube
				n.Medium.SetPropagation(phy.NewPropagation(params))
				p := n.AddStation("P", geom.V(-4, 0, 6), core.MACAWFactory(macaw.DefaultOptions()))
				base := n.AddStation("B", geom.V(0, 0, 12), core.MACAWFactory(macaw.DefaultOptions()))
				n.AddStream(p, base, core.UDP, 64)
				pps = n.Run(20*sim.Second, 2*sim.Second).PPS("P-B")
			}
			b.ReportMetric(pps, "pps")
		})
	}
}

// Extension experiment benches (§4 design alternatives).

func BenchmarkExtAckSchemes(b *testing.B)   { benchTable(b, experiments.ExtAckSchemes, 1) }
func BenchmarkExtCarrierSense(b *testing.B) { benchTable(b, experiments.ExtCarrierSense, 1) }
func BenchmarkExtLeakage(b *testing.B)      { benchTable(b, experiments.ExtLeakage, 1) }
func BenchmarkExtToken(b *testing.B)        { benchTable(b, experiments.ExtTokenVsMACAW, 0) }

// BenchmarkExtLoadSweep reports MACAW's saturated carried load.
func BenchmarkExtLoadSweep(b *testing.B) {
	cfg := experiments.Bench()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		last = experiments.ExtLoadSweep(cfg)
	}
	b.ReportMetric(last.Columns[1].Results.PPS("offered=16x4"), "pps")
}

// BenchmarkExtMulticast reports the §3.3.4 multicast delivery ratios.
func BenchmarkExtMulticast(b *testing.B) {
	var r experiments.MulticastResult
	cfg := experiments.Bench()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r = experiments.ExtMulticast(cfg)
	}
	b.ReportMetric(float64(r.NearDelivered)/float64(r.Sent), "near-ratio")
	b.ReportMetric(float64(r.FarDelivered)/float64(r.Sent), "far-ratio")
}

// benchScale measures how per-event medium cost scales with station count:
// a building-sized clustered topology (one upstream stream per pad) run
// with the neighborhood index against the same topology forced onto the
// exhaustive all-radios paths. Both modes simulate the identical event
// sequence (the index is bit-exact), so the ns/op ratio is pure per-event
// cost. avg-nbr is the mean neighborhood size the indexed cost tracks.
func benchScale(b *testing.B, stations int) {
	for _, mode := range []string{"indexed", "exhaustive"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var pps, nbr float64
			for i := 0; i < b.N; i++ {
				net := core.NewNetwork(int64(i + 1))
				if mode == "exhaustive" {
					net.Medium.SetExhaustive(true)
				}
				l := topo.Random(topo.RandomSpec{N: stations, Seed: 42, Clustered: true})
				if err := l.Build(net, core.MACAWFactory(macaw.DefaultOptions())); err != nil {
					b.Fatal(err)
				}
				res := net.Run(4*sim.Second, 1*sim.Second)
				pps = res.TotalPPS()
				nbr = net.Medium.AvgNeighbors()
			}
			b.ReportMetric(pps, "pps")
			b.ReportMetric(nbr, "avg-nbr")
		})
	}
}

func BenchmarkScaleN50(b *testing.B)   { benchScale(b, 50) }
func BenchmarkScaleN200(b *testing.B)  { benchScale(b, 200) }
func BenchmarkScaleN500(b *testing.B)  { benchScale(b, 500) }
func BenchmarkScaleN1000(b *testing.B) { benchScale(b, 1000) }

// cityBlueprint builds the 10k-station city benchmark topology: default
// physics (60 dB floor, certified cutoff ≈ 102 ft) over a 12000 ft side —
// city blocks of clustered nanocells rather than one packed building — so
// the topology decomposes into ~1250 causally independent radio components
// the sharded engine can run in parallel.
func cityBlueprint(b *testing.B, stations int) core.Blueprint {
	b.Helper()
	l := topo.Random(topo.RandomSpec{N: stations, Seed: 42, Clustered: true, AreaFt: 12000})
	bp, err := l.Blueprint(core.MACAWFactory(macaw.DefaultOptions()))
	if err != nil {
		b.Fatal(err)
	}
	return bp
}

// BenchmarkScaleN10000 measures the sharded engine at the ROADMAP's
// city-scale regime: 10000 stations, serial vs 2/4/8 shards. Every mode
// simulates the identical event history (the sharded engine is bit-exact),
// so ns/op ratios are pure parallel speedup; the pps metric must agree
// across modes — the benchmark fails if it does not.
func BenchmarkScaleN10000(b *testing.B) {
	const stations = 10000
	const total, warmup = 2 * sim.Second, 500 * sim.Millisecond
	serialPPS := map[int64]float64{} // seed -> serial result, cross-checked by the sharded modes
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		name := "serial"
		if shards > 1 {
			name = fmt.Sprintf("shards%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			var pps float64
			var comps int
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)
				bp := cityBlueprint(b, stations)
				bp.Seed = seed
				res, info, err := bp.Run(total, warmup, shards)
				if err != nil {
					b.Fatal(err)
				}
				pps = res.TotalPPS()
				comps = info.Components
				if shards == 1 {
					serialPPS[seed] = pps
				} else if want, ok := serialPPS[seed]; ok && pps != want {
					b.Fatalf("shards=%d seed=%d pps %.6f != serial pps %.6f: determinism broken",
						shards, seed, pps, want)
				}
			}
			b.ReportMetric(pps, "pps")
			b.ReportMetric(float64(comps), "components")
		})
	}
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: simulated
// exchanges per wall-clock second on a saturated single cell.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := core.NewNetwork(1)
		p := n.AddStation("P", geom.V(-4, 0, 6), core.MACAWFactory(macaw.DefaultOptions()))
		base := n.AddStation("B", geom.V(0, 0, 12), core.MACAWFactory(macaw.DefaultOptions()))
		n.AddStream(p, base, core.UDP, 64)
		n.Run(60*sim.Second, 0)
	}
}
