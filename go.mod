module macaw

go 1.22
