#!/usr/bin/env bash
# bench.sh — snapshot the performance trajectory into a JSON file.
#
# Emits, for every paper table, the benchmark's ns/op (simulator speed) and
# pps (protocol behaviour — must not move at a fixed seed), wall-clock
# times for `macawsim -jobs N` so the runner's scaling is on record, the
# BenchmarkScaleN* sweep comparing the neighborhood-indexed medium against
# the exhaustive all-radios paths on building-sized topologies (both modes
# simulate the identical event sequence, so pps must match exactly and the
# ns/op ratio is pure per-event cost), and the BenchmarkScaleN10000
# sharding sweep: the city-scale topology run serially and at 2/4/8 shards
# on the component-parallel engine (bit-identical by construction — the
# benchmark itself fails if pps moves — so the ns/op ratio is pure
# sharded-engine speedup).
#
# Two sweep sections time the warm-started sweep engine against -sweep-cold
# across all six MAC backends: the original MACAW/MILD knob sweep, and a
# dcf-vs-macaw sweep over the PR 9 delta kinds (cw.min/cw.max, retry
# limits, tournament.window). Both assert the rendered tables are
# byte-identical warm vs cold before recording the wall-clock ratio.
#
# Usage: scripts/bench.sh [output.json] [raw-bench.txt]
#
# output.json defaults to $BENCH_OUT, then bench.json — so callers that only
# want the raw text can pass '' and pin the JSON name via the environment
# (the CI perf job does, keeping one snapshot file per PR without editing
# this script). If raw-bench.txt is given, the raw
# `go test -bench` output of the per-table and sharding passes is also
# copied there, in the text format benchstat and scripts/perfgate.sh
# consume.
set -eu
cd "$(dirname "$0")/.."

out="${1:-${BENCH_OUT:-bench.json}}"
raw="${2:-}"
benchtime="${BENCHTIME:-5x}"
scale_benchtime="${SCALE_BENCHTIME:-1x}"
shard_benchtime="${SHARD_BENCHTIME:-1x}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "running per-table benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench 'BenchmarkTable[0-9]+$|BenchmarkAllTables' \
    -benchtime "$benchtime" . | tee "$tmp/bench.txt" >&2

echo "running scaling benchmarks (-benchtime $scale_benchtime)..." >&2
go test -run '^$' -bench 'BenchmarkScaleN(50|200|500|1000)$' -timeout 60m \
    -benchtime "$scale_benchtime" . | tee "$tmp/scale.txt" >&2

echo "running sharding benchmarks (-benchtime $shard_benchtime)..." >&2
go test -run '^$' -bench 'BenchmarkScaleN10000$' -timeout 60m \
    -benchtime "$shard_benchtime" . | tee "$tmp/shard.txt" >&2

echo "timing macawsim -jobs scaling..." >&2
go build -o "$tmp/macawsim" ./cmd/macawsim
for jobs in 1 2 4; do
    start=$(date +%s%N)
    "$tmp/macawsim" -total 40 -warmup 5 -jobs "$jobs" > "$tmp/out.$jobs"
    end=$(date +%s%N)
    echo "$jobs $(( (end - start) / 1000000 ))" >> "$tmp/jobs.txt"
done
for jobs in 2 4; do
    cmp -s "$tmp/out.1" "$tmp/out.$jobs" ||
        { echo "FATAL: -jobs $jobs output differs from serial" >&2; exit 1; }
done
echo "-jobs output byte-identical across 1/2/4 workers" >&2

echo "timing warm-started sweep vs cold (16 variants, warmup-dominated)..." >&2
sweep_spec="backoff.max=4,8,16,32;mild.inc=1.5,2,2.5,3;mild.dec=1,2,4,8;load.rate=40,48,56,64"
start=$(date +%s%N)
"$tmp/macawsim" -sweep "$sweep_spec" -total 60 -warmup 50 -sweep-cold > "$tmp/sweep_cold.txt" 2> /dev/null
end=$(date +%s%N); sweep_cold_ms=$(( (end - start) / 1000000 ))
start=$(date +%s%N)
"$tmp/macawsim" -sweep "$sweep_spec" -total 60 -warmup 50 > "$tmp/sweep_warm.txt" 2> /dev/null
end=$(date +%s%N); sweep_warm_ms=$(( (end - start) / 1000000 ))
sed 's/(warm-started)/(cold)/' "$tmp/sweep_warm.txt" | cmp -s - "$tmp/sweep_cold.txt" ||
    { echo "FATAL: warm-started sweep output differs from cold" >&2; exit 1; }
echo "sweep: cold ${sweep_cold_ms}ms, warm ${sweep_warm_ms}ms (output byte-identical)" >&2

echo "timing dcf-vs-macaw sweep (16 variants over DCF/tournament knobs)..." >&2
dcf_spec="cw.min=3,7,15,31;cw.max=63,127,255,1023;retry.short=1,2,4,7;tournament.window=8,16,32,64"
start=$(date +%s%N)
"$tmp/macawsim" -sweep "$dcf_spec" -total 60 -warmup 50 -sweep-cold > "$tmp/dcf_cold.txt" 2> /dev/null
end=$(date +%s%N); dcf_cold_ms=$(( (end - start) / 1000000 ))
start=$(date +%s%N)
"$tmp/macawsim" -sweep "$dcf_spec" -total 60 -warmup 50 > "$tmp/dcf_warm.txt" 2> /dev/null
end=$(date +%s%N); dcf_warm_ms=$(( (end - start) / 1000000 ))
sed 's/(warm-started)/(cold)/' "$tmp/dcf_warm.txt" | cmp -s - "$tmp/dcf_cold.txt" ||
    { echo "FATAL: warm-started dcf-vs-macaw sweep output differs from cold" >&2; exit 1; }
echo "dcf-vs-macaw sweep: cold ${dcf_cold_ms}ms, warm ${dcf_warm_ms}ms (output byte-identical)" >&2
echo "$sweep_cold_ms $sweep_warm_ms $dcf_cold_ms $dcf_warm_ms" > "$tmp/sweep.txt"

awk -v nproc="$(nproc)" '
BEGIN { n = 0; m = 0; s = 0; h = 0 }
# bench.txt: per-table simulator benchmarks.
FILENAME ~ /bench\.txt$/ && $1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns[name] = $3
    for (i = 4; i < NF; i++) if ($(i + 1) == "pps") pps[name] = $i
    order[n++] = name
    next
}
# scale.txt: indexed-vs-exhaustive medium scaling sweep.
FILENAME ~ /scale\.txt$/ && $1 ~ /^BenchmarkScale/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    sns[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "pps") spps[name] = $i
        if ($(i + 1) == "avg-nbr") snbr[name] = $i
    }
    sorder[s++] = name
    next
}
# shard.txt: serial-vs-sharded city-scale sweep.
FILENAME ~ /shard\.txt$/ && $1 ~ /^BenchmarkScaleN10000\// {
    mode = $1; sub(/-[0-9]+$/, "", mode); sub(/^BenchmarkScaleN10000\//, "", mode)
    hns[mode] = $3
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "pps") hpps[mode] = $i
        if ($(i + 1) == "components") hcomp[mode] = $i
    }
    horder[h++] = mode
    next
}
FILENAME ~ /jobs\.txt$/ { jobs_n[m] = $1; jobs_ms[m] = $2; m++ }
# sweep.txt: cold-vs-warm 16-variant sweep wall-clocks (MACAW knobs, then
# the dcf-vs-macaw knob sweep).
FILENAME ~ /sweep\.txt$/ {
    sweep_cold = $1; sweep_warm = $2; have_sweep = 1
    dcf_cold = $3; dcf_warm = $4
}
END {
    printf "{\n  \"note\": \"ns_per_op measures simulator speed; pps measures protocol behaviour and must not move at a fixed seed; jobs entries are macawsim -total 40 -warmup 5 wall-clock ms (output verified byte-identical across jobs; wall-clock speedup requires nproc > 1). scaling entries compare the neighborhood-indexed medium with the exhaustive all-radios iteration on seeded random building topologies: pps is identical by construction (the index is bit-exact), avg_neighbors is the mean relevance-set size the indexed per-event cost tracks, and the indexed/exhaustive ns_per_op ratio is the medium speedup. sharding entries run the 10000-station city topology serially and on the component-parallel engine at 2/4/8 shards: pps is bit-identical by construction (the benchmark fails if it moves), components counts the causally independent radio components, and speedup is serial ns_per_op over the mode ns_per_op (decomposition shrinks per-heap and per-cache costs, so speedup > 1 even at nproc = 1). the sweep entries time macawsim -sweep with 16 variants x 6 protocols (csma, maca, macaw, token, dcf, tournament) at -total 60 -warmup 50, warm-started (one warmup per protocol, forked into every variant) vs -sweep-cold (every variant from scratch); the rendered tables are byte-identical by construction (the script fails if they differ), so speedup is pure warm-start win. sweep covers the MACAW/MILD knobs; sweep_dcf_vs_macaw covers the PR 9 delta kinds (cw.min/cw.max, retry.short, tournament.window) that only bite at DCF and tournament stations.\",\n"
    printf "  \"nproc\": %d,\n", nproc
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (name in pps) printf ", \"pps\": %s", pps[name]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  },\n  \"scaling\": {\n"
    for (i = 0; i < s; i++) {
        name = sorder[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, sns[name]
        if (name in spps) printf ", \"pps\": %s", spps[name]
        if (name in snbr) printf ", \"avg_neighbors\": %s", snbr[name]
        printf "}%s\n", (i < s - 1 ? "," : "")
    }
    printf "  },\n  \"sharding\": {\n"
    for (i = 0; i < h; i++) {
        mode = horder[i]
        printf "    \"%s\": {\"ns_per_op\": %s", mode, hns[mode]
        if (mode in hpps) printf ", \"pps\": %s", hpps[mode]
        if (mode in hcomp) printf ", \"components\": %s", hcomp[mode]
        if (mode != "serial" && ("serial" in hns) && hns[mode] > 0)
            printf ", \"speedup\": %.2f", hns["serial"] / hns[mode]
        printf "}%s\n", (i < h - 1 ? "," : "")
    }
    printf "  },\n  \"sweep\": {\n"
    if (have_sweep) {
        printf "    \"variants\": 16, \"protocols\": 6,\n"
        printf "    \"cold_ms\": %s, \"warm_ms\": %s", sweep_cold, sweep_warm
        if (sweep_warm > 0) printf ", \"speedup\": %.2f", sweep_cold / sweep_warm
        printf "\n"
    }
    printf "  },\n  \"sweep_dcf_vs_macaw\": {\n"
    if (have_sweep) {
        printf "    \"variants\": 16, \"protocols\": 6,\n"
        printf "    \"cold_ms\": %s, \"warm_ms\": %s", dcf_cold, dcf_warm
        if (dcf_warm > 0) printf ", \"speedup\": %.2f", dcf_cold / dcf_warm
        printf "\n"
    }
    printf "  },\n  \"jobs_wallclock_ms\": {\n"
    for (i = 0; i < m; i++)
        printf "    \"%s\": %s%s\n", jobs_n[i], jobs_ms[i], (i < m - 1 ? "," : "")
    printf "  }\n}\n"
}' "$tmp/bench.txt" "$tmp/scale.txt" "$tmp/shard.txt" "$tmp/jobs.txt" "$tmp/sweep.txt" > "$out"

if [ -n "$raw" ]; then
    # Concatenate the per-table and sharding passes so perfgate gates both;
    # strip the second pass preamble and trailing summary lines.
    cp "$tmp/bench.txt" "$raw"
    grep '^BenchmarkScaleN10000/' "$tmp/shard.txt" >> "$raw" || true
    echo "wrote $raw" >&2
fi
echo "wrote $out" >&2
