#!/usr/bin/env bash
# bench.sh — snapshot the performance trajectory into BENCH_PR1.json.
#
# Emits, for every paper table, the benchmark's ns/op (simulator speed) and
# pps (protocol behaviour — must not move at a fixed seed), plus wall-clock
# times for `macawsim -jobs N` so the runner's scaling is on record.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_PR1.json)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR1.json}"
benchtime="${BENCHTIME:-5x}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "running per-table benchmarks (-benchtime $benchtime)..." >&2
go test -run '^$' -bench 'BenchmarkTable[0-9]+$|BenchmarkAllTables' \
    -benchtime "$benchtime" . | tee "$tmp/bench.txt" >&2

echo "timing macawsim -jobs scaling..." >&2
go build -o "$tmp/macawsim" ./cmd/macawsim
for jobs in 1 2 4; do
    start=$(date +%s%N)
    "$tmp/macawsim" -total 40 -warmup 5 -jobs "$jobs" > "$tmp/out.$jobs"
    end=$(date +%s%N)
    echo "$jobs $(( (end - start) / 1000000 ))" >> "$tmp/jobs.txt"
done
for jobs in 2 4; do
    cmp -s "$tmp/out.1" "$tmp/out.$jobs" ||
        { echo "FATAL: -jobs $jobs output differs from serial" >&2; exit 1; }
done
echo "-jobs output byte-identical across 1/2/4 workers" >&2

awk -v nproc="$(nproc)" '
BEGIN { n = 0; m = 0 }
FNR == NR && $1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns[name] = $3
    for (i = 4; i < NF; i++) if ($(i + 1) == "pps") pps[name] = $i
    order[n++] = name
    next
}
FNR != NR { jobs_n[m] = $1; jobs_ms[m] = $2; m++ }
END {
    printf "{\n  \"note\": \"ns_per_op measures simulator speed; pps measures protocol behaviour and must not move at a fixed seed; jobs entries are macawsim -total 40 -warmup 5 wall-clock ms (output verified byte-identical across jobs). Wall-clock speedup from -jobs requires nproc > 1: on a single-CPU host the workers serialize and only dispatch overhead shows.\",\n"
    printf "  \"nproc\": %d,\n", nproc
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (name in pps) printf ", \"pps\": %s", pps[name]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  },\n  \"jobs_wallclock_ms\": {\n"
    for (i = 0; i < m; i++)
        printf "    \"%s\": %s%s\n", jobs_n[i], jobs_ms[i], (i < m - 1 ? "," : "")
    printf "  }\n}\n"
}' "$tmp/bench.txt" "$tmp/jobs.txt" > "$out"

echo "wrote $out" >&2
