#!/usr/bin/env bash
# macawd end-to-end (DESIGN.md §17), as an operator drives it:
#
#   1. a submitted campaign runs to completion over the worker pool
#   2. SIGKILL mid-campaign loses nothing that finished: the restarted
#      daemon re-schedules the persisted campaign and serves every
#      completed job from the content-addressed cache (cache_hits > 0)
#   3. the resumed result stream is byte-identical to an uninterrupted
#      daemon's stream of the same campaign
#   4. resubmitting the campaign under a new name is a new campaign served
#      entirely from cache (the >= 90% cache-hit acceptance bar, at 100%)
#   5. a single-table campaign's text stream byte-matches macawsim below
#      its header, and its metrics document byte-matches macawsim -metrics
#   6. SIGTERM drains: readiness flips 503, new submissions are refused,
#      the in-flight run finishes and flushes its ledger entry, exit 0
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
cleanup() {
  local p
  for p in $(jobs -p); do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/macawd" ./cmd/macawd
go build -o "$dir/macawsim" ./cmd/macawsim

# wait_line FILE PATTERN TIMEOUT_S: poll until PATTERN appears in FILE.
wait_line() {
  local i
  for i in $(seq 1 $((10 * $3))); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "timeout waiting for '$2' in $1" >&2
  cat "$1" >&2 || true
  return 1
}

# start_daemon LOGFILE STATEDIR [ARGS...]: sets $pid and $base.
start_daemon() {
  local log="$1" state="$2"
  shift 2
  "$dir/macawd" -listen 127.0.0.1:0 -state "$state" "$@" 2> "$log" &
  pid=$!
  wait_line "$log" "listening on" 10
  base="http://$(sed -n 's/^macawd: listening on \([^ ]*\).*/\1/p' "$log" | head -1)"
}

# field URL JQ_EXPR: one field of a JSON endpoint.
field() { curl -sf "$1" | jq -r "$2"; }

# wait_completed BASE ID TIMEOUT_S: poll until the campaign completes.
wait_completed() {
  local i
  for i in $(seq 1 $((2 * $3))); do
    [ "$(field "$1/campaigns/$2" .state)" = completed ] && return 0
    sleep 0.5
  done
  echo "timeout: campaign $2 did not complete:" >&2
  curl -s "$1/campaigns/$2" >&2 && echo >&2
  return 1
}

# The campaign: seven jobs at one shared run length, heavy enough that a
# kill lands mid-campaign on one worker, cheap enough for CI. The
# ext-loadsweep job runs last and longest, holding the kill window open.
cat > "$dir/campaign.json" <<'EOF'
{
  "name": "e2e",
  "total_s": 500,
  "warmup_s": 50,
  "runs": [
    {"table": "table6", "seeds": [1, 2, 3]},
    {"table": "table9", "seeds": [1, 2]},
    {"sweep": "backoff.max=16,32", "seeds": [1]},
    {"table": "ext-loadsweep", "seeds": [1]}
  ]
}
EOF

echo "== 1. submit a campaign, kill -9 mid-flight =="
start_daemon "$dir/a.log" "$dir/state" -jobs 1
pid_a=$pid base_a=$base
curl -sf "$base_a/healthz" > /dev/null
[ "$(curl -s -o /dev/null -w '%{http_code}' "$base_a/readyz")" = 200 ]
id="$(curl -sf -X POST --data-binary @"$dir/campaign.json" "$base_a/campaigns" | jq -r .id)"
jobs_total="$(field "$base_a/campaigns/$id" .jobs)"
done_before=0
for i in $(seq 1 600); do
  done_before="$(field "$base_a/campaigns/$id" .done)"
  [ "$done_before" -ge 2 ] && break
  sleep 0.1
done
[ "$done_before" -ge 2 ] || { echo "campaign never reached 2 completed jobs" >&2; exit 1; }
kill -9 "$pid_a"
wait "$pid_a" 2>/dev/null || true
echo "killed daemon with $done_before/$jobs_total jobs done"

echo "== 2. restart resumes past completed runs from the ledger =="
start_daemon "$dir/b.log" "$dir/state"
pid_b=$pid base_b=$base
wait_completed "$base_b" "$id" 120
hits="$(field "$base_b/campaigns/$id" .cache_hits)"
[ "$hits" -ge "$done_before" ] && [ "$hits" -ge 1 ] ||
  { echo "resume cache_hits=$hits, want >= $done_before" >&2; exit 1; }
echo "resumed: $hits/$jobs_total jobs served from cache"
curl -sf "$base_b/campaigns/$id/results?wait=1" > "$dir/resumed.jsonl"

echo "== 3. resumed stream is byte-identical to an uninterrupted run =="
start_daemon "$dir/c.log" "$dir/state-fresh"
pid_c=$pid base_c=$base
id_c="$(curl -sf -X POST --data-binary @"$dir/campaign.json" "$base_c/campaigns" | jq -r .id)"
[ "$id_c" = "$id" ] || { echo "campaign ID moved across daemons: $id_c != $id" >&2; exit 1; }
wait_completed "$base_c" "$id_c" 120
curl -sf "$base_c/campaigns/$id_c/results?wait=1" > "$dir/fresh.jsonl"
cmp "$dir/resumed.jsonl" "$dir/fresh.jsonl"
kill "$pid_c" && wait "$pid_c" 2>/dev/null || true
echo "resumed and uninterrupted streams match ($(wc -c < "$dir/fresh.jsonl") bytes)"

echo "== 4. a renamed resubmission is served entirely from cache =="
jq '.name = "e2e-again"' "$dir/campaign.json" > "$dir/renamed.json"
id2="$(curl -sf -X POST --data-binary @"$dir/renamed.json" "$base_b/campaigns" | jq -r .id)"
[ "$id2" != "$id" ] || { echo "renamed campaign kept the old ID" >&2; exit 1; }
wait_completed "$base_b" "$id2" 60
hits2="$(field "$base_b/campaigns/$id2" .cache_hits)"
[ "$hits2" = "$jobs_total" ] ||
  { echo "renamed campaign cache_hits=$hits2, want $jobs_total" >&2; exit 1; }
echo "renamed campaign: $hits2/$jobs_total cache hits (100%)"

echo "== 5. text stream and metrics byte-match macawsim =="
cat > "$dir/single.json" <<'EOF'
{"total_s": 30, "warmup_s": 5, "runs": [{"table": "table6", "seeds": [1]}]}
EOF
id3="$(curl -sf -X POST --data-binary @"$dir/single.json" "$base_b/campaigns" | jq -r .id)"
wait_completed "$base_b" "$id3" 60
curl -sf "$base_b/campaigns/$id3/results?wait=1&format=text" > "$dir/got.txt"
"$dir/macawsim" -table table6 -total 30 -warmup 5 -seed 1 | tail -n +3 > "$dir/want.txt"
cmp "$dir/got.txt" "$dir/want.txt"
curl -sf "$base_b/campaigns/$id3/metrics?spec=table:table6&seed=1" > "$dir/got_metrics.json"
"$dir/macawsim" -table table6 -total 30 -warmup 5 -seed 1 -metrics "$dir/want_metrics.json" > /dev/null
cmp "$dir/got_metrics.json" "$dir/want_metrics.json"
kill "$pid_b" && wait "$pid_b" 2>/dev/null || true
echo "text and metrics documents byte-match macawsim"

echo "== 6. SIGTERM drains: in-flight run finishes and flushes =="
cat > "$dir/slow.json" <<'EOF'
{"total_s": 500, "warmup_s": 50, "runs": [{"table": "ext-loadsweep", "seeds": [9]}]}
EOF
start_daemon "$dir/d.log" "$dir/state-drain" -jobs 1
pid_d=$pid base_d=$base
id4="$(curl -sf -X POST --data-binary @"$dir/slow.json" "$base_d/campaigns" | jq -r .id)"
sleep 0.5 # let the run enter the worker
kill -TERM "$pid_d"
wait_line "$dir/d.log" "draining" 5
[ "$(curl -s -o /dev/null -w '%{http_code}' "$base_d/readyz")" = 503 ]
[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$dir/slow.json" "$base_d/campaigns")" = 503 ]
curl -sf "$base_d/healthz" > /dev/null
rc=0; wait "$pid_d" || rc=$?
[ "$rc" -eq 0 ] || { echo "drained daemon exited $rc, want 0" >&2; cat "$dir/d.log" >&2; exit 1; }
grep -q "drained" "$dir/d.log"
# The in-flight run flushed its ledger entry: a restart serves it from cache.
start_daemon "$dir/e.log" "$dir/state-drain" -jobs 1
pid_e=$pid base_e=$base
wait_completed "$base_e" "$id4" 60
hits4="$(field "$base_e/campaigns/$id4" .cache_hits)"
[ "$hits4" = 1 ] || { echo "drained run not served from cache (hits=$hits4)" >&2; exit 1; }
kill "$pid_e" && wait "$pid_e" 2>/dev/null || true
echo "drain refused new work, finished the in-flight run, and flushed it"

echo "macawd e2e: OK"
