#!/usr/bin/env bash
# perfgate.sh — fail on large per-benchmark regressions.
#
# Compares two `go test -bench` text outputs benchmark-by-benchmark and
# fails if any ns/op grew by more than FACTOR (default 2.0 — generous enough
# to absorb runner noise, tight enough to catch an accidental O(n^2) or a
# hot-path allocation). Benchmarks present in only one file are reported but
# not fatal, so adding or retiring a benchmark does not break the gate.
#
# Usage: scripts/perfgate.sh baseline.txt current.txt [factor]
#        PERFGATE_FACTOR=3 scripts/perfgate.sh baseline.txt current.txt
set -eu

if [ $# -lt 2 ]; then
    echo "usage: scripts/perfgate.sh baseline.txt current.txt [factor]" >&2
    exit 2
fi
base="$1"
cur="$2"
factor="${3:-${PERFGATE_FACTOR:-2.0}}"

awk -v factor="$factor" '
# go bench text lines: BenchmarkName-8  iters  ns/op  [extra metrics...]
FNR == NR && $1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    base[name] = $3
    next
}
FNR != NR && $1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    cur[name] = $3
}
END {
    bad = 0
    for (name in cur) {
        if (!(name in base)) {
            printf "perfgate: %s has no baseline (new benchmark?)\n", name
            continue
        }
        ratio = cur[name] / base[name]
        verdict = (ratio > factor) ? "FAIL" : "ok"
        printf "perfgate: %-28s %12.0f -> %12.0f ns/op  (%.2fx) %s\n",
            name, base[name], cur[name], ratio, verdict
        if (ratio > factor) bad++
    }
    for (name in base)
        if (!(name in cur))
            printf "perfgate: %s disappeared from current run\n", name
    if (bad > 0) {
        printf "perfgate: %d benchmark(s) regressed beyond %.2fx\n", bad, factor
        exit 1
    }
    printf "perfgate: all benchmarks within %.2fx of baseline\n", factor
}' "$base" "$cur"
