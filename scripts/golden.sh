#!/usr/bin/env bash
# golden.sh — byte-exact regression gate on macawsim's canonical outputs.
#
# The simulator's determinism contract says every run is a pure function of
# (config, seed): same tables, same chaos report, same CSV, at any -jobs
# value, with or without the passive observers (-audit, -metrics,
# -tracejson). The golden files under testdata/golden/ pin those bytes; any
# diff is either a deliberate behaviour change (regenerate with `gen`) or a
# determinism/passivity regression (fix it).
#
# Usage:
#   scripts/golden.sh gen      regenerate testdata/golden/ from the current tree
#   scripts/golden.sh check    regenerate into a temp dir and diff against golden
#
# check also verifies that -jobs 4 and a fully instrumented run (-audit
# -metrics -tracejson) reproduce the same table bytes, and that the metrics
# and trace documents themselves are identical across -jobs values.
set -eu
cd "$(dirname "$0")/.."

golden="testdata/golden"
TABLES_ARGS="-total 12 -warmup 2 -seed 1"
CHAOS_ARGS="-chaos -total 8 -warmup 2 -seed 1"
CSV_ARGS="-table table2 -format csv -total 12 -warmup 2 -seed 1"

gen() {
    local dir="$1" sim="$2"
    mkdir -p "$dir"
    "$sim" $TABLES_ARGS > "$dir/tables.txt"
    "$sim" $CHAOS_ARGS > "$dir/chaos.txt"
    "$sim" $CSV_ARGS > "$dir/table2.csv"
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/macawsim" ./cmd/macawsim

case "${1:-}" in
gen)
    gen "$golden" "$tmp/macawsim"
    echo "regenerated $golden/"
    ;;
check)
    gen "$tmp/fresh" "$tmp/macawsim"
    for f in tables.txt chaos.txt table2.csv; do
        diff -u "$golden/$f" "$tmp/fresh/$f" ||
            { echo "FATAL: $f drifted from golden output" >&2; exit 1; }
    done

    # Parallelism must not change a byte.
    "$tmp/macawsim" $TABLES_ARGS -jobs 4 > "$tmp/tables.jobs4.txt"
    diff -u "$golden/tables.txt" "$tmp/tables.jobs4.txt" ||
        { echo "FATAL: -jobs 4 output differs from golden" >&2; exit 1; }

    # Passive observers must not change a byte, and their own documents must
    # be identical at any parallelism.
    "$tmp/macawsim" $TABLES_ARGS -audit -metrics "$tmp/m1.json" -tracejson "$tmp/t1.jsonl" > "$tmp/tables.instr1.txt"
    "$tmp/macawsim" $TABLES_ARGS -audit -metrics "$tmp/m4.json" -tracejson "$tmp/t4.jsonl" -jobs 4 > "$tmp/tables.instr4.txt"
    for f in tables.instr1.txt tables.instr4.txt; do
        diff -u "$golden/tables.txt" "$tmp/$f" ||
            { echo "FATAL: instrumented output ($f) differs from golden" >&2; exit 1; }
    done
    cmp "$tmp/m1.json" "$tmp/m4.json" ||
        { echo "FATAL: -metrics JSON differs between -jobs 1 and 4" >&2; exit 1; }
    cmp "$tmp/t1.jsonl" "$tmp/t4.jsonl" ||
        { echo "FATAL: -tracejson JSONL differs between -jobs 1 and 4" >&2; exit 1; }

    # The metrics document must be valid JSON; the trace must summarize.
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$tmp/m1.json" ||
            { echo "FATAL: -metrics output is not valid JSON" >&2; exit 1; }
    fi
    go build -o "$tmp/macawtrace" ./cmd/macawtrace
    "$tmp/macawtrace" -summarize "$tmp/t1.jsonl" > /dev/null ||
        { echo "FATAL: macawtrace -summarize failed on -tracejson output" >&2; exit 1; }

    echo "golden outputs verified (serial, -jobs 4, instrumented)"
    ;;
*)
    echo "usage: scripts/golden.sh gen|check" >&2
    exit 2
    ;;
esac
