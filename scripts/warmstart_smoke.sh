#!/usr/bin/env bash
# Warm-started sweep smoke (DESIGN.md §15), as the user drives it:
#
#   1. a warm-started 16-variant sweep renders byte-identically to the cold
#      sweep that simulates every variant from scratch
#   2. the warm-state cache round-trips: a second sweep byte-verifies its
#      warmups against every cached entry
#   3. a corrupted cache entry is rewarmed and overwritten, to the same bytes
#      (3b repeats the byte-diff over the DCF/tournament delta kinds)
#   4. on a warmup-dominated sweep the warm start is >= 2x faster wall-clock
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/macawsim" ./cmd/macawsim
spec="backoff.max=4,8,16,32;mild.inc=1.5,2,2.5,3;mild.dec=1,2,4,8;load.rate=40,48,56,64"

echo "== 1. warm fork is byte-identical to cold =="
"$dir/macawsim" -sweep "$spec" -total 12 -warmup 4 -audit -warm-cache "$dir/cache" \
  > "$dir/warm.txt" 2> "$dir/warm_err.txt"
"$dir/macawsim" -sweep "$spec" -total 12 -warmup 4 -audit -sweep-cold \
  > "$dir/cold.txt" 2> /dev/null
# The title names the mode; every measured byte must agree.
diff -u <(sed 's/(warm-started)/(cold)/' "$dir/warm.txt") "$dir/cold.txt"
grep -q "16 variants x 6 protocols (6 warmups, 96 forks" "$dir/warm_err.txt"

echo "== 2. the warm cache verifies on the second sweep =="
grep -q "cache 0 hits / 6 writes" "$dir/warm_err.txt"
"$dir/macawsim" -sweep "$spec" -total 12 -warmup 4 -audit -warm-cache "$dir/cache" \
  > "$dir/warm2.txt" 2> "$dir/warm2_err.txt"
grep -q "cache 6 hits / 0 writes" "$dir/warm2_err.txt"
diff -u "$dir/warm.txt" "$dir/warm2.txt"

echo "== 3. a corrupted cache entry is rewarmed and overwritten =="
f="$(ls "$dir/cache"/warm-*.snap | head -1)"
dd if=/dev/zero of="$f" bs=1 count=8 seek=40 conv=notrunc status=none
"$dir/macawsim" -sweep "$spec" -total 12 -warmup 4 -audit -warm-cache "$dir/cache" \
  > "$dir/warm3.txt" 2> "$dir/warm3_err.txt"
grep -q "cache 5 hits / 1 writes" "$dir/warm3_err.txt"
diff -u "$dir/warm.txt" "$dir/warm3.txt"

echo "== 3b. the DCF/tournament delta kinds fork byte-identically too =="
dcf_spec="cw.min=7,15,31;cw.max=255,1023;retry.short=2,4;tournament.window=16,32"
"$dir/macawsim" -sweep "$dcf_spec" -total 12 -warmup 4 -audit > "$dir/dcf_warm.txt" 2> /dev/null
"$dir/macawsim" -sweep "$dcf_spec" -total 12 -warmup 4 -audit -sweep-cold > "$dir/dcf_cold.txt" 2> /dev/null
diff -u <(sed 's/(warm-started)/(cold)/' "$dir/dcf_warm.txt") "$dir/dcf_cold.txt"

echo "== 4. warm start is >= 2x faster on a warmup-dominated sweep =="
start=$(date +%s%N)
"$dir/macawsim" -sweep "$spec" -total 60 -warmup 50 -sweep-cold > "$dir/speed_cold.txt" 2> /dev/null
end=$(date +%s%N); cold_ms=$(( (end - start) / 1000000 ))
start=$(date +%s%N)
"$dir/macawsim" -sweep "$spec" -total 60 -warmup 50 > "$dir/speed_warm.txt" 2> /dev/null
end=$(date +%s%N); warm_ms=$(( (end - start) / 1000000 ))
diff -u <(sed 's/(warm-started)/(cold)/' "$dir/speed_warm.txt") "$dir/speed_cold.txt"
echo "cold ${cold_ms}ms, warm ${warm_ms}ms"
if [ $(( warm_ms * 2 )) -gt "$cold_ms" ]; then
  echo "FATAL: warm-started sweep is not >= 2x faster (cold ${cold_ms}ms, warm ${warm_ms}ms)" >&2
  exit 1
fi

echo "warmstart smoke: OK"
