#!/usr/bin/env bash
# Checkpoint/restore smoke (DESIGN.md §14), as the user drives it:
#
#   1. a checkpointed sweep renders byte-identically to an uninterrupted one
#   2. SIGTERM mid-sweep flushes a final snapshot and exits 130
#   3. -restore on that snapshot finishes the run to the same table bytes
#   4. re-running the killed sweep resumes past the manifest's completed
#      runs and renders byte-identically to the uninterrupted sweep
#   5. macawtrace -from-checkpoint emits a summarizable time-travel trace
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/macawsim" ./cmd/macawsim
go build -o "$dir/macawtrace" ./cmd/macawtrace

echo "== 1. checkpointing is passive =="
"$dir/macawsim" -table all -total 30 -warmup 5 -audit > "$dir/straight.txt"
"$dir/macawsim" -table all -total 30 -warmup 5 -audit \
  -checkpoint-every 10 -checkpoint-dir "$dir/ck" > "$dir/ckpt.txt"
diff -u "$dir/straight.txt" "$dir/ckpt.txt"

echo "== 2. SIGTERM flushes a final checkpoint =="
mkdir "$dir/ck2"
"$dir/macawsim" -table all -total 120 -warmup 10 \
  -checkpoint-every 10 -checkpoint-dir "$dir/ck2" \
  > "$dir/int.txt" 2> "$dir/int_err.txt" & pid=$!
sleep 3
kill -TERM "$pid" 2>/dev/null || true
rc=0; wait "$pid" || rc=$?
if [ "$rc" -ne 130 ]; then
  echo "expected exit 130 after SIGTERM, got $rc" >&2
  cat "$dir/int_err.txt" >&2
  exit 1
fi
grep -q "final checkpoint" "$dir/int_err.txt"
snap="$(sed -n 's/.*final checkpoint: //p' "$dir/int_err.txt")"
echo "killed at: $snap"

echo "== 3. restore finishes the interrupted run to identical bytes =="
table="$(basename "$snap" | cut -d_ -f1)"
"$dir/macawsim" -table "$table" -total 120 -warmup 10 > "$dir/tab_straight.txt"
"$dir/macawsim" -restore "$snap" > "$dir/tab_restored.txt"
# Skip the two header lines: the restored header names the snapshot barrier.
diff -u <(tail -n +3 "$dir/tab_straight.txt") <(tail -n +3 "$dir/tab_restored.txt")

echo "== 4. the killed sweep resumes from its manifest =="
"$dir/macawsim" -table all -total 120 -warmup 10 \
  -checkpoint-every 10 -checkpoint-dir "$dir/ck2" \
  > "$dir/resumed.txt" 2> "$dir/resumed_err.txt"
grep -q "resuming" "$dir/resumed_err.txt"
"$dir/macawsim" -table all -total 120 -warmup 10 > "$dir/full.txt"
diff -u "$dir/full.txt" "$dir/resumed.txt"

echo "== 5. time-travel trace from a checkpoint =="
"$dir/macawtrace" -from-checkpoint "$snap" > "$dir/tail.jsonl" 2> "$dir/trace_err.txt"
[ -s "$dir/tail.jsonl" ]
"$dir/macawtrace" -summarize "$dir/tail.jsonl" > /dev/null

echo "checkpoint smoke: OK"
