// Quickstart: build a one-cell wireless LAN, run full MACAW over it, and
// print per-stream throughput — the smallest end-to-end use of the library.
package main

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

func main() {
	// A network bundles the event-driven simulator and the near-field
	// radio medium with the paper's physics (256 kbps, 10 ft range).
	n := core.NewNetwork(1)

	// One base station in the ceiling, two pads 6 feet below it — the
	// Figure 2 cell. Every station runs the full MACAW protocol:
	// RTS-CTS-DS-DATA-ACK, RRTS, per-stream queues, per-destination
	// MILD backoff with copying.
	protocol := core.MACAWFactory(macaw.DefaultOptions())
	base := n.AddStation("B", geom.V(0, 0, 12), protocol)
	p1 := n.AddStation("P1", geom.V(-4, 0, 6), protocol)
	p2 := n.AddStation("P2", geom.V(4, 0, 6), protocol)

	// Two saturating UDP streams toward the base station: each offers
	// 64 packets per second of 512-byte packets against a channel that
	// can carry ~45.
	n.AddStream(p1, base, core.UDP, 64)
	n.AddStream(p2, base, core.UDP, 64)

	// Run 60 simulated seconds, measuring after a 5 s warmup.
	res := n.Run(60*sim.Second, 5*sim.Second)

	fmt.Println("two saturating pads under full MACAW:")
	fmt.Print(res)
	fmt.Printf("\nmedium: %+v\n", n.Medium.Counters())
}
