// Hidden terminal: the Figure 1 pathology that motivates the whole paper.
//
// A and C are both in range of B but cannot hear each other, so carrier
// sense at the transmitter is useless: both sense a clear channel and
// collide at B. MACA's RTS-CTS exchange moves collision avoidance to the
// receiver. This example runs the identical workload under CSMA and MACA
// and prints the difference.
package main

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/sim"
)

func run(name string, f core.MACFactory) {
	n := core.NewNetwork(7)
	a := n.AddStation("A", geom.V(0, 0, 6), f)
	b := n.AddStation("B", geom.V(8, 0, 6), f)
	c := n.AddStation("C", geom.V(16, 0, 6), f)

	// Confirm the hidden-terminal geometry.
	if n.Medium.InRange(a.Radio(), c.Radio()) {
		panic("A and C must be hidden from each other")
	}

	// Both hidden stations saturate toward B.
	n.AddStream(a, b, core.UDP, 40)
	n.AddStream(c, b, core.UDP, 40)

	res := n.Run(60*sim.Second, 5*sim.Second)
	m := n.Medium.Counters()
	fmt.Printf("%s:\n%s", name, res)
	fmt.Printf("collisions: %d corrupted receptions, drops: A=%d C=%d\n\n",
		m.Corrupted, a.Dropped(), c.Dropped())
}

func main() {
	fmt.Println("Figure 1 hidden terminals: A -> B <- C, A and C mutually inaudible")
	fmt.Println()
	run("CSMA (carrier sensed at the transmitter — the wrong place)",
		core.CSMAFactory(csma.Options{ACK: true}))
	run("MACA (RTS-CTS elicits collision avoidance at the receiver)",
		core.MACAFactory())
}
