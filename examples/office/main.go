// Office scenario: the paper's Figure 11 — a four-cell slice of Xerox
// PARC's Computer Science Laboratory. An open area (C1) holds four pads and
// a noisy electronic whiteboard, two office cells hold one pad each, and a
// seventh pad is carried into the coffee room mid-run. Every pad runs a TCP
// stream to its cell's base station. The example runs the scenario under
// MACA and MACAW and prints both tables.
package main

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

func run(name string, f core.MACFactory) {
	l := topo.Figure11()
	n := core.NewNetwork(11)
	if err := l.Build(n, f); err != nil {
		panic(err)
	}

	// The whiteboard: a 1% packet error rate on receptions in the open
	// area.
	n.Medium.SetNoise(phy.RegionLoss{P: 0.01, InRegion: topo.Cell1NoiseRegion})

	// P7 starts in a distant uncongested cell and is carried into the
	// coffee room at t=30s (the paper: 300s of a 2000s run).
	mv := topo.Figure11MoveSpec()
	p7 := n.Station("P7")
	p7.Radio().SetPos(mv.Start)
	n.MoveStation(p7, 30*sim.Second, mv.Dest)

	res := n.Run(200*sim.Second, 40*sim.Second)
	fmt.Printf("%s:\n%s\n", name, res)
}

func main() {
	fmt.Println("Figure 11: the office scenario (TCP, noise, mobility)")
	fmt.Println()
	run("MACA", core.MACAFactory())
	run("MACAW", core.MACAWFactory(macaw.DefaultOptions()))
}
