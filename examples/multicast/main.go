// Multicast (§3.3.4): MACAW's stopgap multicast replaces the RTS-CTS
// handshake with an RTS immediately followed by the DATA packet — multiple
// receivers cannot coordinate their CTS replies. The paper notes the flaw:
// "Only those stations within range of the sender will defer, and those
// that are within range of a receiver but not the sender will not be given
// any signal to defer." This example builds exactly that situation.
package main

import (
	"fmt"

	"macaw/internal/experiments"
	"macaw/internal/sim"
)

func main() {
	fmt.Println("§3.3.4 multicast: S broadcasts; N is deep inside S's range;")
	fmt.Println("F is at the edge, also in range of hidden interferer H -> X.")
	fmt.Println()
	r := experiments.ExtMulticast(experiments.RunConfig{
		Total: 60 * sim.Second, Warmup: 5 * sim.Second, Seed: 1,
	})
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Sent) }
	fmt.Printf("multicast packets sent:        %d\n", r.Sent)
	fmt.Printf("near receiver delivered:       %d (%.1f%%)\n", r.NearDelivered, pct(r.NearDelivered))
	fmt.Printf("far receiver delivered:        %d (%.1f%%)  <- unprotected from the hidden interferer\n",
		r.FarDelivered, pct(r.FarDelivered))
	fmt.Printf("interferer's unicast delivered: %d (its RTS-CTS protects it fully)\n", r.InterfererDelivered)
}
