// Exposed terminal and the DS packet (§3.3.2): two adjacent cells whose
// pads hear each other but whose base stations are isolated. Each pad's
// transmissions cannot collide with the other's reception — yet without
// synchronizing information the pads trash each other's exchanges. The DS
// packet tells overhearers that an RTS-CTS handshake succeeded and a data
// transmission (plus its ACK) is about to occupy the air.
package main

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

func run(name string, exchange macaw.Exchange) {
	l := topo.Figure5()
	n := core.NewNetwork(3)
	f := core.MACAWFactoryWith(
		macaw.Options{Exchange: exchange, PerStream: true},
		func() backoff.Policy { return backoff.NewSingle(backoff.NewMILD(), true) },
	)
	if err := l.Build(n, f); err != nil {
		panic(err)
	}
	res := n.Run(60*sim.Second, 5*sim.Second)
	fmt.Printf("%s (%v):\n%s\n", name, exchange, res)
}

func main() {
	fmt.Println("Figure 5: B1 <- P1 ~ P2 -> B2 (pads exposed to each other)")
	fmt.Println()
	run("without DS — exposed pads blindly interleave", macaw.WithACK)
	run("with DS — overhearers synchronize to each data transmission", macaw.Full)
}
