// Backoff fairness (§3.1): under plain binary exponential backoff, the pad
// that wins a collision resets its counter to the minimum while the loser
// keeps doubling — so one pad captures the channel. Copying the backoff
// value carried in overheard packet headers gives every station the same
// view of congestion and splits the channel evenly.
//
// The example prints a per-5-second throughput timeline for both variants
// so the capture effect is visible as it develops.
package main

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/stats"
	"macaw/internal/topo"
	"macaw/internal/transport"
)

func run(name string, copyOverheard bool) {
	l := topo.Figure2()
	n := core.NewNetwork(5)
	f := core.MACAWFactoryWith(
		macaw.Options{Exchange: macaw.Basic},
		func() backoff.Policy { return backoff.NewSingle(backoff.NewBEB(), copyOverheard) },
	)
	if err := l.Build(n, f); err != nil {
		panic(err)
	}

	// Bucket each stream's deliveries per 5 seconds at the base station.
	series := map[uint16]*stats.TimeSeries{}
	names := map[uint16]string{}
	for i, s := range n.Streams() {
		series[uint16(i)] = stats.NewTimeSeries(5 * sim.Second)
		names[uint16(i)] = s.Name
	}
	base := n.Station("B")
	base.Handle(func(src frame.NodeID, seg transport.Segment) {
		if seg.Kind == transport.KindData {
			series[seg.Stream-1].Record(n.Sim.Now())
		}
	})

	res := n.Run(60*sim.Second, 5*sim.Second)
	fmt.Printf("%s:\n", name)
	for i := 0; i < len(series); i++ {
		fmt.Printf("  %-6s", names[uint16(i)])
		for _, r := range series[uint16(i)].Rate() {
			fmt.Printf(" %5.1f", r)
		}
		fmt.Println(" pps per 5s bucket")
	}
	fmt.Printf("  overall: %.1f / %.1f pps, Jain fairness %.3f\n\n",
		res.Streams[0].PPS, res.Streams[1].PPS, res.Fairness())
}

func main() {
	fmt.Println("Figure 2: two saturating pads, binary exponential backoff")
	fmt.Println()
	run("plain BEB — the winner captures the channel", false)
	run("BEB + copying — shared congestion view", true)
}
