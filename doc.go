// Package macaw is a from-scratch Go reproduction of "MACAW: A Media Access
// Protocol for Wireless LAN's" (Bharghavan, Demers, Shenker, Zhang —
// SIGCOMM 1994).
//
// The repository contains the complete system the paper describes: a
// deterministic discrete-event simulator, the near-field nanocellular radio
// model of Xerox PARC's testbed, the MACA and MACAW media access protocols
// (plus the CSMA baseline the paper argues against), the BEB/MILD backoff
// algorithms with copying and per-destination estimation, UDP and a
// paper-era TCP transport substrate, every Figure 1-11 topology with
// verified hearing graphs, and a harness that regenerates every table in
// the paper's evaluation.
//
// Entry points:
//
//   - cmd/macawsim regenerates Tables 1-11 (paper vs measured).
//   - cmd/macawtrace prints packet-level traces of any scenario.
//   - cmd/macawtopo inspects the topologies.
//   - examples/ holds runnable walkthroughs of the public API.
//   - bench_test.go benchmarks every table's regeneration.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package macaw
