package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"os"
	"sort"
	"sync"
)

// Manifest is the sweep-resume ledger: the gob-encoded result payload of
// every completed run, keyed by "label|configHash|seed". It is flushed
// atomically after each completed run, so however a sweep dies — SIGKILL
// included — every run that finished before the crash is preserved and a
// rerun skips straight past it. gob round-trips float64 bit-exactly, so a
// resumed sweep's rendered tables are byte-identical to an uninterrupted
// one.
//
// The file carries the same fail-closed armor as snapshots (magic, version,
// CRC): a torn or corrupted manifest decodes to a typed error and the
// caller starts a fresh ledger — losing memoized work, never correctness.
type Manifest struct {
	path string

	mu      sync.Mutex
	entries map[string][]byte
}

var manifestMagic = [8]byte{'M', 'A', 'C', 'A', 'W', 'M', 'A', 'N'}

// manifestVersion is the ledger's own format version, independent of the
// snapshot container's: bumping one must not orphan files of the other.
const manifestVersion = 1

// OpenManifest loads the manifest at path, or returns an empty one bound to
// path when the file does not exist. A malformed file returns a typed error
// (ErrBadMagic/ErrVersion/ErrChecksum/ErrTruncated) and a fresh empty
// manifest the caller may choose to continue with.
func OpenManifest(path string) (*Manifest, error) {
	m := &Manifest{path: path, entries: make(map[string][]byte)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := m.decode(data); err != nil {
		m.entries = make(map[string][]byte)
		return m, err
	}
	return m, nil
}

// Key builds the canonical manifest key for one run.
func Key(run string, configHash uint64, seed int64) string {
	return fmt.Sprintf("%s|%#x|%d", run, configHash, seed)
}

// Get returns the payload recorded for key, if any.
func (m *Manifest) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.entries[key]
	return p, ok
}

// Keys returns every recorded key in sorted order — the canonical
// enumeration callers (the campaign daemon's cache introspection, tests)
// iterate, independent of completion order.
func (m *Manifest) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for k := range m.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of completed runs recorded.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Put records a completed run's payload and flushes the manifest to disk
// atomically (when the manifest is file-backed). Safe for concurrent use —
// parallel sweep workers record results as they finish.
func (m *Manifest) Put(key string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = append([]byte(nil), payload...)
	if m.path == "" {
		return nil
	}
	return writeFileAtomic(m.path, m.encode())
}

// encode renders the manifest: magic, version, gob of the entry map, CRC.
// Must be called with mu held.
func (m *Manifest) encode() []byte {
	var payload bytes.Buffer
	// gob map order is nondeterministic; encode as sorted pairs so the
	// file is canonical.
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]manifestPair, len(keys))
	for i, k := range keys {
		pairs[i] = manifestPair{K: k, V: m.entries[k]}
	}
	if err := gob.NewEncoder(&payload).Encode(pairs); err != nil {
		panic(fmt.Sprintf("snapshot: manifest encode: %v", err)) // in-memory encode of concrete types cannot fail
	}
	b := make([]byte, 0, 8+4+payload.Len()+8)
	b = append(b, manifestMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, manifestVersion)
	b = append(b, payload.Bytes()...)
	b = binary.LittleEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
	return b
}

type manifestPair struct {
	K string
	V []byte
}

// decode parses an encoded manifest, failing closed with typed errors.
func (m *Manifest) decode(data []byte) error {
	if len(data) < len(manifestMagic)+4+8 {
		return ErrTruncated
	}
	if string(data[:len(manifestMagic)]) != string(manifestMagic[:]) {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[len(manifestMagic):]); v != manifestVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, v, manifestVersion)
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(trailer) {
		return ErrChecksum
	}
	var pairs []manifestPair
	if err := gob.NewDecoder(bytes.NewReader(body[len(manifestMagic)+4:])).Decode(&pairs); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	for _, p := range pairs {
		m.entries[p.K] = p.V
	}
	return nil
}
