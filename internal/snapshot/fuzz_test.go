package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecode holds the fail-closed line for snapshot files: whatever bytes
// arrive — truncated, bit-flipped, version-bumped, or adversarial length
// fields — Decode must return a typed error or a snapshot that re-encodes
// canonically. It must never panic, and it must never hand back state that
// differs from what a valid encoding of the decoded struct would carry
// (silent divergence).
//
// The checked-in corpus (testdata/fuzz/FuzzDecode) seeds the interesting
// shapes: a valid snapshot, each typed failure class, and boundary sizes.
func FuzzDecode(f *testing.F) {
	valid := sample().Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MACAWSNP"))
	f.Add(valid[:len(valid)-9]) // CRC sheared off
	bump := append([]byte(nil), valid...)
	bump[8] = 2 // version bump
	f.Add(bump)
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	f.Add(append(append([]byte(nil), valid...), 0x00)) // trailing byte
	huge := append([]byte(nil), valid...)
	huge[len(huge)-12] = 0xFF // inflate the state length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		// A successful decode must round-trip to the same bytes it came
		// from: the format has exactly one encoding per snapshot, so
		// "decoded fine but re-encodes differently" would mean two files
		// restore to different states while both claiming validity.
		if !bytes.Equal(s.Encode(), data) {
			t.Fatalf("decode/encode not canonical:\n in:  %x\n out: %x", data, s.Encode())
		}
	})
}
