package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecode holds the fail-closed line for snapshot files: whatever bytes
// arrive — truncated, bit-flipped, version-bumped, or adversarial length
// fields — Decode must return a typed error or a snapshot that re-encodes
// canonically. It must never panic, and it must never hand back state that
// differs from what a valid encoding of the decoded struct would carry
// (silent divergence).
//
// The checked-in corpus (testdata/fuzz/FuzzDecode) seeds the interesting
// shapes: a valid snapshot, each typed failure class, and boundary sizes.
func FuzzDecode(f *testing.F) {
	valid := sample().Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MACAWSNP"))
	f.Add(valid[:len(valid)-9]) // CRC sheared off
	bump := append([]byte(nil), valid...)
	bump[8] = 2 // version bump
	f.Add(bump)
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	f.Add(append(append([]byte(nil), valid...), 0x00)) // trailing byte
	huge := append([]byte(nil), valid...)
	huge[len(huge)-12] = 0xFF // inflate the state length field
	f.Add(huge)

	// Delta-section shapes (version 2): a valid delta-carrying snapshot; a
	// truncation landing inside the delta section; a CRC-valid file whose
	// delta kind no applying layer knows; and a CRC-valid file declaring a
	// fault.* delta — one that invalidates the captured state, so it must
	// decode cleanly here and fail closed only at apply time.
	v2 := sampleV2().Encode()
	f.Add(v2)
	deltaOff := len(v2) - 8 - 4 - len(sampleV2().State) - 8 // mid f64 value
	f.Add(v2[:deltaOff])
	unknown := sampleV2()
	unknown.Delta.Kind = "no.such.knob"
	f.Add(unknown.Encode())
	invalidates := sampleV2()
	invalidates.Delta = &Delta{Kind: "fault.crash", Value: 1}
	f.Add(invalidates.Encode())
	descOnly := sampleV2()
	descOnly.Delta = nil
	f.Add(descOnly.Encode())
	badFlag := append([]byte(nil), descOnly.Encode()...)
	// Flip the delta presence flag to a non-canonical value; the CRC also
	// breaks, which is the point — two independent rejections of one byte.
	badFlag[len(badFlag)-8-4-len(descOnly.State)-1] = 2
	f.Add(badFlag)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		// A successful decode must round-trip to the same bytes it came
		// from: the format has exactly one encoding per snapshot, so
		// "decoded fine but re-encodes differently" would mean two files
		// restore to different states while both claiming validity.
		if !bytes.Equal(s.Encode(), data) {
			t.Fatalf("decode/encode not canonical:\n in:  %x\n out: %x", data, s.Encode())
		}
	})
}
