package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		ConfigHash: ConfigHash("v1|table=table4|run=table4/MACAW|total=120000000000|warmup=10000000000|seed=7|audit=true"),
		Seed:       7,
		Barrier:    60_000_000_000,
		Total:      120_000_000_000,
		Warmup:     10_000_000_000,
		Audit:      true,
		Table:      "table4",
		Run:        "table4/MACAW",
		State:      []byte("sim now=60000000000 seq=12345\nrng stream=0 draws=17\nheap n=2\n"),
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", s, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := sample()
	path := filepath.Join(t.TempDir(), FileName(s.Run, s.Seed, s.Barrier))
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDecodeFailsClosed(t *testing.T) {
	enc := sample().Encode()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0xFF
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("version bump", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[8] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("every truncation", func(t *testing.T) {
		for n := 0; n < len(enc); n++ {
			_, err := Decode(enc[:n])
			if err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		}
	})
	t.Run("every bit flip is detected", func(t *testing.T) {
		// Any single-bit corruption must fail (the CRC guarantees it).
		for i := range enc {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 0x10
			if _, err := Decode(bad); err == nil {
				t.Fatalf("bit flip at byte %d decoded successfully", i)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), enc...), 0xAB)); err == nil {
			t.Fatal("trailing garbage decoded successfully")
		}
	})
}

func TestVerify(t *testing.T) {
	s := sample()
	if err := s.Verify(s.State); err != nil {
		t.Fatalf("identical state: %v", err)
	}
	div := []byte("sim now=60000000000 seq=12345\nrng stream=0 draws=18\nheap n=2\n")
	err := s.Verify(div)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("got %v, want ErrDiverged", err)
	}
	// The error must name the diverging layer line.
	if want := "rng stream=0"; !strings.Contains(err.Error(), want) {
		t.Fatalf("divergence error %q does not name the differing line %q", err, want)
	}
}

func TestMatches(t *testing.T) {
	s := sample()
	if err := s.Matches(s.ConfigHash, s.Seed, s.Run); err != nil {
		t.Fatalf("matching run: %v", err)
	}
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"wrong run", s.Matches(s.ConfigHash, s.Seed, "table4/MACA")},
		{"wrong seed", s.Matches(s.ConfigHash, 8, s.Run)},
		{"wrong hash", s.Matches(s.ConfigHash+1, s.Seed, s.Run)},
	} {
		if !errors.Is(tc.err, ErrMismatch) {
			t.Fatalf("%s: got %v, want ErrMismatch", tc.name, tc.err)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.bin")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("OpenManifest: %v", err)
	}
	key := Key("table1/MACAW", 0xabcd, 1)
	if err := m.Put(key, []byte("payload-1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := m.Put(Key("table2/MACA", 0xabcd, 1), []byte("payload-2")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	re, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened manifest has %d entries, want 2", re.Len())
	}
	got, ok := re.Get(key)
	if !ok || string(got) != "payload-1" {
		t.Fatalf("Get(%q) = %q, %t", key, got, ok)
	}
}

func TestManifestCorruptionFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.bin")
	m, _ := OpenManifest(path)
	if err := m.Put(Key("r", 1, 1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenManifest(path)
	if err == nil {
		t.Fatal("corrupted manifest opened without error")
	}
	if re == nil || re.Len() != 0 {
		t.Fatal("corrupted manifest must yield a fresh empty ledger")
	}
}

func sampleV2() *Snapshot {
	s := sample()
	s.Desc = "v1|table=table4|run=table4/MACAW|total=120000000000|warmup=10000000000|seed=7|audit=true"
	s.Delta = &Delta{Kind: "backoff.max", Value: 32}
	return s
}

func TestV2RoundTrip(t *testing.T) {
	for _, s := range []*Snapshot{
		sampleV2(),
		func() *Snapshot { s := sampleV2(); s.Delta = nil; return s }(),
		func() *Snapshot { s := sampleV2(); s.Desc = ""; return s }(),
	} {
		got, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("v2 round trip mismatch:\n  in:  %+v\n  out: %+v", s, got)
		}
	}
}

// TestEncodeIsCanonicalAcrossVersions pins the one-encoding-per-snapshot
// property: a snapshot with no v2 fields emits the legacy v1 container, and
// a hand-built v2 container carrying no v2 fields is rejected.
func TestEncodeIsCanonicalAcrossVersions(t *testing.T) {
	legacy := sample().Encode()
	if v := legacy[8]; v != versionLegacy {
		t.Fatalf("delta-free snapshot encoded as version %d, want %d", v, versionLegacy)
	}
	v2 := sampleV2().Encode()
	if v := v2[8]; v != Version {
		t.Fatalf("delta snapshot encoded as version %d, want %d", v, Version)
	}
	// Splice a v1 body into a v2 header with empty desc and no delta.
	s := sample()
	s.Desc = "x"
	forged := s.Encode()
	// Shrink desc "x" to "" in place: len 1 -> 0, drop the byte, re-CRC.
	off := 8 + 4 + 8 + 8 + 8 + 8 + 8 + 1 + 2 + len(s.Table) + 2 + len(s.Run)
	forged = append(forged[:off], forged[off+2+1:]...)
	binary.LittleEndian.PutUint16(forged[off:], 0)
	forged = forged[:len(forged)-8]
	forged = binary.LittleEndian.AppendUint64(forged, crc64.Checksum(forged, crcTable))
	if _, err := Decode(forged); !errors.Is(err, ErrTruncated) {
		t.Fatalf("v2 container with no v2 fields: got %v, want ErrTruncated", err)
	}
}

func TestMatchesConfigNamesFirstDifferingParameter(t *testing.T) {
	s := sampleV2()
	if err := s.MatchesConfig(s.Desc, s.Seed, s.Run); err != nil {
		t.Fatalf("matching desc: %v", err)
	}
	drifted := strings.Replace(s.Desc, "total=120000000000", "total=40000000000", 1)
	err := s.MatchesConfig(drifted, s.Seed, s.Run)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("got %v, want ErrMismatch", err)
	}
	for _, want := range []string{"total=120000000000", "total=40000000000"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q does not name the differing parameter %q", err, want)
		}
	}
	// A v1 snapshot (no stored desc) falls back to the hash comparison.
	v1 := sample()
	err = v1.MatchesConfig(drifted, v1.Seed, v1.Run)
	if !errors.Is(err, ErrMismatch) || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("v1 fallback: got %v, want bare hash ErrMismatch", err)
	}
}

func TestDescDiff(t *testing.T) {
	for _, tc := range []struct{ a, b, want string }{
		{"v1|a=1|b=2", "v1|a=1|b=2", ""},
		{"v1|a=1|b=2", "v1|a=1|b=3", "b=2 in the snapshot vs b=3 here"},
		{"v1|a=1|b=2", "v1|a=1", `snapshot has "b=2", this run does not`},
		{"v1|a=1", "v1|a=1|delta=load.rate:48", `this run has "delta=load.rate:48", the snapshot does not`},
	} {
		if got := DescDiff(tc.a, tc.b); got != tc.want {
			t.Errorf("DescDiff(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
}
