// Package snapshot implements deterministic checkpoint/restore for the
// simulator (DESIGN.md §14).
//
// A snapshot is a *logical* checkpoint: the complete, canonical state
// inventory of a run at a virtual-time barrier (event heap ordering keys,
// RNG stream cursors, every MAC FSM and backoff/ESN table, transport and
// queue state, phy medium state, fault-injector trajectories, oracle
// expectations) together with the parameters needed to rebuild the run
// (table, run label, seed, durations, audit flag). Restore rebuilds the
// network from those parameters, replays deterministically to the barrier,
// and byte-compares the recaptured inventory against the stored one — any
// divergence fails closed, naming the first differing layer, before a
// single post-barrier event fires. Because a run is a pure function of
// (layout, factory, config, seed) and the engine fires identical event
// sequences whether or not it pauses at barriers, a verified restore's
// continuation is bit-identical to the uninterrupted run.
//
// The event heap cannot be serialized positionally — pooled event records
// hold Go function values — which is why restore is replay-plus-verify
// rather than memcpy-in. What makes this safe rather than wishful is the
// inventory's breadth: the heap dump pins every pending callback's total
// ordering key and symbol, and the RNG cursors pin every generator's
// position, so two histories that agree on the inventory agree on all
// future behavior.
//
// File format (little-endian, CRC-trailed, versioned):
//
//	magic   [8]byte "MACAWSNP"
//	version u32
//	cfgHash u64   FNV-64a of the canonical config description
//	seed    i64
//	barrier i64   virtual time of capture
//	total   i64   run length (rebuild parameter)
//	warmup  i64   warmup length (rebuild parameter)
//	audit   u8    whether the run is oracle-audited
//	table   u16-len string (generator id, e.g. "table4" or "chaos")
//	run     u16-len string (run label, e.g. "table4/MACAW/p=0.1")
//	-- version 2 only --
//	desc    u16-len string (the full config description the hash is of)
//	delta   u8 presence flag; when 1: kind u16-len string, value f64 bits
//	-- all versions --
//	state   u32-len bytes (the canonical state inventory)
//	crc     u64   CRC-64/ECMA of everything above
//
// Version 2 adds the plain-text config description (so a mismatch can name
// the first differing rebuild parameter instead of two opaque hashes) and
// the typed parameter delta of a warm-started sweep variant. A snapshot
// carrying neither encodes as version 1 — the format keeps exactly one
// encoding per snapshot, which is what lets the fuzz target demand that
// every successful decode re-encodes to its input bytes.
//
// Every decode failure is a typed error (ErrBadMagic, ErrVersion,
// ErrTruncated, ErrChecksum); decode never panics, whatever the input —
// the fuzz target in this package holds that line.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"

	"macaw/internal/sim"
)

// Typed decode/verify failures. Callers match with errors.Is and fall back
// to a fresh run; none of these is ever a panic.
var (
	// ErrBadMagic means the file is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion means the snapshot was written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated means the file ends before the encoded structure does
	// (or carries trailing garbage).
	ErrTruncated = errors.New("snapshot: truncated or malformed")
	// ErrChecksum means the payload does not match its CRC trailer.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrMismatch means a structurally valid snapshot describes a
	// different run (config hash, seed, or label) than the one restoring.
	ErrMismatch = errors.New("snapshot: run/config mismatch")
	// ErrDiverged means replay reached the barrier with a state inventory
	// that differs from the stored one — the restore must not continue.
	ErrDiverged = errors.New("snapshot: replayed state diverged")
)

// Version is the current format version. Version 1 files (no config
// description, no delta) still decode; snapshots carrying neither v2 field
// still encode as version 1, keeping one canonical encoding per snapshot.
const Version = 2

// versionLegacy is the pre-delta container layout.
const versionLegacy = 1

var magic = [8]byte{'M', 'A', 'C', 'A', 'W', 'S', 'N', 'P'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Delta is the typed parameter change a warm-started sweep variant applies
// at the snapshot's barrier: one knob from the delta taxonomy (DESIGN.md
// §15) and its value. Whether a kind is applicable — or invalidates the
// captured state entirely — is decided by the applying layer
// (core.ApplyDelta), which fails closed with typed errors; the container
// only carries the declaration.
type Delta struct {
	Kind  string
	Value float64
}

// Snapshot is one decoded checkpoint.
type Snapshot struct {
	ConfigHash uint64
	Seed       int64
	Barrier    sim.Time
	Total      sim.Duration
	Warmup     sim.Duration
	Audit      bool
	Table      string // generator id, resolves the rebuild recipe
	Run        string // run label within the generator
	Desc       string // canonical config description ("" in v1 files)
	Delta      *Delta // sweep-variant parameter delta (nil = none)
	State      []byte // canonical state inventory at Barrier
}

// ConfigHash returns the FNV-64a hash of a canonical config description
// string; the description must include every parameter that affects the
// run's event history.
func ConfigHash(desc string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(desc))
	return h.Sum64()
}

// Encode renders the snapshot in the versioned container format: version 2
// when it carries a config description or a delta, the legacy version 1
// layout otherwise, so every snapshot has exactly one encoding.
func (s *Snapshot) Encode() []byte {
	version := uint32(versionLegacy)
	if s.Desc != "" || s.Delta != nil {
		version = Version
	}
	n := 8 + 4 + 8 + 8 + 8 + 8 + 8 + 1 + 2 + len(s.Table) + 2 + len(s.Run) +
		2 + len(s.Desc) + 1 + 4 + len(s.State) + 8
	b := make([]byte, 0, n)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint32(b, version)
	b = binary.LittleEndian.AppendUint64(b, s.ConfigHash)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Barrier))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Total))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Warmup))
	if s.Audit {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendString16(b, s.Table)
	b = appendString16(b, s.Run)
	if version >= Version {
		b = appendString16(b, s.Desc)
		if s.Delta != nil {
			b = append(b, 1)
			b = appendString16(b, s.Delta.Kind)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Delta.Value))
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.State)))
	b = append(b, s.State...)
	b = binary.LittleEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
	return b
}

func appendString16(b []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// cursor is a bounds-checked reader over the encoded bytes; every read
// failure surfaces as ErrTruncated instead of a slice panic.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.err = ErrTruncated
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u16() uint16 {
	if b := c.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (c *cursor) u32() uint32 {
	if b := c.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if b := c.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (c *cursor) str16() string { return string(c.take(int(c.u16()))) }

// Decode parses a snapshot, failing closed with a typed error on any
// malformation: wrong magic, unknown version, short or oversized payload,
// or checksum mismatch. It never panics.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) {
		return nil, ErrTruncated
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, ErrBadMagic
	}
	if len(data) < len(magic)+4+8 {
		return nil, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(data[len(magic):])
	if v != versionLegacy && v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d or %d", ErrVersion, v, versionLegacy, Version)
	}
	// The CRC trailer covers everything before it; check it before
	// trusting any length field.
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(trailer) {
		return nil, ErrChecksum
	}
	c := &cursor{b: body, off: len(magic) + 4}
	s := &Snapshot{}
	s.ConfigHash = c.u64()
	s.Seed = int64(c.u64())
	s.Barrier = sim.Time(c.u64())
	s.Total = sim.Duration(c.u64())
	s.Warmup = sim.Duration(c.u64())
	if a := c.take(1); a != nil {
		s.Audit = a[0] != 0
	}
	s.Table = c.str16()
	s.Run = c.str16()
	if v >= Version {
		s.Desc = c.str16()
		switch p := c.take(1); {
		case p == nil:
		case p[0] == 1:
			d := &Delta{}
			d.Kind = c.str16()
			d.Value = math.Float64frombits(c.u64())
			s.Delta = d
		case p[0] != 0:
			// Any flag byte beyond 0/1 has no canonical meaning.
			return nil, fmt.Errorf("%w: delta flag %#x", ErrTruncated, p[0])
		}
		if c.err == nil && s.Desc == "" && s.Delta == nil {
			// A v2 container carrying neither v2 field would re-encode
			// as v1 — two encodings for one snapshot. Reject it so the
			// format stays canonical.
			return nil, fmt.Errorf("%w: version 2 container with no v2 fields", ErrTruncated)
		}
	}
	s.State = append([]byte(nil), c.take(int(c.u32()))...)
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(body)-c.off)
	}
	return s, nil
}

// Verify byte-compares a freshly captured state inventory against the
// snapshot's stored one. On divergence it returns ErrDiverged naming the
// first differing inventory line — the layer whose replay went wrong —
// so triage starts at the faulty subsystem instead of at "the output
// differs".
func (s *Snapshot) Verify(state []byte) error {
	if string(state) == string(s.State) {
		return nil
	}
	wantLines := strings.Split(string(s.State), "\n")
	gotLines := strings.Split(string(state), "\n")
	for i := range wantLines {
		if i >= len(gotLines) {
			return fmt.Errorf("%w at %q: replay state ends %d lines early", ErrDiverged, wantLines[i], len(wantLines)-len(gotLines))
		}
		if wantLines[i] != gotLines[i] {
			return fmt.Errorf("%w at line %d:\n  snapshot: %q\n  replay:   %q", ErrDiverged, i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Errorf("%w: replay state has %d extra lines, first %q", ErrDiverged, len(gotLines)-len(wantLines), gotLines[len(wantLines)])
}

// Matches checks that the snapshot describes the run identified by (hash,
// seed, run label), returning ErrMismatch naming the first disagreeing
// field otherwise.
func (s *Snapshot) Matches(configHash uint64, seed int64, run string) error {
	switch {
	case s.Run != run:
		return fmt.Errorf("%w: snapshot is of run %q, not %q", ErrMismatch, s.Run, run)
	case s.Seed != seed:
		return fmt.Errorf("%w: snapshot seed %d, run seed %d", ErrMismatch, s.Seed, seed)
	case s.ConfigHash != configHash:
		return fmt.Errorf("%w: config hash %#x, run config hash %#x", ErrMismatch, s.ConfigHash, configHash)
	}
	return nil
}

// MatchesConfig is Matches against the restoring run's full config
// description instead of its bare hash. When a v2 snapshot carries its own
// description, a hash mismatch names the first differing rebuild parameter
// ("total=120000000000 in the snapshot vs total=40000000000 here") instead
// of two opaque hashes; v1 snapshots fall back to the hash comparison.
func (s *Snapshot) MatchesConfig(desc string, seed int64, run string) error {
	err := s.Matches(ConfigHash(desc), seed, run)
	if err == nil || s.Desc == "" || !errors.Is(err, ErrMismatch) {
		return err
	}
	if diff := DescDiff(s.Desc, desc); diff != "" {
		return fmt.Errorf("%w: %s", ErrMismatch, diff)
	}
	return err
}

// DescDiff compares two canonical config descriptions ("k=v|k=v|…") and
// renders the first differing parameter, or "" when they agree. A field
// present on only one side is reported as missing on the other.
func DescDiff(snap, here string) string {
	a, b := strings.Split(snap, "|"), strings.Split(here, "|")
	for i := 0; i < len(a) || i < len(b); i++ {
		switch {
		case i >= len(b):
			return fmt.Sprintf("snapshot has %q, this run does not", a[i])
		case i >= len(a):
			return fmt.Sprintf("this run has %q, the snapshot does not", b[i])
		case a[i] != b[i]:
			return fmt.Sprintf("%s in the snapshot vs %s here", a[i], b[i])
		}
	}
	return ""
}

// WriteFile atomically writes the snapshot to path (tmp + rename), so a
// crash mid-write never leaves a torn file where a valid checkpoint was.
func WriteFile(path string, s *Snapshot) error {
	return writeFileAtomic(path, s.Encode())
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// FileName returns the canonical snapshot file name for a run label at a
// barrier: label with separators flattened, seed, and barrier nanoseconds.
func FileName(run string, seed int64, barrier sim.Time) string {
	r := strings.NewReplacer("/", "_", " ", "_", "=", "-")
	return fmt.Sprintf("%s-seed%d-b%d.snap", r.Replace(run), seed, barrier)
}
