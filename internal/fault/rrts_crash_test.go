package fault

import (
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

// rrtsTxLog records when a named station transmits an RRTS, via the passive
// MAC observer hook.
type rrtsTxLog struct {
	s     *sim.Simulator
	from  string
	times []sim.Time
}

type rrtsTxObs struct {
	l    *rrtsTxLog
	name string
}

func (o rrtsTxObs) ObserveTx(f *frame.Frame) {
	if f.Type == frame.RRTS && o.name == o.l.from {
		o.l.times = append(o.l.times, o.l.s.Now())
	}
}
func (o rrtsTxObs) ObserveRx(*frame.Frame)                 {}
func (o rrtsTxObs) ObserveState(string, string)            {}
func (o rrtsTxObs) ObserveTimer(sim.Time)                  {}
func (o rrtsTxObs) ObserveQueue(string, frame.NodeID, int) {}
func (o rrtsTxObs) ObserveDeliver(*frame.Frame)            {}

// TestNoRRTSToCrashedSender: a MACAW receiver holding a pending-RRTS note
// for a sender that crashes must drop the note once the sender has been
// silent past its worst-case retry period, instead of soliciting the dead
// station forever. The figure-6 cells make P1 note B1's deferred RTSes
// continuously; B1 then crashes for good. An RRTS shortly after the crash
// is legitimate — the note cannot know yet — but none may follow once the
// staleness bound has passed.
func TestNoRRTSToCrashedSender(t *testing.T) {
	n := core.NewNetwork(1)
	l := &rrtsTxLog{s: n.Sim, from: "P1"}
	n.SetMACObserver(func(st *core.Station) mac.Observer { return rrtsTxObs{l: l, name: st.Name()} })
	if err := topo.Figure6().Build(n, core.MACAWFactory(macaw.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(n)
	const crashAt = 10 * sim.Second
	in.CrashRestart("B1", crashAt, 0) // never restarts
	n.Run(20*sim.Second, 0)

	// The staleness bound mirrors macaw.rrtsStale: twice the worst-case
	// retry period of a live blocked sender (CTS wait plus a maximal
	// two-ended contention window).
	cfg := mac.DefaultConfig()
	stale := 2 * (cfg.CTSWait() + sim.Duration(2*backoff.DefaultMax)*cfg.Slot())
	var before, late int
	for _, at := range l.times {
		switch {
		case at <= crashAt:
			before++
		case at > crashAt+stale:
			late++
		}
	}
	if before == 0 {
		t.Fatal("choreography broke: P1 never sent an RRTS while B1 was alive")
	}
	if late > 0 {
		t.Fatalf("%d RRTS solicited the crashed sender after the %v staleness bound", late, stale)
	}
}
