package fault

import (
	"strings"
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// twoStations builds A (sender pad) and B (receiver base) in one cell with a
// 20 pps UDP stream A->B, running the protocol built by f.
func twoStations(t *testing.T, seed int64, f core.MACFactory) (*core.Network, *core.Station, *core.Station) {
	t.Helper()
	n := core.NewNetwork(seed)
	b := n.AddStation("B", geom.V(0, 0, 12), f)
	a := n.AddStation("A", geom.V(4, 3, 6), f)
	n.AddStream(a, b, core.UDP, 20)
	return n, a, b
}

// crashWhen polls cond at high scheduling priority (after watchdog sweeps)
// every 50 µs and crashes st the first time it holds.
func crashWhen(n *core.Network, st *core.Station, cond func() bool, crashedAt *sim.Time) {
	var poll func()
	poll = func() {
		if *crashedAt == 0 && cond() {
			st.Crash()
			*crashedAt = n.Sim.Now()
			return
		}
		n.Sim.AtPriority(n.Sim.Now()+50*sim.Microsecond, 2, poll)
	}
	n.Sim.AtPriority(0, 2, poll)
}

// TestReceiverKilledBetweenCTSAndData is the ISSUE 2 satellite regression:
// the receiver dies after granting a CTS but before the data lands. The
// sender must ride its timeout path (WFACK/WFCTS), retry within the budget,
// drop the packet, and resume cleanly when the receiver returns — no wedged
// FSM, no retry loop, no stale backoff entry.
func TestReceiverKilledBetweenCTSAndData(t *testing.T) {
	cases := []struct {
		name     string
		factory  core.MACFactory
		ctsState string // receiver state right after its CTS is sent
	}{
		{"macaw", core.MACAWFactory(macaw.DefaultOptions()), "WFDS"},
		{"maca", core.MACAFactory(), "WFDATA"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, a, b := twoStations(t, 11, tc.factory)
			w := NewWatchdog(n)
			w.Interval = 20 * sim.Millisecond
			w.MaxQueue = 256
			w.Start(0)

			var crashedAt sim.Time
			crashWhen(n, b, func() bool {
				insp, ok := b.MAC().(mac.Inspector)
				return ok && insp.FSMState() == tc.ctsState
			}, &crashedAt)
			// Restart well after the sender has exhausted its retries.
			restartAt := sim.Time(0)
			n.At(2*sim.Second, func() {
				if crashedAt != 0 && b.Radio().Enabled() == false {
					b.Restart()
					restartAt = n.Sim.Now()
				}
			})

			n.Run(4*sim.Second, 100*sim.Millisecond)

			if crashedAt == 0 {
				t.Fatalf("receiver never reached %s; scenario did not trigger", tc.ctsState)
			}
			if restartAt == 0 {
				t.Fatalf("receiver never restarted")
			}
			if a.MAC().Stats().Drops == 0 {
				t.Errorf("sender never dropped the abandoned packet\n%s", w.Dump())
			}
			if b.MAC().Stats().DataReceived == 0 {
				t.Errorf("traffic did not resume after restart\n%s", w.Dump())
			}
			if stale := w.StaleBackoff(); len(stale) > 0 {
				t.Errorf("stale backoff entries after recovery: %v", stale)
			}
			if w.Checks() == 0 {
				t.Fatalf("watchdog never ran")
			}
		})
	}
}

// TestCrashRestartDeterministic: the same seed reproduces a faulted run
// byte-for-byte, including fault counters.
func TestCrashRestartDeterministic(t *testing.T) {
	run := func() (string, string) {
		n, a, b := twoStations(t, 7, core.MACAWFactory(macaw.DefaultOptions()))
		_ = a
		in := NewInjector(n)
		in.CrashRestart("B", 1*sim.Second, 1300*sim.Millisecond)
		in.BurstChannel(0, 0.9, 300*sim.Millisecond, 80*sim.Millisecond)
		in.AsymmetricLoss("A", "B", 0.2)
		in.Walk("A", 500*sim.Millisecond, 200*sim.Millisecond,
			geom.V(5, 3, 6), geom.V(6, 3, 6), geom.V(4, 3, 6))
		w := NewWatchdog(n)
		w.MaxQueue = 256
		w.Start(0)
		res := n.Run(3*sim.Second, 200*sim.Millisecond)
		_ = b
		return res.String(), in.Counters().String()
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 {
		t.Fatalf("results differ across identical seeds:\n%s\nvs\n%s", r1, r2)
	}
	if c1 != c2 {
		t.Fatalf("counters differ: %q vs %q", c1, c2)
	}
	if !strings.Contains(c1, "crashes=1") || !strings.Contains(c1, "restarts=1") || !strings.Contains(c1, "moves=3") {
		t.Fatalf("counters missing events: %q", c1)
	}
}

// TestGilbertElliottTrajectoryDeterministic: the burst-loss state trajectory
// is a pure function of the clock and seed — sampling it does not perturb it.
func TestGilbertElliottTrajectoryDeterministic(t *testing.T) {
	sample := func(extraSamples bool) []bool {
		s := sim.New(99)
		g := phy.NewGilbertElliott(s, 0, 1, 50*sim.Millisecond, 20*sim.Millisecond)
		var tr []bool
		for i := 1; i <= 200; i++ {
			at := sim.Time(i) * 10 * sim.Millisecond
			s.At(at, func() { tr = append(tr, g.Bad()) })
			if extraSamples {
				// Extra interleaved samples must not shift the
				// trajectory seen at the common instants.
				s.At(at+3*sim.Millisecond, func() { g.Bad() })
			}
		}
		s.RunAll()
		return tr
	}
	base := sample(false)
	dense := sample(true)
	var bads int
	for i := range base {
		if base[i] != dense[i] {
			t.Fatalf("trajectory diverged at sample %d", i)
		}
		if base[i] {
			bads++
		}
	}
	if bads == 0 || bads == len(base) {
		t.Fatalf("degenerate trajectory: %d/%d bad samples", bads, len(base))
	}
}

// stubEngine supplies the inert remainder of the mac.Engine surface for the
// watchdog test stubs.
type stubEngine struct{ halted bool }

func (s *stubEngine) Halt()                       { s.halted = true }
func (s *stubEngine) Halted() bool                { return s.halted }
func (s *stubEngine) Protocol() string            { return "stub" }
func (s *stubEngine) AppendState(b []byte) []byte { return b }
func (s *stubEngine) AdoptFrom(mac.Engine) error  { return nil }

// wedgedMAC is a stub engine stuck outside IDLE with no timer — the exact
// pathology the watchdog exists to catch.
type wedgedMAC struct {
	stubEngine
	stats mac.Stats
}

func (w *wedgedMAC) Enqueue(*mac.Packet)       {}
func (w *wedgedMAC) QueueLen() int             { return 1 }
func (w *wedgedMAC) Stats() mac.Stats          { return w.stats }
func (w *wedgedMAC) RadioReceive(*frame.Frame) {}
func (w *wedgedMAC) RadioCarrier(bool)         {}
func (w *wedgedMAC) FSMState() string          { return "WFCTS" }
func (w *wedgedMAC) TimerPending() bool        { return false }
func (w *wedgedMAC) TimerWhen() sim.Time       { return -1 }

// loopingMAC looks idle but accumulates retries without ever completing or
// dropping anything.
type loopingMAC struct {
	stubEngine
	retries int
}

func (l *loopingMAC) Enqueue(*mac.Packet) {}
func (l *loopingMAC) QueueLen() int       { return 0 }
func (l *loopingMAC) Stats() mac.Stats {
	l.retries += 100
	return mac.Stats{Retries: l.retries}
}
func (l *loopingMAC) RadioReceive(*frame.Frame) {}
func (l *loopingMAC) RadioCarrier(bool)         {}
func (l *loopingMAC) FSMState() string          { return "IDLE" }
func (l *loopingMAC) TimerPending() bool        { return false }
func (l *loopingMAC) TimerWhen() sim.Time       { return -1 }

func TestWatchdogCatchesWedgeAndRetryLoop(t *testing.T) {
	cases := []struct {
		name string
		mk   core.MACFactory
		want string
	}{
		{"wedge", func(env *mac.Env) mac.Engine { return &wedgedMAC{} }, "wedged"},
		{"retry-loop", func(env *mac.Env) mac.Engine { return &loopingMAC{} }, "retry loop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := core.NewNetwork(1)
			n.AddStation("X", geom.V(0, 0, 6), tc.mk)
			w := NewWatchdog(n)
			w.Interval = 10 * sim.Millisecond
			var reports []string
			w.OnViolation = func(r string) { reports = append(reports, r) }
			w.Start(0)
			n.Sim.Run(500 * sim.Millisecond)
			if len(reports) == 0 {
				t.Fatalf("watchdog missed the %s", tc.name)
			}
			if !strings.Contains(reports[0], tc.want) {
				t.Fatalf("report lacks %q:\n%s", tc.want, reports[0])
			}
			if !strings.Contains(reports[0], "station dump") {
				t.Fatalf("report lacks FSM dump:\n%s", reports[0])
			}
		})
	}
}

// TestWatchdogQueueBound: a queue past MaxQueue is reported as a leak.
func TestWatchdogQueueBound(t *testing.T) {
	n, a, _ := twoStations(t, 3, core.MACAWFactory(macaw.DefaultOptions()))
	w := NewWatchdog(n)
	w.Interval = 10 * sim.Millisecond
	w.MaxQueue = 2
	var reports []string
	w.OnViolation = func(r string) { reports = append(reports, r) }
	w.Start(0)
	n.At(0, func() {
		for i := 0; i < 5; i++ {
			a.MAC().Enqueue(&mac.Packet{Dst: 1, Size: 512})
		}
	})
	n.Sim.Run(30 * sim.Millisecond)
	found := false
	for _, r := range reports {
		if strings.Contains(r, "queue leak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("queue past bound not reported: %v", reports)
	}
}

// TestStaleBackoffDetection: an entry whose SeenESN exceeds anything the
// peer's current life has issued is reported stale.
func TestStaleBackoffDetection(t *testing.T) {
	n, a, b := twoStations(t, 5, core.MACAWFactory(macaw.DefaultOptions()))
	w := NewWatchdog(n)
	// Fabricate the post-restart situation directly: A remembers a high
	// exchange number from B's previous life while B's fresh policy has
	// barely started counting.
	apd := a.MAC().(interface{ Policy() backoff.Policy }).Policy().(*backoff.PerDest)
	bpd := b.MAC().(interface{ Policy() backoff.Policy }).Policy().(*backoff.PerDest)
	apd.Peer(b.ID()).SeenESN = 500
	bpd.Peer(a.ID()).SendESN = 2
	stale := w.StaleBackoff()
	if len(stale) != 1 || !strings.Contains(stale[0], "stale entry") {
		t.Fatalf("stale entry not detected: %v", stale)
	}
	// Resync (what the backoff fix does on the first post-restart frame)
	// clears the report.
	apd.Peer(b.ID()).SeenESN = 2
	if stale := w.StaleBackoff(); len(stale) != 0 {
		t.Fatalf("resynced entry still reported: %v", stale)
	}
}

// TestInjectorMinDowntime: a restart inside the in-flight window is a
// schedule bug and must be rejected loudly.
func TestInjectorMinDowntime(t *testing.T) {
	n, _, _ := twoStations(t, 1, core.MACAFactory())
	in := NewInjector(n)
	defer func() {
		if recover() == nil {
			t.Fatalf("restart within MinDowntime accepted")
		}
	}()
	in.CrashRestart("B", sim.Second, sim.Second+MinDowntime/2)
}

// TestHaltedEnqueueDrops: a halted MAC reports enqueued packets as dropped
// instead of leaking them.
func TestHaltedEnqueueDrops(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   core.MACFactory
	}{
		{"macaw", core.MACAWFactory(macaw.DefaultOptions())},
		{"maca", core.MACAFactory()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, a, _ := twoStations(t, 1, tc.mk)
			n.At(10*sim.Millisecond, func() { a.Crash() })
			n.At(20*sim.Millisecond, func() {
				a.MAC().Enqueue(&mac.Packet{Dst: 1, Size: 512})
				if a.MAC().QueueLen() != 0 {
					t.Errorf("halted MAC queued a packet")
				}
			})
			n.Sim.Run(30 * sim.Millisecond)
			if a.Dropped() == 0 {
				t.Fatalf("halted enqueue not reported as drop")
			}
		})
	}
}
