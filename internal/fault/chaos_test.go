package fault

import (
	"math/rand"
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/macaw"
	"macaw/internal/oracle"
	"macaw/internal/sim"
)

// chaosSeeds is the number of random fault schedules per protocol in the
// full suite (ISSUE 2 acceptance: >= 200). -short trims it for smoke runs.
const chaosSeeds = 200

// chaosProtocols are the engines the chaos suite drives.
func chaosProtocols() []struct {
	name string
	mk   func() core.MACFactory
} {
	return []struct {
		name string
		mk   func() core.MACFactory
	}{
		{"csma", func() core.MACFactory { return core.CSMAFactory(csma.Options{ACK: true}) }},
		{"maca", func() core.MACFactory { return core.MACAFactory() }},
		{"macaw", func() core.MACFactory { return core.MACAWFactory(macaw.DefaultOptions()) }},
	}
}

// chaosOutcome is everything a chaos run produces that determinism must
// cover: measured rates, fault exposure, and watchdog activity.
type chaosOutcome struct {
	results  string
	counters string
	checks   int
	stale    int
	// recoverable marks schedules whose channel is clean by end of run
	// (no persistent burst/asym loss): stale backoff entries must be
	// repaired in those — the resync frame cannot have been lost.
	recoverable bool
}

// runChaos executes one seeded random fault schedule against the protocol
// built by mk. The schedule — which fault classes fire, when, and where — is
// drawn from its own generator seeded by seed, and the simulation itself is
// seeded the same way, so the whole run is a pure function of (mk, seed).
// Watchdog violations fail the test immediately with the FSM dump.
func runChaos(t *testing.T, seed int64, mk core.MACFactory) chaosOutcome {
	t.Helper()
	const total = 3 * sim.Second
	const warmup = 500 * sim.Millisecond

	n := core.NewNetwork(seed)
	// Every schedule runs under the conformance oracle: a protocol-rule
	// breach under faults fails the suite with a replayable report, not
	// just a deflated throughput number.
	orc := oracle.New(seed)
	orc.Attach(n)
	// Two cells: B1 with P1, P2; B2 with P3, P4. Traffic flows both
	// directions in each cell so crash/asym faults hit senders and
	// receivers alike.
	b1 := n.AddStation("B1", geom.V(0, 0, 12), mk)
	b2 := n.AddStation("B2", geom.V(14, 0, 12), mk)
	p1 := n.AddStation("P1", geom.V(-4, 3, 6), mk)
	p2 := n.AddStation("P2", geom.V(4, 3, 6), mk)
	p3 := n.AddStation("P3", geom.V(12, 3, 6), mk)
	p4 := n.AddStation("P4", geom.V(16, 3, 6), mk)
	n.AddStream(p1, b1, core.UDP, 20)
	n.AddStream(b1, p2, core.UDP, 20)
	n.AddStream(p3, b2, core.UDP, 20)
	n.AddStream(b2, p4, core.UDP, 20)

	in := NewInjector(n)
	rng := rand.New(rand.NewSource(seed * 2654435761))
	names := []string{"B1", "B2", "P1", "P2", "P3", "P4"}
	pads := []string{"P1", "P2", "P3", "P4"}

	// Crash/restart: 1-2 stations, down 100-400 ms, inside the run.
	for i, nc := 0, 1+rng.Intn(2); i < nc; i++ {
		victim := names[rng.Intn(len(names))]
		crashAt := warmup + sim.Time(rng.Int63n(int64(total-warmup)/2))
		down := MinDowntime + sim.Duration(rng.Int63n(int64(350*sim.Millisecond)))
		in.CrashRestart(victim, crashAt, crashAt+down)
	}
	// Burst loss on roughly half the schedules.
	lossy := false
	if rng.Intn(2) == 0 {
		pBad := 0.7 + 0.3*rng.Float64()
		in.BurstChannel(0, pBad, 200*sim.Millisecond, 40*sim.Millisecond)
		lossy = true
	}
	// Asymmetric link fault on roughly half.
	if rng.Intn(2) == 0 {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		if from != to {
			in.AsymmetricLoss(from, to, 0.3+0.6*rng.Float64())
			lossy = true
		}
	}
	// Mobility walk: one pad wanders toward the other cell and back home,
	// so its streams fail mid-run but can recover by the end.
	if rng.Intn(2) == 0 {
		p := pads[rng.Intn(len(pads))]
		home := n.Station(p).Radio().Pos()
		in.Walk(p, warmup, 300*sim.Millisecond,
			geom.V(7, 3, 6), geom.V(10, 3, 6), geom.V(7, 3, 6), home)
	}

	w := NewWatchdog(n)
	w.Interval = 50 * sim.Millisecond
	// Offered load is 20 pps/stream over 3 s; anything past this bound is
	// a leak, not backlog.
	w.MaxQueue = 128
	w.OnViolation = func(report string) {
		t.Fatalf("seed %d: %s", seed, report)
	}
	w.Start(0)

	res := n.Run(total, warmup)
	if err := orc.Err(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	fc := in.Counters()
	fc.Add(w.Counters())
	return chaosOutcome{
		results:     res.String(),
		counters:    fc.String(),
		checks:      w.Checks(),
		stale:       len(w.StaleBackoff()),
		recoverable: !lossy,
	}
}

// TestChaosSchedules drives every protocol through chaosSeeds random fault
// schedules, asserting zero watchdog violations (wedges, retry loops, queue
// leaks), no stale backoff entries at end of run, and bit-exact determinism
// on a sample of seeds.
func TestChaosSchedules(t *testing.T) {
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	for _, proto := range chaosProtocols() {
		proto := proto
		t.Run(proto.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= int64(seeds); seed++ {
				out := runChaos(t, seed, proto.mk())
				if out.checks == 0 {
					t.Fatalf("seed %d: watchdog never swept", seed)
				}
				if out.recoverable && out.stale > 0 {
					t.Fatalf("seed %d: %d stale backoff entries after recovery", seed, out.stale)
				}
				// Every 20th schedule re-runs to pin determinism:
				// identical seed, identical everything.
				if seed%20 == 0 {
					again := runChaos(t, seed, proto.mk())
					if again.results != out.results || again.counters != out.counters {
						t.Fatalf("seed %d nondeterministic:\n--- first\n%s%s\n--- second\n%s%s",
							seed, out.results, out.counters, again.results, again.counters)
					}
				}
			}
		})
	}
}

// TestChaosSurvivesPermanentCrash: a station that never comes back must not
// wedge its peers — their retries bound out into drops and the rest of the
// network keeps flowing.
func TestChaosSurvivesPermanentCrash(t *testing.T) {
	for _, proto := range chaosProtocols() {
		t.Run(proto.name, func(t *testing.T) {
			n := core.NewNetwork(13)
			mk := proto.mk()
			b := n.AddStation("B", geom.V(0, 0, 12), mk)
			p1 := n.AddStation("P1", geom.V(-4, 3, 6), mk)
			p2 := n.AddStation("P2", geom.V(4, 3, 6), mk)
			n.AddStream(p1, b, core.UDP, 20)
			n.AddStream(p2, b, core.UDP, 20)
			in := NewInjector(n)
			in.CrashRestart("P1", sim.Second, 0) // never restarts
			w := NewWatchdog(n)
			w.Interval = 50 * sim.Millisecond
			w.MaxQueue = 128
			w.OnViolation = func(r string) { t.Fatal(r) }
			w.Start(0)
			res := n.Run(3*sim.Second, 500*sim.Millisecond)
			if res.PPS("P2-B") == 0 {
				t.Fatalf("surviving stream starved:\n%s", res)
			}
			if fc := in.Counters(); fc.Crashes != 1 || fc.Restarts != 0 {
				t.Fatalf("counters: %s", fc)
			}
		})
	}
}

// BenchmarkChaosRun gauges the cost of one seeded chaos schedule (the suite
// runs hundreds).
func BenchmarkChaosRun(b *testing.B) {
	mk := core.MACAWFactory(macaw.DefaultOptions())
	for i := 0; i < b.N; i++ {
		t := &testing.T{}
		runChaos(t, int64(i)+1, mk)
	}
}
