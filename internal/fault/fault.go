// Package fault injects deterministic faults into a simulated network and
// checks the liveness invariants the protocols must keep under them.
//
// Every fault is driven by the simulation clock and the simulator's seeded
// generator streams, so a faulted run remains a pure function of (layout,
// factory, config, seed): the same seed reproduces the same crashes, burst
// episodes, link faults, and walks, event for event. The injector composes
// with any MAC — it talks only to core.Station (crash/restart), phy.Medium
// (noise models), and phy.Radio (mobility).
//
// Fault classes (ISSUE 2 tentpole):
//
//   - Node crash/restart: the radio goes dark mid-exchange and the MAC is
//     halted; a later restart builds a fresh MAC instance while peers still
//     hold ESN/backoff entries for the dead one.
//   - Gilbert–Elliott burst loss: phy.GilbertElliott, temporally correlated
//     losses (whole exchanges vanish during bad episodes).
//   - Asymmetric links: phy.LinkLoss applied to one direction of a pair.
//   - Mobility walks: scheduled relocations carrying a station between
//     cells mid-stream.
package fault

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/stats"
)

// MinDowntime is the smallest allowed crash-to-restart gap. The medium's own
// end-of-transmission event clears a dead station's in-flight frame at most
// one data airtime (16 ms at 256 kbps) after the crash; restarting after the
// air is guaranteed clear keeps the fresh MAC from colliding with the dead
// instance's last frame inside the same radio.
const MinDowntime = 50 * sim.Millisecond

// Injector schedules deterministic faults on a network. Create it after the
// network's stations exist and before Run.
type Injector struct {
	n     *core.Network
	noise phy.MultiNoise
	ge    []*phy.GilbertElliott
	fc    stats.FaultCounters
}

// NewInjector returns an injector for n.
func NewInjector(n *core.Network) *Injector {
	return &Injector{n: n}
}

// station resolves a station name, panicking on a typo — fault schedules are
// test fixtures, and a silently missing target would void the scenario.
func (in *Injector) station(name string) *core.Station {
	st := in.n.Station(name)
	if st == nil {
		panic(fmt.Sprintf("fault: unknown station %q", name))
	}
	return st
}

// CrashRestart schedules the named station to crash at crashAt and restart
// at restartAt; restartAt = 0 means the station stays down. The MAC halts
// (queued packets drop, timers cancel) and the radio goes dark; peers keep
// whatever backoff/ESN state they hold. Restart must trail the crash by at
// least MinDowntime so the dead instance's last frame clears the air first.
func (in *Injector) CrashRestart(name string, crashAt, restartAt sim.Time) {
	st := in.station(name)
	if restartAt != 0 && restartAt < crashAt+MinDowntime {
		panic(fmt.Sprintf("fault: restart of %q at %v within MinDowntime of crash at %v", name, restartAt, crashAt))
	}
	in.n.At(crashAt, func() {
		if st.Crash() {
			in.fc.Crashes++
		}
	})
	if restartAt != 0 {
		in.n.At(restartAt, func() {
			if st.Restart() {
				in.fc.Restarts++
			}
		})
	}
}

// BurstChannel installs a Gilbert–Elliott burst-loss channel (composed with
// any previously installed noise) and returns it for introspection. The
// episode schedule draws from its own simulator stream, so packet arrivals
// sample the loss trajectory without perturbing it.
func (in *Injector) BurstChannel(pGood, pBad float64, meanGood, meanBad sim.Duration) *phy.GilbertElliott {
	g := phy.NewGilbertElliott(in.n.Sim, pGood, pBad, meanGood, meanBad)
	in.ge = append(in.ge, g)
	in.addNoise(g)
	return g
}

// AsymmetricLoss drops frames from one named station to another with
// probability p — one direction only, leaving the reverse path clean.
func (in *Injector) AsymmetricLoss(from, to string, p float64) {
	a, b := in.station(from), in.station(to)
	in.addNoise(phy.LinkLoss{From: a.ID(), To: b.ID(), P: p})
	in.fc.LinkFaults++
}

// addNoise composes m with every model installed so far.
func (in *Injector) addNoise(m phy.NoiseModel) {
	in.noise = append(in.noise, m)
	in.n.Medium.SetNoise(in.noise)
}

// Walk schedules a deterministic mobility walk: the station moves to path[0]
// at start and advances one waypoint every step thereafter, reproducing the
// paper's migration scenarios (a pad carried between cells mid-stream).
func (in *Injector) Walk(name string, start sim.Time, step sim.Duration, path ...geom.Vec3) {
	st := in.station(name)
	for i, pos := range path {
		pos := pos
		in.n.At(start+sim.Time(i)*step, func() {
			st.Radio().SetPos(pos)
			in.fc.Moves++
		})
	}
}

// Counters returns the fault-exposure counters accumulated so far. Burst
// episodes are read live from the installed channels, so call it after the
// run for end-of-run totals.
func (in *Injector) Counters() stats.FaultCounters {
	fc := in.fc
	for _, g := range in.ge {
		fc.BurstEpisodes += g.Episodes()
	}
	return fc
}

// AppendState appends the injector's dynamic state for the snapshot
// inventory (DESIGN.md §14). The crash/restart/walk *schedules* live in the
// event heap (already covered by the engine dump); what the injector itself
// owns is the exposure counters and each burst channel's Markov trajectory.
func (in *Injector) AppendState(b []byte) []byte {
	fc := in.fc
	b = fmt.Appendf(b, "fault crashes=%d restarts=%d linkfaults=%d moves=%d noise=%d ge=%d\n",
		fc.Crashes, fc.Restarts, fc.LinkFaults, fc.Moves, len(in.noise), len(in.ge))
	for _, g := range in.ge {
		b = g.AppendState(b)
	}
	return b
}
