package fault

import (
	"fmt"
	"strings"

	"macaw/internal/backoff"
	"macaw/internal/mac"
	"macaw/internal/sim"
	"macaw/internal/stats"

	"macaw/internal/core"
)

// Watchdog sweeps every station's FSM at a fixed simulated interval and
// panics (by default) when a liveness invariant breaks:
//
//   - Wedged FSM: a station outside IDLE, or idle with pending traffic,
//     with no state timer armed — nothing will ever move it again.
//   - Unbounded retry loop: retries accumulate past any bound the retry
//     limit allows without a single completion or drop making progress.
//   - Queue leak: a MAC queue grows past MaxQueue.
//
// Checks run at scheduling priority +1, after every same-instant protocol
// event (phy deliveries at negative priority, timers at 0) has settled, so
// the sweep observes quiescent state, never a mid-callback transient.
// Stations that are crashed (radio disabled / MAC halted) or whose MAC does
// not implement mac.Inspector are skipped.
//
// Violations panic with a full FSM/timer dump of every station; tests set
// OnViolation to capture the report instead.
type Watchdog struct {
	n *core.Network
	// Interval is the sweep period (default 100 ms).
	Interval sim.Duration
	// MaxQueue bounds every MAC queue; 0 disables the check.
	MaxQueue int
	// RetryBudget bounds retries-without-progress per station; 0 derives
	// a generous bound from the retry limit and station count.
	RetryBudget int
	// OnViolation, when set, receives the violation report instead of the
	// default panic.
	OnViolation func(report string)

	checks     int
	violations int
	prog       map[*core.Station]*progress
}

// progress tracks a station's forward movement between sweeps.
type progress struct {
	sent, drops int // completions at the last sweep
	retryBase   int // retries at the last sweep that made progress
}

// NewWatchdog returns a watchdog for n with the default interval and a
// retry budget derived from the network's retry limit and size.
func NewWatchdog(n *core.Network) *Watchdog {
	return &Watchdog{
		n:        n,
		Interval: 100 * sim.Millisecond,
		prog:     make(map[*core.Station]*progress),
	}
}

// Start arms the sweep loop from time at onward. Call before Network.Run.
func (w *Watchdog) Start(at sim.Time) {
	w.n.Sim.AtPriority(at, 1, w.sweep)
}

// Checks reports how many sweeps completed.
func (w *Watchdog) Checks() int { return w.checks }

// Violations reports how many sweeps found a broken invariant (only
// meaningful with OnViolation set; the default panics on the first).
func (w *Watchdog) Violations() int { return w.violations }

// Counters folds the watchdog's activity into fault counters.
func (w *Watchdog) Counters() stats.FaultCounters {
	return stats.FaultCounters{WatchdogChecks: w.checks}
}

// retryBudget returns the configured or derived retries-without-progress
// bound: a station can burn at most MaxRetries+1 attempts per destination
// before a drop (which is progress), so anything beyond that times the
// number of possible destinations means a counter is looping.
func (w *Watchdog) retryBudget() int {
	if w.RetryBudget > 0 {
		return w.RetryBudget
	}
	per := w.n.Cfg.MaxRetries + 2
	return per*(len(w.n.Stations())+1) + 8
}

func (w *Watchdog) sweep() {
	var faults []string
	for _, st := range w.n.Stations() {
		if v := w.checkStation(st); v != "" {
			faults = append(faults, v)
		}
	}
	w.checks++
	if len(faults) > 0 {
		w.violations++
		report := fmt.Sprintf("fault: watchdog at t=%v:\n  %s\n%s",
			w.n.Sim.Now(), strings.Join(faults, "\n  "), w.Dump())
		if w.OnViolation != nil {
			w.OnViolation(report)
		} else {
			panic(report)
		}
	}
	w.n.Sim.AtPriority(w.n.Sim.Now()+w.Interval, 1, w.sweep)
}

// checkStation returns a one-line violation description, or "".
func (w *Watchdog) checkStation(st *core.Station) string {
	if !st.Radio().Enabled() {
		return "" // crashed or powered off: exempt until restart
	}
	if st.MAC().Halted() {
		return ""
	}
	insp, ok := st.MAC().(mac.Inspector)
	if !ok {
		// All six in-repo engines implement mac.Inspector; this guards
		// external engines that opt out of FSM introspection.
		return ""
	}
	qlen := st.MAC().QueueLen()
	state := insp.FSMState()
	if !insp.TimerPending() {
		if state != "IDLE" {
			return fmt.Sprintf("%s wedged: state %s with no timer armed", st.Name(), state)
		}
		if qlen > 0 {
			return fmt.Sprintf("%s wedged: IDLE with %d queued packets and no timer armed", st.Name(), qlen)
		}
	}
	if w.MaxQueue > 0 && qlen > w.MaxQueue {
		return fmt.Sprintf("%s queue leak: %d packets queued (bound %d)", st.Name(), qlen, w.MaxQueue)
	}
	ms := st.MAC().Stats()
	p := w.prog[st]
	if p == nil {
		p = &progress{}
		w.prog[st] = p
	}
	if ms.DataSent != p.sent || ms.Drops != p.drops {
		p.sent, p.drops, p.retryBase = ms.DataSent, ms.Drops, ms.Retries
	} else if ms.Retries-p.retryBase > w.retryBudget() {
		return fmt.Sprintf("%s retry loop: %d retries without a completion or drop (budget %d)",
			st.Name(), ms.Retries-p.retryBase, w.retryBudget())
	}
	return ""
}

// policyHolder is the introspection surface MACAW exposes for its backoff
// policy.
type policyHolder interface{ Policy() backoff.Policy }

// StaleBackoff reports the per-destination backoff entries that are stale
// against a restarted peer: holder Y's entry about X claims to have seen an
// exchange number higher than X has issued in its current life. Exchange
// numbers only grow within one lifetime, so SeenESN(Y about X) must never
// exceed SendESN(X toward Y) once both entries exist; an entry left behind
// by a dead instance violates this until the resync rule repairs it on X's
// first post-restart frame. Pairs where X holds no entry toward Y (no
// post-restart contact yet) are skipped — the comparison is undefined.
func (w *Watchdog) StaleBackoff() []string {
	byID := make(map[int64]*core.Station)
	for _, st := range w.n.Stations() {
		byID[int64(st.ID())] = st
	}
	var stale []string
	for _, holder := range w.n.Stations() {
		pd := perDestOf(holder)
		if pd == nil {
			continue
		}
		for _, id := range pd.PeerIDs() {
			peer := byID[int64(id)]
			if peer == nil {
				continue
			}
			ppd := perDestOf(peer)
			if ppd == nil || !hasPeer(ppd, holder) {
				continue
			}
			seen := pd.Peer(id).SeenESN
			sent := ppd.Peer(holder.ID()).SendESN
			if seen > sent {
				stale = append(stale, fmt.Sprintf("%s holds stale entry for %s: SeenESN %d > peer SendESN %d",
					holder.Name(), peer.Name(), seen, sent))
			}
		}
	}
	return stale
}

// perDestOf returns the station's per-destination policy, or nil.
func perDestOf(st *core.Station) *backoff.PerDest {
	ph, ok := st.MAC().(policyHolder)
	if !ok {
		return nil
	}
	pd, _ := ph.Policy().(*backoff.PerDest)
	return pd
}

// hasPeer reports whether pd already tracks st (without creating an entry).
func hasPeer(pd *backoff.PerDest, st *core.Station) bool {
	for _, id := range pd.PeerIDs() {
		if id == st.ID() {
			return true
		}
	}
	return false
}

// Dump renders every station's FSM, timer, queue, and counter state — the
// post-mortem attached to watchdog panics.
func (w *Watchdog) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "station dump at t=%v (sweep %d):\n", w.n.Sim.Now(), w.checks)
	for _, st := range w.n.Stations() {
		state, timer := "?", "?"
		if insp, ok := st.MAC().(mac.Inspector); ok {
			state = insp.FSMState()
			if insp.TimerPending() {
				timer = fmt.Sprint(insp.TimerWhen())
			} else {
				timer = "none"
			}
		}
		ms := st.MAC().Stats()
		fmt.Fprintf(&b, "  %-4s id=%d enabled=%v state=%-8s timer=%-12s queue=%-3d sent=%d recv=%d retries=%d drops=%d crashes=%d restarts=%d\n",
			st.Name(), st.ID(), st.Radio().Enabled(), state, timer, st.MAC().QueueLen(),
			ms.DataSent, ms.DataReceived, ms.Retries, ms.Drops, st.Crashes(), st.Restarts())
	}
	if next, ok := w.n.Sim.NextEventTime(); ok {
		fmt.Fprintf(&b, "  next event at %v, %d pending\n", next, w.n.Sim.Pending())
	} else {
		b.WriteString("  event queue empty\n")
	}
	return b.String()
}
