// Package core assembles the full simulated wireless LAN: stations (pads
// and base stations) binding a radio to a MAC protocol instance, transport
// agents multiplexed over the MAC, traffic generators, mobility and
// power-off events, and the scenario runner that measures per-stream
// throughput the way the paper does (a warmup period followed by a
// measurement window).
package core

import (
	"fmt"
	"sort"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/dcf"
	"macaw/internal/mac/maca"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/mac/tournament"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/stats"
	"macaw/internal/traffic"
	"macaw/internal/transport"
)

// MACFactory builds a protocol engine over the prepared environment. The
// return type is the explicit MAC SPI (mac.Engine): a backend that misses any
// part of the contract — lifecycle, introspection, state inventory, forking —
// does not compile as a factory.
type MACFactory func(env *mac.Env) mac.Engine

// MACAFactory returns the original MACA protocol (Appendix A).
func MACAFactory() MACFactory {
	return func(env *mac.Env) mac.Engine { return maca.New(env) }
}

// MACAWFactory returns the MACAW engine with the given options. Options
// with a non-nil Policy must not be shared across stations; use
// MACAWFactoryWith for per-station policies.
func MACAWFactory(opt macaw.Options) MACFactory {
	if opt.Policy != nil {
		panic("core: shared backoff.Policy across stations; use MACAWFactoryWith")
	}
	return func(env *mac.Env) mac.Engine { return macaw.New(env, opt) }
}

// MACAWFactoryWith returns a MACAW factory that builds a fresh backoff
// policy per station.
func MACAWFactoryWith(opt macaw.Options, policy func() backoff.Policy) MACFactory {
	return func(env *mac.Env) mac.Engine {
		o := opt
		o.Policy = policy()
		return macaw.New(env, o)
	}
}

// CSMAFactory returns the carrier-sense baseline.
func CSMAFactory(opt csma.Options) MACFactory {
	return func(env *mac.Env) mac.Engine { return csma.New(env, opt) }
}

// TokenFactory returns the token-based single-cell scheme the paper defers
// to future work. All stations of the network must belong to the ring;
// AddStation assigns ids 1..N in creation order, so a ring of the first N
// ids covers a network built before any stream is added.
func TokenFactory(opt token.Options) MACFactory {
	return func(env *mac.Env) mac.Engine { return token.New(env, opt) }
}

// DCFFactory returns the IEEE 802.11 DCF engine (CSMA/CA with NAV virtual
// carrier sense, SIFS/DIFS interframe spacing, CWmin/CWmax binary exponential
// backoff, and short/long retry limits).
func DCFFactory(opt dcf.Options) MACFactory {
	return func(env *mac.Env) mac.Engine { return dcf.New(env, opt) }
}

// TournamentFactory returns the Tournament MAC: a constant-size congestion
// window resolved by a binary elimination tournament on the slot grid instead
// of an exponentially growing backoff window.
func TournamentFactory(opt tournament.Options) MACFactory {
	return func(env *mac.Env) mac.Engine { return tournament.New(env, opt) }
}

// RingOf returns the node ids 1..n, the ring of a network's first n
// stations in creation order.
func RingOf(n int) []frame.NodeID {
	ring := make([]frame.NodeID, n)
	for i := range ring {
		ring[i] = frame.NodeID(i + 1)
	}
	return ring
}

// Station is one pad or base station.
type Station struct {
	id      frame.NodeID
	name    string
	net     *Network
	radio   *phy.Radio
	mac     mac.Engine
	factory MACFactory

	handlers []func(src frame.NodeID, seg transport.Segment)
	// dropped accumulates MAC-level packet drops surfaced via callbacks.
	dropped int
	// crashes and restarts count fault-injection events at this station.
	crashes, restarts int
}

// ID returns the station identifier.
func (st *Station) ID() frame.NodeID { return st.id }

// Name returns the human-readable station name (e.g. "P1", "B2").
func (st *Station) Name() string { return st.name }

// Radio exposes the station's radio (for mobility and power control).
func (st *Station) Radio() *phy.Radio { return st.radio }

// MAC exposes the station's protocol instance.
func (st *Station) MAC() mac.Engine { return st.mac }

// Dropped reports MAC-level packet drops at this station.
func (st *Station) Dropped() int { return st.dropped }

// Crashes reports how many times the station has crashed.
func (st *Station) Crashes() int { return st.crashes }

// Restarts reports how many times the station has restarted.
func (st *Station) Restarts() int { return st.restarts }

// newEnv builds a MAC environment bound to the station's radio. Each call
// draws a fresh generator from the simulator, so a restarted MAC gets its own
// reproducible stream.
func (st *Station) newEnv() *mac.Env {
	env := &mac.Env{
		Sim:   st.net.Sim,
		Radio: st.radio,
		Rand:  st.net.Sim.NewRand(),
		Cfg:   st.net.Cfg,
		Callbacks: mac.Callbacks{
			Deliver: st.onDeliver,
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	switch len(st.net.obsFactories) {
	case 0:
	case 1:
		env.Obs = st.net.obsFactories[0](st)
	default:
		obs := make([]mac.Observer, len(st.net.obsFactories))
		for i, f := range st.net.obsFactories {
			obs[i] = f(st)
		}
		env.Obs = mac.CombineObservers(obs...)
	}
	return env
}

// Crash simulates a node failure: the MAC instance is halted (timers
// cancelled, queued packets dropped) and the radio goes dark, mid-exchange or
// not. Peers keep whatever ESN/backoff state they hold for the station.
// Traffic generators keep running — their segments are discarded while the
// radio is down (SendSegment checks Enabled) and flow again after Restart.
// Crashing an already-dark station is a no-op; it reports whether the crash
// took effect.
func (st *Station) Crash() bool {
	if !st.radio.Enabled() {
		return false
	}
	st.mac.Halt()
	st.radio.SetEnabled(false)
	st.crashes++
	return true
}

// Restart revives a crashed station: the radio powers back up and a fresh
// MAC instance is built from the station's factory, replacing the halted one
// as the radio handler. All protocol state — FSM, queues, backoff counters,
// link-layer sequence numbers — resets exactly as a rebooted device's would,
// while peers still hold entries for the pre-crash instance. Restarting a
// station that is already up is a no-op (a second live MAC bound to the same
// radio would fight the first for it); it reports whether a restart
// happened.
func (st *Station) Restart() bool {
	if st.radio.Enabled() {
		return false
	}
	st.radio.SetEnabled(true)
	st.mac = st.factory(st.newEnv())
	st.restarts++
	return true
}

// SendSegment implements transport.Endpoint: wrap the segment into a MAC
// packet of the requested on-air size. A powered-off station sends nothing.
func (st *Station) SendSegment(dst frame.NodeID, seg transport.Segment, size int) {
	if !st.radio.Enabled() {
		return
	}
	st.mac.Enqueue(&mac.Packet{Dst: dst, Size: size, Payload: seg.Marshal()})
}

// Clock implements transport.Endpoint.
func (st *Station) Clock() *sim.Simulator { return st.net.Sim }

// onDeliver demultiplexes a MAC payload to the registered transport agents.
func (st *Station) onDeliver(src frame.NodeID, payload []byte) {
	seg, err := transport.UnmarshalSegment(payload)
	if err != nil {
		return // not a transport segment (e.g. raw example traffic)
	}
	for _, h := range st.handlers {
		h(src, seg)
	}
}

// Handle registers a transport handler at this station.
func (st *Station) Handle(h func(src frame.NodeID, seg transport.Segment)) {
	st.handlers = append(st.handlers, h)
}

// TransportKind selects a stream's transport protocol.
type TransportKind int

// Transports.
const (
	UDP TransportKind = iota
	TCP
)

// String names the transport.
func (k TransportKind) String() string {
	if k == UDP {
		return "UDP"
	}
	return "TCP"
}

// Stream is one unidirectional data stream between two stations.
type Stream struct {
	Name      string
	From, To  *Station
	Kind      TransportKind
	Rate      float64
	id        uint16
	startAt   sim.Duration
	gen       traffic.Generator
	counter   *stats.Windowed
	udpSender *transport.UDPSender
	tcpSender *transport.TCPSender
	tcpRecv   *transport.TCPReceiver
	offered   int

	offeredAt map[uint32]sim.Time
	delays    []sim.Duration
}

// Offered reports the number of packets the application generated.
func (s *Stream) Offered() int { return s.offered }

// SetStart delays the stream's traffic generator by d after the run begins;
// several of the paper's scenarios assume one stream is established before
// the other starts contending.
func (s *Stream) SetStart(d sim.Duration) { s.startAt = d }

// TCPSenderStats returns the TCP sender counters (zero value for UDP).
func (s *Stream) TCPSenderStats() transport.TCPStats {
	if s.tcpSender == nil {
		return transport.TCPStats{}
	}
	return s.tcpSender.Stats()
}

// Network is a complete simulated LAN.
type Network struct {
	Sim      *sim.Simulator
	Medium   *phy.Medium
	Cfg      mac.Config
	stations []*Station
	byName   map[string]*Station
	streams  []*Stream
	nextID   frame.NodeID
	nextSID  uint16
	warmup   sim.Duration
	// runStart/runTotal record the window armed by Start for End/Collect.
	runStart sim.Time
	runTotal sim.Duration
	// obsFactories build the per-MAC-lifetime passive observers; see
	// SetMACObserver and AddMACObserver.
	obsFactories []MACObserverFactory

	// TCPCfg configures new TCP streams. The default matches the
	// paper-era TCP §3.3.1 describes: a 0.5 s minimum retransmission
	// timeout and no fast retransmit.
	TCPCfg transport.TCPConfig
}

// NewNetwork creates a network with the paper's default radio and MAC
// parameters.
func NewNetwork(seed int64) *Network {
	s := sim.New(seed)
	tcpCfg := transport.DefaultTCPConfig()
	tcpCfg.DupAckThreshold = 0 // 1994-era TCP: timeout-driven recovery only
	return &Network{
		Sim:    s,
		Medium: phy.New(s, phy.DefaultParams()),
		Cfg:    mac.DefaultConfig(),
		byName: make(map[string]*Station),
		nextID: 1,
		TCPCfg: tcpCfg,
	}
}

// MACObserverFactory builds a mac.Observer for one MAC instance of st. It is
// invoked once per MAC lifetime: when the station is added, and again for the
// fresh instance each Restart builds — so a conformance auditor can reset its
// per-lifetime expectations. The factory runs while the station's MAC field
// is still being replaced; observers must defer any st.MAC() inspection until
// the first event.
type MACObserverFactory func(st *Station) mac.Observer

// SetMACObserver installs a factory producing a passive mac.Observer for
// every MAC instance the network creates, replacing any factories installed
// so far. It must be called before stations are added; observers must not
// affect simulation behavior (see mac.Observer).
func (n *Network) SetMACObserver(f MACObserverFactory) {
	n.obsFactories = []MACObserverFactory{f}
}

// AddMACObserver installs an additional observer factory alongside any
// already present — e.g. the conformance oracle and a metrics collector on
// the same run. When several are attached, each MAC sees a composite that
// fans every hook out in attachment order. Like SetMACObserver it must be
// called before stations are added.
func (n *Network) AddMACObserver(f MACObserverFactory) {
	n.obsFactories = append(n.obsFactories, f)
}

// AddStation creates a station at pos running the protocol built by f.
func (n *Network) AddStation(name string, pos geom.Vec3, f MACFactory) *Station {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("core: duplicate station name %q", name))
	}
	st := &Station{id: n.nextID, name: name, net: n, factory: f}
	n.nextID++
	st.radio = n.Medium.Attach(st.id, pos, nil)
	st.mac = f(st.newEnv())
	n.stations = append(n.stations, st)
	n.byName[name] = st
	return st
}

// Station returns the station with the given name, or nil.
func (n *Network) Station(name string) *Station { return n.byName[name] }

// Stations returns all stations in creation order.
func (n *Network) Stations() []*Station { return n.stations }

// Streams returns all streams in creation order.
func (n *Network) Streams() []*Stream { return n.streams }

// AddStream creates a unidirectional stream from -> to at rate packets per
// second using the given transport. The stream name follows the paper's
// "P1-B1" convention unless overridden with SetName.
func (n *Network) AddStream(from, to *Station, kind TransportKind, rate float64) *Stream {
	n.nextSID++
	s := &Stream{
		Name: from.name + "-" + to.name,
		From: from, To: to, Kind: kind, Rate: rate,
		id: n.nextSID,
	}
	switch kind {
	case UDP:
		snd := transport.NewUDPSender(from, to.id, s.id)
		rcv := transport.NewUDPReceiver(s.id)
		rcv.OnDeliver = func(seq uint32) { s.record(n.Sim.Now(), seq) }
		to.Handle(rcv.Handle)
		s.udpSender = snd
		s.gen = traffic.NewCBR(n.Sim, rate, n.Sim.NewRand(), func() { s.offer(snd.Offer()) })
	case TCP:
		snd := transport.NewTCPSender(from, to.id, s.id, n.TCPCfg)
		rcv := transport.NewTCPReceiver(to, s.id)
		rcv.OnDeliver = func(seq uint32) { s.record(n.Sim.Now(), seq) }
		from.Handle(snd.Handle)
		to.Handle(rcv.Handle)
		s.tcpSender = snd
		s.tcpRecv = rcv
		s.gen = traffic.NewCBR(n.Sim, rate, n.Sim.NewRand(), func() { s.offer(snd.Offer()) })
	default:
		panic("core: unknown transport kind")
	}
	n.streams = append(n.streams, s)
	return s
}

func (s *Stream) offer(seq uint32) {
	s.offered++
	if s.offeredAt == nil {
		s.offeredAt = make(map[uint32]sim.Time)
	}
	s.offeredAt[seq] = s.From.net.Sim.Now()
}

func (s *Stream) record(t sim.Time, seq uint32) {
	if s.counter != nil {
		s.counter.Record(t)
		if at, ok := s.offeredAt[seq]; ok {
			if t >= s.counter.Warmup() {
				s.delays = append(s.delays, t-at)
			}
			delete(s.offeredAt, seq)
		}
	}
}

// Delays returns the in-window delivery delays (offer to in-order arrival).
func (s *Stream) Delays() []sim.Duration { return s.delays }

// At schedules fn at simulation time t (for mobility, power-off, noise
// toggles and other scenario events).
func (n *Network) At(t sim.Time, fn func()) { n.Sim.At(t, fn) }

// PowerOff turns a station off at time t: its radio stops radiating and
// hearing, and its generators stop (the Figure 9 dead-pad scenario).
func (n *Network) PowerOff(st *Station, t sim.Time) {
	n.At(t, func() {
		st.radio.SetEnabled(false)
		for _, s := range n.streams {
			if s.From == st {
				s.gen.Stop(n.Sim.Now())
			}
		}
	})
}

// MoveStation relocates a station at time t (the Figure 11 mobile pad).
func (n *Network) MoveStation(st *Station, t sim.Time, pos geom.Vec3) {
	n.At(t, func() { st.radio.SetPos(pos) })
}

// StreamResult is one row of a results table.
type StreamResult struct {
	Name      string
	PPS       float64
	Delivered int
	Offered   int
	// MeanDelay and P95Delay summarize offer-to-delivery latency inside
	// the measurement window.
	MeanDelay sim.Duration
	P95Delay  sim.Duration
}

// Results summarizes a run.
type Results struct {
	Streams  []StreamResult
	Duration sim.Duration
	Warmup   sim.Duration
	Medium   phy.Counters
}

// PPS returns the measured rate of the named stream (0 if unknown).
func (r Results) PPS(name string) float64 {
	for _, s := range r.Streams {
		if s.Name == name {
			return s.PPS
		}
	}
	return 0
}

// TotalPPS sums the per-stream rates.
func (r Results) TotalPPS() float64 {
	var t float64
	for _, s := range r.Streams {
		t += s.PPS
	}
	return t
}

// Rates returns the per-stream rates in stream order.
func (r Results) Rates() []float64 {
	out := make([]float64, len(r.Streams))
	for i, s := range r.Streams {
		out[i] = s.PPS
	}
	return out
}

// Fairness returns Jain's index over the per-stream rates.
func (r Results) Fairness() float64 { return stats.Jain(r.Rates()) }

// String renders the results as an aligned table.
func (r Results) String() string {
	out := fmt.Sprintf("%-10s %10s %10s %10s %12s %12s\n", "stream", "pps", "delivered", "offered", "mean delay", "p95 delay")
	for _, s := range r.Streams {
		out += fmt.Sprintf("%-10s %10.2f %10d %10d %12v %12v\n", s.Name, s.PPS, s.Delivered, s.Offered, s.MeanDelay, s.P95Delay)
	}
	out += fmt.Sprintf("total %.2f pps, fairness %.3f\n", r.TotalPPS(), r.Fairness())
	return out
}

// Run simulates for total seconds of simulated time, measuring throughput
// from warmup onward. Generators start at t=0 (any previous run's state is
// preserved; Run is intended to be called once per Network). Run is exactly
// Start + RunTo(End) + Collect; checkpointing callers use those pieces
// directly so they can pause at virtual-time barriers *between* sim.Run
// segments — the engine fires the same events in the same order whether
// Run(end) is called once or as Run(b1), Run(b2), ..., Run(end), so a
// barrier never perturbs the simulation (no event is ever scheduled for it).
func (n *Network) Run(total, warmup sim.Duration) Results {
	n.Start(total, warmup)
	n.RunTo(n.End())
	return n.Collect()
}

// Start arms the measurement windows and traffic generators for a run of
// total simulated seconds with the given warmup, without advancing the
// clock. Pair with RunTo and Collect.
func (n *Network) Start(total, warmup sim.Duration) {
	if warmup >= total {
		panic("core: warmup must precede the end of the run")
	}
	n.warmup = warmup
	start := n.Sim.Now()
	n.runStart = start
	n.runTotal = total
	for _, s := range n.streams {
		s.counter = stats.NewWindowed(start+warmup, start+total)
		s.gen.Start(start + s.startAt)
	}
}

// End reports the virtual end time of the run armed by Start.
func (n *Network) End() sim.Time { return n.runStart + n.runTotal }

// RunTo advances the simulation to virtual time t (inclusive of events
// scheduled exactly at t). Calling RunTo repeatedly with increasing barriers
// is bit-identical to one call with the final time.
func (n *Network) RunTo(t sim.Time) { n.Sim.Run(t) }

// Collect summarizes the run armed by Start once RunTo has reached End.
func (n *Network) Collect() Results {
	total, warmup := n.runTotal, n.warmup
	res := Results{Duration: total, Warmup: warmup, Medium: n.Medium.Counters()}
	for _, s := range n.streams {
		r := StreamResult{
			Name:      s.Name,
			PPS:       s.counter.PPS(),
			Delivered: s.counter.Count(),
			Offered:   s.offered,
		}
		if len(s.delays) > 0 {
			var sum sim.Duration
			xs := make([]float64, len(s.delays))
			for i, d := range s.delays {
				sum += d
				xs[i] = float64(d)
			}
			r.MeanDelay = sum / sim.Duration(len(s.delays))
			r.P95Delay = sim.Duration(stats.Percentile(xs, 0.95))
		}
		res.Streams = append(res.Streams, r)
	}
	return res
}

// HearingGraph returns the station names each station can hear, keyed by
// name — used by topology tests to pin the paper's configurations.
func (n *Network) HearingGraph() map[string][]string {
	g := make(map[string][]string)
	for _, a := range n.stations {
		var hears []string
		for _, b := range n.stations {
			if a != b && n.Medium.InRange(a.radio, b.radio) {
				hears = append(hears, b.name)
			}
		}
		sort.Strings(hears)
		g[a.name] = hears
	}
	return g
}
