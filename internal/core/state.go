package core

import (
	"fmt"
	"sort"
)

// This file is the network's contribution to the snapshot state inventory
// (DESIGN.md §14): a canonical, deterministic dump of every piece of
// mutable state the network owns, delegating to each layer's own
// AppendState. Byte-equality of two dumps taken at the same virtual time is
// the snapshot verifier's divergence test, so every field that can affect
// future behavior — and every field that can reveal a diverged past, such
// as counters — belongs here.

// stateAppender is the cross-layer state-dump hook. It is an anonymous
// structural interface rather than a named one in a shared package so that
// layers stay decoupled: only []byte crosses package boundaries.
type stateAppender interface{ AppendState(b []byte) []byte }

// AppendState appends the canonical dump of the entire simulation state:
// engine (clock, heap, RNG cursors), medium, every station (radio + MAC FSM
// + backoff tables), and every stream (generator, transport, measurement
// window). Iteration follows creation order, which is deterministic.
func (n *Network) AppendState(b []byte) []byte {
	b = n.Sim.AppendState(b)
	b = n.Medium.AppendState(b)
	for _, st := range n.stations {
		b = st.appendState(b)
	}
	for _, s := range n.streams {
		b = s.appendState(b)
	}
	return b
}

// appendState dumps one station: identity, fault counters, radio, and the
// live MAC instance's FSM (AppendState is part of the MAC SPI, so every
// engine contributes a full inventory).
func (st *Station) appendState(b []byte) []byte {
	b = fmt.Appendf(b, "station id=%d name=%s dropped=%d crashes=%d restarts=%d\n",
		st.id, st.name, st.dropped, st.crashes, st.restarts)
	b = st.radio.AppendState(b)
	return st.mac.AppendState(b)
}

// appendState dumps one stream: measurement window, offered bookkeeping
// (sorted for determinism), recorded delays, generator, and transport
// agents.
func (s *Stream) appendState(b []byte) []byte {
	b = fmt.Appendf(b, "stream name=%s kind=%s rate=%g startAt=%d offered=%d\n",
		s.Name, s.Kind, s.Rate, s.startAt, s.offered)
	if s.counter != nil {
		b = s.counter.AppendState(b)
	}
	keys := make([]uint32, 0, len(s.offeredAt))
	for k := range s.offeredAt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = fmt.Appendf(b, "offeredAt n=%d", len(keys))
	for _, k := range keys {
		b = fmt.Appendf(b, " %d@%d", k, s.offeredAt[k])
	}
	b = append(b, '\n')
	b = fmt.Appendf(b, "delays n=%d", len(s.delays))
	for _, d := range s.delays {
		b = fmt.Appendf(b, " %d", d)
	}
	b = append(b, '\n')
	if a, ok := s.gen.(stateAppender); ok {
		b = a.AppendState(b)
	}
	if s.udpSender != nil {
		b = s.udpSender.AppendState(b)
	}
	if s.tcpSender != nil {
		b = s.tcpSender.AppendState(b)
	}
	if s.tcpRecv != nil {
		b = s.tcpRecv.AppendState(b)
	}
	return b
}
