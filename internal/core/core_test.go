package core

import (
	"strings"
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

func TestAddStationAssignsIDsAndNames(t *testing.T) {
	n := NewNetwork(1)
	a := n.AddStation("P1", geom.V(0, 0, 6), MACAFactory())
	b := n.AddStation("B", geom.V(0, 0, 12), MACAFactory())
	if a.ID() == b.ID() {
		t.Fatal("duplicate IDs")
	}
	if a.Name() != "P1" || n.Station("P1") != a || n.Station("B") != b {
		t.Fatal("name lookup broken")
	}
	if n.Station("nope") != nil {
		t.Fatal("unknown name returned a station")
	}
	if len(n.Stations()) != 2 {
		t.Fatal("Stations() wrong")
	}
}

func TestDuplicateStationNamePanics(t *testing.T) {
	n := NewNetwork(1)
	n.AddStation("X", geom.V(0, 0, 6), MACAFactory())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate name")
		}
	}()
	n.AddStation("X", geom.V(1, 0, 6), MACAFactory())
}

func TestSharedPolicyFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shared policy")
		}
	}()
	MACAWFactory(macaw.Options{Policy: backoff.NewSingle(backoff.NewBEB(), false)})
}

func TestUDPStreamOverMACAW(t *testing.T) {
	n := NewNetwork(1)
	p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	st := n.AddStream(p, b, UDP, 32)
	if st.Name != "P1-B" {
		t.Fatalf("stream name = %q", st.Name)
	}
	res := n.Run(20*sim.Second, 2*sim.Second)
	got := res.PPS("P1-B")
	if got < 30 || got > 33 {
		t.Fatalf("PPS = %v, want ~32", got)
	}
	if res.PPS("nope") != 0 {
		t.Fatal("unknown stream PPS nonzero")
	}
	if st.Offered() < 600 {
		t.Fatalf("offered = %d", st.Offered())
	}
	if !strings.Contains(res.String(), "P1-B") {
		t.Fatal("results table missing stream")
	}
}

func TestTCPStreamOverMACAW(t *testing.T) {
	n := NewNetwork(2)
	p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	st := n.AddStream(p, b, TCP, 32)
	res := n.Run(20*sim.Second, 2*sim.Second)
	got := res.PPS("P1-B")
	// The full RTS-CTS-DS-DATA-ACK exchange plus a same-cost exchange for
	// every TCP acknowledgement caps a single TCP stream well below the
	// UDP rate (each data+ack pair occupies ~25-30ms of air).
	if got < 20 || got > 33 {
		t.Fatalf("TCP PPS = %v, want 20-33 (ack-exchange-bound)", got)
	}
	if st.TCPSenderStats().Sent == 0 {
		t.Fatal("TCP sender stats empty")
	}
	if st.Kind.String() != "TCP" || UDP.String() != "UDP" {
		t.Fatal("TransportKind strings")
	}
}

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	n := NewNetwork(3)
	p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	n.AddStream(p, b, UDP, 32)
	res := n.Run(10*sim.Second, 5*sim.Second)
	// ~32pps over a 5s window is ~160 packets; total generated is ~320.
	d := res.Streams[0].Delivered
	if d < 150 || d > 170 {
		t.Fatalf("windowed delivered = %d, want ~160", d)
	}
}

func TestInvalidWarmupPanics(t *testing.T) {
	n := NewNetwork(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	n.Run(5*sim.Second, 5*sim.Second)
}

func TestPowerOffSilencesStation(t *testing.T) {
	n := NewNetwork(4)
	p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	n.AddStream(p, b, UDP, 32)
	n.PowerOff(p, 5*sim.Second)
	res := n.Run(20*sim.Second, 1*sim.Second)
	// Only ~4s of the 19s window carries traffic.
	got := res.Streams[0].Delivered
	if got < 100 || got > 170 {
		t.Fatalf("delivered = %d, want ~128 (stopped at 5s)", got)
	}
	if p.Radio().Enabled() {
		t.Fatal("radio still enabled")
	}
}

func TestMoveStationEnablesStream(t *testing.T) {
	n := NewNetwork(5)
	p := n.AddStation("P1", geom.V(100, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	n.AddStream(p, b, UDP, 32)
	n.MoveStation(p, 10*sim.Second, geom.V(-4, 0, 6))
	res := n.Run(20*sim.Second, 0)
	got := res.Streams[0].Delivered
	// Nothing flows before the move; afterwards the live traffic plus the
	// MAC backlog accumulated while unreachable drains at channel rate.
	if got < 250 || got > res.Streams[0].Offered {
		t.Fatalf("delivered = %d (offered %d), want >=250 after the move", got, res.Streams[0].Offered)
	}
}

func TestHearingGraphSymmetricAndSorted(t *testing.T) {
	n := NewNetwork(6)
	n.AddStation("A", geom.V(0, 0, 6), MACAFactory())
	n.AddStation("B", geom.V(6, 0, 6), MACAFactory())
	n.AddStation("C", geom.V(30, 0, 6), MACAFactory())
	g := n.HearingGraph()
	if len(g["A"]) != 1 || g["A"][0] != "B" {
		t.Fatalf("A hears %v", g["A"])
	}
	if len(g["B"]) != 1 || g["B"][0] != "A" {
		t.Fatalf("B hears %v", g["B"])
	}
	if len(g["C"]) != 0 {
		t.Fatalf("C hears %v", g["C"])
	}
}

func TestResultsHelpers(t *testing.T) {
	r := Results{Streams: []StreamResult{
		{Name: "a", PPS: 10}, {Name: "b", PPS: 30},
	}}
	if r.TotalPPS() != 40 {
		t.Fatal("TotalPPS")
	}
	if got := r.Rates(); len(got) != 2 || got[0] != 10 {
		t.Fatal("Rates")
	}
	if f := r.Fairness(); f <= 0.5 || f >= 1 {
		t.Fatalf("Fairness = %v", f)
	}
}

func TestCSMAFactoryWorksEndToEnd(t *testing.T) {
	n := NewNetwork(7)
	p := n.AddStation("P1", geom.V(-4, 0, 6), CSMAFactory(csma.Options{ACK: true}))
	b := n.AddStation("B", geom.V(0, 0, 12), CSMAFactory(csma.Options{ACK: true}))
	n.AddStream(p, b, UDP, 16)
	res := n.Run(10*sim.Second, 1*sim.Second)
	if res.PPS("P1-B") < 14 {
		t.Fatalf("CSMA PPS = %v", res.PPS("P1-B"))
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Results {
		n := NewNetwork(42)
		p1 := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
		p2 := n.AddStation("P2", geom.V(4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
		b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
		n.AddStream(p1, b, UDP, 64)
		n.AddStream(p2, b, UDP, 64)
		return n.Run(30*sim.Second, 5*sim.Second)
	}
	a, b := run(), run()
	for i := range a.Streams {
		if a.Streams[i].Delivered != b.Streams[i].Delivered {
			t.Fatalf("nondeterministic stream %d: %d vs %d", i, a.Streams[i].Delivered, b.Streams[i].Delivered)
		}
	}
}

func TestDelayStatsPopulated(t *testing.T) {
	n := NewNetwork(9)
	p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
	b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
	st := n.AddStream(p, b, UDP, 8) // far below capacity: low, stable delays
	res := n.Run(20*sim.Second, 2*sim.Second)
	r := res.Streams[0]
	if r.MeanDelay <= 0 || r.P95Delay <= 0 {
		t.Fatalf("delay stats empty: %+v", r)
	}
	// An uncontended exchange takes ~20-25ms including contention.
	if r.MeanDelay > 100*sim.Millisecond {
		t.Fatalf("mean delay %v too high for an idle channel", r.MeanDelay)
	}
	if r.P95Delay < r.MeanDelay {
		t.Fatal("p95 below mean")
	}
	if len(st.Delays()) == 0 {
		t.Fatal("Delays() empty")
	}
}

func TestDelayGrowsUnderSaturation(t *testing.T) {
	run := func(rate float64) sim.Duration {
		n := NewNetwork(9)
		p := n.AddStation("P1", geom.V(-4, 0, 6), MACAWFactory(macaw.DefaultOptions()))
		b := n.AddStation("B", geom.V(0, 0, 12), MACAWFactory(macaw.DefaultOptions()))
		n.AddStream(p, b, UDP, rate)
		return n.Run(20*sim.Second, 2*sim.Second).Streams[0].MeanDelay
	}
	idle, saturated := run(8), run(64)
	if saturated < 10*idle {
		t.Fatalf("saturation delay %v not far above idle %v", saturated, idle)
	}
}
