package core

import (
	"fmt"
	"sync"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// This file implements the spatially-sharded parallel runner. The paper's
// north-star regime — city-scale buildings of nanocells — produces radio
// topologies that fall apart into many components under the medium's
// negligibility certificate (phy.Params.IndexCutoff): two stations farther
// apart than the cutoff have a stored gain of exactly 0.0, in both
// directions, for the entire run. Such components are causally disconnected
// at the physical layer — no carrier, no capture, no reception crosses the
// gap — so their event histories commute exactly and can execute on
// separate event heaps in separate goroutines.
//
// The determinism contract is bit-identity, not statistical equivalence:
// Results at any shard count are byte-for-byte the serial engine's. Three
// mechanisms carry the proof:
//
//  1. Gain exactness. Cross-component gain terms are stored as exact zeros
//     (the PR 3 floor), so every float fold (carrier power, interference
//     sums) in a component network equals the monolithic fold restricted to
//     the component — adding exact zeros is the identity.
//  2. Event-order restriction. The simulator orders events by (time,
//     priority, seq). Within one component all scheduling is triggered by
//     the component's own events, so the relative order of its events in
//     the monolithic run equals their order in the component-local run.
//  3. Stream and id injection. Every random generator and identifier the
//     monolithic run would hand out is reproduced exactly: station i
//     (0-based) draws simulator stream i+2, traffic stream j draws
//     S+2+j (S = total stations), node ids and stream ids are the global
//     ones. sim.SetNextStream and in-package counter injection position
//     each component network to deal the identical values.
//
// Mergeability follows: per-stream results are placed back by global stream
// index, medium counters are integer sums over disjoint event sets, and the
// observers the runner supports (the conformance oracle) are per-station
// and passive. Observers whose output depends on global event interleaving
// (trace emission order, the metrics high-water queue depth) are not
// mergeable; callers keep those runs on the monolithic path.

// BlueprintStation declares one station of a Blueprint.
type BlueprintStation struct {
	Name    string
	Pos     geom.Vec3
	Factory MACFactory
}

// BlueprintStream declares one unidirectional stream between stations
// identified by index into Blueprint.Stations.
type BlueprintStream struct {
	From, To int
	Kind     TransportKind
	Rate     float64
	Start    sim.Duration
}

// Blueprint is a declarative description of a network — the complete input
// the sharded runner needs to rebuild any subset of the building with
// bit-identical identities and random streams. Construction order is the
// canonical one (all stations in index order, then all streams in index
// order), matching what topo.Layout.Build produces on a monolithic network.
//
// Factories are invoked from shard goroutines when shards > 1, so they must
// be safe for concurrent use (every factory in this package is: each call
// builds fresh per-station state). Factories must draw randomness only from
// the prepared mac.Env, never from the simulator directly — an extra
// simulator stream would shift the global stream accounting the injection
// reproduces.
type Blueprint struct {
	Seed     int64
	Stations []BlueprintStation
	Streams  []BlueprintStream

	// Instrument, when non-nil, attaches passive observers to each network
	// the runner materializes (one per component when sharded, one total
	// when serial). It runs before any station is added, receiving the
	// component's global index (-1 on the serial path, where the network
	// holds the whole building); the returned finish hook (may be nil)
	// runs after that network's Run completes, receiving that network's
	// Results. When shards > 1 both the hook and its finish run on shard
	// goroutines, concurrently with other components' hooks — shared
	// state inside them must be synchronized. Per-station,
	// interleaving-independent observers (the conformance oracle) keep
	// the bit-identity contract outright; per-heap observers (metrics,
	// traces) keep it per component — their output is canonical for a
	// fixed partition, i.e. identical at every shard count >= 2, but
	// keyed by component rather than matching the monolithic run.
	Instrument func(n *Network, comp int) func(Results)

	// Verify, when non-nil, checks each materialized network after
	// construction (e.g. topo hearing relations). It must tolerate
	// networks holding only a subset of the stations: when sharded, each
	// component network contains just its own stations.
	Verify func(*Network) error
}

// ShardInfo reports how a Blueprint.Run executed.
type ShardInfo struct {
	// Cutoff is the certified interaction radius in feet (0 when no
	// certificate exists).
	Cutoff float64
	// Components is the number of causally independent radio components.
	Components int
	// Workers is the number of goroutines the run used (1 = serial path).
	Workers int
}

// Partition labels each station with its causal-component index and reports
// the certified cutoff. Two stations share a component iff they are linked
// by a chain of station-to-station hops of at most the cutoff, with stream
// endpoints additionally folded together (a stream couples its stations
// through the transport layer even if their radios were out of range). ok
// is false when the physics cannot certify a cutoff — then everything must
// be assumed coupled and the labels are all zero.
func (bp Blueprint) Partition() (labels []int, count int, cutoff float64, ok bool) {
	n := len(bp.Stations)
	labels = make([]int, n)
	if n == 0 {
		return labels, 0, 0, false
	}
	cutoff, ok = phy.DefaultParams().IndexCutoff()
	if !ok {
		return labels, 1, 0, false
	}
	pts := make([]geom.Vec3, n)
	for i, s := range bp.Stations {
		pts[i] = s.Pos
	}
	radio, _ := geom.Components(pts, cutoff)

	// Fold radio components and stream-endpoint couplings in one
	// union-find, then renormalize to first-occurrence labels so the
	// partition is a pure function of the blueprint.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	firstOf := make(map[int]int)
	for i, l := range radio {
		if f, seen := firstOf[l]; seen {
			union(i, f)
		} else {
			firstOf[l] = i
		}
	}
	for _, s := range bp.Streams {
		union(s.From, s.To)
	}
	rep := make(map[int]int)
	for i := range labels {
		r := find(i)
		l, seen := rep[r]
		if !seen {
			l = len(rep)
			rep[r] = l
		}
		labels[i] = l
	}
	return labels, len(rep), cutoff, true
}

// materialize builds a network holding the given station and stream subsets
// (global indices, ascending). With inject set, every identity the
// monolithic run would assign — node id, stream id, simulator random
// stream — is positioned explicitly before each entity is added, so the
// subset network deals out exactly the values the full building would.
func (bp Blueprint) materialize(stIdx, strIdx []int, inject bool, comp int) (*Network, func(Results), error) {
	n := NewNetwork(bp.Seed)
	var finish func(Results)
	if bp.Instrument != nil {
		finish = bp.Instrument(n, comp)
	}
	total := int64(len(bp.Stations))
	local := make(map[int]*Station, len(stIdx))
	for _, i := range stIdx {
		spec := bp.Stations[i]
		if inject {
			n.nextID = frame.NodeID(i + 1)
			// Station i's MAC environment is simulator stream i+2:
			// stream 1 went to the medium at NewNetwork.
			n.Sim.SetNextStream(int64(i) + 2)
		}
		local[i] = n.AddStation(spec.Name, spec.Pos, spec.Factory)
	}
	for _, j := range strIdx {
		spec := bp.Streams[j]
		from, to := local[spec.From], local[spec.To]
		if from == nil || to == nil {
			return nil, nil, fmt.Errorf("core: stream %d references a station outside its component", j)
		}
		if inject {
			// AddStream pre-increments, so position one below the
			// global stream id j+1. The CBR generator draws simulator
			// stream S+2+j: the monolithic run hands out all S station
			// streams first.
			n.nextSID = uint16(j)
			n.Sim.SetNextStream(total + 2 + int64(j))
		}
		st := n.AddStream(from, to, spec.Kind, spec.Rate)
		st.SetStart(spec.Start)
	}
	if bp.Verify != nil {
		if err := bp.Verify(n); err != nil {
			return nil, nil, err
		}
	}
	return n, finish, nil
}

// Run simulates the blueprint for total seconds (measuring from warmup) on
// up to shards parallel event heaps and returns results byte-identical to
// the serial engine's. shards <= 1, an uncertified physics, or a building
// that is one connected component all fall back to the serial path — the
// exact construction sequence a monolithic Build performs.
func (bp Blueprint) Run(total, warmup sim.Duration, shards int) (Results, ShardInfo, error) {
	labels, count, cutoff, certified := bp.Partition()
	info := ShardInfo{Cutoff: cutoff, Components: count, Workers: 1}
	if shards <= 1 || !certified || count <= 1 {
		all := make([]int, len(bp.Stations))
		for i := range all {
			all[i] = i
		}
		allStreams := make([]int, len(bp.Streams))
		for j := range allStreams {
			allStreams[j] = j
		}
		n, finish, err := bp.materialize(all, allStreams, false, -1)
		if err != nil {
			return Results{}, info, err
		}
		res := n.Run(total, warmup)
		if finish != nil {
			finish(res)
		}
		return res, info, nil
	}

	// Component membership, in ascending global index order.
	comps := make([][]int, count)
	for i, l := range labels {
		comps[l] = append(comps[l], i)
	}
	compStreams := make([][]int, count)
	for j, s := range bp.Streams {
		compStreams[labels[s.From]] = append(compStreams[labels[s.From]], j)
	}

	// Each component is keyed to a shard by the grid cell of its first
	// station at cell size = cutoff — a deterministic function of the
	// blueprint alone. The assignment balances load across workers; it
	// cannot affect output, which is merged by global index.
	workers := shards
	if count < workers {
		workers = count
	}
	info.Workers = workers
	groups := make([][]int, workers)
	for c := range comps {
		anchor := geom.CellOf(bp.Stations[comps[c][0]].Pos, cutoff)
		s := geom.ShardOfCell(anchor, workers)
		groups[s] = append(groups[s], c)
	}

	type compResult struct {
		res Results
		err error
		pan any
	}
	out := make([]compResult, count)
	var wg sync.WaitGroup
	for _, list := range groups {
		wg.Add(1)
		go func(list []int) {
			defer wg.Done()
			for _, c := range list {
				out[c] = func() (r compResult) {
					defer func() {
						if p := recover(); p != nil {
							r.pan = p
						}
					}()
					n, finish, err := bp.materialize(comps[c], compStreams[c], true, c)
					if err != nil {
						r.err = err
						return
					}
					r.res = n.Run(total, warmup)
					if finish != nil {
						finish(r.res)
					}
					return
				}()
			}
		}(list)
	}
	wg.Wait()

	// Surface failures in component order so the report is deterministic.
	for c := range out {
		if out[c].pan != nil {
			panic(out[c].pan)
		}
		if out[c].err != nil {
			return Results{}, info, out[c].err
		}
	}

	merged := Results{
		Streams:  make([]StreamResult, len(bp.Streams)),
		Duration: total,
		Warmup:   warmup,
	}
	for c := range out {
		for k, j := range compStreams[c] {
			merged.Streams[j] = out[c].res.Streams[k]
		}
		m := out[c].res.Medium
		merged.Medium.Transmissions += m.Transmissions
		merged.Medium.Delivered += m.Delivered
		merged.Medium.Corrupted += m.Corrupted
		merged.Medium.NoiseDropped += m.NoiseDropped
		merged.Medium.Aborted += m.Aborted
	}
	return merged, info, nil
}
