package core_test

// Differential tests for the sharded runner's determinism contract: at any
// shard count, Results — and their rendered table — must be byte-identical
// to the serial engine's. The test topology is a miniature "city": several
// well-separated clusters (each its own radio component under the default
// 60 dB negligibility certificate, cutoff ≈ 102 ft) so the sharded path
// genuinely exercises parallel component execution and canonical merging.

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/oracle"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

// cityLayout builds nClusters single-cell clusters on a coarse grid with
// 400 ft pitch — far beyond the certified cutoff — each holding one base
// and three pads with upstream UDP streams. Stream declaration order
// interleaves clusters, so the merge must reorder component results back
// into global order to pass.
func cityLayout(nClusters int) topo.Layout {
	l := topo.Layout{Name: fmt.Sprintf("city-%d", nClusters)}
	for c := 0; c < nClusters; c++ {
		ox := float64(c%4) * 400
		oy := float64(c/4) * 400
		l.Stations = append(l.Stations, topo.StationSpec{
			Name: fmt.Sprintf("B%d", c+1), Pos: geom.V(ox, oy, 12), Base: true,
		})
		for p := 0; p < 3; p++ {
			ang := 2 * math.Pi * float64(p) / 3
			l.Stations = append(l.Stations, topo.StationSpec{
				Name: fmt.Sprintf("C%dP%d", c+1, p+1),
				Pos:  geom.V(ox+5*math.Cos(ang), oy+5*math.Sin(ang), 6),
			})
		}
	}
	// Interleaved stream order: pad p of every cluster, then pad p+1, so
	// consecutive global stream indices belong to different components.
	for p := 0; p < 3; p++ {
		for c := 0; c < nClusters; c++ {
			l.Streams = append(l.Streams, topo.StreamSpec{
				From: fmt.Sprintf("C%dP%d", c+1, p+1),
				To:   fmt.Sprintf("B%d", c+1),
				Kind: core.UDP, Rate: 24,
				StartSec: 0.1 * float64(c+p),
			})
		}
	}
	// Pin some relations so the Verify hook exercises both the in-component
	// check and the split-across-components skip.
	for c := 0; c < nClusters; c++ {
		l.Relations = append(l.Relations,
			topo.Relation{A: fmt.Sprintf("C%dP1", c+1), B: fmt.Sprintf("B%d", c+1), Hears: true})
		if c > 0 {
			l.Relations = append(l.Relations,
				topo.Relation{A: fmt.Sprintf("C%dP1", c+1), B: "B1", Hears: false})
		}
	}
	return l
}

func cityBlueprint(t *testing.T, nClusters int, seed int64) core.Blueprint {
	t.Helper()
	bp, err := cityLayout(nClusters).Blueprint(core.MACAWFactory(macaw.Options{}))
	if err != nil {
		t.Fatalf("blueprint: %v", err)
	}
	bp.Seed = seed
	return bp
}

// TestShardedRunBitIdentical is the acceptance-criteria differential test:
// shards 1/2/3/4/8 all produce Results that are deeply equal — including
// every float bit — and render to identical bytes.
func TestShardedRunBitIdentical(t *testing.T) {
	const total, warmup = 8 * sim.Second, 1 * sim.Second
	bp := cityBlueprint(t, 6, 42)

	serial, info, err := bp.Run(total, warmup, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if info.Workers != 1 {
		t.Fatalf("serial run used %d workers", info.Workers)
	}
	if serial.TotalPPS() <= 0 {
		t.Fatal("serial run delivered nothing; test topology is inert")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got, gotInfo, err := bp.Run(total, warmup, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gotInfo.Components != 6 {
			t.Fatalf("shards=%d: %d components, want 6", shards, gotInfo.Components)
		}
		if gotInfo.Workers < 2 {
			t.Fatalf("shards=%d: ran with %d workers, parallel path not taken", shards, gotInfo.Workers)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("shards=%d: results differ from serial\nserial:\n%v\nsharded:\n%v",
				shards, serial, got)
		}
		if serial.String() != got.String() {
			t.Fatalf("shards=%d: rendered tables differ", shards)
		}
	}
}

// TestShardedRunAuditedStaysIdentical attaches the conformance oracle via
// the Instrument hook on every materialized network: auditing must neither
// perturb results nor fire false violations on component networks.
func TestShardedRunAuditedStaysIdentical(t *testing.T) {
	const total, warmup = 6 * sim.Second, 1 * sim.Second
	bare := cityBlueprint(t, 4, 7)
	serial, _, err := bare.Run(total, warmup, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	audited := cityBlueprint(t, 4, 7)
	var finished atomic.Int32 // hooks run on shard goroutines
	audited.Instrument = func(n *core.Network, comp int) func(core.Results) {
		o := oracle.New(audited.Seed)
		o.Attach(n)
		return func(core.Results) {
			finished.Add(1)
			if err := o.Err(); err != nil {
				t.Errorf("oracle violation on component network: %v", err)
			}
		}
	}
	got, info, err := audited.Run(total, warmup, 4)
	if err != nil {
		t.Fatalf("audited sharded run: %v", err)
	}
	if info.Components != 4 {
		t.Fatalf("components = %d, want 4", info.Components)
	}
	if finished.Load() != 4 {
		t.Fatalf("finish hook ran %d times, want once per component", finished.Load())
	}
	if !reflect.DeepEqual(serial, got) {
		t.Fatalf("audited sharded results differ from bare serial\nserial:\n%v\naudited:\n%v",
			serial, got)
	}
}

// TestBlueprintSerialMatchesBuild pins that the shards=1 path is the
// existing engine: building the same layout by hand on a monolithic
// network yields deeply equal Results.
func TestBlueprintSerialMatchesBuild(t *testing.T) {
	const total, warmup = 6 * sim.Second, 1 * sim.Second
	l := cityLayout(3)
	f := core.MACAWFactory(macaw.Options{})

	n := core.NewNetwork(11)
	if err := l.Build(n, f); err != nil {
		t.Fatalf("build: %v", err)
	}
	want := n.Run(total, warmup)

	bp, err := l.Blueprint(f)
	if err != nil {
		t.Fatalf("blueprint: %v", err)
	}
	bp.Seed = 11
	got, _, err := bp.Run(total, warmup, 1)
	if err != nil {
		t.Fatalf("blueprint run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("blueprint serial run differs from monolithic Build\nbuild:\n%v\nblueprint:\n%v",
			want, got)
	}
}

// TestPartitionTotalDeterministic checks the partition itself: a total
// labeling, stable across calls, that separates far clusters and folds
// stream endpoints into one component.
func TestPartitionTotalDeterministic(t *testing.T) {
	bp := cityBlueprint(t, 5, 1)
	labels, count, cutoff, ok := bp.Partition()
	if !ok {
		t.Fatal("default physics must certify a cutoff")
	}
	if cutoff <= 0 {
		t.Fatalf("cutoff = %v", cutoff)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5 (one per cluster)", count)
	}
	if len(labels) != len(bp.Stations) {
		t.Fatalf("%d labels for %d stations", len(labels), len(bp.Stations))
	}
	labels2, count2, _, _ := bp.Partition()
	if count2 != count || !reflect.DeepEqual(labels, labels2) {
		t.Fatal("partition is not deterministic across calls")
	}
	// 4 stations per cluster, declared cluster-by-cluster; labels are
	// first-occurrence normalized, so station i belongs to component i/4.
	for i, l := range labels {
		if l != i/4 {
			t.Fatalf("station %d labeled %d, want %d", i, l, i/4)
		}
	}
	// A stream coupling two otherwise-disjoint clusters folds them.
	coupled := bp
	coupled.Streams = append([]core.BlueprintStream{}, bp.Streams...)
	coupled.Streams = append(coupled.Streams, core.BlueprintStream{
		From: 0, To: 4 * 4, Kind: core.UDP, Rate: 1,
	})
	_, countC, _, _ := coupled.Partition()
	if countC != 4 {
		t.Fatalf("stream-coupled partition has %d components, want 4", countC)
	}
}

// TestShardedRunSeedSensitivity guards against the component networks
// accidentally sharing or reusing random streams: different seeds must
// produce different results through the sharded path (and identical seeds
// identical results, which the bit-identity test already covers).
func TestShardedRunSeedSensitivity(t *testing.T) {
	const total, warmup = 6 * sim.Second, 1 * sim.Second
	a := cityBlueprint(t, 4, 3)
	b := cityBlueprint(t, 4, 4)
	ra, _, err := a.Run(total, warmup, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.Run(total, warmup, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra, rb) {
		t.Fatal("different seeds produced identical sharded results")
	}
}
