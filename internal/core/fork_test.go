package core

import (
	"errors"
	"fmt"
	"testing"

	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/dcf"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/mac/tournament"
	"macaw/internal/sim"
)

// buildForkNet builds the fork test topology: a base station and four pads in
// a single cell, two UDP streams up and one down, with the given MAC.
func buildForkNet(seed int64, f func() MACFactory) *Network {
	n := NewNetwork(seed)
	b := n.AddStation("B", geom.V(0, 0, 12), f())
	p1 := n.AddStation("P1", geom.V(4, 3, 6), f())
	p2 := n.AddStation("P2", geom.V(2, 3, 6), f())
	p3 := n.AddStation("P3", geom.V(0, 3, 6), f())
	n.AddStream(p1, b, UDP, 32)
	n.AddStream(p2, b, UDP, 32)
	n.AddStream(b, p3, UDP, 32)
	return n
}

func forkFactories() map[string]func() MACFactory {
	return map[string]func() MACFactory{
		"MACA":  func() MACFactory { return MACAFactory() },
		"MACAW": func() MACFactory { return MACAWFactory(macaw.DefaultOptions()) },
		"CSMA":  func() MACFactory { return CSMAFactory(csma.Options{ACK: true}) },
		"token": func() MACFactory { return TokenFactory(token.Options{Ring: RingOf(4)}) },
		"DCF":   func() MACFactory { return DCFFactory(dcf.Options{}) },
		"TOURN": func() MACFactory { return TournamentFactory(tournament.Options{}) },
	}
}

// TestAdoptFromContinuationBitIdentical is the adopt layer's core proof: a
// fork that adopts a warmed twin at a barrier and runs to the end produces
// byte-identical Results and a byte-identical final state inventory to the
// uninterrupted run, for every protocol and several seeds and barriers.
func TestAdoptFromContinuationBitIdentical(t *testing.T) {
	const total, warmup = 4 * sim.Second, 1 * sim.Second
	for name, f := range forkFactories() {
		for seed := int64(1); seed <= 5; seed++ {
			for _, barrier := range []sim.Time{sim.Time(warmup), sim.Time(total / 2)} {
				t.Run(fmt.Sprintf("%s/seed%d/b%d", name, seed, barrier), func(t *testing.T) {
					// The reference: one uninterrupted run.
					ref := buildForkNet(seed, f)
					ref.Start(total, warmup)
					ref.RunTo(ref.End())
					refRes := ref.Collect()
					refState := ref.AppendState(nil)

					// The warm twin, parked at the barrier.
					w := buildForkNet(seed, f)
					w.Start(total, warmup)
					w.RunTo(barrier)
					w.ForceCompactEvents()

					// The fork adopts and continues.
					fk := buildForkNet(seed, f)
					if err := fk.AdoptFrom(w); err != nil {
						t.Fatalf("AdoptFrom: %v", err)
					}
					fk.RunTo(fk.End())
					res := fk.Collect()
					state := fk.AppendState(nil)

					if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", refRes) {
						t.Errorf("results diverged:\n fork: %+v\n cold: %+v", res, refRes)
					}
					if string(state) != string(refState) {
						t.Errorf("final state diverged at %s", firstDiffLine(refState, state))
					}
				})
			}
		}
	}
}

// TestAdoptFromManyForksShareOneTwin adopts several forks from one warm twin
// sequentially, proving adoption leaves the twin intact (it only reads it).
func TestAdoptFromManyForksShareOneTwin(t *testing.T) {
	const total, warmup = 3 * sim.Second, 1 * sim.Second
	f := forkFactories()["MACAW"]
	w := buildForkNet(7, f)
	w.Start(total, warmup)
	w.RunTo(sim.Time(warmup))
	w.ForceCompactEvents()
	wantTwin := w.AppendState(nil)

	var first []byte
	for i := 0; i < 3; i++ {
		fk := buildForkNet(7, f)
		if err := fk.AdoptFrom(w); err != nil {
			t.Fatalf("fork %d: %v", i, err)
		}
		fk.RunTo(fk.End())
		state := fk.AppendState(nil)
		if first == nil {
			first = state
		} else if string(state) != string(first) {
			t.Fatalf("fork %d final state differs from fork 0 at %s", i, firstDiffLine(first, state))
		}
		if got := w.AppendState(nil); string(got) != string(wantTwin) {
			t.Fatalf("fork %d mutated the warm twin at %s", i, firstDiffLine(wantTwin, got))
		}
	}
}

// TestAdoptFromRefusesMismatchedShapes pins the fail-closed paths.
func TestAdoptFromRefusesMismatchedShapes(t *testing.T) {
	const total, warmup = 2 * sim.Second, 1 * sim.Second
	f := forkFactories()["MACA"]
	w := buildForkNet(3, f)
	w.Start(total, warmup)
	w.RunTo(sim.Time(warmup))
	w.ForceCompactEvents()

	// A fork that has already run cannot adopt.
	ran := buildForkNet(3, f)
	ran.Start(total, warmup)
	ran.RunTo(sim.Second / 2)
	if err := ran.AdoptFrom(w); !errors.Is(err, ErrAdopt) {
		t.Fatalf("adopting into a running network: got %v, want ErrAdopt", err)
	}

	// A different protocol cannot adopt.
	other := buildForkNet(3, forkFactories()["MACAW"])
	if err := other.AdoptFrom(w); !errors.Is(err, ErrAdopt) {
		t.Fatalf("adopting across protocols: got %v, want ErrAdopt", err)
	}

	// A different station count cannot adopt.
	small := NewNetwork(3)
	small.AddStation("B", geom.V(0, 0, 12), f())
	if err := small.AdoptFrom(w); !errors.Is(err, ErrAdopt) {
		t.Fatalf("adopting a smaller network: got %v, want ErrAdopt", err)
	}
}

// TestForkWithDeltaMatchesColdDelta is the sweep engine's correctness core:
// for every protocol and delta kind, a fork that adopts a warmed twin and
// applies a typed delta at the barrier is byte-identical — Results and final
// state inventory — to a cold run applying the same delta at the same
// barrier.
func TestForkWithDeltaMatchesColdDelta(t *testing.T) {
	const total, warmup = 4 * sim.Second, 1 * sim.Second
	const barrier = sim.Time(warmup)
	deltas := []struct {
		kind  string
		value float64
	}{
		{"backoff.min", 4},
		{"backoff.max", 16},
		{"mild.inc", 2.0},
		{"mild.dec", 2},
		{"load.rate", 52},
		{"retry.limit", 2},
		{"cw.min", 31},
		{"cw.max", 511},
		{"retry.short", 3},
		{"retry.long", 2},
		{"tournament.window", 16},
	}
	for name, f := range forkFactories() {
		for _, d := range deltas {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/%s=%g/seed%d", name, d.kind, d.value, seed), func(t *testing.T) {
					cold := buildForkNet(seed, f)
					cold.Start(total, warmup)
					cold.RunTo(barrier)
					if err := cold.ApplyDelta(d.kind, d.value); err != nil {
						t.Fatalf("cold ApplyDelta: %v", err)
					}
					cold.RunTo(cold.End())
					coldRes := cold.Collect()
					coldState := cold.AppendState(nil)

					w := buildForkNet(seed, f)
					w.Start(total, warmup)
					w.RunTo(barrier)
					w.ForceCompactEvents()

					fk := buildForkNet(seed, f)
					if err := fk.AdoptFrom(w); err != nil {
						t.Fatalf("AdoptFrom: %v", err)
					}
					if err := fk.ApplyDelta(d.kind, d.value); err != nil {
						t.Fatalf("fork ApplyDelta: %v", err)
					}
					fk.RunTo(fk.End())
					res := fk.Collect()
					state := fk.AppendState(nil)

					if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", coldRes) {
						t.Errorf("results diverged:\n fork: %+v\n cold: %+v", res, coldRes)
					}
					if string(state) != string(coldState) {
						t.Errorf("final state diverged at %s", firstDiffLine(coldState, state))
					}
				})
			}
		}
	}
}

// TestApplyDeltaFailsClosed pins the typed error taxonomy.
func TestApplyDeltaFailsClosed(t *testing.T) {
	n := buildForkNet(1, forkFactories()["MACAW"])
	n.Start(2*sim.Second, sim.Second)
	for _, tc := range []struct {
		kind  string
		value float64
		want  error
	}{
		{"nonsense", 1, ErrDeltaUnknown},
		{"fault.crash", 1, ErrDeltaInvalidates},
		{"backoff.min", 0, ErrDeltaInvalid},
		{"backoff.max", 1.5, ErrDeltaInvalid},
		{"mild.inc", 0.5, ErrDeltaInvalid},
		{"mild.dec", 0, ErrDeltaInvalid},
		{"load.rate", -1, ErrDeltaInvalid},
		{"retry.limit", -2, ErrDeltaInvalid},
		{"cw.min", 0, ErrDeltaInvalid},
		{"cw.max", 1.5, ErrDeltaInvalid},
		{"retry.short", 0, ErrDeltaInvalid},
		{"retry.long", 0.5, ErrDeltaInvalid},
		{"tournament.window", 1, ErrDeltaInvalid},
	} {
		if err := n.ApplyDelta(tc.kind, tc.value); !errors.Is(err, tc.want) {
			t.Errorf("ApplyDelta(%s, %g) = %v, want %v", tc.kind, tc.value, err, tc.want)
		}
	}
}

// TestDeltaBoundariesExact pins the clamp-rejection boundaries at exactly the
// live limits: the last legal value applies cleanly and one step past it is a
// typed validation error, never a silent clamp.
func TestDeltaBoundariesExact(t *testing.T) {
	start := func(name string) *Network {
		n := buildForkNet(1, forkFactories()[name])
		n.Start(2*sim.Second, sim.Second)
		n.RunTo(sim.Time(sim.Second))
		return n
	}

	// MILD defaults are BOmin 2, BOmax 64: span 62. A decrease step of 62
	// still has one non-clamping application; 63 would clamp on every one.
	mild := start("MACAW")
	if err := mild.ApplyDelta("mild.dec", 62); err != nil {
		t.Errorf("mild.dec=62 (exact span): %v", err)
	}
	if err := mild.ApplyDelta("mild.dec", 63); !errors.Is(err, ErrDeltaInvalid) {
		t.Errorf("mild.dec=63 (span+1) = %v, want ErrDeltaInvalid", err)
	}

	// DCF defaults are CWmin 15, CWmax 1023. cw.min may rise exactly to the
	// live cw.max and cw.max fall exactly to the live cw.min; one step past
	// either inverts the window and must fail with no station touched.
	d := start("DCF")
	if err := d.ApplyDelta("cw.min", 1023); err != nil {
		t.Errorf("cw.min=1023 (live cw.max): %v", err)
	}
	d = start("DCF")
	if err := d.ApplyDelta("cw.min", 1024); !errors.Is(err, ErrDeltaInvalid) {
		t.Errorf("cw.min=1024 = %v, want ErrDeltaInvalid", err)
	}
	if err := d.ApplyDelta("cw.max", 15); err != nil {
		t.Errorf("cw.max=15 (live cw.min): %v", err)
	}
	if err := d.ApplyDelta("cw.max", 14); !errors.Is(err, ErrDeltaInvalid) {
		t.Errorf("cw.max=14 = %v, want ErrDeltaInvalid", err)
	}
	if err := d.ApplyDelta("retry.short", 1); err != nil {
		t.Errorf("retry.short=1 (floor): %v", err)
	}
	if err := d.ApplyDelta("retry.long", 1); err != nil {
		t.Errorf("retry.long=1 (floor): %v", err)
	}

	// The tournament window floor is 2 (a 1-slot window has no elimination).
	tn := start("TOURN")
	if err := tn.ApplyDelta("tournament.window", 2); err != nil {
		t.Errorf("tournament.window=2 (floor): %v", err)
	}
	if err := tn.ApplyDelta("tournament.window", 1); !errors.Is(err, ErrDeltaInvalid) {
		t.Errorf("tournament.window=1 = %v, want ErrDeltaInvalid", err)
	}
}
