package core

import (
	"errors"
	"fmt"
	"strings"

	"macaw/internal/sim"
	"macaw/internal/traffic"
)

// This file implements warm-started forking at the network level (DESIGN.md
// §15): one network warmed to a barrier becomes the template for many
// parameter variants, each of which adopts the warm state in memory instead
// of replaying the warmup window. The contract is the same as checkpoint
// restore's, enforced the same way: the fork must be built identically (same
// layout, same factories, same seed — so the build-time RNG stream creation
// and draws reproduce the warm twin's), the adoption copies every piece of
// mutable state the snapshot inventory pins, and the adopted state is
// byte-verified against the warm twin's capture before a single post-barrier
// event fires. Adoption only reads the warm network, so many forks can adopt
// the same immobile twin concurrently.

// ErrAdopt marks a failed warm-fork adoption: the fork and the warm twin are
// observably different shapes, or the warm twin carries state this path does
// not reproduce (a halted or fault-injected station, TCP transport, a
// non-CBR generator). Callers fall back to a cold run.
var ErrAdopt = errors.New("core: warm-fork adoption failed")

// ErrForkDiverged means the adopted state inventory is not byte-identical to
// the warm twin's — the fork must not continue.
var ErrForkDiverged = errors.New("core: forked state diverged from warm twin")

// AdoptFrom turns n — a freshly built, never-run twin of w — into a running
// copy of w at w's current virtual time. On return n is armed exactly as w
// is: same run window, same pending events at the same (when, prio, seq)
// keys, same RNG cursors, same protocol and transport state, and a
// byte-identical state inventory (verified; ErrForkDiverged names the first
// differing line otherwise). The warm twin must be quiescent between events
// — in practice, parked at a barrier by RunTo — and must have a compacted
// event queue (ForceCompactEvents) so both heaps hold exactly the same
// records.
func (n *Network) AdoptFrom(w *Network) error {
	// Build-time events (token's ring bootstrap and watchdogs) may already
	// be pending — DropAllEvents clears them below — but no event may have
	// fired: a fork that has run has consumed RNG draws and mutated state
	// the adoption cannot rewind.
	if _, fired, _, _ := n.Sim.SchedCounters(); n.Sim.Now() != 0 || fired != 0 {
		return fmt.Errorf("%w: fork has already run (now=%d, %d events fired)", ErrAdopt, n.Sim.Now(), fired)
	}
	if len(n.stations) != len(w.stations) {
		return fmt.Errorf("%w: %d stations here vs %d in warm twin", ErrAdopt, len(n.stations), len(w.stations))
	}
	if len(n.streams) != len(w.streams) {
		return fmt.Errorf("%w: %d streams here vs %d in warm twin", ErrAdopt, len(n.streams), len(w.streams))
	}
	if _, _, cancelled, _ := w.Sim.SchedCounters(); cancelled != 0 {
		return fmt.Errorf("%w: warm twin holds %d cancelled events; ForceCompactEvents it at the barrier first", ErrAdopt, cancelled)
	}

	// Arm the same run window the warm twin is in. Start draws no
	// randomness (CBR phases were drawn at build) and runs no events; it
	// creates the measurement windows and the initial generator ticks,
	// which the re-arm below replaces with the warm twin's.
	n.Start(w.runTotal, w.warmup)
	if n.runStart != w.runStart {
		return fmt.Errorf("%w: run started at %d here vs %d in warm twin", ErrAdopt, n.runStart, w.runStart)
	}
	n.Sim.DropAllEvents()

	if err := n.Medium.AdoptFrom(w.Medium); err != nil {
		return fmt.Errorf("%w: %v", ErrAdopt, err)
	}
	for i, st := range n.stations {
		if err := st.adoptFrom(w.stations[i]); err != nil {
			return fmt.Errorf("%w: station %s: %v", ErrAdopt, st.name, err)
		}
	}
	for i, s := range n.streams {
		if err := s.adoptFrom(w.streams[i]); err != nil {
			return fmt.Errorf("%w: stream %s: %v", ErrAdopt, s.Name, err)
		}
	}

	// Engine bookkeeping last: the free pool to the warm size (re-arms
	// above consumed recycled records), then the counters (heapPush
	// maintains the queue high-water mark, so SetCounters must run after
	// every re-arm), the clock, and the RNG cursors.
	n.Sim.SetFreeList(w.Sim.FreeLen())
	seq, fired, cancelled, maxq := w.Sim.SchedCounters()
	n.Sim.SetCounters(seq, fired, cancelled, maxq)
	n.Sim.SetClock(w.Sim.Now())
	if err := n.Sim.AdvanceRNG(w.Sim.StreamCursors()); err != nil {
		return fmt.Errorf("%w: %v", ErrAdopt, err)
	}

	// The proof obligation: the adopted inventory must be byte-identical
	// to the warm twin's. Any copy this file missed — a new engine field,
	// a new layer — surfaces here, before any post-barrier event fires.
	want := w.AppendState(nil)
	got := n.AppendState(nil)
	if string(want) != string(got) {
		return fmt.Errorf("%w at %s", ErrForkDiverged, firstDiffLine(want, got))
	}
	return nil
}

// ForceCompactEvents removes cancelled events from the network's queue
// immediately (see sim.ForceCompact). Warm templates run it once at the
// barrier so every fork adopts an identical, compaction-free heap.
func (n *Network) ForceCompactEvents() { n.Sim.ForceCompact() }

// firstDiffLine locates the first line where two state inventories differ.
func firstDiffLine(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	for i := range wl {
		if i >= len(gl) {
			return fmt.Sprintf("line %d: fork state ends %d lines early", i+1, len(wl)-len(gl))
		}
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  warm: %q\n  fork: %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line %d: fork state has %d extra lines, first %q", len(wl)+1, len(gl)-len(wl), gl[len(wl)])
}

// adoptFrom copies one station's mutable state: the fault tally and the MAC
// engine. Fault-injected histories are refused — a restart draws fresh RNG
// streams the fork's build did not create, so the cursors cannot be
// positioned.
func (st *Station) adoptFrom(w *Station) error {
	if st.id != w.id || st.name != w.name {
		return fmt.Errorf("station is %d/%s here vs %d/%s in warm twin", st.id, st.name, w.id, w.name)
	}
	if w.crashes != 0 || w.restarts != 0 {
		return fmt.Errorf("fault-injected station (crashes=%d restarts=%d) cannot fork", w.crashes, w.restarts)
	}
	st.dropped = w.dropped
	// The SPI makes forking uniform: every engine's AdoptFrom asserts the
	// concrete twin type itself and fails closed on a mismatch, so the
	// per-protocol type switch this function used to carry is gone.
	return st.mac.AdoptFrom(w.mac)
}

// adoptFrom copies one stream's mutable state: delivery bookkeeping, the
// measurement window, the generator (CBR only), and the transport sender.
// TCP streams are refused — the TCP agents' retransmission state is not yet
// covered by an adopt hook.
func (s *Stream) adoptFrom(w *Stream) error {
	if s.Name != w.Name || s.Kind != w.Kind || s.Rate != w.Rate || s.id != w.id || s.startAt != w.startAt {
		return fmt.Errorf("stream is %s/%v/%g/#%d here vs %s/%v/%g/#%d in warm twin",
			s.Name, s.Kind, s.Rate, s.id, w.Name, w.Kind, w.Rate, w.id)
	}
	if s.tcpSender != nil || s.tcpRecv != nil || w.tcpSender != nil || w.tcpRecv != nil {
		return fmt.Errorf("tcp streams cannot fork")
	}
	s.offered = w.offered
	if w.offeredAt != nil {
		s.offeredAt = make(map[uint32]sim.Time, len(w.offeredAt))
		for k, v := range w.offeredAt {
			s.offeredAt[k] = v
		}
	}
	s.delays = append(s.delays[:0], w.delays...)
	if err := s.counter.AdoptFrom(w.counter); err != nil {
		return err
	}
	cg, ok := s.gen.(*traffic.CBR)
	if !ok {
		return fmt.Errorf("generator %T cannot fork", s.gen)
	}
	if err := cg.AdoptFrom(w.gen); err != nil {
		return err
	}
	return s.udpSender.AdoptFrom(w.udpSender)
}
