package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"macaw/internal/backoff"
	"macaw/internal/traffic"
)

// This file applies typed parameter deltas at a run barrier (DESIGN.md §15).
// A delta is the thing a warm-started sweep varies: one warmed network is
// forked into many variants, each applying a different delta at the same
// virtual time. Correctness rests on the delta being applied through this
// single code path on both the cold and the warm side — the continuation is
// then a pure function of (state at barrier, delta), and the warm fork's
// byte-verified state makes the two sides identical.
//
// Delta kinds:
//
//	backoff.min        BOmin for every station's strategy (BEB and MILD)
//	backoff.max        BOmax for every station's strategy (BEB and MILD)
//	mild.inc           MILD increase factor Finc(x) = ceil(x·v) (no-op on BEB)
//	mild.dec           MILD decrease step Fdec(x) = max(x-v, BOmin) (no-op on BEB)
//	load.rate          CBR offered load, packets/second, every stream
//	retry.limit        per-packet retry limit at every station
//	cw.min             DCF CWmin at every DCF station
//	cw.max             DCF CWmax at every DCF station
//	retry.short        DCF dot11ShortRetryLimit (RTS attempts)
//	retry.long         DCF dot11LongRetryLimit (data attempts)
//	tournament.window  tournament constant window W
//
// Kinds inapplicable to a protocol (mild.* over BEB, any backoff kind over
// the token scheme, cw.* at a non-DCF station, retry.limit at a station
// with no retry counter) are deterministic no-ops — deterministically
// nothing on both sides — never silent partial applications. Unknown kinds
// and kinds that would invalidate captured state (fault.*) fail closed with
// typed errors. Values that would silently clamp — a mild.dec step wider
// than the backoff window span, a cw.min above a station's live cw.max —
// fail at validation time, before any station is touched (the cw.* kinds
// pre-validate against every station's live bounds explicitly).

// Typed delta-application failures.
var (
	// ErrDeltaUnknown means the delta kind is not in the taxonomy.
	ErrDeltaUnknown = errors.New("core: unknown delta kind")
	// ErrDeltaInvalid means the delta value is out of the kind's domain.
	ErrDeltaInvalid = errors.New("core: invalid delta value")
	// ErrDeltaInvalidates means the delta kind would invalidate captured
	// state (fault trajectories) and cannot be applied to a warm fork.
	ErrDeltaInvalidates = errors.New("core: delta invalidates warm state")
)

// DeltaKinds lists the supported delta kinds.
func DeltaKinds() []string {
	return []string{"backoff.min", "backoff.max", "mild.inc", "mild.dec", "load.rate", "retry.limit",
		"cw.min", "cw.max", "retry.short", "retry.long", "tournament.window"}
}

// backoffRetuner is the engine hook for strategy retuning; the token scheme
// does not implement it (it has no backoff), which is a deterministic no-op.
type backoffRetuner interface{ BackoffPolicy() backoff.Policy }

// retryRetuner is the engine hook for the retry limit.
type retryRetuner interface{ SetMaxRetries(n int) }

// cwRetuner is the DCF hook for the contention-window bounds. CWBounds lets
// the delta layer validate a new bound against every station's live pair
// before mutating any of them.
type cwRetuner interface {
	CWBounds() (min, max int)
	SetCWMin(v int) error
	SetCWMax(v int) error
}

// dcfRetryRetuner is the DCF hook for the split 802.11 retry limits.
type dcfRetryRetuner interface {
	SetShortRetry(n int) error
	SetLongRetry(n int) error
}

// windowRetuner is the tournament hook for the constant window.
type windowRetuner interface{ SetWindow(v int) error }

// ApplyDelta applies one typed parameter delta to the running network. It
// must be invoked with the network parked at a barrier; it first compacts
// the event queue (so a cold run and a warm fork see identical heaps from
// here on), then dispatches on the kind. Every error is typed and fails the
// whole application before any station was touched.
func (n *Network) ApplyDelta(kind string, value float64) error {
	n.ForceCompactEvents()
	switch kind {
	case "backoff.min", "backoff.max":
		v := int(value)
		if float64(v) != value || v < 1 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		set := backoff.SetBOMin
		if kind == "backoff.max" {
			set = backoff.SetBOMax
		}
		return n.retunePolicies(func(p backoff.Policy) error { return set(p, v) })
	case "mild.inc":
		num := int(math.Round(value * 1000))
		if num < 1000 {
			return fmt.Errorf("%w: %s=%g below 1", ErrDeltaInvalid, kind, value)
		}
		return n.retunePolicies(func(p backoff.Policy) error { return backoff.SetMILDInc(p, num, 1000) })
	case "mild.dec":
		step := int(value)
		if float64(step) != value || step < 1 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		return n.retunePolicies(func(p backoff.Policy) error { return backoff.SetMILDDec(p, step) })
	case "load.rate":
		if value <= 0 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		for _, s := range n.streams {
			cg, ok := s.gen.(*traffic.CBR)
			if !ok {
				return fmt.Errorf("%w: %s over generator %T", ErrDeltaInvalid, kind, s.gen)
			}
			if err := cg.SetRate(value); err != nil {
				return fmt.Errorf("%w: %v", ErrDeltaInvalid, err)
			}
			s.Rate = value
		}
		return nil
	case "retry.limit":
		limit := int(value)
		if float64(limit) != value || limit < 0 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		for _, st := range n.stations {
			if r, ok := st.mac.(retryRetuner); ok {
				r.SetMaxRetries(limit)
			}
		}
		return nil
	case "cw.min", "cw.max":
		v := int(value)
		if float64(v) != value || v < 1 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		// Validate against every DCF station's live bounds first: a value
		// that would invert a window fails closed with no station touched —
		// never a silent clamp, never a partial application.
		for _, st := range n.stations {
			cw, ok := st.mac.(cwRetuner)
			if !ok {
				continue
			}
			lo, hi := cw.CWBounds()
			if kind == "cw.min" && v > hi {
				return fmt.Errorf("%w: cw.min=%d above live cw.max %d at station %s", ErrDeltaInvalid, v, hi, st.name)
			}
			if kind == "cw.max" && v < lo {
				return fmt.Errorf("%w: cw.max=%d below live cw.min %d at station %s", ErrDeltaInvalid, v, lo, st.name)
			}
		}
		for _, st := range n.stations {
			cw, ok := st.mac.(cwRetuner)
			if !ok {
				continue
			}
			var err error
			if kind == "cw.min" {
				err = cw.SetCWMin(v)
			} else {
				err = cw.SetCWMax(v)
			}
			if err != nil {
				return fmt.Errorf("%w: station %s: %v", ErrDeltaInvalid, st.name, err)
			}
		}
		return nil
	case "retry.short", "retry.long":
		v := int(value)
		if float64(v) != value || v < 1 {
			return fmt.Errorf("%w: %s=%g", ErrDeltaInvalid, kind, value)
		}
		for _, st := range n.stations {
			r, ok := st.mac.(dcfRetryRetuner)
			if !ok {
				continue
			}
			var err error
			if kind == "retry.short" {
				err = r.SetShortRetry(v)
			} else {
				err = r.SetLongRetry(v)
			}
			if err != nil {
				return fmt.Errorf("%w: station %s: %v", ErrDeltaInvalid, st.name, err)
			}
		}
		return nil
	case "tournament.window":
		v := int(value)
		if float64(v) != value || v < 2 {
			return fmt.Errorf("%w: %s=%g (window floor is 2)", ErrDeltaInvalid, kind, value)
		}
		for _, st := range n.stations {
			if w, ok := st.mac.(windowRetuner); ok {
				if err := w.SetWindow(v); err != nil {
					return fmt.Errorf("%w: station %s: %v", ErrDeltaInvalid, st.name, err)
				}
			}
		}
		return nil
	default:
		if strings.HasPrefix(kind, "fault.") {
			// Fault knobs shape the injector's trajectory from time zero;
			// a warm capture has already committed to one, so no delta can
			// rewrite it at a barrier.
			return fmt.Errorf("%w: %s (fault trajectories are fixed at build)", ErrDeltaInvalidates, kind)
		}
		return fmt.Errorf("%w: %q", ErrDeltaUnknown, kind)
	}
}

// retunePolicies applies fn to every station's backoff policy; stations whose
// engine has none are skipped deterministically.
func (n *Network) retunePolicies(fn func(backoff.Policy) error) error {
	for _, st := range n.stations {
		if br, ok := st.mac.(backoffRetuner); ok {
			if err := fn(br.BackoffPolicy()); err != nil {
				return fmt.Errorf("%w: station %s: %v", ErrDeltaInvalid, st.name, err)
			}
		}
	}
	return nil
}
