package core

import (
	"fmt"
	"math/rand"
	"testing"

	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// randomScenario builds an arbitrary network — random station placement,
// random protocol mix per run, random streams, random noise, random power
// and mobility events — and checks global invariants: the run terminates,
// nothing panics, and accounting is conserved. This is the repository's
// failure-injection net: any FSM deadlock, timer leak, or double-delivery
// bug tends to surface here long before a scripted scenario hits it.
func randomScenario(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := NewNetwork(seed)

	factories := []MACFactory{
		MACAFactory(),
		MACAWFactory(macaw.DefaultOptions()),
		MACAWFactory(macaw.Options{Exchange: macaw.Basic}),
		MACAWFactory(macaw.Options{Exchange: macaw.WithACK, PerStream: true}),
		MACAWFactory(func() macaw.Options { o := macaw.DefaultOptions(); o.NACK = true; return o }()),
		MACAWFactory(func() macaw.Options { o := macaw.DefaultOptions(); o.PiggybackACK = true; return o }()),
		MACAWFactory(func() macaw.Options { o := macaw.DefaultOptions(); o.CarrierSense = true; return o }()),
		CSMAFactory(csma.Options{ACK: true}),
	}
	// One protocol per run: mixing protocols in one cell is not a
	// supported deployment (they would still interoperate at the PHY).
	f := factories[r.Intn(len(factories))]

	nStations := 2 + r.Intn(8)
	var stations []*Station
	for i := 0; i < nStations; i++ {
		pos := geom.V(r.Float64()*40-20, r.Float64()*40-20, 6+float64(r.Intn(2))*6)
		stations = append(stations, n.AddStation(fmt.Sprintf("S%d", i), pos, f))
	}

	nStreams := 1 + r.Intn(6)
	for i := 0; i < nStreams; i++ {
		from := stations[r.Intn(len(stations))]
		to := stations[r.Intn(len(stations))]
		if from == to {
			continue
		}
		kind := UDP
		if r.Intn(3) == 0 {
			kind = TCP
		}
		st := n.AddStream(from, to, kind, 4+float64(r.Intn(60)))
		st.SetStart(sim.Duration(r.Intn(3)) * sim.Second)
	}

	switch r.Intn(4) {
	case 0:
		n.Medium.SetNoise(phy.DestLoss{P: r.Float64() * 0.2})
	case 1:
		n.Medium.SetNoise(phy.UniformLoss{P: r.Float64() * 0.05})
	case 2:
		ns := n.Medium.AddNoiseSource(geom.V(r.Float64()*20-10, r.Float64()*20-10, 6), r.Float64())
		n.At(sim.Second, func() { ns.Set(true) })
		n.At(5*sim.Second, func() { ns.Set(false) })
	}

	// Random power and mobility events.
	if r.Intn(2) == 0 && len(stations) > 2 {
		n.PowerOff(stations[r.Intn(len(stations))], sim.Duration(1+r.Intn(5))*sim.Second)
	}
	if r.Intn(2) == 0 {
		st := stations[r.Intn(len(stations))]
		n.MoveStation(st, sim.Duration(2+r.Intn(5))*sim.Second,
			geom.V(r.Float64()*40-20, r.Float64()*40-20, st.Radio().Pos().Z))
	}

	res := n.Run(15*sim.Second, 1*sim.Second)

	// Invariants: deliveries never exceed offers; the medium's counters
	// are consistent; the event queue is not still spinning pathologically
	// (Run returned).
	for _, s := range res.Streams {
		if s.Delivered > s.Offered {
			t.Fatalf("seed %d: stream %s delivered %d > offered %d", seed, s.Name, s.Delivered, s.Offered)
		}
		if s.PPS < 0 {
			t.Fatalf("seed %d: negative rate", seed)
		}
	}
	m := n.Medium.Counters()
	if m.Delivered+m.Corrupted+m.NoiseDropped+m.Aborted < 0 {
		t.Fatalf("seed %d: counter overflow %+v", seed, m)
	}
	if f := res.Fairness(); f < 0 || f > 1.0000001 {
		t.Fatalf("seed %d: fairness out of range: %v", seed, f)
	}
}

func TestRandomScenarios(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			randomScenario(t, seed)
		})
	}
}

// TestRandomScenarioDeterminism re-runs a sample of random scenarios and
// compares full results: the whole stack must be a pure function of the
// seed.
func TestRandomScenarioDeterminism(t *testing.T) {
	build := func(seed int64) Results {
		r := rand.New(rand.NewSource(seed))
		n := NewNetwork(seed)
		f := MACAWFactory(macaw.DefaultOptions())
		var stations []*Station
		for i := 0; i < 4+r.Intn(3); i++ {
			stations = append(stations, n.AddStation(fmt.Sprintf("S%d", i),
				geom.V(r.Float64()*20-10, r.Float64()*20-10, 6), f))
		}
		for i := 0; i+1 < len(stations); i++ {
			n.AddStream(stations[i], stations[i+1], UDP, 20)
		}
		return n.Run(10*sim.Second, 1*sim.Second)
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := build(seed), build(seed)
		for i := range a.Streams {
			if a.Streams[i].Delivered != b.Streams[i].Delivered {
				t.Fatalf("seed %d stream %d: %d vs %d", seed, i,
					a.Streams[i].Delivered, b.Streams[i].Delivered)
			}
		}
	}
}
