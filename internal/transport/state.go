package transport

import (
	"fmt"
	"sort"
)

// This file is the transport layer's contribution to the snapshot state
// inventory (DESIGN.md §14): sender windows, RTT estimator state, pending
// retransmission timers, and the receiver's reassembly buffer (sorted, so
// the dump is canonical despite the map).

// AppendState appends the sender's full state.
func (u *UDPSender) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "udpsend dst=%d stream=%d next=%d sent=%d\n", u.dst, u.stream, u.next, u.sent)
}

// AppendState appends the receiver's full state.
func (u *UDPReceiver) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "udprecv stream=%d received=%d\n", u.stream, u.received)
}

// AppendState appends the sender's full state, including the RTT estimator
// and the retransmission timer's deadline (the timer event itself lives in
// the engine dump).
func (t *TCPSender) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "tcpsend dst=%d stream=%d backlog=%d next=%d una=%d srtt=%d rttvar=%d haveRTT=%t rto=%d rtoBackoff=%d dupAcks=%d\n",
		t.dst, t.stream, t.backlog, t.nextSeq, t.sndUna, t.srtt, t.rttvar, t.haveRTT, t.rto, t.rtoBackoff, t.dupAcks)
	b = fmt.Appendf(b, "tcpsend.sample seq=%d at=%d valid=%t timer=%d timerCancelled=%t\n",
		t.sampleSeq, t.sampleAt, t.sampleValid, t.timer.When(), t.timer.Cancelled())
	b = fmt.Appendf(b, "tcpsend.stats sent=%d rexmit=%d timeouts=%d fast=%d acks=%d\n",
		t.stats.Sent, t.stats.Retransmits, t.stats.Timeouts, t.stats.FastRetransmits, t.stats.AcksReceived)
	return b
}

// AppendState appends the receiver's full state with the reassembly buffer
// in ascending sequence order.
func (r *TCPReceiver) AppendState(b []byte) []byte {
	keys := make([]uint32, 0, len(r.buffered))
	for k := range r.buffered {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = fmt.Appendf(b, "tcprecv stream=%d expected=%d delivered=%d dups=%d buffered=%v\n",
		r.stream, r.expected, r.delivered, r.dups, keys)
	return b
}
