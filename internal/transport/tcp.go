package transport

import (
	"macaw/internal/frame"
	"macaw/internal/sim"
)

// TCPConfig parameterizes the simplified TCP.
type TCPConfig struct {
	// Window is the fixed sending window in packets.
	Window int
	// MinRTO is the minimum retransmission timeout; §3.3.1: "many
	// current TCP implementations have a minimum timeout period of
	// 0.5 sec".
	MinRTO sim.Duration
	// MaxRTO caps the exponential timer backoff.
	MaxRTO sim.Duration
	// DupAckThreshold triggers fast retransmit (0 disables).
	DupAckThreshold int
}

// DefaultTCPConfig returns the configuration used in the reproduction.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		Window:          8,
		MinRTO:          500 * sim.Millisecond,
		MaxRTO:          64 * sim.Second,
		DupAckThreshold: 3,
	}
}

// TCPSender is a simplified TCP source: a fixed sliding window over an
// unbounded application backlog, cumulative acknowledgements, an RTT
// estimator, exponential timer backoff, and optional fast retransmit. It
// deliberately omits congestion control — the paper's TCP results hinge on
// the coarse retransmission timer, not on window dynamics.
type TCPSender struct {
	ep     Endpoint
	dst    frame.NodeID
	stream uint16
	cfg    TCPConfig

	backlog uint32 // packets offered by the application
	nextSeq uint32 // next never-sent sequence number (1-based)
	sndUna  uint32 // oldest unacknowledged sequence number

	srtt, rttvar sim.Duration
	haveRTT      bool
	rto          sim.Duration
	rtoBackoff   int
	timer        sim.Event

	// RTT sampling (one sample in flight, Karn's rule: no samples from
	// retransmitted segments).
	sampleSeq   uint32
	sampleAt    sim.Time
	sampleValid bool

	dupAcks int

	stats TCPStats
}

// TCPStats counts sender events.
type TCPStats struct {
	Sent            int // data segments transmitted, including retransmits
	Retransmits     int
	Timeouts        int
	FastRetransmits int
	AcksReceived    int
}

// NewTCPSender returns a sender for one (destination, stream) pair.
func NewTCPSender(ep Endpoint, dst frame.NodeID, stream uint16, cfg TCPConfig) *TCPSender {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	return &TCPSender{ep: ep, dst: dst, stream: stream, cfg: cfg, nextSeq: 1, sndUna: 1, rto: cfg.MinRTO}
}

// Stats returns a snapshot of the sender counters.
func (t *TCPSender) Stats() TCPStats { return t.stats }

// Acked reports the number of packets cumulatively acknowledged.
func (t *TCPSender) Acked() int { return int(t.sndUna - 1) }

// Offer submits one application packet to the send buffer and returns its
// sequence number.
func (t *TCPSender) Offer() uint32 {
	t.backlog++
	t.pump()
	return t.backlog
}

// inFlight reports the number of unacknowledged transmitted segments.
func (t *TCPSender) inFlight() int { return int(t.nextSeq - t.sndUna) }

// pump transmits new segments while the window allows.
func (t *TCPSender) pump() {
	for t.inFlight() < t.cfg.Window && t.nextSeq <= t.backlog {
		t.sendSeq(t.nextSeq, false)
		t.nextSeq++
	}
	t.armTimer()
}

func (t *TCPSender) sendSeq(seq uint32, retransmit bool) {
	t.stats.Sent++
	if retransmit {
		t.stats.Retransmits++
	} else if !t.sampleValid {
		t.sampleSeq = seq
		t.sampleAt = t.ep.Clock().Now()
		t.sampleValid = true
	}
	t.ep.SendSegment(t.dst, Segment{Proto: ProtoTCP, Stream: t.stream, Kind: KindData, Seq: seq}, DataBytes)
}

func (t *TCPSender) armTimer() {
	if t.inFlight() == 0 {
		t.timer.Cancel()
		t.timer = sim.Event{}
		return
	}
	if !t.timer.IsZero() && !t.timer.Cancelled() {
		return
	}
	t.timer = t.ep.Clock().After(t.currentRTO(), t.onTimeout)
}

func (t *TCPSender) currentRTO() sim.Duration {
	rto := t.rto
	for i := 0; i < t.rtoBackoff; i++ {
		rto *= 2
		if rto >= t.cfg.MaxRTO {
			return t.cfg.MaxRTO
		}
	}
	return rto
}

func (t *TCPSender) onTimeout() {
	t.timer = sim.Event{}
	if t.inFlight() == 0 {
		return
	}
	t.stats.Timeouts++
	t.rtoBackoff++
	t.sampleValid = false // Karn: never sample a retransmitted segment
	t.sendSeq(t.sndUna, true)
	t.armTimer()
}

// Handle processes an incoming segment addressed to this stream.
func (t *TCPSender) Handle(src frame.NodeID, seg Segment) {
	if seg.Proto != ProtoTCP || seg.Stream != t.stream || seg.Kind != KindAck || src != t.dst {
		return
	}
	t.stats.AcksReceived++
	if seg.Ack <= t.sndUna {
		// Duplicate ack.
		t.dupAcks++
		if t.cfg.DupAckThreshold > 0 && t.dupAcks == t.cfg.DupAckThreshold && t.inFlight() > 0 {
			t.stats.FastRetransmits++
			t.sampleValid = false
			t.sendSeq(t.sndUna, true)
		}
		return
	}
	// New data acknowledged.
	if t.sampleValid && seg.Ack > t.sampleSeq {
		t.addRTTSample(t.ep.Clock().Now() - t.sampleAt)
		t.sampleValid = false
	}
	t.sndUna = seg.Ack
	t.dupAcks = 0
	t.rtoBackoff = 0
	t.timer.Cancel()
	t.timer = sim.Event{}
	t.pump()
}

// addRTTSample updates srtt/rttvar per RFC 6298 and recomputes the RTO with
// the 0.5 s floor.
func (t *TCPSender) addRTTSample(rtt sim.Duration) {
	if !t.haveRTT {
		t.srtt = rtt
		t.rttvar = rtt / 2
		t.haveRTT = true
	} else {
		d := t.srtt - rtt
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	rto := t.srtt + 4*t.rttvar
	if rto < t.cfg.MinRTO {
		rto = t.cfg.MinRTO
	}
	if rto > t.cfg.MaxRTO {
		rto = t.cfg.MaxRTO
	}
	t.rto = rto
}

// RTO returns the current (unbackedoff) retransmission timeout.
func (t *TCPSender) RTO() sim.Duration { return t.rto }

// TCPReceiver delivers in-order data and acknowledges every arriving data
// segment with a cumulative ack (ack-every-packet, the behaviour that loads
// the reverse channel in Table 4).
type TCPReceiver struct {
	ep     Endpoint
	stream uint16

	expected  uint32 // next in-order sequence (1-based)
	buffered  map[uint32]bool
	delivered int
	dups      int
	// OnDeliver observes each in-order delivery.
	OnDeliver func(seq uint32)
}

// NewTCPReceiver returns a receiver for one stream.
func NewTCPReceiver(ep Endpoint, stream uint16) *TCPReceiver {
	return &TCPReceiver{ep: ep, stream: stream, expected: 1, buffered: make(map[uint32]bool)}
}

// Delivered reports the count of in-order packets handed to the
// application.
func (r *TCPReceiver) Delivered() int { return r.delivered }

// Dups reports the count of duplicate data segments received.
func (r *TCPReceiver) Dups() int { return r.dups }

// Handle processes an incoming data segment and emits the cumulative ack.
func (r *TCPReceiver) Handle(src frame.NodeID, seg Segment) {
	if seg.Proto != ProtoTCP || seg.Stream != r.stream || seg.Kind != KindData {
		return
	}
	switch {
	case seg.Seq == r.expected:
		r.deliver(seg.Seq)
		r.expected++
		for r.buffered[r.expected] {
			delete(r.buffered, r.expected)
			r.deliver(r.expected)
			r.expected++
		}
	case seg.Seq > r.expected:
		if !r.buffered[seg.Seq] {
			r.buffered[seg.Seq] = true
		} else {
			r.dups++
		}
	default:
		r.dups++
	}
	r.ep.SendSegment(src, Segment{Proto: ProtoTCP, Stream: r.stream, Kind: KindAck, Ack: r.expected}, AckBytes)
}

func (r *TCPReceiver) deliver(seq uint32) {
	r.delivered++
	if r.OnDeliver != nil {
		r.OnDeliver(seq)
	}
}
