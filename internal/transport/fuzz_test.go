package transport

import "testing"

// FuzzUnmarshalSegment: the segment decoder must never panic and accepted
// segments must round-trip.
func FuzzUnmarshalSegment(f *testing.F) {
	f.Add(Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 7, Ack: 3}.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := UnmarshalSegment(data)
		if err != nil {
			return
		}
		back, err := UnmarshalSegment(seg.Marshal())
		if err != nil || back != seg {
			t.Fatalf("round trip: %+v %v", back, err)
		}
	})
}
