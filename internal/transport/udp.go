package transport

import "macaw/internal/frame"

// UDPSender is the fire-and-forget datagram sender used by most of the
// paper's experiments ("the devices generate data at a constant rate ...
// using UDP for transport").
type UDPSender struct {
	ep     Endpoint
	dst    frame.NodeID
	stream uint16
	next   uint32
	sent   int
}

// NewUDPSender returns a sender for one (destination, stream) pair.
func NewUDPSender(ep Endpoint, dst frame.NodeID, stream uint16) *UDPSender {
	return &UDPSender{ep: ep, dst: dst, stream: stream}
}

// Offer submits one data packet and returns its sequence number.
func (u *UDPSender) Offer() uint32 {
	u.next++
	u.sent++
	u.ep.SendSegment(u.dst, Segment{Proto: ProtoUDP, Stream: u.stream, Kind: KindData, Seq: u.next}, DataBytes)
	return u.next
}

// Sent reports the number of packets offered so far.
func (u *UDPSender) Sent() int { return u.sent }

// UDPReceiver counts datagrams as they arrive; duplicates are impossible at
// the UDP layer (the MAC already suppresses link-level duplicates).
type UDPReceiver struct {
	stream   uint16
	received int
	// OnDeliver, if set, observes each arrival.
	OnDeliver func(seq uint32)
}

// NewUDPReceiver returns a receiver for one stream.
func NewUDPReceiver(stream uint16) *UDPReceiver { return &UDPReceiver{stream: stream} }

// Handle processes an incoming segment for this stream.
func (u *UDPReceiver) Handle(src frame.NodeID, seg Segment) {
	if seg.Proto != ProtoUDP || seg.Stream != u.stream || seg.Kind != KindData {
		return
	}
	u.received++
	if u.OnDeliver != nil {
		u.OnDeliver(seg.Seq)
	}
}

// Received reports the number of datagrams delivered.
func (u *UDPReceiver) Received() int { return u.received }
