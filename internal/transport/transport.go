// Package transport provides the transport substrate the paper's simulator
// contains ("The simulator ... contains the following components: a traffic
// generator ..., TCP, UDP, IP, pads, and base stations"): a UDP-like
// datagram service and a simplified TCP with sliding window, cumulative
// acknowledgements, and the coarse retransmission timer whose 0.5 s minimum
// §3.3.1 cites as the reason link-level recovery matters.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/sim"
)

// Proto identifies the transport protocol of a segment.
type Proto uint8

// Protocols.
const (
	ProtoUDP Proto = 1
	ProtoTCP Proto = 2
)

// Kind distinguishes data segments from acknowledgements.
type Kind uint8

// Segment kinds.
const (
	KindData Kind = 1
	KindAck  Kind = 2
)

// HeaderLen is the encoded segment header size in bytes.
const HeaderLen = 12

// DataBytes is the on-air size of a transport data packet (the paper's 512
// bytes) and AckBytes the size of a TCP acknowledgement packet.
const (
	DataBytes = frame.DefaultDataBytes
	AckBytes  = 40
)

// Segment is a transport-layer packet carried as a MAC payload.
type Segment struct {
	Proto  Proto
	Stream uint16 // stream identifier, scoping Seq/Ack
	Kind   Kind
	Seq    uint32 // sequence number of a data segment
	Ack    uint32 // cumulative ack: next expected sequence number
}

// String renders the segment for traces.
func (s Segment) String() string {
	k := "DATA"
	if s.Kind == KindAck {
		k = "ACK"
	}
	return fmt.Sprintf("%s stream=%d seq=%d ack=%d", k, s.Stream, s.Seq, s.Ack)
}

// Marshal encodes the segment header.
func (s Segment) Marshal() []byte {
	b := make([]byte, HeaderLen)
	b[0] = byte(s.Proto)
	binary.BigEndian.PutUint16(b[1:], s.Stream)
	b[3] = byte(s.Kind)
	binary.BigEndian.PutUint32(b[4:], s.Seq)
	binary.BigEndian.PutUint32(b[8:], s.Ack)
	return b
}

// ErrShortSegment reports an undecodable segment buffer.
var ErrShortSegment = errors.New("transport: segment too short")

// UnmarshalSegment decodes a segment header.
func UnmarshalSegment(b []byte) (Segment, error) {
	if len(b) < HeaderLen {
		return Segment{}, ErrShortSegment
	}
	return Segment{
		Proto:  Proto(b[0]),
		Stream: binary.BigEndian.Uint16(b[1:]),
		Kind:   Kind(b[3]),
		Seq:    binary.BigEndian.Uint32(b[4:]),
		Ack:    binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// Endpoint is what a transport agent needs from its host station: a way to
// hand segments to the MAC and access to simulated time.
type Endpoint interface {
	// SendSegment submits a segment toward dst as a packet of the given
	// on-air size.
	SendSegment(dst frame.NodeID, seg Segment, size int)
	// Clock returns the simulator for timer scheduling.
	Clock() *sim.Simulator
}
