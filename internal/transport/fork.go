package transport

import "fmt"

// AdoptFrom copies w's sequence cursor and send tally into u (DESIGN.md §15).
// The endpoint binding is build-time configuration and must already match.
func (u *UDPSender) AdoptFrom(w *UDPSender) error {
	if u.dst != w.dst || u.stream != w.stream {
		return fmt.Errorf("transport: adopt: udp sender %d/%d here vs %d/%d in warm twin",
			u.dst, u.stream, w.dst, w.stream)
	}
	u.next = w.next
	u.sent = w.sent
	return nil
}
