package transport

import (
	"errors"
	"testing"
	"testing/quick"

	"macaw/internal/frame"
	"macaw/internal/sim"
)

// pipeEnd is an in-memory Endpoint connecting two transport agents with a
// fixed one-way delay and an optional drop filter, standing in for the MAC.
type pipeEnd struct {
	s        *sim.Simulator
	id       frame.NodeID
	peer     *pipeEnd
	delay    sim.Duration
	drop     func(seg Segment) bool
	handlers []func(src frame.NodeID, seg Segment)
}

func newPipe(s *sim.Simulator, delay sim.Duration) (*pipeEnd, *pipeEnd) {
	a := &pipeEnd{s: s, id: 1, delay: delay}
	b := &pipeEnd{s: s, id: 2, delay: delay}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipeEnd) SendSegment(dst frame.NodeID, seg Segment, size int) {
	if size <= 0 {
		panic("bad segment size")
	}
	if p.drop != nil && p.drop(seg) {
		return
	}
	peer := p.peer
	p.s.After(p.delay, func() {
		for _, h := range peer.handlers {
			h(p.id, seg)
		}
	})
}

func (p *pipeEnd) Clock() *sim.Simulator { return p.s }

func (p *pipeEnd) on(h func(src frame.NodeID, seg Segment)) { p.handlers = append(p.handlers, h) }

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{Proto: ProtoTCP, Stream: 7, Kind: KindAck, Seq: 100, Ack: 99}
	got, err := UnmarshalSegment(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}

func TestSegmentShortBuffer(t *testing.T) {
	if _, err := UnmarshalSegment(make([]byte, 3)); !errors.Is(err, ErrShortSegment) {
		t.Fatalf("err = %v", err)
	}
}

func TestSegmentString(t *testing.T) {
	if got := (Segment{Kind: KindData, Stream: 1, Seq: 2}).String(); got != "DATA stream=1 seq=2 ack=0" {
		t.Fatalf("String = %q", got)
	}
	if got := (Segment{Kind: KindAck, Stream: 1, Ack: 3}).String(); got != "ACK stream=1 seq=0 ack=3" {
		t.Fatalf("String = %q", got)
	}
}

func TestQuickSegmentRoundTrip(t *testing.T) {
	f := func(proto, kind uint8, stream uint16, seq, ack uint32) bool {
		s := Segment{Proto: Proto(proto), Stream: stream, Kind: Kind(kind), Seq: seq, Ack: ack}
		got, err := UnmarshalSegment(s.Marshal())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPDelivery(t *testing.T) {
	s := sim.New(1)
	a, b := newPipe(s, sim.Millisecond)
	snd := NewUDPSender(a, 2, 1)
	rcv := NewUDPReceiver(1)
	var seqs []uint32
	rcv.OnDeliver = func(seq uint32) { seqs = append(seqs, seq) }
	b.on(rcv.Handle)
	for i := 0; i < 5; i++ {
		snd.Offer()
	}
	s.RunAll()
	if snd.Sent() != 5 || rcv.Received() != 5 {
		t.Fatalf("sent=%d received=%d", snd.Sent(), rcv.Received())
	}
	for i, q := range seqs {
		if q != uint32(i+1) {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestUDPReceiverFiltersForeignStreams(t *testing.T) {
	rcv := NewUDPReceiver(1)
	rcv.Handle(1, Segment{Proto: ProtoUDP, Stream: 2, Kind: KindData, Seq: 1})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 1})
	rcv.Handle(1, Segment{Proto: ProtoUDP, Stream: 1, Kind: KindAck, Seq: 1})
	if rcv.Received() != 0 {
		t.Fatal("receiver accepted foreign segments")
	}
}

// tcpPair wires a sender and receiver over a pipe.
func tcpPair(s *sim.Simulator, delay sim.Duration, cfg TCPConfig) (*TCPSender, *TCPReceiver, *pipeEnd, *pipeEnd) {
	a, b := newPipe(s, delay)
	snd := NewTCPSender(a, 2, 1, cfg)
	rcv := NewTCPReceiver(b, 1)
	a.on(snd.Handle)
	b.on(rcv.Handle)
	return snd, rcv, a, b
}

func TestTCPInOrderDelivery(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := tcpPair(s, sim.Millisecond, DefaultTCPConfig())
	var seqs []uint32
	rcv.OnDeliver = func(seq uint32) { seqs = append(seqs, seq) }
	for i := 0; i < 50; i++ {
		snd.Offer()
	}
	s.RunAll()
	if rcv.Delivered() != 50 || snd.Acked() != 50 {
		t.Fatalf("delivered=%d acked=%d", rcv.Delivered(), snd.Acked())
	}
	for i, q := range seqs {
		if q != uint32(i+1) {
			t.Fatalf("out of order at %d: %v", i, seqs[:i+1])
		}
	}
	if st := snd.Stats(); st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("lossless run retransmitted: %+v", st)
	}
}

func TestTCPWindowLimitsInFlight(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultTCPConfig()
	cfg.Window = 4
	// Large delay so nothing is acked while we check.
	snd, _, _, _ := tcpPair(s, sim.Second, cfg)
	for i := 0; i < 20; i++ {
		snd.Offer()
	}
	if got := snd.Stats().Sent; got != 4 {
		t.Fatalf("sent %d before acks, want window of 4", got)
	}
	s.RunAll()
	if snd.Acked() != 20 {
		t.Fatalf("acked = %d", snd.Acked())
	}
}

func TestTCPRecoversFromLossViaTimeoutWithMinRTOStall(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultTCPConfig()
	cfg.DupAckThreshold = 0 // force timeout-driven recovery
	cfg.Window = 1          // no dupacks possible anyway
	snd, rcv, a, _ := tcpPair(s, sim.Millisecond, cfg)
	dropped := false
	a.drop = func(seg Segment) bool {
		if seg.Kind == KindData && seg.Seq == 3 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	var deliverTimes []sim.Time
	rcv.OnDeliver = func(uint32) { deliverTimes = append(deliverTimes, s.Now()) }
	for i := 0; i < 5; i++ {
		snd.Offer()
	}
	s.RunAll()
	if rcv.Delivered() != 5 {
		t.Fatalf("delivered = %d", rcv.Delivered())
	}
	if !dropped || snd.Stats().Timeouts == 0 {
		t.Fatal("loss was not exercised")
	}
	// The gap between deliveries 2 and 3 must include the >= 0.5 s RTO
	// stall the paper blames for MACA's noise sensitivity.
	gap := deliverTimes[2] - deliverTimes[1]
	if gap < 500*sim.Millisecond {
		t.Fatalf("recovery gap %v < MinRTO 0.5s", gap)
	}
}

func TestTCPFastRetransmitBeatsRTO(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultTCPConfig()
	cfg.Window = 8
	snd, rcv, a, _ := tcpPair(s, sim.Millisecond, cfg)
	dropped := false
	a.drop = func(seg Segment) bool {
		if seg.Kind == KindData && seg.Seq == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	for i := 0; i < 10; i++ {
		snd.Offer()
	}
	s.RunAll()
	if rcv.Delivered() != 10 {
		t.Fatalf("delivered = %d", rcv.Delivered())
	}
	st := snd.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("expected a fast retransmit: %+v", st)
	}
	if s.Now() >= 500*sim.Millisecond {
		t.Fatalf("fast retransmit should finish before the RTO floor; took %v", s.Now())
	}
}

func TestTCPRTOExponentialBackoff(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultTCPConfig()
	snd, _, a, _ := tcpPair(s, sim.Millisecond, cfg)
	a.drop = func(Segment) bool { return true } // black hole
	snd.Offer()
	s.Run(10 * sim.Second)
	st := snd.Stats()
	// 0.5 + 1 + 2 + 4 = 7.5s for 4 timeouts; a 5th lands at 15.5s.
	if st.Timeouts != 4 {
		t.Fatalf("timeouts in 10s = %d, want 4 (exponential backoff)", st.Timeouts)
	}
}

func TestTCPRTONeverBelowFloor(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := tcpPair(s, 10*sim.Microsecond, DefaultTCPConfig())
	for i := 0; i < 100; i++ {
		snd.Offer()
	}
	s.RunAll()
	if snd.RTO() < 500*sim.Millisecond {
		t.Fatalf("RTO %v below the 0.5s floor despite tiny RTTs", snd.RTO())
	}
}

func TestTCPReceiverReordersAndAcksCumulatively(t *testing.T) {
	s := sim.New(1)
	_, b := newPipe(s, sim.Millisecond)
	rcv := NewTCPReceiver(b, 1)
	var acks []uint32
	b.peer.on(func(_ frame.NodeID, seg Segment) {
		if seg.Kind == KindAck {
			acks = append(acks, seg.Ack)
		}
	})
	var order []uint32
	rcv.OnDeliver = func(q uint32) { order = append(order, q) }
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 2})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 3})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 1})
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order = %v", order)
	}
	if len(acks) != 3 || acks[0] != 1 || acks[1] != 1 || acks[2] != 4 {
		t.Fatalf("acks = %v, want [1 1 4]", acks)
	}
}

func TestTCPReceiverCountsDuplicates(t *testing.T) {
	s := sim.New(1)
	_, b := newPipe(s, sim.Millisecond)
	rcv := NewTCPReceiver(b, 1)
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 1})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 1})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 3})
	rcv.Handle(1, Segment{Proto: ProtoTCP, Stream: 1, Kind: KindData, Seq: 3})
	s.RunAll()
	if rcv.Dups() != 2 {
		t.Fatalf("dups = %d, want 2", rcv.Dups())
	}
	if rcv.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1", rcv.Delivered())
	}
}

func TestTCPZeroWindowClamped(t *testing.T) {
	s := sim.New(1)
	a, _ := newPipe(s, sim.Millisecond)
	snd := NewTCPSender(a, 2, 1, TCPConfig{Window: 0, MinRTO: sim.Second, MaxRTO: 2 * sim.Second})
	snd.Offer()
	if snd.Stats().Sent != 1 {
		t.Fatal("zero window not clamped to 1")
	}
}
