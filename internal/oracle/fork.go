package oracle

import (
	"fmt"

	"macaw/internal/frame"
)

// AdoptFrom copies w's audit expectations into o, which must be attached to
// an identically built network (DESIGN.md §15). The oracle is passive — it
// schedules nothing and draws no randomness — so adoption is pure data: the
// violation record plus each monitor's protocol expectations. The clock and
// MAC accessors every monitor closed over at build time already reference the
// fork's own stations and are left untouched; the lazily derived protocol
// kind and options are copied (both sides derive them from identical MACs,
// but the fork has processed no events yet, so its own derivation has not
// happened). It fails closed when the two oracles do not monitor the same
// station set.
func (o *Oracle) AdoptFrom(w *Oracle) error {
	if o.seed != w.seed {
		return fmt.Errorf("oracle: adopt: seed %d here vs %d in warm twin", o.seed, w.seed)
	}
	if len(o.mons) != len(w.mons) {
		return fmt.Errorf("oracle: adopt: %d monitors here vs %d in warm twin", len(o.mons), len(w.mons))
	}
	for id := range w.mons {
		if o.mons[id] == nil {
			return fmt.Errorf("oracle: adopt: no monitor for station %d here", id)
		}
	}
	o.violations = append(o.violations[:0], w.violations...)
	o.total = w.total
	for id, wm := range w.mons {
		m := o.mons[id]
		m.kind = wm.kind
		m.opts = wm.opts
		m.ring = append(m.ring[:0], wm.ring...)
		m.horizon = wm.horizon
		m.pendingRTS = copyOracleMap(wm.pendingRTS)
		m.solicited = copyOracleMap(wm.solicited)
		m.grant = copyOracleMap(wm.grant)
		m.dsSent = copyOracleMap(wm.dsSent)
		m.esnTx = copyOracleMap(wm.esnTx)
		m.lastData = copyOracleMap(wm.lastData)
		m.delivered = make(map[stream]uint32, len(wm.delivered))
		for k, v := range wm.delivered {
			m.delivered[k] = v
		}
	}
	return nil
}

func copyOracleMap[V bool | uint32](src map[frame.NodeID]V) map[frame.NodeID]V {
	dst := make(map[frame.NodeID]V, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
