package oracle

import (
	"fmt"
	"sort"

	"macaw/internal/frame"
)

// AppendState appends the oracle's audit state for the snapshot inventory
// (DESIGN.md §14): the violation tally plus each station monitor's
// protocol expectations (defer horizon, unanswered-RTS/solicitation sets,
// grant/DS/ESN high-water marks, delivery watermarks). Monitors and their
// maps are dumped in sorted order so the dump is canonical. The oracle is
// passive, but its *verdicts* are part of a run's observable output —
// restoring a run must reproduce the same `-audit` result, so the
// expectations that produce those verdicts are inventory too.
func (o *Oracle) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "oracle seed=%d monitors=%d violations=%d\n", o.seed, len(o.mons), o.total)
	for _, v := range o.violations {
		b = fmt.Appendf(b, "  violation rule=%s station=%s at=%d\n", v.Rule, v.Station, v.At)
	}
	ids := make([]frame.NodeID, 0, len(o.mons))
	for id := range o.mons {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := o.mons[id]
		b = fmt.Appendf(b, "monitor id=%d name=%s kind=%d horizon=%d ring=%d\n",
			m.id, m.name, m.kind, m.horizon, len(m.ring))
		b = appendBoolSet(b, "pendingRTS", m.pendingRTS)
		b = appendBoolSet(b, "solicited", m.solicited)
		b = appendU32Map(b, "grant", m.grant)
		b = appendU32Map(b, "dsSent", m.dsSent)
		b = appendU32Map(b, "esnTx", m.esnTx)
		b = appendU32Map(b, "lastData", m.lastData)
		b = appendStreamMap(b, m.delivered)
	}
	return b
}

func sortedNodeIDs[V any](m map[frame.NodeID]V) []frame.NodeID {
	ids := make([]frame.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func appendBoolSet(b []byte, name string, m map[frame.NodeID]bool) []byte {
	b = fmt.Appendf(b, "  %s n=%d", name, len(m))
	for _, id := range sortedNodeIDs(m) {
		b = fmt.Appendf(b, " %d=%t", id, m[id])
	}
	return append(b, '\n')
}

func appendU32Map(b []byte, name string, m map[frame.NodeID]uint32) []byte {
	b = fmt.Appendf(b, "  %s n=%d", name, len(m))
	for _, id := range sortedNodeIDs(m) {
		b = fmt.Appendf(b, " %d=%d", id, m[id])
	}
	return append(b, '\n')
}

func appendStreamMap(b []byte, m map[stream]uint32) []byte {
	keys := make([]stream, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return !keys[i].mcast && keys[j].mcast
	})
	b = fmt.Appendf(b, "  delivered n=%d", len(m))
	for _, k := range keys {
		b = fmt.Appendf(b, " %d/mc=%t=%d", k.src, k.mcast, m[k])
	}
	return append(b, '\n')
}
