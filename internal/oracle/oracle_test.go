package oracle

import (
	"strings"
	"testing"

	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

// fakeClock lets a test place each injected event at an exact instant.
type fakeClock struct{ t sim.Time }

// testMonitor builds a monitor wired to a controllable clock, bypassing the
// network so each violation class can be injected directly through the
// mac.Observer interface.
func testMonitor(kind protoKind, opts macaw.Options) (*Oracle, *monitor, *fakeClock) {
	o := New(42)
	clk := &fakeClock{}
	m := newMonitor(o, 1, "S1", func() sim.Time { return clk.t }, nil)
	m.kind = kind
	m.opts = opts
	o.mons[1] = m
	return o, m, clk
}

// fr builds a frame with well-formed backoff headers.
func fr(t frame.Type, src, dst frame.NodeID, seq uint32) *frame.Frame {
	return &frame.Frame{Type: t, Src: src, Dst: dst, Seq: seq,
		LocalBackoff: 2, RemoteBackoff: frame.IDontKnow, DataBytes: 512}
}

// TestViolationClasses injects each violation class through the observer
// interface and asserts that exactly the expected rule fires.
func TestViolationClasses(t *testing.T) {
	cases := []struct {
		name  string
		kind  protoKind
		opts  macaw.Options
		drive func(m *monitor, clk *fakeClock)
		want  []string
	}{
		{
			name: "legal WithACK exchange, receiver side",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.RTS, 2, 1, 7))
				m.ObserveTx(fr(frame.CTS, 1, 2, 7))
				m.ObserveRx(fr(frame.DATA, 2, 1, 7))
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 7))
				m.ObserveTx(fr(frame.ACK, 1, 2, 7))
			},
		},
		{
			name: "legal Full exchange, sender side",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.Full},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 2, 1, 7))
				m.ObserveTx(fr(frame.DS, 1, 2, 7))
				m.ObserveTx(fr(frame.DATA, 1, 2, 7))
			},
		},
		{
			name: "forged DATA without a granting CTS",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveTx(fr(frame.DATA, 1, 2, 7))
			},
			want: []string{RuleORDDATA},
		},
		{
			name: "DATA skipping the DS announcement in Full",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.Full},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 2, 1, 7))
				m.ObserveTx(fr(frame.DATA, 1, 2, 7))
			},
			want: []string{RuleORDDATA},
		},
		{
			name: "DS outside the Full exchange",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 2, 1, 7))
				m.ObserveTx(fr(frame.DS, 1, 2, 7))
			},
			want: []string{RuleORDDS},
		},
		{
			name: "CTS without an unanswered RTS",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveTx(fr(frame.CTS, 1, 2, 7))
			},
			want: []string{RuleORDCTS},
		},
		{
			name: "ACK without matching received DATA",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveTx(fr(frame.ACK, 1, 2, 7))
			},
			want: []string{RuleORDACK},
		},
		{
			name: "RRTS without a deferred RTS",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK, RRTS: true},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveTx(fr(frame.RRTS, 1, 2, 7))
			},
			want: []string{RuleORDRRTS},
		},
		{
			name: "early transmit during defer",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 3, 2, 7)) // overheard: defer for the data
				clk.t = m.horizon                   // one slot too early
				m.ObserveTx(fr(frame.RTS, 1, 2, 8))
			},
			want: []string{RuleDEF1},
		},
		{
			name: "transmit one slot after the horizon is legal",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 3, 2, 7))
				clk.t = m.horizon + m.o.cfg.Slot()
				m.ObserveTx(fr(frame.RTS, 1, 2, 8))
			},
		},
		{
			name: "RRTS-solicited RTS is exempt from the defer rule",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK, RRTS: true},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveRx(fr(frame.CTS, 3, 4, 7)) // overheard: defer horizon opens
				m.ObserveRx(fr(frame.RRTS, 2, 1, 8))
				clk.t = m.horizon / 2 // well inside the defer window
				m.ObserveTx(fr(frame.RTS, 1, 2, 8))
			},
		},
		{
			name: "out-of-range local backoff header",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				f := fr(frame.RTS, 1, 2, 7)
				f.LocalBackoff = 100
				m.ObserveTx(f)
			},
			want: []string{RuleHDR1},
		},
		{
			name: "negative remote backoff header that is not I_DONT_KNOW",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				f := fr(frame.RTS, 1, 2, 7)
				f.RemoteBackoff = -7
				m.ObserveTx(f)
			},
			want: []string{RuleHDR1},
		},
		{
			name: "ESN regression toward a destination",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				f := fr(frame.RTS, 1, 2, 7)
				f.ESN = 5
				m.ObserveTx(f)
				g := fr(frame.RTS, 1, 2, 8)
				g.ESN = 3
				m.ObserveTx(g)
			},
			want: []string{RuleHDR2},
		},
		{
			name: "peer reboot resets the ESN expectation",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				f := fr(frame.RTS, 1, 2, 7)
				f.ESN = 5
				m.ObserveTx(f)
				m.forgetPeer(2) // station 2 restarted
				g := fr(frame.RTS, 1, 2, 8)
				g.ESN = 1
				m.ObserveTx(g)
			},
		},
		{
			name: "duplicate delivery to transport",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 7))
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 7))
			},
			want: []string{RuleDEL2},
		},
		{
			name: "delivery sequence regression",
			kind: kindMACA,
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 7))
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 3))
			},
			want: []string{RuleDEL1},
		},
		{
			name: "unicast and multicast streams are tracked independently",
			kind: kindMACAW, opts: macaw.Options{Exchange: macaw.WithACK},
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 9))
				m.ObserveDeliver(fr(frame.DATA, 2, frame.Broadcast, 2))
			},
		},
		{
			name: "CSMA is exempt from handshake and delivery rules",
			kind: kindCSMA,
			drive: func(m *monitor, clk *fakeClock) {
				m.ObserveTx(fr(frame.DATA, 1, 2, 7))
				m.ObserveRx(fr(frame.DATA, 2, 1, 4))
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 4))
				m.ObserveRx(fr(frame.DATA, 2, 1, 4))      // retransmission after a lost ACK
				m.ObserveDeliver(fr(frame.DATA, 2, 1, 4)) // duplicate delivery is CSMA-legal
				m.ObserveTx(fr(frame.ACK, 1, 2, 4))       // but ACK ordering still holds
			},
		},
		{
			name: "CSMA header rules still apply",
			kind: kindCSMA,
			drive: func(m *monitor, clk *fakeClock) {
				f := fr(frame.DATA, 1, 2, 7)
				f.LocalBackoff = -3
				m.ObserveTx(f)
			},
			want: []string{RuleHDR1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, m, clk := testMonitor(tc.kind, tc.opts)
			tc.drive(m, clk)
			var got []string
			for _, v := range o.Violations() {
				got = append(got, v.Rule)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("rules reported = %v, want %v\n%s", got, tc.want, o.Report())
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("rules reported = %v, want %v", got, tc.want)
				}
			}
			if len(tc.want) == 0 && o.Err() != nil {
				t.Fatalf("Err() = %v, want nil", o.Err())
			}
		})
	}
}

// TestReportIsReplayable asserts a violation report carries everything needed
// to reproduce it: seed, station, rule id, and the trailing event window.
func TestReportIsReplayable(t *testing.T) {
	o, m, clk := testMonitor(kindMACAW, macaw.Options{Exchange: macaw.WithACK})
	clk.t = 1_000_000
	m.ObserveRx(fr(frame.RTS, 2, 1, 7))
	m.ObserveTx(fr(frame.DATA, 1, 2, 9))
	if o.Err() == nil {
		t.Fatal("expected a violation")
	}
	v := o.Violations()[0]
	if v.Rule != RuleORDDATA || v.Station != "S1" || v.Seed != 42 || v.At != clk.t {
		t.Fatalf("violation context wrong: %+v", v)
	}
	if len(v.Events) == 0 {
		t.Fatal("violation carries no trace events")
	}
	rep := o.Report()
	for _, needle := range []string{"ORD-DATA", "-seed 42", "S1", "last events:"} {
		if !strings.Contains(rep, needle) {
			t.Fatalf("report missing %q:\n%s", needle, rep)
		}
	}
}

// TestRingBounded asserts the per-station event window stays at ringSize.
func TestRingBounded(t *testing.T) {
	_, m, _ := testMonitor(kindMACAW, macaw.Options{Exchange: macaw.WithACK})
	for i := 0; i < 10*ringSize; i++ {
		m.ObserveQueue("push", 2, i)
	}
	if len(m.ring) != ringSize {
		t.Fatalf("ring length = %d, want %d", len(m.ring), ringSize)
	}
	if !strings.Contains(m.ring[ringSize-1].Note, "len=239") {
		t.Fatalf("ring did not keep the newest events: %v", m.ring[ringSize-1])
	}
}

// TestCleanRunEndToEnd attaches the oracle to a real contended three-station
// MACAW network — including a crash/restart mid-run — and expects zero
// violations and untouched results.
func TestCleanRunEndToEnd(t *testing.T) {
	run := func(audit bool) (core.Results, int) {
		n := core.NewNetwork(7)
		var o *Oracle
		if audit {
			o = New(7)
			o.Attach(n)
		}
		f := core.MACAWFactory(macaw.DefaultOptions())
		a := n.AddStation("A", geom.V(0, 0, 6), f)
		b := n.AddStation("B", geom.V(6, 0, 6), f)
		c := n.AddStation("C", geom.V(3, 5, 6), f)
		n.AddStream(a, b, core.UDP, 200)
		n.AddStream(c, b, core.UDP, 200)
		n.AddStream(b, a, core.UDP, 100)
		n.At(300*sim.Millisecond, func() { c.Crash() })
		n.At(500*sim.Millisecond, func() { c.Restart() })
		res := n.Run(1000*sim.Millisecond, 0)
		if o == nil {
			return res, 0
		}
		return res, o.Total()
	}
	plain, _ := run(false)
	audited, total := run(true)
	if total != 0 {
		t.Fatalf("oracle found %d violations in a healthy run", total)
	}
	if plain.String() != audited.String() {
		t.Fatalf("audit changed results:\nplain:   %s\naudited: %s", plain, audited)
	}
}
