// Package oracle implements a passive protocol-conformance checker: it
// subscribes to the MAC-internal observer hooks (mac.Observer) of every
// station in a network and asserts the paper's Appendix A/B rules online —
// exchange ordering, deferral horizons, backoff-header bounds, ESN
// bookkeeping, and exactly-once delivery — with zero effect on simulation
// results. A violation produces a replayable report carrying the seed, the
// station, the rule id, and the last K trace events at that station.
//
// Rule catalog (documented with paper citations in DESIGN.md §11):
//
//	ORD-CTS   CTS only answers an unanswered RTS       (App. A/B control rules 2, 8)
//	ORD-DATA  unicast DATA only after its granting CTS (control rule 3)
//	ORD-DS    DS only in the Full exchange, after CTS  (§3.3.2)
//	ORD-ACK   ACK only for the DATA just received      (control rules 5, 7)
//	ORD-RRTS  RRTS only for a deferred RTS's sender    (§3.3.3)
//	DEF-1     no RTS/RRTS before horizon + one slot    (§3.2, defer rules 1-4)
//	HDR-1     backoff headers within [BOmin, BOmax]    (§3.1, App. B)
//	HDR-2     ESN non-decreasing per destination       (App. B)
//	DEL-1     delivered seq monotone per stream        (§3.2, §3.3.1)
//	DEL-2     no duplicate delivery to transport       (§3.3.1)
//
// Scoping: CSMA stations (no RTS-CTS handshake, duplicates on lost ACKs by
// design) are checked only against HDR rules. DCF stations follow the
// RTS-CTS-DATA-ACK ordering rules but stamp no MACAW backoff headers, so the
// HDR rules are skipped for them; tournament stations (no handshake beyond
// the final ACK) are checked only against ORD-ACK. Stations running a
// protocol the oracle does not model (e.g. the token-ring extension) are
// recorded but not checked; the dispatch is by the engine's SPI Protocol()
// name, so a new backend is unchecked until the oracle grows rules for it.
// Restarting a station resets every expectation the oracle
// holds about it — its own per-lifetime state and the ESN/delivery
// high-water marks its peers accumulated — exactly as the protocol's own
// reboot semantics do.
package oracle

import (
	"errors"
	"fmt"
	"strings"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/trace"
)

// Rule identifiers, as documented in DESIGN.md §11.
const (
	RuleORDCTS  = "ORD-CTS"
	RuleORDDATA = "ORD-DATA"
	RuleORDDS   = "ORD-DS"
	RuleORDACK  = "ORD-ACK"
	RuleORDRRTS = "ORD-RRTS"
	RuleDEF1    = "DEF-1"
	RuleHDR1    = "HDR-1"
	RuleHDR2    = "HDR-2"
	RuleDEL1    = "DEL-1"
	RuleDEL2    = "DEL-2"
)

// ringSize is how many recent internal events each station's report carries.
const ringSize = 24

// maxRecorded bounds the fully-detailed violations kept in memory; the total
// count is always exact.
const maxRecorded = 16

// Violation is one detected rule breach, with enough context to replay it.
type Violation struct {
	// Rule is the rule identifier (e.g. "DEF-1").
	Rule string
	// Paper cites the paper section the rule encodes.
	Paper string
	// Station is the violating station's name.
	Station string
	// At is the simulation time of the breach.
	At sim.Time
	// Seed reproduces the run.
	Seed int64
	// Detail describes the specific breach.
	Detail string
	// Events are the last-K internal events at the station, oldest first.
	Events []trace.Event
}

// String renders the violation as a replayable report block.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s (%s) violated by %s at %.6fs (seed %d): %s",
		v.Rule, v.Paper, v.Station, v.At.Seconds(), v.Seed, v.Detail)
	if len(v.Events) > 0 {
		b.WriteString("\n  last events:")
		for _, e := range v.Events {
			b.WriteString("\n    ")
			b.WriteString(e.String())
		}
	}
	return b.String()
}

// Oracle audits every MAC instance of a network against the rule catalog.
// Attach it before stations are added; it is strictly passive (no
// transmissions, no scheduling, no randomness), so an audited run is
// bit-identical to an unaudited one.
type Oracle struct {
	seed       int64
	cfg        mac.Config
	mons       map[frame.NodeID]*monitor
	violations []Violation
	total      int
}

// New returns an oracle for a run seeded with seed (recorded so reports are
// replayable).
func New(seed int64) *Oracle {
	return &Oracle{seed: seed, cfg: mac.DefaultConfig(), mons: make(map[frame.NodeID]*monitor)}
}

// Attach installs the oracle as n's MAC observer factory. It must be called
// before stations are added to the network.
func (o *Oracle) Attach(n *core.Network) {
	o.cfg = n.Cfg
	n.AddMACObserver(func(st *core.Station) mac.Observer {
		return o.observerFor(st)
	})
}

// observerFor builds the monitor for one MAC lifetime of st. A repeat call
// for the same station means the station rebooted: every expectation peers
// hold about the old instance — ESN high-water marks, delivered sequence
// numbers, pending RTS/CTS state — restarts from scratch, exactly as the
// protocol's own resynchronization rules assume.
func (o *Oracle) observerFor(st *core.Station) mac.Observer {
	id := st.ID()
	if _, reborn := o.mons[id]; reborn {
		for _, m := range o.mons {
			m.forgetPeer(id)
		}
	}
	m := newMonitor(o, id, st.Name(), st.Clock().Now, st.MAC)
	o.mons[id] = m
	return m
}

// Violations returns the recorded violations (detail capped at maxRecorded;
// Total is exact).
func (o *Oracle) Violations() []Violation { return o.violations }

// Total returns the exact number of violations detected.
func (o *Oracle) Total() int { return o.total }

// Err returns nil when the run was clean, or an error carrying the full
// report.
func (o *Oracle) Err() error {
	if o.total == 0 {
		return nil
	}
	return errors.New(o.Report())
}

// Report renders every recorded violation with its replay seed.
func (o *Oracle) Report() string {
	if o.total == 0 {
		return "oracle: no protocol violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %d protocol violation(s); replay with -audit -seed %d", o.total, o.seed)
	for i := range o.violations {
		b.WriteString("\n")
		b.WriteString(o.violations[i].String())
	}
	if o.total > len(o.violations) {
		fmt.Fprintf(&b, "\n... %d more violation(s) suppressed", o.total-len(o.violations))
	}
	return b.String()
}

// protoKind is the protocol family a monitor models.
type protoKind int

const (
	kindUnknown protoKind = iota
	kindCSMA
	kindMACA
	kindMACAW
	kindDCF
	kindTournament
	kindOther // a protocol the oracle does not model (e.g. token ring)
)

// stream keys per-source delivery bookkeeping; the multicast queue is a
// distinct stream from the unicast one (§3.2 — sequence numbers interleave
// across a sender's per-destination queues).
type stream struct {
	src   frame.NodeID
	mcast bool
}

// monitor audits one MAC lifetime of one station. All methods are invoked
// synchronously from inside the MAC at the instant of the event.
type monitor struct {
	o     *Oracle
	id    frame.NodeID
	name  string
	clock func() sim.Time
	macOf func() mac.Engine
	kind  protoKind
	opts  macaw.Options

	ring []trace.Event

	// horizon mirrors the protocol's defer rules over overheard traffic.
	horizon sim.Time

	// pendingRTS marks peers whose for-us RTS we have not yet answered.
	pendingRTS map[frame.NodeID]bool
	// solicited marks peers whose RRTS entitles us to an immediate RTS
	// (control rule 13).
	solicited map[frame.NodeID]bool
	// grant holds, per peer, the sequence number its last unconsumed CTS
	// granted us.
	grant map[frame.NodeID]uint32
	// dsSent holds, per peer, the sequence number our last DS announced.
	dsSent map[frame.NodeID]uint32
	// esnTx is the ESN high-water mark we stamped toward each peer.
	esnTx map[frame.NodeID]uint32
	// lastData is the sequence number of the last DATA received from each
	// peer (what an ACK may acknowledge).
	lastData map[frame.NodeID]uint32
	// delivered is the last sequence number surfaced to transport per
	// incoming stream.
	delivered map[stream]uint32
}

func newMonitor(o *Oracle, id frame.NodeID, name string, clock func() sim.Time, macOf func() mac.Engine) *monitor {
	return &monitor{
		o:          o,
		id:         id,
		name:       name,
		clock:      clock,
		macOf:      macOf,
		pendingRTS: make(map[frame.NodeID]bool),
		solicited:  make(map[frame.NodeID]bool),
		grant:      make(map[frame.NodeID]uint32),
		dsSent:     make(map[frame.NodeID]uint32),
		esnTx:      make(map[frame.NodeID]uint32),
		lastData:   make(map[frame.NodeID]uint32),
		delivered:  make(map[stream]uint32),
	}
}

// forgetPeer clears every expectation this monitor holds about a rebooted
// peer.
func (m *monitor) forgetPeer(id frame.NodeID) {
	delete(m.pendingRTS, id)
	delete(m.solicited, id)
	delete(m.grant, id)
	delete(m.dsSent, id)
	delete(m.esnTx, id)
	delete(m.lastData, id)
	delete(m.delivered, stream{src: id})
	delete(m.delivered, stream{src: id, mcast: true})
}

// ensureKind lazily resolves the protocol engine; the observer factory runs
// before the station's MAC field is assigned, so the first event is the
// earliest safe moment to inspect it. Dispatch is by the SPI Protocol()
// name — the one concrete assertion left fetches the MACAW exchange options
// the defer rules need.
func (m *monitor) ensureKind() {
	if m.kind != kindUnknown {
		return
	}
	eng := m.macOf()
	switch eng.Protocol() {
	case "macaw":
		m.kind = kindMACAW
		if mw, ok := eng.(*macaw.MACAW); ok {
			m.opts = mw.Options()
		}
	case "maca":
		m.kind = kindMACA
	case "csma":
		m.kind = kindCSMA
	case "dcf":
		m.kind = kindDCF
	case "tournament":
		m.kind = kindTournament
	default:
		m.kind = kindOther
	}
}

func (m *monitor) now() sim.Time { return m.clock() }

func (m *monitor) push(e trace.Event) {
	if len(m.ring) == ringSize {
		copy(m.ring, m.ring[1:])
		m.ring = m.ring[:ringSize-1]
	}
	m.ring = append(m.ring, e)
}

func (m *monitor) mark(format string, args ...any) {
	m.push(trace.Event{At: m.now(), Station: m.name, Kind: trace.Mark,
		Note: fmt.Sprintf(format, args...)})
}

func (m *monitor) violate(rule, paper, format string, args ...any) {
	m.o.total++
	if len(m.o.violations) >= maxRecorded {
		return
	}
	m.o.violations = append(m.o.violations, Violation{
		Rule:    rule,
		Paper:   paper,
		Station: m.name,
		At:      m.now(),
		Seed:    m.o.seed,
		Detail:  fmt.Sprintf(format, args...),
		Events:  append([]trace.Event(nil), m.ring...),
	})
}

// dataPlusAck mirrors the engine's defer span for a data packet plus its ACK
// leg when the exchange uses one.
func (m *monitor) dataPlusAck(dataBytes int) sim.Duration {
	cfg := m.o.cfg
	d := cfg.Turnaround + cfg.DataTime(dataBytes)
	if m.opts.Exchange.HasACK() {
		d += cfg.Turnaround + cfg.CtrlTime()
	}
	return d
}

// ObserveRx implements mac.Observer: track for-us handshake state and mirror
// the protocol's defer rules over overheard traffic.
func (m *monitor) ObserveRx(f *frame.Frame) {
	m.ensureKind()
	m.push(trace.Event{At: m.now(), Station: m.name, Kind: trace.Receive,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
	if m.kind == kindOther {
		return
	}
	if f.Dst == m.id {
		switch f.Type {
		case frame.RTS:
			m.pendingRTS[f.Src] = true
		case frame.CTS:
			m.grant[f.Src] = f.Seq
		case frame.DATA:
			m.lastData[f.Src] = f.Seq
		case frame.RRTS:
			m.solicited[f.Src] = true
		}
		return
	}
	cfg := m.o.cfg
	var span sim.Duration
	switch m.kind {
	case kindMACAW:
		if f.Dst == frame.Broadcast {
			// §3.3.4: "all stations defer for the length of the
			// following DATA transmission."
			if f.Type == frame.RTS {
				span = cfg.Turnaround + cfg.DataTime(int(f.DataBytes))
			}
		} else {
			switch f.Type {
			case frame.RTS:
				// Defer rule 1: room for the answering CTS.
				span = cfg.Turnaround + cfg.CtrlTime()
			case frame.CTS:
				// Defer rule 3: the data (plus DS and ACK legs).
				span = m.dataPlusAck(int(f.DataBytes))
				if m.opts.Exchange.HasDS() {
					span += cfg.Turnaround + cfg.CtrlTime()
				}
			case frame.DS:
				// Defer rule 2: the data packet and its ACK.
				span = m.dataPlusAck(int(f.DataBytes))
			case frame.RRTS:
				// Defer rule 4: room for an RTS-CTS exchange.
				span = 2 * (cfg.Turnaround + cfg.CtrlTime())
			}
		}
	case kindMACA:
		switch f.Type {
		case frame.RTS:
			span = cfg.Turnaround + cfg.CtrlTime()
		case frame.CTS:
			span = cfg.Turnaround + cfg.DataTime(int(f.DataBytes))
		}
	}
	if span > 0 {
		if h := m.now() + span; h > m.horizon {
			m.horizon = h
		}
	}
}

// ObserveTx implements mac.Observer: every transmission is checked against
// the ordering, deferral, and header rules before it radiates.
func (m *monitor) ObserveTx(f *frame.Frame) {
	m.ensureKind()
	m.push(trace.Event{At: m.now(), Station: m.name, Kind: trace.Transmit,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
	if m.kind == kindOther {
		return
	}
	m.checkHeaders(f)
	switch f.Type {
	case frame.RTS:
		m.checkRTS(f)
	case frame.RRTS:
		m.checkRRTS(f)
	case frame.CTS:
		m.checkCTS(f)
	case frame.DS:
		m.checkDS(f)
	case frame.DATA:
		m.checkDataTx(f)
	case frame.ACK:
		m.checkACK(f)
	}
}

// checkHeaders is HDR-1 and HDR-2: stamped backoff counters stay within
// [BOmin, BOmax] (remote may be I_DONT_KNOW) and the exchange sequence
// number toward any destination never regresses within one lifetime.
func (m *monitor) checkHeaders(f *frame.Frame) {
	if m.kind == kindDCF || m.kind == kindTournament {
		// Neither protocol stamps MACAW backoff headers or ESNs; their
		// frames carry zeros there by design.
		return
	}
	lo, hi := int16(backoff.DefaultMin), int16(backoff.DefaultMax)
	if f.LocalBackoff < lo || f.LocalBackoff > hi {
		m.violate(RuleHDR1, "§3.1/App. B",
			"%s to %v stamped local_backoff=%d outside [%d, %d]", f.Type, f.Dst, f.LocalBackoff, lo, hi)
	}
	if f.RemoteBackoff != frame.IDontKnow && (f.RemoteBackoff < lo || f.RemoteBackoff > hi) {
		m.violate(RuleHDR1, "§3.1/App. B",
			"%s to %v stamped remote_backoff=%d outside [%d, %d]", f.Type, f.Dst, f.RemoteBackoff, lo, hi)
	}
	if last, seen := m.esnTx[f.Dst]; seen && f.ESN < last {
		m.violate(RuleHDR2, "App. B",
			"%s to %v stamped ESN %d after %d", f.Type, f.Dst, f.ESN, last)
	}
	m.esnTx[f.Dst] = f.ESN
}

// checkDefer is DEF-1: a contention transmission begins no earlier than one
// slot after the derived defer horizon (§3.2: "an integer number of slot
// times after the end of the last defer period", the integer at least one).
func (m *monitor) checkDefer(f *frame.Frame) {
	if m.horizon == 0 {
		return
	}
	earliest := m.horizon + m.o.cfg.Slot()
	if now := m.now(); now < earliest {
		m.violate(RuleDEF1, "§3.2",
			"%s to %v transmitted at %.6fs, %.1fµs before horizon %.6fs + one slot",
			f.Type, f.Dst, now.Seconds(), float64(earliest-now)/1000, m.horizon.Seconds())
	}
}

func (m *monitor) checkRTS(f *frame.Frame) {
	if m.kind == kindCSMA {
		return
	}
	if f.Dst != frame.Broadcast && m.solicited[f.Dst] {
		// Control rule 13: the immediate answer to an RRTS rides on the
		// slots the RRTS reserved; the slotted defer rule does not apply.
		delete(m.solicited, f.Dst)
		return
	}
	m.checkDefer(f)
}

func (m *monitor) checkRRTS(f *frame.Frame) {
	if m.kind != kindMACAW {
		m.violate(RuleORDRRTS, "§3.3.3", "RRTS from a non-MACAW engine")
		return
	}
	if !m.pendingRTS[f.Dst] {
		m.violate(RuleORDRRTS, "§3.3.3",
			"RRTS to %v without a deferred RTS from that sender", f.Dst)
	}
	delete(m.pendingRTS, f.Dst)
	m.checkDefer(f)
}

func (m *monitor) checkCTS(f *frame.Frame) {
	if !m.pendingRTS[f.Dst] {
		m.violate(RuleORDCTS, "App. A/B control rules 2, 8",
			"CTS to %v without an unanswered RTS from that sender", f.Dst)
	}
	delete(m.pendingRTS, f.Dst)
}

func (m *monitor) checkDS(f *frame.Frame) {
	if m.kind != kindMACAW || !m.opts.Exchange.HasDS() {
		m.violate(RuleORDDS, "§3.3.2", "DS outside the Full exchange")
		return
	}
	if g, ok := m.grant[f.Dst]; !ok || g != f.Seq {
		m.violate(RuleORDDS, "§3.3.2",
			"DS to %v seq=%d without a granting CTS for that sequence", f.Dst, f.Seq)
		return
	}
	m.dsSent[f.Dst] = f.Seq
}

func (m *monitor) checkDataTx(f *frame.Frame) {
	if f.Dst == frame.Broadcast || f.Multicast || m.kind == kindCSMA || m.kind == kindTournament {
		// Multicast data follows its RTS directly (§3.3.4); CSMA and the
		// tournament MAC send data with no granting handshake at all.
		return
	}
	if g, ok := m.grant[f.Dst]; !ok || g != f.Seq {
		m.violate(RuleORDDATA, "App. A/B control rule 3",
			"DATA to %v seq=%d without a granting CTS for that sequence", f.Dst, f.Seq)
	} else if m.kind == kindMACAW && m.opts.Exchange.HasDS() {
		if ds, ok := m.dsSent[f.Dst]; !ok || ds != f.Seq {
			m.violate(RuleORDDATA, "§3.3.2",
				"DATA to %v seq=%d without its DS announcement in the Full exchange", f.Dst, f.Seq)
		}
	}
	delete(m.grant, f.Dst)
	delete(m.dsSent, f.Dst)
}

func (m *monitor) checkACK(f *frame.Frame) {
	if last, ok := m.lastData[f.Dst]; !ok || last != f.Seq {
		m.violate(RuleORDACK, "App. B control rules 5, 7",
			"ACK to %v seq=%d without matching received DATA", f.Dst, f.Seq)
	}
	// A repeated ACK answers a repeated RTS (control rule 7).
	delete(m.pendingRTS, f.Dst)
}

// ObserveDeliver implements mac.Observer: DEL-1/DEL-2 — per-stream delivery
// is strictly monotone within one sender lifetime, with no duplicates.
func (m *monitor) ObserveDeliver(f *frame.Frame) {
	m.ensureKind()
	m.mark("deliver src=%v seq=%d", f.Src, f.Seq)
	if m.kind != kindMACA && m.kind != kindMACAW {
		// CSMA re-delivers on lost ACKs by design; unmodeled protocols
		// are unchecked.
		return
	}
	key := stream{src: f.Src, mcast: f.Dst == frame.Broadcast}
	if last, ok := m.delivered[key]; ok {
		switch {
		case f.Seq == last:
			m.violate(RuleDEL2, "§3.3.1",
				"duplicate DATA seq=%d from %v surfaced to transport", f.Seq, f.Src)
		case f.Seq < last:
			m.violate(RuleDEL1, "§3.2/§3.3.1",
				"DATA seq=%d from %v delivered after seq=%d", f.Seq, f.Src, last)
		}
	}
	m.delivered[key] = f.Seq
}

// ObserveState implements mac.Observer (report context only).
func (m *monitor) ObserveState(from, to string) {
	m.mark("state %s -> %s", from, to)
}

// ObserveTimer implements mac.Observer (report context only).
func (m *monitor) ObserveTimer(at sim.Time) {
	if at < 0 {
		m.mark("timer cancelled")
		return
	}
	m.mark("timer armed for %.6fs", at.Seconds())
}

// ObserveQueue implements mac.Observer (report context only).
func (m *monitor) ObserveQueue(op string, dst frame.NodeID, n int) {
	m.mark("queue %s dst=%v len=%d", op, dst, n)
}
