// Package phy models PARC's near-field nanocellular radio (§2.1 of the
// paper) as a shared medium: r^-γ signal decay, a reception threshold equal
// to the signal strength at 10 feet, the 10 dB capture rule applied over the
// whole packet duration, half-duplex radios, carrier sensing, and the noise
// models used in the evaluation.
package phy

import (
	"math"

	"macaw/internal/geom"
)

// Params collects the physical-layer constants. The zero value is not
// useful; use DefaultParams.
type Params struct {
	// BitrateBPS is the channel rate. The paper's channel is a single
	// 256 kbps channel.
	BitrateBPS int
	// Gamma is the near-field path-loss exponent: received power decays
	// as d^-Gamma. Gamma = 6 makes the paper's 10 dB capture threshold
	// correspond to a distance ratio of 10^(1/6) ≈ 1.47, matching the
	// paper's "distance ratio of ≈ 1.5".
	Gamma float64
	// RangeFt is the reception-threshold distance in feet: "the signal
	// strength at 10 feet".
	RangeFt float64
	// CaptureDB is the signal-to-interference margin required for clean
	// reception during the entire packet time ("at least 10 dB").
	CaptureDB float64
	// MinDist clamps the propagation distance so co-located stations do
	// not produce infinite power.
	MinDist float64
	// CubeGrid, when true, quantizes receiver positions to the centers
	// of 1-cubic-foot cubes, exactly like the paper's simulator.
	CubeGrid bool
	// NegligibleDB sets the medium's negligibility floor: received power
	// more than NegligibleDB below the reception threshold is treated as
	// exactly zero. The floor is what makes the neighborhood index exact —
	// a radio beyond the floor's range contributes nothing at all, so
	// skipping it is bit-identical to summing it. Non-positive values (and
	// propagation models that cannot certify a range for the floor)
	// disable both the floor and the index, restoring exhaustive
	// iteration. The default of 60 dB puts the floor a factor of 10^6
	// below the weakest power any reception, capture, or carrier decision
	// compares against.
	NegligibleDB float64
}

// DefaultParams returns the paper's radio configuration.
func DefaultParams() Params {
	return Params{
		BitrateBPS:   256000,
		Gamma:        6,
		RangeFt:      10,
		CaptureDB:    10,
		MinDist:      0.25,
		CubeGrid:     true,
		NegligibleDB: 60,
	}
}

// Threshold returns the minimum received power (with unit transmit power)
// for a signal to be decodable: the power at RangeFt.
func (p Params) Threshold() float64 { return math.Pow(p.RangeFt, -p.Gamma) }

// CaptureRatio returns the linear power ratio corresponding to CaptureDB.
func (p Params) CaptureRatio() float64 { return math.Pow(10, p.CaptureDB/10) }

// Propagation computes the received power at dst for a unit-power
// transmitter at src.
type Propagation interface {
	Gain(src, dst geom.Vec3) float64
}

// Bounded is an optional Propagation extension: models that can certify a
// finite range for any positive power floor. RangeFor must return a distance
// d such that Gain(src, dst) < floor (in both directions) whenever the
// endpoints are more than d apart; ok is false when no such certificate
// exists (floor <= 0, or the model is unbounded). The medium's neighborhood
// index exists only for Bounded models — without a certificate, every radio
// must be assumed audible everywhere.
type Bounded interface {
	RangeFor(floor float64) (d float64, ok bool)
}

// NearField is the r^-γ near-field decay model.
type NearField struct {
	Gamma   float64
	MinDist float64
}

// Gain implements Propagation.
func (n NearField) Gain(src, dst geom.Vec3) float64 {
	d := src.Dist(dst)
	if d < n.MinDist {
		d = n.MinDist
	}
	return math.Pow(d, -n.Gamma)
}

// RangeFor implements Bounded: beyond floor^(-1/Gamma) the r^-γ decay is
// strictly below floor.
func (n NearField) RangeFor(floor float64) (float64, bool) {
	if floor <= 0 || n.Gamma <= 0 {
		return 0, false
	}
	d := math.Pow(floor, -1/n.Gamma)
	if d < n.MinDist {
		d = n.MinDist
	}
	return d, true
}

// CubeQuantized wraps a propagation model, quantizing both endpoints to the
// centers of their 1-cubic-foot grid cubes before evaluating the inner
// model — the paper's simulator "approximates the media by dividing the
// space into small cubes and then computing the strength of a signal at each
// cube according to the distance from the signal source to the center of the
// cube", and "a station ... resides at the center of a cube". Quantizing
// both ends keeps the channel symmetric, as the paper's technology is.
type CubeQuantized struct {
	Inner Propagation
}

// Gain implements Propagation.
func (c CubeQuantized) Gain(src, dst geom.Vec3) float64 {
	return c.Inner.Gain(geom.Quantize(src), geom.Quantize(dst))
}

// RangeFor implements Bounded: quantization displaces each endpoint by at
// most half a cube diagonal, so the inner model's certificate widened by one
// full diagonal still bounds the quantized gain.
func (c CubeQuantized) RangeFor(floor float64) (float64, bool) {
	b, ok := c.Inner.(Bounded)
	if !ok {
		return 0, false
	}
	d, ok := b.RangeFor(floor)
	if !ok {
		return 0, false
	}
	return d + 2*geom.MaxQuantizationError, true
}

// indexCutoff derives the negligibility floor and the certified cutoff
// distance for a propagation model under params p — the single place the
// medium's index certificate is computed, so every consumer (the medium's
// reindex, the shard planner) sees bit-identical values. ok is false when
// the floor is disabled or the model cannot certify a range for it.
func indexCutoff(prop Propagation, p Params) (floor, cutoff float64, ok bool) {
	if p.NegligibleDB <= 0 {
		return 0, 0, false
	}
	b, isBounded := prop.(Bounded)
	if !isBounded {
		return 0, 0, false
	}
	floor = p.Threshold() * math.Pow(10, -p.NegligibleDB/10)
	d, okRange := b.RangeFor(floor)
	if !okRange || d <= 0 || math.IsInf(d, 1) {
		return 0, 0, false
	}
	return floor, d, true
}

// IndexCutoff reports the certified interaction cutoff for p's own
// propagation model (the one NewPropagation builds): two radios farther
// apart than the cutoff have a stored gain of exactly zero, in both
// directions, for the whole run. ok is false when no certificate exists —
// NegligibleDB disabled or the model unbounded — in which case every radio
// must be assumed audible everywhere and no spatial decomposition is sound.
func (p Params) IndexCutoff() (cutoff float64, ok bool) {
	_, d, ok := indexCutoff(NewPropagation(p), p)
	return d, ok
}

// NewPropagation builds the propagation model implied by p.
func NewPropagation(p Params) Propagation {
	var m Propagation = NearField{Gamma: p.Gamma, MinDist: p.MinDist}
	if p.CubeGrid {
		m = CubeQuantized{Inner: m}
	}
	return m
}
