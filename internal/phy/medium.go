package phy

import (
	"fmt"
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// Handler receives physical-layer indications for one radio. Callbacks are
// always delivered from the simulator event loop, never synchronously from
// inside a Transmit call, so handlers may freely call back into the radio.
type Handler interface {
	// RadioReceive delivers a cleanly received frame, including overheard
	// frames addressed to other stations. The frame is shared among all
	// receivers and must not be mutated.
	RadioReceive(f *frame.Frame)
	// RadioCarrier signals transitions of the carrier-sense indication.
	RadioCarrier(busy bool)
}

// CorruptionObserver is an optional extension of Handler: if implemented,
// the radio reports receptions destroyed by collision or noise. Only the
// intended destination is notified.
type CorruptionObserver interface {
	RadioCorrupted(f *frame.Frame)
}

// Counters aggregates medium-level statistics.
type Counters struct {
	// Transmissions counts frames put on the air.
	Transmissions int
	// Delivered counts clean receptions (including overhears).
	Delivered int
	// Corrupted counts receptions destroyed by collision.
	Corrupted int
	// NoiseDropped counts receptions destroyed by the noise model.
	NoiseDropped int
	// Aborted counts receptions abandoned because the receiving radio
	// started transmitting (half-duplex) or was disabled.
	Aborted int
}

type reception struct {
	radio     *Radio
	power     float64
	corrupted bool
}

type transmission struct {
	radio *Radio
	f     *frame.Frame
	end   sim.Time
	rx    []*reception
}

// NoiseSource is a positional energy emitter (e.g. the Figure 11 electronic
// whiteboard modeled as raw interference rather than packet loss).
type NoiseSource struct {
	m     *Medium
	pos   geom.Vec3
	power float64
	on    bool
}

// Set switches the source on or off, immediately re-evaluating ongoing
// receptions and carrier indications.
func (n *NoiseSource) Set(on bool) {
	if n.on == on {
		return
	}
	n.on = on
	n.m.recheckInterference()
	n.m.updateCarrier()
}

// On reports whether the source is radiating.
func (n *NoiseSource) On() bool { return n.on }

// Medium is the shared radio channel.
type Medium struct {
	s         *sim.Simulator
	prop      Propagation
	params    Params
	threshold float64
	capture   float64
	radios    []*Radio
	active    []*transmission
	sources   []*NoiseSource
	noise     NoiseModel
	rng       *rand.Rand
	counters  Counters
}

// New creates a medium with the given physical parameters and no noise.
func New(s *sim.Simulator, p Params) *Medium {
	return &Medium{
		s:         s,
		prop:      NewPropagation(p),
		params:    p,
		threshold: p.Threshold(),
		capture:   p.CaptureRatio(),
		noise:     NoNoise{},
		rng:       s.NewRand(),
	}
}

// SetNoise installs the packet-level noise model.
func (m *Medium) SetNoise(n NoiseModel) {
	if n == nil {
		n = NoNoise{}
	}
	m.noise = n
}

// SetPropagation overrides the propagation model (used by tests and by the
// naive boolean-range model).
func (m *Medium) SetPropagation(p Propagation) { m.prop = p }

// Params returns the medium's physical parameters.
func (m *Medium) Params() Params { return m.params }

// Counters returns a snapshot of the medium statistics.
func (m *Medium) Counters() Counters { return m.counters }

// Attach adds a radio at pos. The handler may be nil initially and installed
// later with SetHandler, but must be set before any frame can be delivered.
func (m *Medium) Attach(id frame.NodeID, pos geom.Vec3, h Handler) *Radio {
	r := &Radio{id: id, pos: pos, m: m, h: h, enabled: true}
	m.radios = append(m.radios, r)
	return r
}

// AddNoiseSource registers an energy emitter at pos with the given transmit
// power (1.0 = station power). It starts switched off.
func (m *Medium) AddNoiseSource(pos geom.Vec3, power float64) *NoiseSource {
	ns := &NoiseSource{m: m, pos: pos, power: power}
	m.sources = append(m.sources, ns)
	return ns
}

// Radios returns the attached radios in attach order.
func (m *Medium) Radios() []*Radio { return m.radios }

// InRange reports whether a transmission from a would be decodable at b in
// the absence of interference — the paper's simple in-range predicate.
func (m *Medium) InRange(a, b *Radio) bool {
	return m.prop.Gain(a.pos, b.pos) >= m.threshold
}

// power returns the received power at q for a transmission from r.
func (m *Medium) power(r, q *Radio) float64 { return m.prop.Gain(r.pos, q.pos) }

// noiseEnergyAt sums the energy of active noise sources at q.
func (m *Medium) noiseEnergyAt(q *Radio) float64 {
	var sum float64
	for _, ns := range m.sources {
		if ns.on {
			sum += ns.power * m.prop.Gain(ns.pos, q.pos)
		}
	}
	return sum
}

// interferenceAt sums received power at q from every active transmission
// except exclude, plus noise-source energy.
func (m *Medium) interferenceAt(q *Radio, exclude *transmission) float64 {
	sum := m.noiseEnergyAt(q)
	for _, t := range m.active {
		if t == exclude || t.radio == q {
			continue
		}
		sum += m.power(t.radio, q)
	}
	return sum
}

// recheckInterference re-evaluates the capture condition for every ongoing
// reception; it is called whenever the interference landscape changes.
func (m *Medium) recheckInterference() {
	for _, t := range m.active {
		for _, rec := range t.rx {
			if rec.corrupted {
				continue
			}
			i := m.interferenceAt(rec.radio, t)
			if i > 0 && rec.power < m.capture*i {
				rec.corrupted = true
			}
		}
	}
}

// totalPowerAt is the carrier-sense energy at q (all transmissions plus
// noise sources; q's own transmission is handled separately).
func (m *Medium) totalPowerAt(q *Radio) float64 {
	return m.interferenceAt(q, nil)
}

// updateCarrier recomputes every radio's carrier indication and schedules
// notifications for transitions.
func (m *Medium) updateCarrier() {
	for _, q := range m.radios {
		busy := q.enabled && (q.tx != nil || m.totalPowerAt(q) >= m.threshold)
		if busy == q.carrierBusy {
			continue
		}
		q.carrierBusy = busy
		if q.h != nil {
			h, b := q.h, busy
			m.s.AtPriority(m.s.Now(), -1, func() { h.RadioCarrier(b) })
		}
	}
}

// startTx begins radiating f from r for its airtime and returns the airtime.
func (m *Medium) startTx(r *Radio, f *frame.Frame) sim.Duration {
	air := f.Airtime(m.params.BitrateBPS)
	if r.tx != nil {
		panic(fmt.Sprintf("phy: %v transmitting while already transmitting", r.id))
	}
	if !r.enabled {
		// A powered-off station radiates nothing; the caller's own
		// timers will expire as if the frame were lost.
		return air
	}
	// Half-duplex: any reception in progress at r is lost.
	for _, t := range m.active {
		for _, rec := range t.rx {
			if rec.radio == r && !rec.corrupted {
				rec.corrupted = true
				m.counters.Aborted++
			}
		}
	}
	tx := &transmission{radio: r, f: f, end: m.s.Now() + air}
	r.tx = tx
	m.active = append(m.active, tx)
	m.counters.Transmissions++

	// New receptions at every enabled, non-transmitting radio in range.
	for _, q := range m.radios {
		if q == r || !q.enabled || q.tx != nil {
			continue
		}
		p := m.power(r, q)
		if p < m.threshold {
			continue
		}
		rec := &reception{radio: q, power: p}
		tx.rx = append(tx.rx, rec)
	}
	// The new transmission changes interference everywhere: evaluate the
	// capture condition for both old and new receptions.
	m.recheckInterference()
	m.updateCarrier()
	// Priority -2: the end of a transmission (and the deliveries it
	// spawns at priority -1) must precede any same-instant MAC timer, or
	// a station whose contention slot lands exactly at a frame boundary
	// would transmit without having "heard" the frame that just ended.
	m.s.AtPriority(tx.end, -2, func() { m.endTx(tx) })
	return air
}

// endTx completes a transmission, delivering clean receptions.
func (m *Medium) endTx(tx *transmission) {
	for i, t := range m.active {
		if t == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	tx.radio.tx = nil
	for _, rec := range tx.rx {
		switch {
		case rec.corrupted:
			m.counters.Corrupted++
			m.notifyCorrupted(rec.radio, tx.f)
		case !rec.radio.enabled:
			m.counters.Aborted++
		case m.noise.Corrupts(m.rng, rec.radio, tx.f):
			m.counters.NoiseDropped++
			m.notifyCorrupted(rec.radio, tx.f)
		default:
			m.counters.Delivered++
			if rec.radio.h != nil {
				h, f := rec.radio.h, tx.f
				m.s.AtPriority(m.s.Now(), -1, func() { h.RadioReceive(f) })
			}
		}
	}
	m.updateCarrier()
}

func (m *Medium) notifyCorrupted(q *Radio, f *frame.Frame) {
	if q.h == nil || f.Dst != q.id {
		return
	}
	if obs, ok := q.h.(CorruptionObserver); ok {
		m.s.AtPriority(m.s.Now(), -1, func() { obs.RadioCorrupted(f) })
	}
}

// Radio is one station's attachment to the medium.
type Radio struct {
	id          frame.NodeID
	pos         geom.Vec3
	m           *Medium
	h           Handler
	tx          *transmission
	enabled     bool
	carrierBusy bool
}

// ID returns the radio's station identifier.
func (r *Radio) ID() frame.NodeID { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() geom.Vec3 { return r.pos }

// SetHandler installs the upper-layer handler.
func (r *Radio) SetHandler(h Handler) { r.h = h }

// SetPos moves the radio (mobility). Powers of receptions already in flight
// keep their start-of-packet snapshot; the move affects subsequent
// transmissions and the carrier indication.
func (r *Radio) SetPos(p geom.Vec3) {
	r.pos = p
	r.m.recheckInterference()
	r.m.updateCarrier()
}

// Enabled reports whether the radio is powered.
func (r *Radio) Enabled() bool { return r.enabled }

// SetEnabled powers the radio on or off. Powering off destroys receptions
// in progress at this radio and makes it inaudible and deaf until re-enabled.
func (r *Radio) SetEnabled(on bool) {
	if r.enabled == on {
		return
	}
	r.enabled = on
	if !on {
		for _, t := range r.m.active {
			for _, rec := range t.rx {
				if rec.radio == r && !rec.corrupted {
					rec.corrupted = true
					r.m.counters.Aborted++
				}
			}
		}
		r.carrierBusy = false
	}
	r.m.updateCarrier()
}

// Transmitting reports whether the radio is currently radiating.
func (r *Radio) Transmitting() bool { return r.tx != nil }

// CarrierBusy reports the current carrier-sense indication.
func (r *Radio) CarrierBusy() bool { return r.carrierBusy }

// Transmit radiates f and returns its airtime. The caller is responsible
// for scheduling its own end-of-transmission continuation (typically
// sim.After(airtime, ...)). Transmitting while already transmitting panics:
// it is a MAC-layer bug.
func (r *Radio) Transmit(f *frame.Frame) sim.Duration {
	if f.Src != r.id {
		panic(fmt.Sprintf("phy: frame src %v transmitted by %v", f.Src, r.id))
	}
	return r.m.startTx(r, f)
}
