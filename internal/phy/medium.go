package phy

import (
	"fmt"
	"math"
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// Handler receives physical-layer indications for one radio. Callbacks are
// always delivered from the simulator event loop, never synchronously from
// inside a Transmit call, so handlers may freely call back into the radio.
type Handler interface {
	// RadioReceive delivers a cleanly received frame, including overheard
	// frames addressed to other stations. The frame is shared among all
	// receivers and must not be mutated.
	RadioReceive(f *frame.Frame)
	// RadioCarrier signals transitions of the carrier-sense indication.
	RadioCarrier(busy bool)
}

// CorruptionObserver is an optional extension of Handler: if implemented,
// the radio reports receptions destroyed by collision or noise. Only the
// intended destination is notified.
type CorruptionObserver interface {
	RadioCorrupted(f *frame.Frame)
}

// Counters aggregates medium-level statistics.
type Counters struct {
	// Transmissions counts frames put on the air.
	Transmissions int
	// Delivered counts clean receptions (including overhears).
	Delivered int
	// Corrupted counts receptions destroyed by collision.
	Corrupted int
	// NoiseDropped counts receptions destroyed by the noise model.
	NoiseDropped int
	// Aborted counts receptions abandoned because the receiving radio
	// started transmitting (half-duplex) or was disabled.
	Aborted int
}

type reception struct {
	radio     *Radio
	power     float64
	corrupted bool
	// tx is the owning transmission, excluded when summing interference
	// against this reception.
	tx *transmission
	// pos is the reception's position in radio.recs, kept current so the
	// completion path unlinks it without scanning.
	pos int
}

type transmission struct {
	radio *Radio
	f     *frame.Frame
	end   sim.Time
	rx    []*reception
	// idx is the transmission's position in Medium.active, kept current by
	// startTx/endTx so completion does not scan the active list.
	idx int
	// seq is the global start-order stamp. Per-radio audible lists stay
	// sorted by it, which is exactly the active-list (summation) order.
	seq uint64
	// endEv is the scheduled end-of-transmission event, retained so a
	// warm-started fork can re-arm the completion at its exact ordering key.
	endEv sim.Event
}

// NoiseSource is a positional energy emitter (e.g. the Figure 11 electronic
// whiteboard modeled as raw interference rather than packet loss).
type NoiseSource struct {
	m     *Medium
	pos   geom.Vec3
	power float64
	on    bool
	// cutoff is the distance beyond which this source's energy is below
	// the medium's negligibility floor (scaled by the source power);
	// +Inf when the medium has no floor.
	cutoff float64
}

// Set switches the source on or off, immediately re-evaluating ongoing
// receptions and carrier indications. Only radios within the source's
// negligibility range are touched: beyond it the source's energy is exactly
// zero, so nothing there can change.
func (n *NoiseSource) Set(on bool) {
	if n.on == on {
		return
	}
	n.on = on
	m := n.m
	if m.useIndex() {
		rs := m.radiosNear(n.pos, n.cutoff)
		for _, q := range rs {
			m.noiseSums[q.idx] = math.NaN()
		}
		for _, q := range rs {
			m.refoldCarrier(q)
		}
		m.recheckReceptionsAt(rs)
		m.updateCarrierFor(rs)
		return
	}
	m.invalidateNoise()
	m.recomputeCarrier()
	m.recheckInterference()
	m.updateCarrierFor(m.radios)
}

// On reports whether the source is radiating.
func (n *NoiseSource) On() bool { return n.on }

// Medium is the shared radio channel.
//
// Interference bookkeeping is designed so that every decision the medium
// takes is bit-identical to recomputing propagation from scratch on each
// query, while doing almost no floating-point math on the hot path:
//
//   - gains caches prop.Gain for every ordered radio pair, so a pair's
//     path loss (a math.Pow chain under the default model) is computed at
//     most once between position changes.
//   - carrier holds, per radio, the carrier-sense energy: the noise-source
//     energy followed by the gain of every active transmission, summed in
//     active-list order. Starting a transmission extends each radio's sum
//     on the right (exactly extending the left-to-right fold); ending one
//     re-folds from the cached gains. Sums are never maintained by blind
//     add/subtract accumulation: floating-point subtraction is not the
//     inverse of addition, and drift accumulated over millions of events
//     could flip marginal capture and carrier decisions, making runs
//     diverge from their seed-defined behaviour.
//
// On top of the caches sits the neighborhood index (see DESIGN.md §10).
// When the propagation model can certify a range (Bounded) and the params
// set a negligibility floor, every gain below the floor is stored as exactly
// zero, so a radio outside another's cutoff radius contributes nothing to
// any sum. Each radio then keeps the idx-sorted set of radios within the
// cutoff (nbr), maintained incrementally through a geom.Grid spatial hash,
// and the seq-sorted list of active transmissions from those radios
// (audible). Every per-event path — startTx, endTx, interference rechecks,
// carrier refolds, carrier notifications — iterates those neighbor sets
// instead of all radios and all transmissions. Because the skipped terms
// are exactly 0.0 and the included terms are summed in the same canonical
// order, the indexed paths are bit-identical to the exhaustive ones; the
// per-event cost merely drops from O(stations) to O(radio neighbors).
type Medium struct {
	s         *sim.Simulator
	prop      Propagation
	params    Params
	threshold float64
	capture   float64
	radios    []*Radio
	active    []*transmission
	sources   []*NoiseSource
	noise     NoiseModel
	rng       *rand.Rand
	counters  Counters

	// gains is the dense pairwise gain cache (NaN = not yet computed),
	// indexed [a.idx][b.idx]. Entries are exactly prop.Gain(a.pos, b.pos)
	// with the negligibility floor applied, so cached and fresh
	// computations are interchangeable.
	gains [][]float64
	// noiseSums caches noiseEnergyAt per radio (NaN = dirty).
	noiseSums []float64
	// carrier is the per-radio carrier-sense energy described above. The
	// entry for a transmitting radio may include its own (clamped, huge)
	// self-gain; it is never read while the radio transmits, and is
	// re-folded when its transmission ends.
	carrier []float64

	// Neighborhood index state. indexed is true when the propagation model
	// certified a cutoff for the params' negligibility floor; exhaustive
	// forces the O(N) iteration paths anyway (validation and benchmark
	// baseline — the results are bit-identical either way).
	indexed    bool
	exhaustive bool
	// floor is the negligibility floor: received power below it is stored
	// as exactly zero. Zero when the index is disabled (no clamping).
	floor float64
	// cutoff is the certified distance beyond which radio-to-radio gain is
	// below floor.
	cutoff float64
	grid   *geom.Grid
	// txSeq stamps transmissions with their start order.
	txSeq uint64
	// oldNbr and unionNbr are scratch buffers for mobility and noise-source
	// events; single is the scratch for one-radio carrier updates.
	oldNbr   []*Radio
	unionNbr []*Radio
	single   [1]*Radio

	// txFree and recFree recycle transmission and reception records: both
	// are dead once endTx finishes (nothing outside the medium retains
	// them), so steady-state traffic allocates neither.
	txFree  []*transmission
	recFree []*reception
}

// Closure-free event adapters for Simulator.AtPriorityCall: package-level
// functions whose arguments ride in the pooled event record, so the phy hot
// path schedules completions and notifications without allocating closures.
func endTxCall(a, b any)      { a.(*Medium).endTx(b.(*transmission)) }
func carrierOnCall(a, _ any)  { a.(Handler).RadioCarrier(true) }
func carrierOffCall(a, _ any) { a.(Handler).RadioCarrier(false) }
func receiveCall(a, b any)    { a.(Handler).RadioReceive(b.(*frame.Frame)) }
func corruptedCall(a, b any)  { a.(CorruptionObserver).RadioCorrupted(b.(*frame.Frame)) }

// allocTx takes a transmission record off the free list, or makes one.
func (m *Medium) allocTx() *transmission {
	if n := len(m.txFree); n > 0 {
		t := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return t
	}
	return &transmission{}
}

// allocRec takes a reception record off the free list, or makes one.
func (m *Medium) allocRec(q *Radio, power float64) *reception {
	if n := len(m.recFree); n > 0 {
		rec := m.recFree[n-1]
		m.recFree[n-1] = nil
		m.recFree = m.recFree[:n-1]
		rec.radio, rec.power, rec.corrupted = q, power, false
		return rec
	}
	return &reception{radio: q, power: power}
}

// New creates a medium with the given physical parameters and no noise.
func New(s *sim.Simulator, p Params) *Medium {
	m := &Medium{
		s:         s,
		prop:      NewPropagation(p),
		params:    p,
		threshold: p.Threshold(),
		capture:   p.CaptureRatio(),
		noise:     NoNoise{},
		rng:       s.NewRand(),
	}
	m.reindex()
	return m
}

// SetNoise installs the packet-level noise model.
func (m *Medium) SetNoise(n NoiseModel) {
	if n == nil {
		n = NoNoise{}
	}
	m.noise = n
}

// SetPropagation overrides the propagation model (used by tests and by the
// naive boolean-range model). The neighborhood index is rebuilt for the new
// model's range certificate (or dropped if it has none).
func (m *Medium) SetPropagation(p Propagation) {
	m.prop = p
	m.reindex()
	m.invalidateAllGains()
	m.invalidateNoise()
	m.recomputeCarrier()
}

// SetExhaustive forces the medium onto its exhaustive iteration paths:
// every event walks all radios and all active transmissions, as if the
// neighborhood index did not exist. The negligibility floor stays in force,
// so results are bit-identical to the indexed paths — this is the
// validation reference and the benchmark baseline, not a behaviour switch.
func (m *Medium) SetExhaustive(on bool) { m.exhaustive = on }

// IndexEnabled reports whether per-event work is currently bounded by
// neighborhood size (a Bounded propagation model, a positive negligibility
// floor, and no exhaustive override).
func (m *Medium) IndexEnabled() bool { return m.useIndex() }

// AvgNeighbors reports the mean neighbor-set size (the radio itself
// included). Without an index every radio is everyone's neighbor.
func (m *Medium) AvgNeighbors() float64 {
	if len(m.radios) == 0 {
		return 0
	}
	if !m.indexed {
		return float64(len(m.radios))
	}
	sum := 0
	for _, r := range m.radios {
		sum += len(r.nbr)
	}
	return float64(sum) / float64(len(m.radios))
}

// useIndex reports whether event paths should iterate neighbor sets.
func (m *Medium) useIndex() bool { return m.indexed && !m.exhaustive }

// reindex derives the negligibility floor and cutoff radius from the
// current propagation model and rebuilds the spatial grid and all neighbor
// structures. Called from New and SetPropagation.
func (m *Medium) reindex() {
	m.indexed, m.floor, m.cutoff, m.grid = false, 0, 0, nil
	if floor, d, ok := indexCutoff(m.prop, m.params); ok {
		m.indexed, m.floor, m.cutoff = true, floor, d
	}
	if m.indexed {
		m.grid = geom.NewGrid(m.cutoff)
		for _, r := range m.radios {
			m.grid.Insert(int32(r.idx), r.pos)
		}
		for _, r := range m.radios {
			m.rebuildNeighborhood(r)
		}
		for _, r := range m.radios {
			m.rebuildAudible(r)
		}
	} else {
		for _, r := range m.radios {
			r.nbr, r.audible = nil, nil
		}
	}
	for _, ns := range m.sources {
		ns.cutoff = math.Inf(1)
		if m.indexed {
			ns.cutoff = m.sourceCutoff(ns.power)
		}
	}
}

// sourceCutoff bounds the distance at which a source of the given transmit
// power still matters: beyond it, power*gain is under the floor.
func (m *Medium) sourceCutoff(power float64) float64 {
	if power <= 0 {
		return 0
	}
	if b, ok := m.prop.(Bounded); ok {
		if d, ok := b.RangeFor(m.floor / power); ok {
			return d
		}
	}
	return math.Inf(1)
}

// Params returns the medium's physical parameters.
func (m *Medium) Params() Params { return m.params }

// Counters returns a snapshot of the medium statistics.
func (m *Medium) Counters() Counters { return m.counters }

// Attach adds a radio at pos. The handler may be nil initially and installed
// later with SetHandler, but must be set before any frame can be delivered.
func (m *Medium) Attach(id frame.NodeID, pos geom.Vec3, h Handler) *Radio {
	r := &Radio{id: id, pos: pos, m: m, h: h, enabled: true, idx: len(m.radios)}
	m.radios = append(m.radios, r)
	// Extend the gain cache by one dirty column and one dirty row; existing
	// entries stay valid — attaching a radio moves nobody.
	nan := math.NaN()
	for i := range m.gains {
		m.gains[i] = append(m.gains[i], nan)
	}
	row := make([]float64, len(m.radios))
	for i := range row {
		row[i] = nan
	}
	m.gains = append(m.gains, row)
	m.noiseSums = append(m.noiseSums, nan)
	m.carrier = append(m.carrier, 0)
	if m.indexed {
		m.grid.Insert(int32(r.idx), pos)
		m.rebuildNeighborhood(r)
		for _, q := range r.nbr {
			if q != r {
				insertNbrEntry(q, r)
			}
		}
		m.rebuildAudible(r)
	}
	m.refoldCarrier(r)
	return r
}

// AddNoiseSource registers an energy emitter at pos with the given transmit
// power (1.0 = station power). It starts switched off.
func (m *Medium) AddNoiseSource(pos geom.Vec3, power float64) *NoiseSource {
	ns := &NoiseSource{m: m, pos: pos, power: power, cutoff: math.Inf(1)}
	if m.indexed {
		ns.cutoff = m.sourceCutoff(power)
	}
	m.sources = append(m.sources, ns)
	m.invalidateNoise()
	m.recomputeCarrier()
	return ns
}

// Radios returns the attached radios in attach order.
func (m *Medium) Radios() []*Radio { return m.radios }

// invalidateAllGains marks every pairwise gain as not computed.
func (m *Medium) invalidateAllGains() {
	nan := math.NaN()
	for _, row := range m.gains {
		for k := range row {
			row[k] = nan
		}
	}
}

// invalidateRadioGains marks every gain involving r as not computed.
func (m *Medium) invalidateRadioGains(r *Radio) {
	nan := math.NaN()
	row := m.gains[r.idx]
	for k := range row {
		row[k] = nan
	}
	for k := range m.gains {
		m.gains[k][r.idx] = nan
	}
}

// invalidateNoise marks every radio's cached noise-source energy dirty.
func (m *Medium) invalidateNoise() {
	nan := math.NaN()
	for i := range m.noiseSums {
		m.noiseSums[i] = nan
	}
}

// gain returns prop.Gain(a.pos, b.pos) through the cache, with values under
// the negligibility floor stored as exactly zero. Directions are cached
// independently: the default models are symmetric, but a custom Propagation
// need not be.
func (m *Medium) gain(a, b *Radio) float64 {
	g := m.gains[a.idx][b.idx]
	if math.IsNaN(g) {
		g = m.prop.Gain(a.pos, b.pos)
		if m.floor > 0 && g < m.floor {
			g = 0
		}
		m.gains[a.idx][b.idx] = g
	}
	return g
}

// InRange reports whether a transmission from a would be decodable at b in
// the absence of interference — the paper's simple in-range predicate.
func (m *Medium) InRange(a, b *Radio) bool {
	return m.gain(a, b) >= m.threshold
}

// power returns the received power at q for a transmission from r.
func (m *Medium) power(r, q *Radio) float64 { return m.gain(r, q) }

// noiseEnergyAt sums the energy of active noise sources at q, skipping
// contributions under the negligibility floor (they are defined as zero).
func (m *Medium) noiseEnergyAt(q *Radio) float64 {
	v := m.noiseSums[q.idx]
	if math.IsNaN(v) {
		v = 0
		for _, ns := range m.sources {
			if !ns.on {
				continue
			}
			e := ns.power * m.prop.Gain(ns.pos, q.pos)
			if m.floor > 0 && e < m.floor {
				continue
			}
			v += e
		}
		m.noiseSums[q.idx] = v
	}
	return v
}

// interferenceAt sums received power at q from every active transmission
// except exclude, plus noise-source energy. The indexed path folds q's
// audible list — the active transmissions whose sources are q's neighbors,
// in active-list order; the skipped transmissions' gains are exactly zero.
func (m *Medium) interferenceAt(q *Radio, exclude *transmission) float64 {
	sum := m.noiseEnergyAt(q)
	if m.useIndex() {
		for _, t := range q.audible {
			if t == exclude || t.radio == q {
				continue
			}
			sum += m.gain(t.radio, q)
		}
		return sum
	}
	for _, t := range m.active {
		if t == exclude || t.radio == q {
			continue
		}
		sum += m.gain(t.radio, q)
	}
	return sum
}

// recheckInterference re-evaluates the capture condition for every ongoing
// reception — the exhaustive fallback for media without an index.
func (m *Medium) recheckInterference() {
	for _, t := range m.active {
		for _, rec := range t.rx {
			if rec.corrupted {
				continue
			}
			i := m.interferenceAt(rec.radio, t)
			if i > 0 && rec.power < m.capture*i {
				rec.corrupted = true
			}
		}
	}
}

// recheckReceptionsAt re-evaluates the capture condition for receptions in
// flight at the given radios — the only receptions an event local to their
// neighborhoods can affect.
func (m *Medium) recheckReceptionsAt(rs []*Radio) {
	for _, q := range rs {
		for _, rec := range q.recs {
			if rec.corrupted {
				continue
			}
			i := m.interferenceAt(q, rec.tx)
			if i > 0 && rec.power < m.capture*i {
				rec.corrupted = true
			}
		}
	}
}

// refoldCarrier re-folds one radio's carrier-sense energy from the cached
// noise and gain values, in canonical (noise, then active-list) order.
func (m *Medium) refoldCarrier(q *Radio) {
	m.carrier[q.idx] = m.interferenceAt(q, nil)
}

// recomputeCarrier re-folds every radio's carrier-sense energy.
func (m *Medium) recomputeCarrier() {
	for _, q := range m.radios {
		m.refoldCarrier(q)
	}
}

// updateCarrierFor recomputes the carrier indication of the given radios
// (which must be in attach/idx order — same-instant notifications fire in
// that order) and schedules notifications for transitions.
func (m *Medium) updateCarrierFor(rs []*Radio) {
	for _, q := range rs {
		busy := q.enabled && (q.tx != nil || m.carrier[q.idx] >= m.threshold)
		if busy == q.carrierBusy {
			continue
		}
		q.carrierBusy = busy
		if q.h != nil {
			// The transition direction is encoded in the function choice
			// so no closure captures it; the handler snapshot rides in
			// the event record.
			call := carrierOffCall
			if busy {
				call = carrierOnCall
			}
			m.s.AtPriorityCall(m.s.Now(), -1, call, q.h, nil)
		}
	}
}

// attachRec creates a reception of tx at q with the given power and links it
// into both the transmission's receiver list and the radio's reception list.
func (m *Medium) attachRec(tx *transmission, q *Radio, p float64) {
	rec := m.allocRec(q, p)
	rec.tx = tx
	rec.pos = len(q.recs)
	q.recs = append(q.recs, rec)
	tx.rx = append(tx.rx, rec)
}

// unlinkRec removes rec from its radio's reception list.
func (m *Medium) unlinkRec(rec *reception) {
	a := rec.radio.recs
	last := len(a) - 1
	a[rec.pos] = a[last]
	a[rec.pos].pos = rec.pos
	a[last] = nil
	rec.radio.recs = a[:last]
}

// startTx begins radiating f from r for its airtime and returns the airtime.
func (m *Medium) startTx(r *Radio, f *frame.Frame) sim.Duration {
	air := f.Airtime(m.params.BitrateBPS)
	if r.tx != nil {
		panic(fmt.Sprintf("phy: %v transmitting while already transmitting", r.id))
	}
	if !r.enabled {
		// A powered-off station radiates nothing; the caller's own
		// timers will expire as if the frame were lost.
		return air
	}
	// Half-duplex: any reception in progress at r is lost.
	for _, rec := range r.recs {
		if !rec.corrupted {
			rec.corrupted = true
			m.counters.Aborted++
		}
	}
	tx := m.allocTx()
	m.txSeq++
	tx.radio, tx.f, tx.end, tx.idx, tx.seq = r, f, m.s.Now()+air, len(m.active), m.txSeq
	r.tx = tx
	m.active = append(m.active, tx)
	m.counters.Transmissions++
	if m.indexed {
		// The newest transmission has the highest seq: appending keeps
		// every neighbor's audible list in active-list order.
		for _, q := range r.nbr {
			q.audible = append(q.audible, tx)
		}
	}
	if m.useIndex() {
		// The new transmission extends each neighbor's carrier fold on the
		// right (including r's own entry, which stays unread while r
		// transmits); non-neighbors would extend by exactly zero.
		for _, q := range r.nbr {
			m.carrier[q.idx] += m.gain(r, q)
		}
		for _, q := range r.nbr {
			if q == r || !q.enabled || q.tx != nil {
				continue
			}
			p := m.gain(r, q)
			if p < m.threshold {
				continue
			}
			m.attachRec(tx, q, p)
		}
		// The new transmission changes interference only within r's
		// neighborhood: evaluate the capture condition for receptions
		// there (old and new alike).
		m.recheckReceptionsAt(r.nbr)
		m.updateCarrierFor(r.nbr)
	} else {
		for _, q := range m.radios {
			m.carrier[q.idx] += m.gain(r, q)
		}
		// New receptions at every enabled, non-transmitting radio in range.
		for _, q := range m.radios {
			if q == r || !q.enabled || q.tx != nil {
				continue
			}
			p := m.gain(r, q)
			if p < m.threshold {
				continue
			}
			m.attachRec(tx, q, p)
		}
		// When this is the only transmission on the air and nobody is in
		// range, there are no receptions to re-evaluate and the recheck is
		// skipped outright.
		if len(tx.rx) > 0 || len(m.active) > 1 {
			m.recheckInterference()
		}
		m.updateCarrierFor(m.radios)
	}
	// Priority -2: the end of a transmission (and the deliveries it
	// spawns at priority -1) must precede any same-instant MAC timer, or
	// a station whose contention slot lands exactly at a frame boundary
	// would transmit without having "heard" the frame that just ended.
	tx.endEv = m.s.AtPriorityCall(tx.end, -2, endTxCall, m, tx)
	return air
}

// endTx completes a transmission, delivering clean receptions.
func (m *Medium) endTx(tx *transmission) {
	// Index-based removal: shift the tail down one slot, keeping relative
	// order (and therefore summation order) intact.
	i := tx.idx
	copy(m.active[i:], m.active[i+1:])
	m.active[len(m.active)-1] = nil
	m.active = m.active[:len(m.active)-1]
	for ; i < len(m.active); i++ {
		m.active[i].idx = i
	}
	src := tx.radio
	src.tx = nil
	if m.indexed {
		for _, q := range src.nbr {
			removeAudible(q, tx)
		}
	}
	if m.useIndex() {
		// Only the neighbors' folds contained tx's term; everyone else's
		// carrier is unchanged.
		for _, q := range src.nbr {
			m.refoldCarrier(q)
		}
	} else {
		m.recomputeCarrier()
	}
	for _, rec := range tx.rx {
		switch {
		case rec.corrupted:
			m.counters.Corrupted++
			m.notifyCorrupted(rec.radio, tx.f)
		case !rec.radio.enabled:
			m.counters.Aborted++
		case m.noise.Corrupts(m.rng, rec.radio, tx.f):
			m.counters.NoiseDropped++
			m.notifyCorrupted(rec.radio, tx.f)
		default:
			m.counters.Delivered++
			if rec.radio.h != nil {
				m.s.AtPriorityCall(m.s.Now(), -1, receiveCall, rec.radio.h, tx.f)
			}
		}
	}
	// The scheduled notifications captured handler and frame, never the
	// records themselves, so both can be recycled immediately.
	for i, rec := range tx.rx {
		m.unlinkRec(rec)
		rec.radio, rec.tx = nil, nil
		tx.rx[i] = nil
		m.recFree = append(m.recFree, rec)
	}
	tx.rx = tx.rx[:0]
	tx.radio, tx.f = nil, nil
	tx.endEv = sim.Event{}
	m.txFree = append(m.txFree, tx)
	if m.useIndex() {
		m.updateCarrierFor(src.nbr)
	} else {
		m.updateCarrierFor(m.radios)
	}
}

func (m *Medium) notifyCorrupted(q *Radio, f *frame.Frame) {
	if q.h == nil || f.Dst != q.id {
		return
	}
	if obs, ok := q.h.(CorruptionObserver); ok {
		m.s.AtPriorityCall(m.s.Now(), -1, corruptedCall, obs, f)
	}
}

// rebuildNeighborhood recomputes r.nbr (r itself included) from the grid,
// sorted by radio idx — the canonical attach order every multi-radio
// iteration follows.
func (m *Medium) rebuildNeighborhood(r *Radio) {
	r.nbr = r.nbr[:0]
	m.grid.ForEachWithin(r.pos, m.cutoff, func(id int32) {
		q := m.radios[id]
		if q.pos.Dist(r.pos) <= m.cutoff {
			r.nbr = append(r.nbr, q)
		}
	})
	sortRadiosByIdx(r.nbr)
}

// rebuildAudible recomputes r's audible list from its neighbors' current
// transmissions, in active-list (seq) order.
func (m *Medium) rebuildAudible(r *Radio) {
	r.audible = r.audible[:0]
	for _, q := range r.nbr {
		if q.tx != nil {
			insertAudible(r, q.tx)
		}
	}
}

// radiosNear collects the radios within rad of p into the union scratch,
// idx-sorted. An unbounded radius (no certificate) degenerates to all radios.
func (m *Medium) radiosNear(p geom.Vec3, rad float64) []*Radio {
	m.unionNbr = m.unionNbr[:0]
	if m.grid == nil || math.IsInf(rad, 1) {
		m.unionNbr = append(m.unionNbr, m.radios...)
		return m.unionNbr
	}
	m.grid.ForEachWithin(p, rad, func(id int32) {
		q := m.radios[id]
		if q.pos.Dist(p) <= rad {
			m.unionNbr = append(m.unionNbr, q)
		}
	})
	sortRadiosByIdx(m.unionNbr)
	return m.unionNbr
}

// unionOf merges two idx-sorted radio sets into the union scratch.
func (m *Medium) unionOf(a, b []*Radio) []*Radio {
	m.unionNbr = m.unionNbr[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			m.unionNbr = append(m.unionNbr, a[i])
			i++
			j++
		case a[i].idx < b[j].idx:
			m.unionNbr = append(m.unionNbr, a[i])
			i++
		default:
			m.unionNbr = append(m.unionNbr, b[j])
			j++
		}
	}
	m.unionNbr = append(m.unionNbr, a[i:]...)
	m.unionNbr = append(m.unionNbr, b[j:]...)
	return m.unionNbr
}

// sortRadiosByIdx insertion-sorts a small radio set by idx.
func sortRadiosByIdx(rs []*Radio) {
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		j := i - 1
		for ; j >= 0 && rs[j].idx > r.idx; j-- {
			rs[j+1] = rs[j]
		}
		rs[j+1] = r
	}
}

// insertNbrEntry adds r to q's neighbor set, keeping idx order.
func insertNbrEntry(q, r *Radio) {
	a := append(q.nbr, nil)
	i := len(a) - 2
	for ; i >= 0 && a[i].idx > r.idx; i-- {
		a[i+1] = a[i]
	}
	a[i+1] = r
	q.nbr = a
}

// removeNbrEntry removes r from q's neighbor set, keeping order.
func removeNbrEntry(q, r *Radio) {
	a := q.nbr
	for i, x := range a {
		if x == r {
			copy(a[i:], a[i+1:])
			a[len(a)-1] = nil
			q.nbr = a[:len(a)-1]
			return
		}
	}
	panic("phy: neighbor entry missing")
}

// insertAudible adds tx to q's audible list, keeping seq (active-list)
// order — a transmitter carried into a new neighborhood mid-packet must
// take its original summation position.
func insertAudible(q *Radio, tx *transmission) {
	a := append(q.audible, nil)
	i := len(a) - 2
	for ; i >= 0 && a[i].seq > tx.seq; i-- {
		a[i+1] = a[i]
	}
	a[i+1] = tx
	q.audible = a
}

// removeAudible removes tx from q's audible list, keeping order.
func removeAudible(q *Radio, tx *transmission) {
	a := q.audible
	for i, x := range a {
		if x == tx {
			copy(a[i:], a[i+1:])
			a[len(a)-1] = nil
			q.audible = a[:len(a)-1]
			return
		}
	}
	panic("phy: audible entry missing")
}

// Radio is one station's attachment to the medium.
type Radio struct {
	id          frame.NodeID
	pos         geom.Vec3
	m           *Medium
	h           Handler
	tx          *transmission
	enabled     bool
	carrierBusy bool
	// idx is the radio's position in Medium.radios, the key into the
	// medium's gain and interference caches.
	idx int
	// nbr is the idx-sorted set of radios within the medium's cutoff
	// radius, this radio included; nil when the index is disabled.
	nbr []*Radio
	// audible is the seq-sorted list of active transmissions whose sources
	// are in nbr — exactly the transmissions whose gain here can be
	// nonzero; nil when the index is disabled.
	audible []*transmission
	// recs is the list of receptions in flight at this radio (maintained
	// in both indexed and exhaustive modes).
	recs []*reception
}

// ID returns the radio's station identifier.
func (r *Radio) ID() frame.NodeID { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() geom.Vec3 { return r.pos }

// SetHandler installs the upper-layer handler.
func (r *Radio) SetHandler(h Handler) { r.h = h }

// SetPos moves the radio (mobility). Powers of receptions already in flight
// keep their start-of-packet snapshot; the move affects subsequent
// transmissions and the carrier indication. Only the moved radio's
// neighborhood state is invalidated: gains touching it in its old or new
// neighborhood go dirty, its grid bucket moves, and the neighbor sets of
// radios entering or leaving its cutoff are updated in place. Radios beyond
// both neighborhoods keep gains that are (provably) zero both before and
// after, so nothing of theirs needs touching.
func (r *Radio) SetPos(p geom.Vec3) {
	m := r.m
	if !m.indexed {
		r.pos = p
		m.invalidateRadioGains(r)
		m.noiseSums[r.idx] = math.NaN()
		m.recomputeCarrier()
		m.recheckInterference()
		m.updateCarrierFor(m.radios)
		return
	}
	old := r.pos
	m.oldNbr = append(m.oldNbr[:0], r.nbr...)
	// Detach from the old neighborhood.
	for _, q := range m.oldNbr {
		if q == r {
			continue
		}
		removeNbrEntry(q, r)
		if r.tx != nil {
			removeAudible(q, r.tx)
		}
	}
	r.pos = p
	m.grid.Move(int32(r.idx), old, p)
	m.rebuildNeighborhood(r)
	// Attach to the new neighborhood.
	for _, q := range r.nbr {
		if q == r {
			continue
		}
		insertNbrEntry(q, r)
		if r.tx != nil {
			insertAudible(q, r.tx)
		}
	}
	m.rebuildAudible(r)
	// Gains touching r in either neighborhood are dirty; pairs beyond both
	// cutoffs were stored as exact zeros and remain exact zeros.
	nan := math.NaN()
	for _, q := range m.oldNbr {
		m.gains[r.idx][q.idx] = nan
		m.gains[q.idx][r.idx] = nan
	}
	for _, q := range r.nbr {
		m.gains[r.idx][q.idx] = nan
		m.gains[q.idx][r.idx] = nan
	}
	m.noiseSums[r.idx] = math.NaN()
	if m.useIndex() {
		if r.tx != nil {
			// r is radiating: interference changes across both its old
			// and new neighborhoods.
			union := m.unionOf(m.oldNbr, r.nbr)
			for _, q := range union {
				m.refoldCarrier(q)
			}
			m.recheckReceptionsAt(union)
			m.updateCarrierFor(union)
		} else {
			// A silent radio's move changes only what *it* hears.
			m.single[0] = r
			m.refoldCarrier(r)
			m.recheckReceptionsAt(m.single[:])
			m.updateCarrierFor(m.single[:])
		}
		return
	}
	m.recomputeCarrier()
	m.recheckInterference()
	m.updateCarrierFor(m.radios)
}

// Enabled reports whether the radio is powered.
func (r *Radio) Enabled() bool { return r.enabled }

// SetEnabled powers the radio on or off. Powering off destroys receptions
// in progress at this radio and makes it inaudible and deaf until re-enabled.
func (r *Radio) SetEnabled(on bool) {
	if r.enabled == on {
		return
	}
	r.enabled = on
	if !on {
		for _, rec := range r.recs {
			if !rec.corrupted {
				rec.corrupted = true
				r.m.counters.Aborted++
			}
		}
		r.carrierBusy = false
	}
	// Nobody else's carrier energy or state changed.
	r.m.single[0] = r
	r.m.updateCarrierFor(r.m.single[:])
}

// Transmitting reports whether the radio is currently radiating.
func (r *Radio) Transmitting() bool { return r.tx != nil }

// CarrierBusy reports the current carrier-sense indication.
func (r *Radio) CarrierBusy() bool { return r.carrierBusy }

// Transmit radiates f and returns its airtime. The caller is responsible
// for scheduling its own end-of-transmission continuation (typically
// sim.After(airtime, ...)). Transmitting while already transmitting panics:
// it is a MAC-layer bug.
func (r *Radio) Transmit(f *frame.Frame) sim.Duration {
	if f.Src != r.id {
		panic(fmt.Sprintf("phy: frame src %v transmitted by %v", f.Src, r.id))
	}
	return r.m.startTx(r, f)
}
