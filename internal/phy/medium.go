package phy

import (
	"fmt"
	"math"
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// Handler receives physical-layer indications for one radio. Callbacks are
// always delivered from the simulator event loop, never synchronously from
// inside a Transmit call, so handlers may freely call back into the radio.
type Handler interface {
	// RadioReceive delivers a cleanly received frame, including overheard
	// frames addressed to other stations. The frame is shared among all
	// receivers and must not be mutated.
	RadioReceive(f *frame.Frame)
	// RadioCarrier signals transitions of the carrier-sense indication.
	RadioCarrier(busy bool)
}

// CorruptionObserver is an optional extension of Handler: if implemented,
// the radio reports receptions destroyed by collision or noise. Only the
// intended destination is notified.
type CorruptionObserver interface {
	RadioCorrupted(f *frame.Frame)
}

// Counters aggregates medium-level statistics.
type Counters struct {
	// Transmissions counts frames put on the air.
	Transmissions int
	// Delivered counts clean receptions (including overhears).
	Delivered int
	// Corrupted counts receptions destroyed by collision.
	Corrupted int
	// NoiseDropped counts receptions destroyed by the noise model.
	NoiseDropped int
	// Aborted counts receptions abandoned because the receiving radio
	// started transmitting (half-duplex) or was disabled.
	Aborted int
}

type reception struct {
	radio     *Radio
	power     float64
	corrupted bool
}

type transmission struct {
	radio *Radio
	f     *frame.Frame
	end   sim.Time
	rx    []*reception
	// idx is the transmission's position in Medium.active, kept current by
	// startTx/endTx so completion does not scan the active list.
	idx int
}

// NoiseSource is a positional energy emitter (e.g. the Figure 11 electronic
// whiteboard modeled as raw interference rather than packet loss).
type NoiseSource struct {
	m     *Medium
	pos   geom.Vec3
	power float64
	on    bool
}

// Set switches the source on or off, immediately re-evaluating ongoing
// receptions and carrier indications.
func (n *NoiseSource) Set(on bool) {
	if n.on == on {
		return
	}
	n.on = on
	n.m.invalidateNoise()
	n.m.recomputeCarrier()
	n.m.recheckInterference()
	n.m.updateCarrier()
}

// On reports whether the source is radiating.
func (n *NoiseSource) On() bool { return n.on }

// Medium is the shared radio channel.
//
// Interference bookkeeping is designed so that every decision the medium
// takes is bit-identical to recomputing propagation from scratch on each
// query, while doing almost no floating-point math on the hot path:
//
//   - gains caches prop.Gain for every ordered radio pair, so a pair's
//     path loss (a math.Pow chain under the default model) is computed at
//     most once between position changes.
//   - carrier holds, per radio, the carrier-sense energy: the noise-source
//     energy followed by the gain of every active transmission, summed in
//     active-list order. Starting a transmission extends each radio's sum
//     on the right (exactly extending the left-to-right fold); ending one
//     re-folds from the cached gains. Sums are never maintained by blind
//     add/subtract accumulation: floating-point subtraction is not the
//     inverse of addition, and drift accumulated over millions of events
//     could flip marginal capture and carrier decisions, making runs
//     diverge from their seed-defined behaviour.
type Medium struct {
	s         *sim.Simulator
	prop      Propagation
	params    Params
	threshold float64
	capture   float64
	radios    []*Radio
	active    []*transmission
	sources   []*NoiseSource
	noise     NoiseModel
	rng       *rand.Rand
	counters  Counters

	// gains is the dense R×R pairwise gain cache (NaN = not yet computed),
	// indexed [a.idx*R + b.idx]. Entries are exactly prop.Gain(a.pos,
	// b.pos), so cached and fresh computations are interchangeable.
	gains []float64
	// noiseSums caches noiseEnergyAt per radio (NaN = dirty).
	noiseSums []float64
	// carrier is the per-radio carrier-sense energy described above. The
	// entry for a transmitting radio may include its own (clamped, huge)
	// self-gain; it is never read while the radio transmits, and is
	// re-folded when its transmission ends.
	carrier []float64

	// txFree and recFree recycle transmission and reception records: both
	// are dead once endTx finishes (nothing outside the medium retains
	// them), so steady-state traffic allocates neither.
	txFree  []*transmission
	recFree []*reception
}

// Closure-free event adapters for Simulator.AtPriorityCall: package-level
// functions whose arguments ride in the pooled event record, so the phy hot
// path schedules completions and notifications without allocating closures.
func endTxCall(a, b any)      { a.(*Medium).endTx(b.(*transmission)) }
func carrierOnCall(a, _ any)  { a.(Handler).RadioCarrier(true) }
func carrierOffCall(a, _ any) { a.(Handler).RadioCarrier(false) }
func receiveCall(a, b any)    { a.(Handler).RadioReceive(b.(*frame.Frame)) }
func corruptedCall(a, b any)  { a.(CorruptionObserver).RadioCorrupted(b.(*frame.Frame)) }

// allocTx takes a transmission record off the free list, or makes one.
func (m *Medium) allocTx() *transmission {
	if n := len(m.txFree); n > 0 {
		t := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return t
	}
	return &transmission{}
}

// allocRec takes a reception record off the free list, or makes one.
func (m *Medium) allocRec(q *Radio, power float64) *reception {
	if n := len(m.recFree); n > 0 {
		rec := m.recFree[n-1]
		m.recFree[n-1] = nil
		m.recFree = m.recFree[:n-1]
		rec.radio, rec.power, rec.corrupted = q, power, false
		return rec
	}
	return &reception{radio: q, power: power}
}

// New creates a medium with the given physical parameters and no noise.
func New(s *sim.Simulator, p Params) *Medium {
	return &Medium{
		s:         s,
		prop:      NewPropagation(p),
		params:    p,
		threshold: p.Threshold(),
		capture:   p.CaptureRatio(),
		noise:     NoNoise{},
		rng:       s.NewRand(),
	}
}

// SetNoise installs the packet-level noise model.
func (m *Medium) SetNoise(n NoiseModel) {
	if n == nil {
		n = NoNoise{}
	}
	m.noise = n
}

// SetPropagation overrides the propagation model (used by tests and by the
// naive boolean-range model).
func (m *Medium) SetPropagation(p Propagation) {
	m.prop = p
	m.invalidateAllGains()
	m.invalidateNoise()
	m.recomputeCarrier()
}

// Params returns the medium's physical parameters.
func (m *Medium) Params() Params { return m.params }

// Counters returns a snapshot of the medium statistics.
func (m *Medium) Counters() Counters { return m.counters }

// Attach adds a radio at pos. The handler may be nil initially and installed
// later with SetHandler, but must be set before any frame can be delivered.
func (m *Medium) Attach(id frame.NodeID, pos geom.Vec3, h Handler) *Radio {
	r := &Radio{id: id, pos: pos, m: m, h: h, enabled: true, idx: len(m.radios)}
	m.radios = append(m.radios, r)
	n := len(m.radios)
	m.gains = make([]float64, n*n)
	m.invalidateAllGains()
	m.noiseSums = append(m.noiseSums, math.NaN())
	m.invalidateNoise()
	m.carrier = append(m.carrier, 0)
	m.recomputeCarrier()
	return r
}

// AddNoiseSource registers an energy emitter at pos with the given transmit
// power (1.0 = station power). It starts switched off.
func (m *Medium) AddNoiseSource(pos geom.Vec3, power float64) *NoiseSource {
	ns := &NoiseSource{m: m, pos: pos, power: power}
	m.sources = append(m.sources, ns)
	m.invalidateNoise()
	m.recomputeCarrier()
	return ns
}

// Radios returns the attached radios in attach order.
func (m *Medium) Radios() []*Radio { return m.radios }

// invalidateAllGains marks every pairwise gain as not computed.
func (m *Medium) invalidateAllGains() {
	nan := math.NaN()
	for i := range m.gains {
		m.gains[i] = nan
	}
}

// invalidateRadioGains marks every gain involving r as not computed.
func (m *Medium) invalidateRadioGains(r *Radio) {
	n := len(m.radios)
	nan := math.NaN()
	for k := 0; k < n; k++ {
		m.gains[r.idx*n+k] = nan
		m.gains[k*n+r.idx] = nan
	}
}

// invalidateNoise marks every radio's cached noise-source energy dirty.
func (m *Medium) invalidateNoise() {
	nan := math.NaN()
	for i := range m.noiseSums {
		m.noiseSums[i] = nan
	}
}

// gain returns prop.Gain(a.pos, b.pos) through the cache. Directions are
// cached independently: the default models are symmetric, but a custom
// Propagation need not be.
func (m *Medium) gain(a, b *Radio) float64 {
	i := a.idx*len(m.radios) + b.idx
	g := m.gains[i]
	if math.IsNaN(g) {
		g = m.prop.Gain(a.pos, b.pos)
		m.gains[i] = g
	}
	return g
}

// InRange reports whether a transmission from a would be decodable at b in
// the absence of interference — the paper's simple in-range predicate.
func (m *Medium) InRange(a, b *Radio) bool {
	return m.gain(a, b) >= m.threshold
}

// power returns the received power at q for a transmission from r.
func (m *Medium) power(r, q *Radio) float64 { return m.gain(r, q) }

// noiseEnergyAt sums the energy of active noise sources at q.
func (m *Medium) noiseEnergyAt(q *Radio) float64 {
	v := m.noiseSums[q.idx]
	if math.IsNaN(v) {
		v = 0
		for _, ns := range m.sources {
			if ns.on {
				v += ns.power * m.prop.Gain(ns.pos, q.pos)
			}
		}
		m.noiseSums[q.idx] = v
	}
	return v
}

// interferenceAt sums received power at q from every active transmission
// except exclude, plus noise-source energy.
func (m *Medium) interferenceAt(q *Radio, exclude *transmission) float64 {
	sum := m.noiseEnergyAt(q)
	for _, t := range m.active {
		if t == exclude || t.radio == q {
			continue
		}
		sum += m.gain(t.radio, q)
	}
	return sum
}

// recheckInterference re-evaluates the capture condition for every ongoing
// reception; it is called whenever the interference landscape changes.
func (m *Medium) recheckInterference() {
	for _, t := range m.active {
		for _, rec := range t.rx {
			if rec.corrupted {
				continue
			}
			i := m.interferenceAt(rec.radio, t)
			if i > 0 && rec.power < m.capture*i {
				rec.corrupted = true
			}
		}
	}
}

// totalPowerAt is the carrier-sense energy at q (all transmissions plus
// noise sources; q's own transmission is handled separately).
func (m *Medium) totalPowerAt(q *Radio) float64 {
	return m.interferenceAt(q, nil)
}

// recomputeCarrier re-folds every radio's carrier-sense energy from the
// cached noise and gain values, in canonical (noise, then active-list)
// order.
func (m *Medium) recomputeCarrier() {
	for _, q := range m.radios {
		sum := m.noiseEnergyAt(q)
		for _, t := range m.active {
			if t.radio == q {
				continue
			}
			sum += m.gain(t.radio, q)
		}
		m.carrier[q.idx] = sum
	}
}

// updateCarrier recomputes every radio's carrier indication and schedules
// notifications for transitions.
func (m *Medium) updateCarrier() {
	for _, q := range m.radios {
		busy := q.enabled && (q.tx != nil || m.carrier[q.idx] >= m.threshold)
		if busy == q.carrierBusy {
			continue
		}
		q.carrierBusy = busy
		if q.h != nil {
			// The transition direction is encoded in the function choice
			// so no closure captures it; the handler snapshot rides in
			// the event record.
			call := carrierOffCall
			if busy {
				call = carrierOnCall
			}
			m.s.AtPriorityCall(m.s.Now(), -1, call, q.h, nil)
		}
	}
}

// startTx begins radiating f from r for its airtime and returns the airtime.
func (m *Medium) startTx(r *Radio, f *frame.Frame) sim.Duration {
	air := f.Airtime(m.params.BitrateBPS)
	if r.tx != nil {
		panic(fmt.Sprintf("phy: %v transmitting while already transmitting", r.id))
	}
	if !r.enabled {
		// A powered-off station radiates nothing; the caller's own
		// timers will expire as if the frame were lost.
		return air
	}
	// Half-duplex: any reception in progress at r is lost.
	for _, t := range m.active {
		for _, rec := range t.rx {
			if rec.radio == r && !rec.corrupted {
				rec.corrupted = true
				m.counters.Aborted++
			}
		}
	}
	tx := m.allocTx()
	tx.radio, tx.f, tx.end, tx.idx = r, f, m.s.Now()+air, len(m.active)
	r.tx = tx
	m.active = append(m.active, tx)
	m.counters.Transmissions++
	// The new transmission extends every radio's carrier fold on the right
	// (including r's own entry, which stays unread while r transmits).
	for _, q := range m.radios {
		m.carrier[q.idx] += m.gain(r, q)
	}

	// New receptions at every enabled, non-transmitting radio in range.
	for _, q := range m.radios {
		if q == r || !q.enabled || q.tx != nil {
			continue
		}
		p := m.gain(r, q)
		if p < m.threshold {
			continue
		}
		tx.rx = append(tx.rx, m.allocRec(q, p))
	}
	// The new transmission changes interference everywhere: evaluate the
	// capture condition for both old and new receptions. When this is the
	// only transmission on the air and nobody is in range, there are no
	// receptions to re-evaluate and the recheck is skipped outright.
	if len(tx.rx) > 0 || len(m.active) > 1 {
		m.recheckInterference()
	}
	m.updateCarrier()
	// Priority -2: the end of a transmission (and the deliveries it
	// spawns at priority -1) must precede any same-instant MAC timer, or
	// a station whose contention slot lands exactly at a frame boundary
	// would transmit without having "heard" the frame that just ended.
	m.s.AtPriorityCall(tx.end, -2, endTxCall, m, tx)
	return air
}

// endTx completes a transmission, delivering clean receptions.
func (m *Medium) endTx(tx *transmission) {
	// Index-based removal: shift the tail down one slot, keeping relative
	// order (and therefore summation order) intact.
	i := tx.idx
	copy(m.active[i:], m.active[i+1:])
	m.active[len(m.active)-1] = nil
	m.active = m.active[:len(m.active)-1]
	for ; i < len(m.active); i++ {
		m.active[i].idx = i
	}
	tx.radio.tx = nil
	m.recomputeCarrier()
	for _, rec := range tx.rx {
		switch {
		case rec.corrupted:
			m.counters.Corrupted++
			m.notifyCorrupted(rec.radio, tx.f)
		case !rec.radio.enabled:
			m.counters.Aborted++
		case m.noise.Corrupts(m.rng, rec.radio, tx.f):
			m.counters.NoiseDropped++
			m.notifyCorrupted(rec.radio, tx.f)
		default:
			m.counters.Delivered++
			if rec.radio.h != nil {
				m.s.AtPriorityCall(m.s.Now(), -1, receiveCall, rec.radio.h, tx.f)
			}
		}
	}
	// The scheduled notifications captured handler and frame, never the
	// records themselves, so both can be recycled immediately.
	for i, rec := range tx.rx {
		rec.radio = nil
		tx.rx[i] = nil
		m.recFree = append(m.recFree, rec)
	}
	tx.rx = tx.rx[:0]
	tx.radio, tx.f = nil, nil
	m.txFree = append(m.txFree, tx)
	m.updateCarrier()
}

func (m *Medium) notifyCorrupted(q *Radio, f *frame.Frame) {
	if q.h == nil || f.Dst != q.id {
		return
	}
	if obs, ok := q.h.(CorruptionObserver); ok {
		m.s.AtPriorityCall(m.s.Now(), -1, corruptedCall, obs, f)
	}
}

// Radio is one station's attachment to the medium.
type Radio struct {
	id          frame.NodeID
	pos         geom.Vec3
	m           *Medium
	h           Handler
	tx          *transmission
	enabled     bool
	carrierBusy bool
	// idx is the radio's position in Medium.radios, the key into the
	// medium's gain and interference caches.
	idx int
}

// ID returns the radio's station identifier.
func (r *Radio) ID() frame.NodeID { return r.id }

// Pos returns the radio's current position.
func (r *Radio) Pos() geom.Vec3 { return r.pos }

// SetHandler installs the upper-layer handler.
func (r *Radio) SetHandler(h Handler) { r.h = h }

// SetPos moves the radio (mobility). Powers of receptions already in flight
// keep their start-of-packet snapshot; the move affects subsequent
// transmissions and the carrier indication.
func (r *Radio) SetPos(p geom.Vec3) {
	r.pos = p
	r.m.invalidateRadioGains(r)
	r.m.noiseSums[r.idx] = math.NaN()
	r.m.recomputeCarrier()
	r.m.recheckInterference()
	r.m.updateCarrier()
}

// Enabled reports whether the radio is powered.
func (r *Radio) Enabled() bool { return r.enabled }

// SetEnabled powers the radio on or off. Powering off destroys receptions
// in progress at this radio and makes it inaudible and deaf until re-enabled.
func (r *Radio) SetEnabled(on bool) {
	if r.enabled == on {
		return
	}
	r.enabled = on
	if !on {
		for _, t := range r.m.active {
			for _, rec := range t.rx {
				if rec.radio == r && !rec.corrupted {
					rec.corrupted = true
					r.m.counters.Aborted++
				}
			}
		}
		r.carrierBusy = false
	}
	r.m.updateCarrier()
}

// Transmitting reports whether the radio is currently radiating.
func (r *Radio) Transmitting() bool { return r.tx != nil }

// CarrierBusy reports the current carrier-sense indication.
func (r *Radio) CarrierBusy() bool { return r.carrierBusy }

// Transmit radiates f and returns its airtime. The caller is responsible
// for scheduling its own end-of-transmission continuation (typically
// sim.After(airtime, ...)). Transmitting while already transmitting panics:
// it is a MAC-layer bug.
func (r *Radio) Transmit(f *frame.Frame) sim.Duration {
	if f.Src != r.id {
		panic(fmt.Sprintf("phy: frame src %v transmitted by %v", f.Src, r.id))
	}
	return r.m.startTx(r, f)
}
