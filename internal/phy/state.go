package phy

import (
	"fmt"
)

// This file is the radio medium's contribution to the snapshot state
// inventory (DESIGN.md §14). Only *authoritative* state is dumped: active
// transmissions, in-flight receptions, noise-source switches, counters, and
// per-radio flags. The gain/noise/carrier caches and the neighborhood index
// are derived — they are recomputable pure functions of positions and the
// active set, and cache fill order legitimately differs between a straight
// run and a replayed one (NaN-dirty entries repopulate lazily), so including
// them would flag false divergence. The pooled transmission/reception free
// lists are logical state (their sizes affect nothing but must match if the
// histories matched) and are dumped as lengths.

// AppendState appends the medium's canonical state dump.
func (m *Medium) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "medium radios=%d txseq=%d txfree=%d recfree=%d indexed=%t exhaustive=%t\n",
		len(m.radios), m.txSeq, len(m.txFree), len(m.recFree), m.indexed, m.exhaustive)
	c := m.counters
	b = fmt.Appendf(b, "medium.counters tx=%d delivered=%d corrupted=%d noise=%d aborted=%d\n",
		c.Transmissions, c.Delivered, c.Corrupted, c.NoiseDropped, c.Aborted)
	for _, t := range m.active {
		b = appendTransmission(b, t)
	}
	for i, src := range m.sources {
		b = fmt.Appendf(b, "noisesrc i=%d pos=%v power=%g on=%t\n", i, src.pos, src.power, src.on)
	}
	return b
}

// appendTransmission dumps one active transmission and its receptions.
// Active transmissions are kept in start order, which is deterministic.
func appendTransmission(b []byte, t *transmission) []byte {
	b = fmt.Appendf(b, "tx seq=%d src=%d end=%d frame={type=%v dst=%d bytes=%d lb=%d rb=%d esn=%d seq=%d mc=%t}\n",
		t.seq, t.radio.id, t.end, t.f.Type, t.f.Dst, t.f.DataBytes,
		t.f.LocalBackoff, t.f.RemoteBackoff, t.f.ESN, t.f.Seq, t.f.Multicast)
	for _, r := range t.rx {
		b = fmt.Appendf(b, "  rx at=%d power=%g corrupted=%t\n", r.radio.id, r.power, r.corrupted)
	}
	return b
}

// AppendState appends one radio's flags and in-flight reception count. The
// reception details live with their owning transmissions (see above);
// repeating them here would double-count without adding discrimination.
func (r *Radio) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "radio id=%d pos=%v enabled=%t carrier=%t transmitting=%t recs=%d\n",
		r.id, r.pos, r.enabled, r.carrierBusy, r.tx != nil, len(r.recs))
}

// AppendState appends the burst channel's Markov trajectory position: the
// current state, the next toggle time, and the episode count. The dwell-time
// generator's cursor is covered by the simulator's RNG stream dump.
func (g *GilbertElliott) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "gilbert bad=%t next=%d started=%t episodes=%d\n",
		g.bad, g.next, g.started, g.episodes)
}
