package phy

import (
	"fmt"

	"macaw/internal/sim"
)

// This file is the radio medium's side of warm-started forking (DESIGN.md
// §15). A freshly built medium adopts the authoritative state of a warmed
// twin — active transmissions and their receptions, counters, per-radio
// flags, noise-source switches, pool sizes — and re-arms each pending
// end-of-transmission event at its exact ordering key. Derived caches
// (gains, noise sums, carrier folds, audible lists) are rebuilt locally;
// the carrier refold reproduces the warmed values bit-identically because
// incremental fold extension and refolding sum the same terms in the same
// order.

// AdoptFrom copies w's mutable state into m, which must have been built
// identically (same topology, same attach order, same parameters). Frames in
// flight are shared — they are immutable once transmitted — but transmission
// and reception records are cloned so the twins never alias each other's
// bookkeeping. It fails closed when the two media are observably different
// shapes or when w carries state this fork path does not reproduce (a
// stateful noise model).
func (m *Medium) AdoptFrom(w *Medium) error {
	if len(m.radios) != len(w.radios) {
		return fmt.Errorf("phy: adopt: %d radios here vs %d in warm medium", len(m.radios), len(w.radios))
	}
	if _, ok := m.noise.(NoNoise); !ok {
		return fmt.Errorf("phy: adopt: stateful noise model %T not supported", m.noise)
	}
	if _, ok := w.noise.(NoNoise); !ok {
		return fmt.Errorf("phy: adopt: stateful noise model %T not supported", w.noise)
	}
	if len(m.sources) != len(w.sources) {
		return fmt.Errorf("phy: adopt: %d noise sources here vs %d in warm medium", len(m.sources), len(w.sources))
	}
	if len(m.active) != 0 {
		return fmt.Errorf("phy: adopt: medium already has %d active transmissions", len(m.active))
	}
	for i, r := range m.radios {
		wr := w.radios[i]
		if r.id != wr.id || r.pos != wr.pos {
			return fmt.Errorf("phy: adopt: radio %d is (%v,%v) here vs (%v,%v) in warm medium",
				i, r.id, r.pos, wr.id, wr.pos)
		}
	}

	// Per-radio flags. Receptions are re-linked below from the cloned
	// transmissions, so each radio's recs list starts empty.
	for i, r := range m.radios {
		wr := w.radios[i]
		r.enabled = wr.enabled
		r.carrierBusy = wr.carrierBusy
		r.tx = nil
		r.recs = r.recs[:0]
	}
	for i, ns := range m.sources {
		ns.on = w.sources[i].on
	}

	// Clone the active transmissions in active-list (summation) order,
	// sharing the immutable frames and re-arming each completion event at
	// its exact (when, prio, seq) key.
	m.active = m.active[:0]
	for _, wt := range w.active {
		t := m.allocTx()
		t.radio = m.radios[wt.radio.idx]
		t.f = wt.f
		t.end, t.idx, t.seq = wt.end, wt.idx, wt.seq
		t.radio.tx = t
		m.active = append(m.active, t)
		for _, wrec := range wt.rx {
			q := m.radios[wrec.radio.idx]
			rec := m.allocRec(q, wrec.power)
			rec.corrupted = wrec.corrupted
			rec.tx = t
			rec.pos = len(q.recs)
			q.recs = append(q.recs, rec)
			t.rx = append(t.rx, rec)
		}
		t.endEv = m.s.ReadoptCall(wt.endEv, endTxCall, m, t)
		if t.endEv.IsZero() {
			return fmt.Errorf("phy: adopt: transmission seq=%d from %v has no live end event", wt.seq, wt.radio.id)
		}
	}
	m.txSeq = w.txSeq
	m.counters = w.counters

	// Pool sizes are logical state (the inventory dumps them as lengths);
	// fresh records carry no other state.
	m.txFree = m.txFree[:0]
	for i := 0; i < len(w.txFree); i++ {
		m.txFree = append(m.txFree, &transmission{})
	}
	m.recFree = m.recFree[:0]
	for i := 0; i < len(w.recFree); i++ {
		m.recFree = append(m.recFree, &reception{})
	}

	// Rebuild derived state: audible lists from the adopted active set,
	// noise sums from the adopted source switches, and the carrier folds
	// from scratch — bit-identical to the warmed incremental folds.
	if m.indexed {
		for _, r := range m.radios {
			m.rebuildAudible(r)
		}
	}
	m.invalidateNoise()
	m.recomputeCarrier()
	return nil
}

// EndEventFor is a test hook reporting the scheduled completion handle of
// the radio's in-flight transmission (zero when idle).
func (r *Radio) EndEventFor() sim.Event {
	if r.tx == nil {
		return sim.Event{}
	}
	return r.tx.endEv
}
