package phy

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// recorder is a test Handler that logs everything it hears.
type recorder struct {
	received  []*frame.Frame
	corrupted []*frame.Frame
	carrier   []bool
}

func (h *recorder) RadioReceive(f *frame.Frame)   { h.received = append(h.received, f) }
func (h *recorder) RadioCarrier(busy bool)        { h.carrier = append(h.carrier, busy) }
func (h *recorder) RadioCorrupted(f *frame.Frame) { h.corrupted = append(h.corrupted, f) }

func newTestMedium(t *testing.T) (*sim.Simulator, *Medium) {
	t.Helper()
	s := sim.New(1)
	return s, New(s, DefaultParams())
}

func ctrl(ty frame.Type, src, dst frame.NodeID) *frame.Frame {
	return &frame.Frame{Type: ty, Src: src, Dst: dst, DataBytes: frame.DefaultDataBytes}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.BitrateBPS != 256000 {
		t.Errorf("bitrate = %d, want 256000", p.BitrateBPS)
	}
	// Capture distance ratio should be ~1.5 (paper: "a distance ratio of
	// ~1.5" for 10 dB).
	ratio := math.Pow(p.CaptureRatio(), 1/p.Gamma)
	if ratio < 1.4 || ratio > 1.55 {
		t.Errorf("capture distance ratio = %v, want ~1.47", ratio)
	}
	// Threshold equals the gain exactly at 10 ft.
	g := NearField{Gamma: p.Gamma, MinDist: p.MinDist}.Gain(geom.V(0, 0, 0), geom.V(10, 0, 0))
	if math.Abs(g-p.Threshold()) > 1e-12 {
		t.Errorf("threshold %v != gain at 10ft %v", p.Threshold(), g)
	}
}

func TestNearFieldMonotoneDecay(t *testing.T) {
	n := NearField{Gamma: 6, MinDist: 0.25}
	prev := math.Inf(1)
	for d := 0.5; d < 30; d += 0.5 {
		g := n.Gain(geom.V(0, 0, 0), geom.V(d, 0, 0))
		if g >= prev {
			t.Fatalf("gain not strictly decreasing at d=%v", d)
		}
		prev = g
	}
}

func TestNearFieldMinDistClamp(t *testing.T) {
	n := NearField{Gamma: 6, MinDist: 0.25}
	at0 := n.Gain(geom.V(0, 0, 0), geom.V(0, 0, 0))
	atClamp := n.Gain(geom.V(0, 0, 0), geom.V(0.25, 0, 0))
	if math.IsInf(at0, 1) || at0 != atClamp {
		t.Fatalf("MinDist clamp broken: %v vs %v", at0, atClamp)
	}
}

func TestCubeQuantizedUsesCubeCenter(t *testing.T) {
	inner := NearField{Gamma: 6, MinDist: 0.25}
	c := CubeQuantized{Inner: inner}
	src := geom.V(0, 0, 0)
	// Both points are in cube (5,0,0), so quantized gain must be equal.
	g1 := c.Gain(src, geom.V(5.1, 0.2, 0.3))
	g2 := c.Gain(src, geom.V(5.9, 0.8, 0.6))
	if g1 != g2 {
		t.Fatalf("points in the same cube got different gains: %v vs %v", g1, g2)
	}
	want := inner.Gain(geom.V(0.5, 0.5, 0.5), geom.V(5.5, 0.5, 0.5))
	if g1 != want {
		t.Fatalf("quantized gain %v, want gain between cube centers %v", g1, want)
	}
}

// Property: cube quantization perturbs gain by a bounded factor for
// building-scale distances.
func TestQuickCubeQuantizationBounded(t *testing.T) {
	inner := NearField{Gamma: 6, MinDist: 0.25}
	c := CubeQuantized{Inner: inner}
	f := func(x, y, z float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 3
			}
			return 2 + math.Abs(math.Mod(v, 20))
		}
		dst := geom.V(clamp(x), clamp(y), clamp(z))
		src := geom.V(0, 0, 0)
		exact := inner.Gain(src, dst)
		quant := c.Gain(src, dst)
		d := src.Dist(dst)
		// Worst-case distance perturbation is a half-diagonal per end.
		e := 2 * geom.MaxQuantizationError
		worst := math.Pow((d+e)/math.Max(d-e, 0.25), 6)
		return quant <= exact*worst*1.001 && quant >= exact/worst/1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanRange(t *testing.T) {
	p := BooleanRange(10)
	if p.Gain(geom.V(0, 0, 0), geom.V(10, 0, 0)) != 1 {
		t.Fatal("in-range pair has no gain")
	}
	if p.Gain(geom.V(0, 0, 0), geom.V(10.01, 0, 0)) != 0 {
		t.Fatal("out-of-range pair has gain")
	}
}

func TestCleanDeliveryInRange(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(6, 0, 6), bh)
	f := ctrl(frame.RTS, 1, 2)
	air := a.Transmit(f)
	if air != 937500*sim.Nanosecond {
		t.Fatalf("control airtime = %v", air)
	}
	s.RunAll()
	if len(bh.received) != 1 || bh.received[0] != f {
		t.Fatalf("b received %v", bh.received)
	}
	c := m.Counters()
	if c.Transmissions != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(20, 0, 6), bh)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatalf("out-of-range station received %v", bh.received)
	}
}

func TestOverhearingThirdParty(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	m.Attach(2, geom.V(6, 0, 6), &recorder{})
	ch := &recorder{}
	m.Attach(3, geom.V(3, 3, 6), ch)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(ch.received) != 1 {
		t.Fatalf("in-range overhearer got %d frames, want 1", len(ch.received))
	}
}

func TestCollisionAtReceiver(t *testing.T) {
	// Hidden-terminal geometry: A and C both in range of B but not of
	// each other; simultaneous transmissions collide at B.
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(8, 0, 6), bh)
	c := m.Attach(3, geom.V(16, 0, 6), nil)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	c.Transmit(ctrl(frame.RTS, 3, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatalf("collided frames delivered: %v", bh.received)
	}
	if got := m.Counters().Corrupted; got != 2 {
		t.Fatalf("corrupted = %d, want 2", got)
	}
	if len(bh.corrupted) != 2 {
		t.Fatalf("corruption observer saw %d, want 2", len(bh.corrupted))
	}
}

func TestLateStarterCorruptsOngoingReception(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(8, 0, 6), bh)
	c := m.Attach(3, geom.V(16, 0, 6), nil)
	a.Transmit(&frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512})
	// C starts mid-way through A's 16 ms data packet.
	s.After(8*sim.Millisecond, func() { c.Transmit(ctrl(frame.RTS, 3, 2)) })
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("reception survived mid-packet interference")
	}
}

func TestCaptureCloseTransmitterWins(t *testing.T) {
	// Receiver very close to A and far (but in range) from C: A's signal
	// exceeds C's by more than 10 dB, so A is captured cleanly.
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(2, 0, 6), bh) // 2 ft from A
	c := m.Attach(3, geom.V(9, 0, 6), nil)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	c.Transmit(ctrl(frame.RTS, 3, 2))
	s.RunAll()
	var fromA int
	for _, f := range bh.received {
		if f.Src == 1 {
			fromA++
		}
	}
	if fromA != 1 {
		t.Fatalf("capture failed: received %v", bh.received)
	}
}

func TestNoCaptureBelowTenDB(t *testing.T) {
	// Distance ratio < 1.47 means a power ratio < 10 dB: both lost.
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(5, 0, 6), bh)
	c := m.Attach(3, geom.V(11, 0, 6), nil) // 6 ft from B: ratio 1.2
	a.Transmit(ctrl(frame.RTS, 1, 2))
	c.Transmit(ctrl(frame.RTS, 3, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatalf("capture below 10 dB: %v", bh.received)
	}
}

func TestHalfDuplexTransmitterDeaf(t *testing.T) {
	s, m := newTestMedium(t)
	ah := &recorder{}
	a := m.Attach(1, geom.V(0, 0, 6), ah)
	b := m.Attach(2, geom.V(6, 0, 6), nil)
	a.Transmit(&frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512})
	s.After(1*sim.Millisecond, func() { b.Transmit(ctrl(frame.CTS, 2, 1)) })
	s.RunAll()
	if len(ah.received) != 0 {
		t.Fatalf("transmitting radio received %v", ah.received)
	}
}

func TestReceptionAbortedWhenReceiverTransmits(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	b := m.Attach(2, geom.V(6, 0, 6), bh)
	a.Transmit(&frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512})
	s.After(2*sim.Millisecond, func() { b.Transmit(ctrl(frame.RTS, 2, 1)) })
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("reception survived receiver's own transmission")
	}
	if m.Counters().Aborted == 0 {
		t.Fatal("no aborted reception counted")
	}
}

func TestCarrierSenseTransitions(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(6, 0, 6), bh)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.carrier) != 2 || bh.carrier[0] != true || bh.carrier[1] != false {
		t.Fatalf("carrier transitions = %v, want [true false]", bh.carrier)
	}
}

func TestCarrierNotSensedOutOfRange(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	ch := &recorder{}
	m.Attach(3, geom.V(25, 0, 6), ch)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(ch.carrier) != 0 {
		t.Fatalf("far station sensed carrier: %v", ch.carrier)
	}
}

func TestDisabledRadioSilent(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	b := m.Attach(2, geom.V(6, 0, 6), bh)
	b.SetEnabled(false)
	if b.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("disabled radio received a frame")
	}
	// A disabled transmitter radiates nothing.
	ah := &recorder{}
	a.SetHandler(ah)
	b.Transmit(ctrl(frame.RTS, 2, 1))
	s.RunAll()
	if len(ah.received) != 0 {
		t.Fatal("frame from disabled radio was delivered")
	}
}

func TestReenabledRadioHearsAgain(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	b := m.Attach(2, geom.V(6, 0, 6), bh)
	b.SetEnabled(false)
	b.SetEnabled(true)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 1 {
		t.Fatal("re-enabled radio did not hear")
	}
}

func TestMobilityChangesReachability(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	b := m.Attach(2, geom.V(30, 0, 6), bh)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("received while far away")
	}
	b.SetPos(geom.V(6, 0, 6))
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 1 {
		t.Fatal("did not receive after moving into range")
	}
}

func TestDestLossNoise(t *testing.T) {
	s, m := newTestMedium(t)
	m.SetNoise(DestLoss{P: 1.0})
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(6, 0, 6), bh)
	ch := &recorder{}
	m.Attach(3, geom.V(3, 3, 6), ch)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("DestLoss{1} delivered to destination")
	}
	if len(ch.received) != 1 {
		t.Fatal("DestLoss corrupted an overhear")
	}
	if m.Counters().NoiseDropped != 1 {
		t.Fatalf("NoiseDropped = %d, want 1", m.Counters().NoiseDropped)
	}
}

func TestUniformLossAffectsOverhears(t *testing.T) {
	s, m := newTestMedium(t)
	m.SetNoise(UniformLoss{P: 1.0})
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	ch := &recorder{}
	m.Attach(3, geom.V(3, 3, 6), ch)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(ch.received) != 0 {
		t.Fatal("UniformLoss{1} delivered")
	}
}

func TestRegionLoss(t *testing.T) {
	s, m := newTestMedium(t)
	m.SetNoise(RegionLoss{P: 1.0, InRegion: func(p geom.Vec3) bool { return p.X < 10 }})
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(6, 0, 6), bh) // inside region
	a.Transmit(ctrl(frame.RTS, 1, 2))
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("RegionLoss delivered inside region")
	}
}

func TestMultiNoise(t *testing.T) {
	n := MultiNoise{NoNoise{}, UniformLoss{P: 1.0}}
	if !n.Corrupts(sim.New(1).NewRand(), nil, nil) {
		t.Fatal("MultiNoise ignored a corrupting component")
	}
	n2 := MultiNoise{NoNoise{}, NoNoise{}}
	if n2.Corrupts(sim.New(1).NewRand(), nil, nil) {
		t.Fatal("MultiNoise corrupted with benign components")
	}
	m := New(sim.New(1), DefaultParams())
	m.SetNoise(nil)
	if m.noise == nil {
		t.Fatal("SetNoise(nil) left nil model")
	}
}

func TestNoiseSourceCorruptsOngoing(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(8, 0, 6), bh)
	ns := m.AddNoiseSource(geom.V(8, 1, 6), 1.0)
	a.Transmit(&frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512})
	s.After(4*sim.Millisecond, func() { ns.Set(true) })
	s.RunAll()
	if len(bh.received) != 0 {
		t.Fatal("reception survived adjacent noise source")
	}
	if !ns.On() {
		t.Fatal("noise source not on")
	}
	ns.Set(true) // idempotent
	ns.Set(false)
	if ns.On() {
		t.Fatal("noise source not off")
	}
}

func TestNoiseSourceRaisesCarrier(t *testing.T) {
	s, m := newTestMedium(t)
	bh := &recorder{}
	m.Attach(2, geom.V(8, 0, 6), bh)
	ns := m.AddNoiseSource(geom.V(8, 1, 6), 1.0)
	s.After(1*sim.Millisecond, func() { ns.Set(true) })
	s.Run(2 * sim.Millisecond)
	if len(bh.carrier) != 1 || !bh.carrier[0] {
		t.Fatalf("carrier = %v, want [true]", bh.carrier)
	}
}

func TestInRangePredicate(t *testing.T) {
	_, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	b := m.Attach(2, geom.V(6, 0, 6), nil)
	c := m.Attach(3, geom.V(30, 0, 6), nil)
	if !m.InRange(a, b) || m.InRange(a, c) {
		t.Fatal("InRange predicate wrong")
	}
}

func TestRangeIsSymmetric(t *testing.T) {
	// "our technology is symmetric: if a station A can hear a station B,
	// then station B can hear the station A".
	_, m := newTestMedium(t)
	radios := []*Radio{
		m.Attach(1, geom.V(0, 0, 12), nil),
		m.Attach(2, geom.V(6, 0, 6), nil),
		m.Attach(3, geom.V(13, 2, 6), nil),
		m.Attach(4, geom.V(20, 5, 12), nil),
	}
	for _, a := range radios {
		for _, b := range radios {
			if m.InRange(a, b) != m.InRange(b, a) {
				t.Fatalf("asymmetric range between %v and %v", a.ID(), b.ID())
			}
		}
	}
}

func TestTransmitWrongSrcPanics(t *testing.T) {
	_, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched src")
		}
	}()
	a.Transmit(ctrl(frame.RTS, 9, 2))
}

func TestDoubleTransmitPanics(t *testing.T) {
	_, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	a.Transmit(ctrl(frame.RTS, 1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for concurrent transmit")
		}
	}()
	a.Transmit(ctrl(frame.RTS, 1, 2))
}

func TestBackToBackTransmissionsBothDelivered(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	bh := &recorder{}
	m.Attach(2, geom.V(6, 0, 6), bh)
	air := a.Transmit(ctrl(frame.DS, 1, 2))
	s.After(air, func() { a.Transmit(&frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512}) })
	s.RunAll()
	if len(bh.received) != 2 {
		t.Fatalf("received %d frames, want 2 (DS then DATA)", len(bh.received))
	}
	if bh.received[0].Type != frame.DS || bh.received[1].Type != frame.DATA {
		t.Fatalf("order = %v, %v", bh.received[0].Type, bh.received[1].Type)
	}
}

func TestCountersAccumulate(t *testing.T) {
	s, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 6), nil)
	m.Attach(2, geom.V(6, 0, 6), &recorder{})
	for i := 0; i < 3; i++ {
		a.Transmit(ctrl(frame.RTS, 1, 2))
		s.RunAll()
	}
	c := m.Counters()
	if c.Transmissions != 3 || c.Delivered != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func BenchmarkMediumScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		n := n
		b.Run(fmt.Sprintf("stations%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New(1)
				m := New(s, DefaultParams())
				radios := make([]*Radio, n)
				for j := 0; j < n; j++ {
					radios[j] = m.Attach(frame.NodeID(j+1), geom.V(float64(j%8), float64(j/8), 6), &recorder{})
				}
				// A rolling pattern of overlapping transmissions.
				for j := 0; j < 64; j++ {
					tx := radios[j%n]
					at := sim.Duration(j) * 500 * sim.Microsecond
					s.At(at, func() {
						if !tx.Transmitting() {
							tx.Transmit(ctrl(frame.RTS, tx.ID(), frame.NodeID(1)))
						}
					})
				}
				s.RunAll()
			}
		})
	}
}
