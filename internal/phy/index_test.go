package phy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// The tests in this file validate the neighborhood index (DESIGN.md §10):
// the indexed medium must be bit-identical to the exhaustive one on every
// observable — deliveries, corruptions, carrier transitions, counters, and
// the raw carrier-sense energies — across random topologies, mobility,
// noise sources, and power cycling.

// scriptEvent is one externally driven medium event.
type scriptEvent struct {
	at    sim.Time
	kind  int // 0 = transmit, 1 = move, 2 = power, 3 = noise toggle
	radio int
	dst   frame.NodeID
	bytes uint16
	pos   geom.Vec3
	on    bool
	src   int // noise-source index
}

const (
	evTx = iota
	evMove
	evPower
	evNoise
)

// diffTrial describes one random (topology, script) pair.
type diffTrial struct {
	n       int
	pos     []geom.Vec3
	sources []geom.Vec3
	power   []float64
	events  []scriptEvent
	simSeed int64
}

// genTrial draws a random trial. Positions span several cutoff radii so
// neighborhoods are proper subsets of the station set, and the script mixes
// overlapping transmissions with mobility (including moves across the
// cutoff), power cycling, and noise-source toggles.
func genTrial(rng *rand.Rand) diffTrial {
	tr := diffTrial{
		n:       4 + rng.Intn(21),
		simSeed: rng.Int63(),
	}
	area := 40 + rng.Float64()*360 // up to ~3.5 cutoff radii across
	rpos := func() geom.Vec3 {
		return geom.V(rng.Float64()*area, rng.Float64()*area, rng.Float64()*20)
	}
	for i := 0; i < tr.n; i++ {
		tr.pos = append(tr.pos, rpos())
	}
	for i := 0; i < 2; i++ {
		tr.sources = append(tr.sources, rpos())
		tr.power = append(tr.power, 0.25+rng.Float64()*4)
	}
	nev := 40 + rng.Intn(40)
	horizon := sim.Time(2_000_000_000) // 2 s
	for i := 0; i < nev; i++ {
		ev := scriptEvent{
			at:    sim.Time(rng.Int63n(int64(horizon))),
			radio: rng.Intn(tr.n),
		}
		switch r := rng.Float64(); {
		case r < 0.55:
			ev.kind = evTx
			ev.dst = frame.NodeID(rng.Intn(tr.n) + 1)
			ev.bytes = uint16(30 + rng.Intn(512))
		case r < 0.75:
			ev.kind = evMove
			ev.pos = rpos()
		case r < 0.88:
			ev.kind = evPower
			ev.on = rng.Float64() < 0.6
		default:
			ev.kind = evNoise
			ev.src = rng.Intn(len(tr.sources))
			ev.on = rng.Float64() < 0.5
		}
		tr.events = append(tr.events, ev)
	}
	return tr
}

// diffWorld is one medium instance driven by a trial script.
type diffWorld struct {
	s       *sim.Simulator
	m       *Medium
	radios  []*Radio
	recs    []*recorder
	sources []*NoiseSource
}

func buildWorld(tr diffTrial, exhaustive bool) *diffWorld {
	w := &diffWorld{s: sim.New(tr.simSeed)}
	w.m = New(w.s, DefaultParams())
	w.m.SetExhaustive(exhaustive)
	w.m.SetNoise(UniformLoss{P: 0.15})
	for i := 0; i < tr.n; i++ {
		rec := &recorder{}
		w.recs = append(w.recs, rec)
		w.radios = append(w.radios, w.m.Attach(frame.NodeID(i+1), tr.pos[i], rec))
	}
	for i, p := range tr.sources {
		w.sources = append(w.sources, w.m.AddNoiseSource(p, tr.power[i]))
	}
	for _, ev := range tr.events {
		ev := ev
		w.s.At(ev.at, func() {
			r := w.radios[ev.radio]
			switch ev.kind {
			case evTx:
				if r.Transmitting() {
					return
				}
				f := &frame.Frame{Type: frame.DATA, Src: r.ID(), Dst: ev.dst, DataBytes: ev.bytes}
				r.Transmit(f)
			case evMove:
				r.SetPos(ev.pos)
			case evPower:
				r.SetEnabled(ev.on)
			case evNoise:
				w.sources[ev.src].Set(ev.on)
			}
		})
	}
	return w
}

// signature flattens a world's observable history into comparable strings.
func (w *diffWorld) signature() []string {
	var out []string
	for i, rec := range w.recs {
		line := fmt.Sprintf("radio %d rx:", i)
		for _, f := range rec.received {
			line += fmt.Sprintf(" %v>%v/%d", f.Src, f.Dst, f.DataBytes)
		}
		out = append(out, line)
		line = fmt.Sprintf("radio %d bad:", i)
		for _, f := range rec.corrupted {
			line += fmt.Sprintf(" %v>%v/%d", f.Src, f.Dst, f.DataBytes)
		}
		out = append(out, line)
		line = fmt.Sprintf("radio %d cs:", i)
		for _, b := range rec.carrier {
			line += fmt.Sprintf(" %v", b)
		}
		out = append(out, line)
		out = append(out, fmt.Sprintf("radio %d busy=%v enabled=%v carrier=%016x",
			i, w.radios[i].CarrierBusy(), w.radios[i].Enabled(),
			math.Float64bits(w.m.carrier[i])))
	}
	out = append(out, fmt.Sprintf("counters %+v", w.m.Counters()))
	return out
}

// TestIndexedMatchesExhaustive is the differential property test: the
// indexed and exhaustive media, driven by identical scripts over random
// topologies, must agree bit-for-bit on every observable.
func TestIndexedMatchesExhaustive(t *testing.T) {
	master := rand.New(rand.NewSource(0x1db5eed))
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		tr := genTrial(master)
		wi := buildWorld(tr, false)
		we := buildWorld(tr, true)
		if !wi.m.IndexEnabled() {
			t.Fatal("index not enabled under default params")
		}
		if we.m.IndexEnabled() {
			t.Fatal("exhaustive override did not disable the index")
		}
		wi.s.RunAll()
		we.s.RunAll()
		si, se := wi.signature(), we.signature()
		if len(si) != len(se) {
			t.Fatalf("trial %d: signature lengths differ: %d vs %d", trial, len(si), len(se))
		}
		for k := range si {
			if si[k] != se[k] {
				t.Fatalf("trial %d (n=%d): indexed and exhaustive media diverge:\nindexed:    %s\nexhaustive: %s",
					trial, tr.n, si[k], se[k])
			}
		}
	}
}

// TestIndexSurvivesPropagationSwap checks that swapping propagation models
// re-derives the index (BooleanRange certifies its own range; a bare
// GainFunc cannot, so the index must drop to exhaustive iteration).
func TestIndexSurvivesPropagationSwap(t *testing.T) {
	_, m := newTestMedium(t)
	if !m.IndexEnabled() {
		t.Fatal("default medium should be indexed")
	}
	m.SetPropagation(BooleanRange(25))
	if !m.IndexEnabled() {
		t.Fatal("BooleanRange certifies a range; index should stay enabled")
	}
	if m.cutoff != 25 {
		t.Fatalf("cutoff = %v, want 25", m.cutoff)
	}
	m.SetPropagation(GainFunc(func(a, b geom.Vec3) float64 { return 1 }))
	if m.IndexEnabled() {
		t.Fatal("a bare GainFunc cannot certify a range; index must disable")
	}
	m.SetPropagation(NewPropagation(DefaultParams()))
	if !m.IndexEnabled() {
		t.Fatal("restoring a Bounded model should re-enable the index")
	}
}

// TestGainClampedBelowFloor checks the negligibility-floor semantics: gains
// under the floor are stored and returned as exactly zero, so skipping
// their contributors is bit-identical to summing them.
func TestGainClampedBelowFloor(t *testing.T) {
	_, m := newTestMedium(t)
	a := m.Attach(1, geom.V(0, 0, 0), nil)
	b := m.Attach(2, geom.V(500, 0, 0), nil) // far beyond the ~102 ft cutoff
	c := m.Attach(3, geom.V(5, 0, 0), nil)
	if g := m.gain(a, b); g != 0 {
		t.Fatalf("gain beyond cutoff = %v, want exactly 0", g)
	}
	if g := m.gain(a, c); g <= 0 {
		t.Fatalf("in-range gain = %v, want positive", g)
	}
	// The floor sits well below every decision threshold.
	wantFloor := m.threshold * math.Pow(10, -DefaultParams().NegligibleDB/10)
	if m.floor != wantFloor {
		t.Fatalf("floor = %v, want %v", m.floor, wantFloor)
	}
}

// TestRangeForCertificates checks the Bounded implementations against their
// contracts: gain strictly below floor beyond the certified distance.
func TestRangeForCertificates(t *testing.T) {
	nf := NearField{Gamma: 6, MinDist: 0.25}
	d, ok := nf.RangeFor(1e-12)
	if !ok {
		t.Fatal("NearField.RangeFor returned !ok for positive floor")
	}
	for _, extra := range []float64{1e-9, 0.1, 3, 500} {
		g := nf.Gain(geom.V(0, 0, 0), geom.V(d+extra, 0, 0))
		if g >= 1e-12 {
			t.Fatalf("NearField gain %v at certified distance %v + %v not below floor", g, d, extra)
		}
	}
	cq := CubeQuantized{Inner: nf}
	dq, ok := cq.RangeFor(1e-12)
	if !ok {
		t.Fatal("CubeQuantized.RangeFor returned !ok")
	}
	if dq <= d {
		t.Fatalf("quantized certificate %v should widen the inner certificate %v", dq, d)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		// Random pair strictly farther apart than the certificate.
		a := geom.V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		n := math.Sqrt(dir.X*dir.X + dir.Y*dir.Y + dir.Z*dir.Z)
		if n == 0 {
			continue
		}
		scale := (dq + rng.Float64()*50) / n
		b := geom.V(a.X+dir.X*scale, a.Y+dir.Y*scale, a.Z+dir.Z*scale)
		if g := cq.Gain(a, b); g >= 1e-12 {
			t.Fatalf("CubeQuantized gain %v beyond certificate at dist %v", g, a.Dist(b))
		}
	}
	if _, ok := nf.RangeFor(0); ok {
		t.Fatal("RangeFor(0) should return !ok")
	}
	if _, ok := (CubeQuantized{Inner: GainFunc(func(_, _ geom.Vec3) float64 { return 1 })}).RangeFor(1); ok {
		t.Fatal("CubeQuantized over an unbounded inner model should return !ok")
	}
}

// nopHandler discards all indications; the allocation guard uses it so
// recorder bookkeeping does not count against the medium.
type nopHandler struct{}

func (nopHandler) RadioReceive(*frame.Frame) {}
func (nopHandler) RadioCarrier(bool)         {}

// TestSteadyStateAllocationFree is the allocation-regression guard: once
// pools and caches are warm, a full transmit/deliver cycle — including
// carrier transitions at every neighbor — must not allocate.
func TestSteadyStateAllocationFree(t *testing.T) {
	s := sim.New(1)
	m := New(s, DefaultParams())
	var radios []*Radio
	for i := 0; i < 8; i++ {
		radios = append(radios, m.Attach(frame.NodeID(i+1), geom.V(float64(i)*3, 0, 6), nopHandler{}))
	}
	f := &frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 256}
	cycle := func() {
		radios[0].Transmit(f)
		s.RunAll()
	}
	// Warm pools, gain cache, and slice capacities.
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state transmit cycle allocates %.2f times per run, want 0", avg)
	}
	// Overlapping transmissions (collision path) must also be clean.
	f2 := &frame.Frame{Type: frame.DATA, Src: 8, Dst: 7, DataBytes: 256}
	both := func() {
		radios[0].Transmit(f)
		radios[7].Transmit(f2)
		s.RunAll()
	}
	for i := 0; i < 4; i++ {
		both()
	}
	if avg := testing.AllocsPerRun(200, both); avg != 0 {
		t.Fatalf("steady-state collision cycle allocates %.2f times per run, want 0", avg)
	}
}

// TestAvgNeighborsBounded sanity-checks the index statistics: on a spread
// topology the mean neighborhood is a strict subset of the station set.
func TestAvgNeighborsBounded(t *testing.T) {
	s := sim.New(1)
	m := New(s, DefaultParams())
	rng := rand.New(rand.NewSource(9))
	const n = 60
	for i := 0; i < n; i++ {
		m.Attach(frame.NodeID(i+1), geom.V(rng.Float64()*600, rng.Float64()*600, 6), nil)
	}
	avg := m.AvgNeighbors()
	if avg < 1 || avg >= n {
		t.Fatalf("AvgNeighbors = %v, want within [1, %d)", avg, n)
	}
	m.SetExhaustive(true)
	if !m.indexed {
		t.Fatal("exhaustive override should keep index maintenance on")
	}
}
