package phy

import (
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/geom"
)

// NoiseModel decides whether an otherwise-clean reception is corrupted by
// ambient noise. The paper models intermittent noise "as a given probability
// that each packet (regardless of size) is not received cleanly at its
// intended destination" (§3.3.1).
type NoiseModel interface {
	// Corrupts reports whether the reception of f at rx is destroyed.
	// It is called once per otherwise-successful reception and may draw
	// from r.
	Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool
}

// NoNoise is the noise-free default.
type NoNoise struct{}

// Corrupts implements NoiseModel.
func (NoNoise) Corrupts(*rand.Rand, *Radio, *frame.Frame) bool { return false }

// DestLoss drops each packet at its intended destination with probability P,
// the exact model behind Table 4. Overheard copies at third parties are
// unaffected, matching "not received cleanly at its intended destination".
type DestLoss struct {
	P float64
}

// Corrupts implements NoiseModel.
func (n DestLoss) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	return rx.ID() == f.Dst && r.Float64() < n.P
}

// UniformLoss drops every reception (including overhears) with probability
// P; a harsher variant used for robustness testing.
type UniformLoss struct {
	P float64
}

// Corrupts implements NoiseModel.
func (n UniformLoss) Corrupts(r *rand.Rand, _ *Radio, _ *frame.Frame) bool {
	return r.Float64() < n.P
}

// RegionLoss drops receptions with probability P only at radios inside a
// spatial region — the Figure 11 electronic whiteboard is a noise source
// affecting cell C1, modeled as "a packet error rate of 0.01" there.
type RegionLoss struct {
	P        float64
	InRegion func(geom.Vec3) bool
}

// Corrupts implements NoiseModel.
func (n RegionLoss) Corrupts(r *rand.Rand, rx *Radio, _ *frame.Frame) bool {
	return n.InRegion != nil && n.InRegion(rx.Pos()) && r.Float64() < n.P
}

// MultiNoise combines several models; a reception is corrupted if any
// component corrupts it.
type MultiNoise []NoiseModel

// Corrupts implements NoiseModel.
func (m MultiNoise) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	for _, n := range m {
		if n.Corrupts(r, rx, f) {
			return true
		}
	}
	return false
}
