package phy

import (
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// NoiseModel decides whether an otherwise-clean reception is corrupted by
// ambient noise. The paper models intermittent noise "as a given probability
// that each packet (regardless of size) is not received cleanly at its
// intended destination" (§3.3.1).
type NoiseModel interface {
	// Corrupts reports whether the reception of f at rx is destroyed.
	// It is called once per otherwise-successful reception and may draw
	// from r.
	Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool
}

// NoNoise is the noise-free default.
type NoNoise struct{}

// Corrupts implements NoiseModel.
func (NoNoise) Corrupts(*rand.Rand, *Radio, *frame.Frame) bool { return false }

// DestLoss drops each packet at its intended destination with probability P,
// the exact model behind Table 4. Overheard copies at third parties are
// unaffected, matching "not received cleanly at its intended destination".
type DestLoss struct {
	P float64
}

// Corrupts implements NoiseModel.
func (n DestLoss) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	return rx.ID() == f.Dst && r.Float64() < n.P
}

// UniformLoss drops every reception (including overhears) with probability
// P; a harsher variant used for robustness testing.
type UniformLoss struct {
	P float64
}

// Corrupts implements NoiseModel.
func (n UniformLoss) Corrupts(r *rand.Rand, _ *Radio, _ *frame.Frame) bool {
	return r.Float64() < n.P
}

// RegionLoss drops receptions with probability P only at radios inside a
// spatial region — the Figure 11 electronic whiteboard is a noise source
// affecting cell C1, modeled as "a packet error rate of 0.01" there.
type RegionLoss struct {
	P        float64
	InRegion func(geom.Vec3) bool
}

// Corrupts implements NoiseModel.
func (n RegionLoss) Corrupts(r *rand.Rand, rx *Radio, _ *frame.Frame) bool {
	return n.InRegion != nil && n.InRegion(rx.Pos()) && r.Float64() < n.P
}

// LinkLoss drops receptions of frames from From at radio To with
// probability P — an asymmetric-link fault: the To→From direction is
// unaffected, so handshakes in which each direction matters (CTS returning
// to an RTS sender, ACK returning to a data sender) see one-way loss.
type LinkLoss struct {
	From, To frame.NodeID
	P        float64
}

// Corrupts implements NoiseModel.
func (n LinkLoss) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	return rx.ID() == n.To && f.Src == n.From && r.Float64() < n.P
}

// GilbertElliott is the classic two-state Markov burst-loss channel: the
// channel alternates between a Good state (loss probability PGood, usually
// zero) and a Bad state (loss probability PBad, usually near one), with
// exponentially distributed dwell times. Unlike DestLoss/UniformLoss the
// losses are temporally correlated — whole exchanges disappear during a bad
// episode — which is the regime where retry budgets and backoff state are
// actually stressed.
//
// The state trajectory is a pure function of the simulation clock and the
// model's own seeded generator: packet arrivals sample the trajectory but do
// not perturb it, so two runs with the same seed see identical episodes.
type GilbertElliott struct {
	s   *sim.Simulator
	rng *rand.Rand
	// PGood and PBad are the per-packet loss probabilities in each state.
	PGood, PBad float64
	// MeanGood and MeanBad are the mean dwell times of each state.
	MeanGood, MeanBad sim.Duration
	// DestOnly restricts losses to each frame's intended destination,
	// matching the paper's noise semantics; false corrupts overhears too.
	DestOnly bool

	bad      bool
	next     sim.Time
	started  bool
	episodes int
}

// NewGilbertElliott returns a burst-loss channel driven by s's clock. The
// dwell-time generator is drawn from the simulator so the episode schedule
// is reproducible per seed.
func NewGilbertElliott(s *sim.Simulator, pGood, pBad float64, meanGood, meanBad sim.Duration) *GilbertElliott {
	if meanGood <= 0 || meanBad <= 0 {
		panic("phy: non-positive Gilbert-Elliott dwell time")
	}
	return &GilbertElliott{
		s: s, rng: s.NewRand(),
		PGood: pGood, PBad: pBad,
		MeanGood: meanGood, MeanBad: meanBad,
		DestOnly: true,
	}
}

// Episodes reports how many bad-state episodes have begun so far.
func (g *GilbertElliott) Episodes() int { return g.episodes }

// Bad reports whether the channel is currently in the bad state (advancing
// the trajectory to now first).
func (g *GilbertElliott) Bad() bool { g.advance(); return g.bad }

// dwell draws an exponential dwell time for the current state.
func (g *GilbertElliott) dwell() sim.Duration {
	mean := g.MeanGood
	if g.bad {
		mean = g.MeanBad
	}
	d := sim.Duration(g.rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// advance walks the state trajectory up to the current simulation time.
func (g *GilbertElliott) advance() {
	if !g.started {
		g.started = true
		g.next = g.s.Now() + g.dwell()
	}
	for g.s.Now() >= g.next {
		g.bad = !g.bad
		if g.bad {
			g.episodes++
		}
		g.next += g.dwell()
	}
}

// Corrupts implements NoiseModel.
func (g *GilbertElliott) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	if g.DestOnly && rx.ID() != f.Dst {
		return false
	}
	g.advance()
	p := g.PGood
	if g.bad {
		p = g.PBad
	}
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}

// MultiNoise combines several models; a reception is corrupted if any
// component corrupts it.
type MultiNoise []NoiseModel

// Corrupts implements NoiseModel.
func (m MultiNoise) Corrupts(r *rand.Rand, rx *Radio, f *frame.Frame) bool {
	for _, n := range m {
		if n.Corrupts(r, rx, f) {
			return true
		}
	}
	return false
}
