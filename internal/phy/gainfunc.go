package phy

import "macaw/internal/geom"

// GainFunc adapts a plain function to the Propagation interface; tests and
// the naive boolean in-range model use it.
type GainFunc func(src, dst geom.Vec3) float64

// Gain implements Propagation.
func (f GainFunc) Gain(src, dst geom.Vec3) float64 { return f(src, dst) }

// BooleanRange returns the paper's "extremely simple model in which any two
// stations are either in-range or out-of-range": full power within rangeFt,
// nothing beyond.
func BooleanRange(rangeFt float64) Propagation {
	return booleanRange{rangeFt: rangeFt}
}

// booleanRange is the boolean in-range model. It is a named type (rather
// than a GainFunc closure) so it can certify a range bound and benefit from
// the medium's neighborhood index.
type booleanRange struct{ rangeFt float64 }

// Gain implements Propagation.
func (b booleanRange) Gain(src, dst geom.Vec3) float64 {
	if src.Dist(dst) <= b.rangeFt {
		return 1
	}
	return 0
}

// RangeFor implements Bounded: the gain is exactly zero beyond rangeFt.
func (b booleanRange) RangeFor(floor float64) (float64, bool) {
	if floor <= 0 {
		return 0, false
	}
	return b.rangeFt, true
}
