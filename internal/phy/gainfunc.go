package phy

import "macaw/internal/geom"

// GainFunc adapts a plain function to the Propagation interface; tests and
// the naive boolean in-range model use it.
type GainFunc func(src, dst geom.Vec3) float64

// Gain implements Propagation.
func (f GainFunc) Gain(src, dst geom.Vec3) float64 { return f(src, dst) }

// BooleanRange returns the paper's "extremely simple model in which any two
// stations are either in-range or out-of-range": full power within rangeFt,
// nothing beyond.
func BooleanRange(rangeFt float64) Propagation {
	return GainFunc(func(src, dst geom.Vec3) float64 {
		if src.Dist(dst) <= rangeFt {
			return 1
		}
		return 0
	})
}
