package netem

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"macaw/internal/frame"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// Broker is the air: it owns the radio physics and relays frames between
// joined stations with the medium's collision, capture and range semantics
// applied in (dilated) real time.
type Broker struct {
	conn   *net.UDPConn
	scale  float64
	s      *sim.Simulator
	medium *phy.Medium
	inject chan func()

	mu      sync.Mutex
	members map[frame.NodeID]*member
	// Logf, if set, receives broker activity lines.
	Logf func(format string, args ...any)
}

type member struct {
	addr  *net.UDPAddr
	radio *phy.Radio
}

// NewBroker listens on addr (e.g. "127.0.0.1:0") with the given time
// dilation and physical parameters.
func NewBroker(addr string, scale float64, params phy.Params) (*Broker, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netem: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netem: %w", err)
	}
	if scale <= 0 {
		scale = DefaultScale
	}
	s := sim.New(1)
	return &Broker{
		conn:    conn,
		scale:   scale,
		s:       s,
		medium:  phy.New(s, params),
		inject:  make(chan func(), 256),
		members: make(map[frame.NodeID]*member),
	}, nil
}

// Addr returns the broker's UDP address.
func (b *Broker) Addr() net.Addr { return b.conn.LocalAddr() }

func (b *Broker) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// Run serves until ctx is cancelled, then closes the socket and waits for
// the read loop to drain before returning.
func (b *Broker) Run(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.readLoop(ctx)
	}()
	b.s.RunRealtime(ctx, b.scale, b.inject)
	err := b.conn.Close()
	<-done
	return err
}

// readLoop moves datagrams from the socket into the simulation loop. Each
// read carries its own deadline so cancellation is observed within
// readTimeout even when the socket stays silent; malformed, oversized, or
// unattributable datagrams are dropped without ever stopping the loop.
func (b *Broker) readLoop(ctx context.Context) {
	for ctx.Err() == nil {
		buf, addr, err := readDeadline(b.conn)
		if err != nil {
			if timeoutErr(err) {
				continue
			}
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("netem broker: read: %v", err)
			}
			return
		}
		udpAddr, ok := addr.(*net.UDPAddr)
		if !ok {
			continue
		}
		if isControl(buf) {
			b.handleControl(ctx, buf, udpAddr)
			continue
		}
		f, err := frame.Unmarshal(buf)
		if err != nil {
			b.logf("broker: dropping undecodable datagram from %v: %v", addr, err)
			continue
		}
		select {
		case b.inject <- func() { b.transmit(f) }:
		case <-ctx.Done():
			return
		}
	}
}

// handleControl processes a JOIN and acknowledges it. Both the hand-off into
// the simulation loop and the wait for its completion select against ctx, so
// a cancelled broker whose inject queue has stopped draining cannot wedge
// the read loop.
func (b *Broker) handleControl(ctx context.Context, buf []byte, addr *net.UDPAddr) {
	if len(buf) > maxControl {
		b.logf("broker: oversized control (%d bytes) from %v", len(buf), addr)
		return
	}
	c, err := parseControl(buf)
	if err != nil || c.Op != "join" {
		b.logf("broker: bad control from %v: %v", addr, err)
		return
	}
	done := make(chan struct{})
	join := func() {
		defer close(done)
		b.mu.Lock()
		defer b.mu.Unlock()
		m, exists := b.members[c.ID]
		if exists {
			// Rejoin: update the return address only.
			m.addr = addr
			return
		}
		m = &member{addr: addr}
		m.radio = b.medium.Attach(c.ID, c.pos(), &relay{b: b, id: c.ID})
		b.members[c.ID] = m
		b.logf("broker: %v joined at %v from %v", c.ID, c.pos(), addr)
	}
	select {
	case b.inject <- join:
	case <-ctx.Done():
		return
	}
	select {
	case <-done:
	case <-ctx.Done():
		return
	}
	if _, err := b.conn.WriteToUDP(marshalControl(control{Op: "ok", ID: c.ID}), addr); err != nil {
		log.Printf("netem broker: ack to %v: %v", addr, err)
	}
}

// transmit radiates a station's frame into the medium.
func (b *Broker) transmit(f *frame.Frame) {
	b.mu.Lock()
	m := b.members[f.Src]
	b.mu.Unlock()
	if m == nil {
		b.logf("broker: frame from unjoined %v", f.Src)
		return
	}
	if m.radio.Transmitting() {
		// The station's clock ran ahead of ours; physically this would
		// be a garbled splice, so drop the second transmission.
		b.logf("broker: %v transmitted while still on air; dropped %v", f.Src, f)
		return
	}
	m.radio.Transmit(f)
}

// relay forwards medium deliveries to the owning station's socket.
type relay struct {
	b  *Broker
	id frame.NodeID
}

func (r *relay) RadioReceive(f *frame.Frame) {
	r.b.mu.Lock()
	m := r.b.members[r.id]
	r.b.mu.Unlock()
	if m == nil {
		return
	}
	buf, err := f.Marshal()
	if err != nil {
		log.Printf("netem broker: marshal: %v", err)
		return
	}
	if _, err := r.b.conn.WriteToUDP(buf, m.addr); err != nil {
		log.Printf("netem broker: relay to %v: %v", r.id, err)
	}
}

func (r *relay) RadioCarrier(bool) {}
