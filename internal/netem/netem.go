// Package netem runs the real protocol stacks over real UDP sockets: an
// "air broker" process owns the radio physics (the same internal/phy medium
// driven in real time), and station processes — each running the actual
// MACA/MACAW state machines against a socket-backed radio — exchange the
// binary wire frames of internal/frame through it.
//
// The broker and every station advance their simulators in lockstep with
// the wall clock (sim.RunRealtime). Real time is far coarser than the
// paper's 937.5 µs slot, so emulation runs time-dilated: a Scale of 50
// stretches the slot to ~47 ms, comfortably above OS timer jitter.
//
// Limitations (documented, by design): carrier sense is not propagated to
// stations (the CarrierSense MACAW option and CSMA need the simulator), and
// positions are fixed at join time.
package netem

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// DefaultScale is the time dilation factor used when none is given: one
// contention slot lasts ~47 ms of wall time.
const DefaultScale = 50.0

// EmuConfig returns the MAC timing configuration for live emulation: the
// paper's rates and sizes, but with a scheduling margin wide enough to
// absorb socket and OS-timer jitter on the station-broker-station path
// (a few wall milliseconds, i.e. a sizeable fraction of a simulated slot).
func EmuConfig() mac.Config {
	cfg := mac.DefaultConfig()
	cfg.Margin = 2 * sim.Millisecond
	cfg.CTSTimeoutSlots = 2
	return cfg
}

// control is the JSON control message exchanged next to raw frame bytes.
// Frames start with the codec magic 'M' (0x4D); control datagrams start
// with '{'.
type control struct {
	Op string `json:"op"` // "join" | "ok"
	ID frame.NodeID
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	Z  float64 `json:"z"`
}

func (c control) pos() geom.Vec3 { return geom.V(c.X, c.Y, c.Z) }

func marshalControl(c control) []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("netem: %v", err)) // struct of scalars cannot fail
	}
	return b
}

// isControl reports whether a datagram is a control message.
func isControl(b []byte) bool { return len(b) > 0 && b[0] == '{' }

func parseControl(b []byte) (control, error) {
	var c control
	if err := json.Unmarshal(b, &c); err != nil {
		return control{}, fmt.Errorf("netem: bad control datagram: %w", err)
	}
	return c, nil
}

// maxDatagram bounds a marshaled frame (512-byte payload plus header).
// Larger datagrams are truncated by the read and then rejected by the frame
// codec, so an oversized blast cannot allocate past this.
const maxDatagram = 2048

// maxControl bounds a JSON control message; the join struct marshals to
// well under this, so anything bigger is junk.
const maxControl = 512

// readTimeout is the per-read deadline on broker and station sockets: the
// longest a read loop can stay blind to context cancellation.
const readTimeout = 250 * time.Millisecond

// readDatagram reads one datagram into a fresh slice.
func readDatagram(conn net.PacketConn) ([]byte, net.Addr, error) {
	buf := make([]byte, maxDatagram)
	n, addr, err := conn.ReadFrom(buf)
	if err != nil {
		return nil, nil, err
	}
	return buf[:n], addr, nil
}

// readDeadline reads one datagram with the per-read deadline applied.
func readDeadline(conn *net.UDPConn) ([]byte, net.Addr, error) {
	if err := conn.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
		return nil, nil, err
	}
	return readDatagram(conn)
}

// timeoutErr reports whether err is a read-deadline expiry (retry) rather
// than a real socket failure (stop).
func timeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
