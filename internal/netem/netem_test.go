package netem

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
)

// emuConfig shortens timers for wall-clock testing: the paper's bitrate
// with a dilation that puts one slot at ~20 real milliseconds.
const testScale = 20.0

func startBroker(t *testing.T, ctx context.Context) *Broker {
	t.Helper()
	b, err := NewBroker("127.0.0.1:0", testScale, phy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	go b.Run(ctx)
	return b
}

func startStation(t *testing.T, ctx context.Context, b *Broker, id frame.NodeID, pos geom.Vec3) *Station {
	t.Helper()
	st, err := NewStation(b.Addr().String(), id, pos, testScale, EmuConfig(),
		func(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) })
	if err != nil {
		t.Fatal(err)
	}
	go st.Run(ctx)
	return st
}

func TestLiveExchangeOverUDP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := startBroker(t, ctx)

	var delivered, sent atomic.Int32
	a := startStation(t, ctx, b, 1, geom.V(0, 0, 6))
	recv := startStation(t, ctx, b, 2, geom.V(6, 0, 6))
	recv.Deliver = func(src frame.NodeID, payload []byte) {
		if src == 1 && string(payload) == "over the air" {
			delivered.Add(1)
		}
	}
	a.Sent = func(*mac.Packet) { sent.Add(1) }

	for i := 0; i < 3; i++ {
		a.Enqueue(&mac.Packet{Dst: 2, Size: frame.DefaultDataBytes, Payload: []byte("over the air")})
	}

	// Each full exchange is ~20ms simulated = ~0.4s at scale 20.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() == 3 && sent.Load() == 3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if delivered.Load() != 3 || sent.Load() != 3 {
		t.Fatalf("delivered=%d sent=%d after real-time run", delivered.Load(), sent.Load())
	}
	st := a.MAC().Stats()
	if st.RTSSent == 0 || st.DSSent == 0 {
		t.Fatalf("the live exchange did not use the MACAW pattern: %+v", st)
	}
}

func TestOutOfRangeStationHearsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := startBroker(t, ctx)

	var overheard, delivered atomic.Int32
	a := startStation(t, ctx, b, 1, geom.V(0, 0, 6))
	near := startStation(t, ctx, b, 2, geom.V(6, 0, 6))
	far := startStation(t, ctx, b, 3, geom.V(50, 0, 6))
	near.Deliver = func(frame.NodeID, []byte) { delivered.Add(1) }
	far.Deliver = func(frame.NodeID, []byte) { overheard.Add(1) }

	a.Enqueue(&mac.Packet{Dst: 2, Size: frame.DefaultDataBytes, Payload: []byte("x")})

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && delivered.Load() == 0 {
		time.Sleep(50 * time.Millisecond)
	}
	if delivered.Load() == 0 {
		t.Fatal("in-range delivery never happened")
	}
	time.Sleep(200 * time.Millisecond)
	if overheard.Load() != 0 {
		t.Fatal("out-of-range station received data")
	}
}

func TestControlCodec(t *testing.T) {
	c := control{Op: "join", ID: 7, X: 1, Y: 2, Z: 3}
	b := marshalControl(c)
	if !isControl(b) {
		t.Fatal("control not recognized")
	}
	got, err := parseControl(b)
	if err != nil || got != c {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := parseControl([]byte("{nonsense")); err == nil {
		t.Fatal("bad control accepted")
	}
	f := &frame.Frame{Type: frame.RTS, Src: 1, Dst: 2}
	fb, _ := f.Marshal()
	if isControl(fb) {
		t.Fatal("frame misclassified as control")
	}
}

// TestGracefulShutdown: cancelling the context must return both Run loops
// promptly — sockets closed, read loops drained — not leave them blocked in
// a read forever.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := startBroker(t, ctx)
	st, err := NewStation(b.Addr().String(), 1, geom.V(0, 0, 6), testScale, EmuConfig(),
		func(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) })
	if err != nil {
		t.Fatal(err)
	}
	stDone := make(chan error, 1)
	go func() { stDone <- st.Run(ctx) }()

	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-stDone:
	case <-time.After(5 * time.Second):
		t.Fatal("station Run did not return after cancel")
	}
	// The broker socket must actually be closed: a fresh join gets no ack.
	if _, err := NewStation(b.Addr().String(), 2, geom.V(0, 0, 6), testScale, EmuConfig(),
		func(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) }); err == nil {
		t.Fatal("join succeeded against a shut-down broker")
	}
}

// TestBrokerSurvivesJunkDatagrams: malformed frames, truncated joins, and
// oversized blasts must be dropped without killing the read loop — a
// legitimate join afterwards still succeeds.
func TestBrokerSurvivesJunkDatagrams(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := startBroker(t, ctx)

	raddr, err := net.ResolveUDPAddr("udp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := [][]byte{
		{},                                       // empty
		{0x00, 0x01, 0x02},                       // not control, not a frame
		[]byte("{nonsense"),                      // malformed control
		[]byte(`{"op":"bogus"}`),                 // unknown op
		bytes.Repeat([]byte{'{'}, 4*maxDatagram), // oversized control blast
		bytes.Repeat([]byte{'M'}, 4*maxDatagram), // oversized frame blast
	}
	if f, _ := (&frame.Frame{Type: frame.RTS, Src: 1, Dst: 2}).Marshal(); len(f) > 4 {
		junk = append(junk, f[:len(f)-3]) // truncated real frame
	}
	for _, d := range junk {
		if _, err := conn.Write(d); err != nil {
			t.Fatal(err)
		}
	}

	// The broker must still be serving: a real join succeeds.
	st, err := NewStation(b.Addr().String(), 9, geom.V(0, 0, 6), testScale, EmuConfig(),
		func(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) })
	if err != nil {
		t.Fatalf("join after junk barrage failed: %v", err)
	}
	st.conn.Close()
}

func TestRejoinUpdatesAddress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := startBroker(t, ctx)
	// Join the same id twice from two sockets; the second must win.
	s1 := startStation(t, ctx, b, 1, geom.V(0, 0, 6))
	_ = s1
	s2, err := NewStation(b.Addr().String(), 1, geom.V(0, 0, 6), testScale, EmuConfig(),
		func(env *mac.Env) mac.MAC { return macaw.New(env, macaw.DefaultOptions()) })
	if err != nil {
		t.Fatalf("rejoin failed: %v", err)
	}
	defer s2.conn.Close()
}
