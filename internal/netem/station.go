package netem

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// Station runs a real MAC protocol instance against a socket-backed radio.
type Station struct {
	id     frame.NodeID
	conn   *net.UDPConn
	scale  float64
	s      *sim.Simulator
	inject chan func()
	radio  *SocketRadio
	mac    mac.MAC

	// Deliver receives data payloads handed up by the MAC.
	Deliver func(src frame.NodeID, payload []byte)
	// Sent is invoked when a queued packet completes.
	Sent func(p *mac.Packet)
}

// SocketRadio implements mac.Radio over a UDP connection to the broker.
type SocketRadio struct {
	st      *Station
	handler phy.Handler
	txUntil sim.Time
	bitrate int
}

// ID implements mac.Radio.
func (r *SocketRadio) ID() frame.NodeID { return r.st.id }

// Transmit implements mac.Radio: the frame is shipped to the broker, which
// applies the physics; locally only the airtime bookkeeping is kept.
func (r *SocketRadio) Transmit(f *frame.Frame) sim.Duration {
	air := f.Airtime(r.bitrate)
	if r.Transmitting() {
		panic(fmt.Sprintf("netem: %v transmitting while already transmitting", r.st.id))
	}
	buf, err := f.Marshal()
	if err != nil {
		panic(fmt.Sprintf("netem: marshal: %v", err))
	}
	if _, err := r.st.conn.Write(buf); err != nil {
		log.Printf("netem station %v: send: %v", r.st.id, err)
	}
	r.txUntil = r.st.s.Now() + air
	return air
}

// Transmitting implements mac.Radio.
func (r *SocketRadio) Transmitting() bool { return r.st.s.Now() < r.txUntil }

// CarrierBusy implements mac.Radio. Carrier state is not propagated over
// the emulation link; protocols that depend on it (CSMA, the CarrierSense
// option) belong in the simulator.
func (r *SocketRadio) CarrierBusy() bool { return false }

// Enabled implements mac.Radio.
func (r *SocketRadio) Enabled() bool { return true }

// SetHandler implements mac.Radio.
func (r *SocketRadio) SetHandler(h phy.Handler) { r.handler = h }

// NewStation dials the broker, joins as id at pos, and builds the MAC with
// buildMAC (e.g. a closure around macaw.New). The returned station is ready
// once the broker acknowledged the join.
func NewStation(brokerAddr string, id frame.NodeID, pos geom.Vec3, scale float64, cfg mac.Config,
	buildMAC func(env *mac.Env) mac.MAC) (*Station, error) {

	if scale <= 0 {
		scale = DefaultScale
	}
	raddr, err := net.ResolveUDPAddr("udp", brokerAddr)
	if err != nil {
		return nil, fmt.Errorf("netem: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("netem: %w", err)
	}
	st := &Station{
		id:     id,
		conn:   conn,
		scale:  scale,
		s:      sim.New(int64(id)),
		inject: make(chan func(), 256),
	}
	st.radio = &SocketRadio{st: st, bitrate: cfg.BitrateBPS}
	env := &mac.Env{
		Sim:   st.s,
		Radio: st.radio,
		Rand:  st.s.NewRand(),
		Cfg:   cfg,
		Callbacks: mac.Callbacks{
			Deliver: func(src frame.NodeID, payload []byte) {
				if st.Deliver != nil {
					st.Deliver(src, payload)
				}
			},
			Sent: func(p *mac.Packet) {
				if st.Sent != nil {
					st.Sent(p)
				}
			},
		},
	}
	st.mac = buildMAC(env)

	// Join and wait for the acknowledgement.
	if _, err := conn.Write(marshalControl(control{Op: "join", ID: id, X: pos.X, Y: pos.Y, Z: pos.Z})); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netem: join: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		buf, _, err := readDatagram(conn)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("netem: waiting for join ack: %w", err)
		}
		if !isControl(buf) {
			continue
		}
		c, err := parseControl(buf)
		if err == nil && c.Op == "ok" && c.ID == id {
			break
		}
	}
	conn.SetReadDeadline(time.Time{})
	return st, nil
}

// MAC returns the protocol instance (for stats).
func (st *Station) MAC() mac.MAC { return st.mac }

// Enqueue submits a data packet for transmission; safe to call from any
// goroutine.
func (st *Station) Enqueue(p *mac.Packet) {
	st.inject <- func() { st.mac.Enqueue(p) }
}

// Run drives the station until ctx is cancelled, then closes the socket and
// waits for the read loop to drain before returning.
func (st *Station) Run(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.readLoop(ctx)
	}()
	st.s.RunRealtime(ctx, st.scale, st.inject)
	err := st.conn.Close()
	<-done
	return err
}

func (st *Station) readLoop(ctx context.Context) {
	for ctx.Err() == nil {
		buf, _, err := readDeadline(st.conn)
		if err != nil {
			if timeoutErr(err) {
				continue
			}
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("netem station %v: read: %v", st.id, err)
			}
			return
		}
		if isControl(buf) {
			continue
		}
		f, err := frame.Unmarshal(buf)
		if err != nil {
			log.Printf("netem station %v: bad frame: %v", st.id, err)
			continue
		}
		select {
		case st.inject <- func() {
			if st.radio.handler != nil && !st.radio.Transmitting() {
				st.radio.handler.RadioReceive(f)
			}
		}:
		case <-ctx.Done():
			return
		}
	}
}
