package sim

import "testing"

// TestFiredAndMaxQueued pins the engine cost counters the metrics snapshot
// reports: Fired counts callbacks actually dispatched, MaxQueued is the
// high-water mark of the pending-event heap.
func TestFiredAndMaxQueued(t *testing.T) {
	s := New(1)
	if s.Fired() != 0 || s.MaxQueued() != 0 {
		t.Fatalf("fresh simulator: fired=%d maxq=%d", s.Fired(), s.MaxQueued())
	}
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i), func() { n++ })
	}
	if s.MaxQueued() != 5 {
		t.Errorf("maxq = %d after 5 schedules, want 5", s.MaxQueued())
	}
	s.Run(Time(10))
	if n != 5 {
		t.Fatalf("ran %d callbacks", n)
	}
	if s.Fired() != 5 {
		t.Errorf("fired = %d, want 5", s.Fired())
	}
	if s.MaxQueued() != 5 {
		t.Errorf("maxq = %d after run, want 5 (high-water, not current)", s.MaxQueued())
	}
	// A cancelled event still counts toward the high-water mark but must not
	// count as fired.
	ev := s.At(Time(20), func() { n++ })
	ev.Cancel()
	s.Run(Time(30))
	if s.Fired() != 5 {
		t.Errorf("fired = %d after cancelled event, want 5", s.Fired())
	}
}
