// Package sim provides the discrete-event simulation engine underlying the
// MACAW reproduction.
//
// The engine is deliberately minimal and deterministic: time is an integer
// number of nanoseconds, events fire in (time, insertion) order, and all
// randomness flows through seeded generators obtained from the Simulator so
// that a run is a pure function of its configuration and seed.
//
// Scheduled callbacks are held in pooled event records: a fired or discarded
// record goes onto a per-simulator free list and is reused by the next
// At/After call, so steady-state simulation does not allocate one object per
// event. The Event values handed to callers are seq-validated handles that
// keep behaving exactly like a reference to their original event (When,
// Cancel, Cancelled) even after the underlying record has been recycled.
// The free list is per-simulator rather than a sync.Pool: a Simulator is
// single-threaded by contract, and keeping reuse local preserves determinism
// and avoids cross-run contention when many simulators run in parallel.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulation time in nanoseconds. It is kept distinct
// from time.Duration to make it impossible to accidentally mix wall-clock
// durations into the simulation.
type Duration = Time

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a simulation Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a pooled scheduled-callback record. seq doubles as the record's
// incarnation: it is unique per scheduling and zeroed when the record is
// recycled, so stale handles can tell that their event is gone.
type event struct {
	when Time
	prio int
	seq  uint64
	fn   func()
	// callFn/argA/argB are the closure-free alternative to fn (see
	// AtPriorityCall): the function value and its arguments ride in the
	// pooled record, so scheduling does not allocate a closure.
	callFn     func(a, b any)
	argA, argB any
	cancelled  bool
	index      int // position in the heap, -1 once popped
	s          *Simulator
}

// Event is a handle to a scheduled callback. The zero Event refers to no
// event; non-zero handles are created exclusively through Simulator.At,
// After and AtPriority. Handles stay safe to use after their event has
// fired: When keeps reporting the scheduled time, Cancel becomes a no-op on
// the simulator (but is still remembered by the handle), and Cancelled
// keeps answering for this event even if the underlying record has been
// recycled for a later one.
type Event struct {
	e   *event
	seq uint64
	// when is snapshotted at scheduling time so the handle can answer
	// When() after the record is recycled.
	when Time
	// cancelled records Cancel calls issued through this handle, so
	// Cancelled() stays truthful once the record's own flag is gone.
	cancelled bool
}

// IsZero reports whether the handle is the zero Event (never scheduled, or
// explicitly cleared by assigning Event{}).
func (r *Event) IsZero() bool { return r == nil || r.e == nil }

// live reports whether the handle still refers to the record's current
// incarnation (scheduled and not yet fired or discarded).
func (r *Event) live() bool { return r != nil && r.e != nil && r.e.seq == r.seq }

// When reports the time at which the event fires (or fired). The zero Event
// reports 0.
func (r *Event) When() Time {
	if r == nil {
		return 0
	}
	return r.when
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op; cancelling the zero Event is
// a no-op too.
func (r *Event) Cancel() {
	if r == nil || r.e == nil {
		return
	}
	r.cancelled = true
	if r.e.seq == r.seq && !r.e.cancelled {
		r.e.cancelled = true
		r.e.s.ncancelled++
	}
}

// Cancelled reports whether Cancel has been called on the event through
// this handle (or, while the event is still pending, through any handle).
func (r *Event) Cancelled() bool {
	if r == nil {
		return false
	}
	if r.e == nil {
		return r.cancelled
	}
	if r.e.seq == r.seq {
		return r.e.cancelled
	}
	return r.cancelled
}

// eventHeap is a hand-rolled binary min-heap ordered by eventLess. It
// replaces container/heap to keep comparisons and sifts free of interface
// dispatch — the queue is the simulator's innermost loop. Because eventLess
// is a total order (seq is unique), the pop sequence is independent of the
// heap's internal layout, so this substitution cannot change a run.
type eventHeap []*event

// eventLess orders events by (time, priority, insertion).
func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// heapPush inserts e and sifts it up to its place.
func (s *Simulator) heapPush(e *event) {
	h := append(s.queue, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = e
	e.index = i
	s.queue = h
	if len(h) > s.maxQueue {
		s.maxQueue = len(h)
	}
}

// siftDown restores the heap property below i, assuming s.queue[i] is the
// only possibly-misplaced element.
func (s *Simulator) siftDown(i int) {
	h := s.queue
	n := len(h)
	e := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(h[r], h[c]) {
			c = r
		}
		if !eventLess(h[c], e) {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = e
	e.index = i
}

// heapPop removes and returns the earliest event.
func (s *Simulator) heapPop() *event {
	h := s.queue
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.queue = h[:n]
	if n > 0 {
		s.queue[0] = last
		s.siftDown(0)
	}
	top.index = -1
	return top
}

// compactMin is the queue length below which purge never bothers to compact:
// small heaps are cheap to carry and the rebuild would dominate.
const compactMin = 64

// Simulator owns the event queue and the simulation clock.
type Simulator struct {
	now        Time
	queue      eventHeap
	seq        uint64
	seed       int64
	streams    int64
	rng        *rand.Rand
	stopped    bool
	free       []*event          // recycled event records
	ncancelled int               // cancelled events still sitting in the queue
	nfired     uint64            // events fired by Step over the simulator's lifetime
	maxQueue   int               // high-water mark of the event queue length
	sources    []*countingSource // every RNG source handed out, in creation order
}

// New returns a Simulator whose randomness derives from seed.
func New(seed int64) *Simulator {
	s := &Simulator{seed: seed}
	src := &countingSource{src: rand.NewSource(seed).(rand64), streamNo: 0}
	s.sources = append(s.sources, src)
	s.rng = rand.New(src)
	return s
}

// Now reports the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Seed reports the seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Rand returns the simulator's primary random number generator. Callers that
// need isolated, reproducible streams should prefer NewRand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// NewRand returns a fresh generator whose seed is derived deterministically
// from the simulator seed and the number of streams created so far. Giving
// each station its own stream keeps per-station behaviour stable when
// unrelated parts of the configuration change.
func (s *Simulator) NewRand() *rand.Rand {
	s.streams++
	// SplitMix-style scramble so consecutive stream indices land far apart.
	z := uint64(s.seed) + uint64(s.streams)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	src := &countingSource{src: rand.NewSource(int64(z)).(rand64), streamNo: s.streams}
	s.sources = append(s.sources, src)
	return rand.New(src)
}

// SetNextStream positions the stream counter so the next NewRand call
// produces stream number k (1-based; a fresh simulator's first NewRand is
// stream 1). Shard runners use it to rebuild a subset of a larger
// simulation with the exact generators the monolithic run would have handed
// out: a component's stations draw the same streams they would draw in the
// full building, so their random choices — and therefore their entire event
// histories — are bit-identical. k must be at least 1.
func (s *Simulator) SetNextStream(k int64) {
	if k < 1 {
		panic("sim: stream numbers start at 1")
	}
	s.streams = k - 1
}

// alloc takes an event record off the free list, or makes one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{s: s}
}

// recycle marks a popped or discarded record dead (stale handles see a seq
// mismatch), drops its closure, and returns it to the free list.
func (s *Simulator) recycle(e *event) {
	e.seq = 0
	e.fn = nil
	e.callFn = nil
	e.argA, e.argB = nil, nil
	s.free = append(s.free, e)
}

// At schedules fn to run at time t with default (zero) priority.
// Scheduling in the past panics: such an event would silently corrupt
// causality.
func (s *Simulator) At(t Time, fn func()) Event {
	return s.AtPriority(t, 0, fn)
}

// AtPriority schedules fn to run at time t. Events at the same instant fire
// in ascending priority order (FIFO within a priority class). Physical-layer
// completions use negative priorities so that a station's same-instant
// protocol timers always observe frames that finished "now" — exactly the
// ordering a real receiver sees, where decoding completes before any local
// decision taken at the same moment.
func (s *Simulator) AtPriority(t Time, prio int, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	e := s.alloc()
	e.when, e.prio, e.seq, e.fn, e.cancelled = t, prio, s.seq, fn, false
	s.heapPush(e)
	return Event{e: e, seq: e.seq, when: t}
}

// AtPriorityCall schedules fn(a, b) at time t with the given priority — the
// allocation-free twin of AtPriority. The function value and its arguments
// are stored in the pooled event record instead of a heap-allocated closure,
// so hot paths that schedule millions of callbacks (the phy layer's
// completions and delivery notifications) do not allocate per event. fn
// should be a package-level function or another long-lived value; a and b
// carry whatever it needs (either may be nil).
func (s *Simulator) AtPriorityCall(t Time, prio int, fn func(a, b any), a, b any) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	e := s.alloc()
	e.when, e.prio, e.seq, e.cancelled = t, prio, s.seq, false
	e.callFn, e.argA, e.argB = fn, a, b
	s.heapPush(e)
	return Event{e: e, seq: e.seq, when: t}
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Stop makes the current Run call return after the in-flight event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Fired reports how many events Step has executed since the simulator was
// created — the engine-level cost counter the metrics exporter snapshots.
func (s *Simulator) Fired() uint64 { return s.nfired }

// MaxQueued reports the event queue's high-water mark (including cancelled
// events awaiting purge).
func (s *Simulator) MaxQueued() int { return s.maxQueue }

// NextEventTime reports the firing time of the earliest live (uncancelled)
// pending event. ok is false when nothing is scheduled — the introspection a
// liveness watchdog needs to tell "quiet until t" from "wedged forever".
func (s *Simulator) NextEventTime() (t Time, ok bool) {
	s.purge()
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].when, true
}

// purge discards cancelled events from the head of the queue so that
// queue[0], when present, is always a live event; when cancelled events
// outnumber live ones it compacts the whole heap, so long runs with many
// cancelled timers do not bloat Pending() or per-operation heap costs.
func (s *Simulator) purge() {
	for len(s.queue) > 0 && s.queue[0].cancelled {
		e := s.heapPop()
		s.ncancelled--
		s.recycle(e)
	}
	if s.ncancelled > len(s.queue)/2 && len(s.queue) >= compactMin {
		s.compact()
	}
}

// compact removes every cancelled event from the queue and re-establishes
// the heap invariant. Because (when, prio, seq) is a total order, the pop
// sequence of the surviving events is unchanged: compaction is invisible to
// the simulation.
func (s *Simulator) compact() {
	kept := s.queue[:0]
	for _, e := range s.queue {
		if e.cancelled {
			s.ncancelled--
			s.recycle(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	for i, e := range s.queue {
		e.index = i
	}
	// Floyd heapify: O(n) rebuild of the heap property.
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Step fires the single earliest pending event, skipping cancelled ones.
// It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	s.purge()
	if len(s.queue) == 0 {
		return false
	}
	e := s.heapPop()
	s.now = e.when
	s.nfired++
	fn, callFn, a, b := e.fn, e.callFn, e.argA, e.argB
	s.recycle(e)
	if fn != nil {
		fn()
	} else {
		callFn(a, b)
	}
	return true
}

// Run processes events in order until the queue is empty, the clock passes
// until, or Stop is called. Events scheduled exactly at until still fire.
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		s.purge()
		if len(s.queue) == 0 {
			break
		}
		if s.queue[0].when > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll processes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunRealtime advances the simulation in lockstep with the wall clock:
// events fire when their simulated time arrives on the (scaled) real clock,
// and external work — e.g. frames arriving on a socket — is injected through
// inject and executed at the wall-mapped current time. scale stretches
// simulated time (scale 2 runs at half speed; protocols with sub-millisecond
// slots need scale >> 1 to survive OS timer jitter). RunRealtime returns
// when ctx is cancelled.
//
// The emulation layer (internal/netem) drives live protocol stacks with
// this; the discrete-event Run remains the tool for experiments.
func (s *Simulator) RunRealtime(ctx context.Context, scale float64, inject <-chan func()) {
	if scale <= 0 {
		scale = 1
	}
	start := time.Now()
	simStart := s.now
	wallFor := func(t Time) time.Time {
		return start.Add(time.Duration(float64(t-simStart) * scale))
	}
	simNow := func() Time {
		return simStart + Time(float64(time.Since(start))/scale)
	}
	for {
		var due <-chan time.Time
		var timer *time.Timer
		s.purge()
		if len(s.queue) > 0 {
			d := time.Until(wallFor(s.queue[0].when))
			if d <= 0 {
				s.Step()
				continue
			}
			timer = time.NewTimer(d)
			due = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return
		case fn, ok := <-inject:
			if timer != nil {
				timer.Stop()
			}
			if !ok {
				return
			}
			if t := simNow(); t > s.now {
				s.now = t
			}
			fn()
		case <-due:
			s.Step()
		}
	}
}
