// Package sim provides the discrete-event simulation engine underlying the
// MACAW reproduction.
//
// The engine is deliberately minimal and deterministic: time is an integer
// number of nanoseconds, events fire in (time, insertion) order, and all
// randomness flows through seeded generators obtained from the Simulator so
// that a run is a pure function of its configuration and seed.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulation time in nanoseconds. It is kept distinct
// from time.Duration to make it impossible to accidentally mix wall-clock
// durations into the simulation.
type Duration = Time

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a simulation Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback. The zero Event is not valid; events are
// created exclusively through Simulator.At and Simulator.After.
type Event struct {
	when      Time
	prio      int
	seq       uint64
	fn        func()
	cancelled bool
	index     int // position in the heap, -1 once popped
}

// When reports the time at which the event fires (or would have fired).
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the simulation clock.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	seed    int64
	streams int64
	rng     *rand.Rand
	stopped bool
}

// New returns a Simulator whose randomness derives from seed.
func New(seed int64) *Simulator {
	return &Simulator{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Seed reports the seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Rand returns the simulator's primary random number generator. Callers that
// need isolated, reproducible streams should prefer NewRand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// NewRand returns a fresh generator whose seed is derived deterministically
// from the simulator seed and the number of streams created so far. Giving
// each station its own stream keeps per-station behaviour stable when
// unrelated parts of the configuration change.
func (s *Simulator) NewRand() *rand.Rand {
	s.streams++
	// SplitMix-style scramble so consecutive stream indices land far apart.
	z := uint64(s.seed) + uint64(s.streams)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// At schedules fn to run at time t with default (zero) priority.
// Scheduling in the past panics: such an event would silently corrupt
// causality.
func (s *Simulator) At(t Time, fn func()) *Event {
	return s.AtPriority(t, 0, fn)
}

// AtPriority schedules fn to run at time t. Events at the same instant fire
// in ascending priority order (FIFO within a priority class). Physical-layer
// completions use negative priorities so that a station's same-instant
// protocol timers always observe frames that finished "now" — exactly the
// ordering a real receiver sees, where decoding completes before any local
// decision taken at the same moment.
func (s *Simulator) AtPriority(t Time, prio int, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	e := &Event{when: t, prio: prio, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Stop makes the current Run call return after the in-flight event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// purge discards cancelled events from the head of the queue so that
// queue[0], when present, is always a live event.
func (s *Simulator) purge() {
	for len(s.queue) > 0 && s.queue[0].cancelled {
		heap.Pop(&s.queue)
	}
}

// Step fires the single earliest pending event, skipping cancelled ones.
// It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	s.purge()
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.when
	e.fn()
	return true
}

// Run processes events in order until the queue is empty, the clock passes
// until, or Stop is called. Events scheduled exactly at until still fire.
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		s.purge()
		if len(s.queue) == 0 {
			break
		}
		if s.queue[0].when > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll processes events until the queue drains or Stop is called.
func (s *Simulator) RunAll() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunRealtime advances the simulation in lockstep with the wall clock:
// events fire when their simulated time arrives on the (scaled) real clock,
// and external work — e.g. frames arriving on a socket — is injected through
// inject and executed at the wall-mapped current time. scale stretches
// simulated time (scale 2 runs at half speed; protocols with sub-millisecond
// slots need scale >> 1 to survive OS timer jitter). RunRealtime returns
// when ctx is cancelled.
//
// The emulation layer (internal/netem) drives live protocol stacks with
// this; the discrete-event Run remains the tool for experiments.
func (s *Simulator) RunRealtime(ctx context.Context, scale float64, inject <-chan func()) {
	if scale <= 0 {
		scale = 1
	}
	start := time.Now()
	simStart := s.now
	wallFor := func(t Time) time.Time {
		return start.Add(time.Duration(float64(t-simStart) * scale))
	}
	simNow := func() Time {
		return simStart + Time(float64(time.Since(start))/scale)
	}
	for {
		var due <-chan time.Time
		var timer *time.Timer
		s.purge()
		if len(s.queue) > 0 {
			d := time.Until(wallFor(s.queue[0].when))
			if d <= 0 {
				s.Step()
				continue
			}
			timer = time.NewTimer(d)
			due = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return
		case fn, ok := <-inject:
			if timer != nil {
				timer.Stop()
			}
			if !ok {
				return
			}
			if t := simNow(); t > s.now {
				s.now = t
			}
			fn()
		case <-due:
			s.Step()
		}
	}
}
