package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
)

// This file implements the simulator's contribution to the snapshot state
// inventory (DESIGN.md §14): RNG stream cursors and a canonical event-heap
// dump.
//
// Two kinds of simulator state cannot be serialized directly and are instead
// captured as *logical* state:
//
//   - Event records hold Go function values (fn / callFn), which have no
//     portable encoding. The dump therefore records each pending event's
//     (when, prio, seq, cancelled) ordering key — a total order, so the
//     future firing sequence is fully determined — plus the callback's
//     symbol name and argument types, which are stable within a build and
//     make the dump self-describing for triage.
//
//   - RNG streams are cursors into deterministic sequences. Rather than
//     reaching into math/rand internals, every source the simulator hands
//     out is wrapped in a countingSource that tallies draws; the (seed,
//     stream number, draw count) triple is the complete cursor, because the
//     underlying sequence is a pure function of the seed.
//
// The pooled free list and cancelled-event bookkeeping are part of the
// inventory too: free-list length and ncancelled affect nothing observable,
// but capturing them makes replay divergence visible at the first layer
// where histories differ instead of much later in the run.

// countingSource wraps a rand.Source64 and counts draws. Both Int63 and
// Uint64 advance the underlying generator by exactly one internal step, so
// the count is a complete cursor into the stream. Wrapping preserves the
// exact output sequence: rand.Rand routes every draw through Int63/Uint64,
// and the wrapper forwards them 1:1.
type countingSource struct {
	src      rand64
	draws    uint64
	streamNo int64 // 0 = the simulator's primary generator
}

// rand64 is the interface math/rand's rngSource satisfies.
type rand64 interface {
	Int63() int64
	Uint64() uint64
	Seed(int64)
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.draws = 0 }

// StreamCursors reports the draw count of every RNG stream the simulator has
// created, keyed by stream number (0 is the primary generator, 1.. are
// NewRand streams in creation order). The result is sorted by stream number.
func (s *Simulator) StreamCursors() []StreamCursor {
	out := make([]StreamCursor, len(s.sources))
	for i, c := range s.sources {
		out[i] = StreamCursor{Stream: c.streamNo, Draws: c.draws}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// StreamCursor is one RNG stream's position: the stream number it was
// created as and how many draws have been taken from it.
type StreamCursor struct {
	Stream int64
	Draws  uint64
}

// funcName resolves an event's callback to its symbol name. Closure and
// method-value names are assigned by the compiler and are stable within a
// build, which is the scope a snapshot verify-replay runs in.
func funcName(e *event) string {
	var pc uintptr
	if e.fn != nil {
		pc = reflect.ValueOf(e.fn).Pointer()
	} else if e.callFn != nil {
		pc = reflect.ValueOf(e.callFn).Pointer()
	} else {
		return "<nil>"
	}
	if f := runtime.FuncForPC(pc); f != nil {
		return f.Name()
	}
	return "<unknown>"
}

// AppendState appends a canonical dump of the simulator's logical state:
// clock, scheduling counters, RNG stream cursors, and every pending event in
// (when, prio, seq) order — the total order that determines all future
// firing. Cancelled-but-unpurged events and the free-list length are
// included so that pooling bookkeeping differences surface as state
// divergence rather than hiding until they change an allocation pattern.
func (s *Simulator) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "sim now=%d seq=%d fired=%d cancelled=%d free=%d maxq=%d streams=%d seed=%d\n",
		s.now, s.seq, s.nfired, s.ncancelled, len(s.free), s.maxQueue, s.streams, s.seed)
	for _, c := range s.StreamCursors() {
		b = fmt.Appendf(b, "rng stream=%d draws=%d\n", c.Stream, c.Draws)
	}
	evs := make([]*event, len(s.queue))
	copy(evs, s.queue)
	sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })
	b = fmt.Appendf(b, "heap n=%d\n", len(evs))
	for _, e := range evs {
		b = fmt.Appendf(b, "ev when=%d prio=%d seq=%d cancelled=%t fn=%s argA=%T argB=%T\n",
			e.when, e.prio, e.seq, e.cancelled, funcName(e), e.argA, e.argB)
	}
	return b
}
