package sim

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if got := Time(1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Duration{5 * Second, 1 * Second, 3 * Second, 2 * Second, 4 * Second} {
		d := d
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	s.RunAll()
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1*Second, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(1*Second, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	s := New(1)
	e := s.After(1, func() {})
	e.Cancel()
	e.Cancel()
	var nilEvent *Event
	nilEvent.Cancel() // must not panic
	if nilEvent.Cancelled() {
		t.Fatal("nil event reports cancelled")
	}
	s.RunAll()
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	var fired []Time
	s.After(1*Second, func() { fired = append(fired, s.Now()) })
	s.After(3*Second, func() { fired = append(fired, s.Now()) })
	s.Run(2 * Second)
	if len(fired) != 1 {
		t.Fatalf("fired %d events before horizon, want 1", len(fired))
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now() = %v after Run(2s), want 2s", s.Now())
	}
	s.Run(4 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events total, want 2", len(fired))
	}
}

func TestRunFiresEventExactlyAtHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.At(2*Second, func() { fired = true })
	s.Run(2 * Second)
	if !fired {
		t.Fatal("event at the horizon did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(10*Millisecond, tick)
		}
	}
	s.After(10*Millisecond, tick)
	s.RunAll()
	if count != 100 {
		t.Fatalf("recursive scheduling ran %d ticks, want 100", count)
	}
	if s.Now() != 1*Second {
		t.Fatalf("Now() = %v, want 1s", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.After(1*Second, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil event function did not panic")
		}
	}()
	s.At(0, nil)
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(Duration(i)*Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Fatalf("Stop fired %d events, want 3", count)
	}
	// Run may be resumed afterwards.
	s.RunAll()
	if count != 10 {
		t.Fatalf("resume fired %d events total, want 10", count)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterministicRNGStreams(t *testing.T) {
	a := New(42)
	b := New(42)
	ra1, ra2 := a.NewRand(), a.NewRand()
	rb1, rb2 := b.NewRand(), b.NewRand()
	for i := 0; i < 100; i++ {
		if ra1.Int63() != rb1.Int63() || ra2.Int63() != rb2.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDistinctRNGStreamsDiffer(t *testing.T) {
	s := New(42)
	r1, r2 := s.NewRand(), s.NewRand()
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Int63() == r2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct streams collided %d/100 times", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(7).Seed() != 7 {
		t.Fatal("Seed() did not round-trip")
	}
}

// Property: for any batch of event delays, events fire in nondecreasing time
// order and the clock ends at the maximum delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(1)
		var fired []Time
		var max Time
		for _, d := range delays {
			dt := Time(d)
			if dt > max {
				max = dt
			}
			s.After(dt, func() { fired = append(fired, s.Now()) })
		}
		s.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the others fired.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask uint64) bool {
		s := New(1)
		fired := make(map[int]bool)
		events := make([]Event, len(delays))
		for i, d := range delays {
			i := i
			events[i] = s.After(Time(d), func() { fired[i] = true })
		}
		for i := range events {
			if mask&(1<<(uint(i)%64)) != 0 {
				events[i].Cancel()
			}
		}
		s.RunAll()
		for i := range events {
			want := mask&(1<<(uint(i)%64)) == 0
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.After(Time(i+1), func() {})
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", s.Pending())
	}
	s.RunAll()
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after RunAll, want 0", s.Pending())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	delays := make([]Duration, 1024)
	for i := range delays {
		delays[i] = Duration(r.Int63n(int64(Second)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for _, d := range delays {
			s.After(d, func() {})
		}
		s.RunAll()
	}
}

func TestCancelledHeadDoesNotOvershootHorizon(t *testing.T) {
	// A cancelled event before the horizon must not let Run execute a
	// live event scheduled beyond the horizon.
	s := New(1)
	e := s.After(1*Second, func() {})
	fired := false
	s.After(5*Second, func() { fired = true })
	e.Cancel()
	s.Run(2 * Second)
	if fired {
		t.Fatal("Run overshot its horizon past a cancelled head event")
	}
	if s.Now() != 2*Second {
		t.Fatalf("Now() = %v, want 2s", s.Now())
	}
}

func TestEventRecordsAreRecycled(t *testing.T) {
	s := New(1)
	e := s.After(1, func() {})
	rec := e.e
	s.RunAll()
	e2 := s.After(1, func() {})
	if e2.e != rec {
		t.Fatal("fired event record was not reused by the next schedule")
	}
}

func TestStaleHandleSemantics(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(1*Second, func() { fired = true })
	s.RunAll()
	if !fired {
		t.Fatal("event did not fire")
	}
	// A handle to a fired event keeps answering like the original.
	if e.Cancelled() {
		t.Fatal("fired, uncancelled event reports cancelled")
	}
	if e.When() != 1*Second {
		t.Fatalf("When() = %v after firing, want 1s", e.When())
	}
	// The record is recycled by the next schedule; the stale handle must
	// neither observe nor disturb the new event.
	fired2 := false
	e2 := s.After(1*Second, func() { fired2 = true })
	if e2.e != e.e {
		t.Fatal("expected record reuse for this test to be meaningful")
	}
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancel through a stale handle was not remembered by it")
	}
	if e2.Cancelled() {
		t.Fatal("stale Cancel leaked onto the recycled event")
	}
	s.RunAll()
	if !fired2 {
		t.Fatal("recycled event was suppressed by a stale handle")
	}
}

func TestZeroEventIsInert(t *testing.T) {
	var e Event
	if !e.IsZero() {
		t.Fatal("zero Event not IsZero")
	}
	e.Cancel() // must not panic
	if e.Cancelled() {
		t.Fatal("zero Event reports cancelled")
	}
	if e.When() != 0 {
		t.Fatal("zero Event has a When")
	}
}

func TestPurgeCompactsCancelledHeap(t *testing.T) {
	s := New(1)
	events := make([]Event, 200)
	for i := range events {
		events[i] = s.After(Time(i+1)*Millisecond, func() {})
	}
	// Cancel everything but every fourth event: cancelled events now far
	// outnumber live ones, so the next purge must compact the heap.
	for i := range events {
		if i%4 != 0 {
			events[i].Cancel()
		}
	}
	fired := 0
	s.At(500*Millisecond, func() { fired++ })
	s.Step() // purge runs first and compacts
	if p := s.Pending(); p > 60 {
		t.Fatalf("Pending() = %d after compaction, want ~50", p)
	}
	prev := Time(-1)
	for s.Step() {
		if s.Now() < prev {
			t.Fatal("compaction broke event ordering")
		}
		prev = s.Now()
	}
	if fired != 1 {
		t.Fatal("live event lost during compaction")
	}
}

func TestRunRealtimeFiresOnWallClock(t *testing.T) {
	s := New(1)
	var fired []Time
	s.After(10*Millisecond, func() { fired = append(fired, s.Now()) })
	s.After(30*Millisecond, func() { fired = append(fired, s.Now()) })
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	inject := make(chan func(), 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		inject <- func() { fired = append(fired, s.Now()) }
	}()
	s.RunRealtime(ctx, 2, inject) // scale 2: 10ms sim = 20ms wall
	elapsed := time.Since(start)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	// The injection (50ms wall / scale 2 = ~25ms sim) interleaves between
	// the two timers, and everything fires in simulated-time order.
	if fired[0] != 10*Millisecond || fired[2] != 30*Millisecond {
		t.Fatalf("fired at %v", fired)
	}
	if fired[1] < 20*Millisecond || fired[1] > 30*Millisecond {
		t.Fatalf("injection at sim %v, want ~25ms", fired[1])
	}
	if elapsed < 250*time.Millisecond {
		t.Fatalf("RunRealtime returned before ctx expiry: %v", elapsed)
	}
}

func TestRunRealtimeClosedInjectReturns(t *testing.T) {
	s := New(1)
	inject := make(chan func())
	close(inject)
	done := make(chan struct{})
	go func() {
		s.RunRealtime(context.Background(), 1, inject)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunRealtime did not return on closed inject channel")
	}
}
