package sim

import "fmt"

// This file provides the engine-level primitives behind warm-started forking
// (DESIGN.md §15): a freshly built simulator adopts the clock, scheduling
// counters, RNG cursors, and pending events of a warmed twin, so a parameter
// variant can skip the warmup window entirely. The adopting simulator must
// have been built identically (same seed, same stream creation order); the
// fork layer in internal/core byte-verifies the adopted state against the
// warm capture before a single post-barrier event fires.

// ForceCompact removes every cancelled event from the queue immediately,
// regardless of the usual purge heuristics. Warm capture and fork adoption
// both run it so the two heaps hold exactly the same records: compaction
// preserves the pop sequence (the ordering key is total), so forcing it is
// invisible to the simulation.
func (s *Simulator) ForceCompact() { s.compact() }

// SetClock moves the simulation clock to t without firing anything. Fork
// adoption uses it to place the adopting simulator at the warm barrier.
func (s *Simulator) SetClock(t Time) { s.now = t }

// SetCounters overwrites the scheduling counters: the next event sequence
// number base, the fired-event count, the cancelled-in-queue count, and the
// queue high-water mark. Call it after re-arming adopted events — heapPush
// updates maxQueue, so setting it first would be overwritten.
func (s *Simulator) SetCounters(seq, fired uint64, cancelled, maxq int) {
	s.seq = seq
	s.nfired = fired
	s.ncancelled = cancelled
	s.maxQueue = maxq
}

// SchedCounters reports the scheduling counters SetCounters overwrites, so a
// fork can copy its warm twin's exactly.
func (s *Simulator) SchedCounters() (seq, fired uint64, cancelled, maxq int) {
	return s.seq, s.nfired, s.ncancelled, s.maxQueue
}

// FreeLen reports the recycled-record pool size (inventory state).
func (s *Simulator) FreeLen() int { return len(s.free) }

// QueueLen reports the number of events in the queue, cancelled included.
func (s *Simulator) QueueLen() int { return len(s.queue) }

// DropAllEvents discards every pending event, fired or not, recycling the
// records. Fork adoption drops the freshly built queue before re-arming the
// warm twin's events at their exact ordering keys.
func (s *Simulator) DropAllEvents() {
	for _, e := range s.queue {
		e.index = -1
		s.recycle(e)
	}
	s.queue = s.queue[:0]
	s.ncancelled = 0
}

// SetFreeList resizes the pool of recycled event records to exactly n. Only
// the length is observable (the state inventory captures it so pooling drift
// surfaces as divergence); the records themselves carry no state.
func (s *Simulator) SetFreeList(n int) {
	for i := range s.free {
		s.free[i] = nil
	}
	s.free = s.free[:0]
	for i := 0; i < n; i++ {
		s.free = append(s.free, &event{s: s})
	}
}

// SyntheticHandle returns an Event handle that refers to no live record but
// answers When and Cancelled with the given values — the shape a handle takes
// after its event fired (or was cancelled and reclaimed). Fork adoption uses
// it to reproduce handles whose events completed before the barrier.
func SyntheticHandle(when Time, cancelled bool) Event {
	return Event{when: when, cancelled: cancelled}
}

// Live reports whether the handle still refers to a pending event in its
// owning simulator (not fired, not cancelled-and-reclaimed). Fork adoption
// uses it to fail closed when a warmed twin holds a pending timer in an FSM
// state that should not have one.
func (r Event) Live() bool { return r.live() }

// Readopt re-creates src — an event pending in a warmed twin simulator — in s
// at its exact (when, prio, seq) ordering key, without advancing s's own
// sequence counter. fn is the adopting side's callback (typically the same
// named method on the fork's own instance). When src is not live (already
// fired or cancelled-and-reclaimed in its owner), Readopt returns a synthetic
// handle reproducing its observable When/Cancelled values instead.
func (s *Simulator) Readopt(src Event, fn func()) Event {
	if !src.live() {
		return SyntheticHandle(src.when, src.cancelled)
	}
	e := s.alloc()
	e.when, e.prio, e.seq, e.fn, e.cancelled = src.e.when, src.e.prio, src.e.seq, fn, src.e.cancelled
	s.heapPush(e)
	if e.cancelled {
		s.ncancelled++
	}
	return Event{e: e, seq: e.seq, when: e.when}
}

// ReadoptCall is Readopt for closure-free events scheduled with
// AtPriorityCall: callFn(a, b) rides in the pooled record, with a and b
// supplied by the adopting side (they reference the fork's own structures,
// never the warm twin's).
func (s *Simulator) ReadoptCall(src Event, callFn func(a, b any), a, b any) Event {
	if !src.live() {
		return SyntheticHandle(src.when, src.cancelled)
	}
	e := s.alloc()
	e.when, e.prio, e.seq, e.cancelled = src.e.when, src.e.prio, src.e.seq, src.e.cancelled
	e.callFn, e.argA, e.argB = callFn, a, b
	s.heapPush(e)
	if e.cancelled {
		s.ncancelled++
	}
	return Event{e: e, seq: e.seq, when: e.when}
}

// AdvanceRNG fast-forwards every RNG stream to the given cursors by drawing
// and discarding. It fails closed when a stream is missing or already past
// its target — both mean the adopting simulator was not built identically to
// the warm twin, so its streams cannot be positioned onto the same sequence.
func (s *Simulator) AdvanceRNG(target []StreamCursor) error {
	if len(s.sources) != len(target) {
		return fmt.Errorf("sim: adopt: %d RNG streams here vs %d in warm state", len(s.sources), len(target))
	}
	byNo := make(map[int64]*countingSource, len(s.sources))
	for _, c := range s.sources {
		byNo[c.streamNo] = c
	}
	for _, t := range target {
		c, ok := byNo[t.Stream]
		if !ok {
			return fmt.Errorf("sim: adopt: no RNG stream %d", t.Stream)
		}
		if c.draws > t.Draws {
			return fmt.Errorf("sim: adopt: stream %d already at %d draws, past warm cursor %d", t.Stream, c.draws, t.Draws)
		}
		for c.draws < t.Draws {
			c.src.Uint64()
			c.draws++
		}
	}
	return nil
}
