package experiments

import (
	"strings"
	"testing"

	"macaw/internal/sim"
)

// detCfg is long enough for every table's dynamics to produce non-trivial
// numbers while keeping the full 11-table sweep fast enough to run twice.
func detCfg() RunConfig {
	return RunConfig{Total: 8 * sim.Second, Warmup: 2 * sim.Second, Seed: 7}
}

// renderAll renders every paper table in order into one string.
func renderAll(tabs []Table) string {
	var b strings.Builder
	for _, t := range tabs {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// runSerial regenerates Table1..Table11 inline, the pre-runner way.
func runSerial(cfg RunConfig) []Table {
	gens := All()
	tabs := make([]Table, 0, len(gens))
	for _, g := range gens {
		tabs = append(tabs, g.Run(cfg))
	}
	return tabs
}

// TestSerialRunsAreReproducible asserts that two serial sweeps at the same
// seed render byte-identically: every run is a pure function of its config.
func TestSerialRunsAreReproducible(t *testing.T) {
	first := renderAll(runSerial(detCfg()))
	second := renderAll(runSerial(detCfg()))
	if first != second {
		t.Fatalf("two serial runs at the same seed differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestParallelMatchesSerial asserts that the worker-pool runner produces
// byte-identical rendered tables to the serial path at the same seed —
// the property cmd/macawsim's -jobs flag is allowed to assume.
func TestParallelMatchesSerial(t *testing.T) {
	serial := renderAll(runSerial(detCfg()))
	tabs, err := NewRunner(4).Tables(All(), detCfg())
	if err != nil {
		t.Fatalf("parallel sweep failed: %v", err)
	}
	parallel := renderAll(tabs)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
