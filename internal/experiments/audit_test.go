package experiments

import (
	"testing"

	"macaw/internal/sim"
)

// TestAuditIsPassive: attaching the conformance oracle must not perturb a
// run — the audited table is byte-identical to the unaudited one, serially
// and through the parallel runner. (A violation would panic instead.)
func TestAuditIsPassive(t *testing.T) {
	plain := Bench()
	audited := Bench()
	audited.Audit = true

	base := Table6(plain).Render()
	if got := Table6(audited).Render(); got != base {
		t.Fatalf("audited table differs from unaudited:\n--- plain\n%s\n--- audited\n%s", base, got)
	}

	gen, ok := ByID("table6")
	if !ok {
		t.Fatal("table6 generator missing")
	}
	tabs, err := NewRunner(4).Tables([]Generator{gen}, audited)
	if err != nil {
		t.Fatalf("parallel audited run failed: %v", err)
	}
	if got := tabs[0].Render(); got != base {
		t.Fatalf("audited parallel table differs from unaudited serial:\n--- plain\n%s\n--- audited\n%s", base, got)
	}
}

// TestAuditChaosTable: the chaos table — crash/restart, burst loss, mobility
// — completes under audit with the identical rendering. This is the
// regression net for the restart-time findings the oracle produced.
func TestAuditChaosTable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos table is slow")
	}
	plain := Bench()
	// The chaos table's supported run length (see ci.yml): longer runs
	// trip a pre-existing watchdog queue bound under some schedules.
	plain.Total = 8 * sim.Second
	plain.Warmup = 2 * sim.Second
	audited := plain
	audited.Audit = true
	base := ChaosTable(plain).Render()
	if got := ChaosTable(audited).Render(); got != base {
		t.Fatalf("audited chaos table differs from unaudited:\n--- plain\n%s\n--- audited\n%s", base, got)
	}
}
