package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"macaw/internal/core"
	"macaw/internal/oracle"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
)

// CheckpointPlan drives deterministic checkpoint/restore for every run a
// RunConfig launches (DESIGN.md §14). A plan combines four independently
// optional behaviours:
//
//   - Every/Barriers: pause each run at virtual-time barriers and capture its
//     canonical state inventory. With Dir set, each capture is written as an
//     atomic snapshot file.
//   - RestoreSnap: when a run matches the snapshot's (label, seed, config
//     hash), its replayed state at the snapshot's barrier is byte-compared
//     against the stored inventory. Divergence fails closed before a single
//     post-barrier event fires.
//   - Manifest: a crash-safe ledger of completed runs. A run whose results
//     are already recorded is skipped entirely; a sweep killed mid-way
//     resumes past everything that finished.
//   - RequestStop/OnAbort: cooperative shutdown. A stop request (typically a
//     SIGINT/SIGTERM handler) makes each running simulation flush one final
//     checkpoint at its next barrier and then invoke OnAbort with the path.
//
// Checkpointed runs execute on the monolithic serial engine: barriers are
// RunTo pauses of the one event heap, never scheduled events, so pausing
// cannot perturb event sequence numbers and the continued run is
// bit-identical to an uninterrupted one.
type CheckpointPlan struct {
	// Every inserts a barrier each Every of virtual time after run start
	// (0 = only explicit Barriers).
	Every sim.Duration
	// Barriers are explicit absolute virtual times to pause at.
	Barriers []sim.Time
	// Dir, when non-empty, receives one snapshot file per (run, barrier).
	Dir string
	// RestoreSnap, when set, is verified against the matching run's
	// replayed state at the snapshot's barrier.
	RestoreSnap *snapshot.Snapshot
	// Manifest, when set, memoizes completed plain runs for sweep resume.
	Manifest *snapshot.Manifest
	// OnAbort is called exactly once after a stop request, with the path
	// of the last snapshot flushed (empty if none was written). It may
	// not return (os.Exit is typical for signal handlers).
	OnAbort func(last string)

	stop      atomic.Bool
	abortOnce sync.Once

	mu       sync.Mutex
	last     string   // newest snapshot path written
	verified []string // runs whose RestoreSnap verification passed
}

// RequestStop asks every run under this plan to flush a final checkpoint at
// its next barrier and abort. Safe to call from a signal handler goroutine.
func (p *CheckpointPlan) RequestStop() { p.stop.Store(true) }

// Verified reports the run labels whose restore verification passed.
func (p *CheckpointPlan) Verified() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.verified...)
}

// LastSnapshot returns the path of the newest snapshot written.
func (p *CheckpointPlan) LastSnapshot() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

func (p *CheckpointPlan) noteWrote(path string) {
	p.mu.Lock()
	p.last = path
	p.mu.Unlock()
}

func (p *CheckpointPlan) noteVerified(run string) {
	p.mu.Lock()
	p.verified = append(p.verified, run)
	p.mu.Unlock()
}

func (p *CheckpointPlan) abort() {
	p.abortOnce.Do(func() {
		if p.OnAbort != nil {
			p.OnAbort(p.LastSnapshot())
		}
	})
}

// barriersFor merges the periodic and explicit barriers that fall strictly
// inside (start, end), sorted and deduplicated. The restore barrier is
// included so verification always has a pause to run at.
func (p *CheckpointPlan) barriersFor(start, end sim.Time) []sim.Time {
	var bs []sim.Time
	if p.Every > 0 {
		for t := start + sim.Time(p.Every); t < end; t += sim.Time(p.Every) {
			bs = append(bs, t)
		}
	}
	for _, t := range p.Barriers {
		if t > start && t < end {
			bs = append(bs, t)
		}
	}
	if p.RestoreSnap != nil {
		if t := p.RestoreSnap.Barrier; t > start && t < end {
			bs = append(bs, t)
		}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := bs[:0]
	for i, t := range bs {
		if i == 0 || t != bs[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// configDesc is the canonical description of everything that shapes one
// run's event history; its hash binds snapshots and manifest entries to the
// exact configuration that produced them. A sweep delta is part of that
// identity — two variants of one sweep are different runs — so it appends
// as a final field. Delta-free configs render exactly the pre-delta ("v1")
// string, keeping every previously written snapshot and manifest entry
// valid.
func (cfg RunConfig) configDesc(label string) string {
	d := cfg.warmDesc(label)
	if cfg.Delta != nil {
		d += fmt.Sprintf("|delta=%s:%g", cfg.Delta.Kind, cfg.Delta.Value)
	}
	return d
}

// warmDesc is configDesc minus the delta field: the canonical description
// of the run up to the delta barrier. Every variant of one sweep shares it,
// which is what makes it the warm-state cache key — a snapshot captured at
// the barrier under this description is valid to fork into any delta.
func (cfg RunConfig) warmDesc(label string) string {
	return fmt.Sprintf("v1|table=%s|run=%s|total=%d|warmup=%d|seed=%d|audit=%t",
		cfg.table, label, cfg.Total, cfg.Warmup, cfg.Seed, cfg.Audit)
}

// run executes the built network under the config's checkpoint plan (or
// plainly, with no plan) and invokes the instrumentation finish hook. It is
// the single chokepoint every generator's run goes through.
//
// extra appends run-specific observable state (for example a fault
// injector's trajectory) to each captured inventory. Runs with extras are
// never memoized: their tables read state (fault counters) that only exists
// after a real execution.
func (rc runCtl) run(n *core.Network, extra ...func([]byte) []byte) core.Results {
	cfg, plan := rc.cfg, rc.cfg.Checkpoint
	if rc.warm != nil {
		return rc.runTail(n)
	}
	if plan == nil && cfg.Delta == nil {
		res := n.Run(cfg.Total, cfg.Warmup)
		rc.finish(res)
		return res
	}

	desc := cfg.configDesc(rc.label)
	hash := snapshot.ConfigHash(desc)
	key := snapshot.Key(rc.label, hash, cfg.Seed)
	memoize := plan != nil && plan.Manifest != nil &&
		cfg.Metrics == nil && cfg.Trace == nil && len(extra) == 0
	if memoize {
		if payload, ok := plan.Manifest.Get(key); ok {
			if res, err := decodeResults(payload); err == nil {
				return res
			}
			// A corrupt entry is re-run, never trusted.
		}
	}

	n.Start(cfg.Total, cfg.Warmup)
	start, end := n.Sim.Now(), n.End()
	// The delta barrier is where a sweep variant's parameters change: the
	// end of warmup, the same instant a warm fork adopts. It merges into
	// the checkpoint barrier list so a captured snapshot at that instant is
	// always pre-delta — exactly the state a warm fork starts from.
	deltaAt := sim.Time(-1)
	if cfg.Delta != nil {
		deltaAt = start + sim.Time(cfg.Warmup)
	}
	for _, b := range mergeBarrier(planBarriers(plan, start, end), deltaAt, start, end) {
		n.RunTo(b)
		if plan != nil {
			state := rc.capture(n, extra)
			if snap := plan.RestoreSnap; snap != nil && snap.Run == rc.label {
				if err := snap.MatchesConfig(desc, cfg.Seed, rc.label); err != nil {
					panic(fmt.Sprintf("experiments: restore of %s: %v", rc.label, err))
				} else if b == snap.Barrier {
					if err := snap.Verify(state); err != nil {
						panic(fmt.Sprintf("experiments: restore of %s at t=%v: %v", rc.label, b, err))
					}
					plan.noteVerified(rc.label)
				}
			}
			if plan.Dir != "" {
				path := filepath.Join(plan.Dir, snapshot.FileName(rc.label, cfg.Seed, b))
				err := snapshot.WriteFile(path, &snapshot.Snapshot{
					ConfigHash: hash, Seed: cfg.Seed, Barrier: b,
					Total: cfg.Total, Warmup: cfg.Warmup, Audit: cfg.Audit,
					Table: cfg.table, Run: rc.label, State: state,
					Desc: desc, Delta: cfg.Delta,
				})
				if err != nil {
					panic(fmt.Sprintf("experiments: writing checkpoint: %v", err))
				}
				plan.noteWrote(path)
			}
			if plan.stop.Load() {
				plan.abort()
				// OnAbort returned: the stop was advisory; keep running.
			}
		}
		if b == deltaAt {
			if err := n.ApplyDelta(cfg.Delta.Kind, cfg.Delta.Value); err != nil {
				panic(fmt.Sprintf("experiments: delta for %s: %v", rc.label, err))
			}
		}
	}
	n.RunTo(end)
	res := n.Collect()
	rc.finish(res)
	if memoize {
		if err := plan.Manifest.Put(key, encodeResults(res)); err != nil {
			panic(fmt.Sprintf("experiments: recording run in manifest: %v", err))
		}
	}
	return res
}

// planBarriers is barriersFor tolerating a nil plan (a delta-only run).
func planBarriers(plan *CheckpointPlan, start, end sim.Time) []sim.Time {
	if plan == nil {
		return nil
	}
	return plan.barriersFor(start, end)
}

// mergeBarrier splices one extra barrier into a sorted barrier list,
// keeping it sorted and deduplicated. t < 0 means no extra barrier; a t on
// the boundary (== start or >= end) is dropped like barriersFor would.
func mergeBarrier(bs []sim.Time, t, start, end sim.Time) []sim.Time {
	if t < 0 || t <= start || t >= end {
		return bs
	}
	i := sort.Search(len(bs), func(i int) bool { return bs[i] >= t })
	if i < len(bs) && bs[i] == t {
		return bs
	}
	out := make([]sim.Time, 0, len(bs)+1)
	out = append(out, bs[:i]...)
	out = append(out, t)
	return append(out, bs[i:]...)
}

// WarmSource is a warmed twin parked at its barrier, ready to be forked.
// Net must be stopped exactly at Barrier with its event queue compacted
// (core.Network.ForceCompactEvents); Aud is the oracle that observed the
// warmup when the runs are audited, nil otherwise. Adoption only reads the
// twin, so one WarmSource serves any number of sequential forks; the sweep
// engine serializes access per source.
type WarmSource struct {
	Net     *core.Network
	Aud     *oracle.Oracle
	Barrier sim.Time
}

// runTail executes a warm-started run: the freshly built network adopts the
// twin's state at the barrier (byte-verified inside AdoptFrom — divergence
// fails closed), the oracle adopts the warmup's expectations, the variant's
// delta is applied, and only the tail simulates. The produced Results and
// final state inventory are byte-identical to a cold run applying the same
// delta at the same barrier — TestSweepWarmMatchesCold holds the line.
func (rc runCtl) runTail(n *core.Network) core.Results {
	cfg := rc.cfg
	if cfg.Checkpoint != nil {
		panic("experiments: a warm-started run cannot carry a checkpoint plan")
	}
	if err := n.AdoptFrom(rc.warm.Net); err != nil {
		panic(fmt.Sprintf("experiments: forking %s: %v", rc.label, err))
	}
	if rc.aud.o != nil {
		if err := rc.aud.o.AdoptFrom(rc.warm.Aud); err != nil {
			panic(fmt.Sprintf("experiments: forking %s: %v", rc.label, err))
		}
	}
	if cfg.Delta != nil {
		if err := n.ApplyDelta(cfg.Delta.Kind, cfg.Delta.Value); err != nil {
			panic(fmt.Sprintf("experiments: delta for %s: %v", rc.label, err))
		}
	}
	n.RunTo(n.End())
	res := n.Collect()
	rc.finish(res)
	return res
}

// capture renders the run's complete canonical state inventory: network
// (engine, phy, stations, streams), then the passive oracle expectations,
// then any run-specific extras — always in that order, so a capture and its
// restore-side recapture are comparable line by line.
func (rc runCtl) capture(n *core.Network, extra []func([]byte) []byte) []byte {
	b := n.AppendState(nil)
	if rc.obs != nil {
		b = rc.obs(b)
	}
	for _, fn := range extra {
		b = fn(b)
	}
	return b
}

// encodeResults renders results for the manifest. gob round-trips every
// field (float64s included) bit-exactly, so memoized rows render
// byte-identically to freshly computed ones.
func encodeResults(res core.Results) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		panic(fmt.Sprintf("experiments: encoding results: %v", err))
	}
	return buf.Bytes()
}

func decodeResults(payload []byte) (core.Results, error) {
	var res core.Results
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res)
	return res, err
}

// ReplayRun restores a snapshot: it resolves the generator named by the
// snapshot's table id, configures a run of the same shape, and re-executes
// the generator with the snapshot armed for verification. The run matching
// the snapshot replays to the barrier, byte-compares its state inventory
// against the stored one (diverging fails closed), and continues — so the
// returned table is bit-identical to an uninterrupted run. The caller's cfg
// supplies observation-only settings (Metrics, Trace, TraceFrom); run shape
// (durations, seed, audit) comes from the snapshot.
func ReplayRun(snap *snapshot.Snapshot, cfg RunConfig) (t Table, err error) {
	gen, ok := generatorByID(snap.Table)
	if !ok {
		return Table{}, fmt.Errorf("experiments: snapshot names unknown table %q", snap.Table)
	}
	// A replay divergence (or any run abort: oracle violation, watchdog)
	// surfaces as a panic inside the generator; fail closed with an error
	// rather than crashing the restoring process.
	defer func() {
		if p := recover(); p != nil {
			t, err = Table{}, fmt.Errorf("experiments: replay failed: %v", p)
		}
	}()
	cfg.Total = snap.Total
	cfg.Warmup = snap.Warmup
	cfg.Seed = snap.Seed
	cfg.Audit = snap.Audit
	cfg.Delta = snap.Delta
	if cfg.Checkpoint == nil {
		cfg.Checkpoint = &CheckpointPlan{}
	}
	cfg.Checkpoint.RestoreSnap = snap
	t = gen.Run(cfg.ForTable(snap.Table))
	for _, run := range cfg.Checkpoint.Verified() {
		if run == snap.Run {
			return t, nil
		}
	}
	return t, fmt.Errorf("experiments: no run in table %q matched snapshot run %q (config or label drift)", snap.Table, snap.Run)
}

// generatorByID resolves a table id across every generator family: the
// paper's tables, the extension experiments, and the chaos table.
func generatorByID(id string) (Generator, bool) {
	if g, ok := ByID(id); ok {
		return g, true
	}
	for _, g := range Extensions() {
		if g.ID == id {
			return g, true
		}
	}
	if g := ChaosGenerator(); g.ID == id {
		return g, true
	}
	return Generator{}, false
}
