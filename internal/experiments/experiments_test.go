package experiments

import (
	"strings"
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
	"macaw/internal/stats"
	"macaw/internal/topo"
	"macaw/internal/transport"
)

// The shape assertions below pin the reproduced qualitative claims of each
// table: who wins, by roughly what factor, and which mechanism fixes which
// pathology. Quick() runs keep the suite fast; EXPERIMENTS.md records the
// full paper-length numbers.

func maxMinRatio(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo <= 0 {
		lo = 0.01
	}
	return hi / lo
}

func TestTable1BEBUnfairCopyFair(t *testing.T) {
	tab := Table1(Quick())
	cpy := []float64{tab.Columns[1].Results.PPS("P1-B"), tab.Columns[1].Results.PPS("P2-B")}
	if r := maxMinRatio(cpy); r > 1.25 {
		t.Fatalf("copying max/min ratio = %.2f, want <= 1.25 (fair)", r)
	}
	if j := stats.Jain(cpy); j < 0.99 {
		t.Fatalf("copying fairness = %.3f", j)
	}
	// The channel stays near capacity in both variants.
	if tab.MeasuredTotal(0) < 40 || tab.MeasuredTotal(1) < 40 {
		t.Fatalf("totals %.1f / %.1f too low", tab.MeasuredTotal(0), tab.MeasuredTotal(1))
	}
}

// captureEpochs reruns the Figure 2 cell and counts 5-second buckets in
// which one pad holds >= 75%% of the deliveries — the capture effect's
// time-resolved signature, robust across seeds (ownership oscillates, so
// long-run averages can look deceptively fair).
func captureEpochs(t *testing.T, copyOverheard bool, seed int64) (epochs, buckets int) {
	t.Helper()
	n := core.NewNetwork(seed)
	f := core.MACAWFactoryWith(macaw.Options{Exchange: macaw.Basic},
		func() backoff.Policy { return backoff.NewSingle(backoff.NewBEB(), copyOverheard) })
	if err := topo.Figure2().Build(n, f); err != nil {
		t.Fatal(err)
	}
	const width = 5 * sim.Second
	s1 := stats.NewTimeSeries(width)
	s2 := stats.NewTimeSeries(width)
	n.Streams()[0].SetStart(0)
	n.Streams()[1].SetStart(0)
	base := n.Station("B")
	base.Handle(func(src frame.NodeID, seg transport.Segment) {
		if seg.Kind != transport.KindData {
			return
		}
		if seg.Stream == 1 {
			s1.Record(n.Sim.Now())
		} else {
			s2.Record(n.Sim.Now())
		}
	})
	n.Run(120*sim.Second, 0)
	b1, b2 := s1.Buckets(), s2.Buckets()
	for i := 0; i < len(b1) && i < len(b2); i++ {
		total := b1[i] + b2[i]
		if total < 10 {
			continue
		}
		buckets++
		hi := b1[i]
		if b2[i] > hi {
			hi = b2[i]
		}
		if float64(hi) >= 0.75*float64(total) {
			epochs++
		}
	}
	return epochs, buckets
}

func TestTable1CaptureEpochs(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		bebEpochs, bebBuckets := captureEpochs(t, false, seed)
		cpyEpochs, _ := captureEpochs(t, true, seed)
		if bebEpochs*4 < bebBuckets {
			t.Fatalf("seed %d: BEB capture epochs %d of %d buckets, want >= 25%%", seed, bebEpochs, bebBuckets)
		}
		if cpyEpochs > bebEpochs/3 {
			t.Fatalf("seed %d: copying still shows %d capture epochs (BEB: %d)", seed, cpyEpochs, bebEpochs)
		}
	}
}

func TestTable2BothFairMILDNoWorse(t *testing.T) {
	tab := Table2(Quick())
	for i, c := range tab.Columns {
		var rates []float64
		for _, s := range tab.Streams {
			rates = append(rates, c.Results.PPS(s))
		}
		if j := stats.Jain(rates); j < 0.95 {
			t.Fatalf("column %d fairness = %.3f", i, j)
		}
	}
	// MILD must hold at least BEB's efficiency under heavy contention
	// (the paper's 2x collapse of BEB+copy does not reproduce in this
	// physics; see EXPERIMENTS.md).
	if tab.MeasuredTotal(1) < tab.MeasuredTotal(0)*0.9 {
		t.Fatalf("MILD total %.1f much worse than BEB %.1f", tab.MeasuredTotal(1), tab.MeasuredTotal(0))
	}
}

func TestTable3QueueModelAllocation(t *testing.T) {
	tab := Table3(Quick())
	single, multi := tab.Columns[0].Results, tab.Columns[1].Results
	// Single FIFO allocates per station: P3's stream gets roughly twice
	// each of the base station's two streams.
	ratio := single.PPS("P3-B") / ((single.PPS("B-P1") + single.PPS("B-P2")) / 2)
	if ratio < 1.5 {
		t.Fatalf("single-queue P3/B-stream ratio = %.2f, want >= 1.5", ratio)
	}
	// Per-stream queues even the allocation out substantially.
	mratio := multi.PPS("P3-B") / ((multi.PPS("B-P1") + multi.PPS("B-P2")) / 2)
	if mratio > 1.35 || mratio < 0.65 {
		t.Fatalf("multi-queue P3/B-stream ratio = %.2f, want ~1", mratio)
	}
	j := stats.Jain([]float64{multi.PPS("B-P1"), multi.PPS("B-P2"), multi.PPS("P3-B")})
	if j < 0.97 {
		t.Fatalf("multi-queue fairness = %.3f", j)
	}
}

func TestTable4ACKShieldsTCPFromNoise(t *testing.T) {
	tab := Table4(Quick())
	basic, ack := tab.Columns[0].Results, tab.Columns[1].Results
	// Without link ACKs, heavy noise collapses TCP throughput.
	if basic.PPS("p=0.1") > basic.PPS("p=0")/3 {
		t.Fatalf("no-ACK p=0.1 %.1f did not collapse vs p=0 %.1f", basic.PPS("p=0.1"), basic.PPS("p=0"))
	}
	// The link-level ACK recovers much of it: at p=0.1 the ACK variant
	// must beat the no-ACK variant clearly (paper: 9.93 vs 2.48).
	if ack.PPS("p=0.1") < 2*basic.PPS("p=0.1") {
		t.Fatalf("ACK %.1f vs no-ACK %.1f at p=0.1", ack.PPS("p=0.1"), basic.PPS("p=0.1"))
	}
	// The ACK overhead at p=0 is modest.
	if ack.PPS("p=0") < basic.PPS("p=0")*0.8 {
		t.Fatalf("ACK overhead too large: %.1f vs %.1f", ack.PPS("p=0"), basic.PPS("p=0"))
	}
	// Negligible noise is negligible.
	if basic.PPS("p=0.001") < basic.PPS("p=0")*0.9 {
		t.Fatal("p=0.001 already collapsed")
	}
}

func TestTable5DSRestoresExposedTerminalThroughput(t *testing.T) {
	tab := Table5(Quick())
	noDS, ds := tab.Columns[0].Results, tab.Columns[1].Results
	// Without the DS packet the two exposed streams destroy each other's
	// exchanges (in this physics the damage is mutual rather than
	// one-sided; the paper starves one side — either way the total
	// collapses well below capacity).
	if noDS.TotalPPS() > 40 {
		t.Fatalf("no-DS total %.1f shows no exposed-terminal damage", noDS.TotalPPS())
	}
	// With DS both streams run and each does at least as well as the
	// better no-DS stream.
	if ds.PPS("P1-B1") < 20 || ds.PPS("P2-B2") < 20 {
		t.Fatalf("DS column starved: %.1f / %.1f", ds.PPS("P1-B1"), ds.PPS("P2-B2"))
	}
	if ds.TotalPPS() < noDS.TotalPPS()*1.4 {
		t.Fatalf("DS total %.1f not clearly above no-DS %.1f", ds.TotalPPS(), noDS.TotalPPS())
	}
	if j := stats.Jain(ds.Rates()); j < 0.99 {
		t.Fatalf("DS fairness = %.3f", j)
	}
}

func TestTable6RRTSImprovesReceiverContention(t *testing.T) {
	// The no-RRTS column is bistable (see TestTable6BistabilityAndRRTSCure);
	// the total-throughput comparison is only meaningful against the
	// mutual-degradation basin, so pin a seed that lands there. In the
	// starvation basin the no-RRTS total is higher but one stream is dead —
	// that shape is asserted by the bistability test instead.
	cfg := Quick()
	cfg.Seed = 4
	tab := Table6(cfg)
	no, yes := tab.Columns[0].Results, tab.Columns[1].Results
	// With RRTS both streams share the medium fairly and the total
	// clearly exceeds the no-RRTS total.
	if j := stats.Jain(yes.Rates()); j < 0.98 {
		t.Fatalf("RRTS fairness = %.3f", j)
	}
	if yes.TotalPPS() < 30 {
		t.Fatalf("RRTS total = %.1f, want >= 30", yes.TotalPPS())
	}
	if yes.TotalPPS() < no.TotalPPS()*1.15 {
		t.Fatalf("RRTS total %.1f not above no-RRTS %.1f", yes.TotalPPS(), no.TotalPPS())
	}
	mac := tab.Columns[1]
	_ = mac
}

// TestTable6BistabilityAndRRTSCure maps the no-RRTS column's two basins
// across seeds: a substantial fraction must reproduce the paper's
// one-sided starvation (B1-P1 ~0, B2-P2 at capacity ~46 vs the paper's
// 42.87), and enabling RRTS must abolish the starvation basin in every
// seed.
func TestTable6BistabilityAndRRTSCure(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	starved := 0
	for _, seed := range seeds {
		cfg := Quick()
		cfg.Seed = seed
		tab := Table6(cfg)
		no, yes := tab.Columns[0].Results, tab.Columns[1].Results
		lo, hi := no.PPS("B1-P1"), no.PPS("B2-P2")
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < hi/8 {
			starved++
			// The starved basin matches the paper's shape closely.
			if hi < 40 {
				t.Fatalf("seed %d: starved basin winner at %.1f, want ~46", seed, hi)
			}
		}
		// With RRTS neither stream is ever starved.
		ylo := yes.PPS("B1-P1")
		if y2 := yes.PPS("B2-P2"); y2 < ylo {
			ylo = y2
		}
		if ylo < 10 {
			t.Fatalf("seed %d: RRTS column still starves a stream (%.1f)", seed, ylo)
		}
	}
	if starved < 2 {
		t.Fatalf("paper-shaped starvation basin appeared in only %d of %d seeds", starved, len(seeds))
	}
}

func TestTable7UnsolvedConfigurationStarvesB1(t *testing.T) {
	tab := Table7(Quick())
	res := tab.Columns[0].Results
	// The paper's claim: B1-P1 is (almost) completely denied while P2-B2
	// runs at capacity.
	if res.PPS("B1-P1") > res.PPS("P2-B2")/10 {
		t.Fatalf("B1-P1 %.2f not starved vs P2-B2 %.2f", res.PPS("B1-P1"), res.PPS("P2-B2"))
	}
	if res.PPS("P2-B2") < 38 {
		t.Fatalf("P2-B2 %.2f not near capacity", res.PPS("P2-B2"))
	}
}

func TestTable8PerDestinationBackoffShieldsLiveStreams(t *testing.T) {
	tab := Table8(Quick())
	single, perDest := tab.Columns[0], tab.Columns[1]
	st := tab.MeasuredTotal(0)
	pt := tab.MeasuredTotal(1)
	_ = single
	_ = perDest
	if pt < st*1.25 {
		t.Fatalf("per-destination total %.1f not clearly above single-counter %.1f", pt, st)
	}
}

func TestTable9OverheadModest(t *testing.T) {
	tab := Table9(Quick())
	maca := tab.Columns[0].Results.PPS("P-B")
	macaw := tab.Columns[1].Results.PPS("P-B")
	if maca < 48 || maca > 56 {
		t.Fatalf("MACA single stream = %.2f, want ~52 (paper 53.04)", maca)
	}
	ratio := macaw / maca
	// Paper: 49.07/53.04 = 0.925. The DS+ACK overhead must be visible
	// but bounded.
	if ratio < 0.80 || ratio > 0.97 {
		t.Fatalf("MACAW/MACA ratio = %.3f, want overhead of roughly 5-20%%", ratio)
	}
}

func TestTable10MACAWFairnessInCongestedCell(t *testing.T) {
	tab := Table10(Quick())
	macaRes, macawRes := tab.Columns[0].Results, tab.Columns[1].Results
	c1 := []string{"P1-B1", "P2-B1", "P3-B1", "P4-B1", "B1-P1", "B1-P2", "B1-P3", "B1-P4"}
	var macaC1, macawC1 []float64
	for _, s := range c1 {
		macaC1 = append(macaC1, macaRes.PPS(s))
		macawC1 = append(macawC1, macawRes.PPS(s))
	}
	// "In MACAW, the maximum difference between throughput for any two
	// streams in the same cell is only 0.59 pps, while in MACA [it] is
	// 9.60": the spread must shrink dramatically.
	if stats.Spread(macawC1) > stats.Spread(macaC1)/2 {
		t.Fatalf("MACAW C1 spread %.2f vs MACA %.2f", stats.Spread(macawC1), stats.Spread(macaC1))
	}
	if stats.Jain(macawC1) < 0.95 {
		t.Fatalf("MACAW C1 fairness = %.3f", stats.Jain(macawC1))
	}
	// MACA's downlink starves relative to its uplink; MACAW equalizes.
	macaDown := macaRes.PPS("B1-P1") + macaRes.PPS("B1-P2") + macaRes.PPS("B1-P3") + macaRes.PPS("B1-P4")
	macaUp := macaRes.PPS("P1-B1") + macaRes.PPS("P2-B1") + macaRes.PPS("P3-B1") + macaRes.PPS("P4-B1")
	if macaDown > macaUp/2 {
		t.Fatalf("MACA downlink %.1f not starved vs uplink %.1f", macaDown, macaUp)
	}
	// MACAW at least matches MACA's aggregate.
	if tab.MeasuredTotal(1) < tab.MeasuredTotal(0)*0.95 {
		t.Fatalf("MACAW total %.1f below MACA %.1f", tab.MeasuredTotal(1), tab.MeasuredTotal(0))
	}
}

func TestTable11OfficeScenarioRuns(t *testing.T) {
	tab := Table11(Quick())
	macaRes, macawRes := tab.Columns[0].Results, tab.Columns[1].Results
	// All seven TCP streams deliver something under both protocols.
	for _, s := range tab.Streams {
		if macawRes.PPS(s) <= 0 {
			t.Fatalf("MACAW stream %s delivered nothing", s)
		}
	}
	// MACAW spreads cell C1's throughput more evenly than MACA.
	c1 := []string{"P1-B1", "P2-B1", "P3-B1", "P4-B1"}
	var a, b []float64
	for _, s := range c1 {
		a = append(a, macaRes.PPS(s))
		b = append(b, macawRes.PPS(s))
	}
	if stats.Jain(b) < stats.Jain(a)*0.95 {
		t.Fatalf("MACAW C1 fairness %.3f vs MACA %.3f", stats.Jain(b), stats.Jain(a))
	}
}

func TestAllRegistryComplete(t *testing.T) {
	gens := All()
	if len(gens) != 11 {
		t.Fatalf("registry has %d entries, want 11", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if g.Run == nil || g.ID == "" || g.Name == "" {
			t.Fatalf("incomplete generator %+v", g)
		}
		seen[g.ID] = true
	}
	for i := 1; i <= 11; i++ {
		id := "table" + string(rune('0'+i%10))
		_ = id
	}
	if !seen["table1"] || !seen["table11"] {
		t.Fatal("missing table ids")
	}
	if _, ok := ByID("table7"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID matched nonsense")
	}
	if len(IDs()) != 11 {
		t.Fatal("IDs() wrong")
	}
}

func TestRenderIncludesPaperAndMeasured(t *testing.T) {
	tab := Table9(Bench())
	out := tab.Render()
	for _, want := range []string{"TABLE9", "paper", "measured", "53.04", "P-B", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	a := Table9(Bench())
	b := Table9(Bench())
	if a.Columns[0].Results.PPS("P-B") != b.Columns[0].Results.PPS("P-B") {
		t.Fatal("table run not deterministic")
	}
}

func TestCSVOutput(t *testing.T) {
	tab := Table9(Bench())
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "stream,") || !strings.Contains(lines[0], "measured") {
		t.Fatalf("csv header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "P-B,53.04,") {
		t.Fatalf("csv row: %q", lines[1])
	}
}
