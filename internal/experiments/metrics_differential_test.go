package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/metrics"
	"macaw/internal/sim"
	"macaw/internal/topo"
	"macaw/internal/trace"
)

// diffCfg is short enough to sweep every generator three times while still
// exercising contention, retries, drops, and the chaos fault classes.
func diffCfg() RunConfig {
	return RunConfig{Total: 12 * sim.Second, Warmup: 2 * sim.Second, Seed: 1}
}

// renderAllInstr runs every generator (paper tables, extensions, chaos) under cfg
// at the given parallelism and returns the concatenated rendered tables.
func renderAllInstr(cfg RunConfig, jobs int) string {
	gens := append(All(), Extensions()...)
	gens = append(gens, ChaosGenerator())
	var tabs []Table
	if jobs > 1 {
		var err error
		tabs, err = NewRunner(jobs).Tables(gens, cfg)
		if err != nil {
			panic(err)
		}
	} else {
		for _, g := range gens {
			tabs = append(tabs, g.Run(cfg.ForTable(g.ID)))
		}
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.Render())
	}
	return b.String()
}

// TestMetricsDisabledEnabledByteIdentical is the passivity contract's
// enforcement point: attaching the metrics collector and the trace recorder
// to every run — tables, extensions, and the chaos table, covering the MACA,
// MACAW, and token MACs — must leave the rendered output byte-identical to a
// bare run, serially and at -jobs 4. The instrumented documents themselves
// must also be byte-identical across parallelism levels.
func TestMetricsDisabledEnabledByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every generator three times")
	}
	base := renderAllInstr(diffCfg(), 1)

	var metricsDocs, traceDocs [][]byte
	for _, jobs := range []int{1, 4} {
		cfg := diffCfg()
		cfg.Metrics = metrics.NewSink()
		cfg.Trace = trace.NewJSONLSink()
		got := renderAllInstr(cfg, jobs)
		if got != base {
			t.Errorf("jobs=%d: instrumented output differs from bare output", jobs)
		}
		if cfg.Metrics.Len() == 0 {
			t.Fatalf("jobs=%d: metrics sink stayed empty", jobs)
		}
		if cfg.Trace.Len() == 0 {
			t.Fatalf("jobs=%d: trace sink stayed empty", jobs)
		}
		var mb, tb bytes.Buffer
		if err := cfg.Metrics.WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.WriteJSONL(&tb); err != nil {
			t.Fatal(err)
		}
		metricsDocs = append(metricsDocs, mb.Bytes())
		traceDocs = append(traceDocs, tb.Bytes())
	}
	if !bytes.Equal(metricsDocs[0], metricsDocs[1]) {
		t.Error("metrics JSON differs between jobs=1 and jobs=4")
	}
	if !bytes.Equal(traceDocs[0], traceDocs[1]) {
		t.Error("trace JSONL differs between jobs=1 and jobs=4")
	}
}

// TestMetricsDifferentialCSMA covers the one MAC the tables never run:
// instrumenting a CSMA network must not change its results.
func TestMetricsDifferentialCSMA(t *testing.T) {
	run := func(cfg RunConfig) core.Results {
		n := core.NewNetwork(cfg.Seed)
		rc := cfg.instrument("csma", n)
		f := core.CSMAFactory(csma.Options{ACK: true})
		p1 := n.AddStation("P1", geom.V(-4, 3, 6), f)
		p2 := n.AddStation("P2", geom.V(4, 3, 6), f)
		b := n.AddStation("B", geom.V(0, 0, 12), f)
		n.AddStream(p1, b, core.UDP, 20)
		n.AddStream(p2, b, core.UDP, 20)
		return rc.run(n)
	}
	bare := run(diffCfg())
	cfg := diffCfg()
	cfg.Metrics = metrics.NewSink()
	cfg.Trace = trace.NewJSONLSink()
	instr := run(cfg)
	if !reflect.DeepEqual(bare, instr) {
		t.Error("instrumented CSMA results differ from bare run")
	}
	if cfg.Metrics.Run("csma") == nil {
		t.Fatal("metrics sink missing the csma run")
	}
}

// TestMetricsSnapshotTable2 pins the acceptance shape: an instrumented
// Table 2 run yields per-station delay histograms and per-destination
// backoff time-series.
func TestMetricsSnapshotTable2(t *testing.T) {
	cfg := diffCfg().ForTable("table2")
	cfg.Metrics = metrics.NewSink()
	Table2(cfg)
	rm := cfg.Metrics.Run("table2/MILD copy")
	if rm == nil {
		t.Fatalf("missing run; have %v", cfg.Metrics.Labels())
	}
	if rm.Engine.EventsFired == 0 || rm.Engine.MaxEventQueue == 0 {
		t.Errorf("engine counters empty: %+v", rm.Engine)
	}
	l := topo.Figure3()
	if len(rm.Stations) != len(l.Stations) {
		t.Fatalf("got %d stations, want %d", len(rm.Stations), len(l.Stations))
	}
	p1 := rm.Stations["P1"]
	if p1 == nil {
		t.Fatal("missing station P1")
	}
	if h := p1.Histograms["delay_s"]; h == nil || h.Count == 0 {
		t.Error("P1 delay histogram missing or empty")
	}
	if s := p1.Series["backoff_to_B"]; s == nil || s.Len() == 0 {
		t.Errorf("P1 backoff series missing or empty; have %v", seriesKeys(p1.Registry))
	}
	if len(p1.FSMResidencyS) == 0 {
		t.Error("P1 FSM residency empty")
	}
	sm := rm.Streams["P1-B"]
	if sm == nil || sm.Delay == nil || sm.Delay.Count == 0 {
		t.Error("stream P1-B delay histogram missing or empty")
	}
}

func seriesKeys(r *metrics.Registry) []string {
	var out []string
	for k := range r.Series {
		out = append(out, k)
	}
	return out
}
