package experiments

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

// Factory helpers for the protocol variants the tables compare.

// singlePolicy builds a single-counter policy factory.
func singlePolicy(strat backoff.Strategy, copyOverheard bool) func() backoff.Policy {
	return func() backoff.Policy { return backoff.NewSingle(strat, copyOverheard) }
}

// perDestPolicy builds a per-destination policy factory.
func perDestPolicy(strat backoff.Strategy) func() backoff.Policy {
	return func() backoff.Policy { return backoff.NewPerDest(strat) }
}

func variant(opt macaw.Options, pol func() backoff.Policy) core.MACFactory {
	return core.MACAWFactoryWith(opt, pol)
}

// Table1 reproduces Table 1: the Figure 2 cell under BEB with and without
// backoff copying. "When using the BEB algorithm eventually a single pad
// transmits at channel capacity and the other pad is completely backed off."
func Table1(cfg RunConfig) Table {
	l := topo.Figure2()
	basic := macaw.Options{Exchange: macaw.Basic}
	beb := cfg.goRun("BEB", l, variant(basic, singlePolicy(backoff.NewBEB(), false)))
	bebCopy := cfg.goRun("BEB+copy", l, variant(basic, singlePolicy(backoff.NewBEB(), true)))
	return Table{
		ID: "table1", Figure: l.Name,
		Title:   "throughput of two saturating pads under BEB, without and with backoff copying",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "BEB", Paper: map[string]float64{"P1-B": 48.5, "P2-B": 0}, Results: beb.wait()},
			{Name: "BEB+copy", Paper: map[string]float64{"P1-B": 23.82, "P2-B": 23.32}, Results: bebCopy.wait()},
		},
		Notes: "which pad captures the channel under plain BEB is a coin flip; compare the max/min split, not the row labels",
	}
}

// Table2 reproduces Table 2: six saturating pads (Figure 3) under BEB+copy
// vs MILD+copy.
func Table2(cfg RunConfig) Table {
	l := topo.Figure3()
	basic := macaw.Options{Exchange: macaw.Basic}
	beb := cfg.goRun("BEB copy", l, variant(basic, singlePolicy(backoff.NewBEB(), true)))
	mild := cfg.goRun("MILD copy", l, variant(basic, singlePolicy(backoff.NewMILD(), true)))
	return Table{
		ID: "table2", Figure: l.Name,
		Title:   "six-pad cell: BEB+copy vs MILD+copy",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "BEB copy", Paper: map[string]float64{
				"P1-B": 2.96, "P2-B": 3.01, "P3-B": 2.84, "P4-B": 2.93, "P5-B": 3.00, "P6-B": 3.05,
			}, Results: beb.wait()},
			{Name: "MILD copy", Paper: map[string]float64{
				"P1-B": 6.10, "P2-B": 6.18, "P3-B": 6.05, "P4-B": 6.12, "P5-B": 6.14, "P6-B": 6.09,
			}, Results: mild.wait()},
		},
	}
}

// Table3 reproduces Table 3: the Figure 4 cell with a single FIFO at each
// station (bandwidth allocated to stations) vs one queue per stream
// (bandwidth allocated to streams).
func Table3(cfg RunConfig) Table {
	l := topo.Figure4()
	single := cfg.goRun("Single Stream", l, variant(
		macaw.Options{Exchange: macaw.Basic, PerStream: false},
		singlePolicy(backoff.NewMILD(), true)))
	// §3.2's multiple-stream model keeps a single backoff counter ("Since
	// there is a single base station backoff counter, all streams have an
	// equal chance of being chosen"); per-stream counters arrive in §3.4.
	multi := cfg.goRun("Multiple Stream", l, variant(
		macaw.Options{Exchange: macaw.Basic, PerStream: true},
		singlePolicy(backoff.NewMILD(), true)))
	return Table{
		ID: "table3", Figure: l.Name,
		Title:   "single FIFO vs per-stream queues",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "Single Stream", Paper: map[string]float64{
				"B-P1": 11.42, "B-P2": 12.34, "P3-B": 22.74,
			}, Results: single.wait()},
			{Name: "Multiple Stream", Paper: map[string]float64{
				"B-P1": 15.07, "B-P2": 15.82, "P3-B": 15.64,
			}, Results: multi.wait()},
		},
	}
}

// table4Rates are the paper's noise levels.
var table4Rates = []float64{0, 0.001, 0.01, 0.1}

// Table4 reproduces Table 4: one TCP stream from a pad to its base under
// intermittent noise, with and without the link-level ACK.
func Table4(cfg RunConfig) Table {
	run := func(name string, exchange macaw.Exchange, p float64) *future[float64] {
		return goFuture(cfg, func() float64 {
			n := core.NewNetwork(cfg.Seed)
			rc := cfg.instrument(fmt.Sprintf("%s/p=%g", name, p), n)
			f := variant(macaw.Options{Exchange: exchange}, singlePolicy(backoff.NewMILD(), true))
			pad := n.AddStation("P", geom.V(-4, 0, 6), f)
			base := n.AddStation("B", geom.V(0, 0, 12), f)
			n.AddStream(pad, base, core.TCP, 64)
			if p > 0 {
				n.Medium.SetNoise(phy.DestLoss{P: p})
			}
			res := rc.run(n)
			return res.PPS("P-B")
		})
	}
	mkFutures := func(name string, exchange macaw.Exchange) []*future[float64] {
		futs := make([]*future[float64], len(table4Rates))
		for i, p := range table4Rates {
			futs[i] = run(name, exchange, p)
		}
		return futs
	}
	// Submit every run before collecting the first, so a parallel runner
	// overlaps all eight.
	basicF := mkFutures("RTS-CTS-DATA", macaw.Basic)
	ackedF := mkFutures("RTS-CTS-DATA-ACK", macaw.WithACK)
	collect := func(futs []*future[float64]) core.Results {
		var r core.Results
		for i, p := range table4Rates {
			r.Streams = append(r.Streams, core.StreamResult{
				Name: fmt.Sprintf("p=%g", p),
				PPS:  futs[i].wait(),
			})
		}
		return r
	}
	rows := []string{"p=0", "p=0.001", "p=0.01", "p=0.1"}
	return Table{
		ID: "table4", Figure: "single cell",
		Title:   "TCP throughput vs packet error rate, without and with link-level ACK",
		Streams: rows,
		Columns: []Column{
			{Name: "RTS-CTS-DATA", Paper: map[string]float64{
				"p=0": 40.41, "p=0.001": 36.58, "p=0.01": 16.65, "p=0.1": 2.48,
			}, Results: collect(basicF)},
			{Name: "RTS-CTS-DATA-ACK", Paper: map[string]float64{
				"p=0": 36.76, "p=0.001": 36.67, "p=0.01": 35.52, "p=0.1": 9.93,
			}, Results: collect(ackedF)},
		},
		Notes: "rows are packet error rates; absolute rates differ (this TCP acks every packet over the same MAC), the collapse-without-ACK shape is the claim",
	}
}

// Table5 reproduces Table 5: the Figure 5 exposed-terminal cells with and
// without the DS packet.
func Table5(cfg RunConfig) Table {
	l := topo.Figure5()
	pol := singlePolicy(backoff.NewMILD(), true)
	noDS := cfg.goRun("RTS-CTS-DATA-ACK", l, variant(macaw.Options{Exchange: macaw.WithACK, PerStream: true}, pol))
	ds := cfg.goRun("RTS-CTS-DS-DATA-ACK", l, variant(macaw.Options{Exchange: macaw.Full, PerStream: true}, pol))
	return Table{
		ID: "table5", Figure: l.Name,
		Title:   "exposed terminals without and with the DS packet",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "RTS-CTS-DATA-ACK", Paper: map[string]float64{
				"P1-B1": 46.72, "P2-B2": 0,
			}, Results: noDS.wait()},
			{Name: "RTS-CTS-DS-DATA-ACK", Paper: map[string]float64{
				"P1-B1": 23.35, "P2-B2": 22.63,
			}, Results: ds.wait()},
		},
		Notes: "which exposed pad starves without DS is a coin flip; compare the split",
	}
}

// Table6 reproduces Table 6: the Figure 6 cells without and with RRTS.
func Table6(cfg RunConfig) Table {
	l := topo.Figure6()
	pol := singlePolicy(backoff.NewMILD(), true)
	noRRTS := cfg.goRun("no RRTS", l, variant(macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: false}, pol))
	rrts := cfg.goRun("RRTS", l, variant(macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: true}, pol))
	return Table{
		ID: "table6", Figure: l.Name,
		Title:   "receiver-side contention without and with RRTS",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "no RRTS", Paper: map[string]float64{
				"B1-P1": 0, "B2-P2": 42.87,
			}, Results: noRRTS.wait()},
			{Name: "RRTS", Paper: map[string]float64{
				"B1-P1": 20.39, "B2-P2": 20.53,
			}, Results: rrts.wait()},
		},
		Notes: "the paper's 'P2-B2' row label is read as the B2->P2 stream (Figure 6 is Figure 5 with both flows reversed); the no-RRTS column is bistable across seeds — about half reproduce the paper's one-sided starvation (0/46), the rest degrade mutually — while RRTS removes the starvation basin entirely",
	}
}

// Table7 reproduces Table 7: the Figure 7 configuration that full MACAW
// does not solve — B1's RTS packets are jammed at P1 by P2's data.
func Table7(cfg RunConfig) Table {
	l := topo.Figure7()
	res := cfg.goRun("MACAW", l, core.MACAWFactory(macaw.DefaultOptions()))
	return Table{
		ID: "table7", Figure: l.Name,
		Title:   "the unsolved two-cell configuration under full MACAW",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "MACAW", Paper: map[string]float64{"B1-P1": 0}, Results: res.wait()},
		},
		Notes: "the paper's table body for the P2-B2 row is not in the source text; the claim is B1-P1 starves while P2-B2 runs at capacity",
	}
}

// Table8 reproduces Table 8: the Figure 9 cell where pad P1 is switched
// off, under a single shared backoff counter vs per-destination backoff.
func Table8(cfg RunConfig) Table {
	l := topo.Figure9()
	powerOff := func(n *core.Network) {
		n.PowerOff(n.Station("P1"), cfg.Warmup/2)
	}
	single := cfg.goRun("Single backoff", l, variant(
		macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: true},
		singlePolicy(backoff.NewMILD(), true)), powerOff)
	perDest := cfg.goRun("Per-destination backoff", l, variant(
		macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: true},
		perDestPolicy(backoff.NewMILD())), powerOff)
	rows := []string{"B-P2", "P2-B", "B-P3", "P3-B"}
	return Table{
		ID: "table8", Figure: l.Name,
		Title:   "dead-pad poisoning: single shared backoff vs per-destination backoff",
		Streams: rows,
		Columns: []Column{
			{Name: "Single backoff", Paper: map[string]float64{
				"B-P2": 3.79, "P2-B": 3.78, "B-P3": 3.62, "P3-B": 3.43,
			}, Results: single.wait()},
			{Name: "Per-destination backoff", Results: perDest.wait()},
		},
		Notes: "the paper's per-destination column is truncated in the source text; its claim is that total throughput is no longer affected by the unresponsive pad. P1 powers off at warmup/2.",
	}
}

// Table9 reproduces Table 9: single-stream overhead of MACAW's longer
// exchange relative to MACA.
func Table9(cfg RunConfig) Table {
	run := func(name string, f core.MACFactory) *future[core.Results] {
		return goFuture(cfg, func() core.Results {
			n := core.NewNetwork(cfg.Seed)
			rc := cfg.instrument(name, n)
			pad := n.AddStation("P", geom.V(-4, 0, 6), f)
			base := n.AddStation("B", geom.V(0, 0, 12), f)
			n.AddStream(pad, base, core.UDP, 64)
			return rc.run(n)
		})
	}
	maca := run("MACA", core.MACAFactory())
	macawRes := run("MACAW", core.MACAWFactory(macaw.DefaultOptions()))
	return Table{
		ID: "table9", Figure: "single cell",
		Title:   "single unicast stream: MACA vs MACAW overhead",
		Streams: []string{"P-B"},
		Columns: []Column{
			{Name: "MACA (RTS-CTS-DATA)", Paper: map[string]float64{"P-B": 53.04}, Results: maca.wait()},
			{Name: "MACAW (RTS-CTS-DS-DATA-ACK)", Paper: map[string]float64{"P-B": 49.07}, Results: macawRes.wait()},
		},
	}
}

// Table10 reproduces Table 10: the three-cell Figure 10 scenario under
// MACA and MACAW.
func Table10(cfg RunConfig) Table {
	l := topo.Figure10()
	macaRes := cfg.goRun("MACA", l, core.MACAFactory())
	macawRes := cfg.goRun("MACAW", l, core.MACAWFactory(macaw.DefaultOptions()))
	return Table{
		ID: "table10", Figure: l.Name,
		Title:   "three cells, eleven streams: MACA vs MACAW",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "MACA", Paper: map[string]float64{
				"P1-B1": 9.61, "P2-B1": 2.45, "P3-B1": 3.70, "P4-B1": 0.46,
				"B1-P1": 0.12, "B1-P2": 0.01, "B1-P3": 0.20, "B1-P4": 0.66,
				"P5-B2": 2.24, "B2-P5": 3.21, "P6-B3": 28.40,
			}, Results: macaRes.wait()},
			{Name: "MACAW", Paper: map[string]float64{
				"P1-B1": 3.45, "P2-B1": 3.84, "P3-B1": 3.27, "P4-B1": 3.80,
				"B1-P1": 3.83, "B1-P2": 3.72, "B1-P3": 3.72, "B1-P4": 3.59,
				"P5-B2": 7.82, "B2-P5": 7.80, "P6-B3": 25.16,
			}, Results: macawRes.wait()},
		},
	}
}

// Table11 reproduces Table 11: the four-cell office scenario with a noise
// source in the open area and a pad carried into the coffee room mid-run.
func Table11(cfg RunConfig) Table {
	l := topo.Figure11()
	mv := topo.Figure11MoveSpec()
	mods := func(n *core.Network) {
		n.Medium.SetNoise(phy.RegionLoss{P: 0.01, InRegion: topo.Cell1NoiseRegion})
		p7 := n.Station("P7")
		p7.Radio().SetPos(mv.Start)
		n.MoveStation(p7, moveTime(cfg), mv.Dest)
	}
	macaRes := cfg.goRun("MACA", l, core.MACAFactory(), mods)
	macawRes := cfg.goRun("MACAW", l, core.MACAWFactory(macaw.DefaultOptions()), mods)
	return Table{
		ID: "table11", Figure: l.Name,
		Title:   "office scenario (TCP, noise, mobility): MACA vs MACAW",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "MACA", Paper: map[string]float64{
				"P1-B1": 0.78, "P2-B1": 1.30, "P3-B1": 0.22, "P4-B1": 0.06,
				"P5-B3": 18.17, "P6-B2": 6.94, "P7-B4": 23.82,
			}, Results: macaRes.wait()},
			{Name: "MACAW", Paper: map[string]float64{
				"P1-B1": 2.39, "P2-B1": 2.72, "P3-B1": 2.54, "P4-B1": 2.87,
				"P5-B3": 14.45, "P6-B2": 14.00, "P7-B4": 19.18,
			}, Results: macawRes.wait()},
		},
		Notes: "P7 enters the coffee room at 15% of the run (the paper: 300s of 2000s); the whiteboard noise is a 1% error rate on receptions in the open area",
	}
}

// moveTime scales the paper's 300-of-2000-seconds arrival to the run
// length.
func moveTime(cfg RunConfig) sim.Time {
	return sim.Time(int64(cfg.Total) * 3 / 20)
}
