package experiments

import (
	"macaw/internal/core"
	"macaw/internal/fault"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

// ChaosTable measures robustness retention: how much throughput and fairness
// MACA and MACAW keep when one fault class at a time is injected into a
// two-cell network, relative to the same network running clean. Every run is
// swept by the liveness watchdog, so a wedged FSM or retry loop aborts the
// table instead of quietly deflating a number.
//
// Rows, per fault class:
//
//	pps@class    total carried load (packets/s)
//	keep@class   percent of the baseline class's carried load retained
//	fair@class   Jain fairness index across the four streams
//	events@class fault events injected (crashes+restarts+links+moves+bursts)
func ChaosTable(cfg RunConfig) Table {
	span := sim.Duration(cfg.Total - cfg.Warmup)
	down := span / 16
	if down < fault.MinDowntime {
		down = fault.MinDowntime
	}
	classes := []struct {
		name  string
		apply func(in *fault.Injector)
	}{
		{"baseline", func(in *fault.Injector) {}},
		{"burst", func(in *fault.Injector) {
			in.BurstChannel(0, 0.85, 200*sim.Millisecond, 40*sim.Millisecond)
		}},
		{"asym", func(in *fault.Injector) {
			in.AsymmetricLoss("P1", "B1", 0.6)
		}},
		{"crash", func(in *fault.Injector) {
			at := cfg.Warmup + sim.Time(span/4)
			in.CrashRestart("B1", at, at+sim.Time(down))
		}},
		{"walk", func(in *fault.Injector) {
			in.Walk("P2", cfg.Warmup+sim.Time(span/4), span/16,
				geom.V(7, 3, 6), geom.V(10, 3, 6), geom.V(7, 3, 6), geom.V(4, 3, 6))
		}},
	}
	protos := []struct {
		name string
		f    func() core.MACFactory
	}{
		{"MACA", func() core.MACFactory { return core.MACAFactory() }},
		{"MACAW", func() core.MACFactory { return core.MACAWFactory(macaw.DefaultOptions()) }},
	}

	type point struct {
		pps, fair float64
		events    int
	}
	// One future per protocol x fault class, all submitted before any wait,
	// so the table is byte-identical at every -jobs value.
	futs := make([][]*future[point], len(protos))
	for pi, p := range protos {
		futs[pi] = make([]*future[point], len(classes))
		for ci, c := range classes {
			name, mk, apply := p.name+"/"+c.name, p.f, c.apply
			futs[pi][ci] = goFuture(cfg, func() point {
				n := core.NewNetwork(cfg.Seed)
				rc := cfg.instrument(name, n)
				f := mk()
				b1 := n.AddStation("B1", geom.V(0, 0, 12), f)
				b2 := n.AddStation("B2", geom.V(14, 0, 12), f)
				p1 := n.AddStation("P1", geom.V(-4, 3, 6), f)
				p2 := n.AddStation("P2", geom.V(4, 3, 6), f)
				p3 := n.AddStation("P3", geom.V(12, 3, 6), f)
				p4 := n.AddStation("P4", geom.V(16, 3, 6), f)
				n.AddStream(p1, b1, core.UDP, 20)
				n.AddStream(b1, p2, core.UDP, 20)
				n.AddStream(p3, b2, core.UDP, 20)
				n.AddStream(b2, p4, core.UDP, 20)
				in := fault.NewInjector(n)
				apply(in)
				w := fault.NewWatchdog(n)
				w.MaxQueue = 256
				w.Start(0)
				res := rc.run(n, in.AppendState)
				fc := in.Counters()
				return point{
					pps:  res.TotalPPS(),
					fair: res.Fairness(),
					events: fc.Crashes + fc.Restarts + fc.LinkFaults +
						fc.Moves + fc.BurstEpisodes,
				}
			})
		}
	}

	var rows []string
	for _, metric := range []string{"pps", "keep", "fair", "events"} {
		for _, c := range classes {
			rows = append(rows, metric+"@"+c.name)
		}
	}
	var cols []Column
	for pi, p := range protos {
		pts := make([]point, len(classes))
		for ci := range classes {
			pts[ci] = futs[pi][ci].wait()
		}
		var res core.Results
		for ci, c := range classes {
			res.Streams = append(res.Streams,
				core.StreamResult{Name: "pps@" + c.name, PPS: pts[ci].pps})
		}
		for ci, c := range classes {
			keep := 0.0
			if pts[0].pps > 0 {
				keep = 100 * pts[ci].pps / pts[0].pps
			}
			res.Streams = append(res.Streams,
				core.StreamResult{Name: "keep@" + c.name, PPS: keep})
		}
		for ci, c := range classes {
			res.Streams = append(res.Streams,
				core.StreamResult{Name: "fair@" + c.name, PPS: pts[ci].fair})
		}
		for ci, c := range classes {
			res.Streams = append(res.Streams,
				core.StreamResult{Name: "events@" + c.name, PPS: float64(pts[ci].events)})
		}
		cols = append(cols, Column{Name: p.name, Results: res})
	}
	return Table{
		ID: "chaos", Figure: "two cells, 4 streams",
		Title:   "robustness under injected faults: throughput/fairness retention, MACA vs MACAW",
		Streams: rows,
		Columns: cols,
		Notes:   "keep@ rows are percent of the protocol's own baseline carried load; every run is watchdog-swept (a wedge panics rather than deflating a row)",
	}
}

// ChaosGenerator wraps ChaosTable as a named generator for the -chaos CLI
// mode. It is deliberately not part of Extensions(), so the default table
// set — and its byte-exact output — is unchanged when no faults are asked
// for.
func ChaosGenerator() Generator {
	return Generator{ID: "chaos", Name: "robustness under injected faults", Run: ChaosTable}
}
