package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/metrics"
	"macaw/internal/sim"
	"macaw/internal/topo"
	"macaw/internal/trace"
)

// twoComponentLayout builds two complete cells far beyond the interaction
// cutoff — two causally independent radio components, so the sharded
// engine genuinely runs two event heaps.
func twoComponentLayout() topo.Layout {
	l := topo.Layout{Name: "two-components", Doc: "two cells beyond the interaction cutoff"}
	for i, x := range []float64{0, 1000} {
		p := fmt.Sprintf("c%d", i)
		l.Stations = append(l.Stations,
			topo.StationSpec{Name: p + "B", Pos: geom.V(x, 0, 12), Base: true},
			topo.StationSpec{Name: p + "P1", Pos: geom.V(x+4, 3, 6)},
			topo.StationSpec{Name: p + "P2", Pos: geom.V(x+2, 3, 6)},
		)
		l.Streams = append(l.Streams,
			topo.StreamSpec{From: p + "P1", To: p + "B", Kind: core.UDP, Rate: 24},
			topo.StreamSpec{From: p + "P2", To: p + "B", Kind: core.UDP, Rate: 24},
		)
		l.Relations = append(l.Relations, topo.Relation{A: p + "P1", B: p + "B", Hears: true})
	}
	// The components must not hear each other or the partition is one cell.
	l.Relations = append(l.Relations, topo.Relation{A: "c0B", B: "c1B", Hears: false})
	return l
}

// TestShardedSinksCanonicalAcrossShardCounts holds the lifted sharding
// gate's contract: metrics- and trace-instrumented runs now shard, each
// component recording under a deterministic "#c<comp>" sub-label, and
// because a component's event interleaving is a property of its own heap,
// the label-sorted sink documents are byte-identical at every shard count
// >= 2. Results stay byte-identical to the serial engine's at any count —
// only the sink documents are keyed per component.
func TestShardedSinksCanonicalAcrossShardCounts(t *testing.T) {
	l := twoComponentLayout()
	f := core.MACAWFactory(macaw.DefaultOptions())
	run := func(shards int) (string, string, string) {
		cfg := RunConfig{Total: 6 * sim.Second, Warmup: sim.Second, Seed: 11, Audit: true, Shards: shards}
		cfg.Metrics = metrics.NewSink()
		cfg.Trace = trace.NewJSONLSink()
		res := runLayout(cfg.ForTable("shardsinks"), "macaw", l, f)
		var mb, tb bytes.Buffer
		if err := cfg.Metrics.WriteJSON(&mb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := cfg.Trace.WriteJSONL(&tb); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return mb.String(), tb.String(), fmt.Sprintf("%+v", res)
	}

	_, _, serialRes := run(1)
	m2, t2, r2 := run(2)
	if r2 != serialRes {
		t.Fatalf("sharded results differ from serial:\n serial: %s\n shards=2: %s", serialRes, r2)
	}
	for _, shards := range []int{4, 8} {
		m, tr, r := run(shards)
		if r != serialRes {
			t.Fatalf("shards=%d results differ from serial", shards)
		}
		if m != m2 {
			t.Fatalf("metrics JSON differs between shards=2 and shards=%d:\n--- 2 ---\n%s\n--- %d ---\n%s",
				shards, m2, shards, m)
		}
		if tr != t2 {
			t.Fatalf("trace JSONL differs between shards=2 and shards=%d", shards)
		}
	}

	// The sub-labels are the per-component keys the contract names.
	cfg := RunConfig{Total: 6 * sim.Second, Warmup: sim.Second, Seed: 11, Shards: 2}
	cfg.Metrics = metrics.NewSink()
	runLayout(cfg.ForTable("shardsinks"), "macaw", l, f)
	want := []string{"shardsinks/macaw#c0000", "shardsinks/macaw#c0001"}
	got := cfg.Metrics.Labels()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sharded sink labels = %v, want %v", got, want)
	}
}

// TestSerialSinksKeepPlainLabels: the serial path (Shards <= 1) records
// under the plain run label, exactly as before the gate was lifted.
func TestSerialSinksKeepPlainLabels(t *testing.T) {
	cfg := RunConfig{Total: 4 * sim.Second, Warmup: sim.Second, Seed: 11}
	cfg.Metrics = metrics.NewSink()
	runLayout(cfg.ForTable("shardsinks"), "macaw", twoComponentLayout(), core.MACAWFactory(macaw.DefaultOptions()))
	if got := cfg.Metrics.Labels(); fmt.Sprint(got) != fmt.Sprint([]string{"shardsinks/macaw"}) {
		t.Fatalf("serial sink labels = %v, want the plain run label", got)
	}
}
