package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macaw/internal/metrics"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
	"macaw/internal/trace"
)

// sweepCfg is short enough to sweep twenty seeds twice (warm and cold)
// under the race detector, long enough that every delta kind has events to
// act on after the barrier.
func sweepCfg(seed int64) RunConfig {
	return RunConfig{Total: 4 * sim.Second, Warmup: 1 * sim.Second, Seed: seed, Audit: true}
}

// sweepTestVariants covers four of the six delta kinds — one backoff bound,
// one MILD factor, the offered load, and the retry limit.
var sweepTestVariants = []SweepVariant{
	{Kind: "backoff.max", Value: 16},
	{Kind: "mild.inc", Value: 2},
	{Kind: "load.rate", Value: 52},
	{Kind: "retry.limit", Value: 2},
}

// TestSweepWarmMatchesCold is the sweep engine's differential proof at the
// experiments layer: for every protocol column, every delta kind, and
// twenty seeds, the warm-started sweep — one audited warmup per protocol,
// forked into every variant — renders the byte-identical table to the cold
// sweep that simulates each variant from scratch. Variants dispatch through
// a worker pool, so under -race this also exercises concurrent forks
// reading one shared twin.
func TestSweepWarmMatchesCold(t *testing.T) {
	r := NewRunner(4)
	for seed := int64(1); seed <= 20; seed++ {
		cfg := sweepCfg(seed).WithRunner(r)
		warm, warmInfo, err := RunSweep(cfg, sweepTestVariants, SweepOptions{})
		if err != nil {
			t.Fatalf("seed %d warm sweep: %v", seed, err)
		}
		cold, coldInfo, err := RunSweep(cfg, sweepTestVariants, SweepOptions{Cold: true})
		if err != nil {
			t.Fatalf("seed %d cold sweep: %v", seed, err)
		}
		// The titles name their mode; everything measured must agree.
		cold.Title = warm.Title
		if got, want := fmt.Sprintf("%+v", warm), fmt.Sprintf("%+v", cold); got != want {
			t.Fatalf("seed %d: warm sweep differs from cold:\n--- warm ---\n%s\n--- cold ---\n%s",
				seed, warm.Render(), cold.Render())
		}
		cells := len(sweepTestVariants) * len(sweepCols())
		if warmInfo.Warmups != len(sweepCols()) || warmInfo.Forks != cells || warmInfo.ColdRuns != 0 {
			t.Fatalf("seed %d: warm sweep ran %+v", seed, warmInfo)
		}
		if coldInfo.ColdRuns != cells || coldInfo.Warmups != 0 || coldInfo.Forks != 0 {
			t.Fatalf("seed %d: cold sweep ran %+v", seed, coldInfo)
		}
	}
}

// TestSweepWarmCacheRoundTrip drives the warm-state cache through its
// lifecycle: a first sweep writes one entry per protocol, a second sweep
// verifies against all of them, corrupt and torn entries are rewarmed and
// overwritten (with identical results), a configuration change makes every
// entry stale, and a config-matched entry with diverged state — recorded
// nondeterminism — fails closed.
func TestSweepWarmCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := sweepCfg(3)
	variants := sweepTestVariants[:2]
	cols := len(sweepCols())

	first, info, err := RunSweep(cfg, variants, SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if info.CacheWrites != cols || info.CacheHits != 0 {
		t.Fatalf("first sweep cache: %+v", info)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "warm-*.snap"))
	if len(files) != cols {
		t.Fatalf("cache holds %d files, want %d", len(files), cols)
	}

	second, info, err := RunSweep(cfg, variants, SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if info.CacheHits != cols || info.CacheWrites != 0 {
		t.Fatalf("second sweep cache: %+v", info)
	}
	if first.Render() != second.Render() {
		t.Fatal("cache-verified sweep differs from the first")
	}

	// A bit-flipped entry and a torn (truncated) entry are both repaired.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	if err := os.WriteFile(files[0], flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], data[:16], 0o644); err != nil {
		t.Fatal(err)
	}
	third, info, err := RunSweep(cfg, variants, SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatalf("third sweep: %v", err)
	}
	if info.CacheHits != cols-2 || info.CacheWrites != 2 {
		t.Fatalf("post-corruption sweep cache: %+v", info)
	}
	if first.Render() != third.Render() {
		t.Fatal("sweep over a corrupted cache differs from the first")
	}

	// Changing the run configuration stales every entry: same file names
	// (label, seed, and barrier agree), different config prefix.
	longer := cfg
	longer.Total = 5 * sim.Second
	if _, info, err = RunSweep(longer, variants, SweepOptions{CacheDir: dir}); err != nil {
		t.Fatalf("staled sweep: %v", err)
	}
	if info.CacheHits != 0 || info.CacheWrites != cols {
		t.Fatalf("staled sweep cache: %+v", info)
	}

	// A config-matched entry whose state bytes differ is nondeterminism
	// caught in the act, never silently overwritten.
	snap, err := snapshot.ReadFile(files[2])
	if err != nil {
		t.Fatal(err)
	}
	snap.State = append([]byte("phantom line\n"), snap.State...)
	if err := snapshot.WriteFile(files[2], snap); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("sweep over a diverged cache entry did not fail closed")
			}
			if !strings.Contains(fmt.Sprint(p), "warm cache") {
				t.Fatalf("divergence panic does not name the cache: %v", p)
			}
		}()
		RunSweep(longer, variants, SweepOptions{CacheDir: dir})
	}()
}

// TestSweepWarmCacheEviction pins the cache bound: with CacheMax set below
// the number of protocols, the oldest entries are pruned and only CacheMax
// files survive.
func TestSweepWarmCacheEviction(t *testing.T) {
	dir := t.TempDir()
	_, info, err := RunSweep(sweepCfg(5), sweepTestVariants[:1], SweepOptions{CacheDir: dir, CacheMax: 2})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if info.CacheWrites != len(sweepCols()) {
		t.Fatalf("sweep cache: %+v", info)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "warm-*.snap"))
	if len(files) != 2 {
		t.Fatalf("cache holds %d files after eviction, want 2", len(files))
	}
}

// TestParseSweepSpec pins the spec grammar and its error reporting.
func TestParseSweepSpec(t *testing.T) {
	got, err := ParseSweepSpec("backoff.max=16,32; load.rate = 40")
	if err != nil {
		t.Fatalf("ParseSweepSpec: %v", err)
	}
	want := []SweepVariant{{"backoff.max", 16}, {"backoff.max", 32}, {"load.rate", 40}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ParseSweepSpec = %v, want %v", got, want)
	}
	for _, tc := range []struct{ spec, wantErr string }{
		{"nonsense=1", "unknown sweep parameter"},
		{"backoff.max=fast", "is not a number"},
		{"backoff.max", "not kind=v1,v2"},
		{"", "names no variants"},
		{";;", "names no variants"},
	} {
		if _, err := ParseSweepSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSweepSpec(%q) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

// TestRunSweepRefusesIncompatibleConfigs: sinks observe only the tail of a
// warm-started run, so sweeps refuse them rather than record documents that
// silently differ from a cold run's; checkpoint plans and a caller-set
// delta are config errors too.
func TestRunSweepRefusesIncompatibleConfigs(t *testing.T) {
	base := sweepCfg(1)
	for name, cfg := range map[string]RunConfig{
		"metrics":    func() RunConfig { c := base; c.Metrics = metrics.NewSink(); return c }(),
		"trace":      func() RunConfig { c := base; c.Trace = trace.NewJSONLSink(); return c }(),
		"checkpoint": func() RunConfig { c := base; c.Checkpoint = &CheckpointPlan{}; return c }(),
		"delta":      func() RunConfig { c := base; c.Delta = &snapshot.Delta{Kind: "load.rate", Value: 40}; return c }(),
	} {
		if _, _, err := RunSweep(cfg, sweepTestVariants[:1], SweepOptions{}); err == nil {
			t.Errorf("RunSweep with %s configured did not error", name)
		}
	}
	if _, _, err := RunSweep(base, nil, SweepOptions{}); err == nil {
		t.Error("RunSweep with no variants did not error")
	}
}
