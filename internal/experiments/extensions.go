package experiments

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/phy"
	"macaw/internal/sim"
	"macaw/internal/topo"
)

// Extension experiments: the §4 "Future Design Issues" alternatives the
// paper describes but does not evaluate, measured with the same harness.

// ExtAckSchemes compares the three acknowledgement designs of §3.3.1/§4 —
// per-packet ACK, piggybacked ACK, and NACK — on a saturated single-cell
// stream across noise levels.
func ExtAckSchemes(cfg RunConfig) Table {
	type scheme struct {
		name string
		opt  macaw.Options
	}
	schemes := []scheme{
		{"ACK", macaw.DefaultOptions()},
		{"piggyback", func() macaw.Options { o := macaw.DefaultOptions(); o.PiggybackACK = true; return o }()},
		{"NACK", func() macaw.Options { o := macaw.DefaultOptions(); o.NACK = true; return o }()},
	}
	rates := []float64{0, 0.01, 0.1}
	rows := make([]string, len(rates))
	for i, p := range rates {
		rows[i] = fmt.Sprintf("p=%g", p)
	}
	// Submit all scheme x rate runs before collecting any.
	futs := make([][]*future[float64], len(schemes))
	for si, sc := range schemes {
		futs[si] = make([]*future[float64], len(rates))
		for pi, p := range rates {
			name, opt, p := sc.name, sc.opt, p
			futs[si][pi] = goFuture(cfg, func() float64 {
				n := core.NewNetwork(cfg.Seed)
				rc := cfg.instrument(fmt.Sprintf("%s/p=%g", name, p), n)
				f := core.MACAWFactory(opt)
				pad := n.AddStation("P", geom.V(-4, 0, 6), f)
				base := n.AddStation("B", geom.V(0, 0, 12), f)
				n.AddStream(pad, base, core.UDP, 64)
				if p > 0 {
					n.Medium.SetNoise(phy.DestLoss{P: p})
				}
				res := rc.run(n)
				return res.PPS("P-B")
			})
		}
	}
	var cols []Column
	for si, sc := range schemes {
		var r core.Results
		for pi, p := range rates {
			r.Streams = append(r.Streams, core.StreamResult{
				Name: fmt.Sprintf("p=%g", p), PPS: futs[si][pi].wait(),
			})
		}
		cols = append(cols, Column{Name: sc.name, Results: r})
	}
	return Table{
		ID: "ext-ackschemes", Figure: "single cell",
		Title:   "§4 acknowledgement alternatives: ACK vs piggybacked ACK vs NACK, UDP under noise",
		Streams: rows,
		Columns: cols,
		Notes:   "not evaluated in the paper ('we have not tested either of these alternative ACKing schemes')",
	}
}

// ExtCarrierSense compares the DS packet against §3.3.2's carrier-sense
// alternative on the exposed-terminal cells of Figure 5.
func ExtCarrierSense(cfg RunConfig) Table {
	l := topo.Figure5()
	pol := singlePolicy(backoff.NewMILD(), true)
	ds := cfg.goRun("DS", l, variant(macaw.Options{Exchange: macaw.Full, PerStream: true}, pol))
	cs := cfg.goRun("carrier sense", l, variant(macaw.Options{Exchange: macaw.WithACK, PerStream: true, CarrierSense: true}, pol))
	both := cfg.goRun("DS + carrier sense", l, variant(macaw.Options{Exchange: macaw.Full, PerStream: true, CarrierSense: true}, pol))
	return Table{
		ID: "ext-carriersense", Figure: l.Name,
		Title:   "§3.3.2 alternatives for exposed terminals: DS packet vs carrier sense vs both",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "DS", Results: ds.wait()},
			{Name: "carrier sense", Results: cs.wait()},
			{Name: "DS + carrier sense", Results: both.wait()},
		},
		Notes: "the paper chose DS to avoid carrier-sense hardware; 'one could equivalently use full carrier-sense, which also inhibits RTS-RTS collisions'",
	}
}

// ExtLeakage reproduces the §3.4 backoff-leakage discussion on Figure 8:
// four saturating pads in cell C1 overhear border pad P5 in lightly loaded
// C2, so station-level copying exports C1's high counters into C2. The
// per-destination scheme is supposed to keep the congestion estimates
// separate.
func ExtLeakage(cfg RunConfig) Table {
	l := topo.Figure8()
	single := cfg.goRun("Single+copy", l, variant(
		macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: true},
		singlePolicy(backoff.NewMILD(), true)))
	perDest := cfg.goRun("Per-destination", l, variant(
		macaw.Options{Exchange: macaw.Full, PerStream: true, RRTS: true},
		perDestPolicy(backoff.NewMILD())))
	return Table{
		ID: "ext-leakage", Figure: l.Name,
		Title:   "§3.4 backoff leakage across the cell border: single copied counter vs per-destination",
		Streams: streamNames(l),
		Columns: []Column{
			{Name: "Single+copy", Results: single.wait()},
			{Name: "Per-destination", Results: perDest.wait()},
		},
		Notes: "the claim under test is C2's throughput (P5-B2, P6-B2): leaked C1 counters idle the uncongested cell",
	}
}

// MulticastResult summarizes the §3.3.4 multicast experiment.
type MulticastResult struct {
	// Sent counts multicast data packets transmitted.
	Sent int
	// NearDelivered / FarDelivered count receptions at a receiver inside
	// the sender's range and at one hidden from the sender (in range of
	// an interferer only).
	NearDelivered, FarDelivered int
	// InterfererDelivered counts the interfering unicast stream's
	// deliveries.
	InterfererDelivered int
}

// ExtMulticast exercises the §3.3.4 RTS-DATA multicast scheme and its
// acknowledged flaw: stations in range of a *receiver* but not the sender
// get no signal to defer, so a hidden interferer destroys multicast
// receptions that unicast's CTS would have protected.
func ExtMulticast(cfg RunConfig) MulticastResult {
	s := sim.New(cfg.Seed)
	medium := phy.New(s, phy.DefaultParams())
	cfgMAC := mac.DefaultConfig()

	type node struct {
		m         *macaw.MACAW
		delivered int
		sent      int
	}
	add := func(id frame.NodeID, pos geom.Vec3) *node {
		nd := &node{}
		radio := medium.Attach(id, pos, nil)
		env := &mac.Env{
			Sim: s, Radio: radio, Rand: s.NewRand(), Cfg: cfgMAC,
			Callbacks: mac.Callbacks{
				Deliver: func(frame.NodeID, []byte) { nd.delivered++ },
				Sent:    func(*mac.Packet) { nd.sent++ },
			},
		}
		nd.m = macaw.New(env, macaw.DefaultOptions())
		return nd
	}

	// Geometry: sender S multicasts; N is near S; F is near the edge of
	// S's range and also in range of hidden interferer H, who unicasts to
	// its own partner X and cannot hear S at all.
	sender := add(1, geom.V(0, 0, 6))
	near := add(2, geom.V(3, 0, 6))
	far := add(3, geom.V(9, 0, 6))
	hidden := add(4, geom.V(17, 0, 6))
	partner := add(5, geom.V(25, 0, 6))
	_ = partner

	mcast := 0
	for i := 0; i < int(cfg.Total/sim.Second)*16; i++ {
		sender.m.Enqueue(&mac.Packet{Dst: frame.Broadcast, Size: frame.DefaultDataBytes})
		hidden.m.Enqueue(&mac.Packet{Dst: 5, Size: frame.DefaultDataBytes})
		mcast++
	}
	s.Run(cfg.Total)
	return MulticastResult{
		Sent:                sender.sent,
		NearDelivered:       near.delivered,
		FarDelivered:        far.delivered,
		InterfererDelivered: partner.delivered,
	}
}

// ExtTokenVsMACAW compares the token-based scheme the paper defers to
// future work against MACAW in the six-pad cell of Figure 3, both with all
// stations alive and with one pad switched off mid-run (the paper's stated
// worry: "frequent token hand-offs or recovery").
func ExtTokenVsMACAW(cfg RunConfig) Table {
	run := func(name string, f core.MACFactory, kill bool) *future[core.Results] {
		return goFuture(cfg, func() core.Results {
			l := topo.Figure3()
			n := core.NewNetwork(cfg.Seed)
			rc := cfg.instrument(name, n)
			if err := l.Build(n, f); err != nil {
				panic(err)
			}
			if kill {
				n.PowerOff(n.Station("P6"), cfg.Warmup/2)
			}
			return rc.run(n)
		})
	}
	tokenF := core.TokenFactory(token.Options{Ring: core.RingOf(7)})
	macawF := core.MACAWFactory(macaw.DefaultOptions())
	tokenAlive := run("token", tokenF, false)
	macawAlive := run("MACAW", macawF, false)
	tokenDead := run("token, P6 dead", tokenF, true)
	macawDead := run("MACAW, P6 dead", macawF, true)
	return Table{
		ID: "ext-token", Figure: "figure3",
		Title:   "future work implemented: token passing vs MACAW, healthy and with a dead pad",
		Streams: streamNames(topo.Figure3()),
		Columns: []Column{
			{Name: "token", Results: tokenAlive.wait()},
			{Name: "MACAW", Results: macawAlive.wait()},
			{Name: "token, P6 dead", Results: tokenDead.wait()},
			{Name: "MACAW, P6 dead", Results: macawDead.wait()},
		},
		Notes: "token access is collision-free and exactly fair but pays hand-off overhead per rotation and recovery timeouts when members die",
	}
}

// Extensions returns the extension experiment generators.
func Extensions() []Generator {
	return []Generator{
		{"ext-ackschemes", "§4 acknowledgement alternatives", ExtAckSchemes},
		{"ext-carriersense", "§3.3.2 DS vs carrier sense", ExtCarrierSense},
		{"ext-leakage", "§3.4 backoff leakage (Figure 8)", ExtLeakage},
		{"ext-token", "future work: token passing vs MACAW", ExtTokenVsMACAW},
		{"ext-loadsweep", "offered load vs throughput and delay", ExtLoadSweep},
	}
}

// ExtLoadSweep produces the classic MAC evaluation curve the paper does not
// include: offered load vs carried load and delivery delay, for MACA, MACAW
// and the token scheme in a four-pad cell. Rows labelled "offered=N" carry
// throughput (pps); rows labelled "delay@N" carry the mean in-window
// delivery delay in milliseconds.
func ExtLoadSweep(cfg RunConfig) Table {
	rates := []float64{4, 8, 12, 16}
	protos := []struct {
		name string
		f    func() core.MACFactory
	}{
		{"MACA", func() core.MACFactory { return core.MACAFactory() }},
		{"MACAW", func() core.MACFactory { return core.MACAWFactory(macaw.DefaultOptions()) }},
		{"token", func() core.MACFactory { return core.TokenFactory(token.Options{Ring: core.RingOf(5)}) }},
	}
	var rows []string
	for _, r := range rates {
		rows = append(rows, fmt.Sprintf("offered=%gx4", r))
	}
	for _, r := range rates {
		rows = append(rows, fmt.Sprintf("delay@%gx4", r))
	}
	// One future per protocol x rate point, all submitted before any wait;
	// each yields the (carried load, mean delay) pair for that point.
	type point struct{ pps, delayMS float64 }
	futs := make([][]*future[point], len(protos))
	for pi, p := range protos {
		futs[pi] = make([]*future[point], len(rates))
		for ri, r := range rates {
			name, mk, r := p.name, p.f, r
			futs[pi][ri] = goFuture(cfg, func() point {
				n := core.NewNetwork(cfg.Seed)
				rc := cfg.instrument(fmt.Sprintf("%s/offered=%gx4", name, r), n)
				f := mk()
				base := n.AddStation("B", geom.V(0, 0, 12), f)
				for i := 0; i < 4; i++ {
					pad := n.AddStation(fmt.Sprintf("P%d", i+1), geom.V(4-float64(2*i), 3, 6), f)
					n.AddStream(pad, base, core.UDP, r)
				}
				out := rc.run(n)
				var meanDelay float64
				var nd int
				for _, s := range out.Streams {
					if s.MeanDelay > 0 {
						meanDelay += s.MeanDelay.Seconds() * 1000
						nd++
					}
				}
				if nd > 0 {
					meanDelay /= float64(nd)
				}
				return point{pps: out.TotalPPS(), delayMS: meanDelay}
			})
		}
	}
	var cols []Column
	for pi, p := range protos {
		var res core.Results
		for ri, r := range rates {
			pt := futs[pi][ri].wait()
			res.Streams = append(res.Streams,
				core.StreamResult{Name: fmt.Sprintf("offered=%gx4", r), PPS: pt.pps},
				core.StreamResult{Name: fmt.Sprintf("delay@%gx4", r), PPS: pt.delayMS},
			)
		}
		cols = append(cols, Column{Name: p.name, Results: res})
	}
	return Table{
		ID: "ext-loadsweep", Figure: "single cell, 4 pads",
		Title:   "offered load vs carried load and mean delay (ms) per protocol",
		Streams: rows,
		Columns: cols,
		Notes:   "carried load should track offered load until the channel saturates (~45 pps for MACAW, ~52 for MACA, ~58 for token), then flatten while delay explodes",
	}
}
