package experiments

import (
	"runtime"
	"testing"
)

// TestShardedTablesMatchSerial asserts the -shards contract at the
// experiments layer: a sweep with Shards set renders byte-identically to
// the plain serial sweep. The paper's figures all fit inside one radio
// component, so these runs exercise the eligibility gates and the
// blueprint serial fallback; the multi-component parallel merge is
// covered by the differential tests in internal/core.
func TestShardedTablesMatchSerial(t *testing.T) {
	serial := renderAll(runSerial(detCfg()))
	for _, shards := range []int{4, 8} {
		cfg := detCfg()
		cfg.Shards = shards
		if got := renderAll(runSerial(cfg)); got != serial {
			t.Fatalf("shards=%d sweep differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
				shards, serial, got)
		}
	}
}

// TestShardedAuditedTableMatchesSerial checks that Audit+Shards combine:
// the oracle rides the blueprint's Instrument hook and the rendered table
// stays byte-identical to the bare serial run.
func TestShardedAuditedTableMatchesSerial(t *testing.T) {
	g, ok := ByID("table1")
	if !ok {
		t.Fatal("table1 generator missing")
	}
	serial := g.Run(detCfg()).Render()
	cfg := detCfg()
	cfg.Shards = 4
	cfg.Audit = true
	if got := g.Run(cfg).Render(); got != serial {
		t.Fatalf("audited sharded table1 differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
			serial, got)
	}
}

// TestRunnerCapsJobsAtNumCPU pins the -jobs regression fix: the effective
// worker count never exceeds the machine's cores, and a cap of 1 means the
// pool is skipped (Tables runs generators inline).
func TestRunnerCapsJobsAtNumCPU(t *testing.T) {
	if got := NewRunner(0).Jobs(); got != 1 {
		t.Fatalf("NewRunner(0).Jobs() = %d, want 1", got)
	}
	huge := NewRunner(1 << 20)
	if huge.Jobs() > runtime.NumCPU() {
		t.Fatalf("Jobs() = %d exceeds NumCPU = %d", huge.Jobs(), runtime.NumCPU())
	}
}
