package experiments

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/dcf"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/mac/tournament"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
)

// ckptCfg is long enough for contention, retries, and the chaos fault
// windows to develop, short enough to sweep many seeds.
func ckptCfg() RunConfig {
	return RunConfig{Total: 12 * sim.Second, Warmup: 2 * sim.Second, Seed: 1, Audit: true}
}

// TestCheckpointBarriersArePassive is the tentpole's first half: running
// with checkpoint barriers — pausing the engine, capturing the full state
// inventory, writing snapshot files — renders every table byte-identically
// to an uninterrupted run. Barriers are engine pauses, not events, so they
// must not perturb a single tie-break.
func TestCheckpointBarriersArePassive(t *testing.T) {
	gens := []Generator{mustGen(t, "table2"), mustGen(t, "table9"), ChaosGenerator()}
	cfg := ckptCfg()
	var straight strings.Builder
	for _, g := range gens {
		straight.WriteString(g.Run(cfg.ForTable(g.ID)).Render())
	}

	ck := ckptCfg()
	ck.Checkpoint = &CheckpointPlan{Every: 3 * sim.Second, Dir: t.TempDir()}
	var barriered strings.Builder
	for _, g := range gens {
		barriered.WriteString(g.Run(ck.ForTable(g.ID)).Render())
	}
	if straight.String() != barriered.String() {
		t.Fatalf("checkpointed run differs from straight run:\n--- straight ---\n%s\n--- checkpointed ---\n%s",
			straight.String(), barriered.String())
	}
	files, _ := filepath.Glob(filepath.Join(ck.Checkpoint.Dir, "*.snap"))
	if len(files) == 0 {
		t.Fatal("no snapshot files written")
	}
}

// TestRestoreAndContinueIsBitIdentical is the tentpole's second half: a
// snapshot written mid-run restores — replay to the barrier, byte-verified
// state, continue — to the same rendered table as the uninterrupted run,
// audit verdicts included (both runs are audited; a violation panics).
func TestRestoreAndContinueIsBitIdentical(t *testing.T) {
	cfg := ckptCfg()
	gen := mustGen(t, "table9")
	straight := gen.Run(cfg.ForTable(gen.ID)).Render()

	dir := t.TempDir()
	ck := ckptCfg()
	ck.Checkpoint = &CheckpointPlan{Every: 4 * sim.Second, Dir: dir}
	gen.Run(ck.ForTable(gen.ID))

	// Restore every snapshot the run produced — both protocols (MACA and
	// MACAW), every barrier — and demand the identical finished table.
	files, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(files) < 4 {
		t.Fatalf("want >= 4 snapshots (2 protocols x 2 barriers), got %d (%v)", len(files), err)
	}
	for _, f := range files {
		snap, err := snapshot.ReadFile(f)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", f, err)
		}
		tab, err := ReplayRun(snap, RunConfig{})
		if err != nil {
			t.Fatalf("ReplayRun(%s): %v", filepath.Base(f), err)
		}
		if got := tab.Render(); got != straight {
			t.Fatalf("restore from %s diverges:\n--- straight ---\n%s\n--- restored ---\n%s",
				filepath.Base(f), straight, got)
		}
	}
}

// TestRestoreRejectsForeignSnapshot: a snapshot from one run must not
// silently verify against another; ReplayRun reports when no run in the
// table matched the snapshot's identity.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	snap := &snapshot.Snapshot{
		ConfigHash: 0xdead, Seed: 1, Barrier: 4 * sim.Second,
		Total: 12 * sim.Second, Warmup: 2 * sim.Second,
		Table: "table9", Run: "table9/NOPE", State: []byte("x\n"),
	}
	if _, err := ReplayRun(snap, RunConfig{}); err == nil {
		t.Fatal("snapshot with a foreign run label replayed without error")
	}
	snap.Table = "tableX"
	if _, err := ReplayRun(snap, RunConfig{}); err == nil {
		t.Fatal("snapshot naming an unknown table replayed without error")
	}
}

// TestChaosCheckpointMidFaultWindow is the chaos-suite satellite: checkpoint
// in the middle of each fault class's active window — crash/restart downtime
// and Gilbert–Elliott burst episodes are the hard cases, their injector
// trajectories are live mid-capture — restore, and demand the chaos table
// byte-identical to the uninterrupted one.
func TestChaosCheckpointMidFaultWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos table is slow")
	}
	cfg := ckptCfg()
	gen := ChaosGenerator()
	straight := gen.Run(cfg.ForTable(gen.ID)).Render()

	// ckptCfg spans 2s..12s: the crash window opens at warmup+span/4 =
	// 4.5s, bursts and walks run throughout. A barrier at 5s lands inside
	// the crash's downtime and mid-burst-trajectory for the GE classes.
	dir := t.TempDir()
	ck := ckptCfg()
	ck.Checkpoint = &CheckpointPlan{Barriers: []sim.Time{5 * sim.Second}, Dir: dir}
	if got := gen.Run(ck.ForTable(gen.ID)).Render(); got != straight {
		t.Fatalf("chaos table with mid-fault barriers differs from straight run")
	}

	for _, class := range []string{"crash", "burst", "asym", "walk", "baseline"} {
		for _, proto := range []string{"MACA", "MACAW"} {
			run := "chaos/" + proto + "/" + class
			path := filepath.Join(dir, snapshot.FileName(run, cfg.Seed, 5*sim.Second))
			snap, err := snapshot.ReadFile(path)
			if err != nil {
				t.Fatalf("missing mid-fault snapshot for %s: %v", run, err)
			}
			if snap.Run != run {
				t.Fatalf("snapshot run = %q, want %q", snap.Run, run)
			}
			// The injector trajectory must be part of the inventory:
			// restoring mid-window hinges on it.
			if !strings.Contains(string(snap.State), "fault") {
				t.Fatalf("snapshot of %s carries no fault-injector state", run)
			}
		}
	}

	// Restore the two hard cases and demand the full chaos table back,
	// byte-identical.
	for _, run := range []string{"chaos/MACAW/crash", "chaos/MACA/burst"} {
		snap, err := snapshot.ReadFile(filepath.Join(dir, snapshot.FileName(run, cfg.Seed, 5*sim.Second)))
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ReplayRun(snap, RunConfig{})
		if err != nil {
			t.Fatalf("ReplayRun(%s): %v", run, err)
		}
		if got := tab.Render(); got != straight {
			t.Fatalf("chaos table restored from %s diverges from straight run", run)
		}
	}
}

// ckptProtocols are the MACs the random-restore property test sweeps: every
// protocol family in the repo.
var ckptProtocols = []struct {
	name string
	f    func() core.MACFactory
}{
	{"MACA", func() core.MACFactory { return core.MACAFactory() }},
	{"MACAW", func() core.MACFactory { return core.MACAWFactory(macaw.DefaultOptions()) }},
	{"CSMA", func() core.MACFactory { return core.CSMAFactory(csma.Options{ACK: true}) }},
	{"token", func() core.MACFactory { return core.TokenFactory(token.Options{Ring: core.RingOf(3)}) }},
	{"DCF", func() core.MACFactory { return core.DCFFactory(dcf.Options{}) }},
	{"TOURN", func() core.MACFactory { return core.TournamentFactory(tournament.Options{}) }},
}

// ckptRun builds a contended three-station cell under the given MAC and runs
// it through the instrument/run chokepoint — the same path the generators
// use, including audit.
func ckptRun(cfg RunConfig, name string, mk func() core.MACFactory) core.Results {
	n := core.NewNetwork(cfg.Seed)
	rc := cfg.instrument(name, n)
	f := mk()
	b := n.AddStation("B", geom.V(0, 0, 12), f)
	p1 := n.AddStation("P1", geom.V(-4, 3, 6), f)
	p2 := n.AddStation("P2", geom.V(4, 3, 6), f)
	n.AddStream(p1, b, core.UDP, 30)
	n.AddStream(p2, b, core.UDP, 30)
	n.AddStream(b, p1, core.UDP, 10)
	return rc.run(n)
}

// TestRestoreAtRandomTimes is the property-test satellite: across every
// protocol and 50 seeds, checkpoint at random virtual times, restore each
// snapshot, and diff the continued run's results (and audit verdicts — all
// runs are audited, a violation panics) against the straight-through run.
// The barrier times are drawn per (protocol, seed), so the sweep restores
// at far more than 25 distinct virtual times.
func TestRestoreAtRandomTimes(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 4
	}
	cfg := RunConfig{Total: 6 * sim.Second, Warmup: 1 * sim.Second, Audit: true}
	for _, proto := range ckptProtocols {
		proto := proto
		t.Run(proto.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= int64(seeds); seed++ {
				cfg := cfg
				cfg.Seed = seed
				straight := ckptRun(cfg, proto.name, proto.f)

				// Two random barriers inside (warmup, total), drawn
				// deterministically per (protocol, seed).
				rng := rand.New(rand.NewSource(seed<<8 + int64(len(proto.name))))
				span := int64(cfg.Total) - int64(cfg.Warmup)
				var barriers []sim.Time
				for len(barriers) < 2 {
					b := sim.Time(int64(cfg.Warmup) + 1 + rng.Int63n(span-2))
					barriers = append(barriers, b)
				}
				dir := t.TempDir()
				ck := cfg
				ck.Checkpoint = &CheckpointPlan{Barriers: barriers, Dir: dir}
				if got := ckptRun(ck, proto.name, proto.f); !reflect.DeepEqual(straight, got) {
					t.Fatalf("seed %d: barriered results differ from straight run", seed)
				}

				// Restore at one of the two barriers, alternating.
				b := barriers[seed%2]
				snap, err := snapshot.ReadFile(filepath.Join(dir, snapshot.FileName(proto.name, seed, b)))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				re := cfg
				re.Checkpoint = &CheckpointPlan{RestoreSnap: snap}
				got := ckptRun(re, proto.name, proto.f)
				if !reflect.DeepEqual(straight, got) {
					t.Fatalf("seed %d: restore at t=%v diverges from straight run", seed, b)
				}
				if v := re.Checkpoint.Verified(); len(v) != 1 || v[0] != proto.name {
					t.Fatalf("seed %d: restore at t=%v was not verified (%v)", seed, b, v)
				}
			}
		})
	}
}

// TestManifestMemoizesCompletedRuns: a sweep re-run against the manifest of
// a finished sweep replays nothing — no new snapshots are written — and
// renders byte-identically. This is the crash-safe resume path: whatever a
// killed sweep completed is skipped on the next invocation.
func TestManifestMemoizesCompletedRuns(t *testing.T) {
	dir := t.TempDir()
	man, err := snapshot.OpenManifest(filepath.Join(dir, "manifest.bin"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptCfg()
	cfg.Checkpoint = &CheckpointPlan{Every: 4 * sim.Second, Dir: dir, Manifest: man}
	gen := mustGen(t, "table9")
	first := gen.Run(cfg.ForTable(gen.ID)).Render()
	if man.Len() != 2 {
		t.Fatalf("manifest recorded %d runs, want 2", man.Len())
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	for _, s := range snaps {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}

	// Re-open the manifest as a fresh process would and re-run the sweep.
	man2, err := snapshot.OpenManifest(filepath.Join(dir, "manifest.bin"))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := ckptCfg()
	cfg2.Checkpoint = &CheckpointPlan{Every: 4 * sim.Second, Dir: dir, Manifest: man2}
	second := gen.Run(cfg2.ForTable(gen.ID)).Render()
	if first != second {
		t.Fatalf("memoized sweep renders differently:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.snap")); len(left) != 0 {
		t.Fatalf("memoized sweep re-executed runs: %d new snapshots written", len(left))
	}
}

// TestRunnerReportsFailedRun is the worker-pool satellite: a run that dies
// under -jobs must not take the process down or strand its siblings — the
// pool drains, queued runs cancel, and Tables returns which (table, seed)
// died.
func TestRunnerReportsFailedRun(t *testing.T) {
	boom := Generator{ID: "boom", Name: "always panics", Run: func(cfg RunConfig) Table {
		f := goFuture(cfg, func() int { panic("injected failure") })
		f.wait()
		return Table{ID: "boom"}
	}}
	good := mustGen(t, "table9")
	cfg := RunConfig{Total: 4 * sim.Second, Warmup: 1 * sim.Second, Seed: 7}

	tabs, err := NewRunner(4).Tables([]Generator{good, boom}, cfg)
	if err == nil {
		t.Fatal("Tables returned no error for a panicking run")
	}
	var rf *RunFailure
	if f, ok := err.(*RunFailure); ok {
		rf = f
	} else {
		t.Fatalf("error is %T, want *RunFailure", err)
	}
	if rf.Table != "boom" || rf.Seed != 7 {
		t.Fatalf("failure names (%q, %d), want (boom, 7)", rf.Table, rf.Seed)
	}
	if msg := err.Error(); !strings.Contains(msg, "boom") || !strings.Contains(msg, "seed 7") {
		t.Fatalf("error %q does not name the dead (table, seed)", msg)
	}
	// The sibling table completed and was not abandoned. (On a one-core
	// machine the pool degenerates to the serial path, which stops at the
	// failure; the completed sibling is still returned either way.)
	if len(tabs) < 1 || tabs[0].ID != "table9" || len(tabs[0].Columns) == 0 {
		t.Fatalf("sibling table abandoned: %+v", tabs)
	}

	// Serial path: same reporting, partial results up to the failure.
	if _, err := NewRunner(1).Tables([]Generator{good, boom}, cfg); err == nil {
		t.Fatal("serial Tables returned no error for a panicking run")
	}
}

// TestRunnerCancelsQueuedRuns: once one run fails, runs still waiting for a
// pool slot are skipped rather than started.
func TestRunnerCancelsQueuedRuns(t *testing.T) {
	r := NewRunner(1)
	cfg := RunConfig{Seed: 3}.WithRunner(r)
	cfg.table = "boom"
	first := goFuture(cfg, func() int { panic("die first") })
	first.wait()
	started := false
	second := goFuture(cfg, func() int { started = true; return 1 })
	if got := second.wait(); got != 0 || started {
		t.Fatalf("queued run started after a failure (val=%d started=%t)", got, started)
	}
	if f := r.Failure(); f == nil || f.Seed != 3 {
		t.Fatalf("failure not recorded: %+v", f)
	}
}

// mustGen fetches a paper-table generator.
func mustGen(t *testing.T, id string) Generator {
	t.Helper()
	g, ok := ByID(id)
	if !ok {
		t.Fatalf("generator %q missing", id)
	}
	return g
}

// TestRestoreMismatchNamesParameter is the restore-error satellite: when a
// snapshot's run label matches but its configuration does not, the failure
// names the first differing rebuild parameter instead of two opaque hashes.
func TestRestoreMismatchNamesParameter(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptCfg()
	cfg.Checkpoint = &CheckpointPlan{Every: 4 * sim.Second, Dir: dir}
	gen := mustGen(t, "table9")
	gen.Run(cfg.ForTable(gen.ID))

	files, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(files) == 0 {
		t.Fatal("no snapshots written")
	}
	snap, err := snapshot.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Drift the rebuild config: the replay reconstructs the run from the
	// snapshot header, so a tampered Total no longer matches the captured
	// configuration description.
	snap.Total += sim.Second
	_, err = ReplayRun(snap, RunConfig{})
	if err == nil {
		t.Fatal("replay with a drifted config did not fail")
	}
	if !strings.Contains(err.Error(), "total=") || !strings.Contains(err.Error(), "in the snapshot vs") {
		t.Fatalf("mismatch error does not name the differing parameter: %v", err)
	}
}
