package experiments

// SPI conformance suite: every mac.Engine backend — csma, maca, macaw,
// token, dcf, tournament — must satisfy the contracts the rest of the repo
// builds on: deterministic replay, fork/AdoptFrom byte-identity at a barrier,
// liveness under the PR 2 chaos classes (watchdog-swept), and a clean
// conformance-oracle audit. The ckptProtocols list in checkpoint_test.go is
// the single source of truth for the backend set, so a seventh engine joins
// this suite by appearing there.

import (
	"fmt"
	"testing"

	"macaw/internal/core"
	"macaw/internal/fault"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// conformNet builds the suite's contended three-station cell directly (no
// instrumentation), exposing the network for state inventories.
func conformNet(seed int64, mk func() core.MACFactory) *core.Network {
	n := core.NewNetwork(seed)
	f := mk()
	b := n.AddStation("B", geom.V(0, 0, 12), f)
	p1 := n.AddStation("P1", geom.V(-4, 3, 6), f)
	p2 := n.AddStation("P2", geom.V(4, 3, 6), f)
	n.AddStream(p1, b, core.UDP, 30)
	n.AddStream(p2, b, core.UDP, 30)
	n.AddStream(b, p1, core.UDP, 10)
	return n
}

// TestSPIDeterministicReplay: two runs of the same seed produce byte-identical
// results and final state inventories, for every backend.
func TestSPIDeterministicReplay(t *testing.T) {
	const total, warmup = 3 * sim.Second, 1 * sim.Second
	for _, p := range ckptProtocols {
		t.Run(p.name, func(t *testing.T) {
			run := func() (string, string) {
				n := conformNet(11, p.f)
				n.Start(total, warmup)
				n.RunTo(n.End())
				return fmt.Sprintf("%+v", n.Collect()), string(n.AppendState(nil))
			}
			res1, st1 := run()
			res2, st2 := run()
			if res1 != res2 {
				t.Errorf("results differ across identical runs:\n %s\n %s", res1, res2)
			}
			if st1 != st2 {
				t.Error("final state inventories differ across identical runs")
			}
		})
	}
}

// TestSPIForkByteIdentity: a fork adopting a warmed twin at the warmup
// barrier continues byte-identically to the uninterrupted run, for every
// backend — the property the warm-started sweep engine rests on.
func TestSPIForkByteIdentity(t *testing.T) {
	const total, warmup = 3 * sim.Second, 1 * sim.Second
	for _, p := range ckptProtocols {
		t.Run(p.name, func(t *testing.T) {
			ref := conformNet(5, p.f)
			ref.Start(total, warmup)
			ref.RunTo(ref.End())
			refState := string(ref.AppendState(nil))

			w := conformNet(5, p.f)
			w.Start(total, warmup)
			w.RunTo(sim.Time(warmup))
			w.ForceCompactEvents()

			fk := conformNet(5, p.f)
			if err := fk.AdoptFrom(w); err != nil {
				t.Fatalf("AdoptFrom: %v", err)
			}
			fk.RunTo(fk.End())
			if got := string(fk.AppendState(nil)); got != refState {
				t.Error("forked continuation diverges from the uninterrupted run")
			}
		})
	}
}

// TestSPIAuditCleanOnSeedTraffic: the conformance oracle attached to every
// backend's contended run stays silent (a violation panics inside rc.run).
// The audited results must also match the unaudited ones — the oracle is
// passive for every engine, not just the original three.
func TestSPIAuditCleanOnSeedTraffic(t *testing.T) {
	cfg := Bench()
	cfg.Total, cfg.Warmup = 3*sim.Second, 1*sim.Second
	audited := cfg
	audited.Audit = true
	for _, p := range ckptProtocols {
		t.Run(p.name, func(t *testing.T) {
			plain := ckptRun(cfg, "spi/"+p.name, p.f)
			got := ckptRun(audited, "spi/"+p.name, p.f)
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", plain) {
				t.Errorf("audit perturbed the run:\n plain %+v\n audit %+v", plain, got)
			}
		})
	}
}

// TestSPIWatchdogLivenessUnderChaos: each backend survives every PR 2 fault
// class — burst loss, asymmetric links, crash/restart, mobility — with the
// FSM liveness watchdog attached (a wedged engine or runaway queue panics)
// and still carries traffic.
func TestSPIWatchdogLivenessUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	const total, warmup = 8 * sim.Second, 2 * sim.Second
	span := sim.Duration(total - warmup)
	down := span / 16
	if down < fault.MinDowntime {
		down = fault.MinDowntime
	}
	classes := []struct {
		name  string
		apply func(in *fault.Injector)
	}{
		{"burst", func(in *fault.Injector) {
			in.BurstChannel(0, 0.85, 200*sim.Millisecond, 40*sim.Millisecond)
		}},
		{"asym", func(in *fault.Injector) {
			in.AsymmetricLoss("P1", "B", 0.6)
		}},
		{"crash", func(in *fault.Injector) {
			at := sim.Time(warmup) + sim.Time(span/4)
			in.CrashRestart("B", at, at+sim.Time(down))
		}},
		{"walk", func(in *fault.Injector) {
			in.Walk("P2", sim.Time(warmup)+sim.Time(span/4), span/16,
				geom.V(4, 3, 6), geom.V(8, 3, 6), geom.V(4, 3, 6))
		}},
	}
	for _, p := range ckptProtocols {
		for _, c := range classes {
			t.Run(p.name+"/"+c.name, func(t *testing.T) {
				n := conformNet(9, p.f)
				in := fault.NewInjector(n)
				c.apply(in)
				w := fault.NewWatchdog(n)
				w.MaxQueue = 256
				w.Start(0)
				n.Start(total, warmup)
				n.RunTo(n.End()) // a wedge panics via the watchdog
				res := n.Collect()
				if res.TotalPPS() <= 0 {
					t.Errorf("no traffic carried under %s", c.name)
				}
			})
		}
	}
}
