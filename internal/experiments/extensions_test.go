package experiments

import (
	"testing"

	"macaw/internal/stats"
)

func TestExtAckSchemesPiggybackShinesUnderNoise(t *testing.T) {
	tab := ExtAckSchemes(Quick())
	ack := tab.Columns[0].Results
	pb := tab.Columns[1].Results
	nack := tab.Columns[2].Results
	// All three deliver at p=0 within a few percent of each other, with
	// piggyback slightly ahead (one fewer control slot per packet).
	if pb.PPS("p=0") <= ack.PPS("p=0") {
		t.Fatalf("piggyback %.1f not above ACK %.1f at p=0", pb.PPS("p=0"), ack.PPS("p=0"))
	}
	// Under heavy noise the per-packet ACK scheme loses a slot+retry per
	// dropped ACK; piggyback recovers through the next CTS and keeps most
	// of its throughput.
	if pb.PPS("p=0.1") < 2*ack.PPS("p=0.1") {
		t.Fatalf("piggyback %.1f vs ACK %.1f at p=0.1", pb.PPS("p=0.1"), ack.PPS("p=0.1"))
	}
	// NACK behaves like ACK on a UDP stream (the NACK only fires when a
	// CTS went unanswered by data).
	if nack.PPS("p=0") < ack.PPS("p=0")*0.9 || nack.PPS("p=0") > ack.PPS("p=0")*1.1 {
		t.Fatalf("NACK %.1f vs ACK %.1f at p=0", nack.PPS("p=0"), ack.PPS("p=0"))
	}
}

func TestExtCarrierSenseSerializesExposedTerminals(t *testing.T) {
	tab := ExtCarrierSense(Quick())
	ds := tab.Columns[0].Results
	cs := tab.Columns[1].Results
	both := tab.Columns[2].Results
	// Carrier sense keeps the exposed pair fair and near single-channel
	// capacity (it forbids the concurrent transmissions DS permits).
	if cs.TotalPPS() < 44 || cs.TotalPPS() > 56 {
		t.Fatalf("carrier-sense total %.1f, want ~channel capacity", cs.TotalPPS())
	}
	for _, s := range tab.Streams {
		if cs.PPS(s) < 20 {
			t.Fatalf("carrier sense starved %s: %.1f", s, cs.PPS(s))
		}
	}
	// DS alone finds the parallel attractor (receivers out of each
	// other's range), beating serialization.
	if ds.TotalPPS() < cs.TotalPPS() {
		t.Fatalf("DS %.1f below carrier sense %.1f", ds.TotalPPS(), cs.TotalPPS())
	}
	// Adding carrier sense to DS forbids the parallelism again — this is
	// the configuration that matches the paper's serialized Table 5.
	if both.TotalPPS() > cs.TotalPPS()*1.1 {
		t.Fatalf("DS+CS %.1f should serialize like CS %.1f", both.TotalPPS(), cs.TotalPPS())
	}
}

func TestExtLeakagePerDestImprovesTotal(t *testing.T) {
	tab := ExtLeakage(Quick())
	if tab.MeasuredTotal(1) < tab.MeasuredTotal(0) {
		t.Fatalf("per-destination total %.1f below single+copy %.1f",
			tab.MeasuredTotal(1), tab.MeasuredTotal(0))
	}
	// The interior C2 pad must not be idled by leaked C1 counters under
	// the per-destination scheme.
	if tab.Columns[1].Results.PPS("P6-B2") < tab.Columns[0].Results.PPS("P6-B2") {
		t.Fatalf("per-dest P6-B2 %.1f below single %.1f",
			tab.Columns[1].Results.PPS("P6-B2"), tab.Columns[0].Results.PPS("P6-B2"))
	}
}

func TestExtMulticastHiddenInterfererFlaw(t *testing.T) {
	r := ExtMulticast(Quick())
	if r.Sent == 0 {
		t.Fatal("no multicast packets sent")
	}
	// Receivers inside the sender's protective range hear everything.
	if r.NearDelivered < r.Sent*9/10 {
		t.Fatalf("near receiver got %d of %d", r.NearDelivered, r.Sent)
	}
	// The §3.3.4 flaw: a receiver also in range of a hidden interferer
	// is unprotected — "those that are within range of a receiver but
	// not the sender will not be given any signal to defer".
	if r.FarDelivered > r.Sent/4 {
		t.Fatalf("far receiver got %d of %d; the multicast flaw did not appear", r.FarDelivered, r.Sent)
	}
	// The interferer's own unicast stream is meanwhile fully protected
	// by its RTS-CTS exchange.
	if r.InterfererDelivered < r.Sent*9/10 {
		t.Fatalf("interferer delivered only %d", r.InterfererDelivered)
	}
}

func TestExtTokenTradeoffs(t *testing.T) {
	tab := ExtTokenVsMACAW(Quick())
	tokenHealthy := tab.Columns[0]
	macawHealthy := tab.Columns[1]
	tokenDead := tab.Columns[2]
	// Collision-free round-robin: exactly fair and above MACAW's total in
	// a fully-connected healthy cell.
	var rates []float64
	for _, s := range tab.Streams {
		rates = append(rates, tokenHealthy.Results.PPS(s))
	}
	if stats.Jain(rates) < 0.9999 {
		t.Fatalf("token fairness = %v", stats.Jain(rates))
	}
	if tab.MeasuredTotal(0) < tab.MeasuredTotal(1) {
		t.Fatalf("healthy token %.1f below MACAW %.1f", tab.MeasuredTotal(0), tab.MeasuredTotal(1))
	}
	_ = macawHealthy
	// The paper's worry: a dead member costs the token scheme recovery
	// time on every rotation; MACAW barely notices.
	tokenLoss := tab.MeasuredTotal(0) - tab.MeasuredTotal(2)
	macawLoss := tab.MeasuredTotal(1) - tab.MeasuredTotal(3)
	if tokenLoss < 5 {
		t.Fatalf("token scheme lost only %.1f pps to the dead member", tokenLoss)
	}
	if macawLoss > tokenLoss/2 {
		t.Fatalf("MACAW lost %.1f vs token's %.1f; the trade-off did not appear", macawLoss, tokenLoss)
	}
	_ = tokenDead
}

func TestExtLoadSweepSaturationShape(t *testing.T) {
	tab := ExtLoadSweep(Quick())
	for i, p := range []string{"MACA", "MACAW", "token"} {
		res := tab.Columns[i].Results
		// Linear region: carried == offered below saturation.
		if got := res.PPS("offered=4x4"); got < 15 || got > 17 {
			t.Fatalf("%s carried %.1f at offered 16", p, got)
		}
		if got := res.PPS("offered=8x4"); got < 30 || got > 33 {
			t.Fatalf("%s carried %.1f at offered 32", p, got)
		}
		// Saturation: carried stops tracking offered by 64 pps.
		if got := res.PPS("offered=16x4"); got > 60 {
			t.Fatalf("%s carried %.1f at offered 64 — no saturation", p, got)
		}
		// Delay explodes across saturation by orders of magnitude.
		if res.PPS("delay@16x4") < 20*res.PPS("delay@4x4") {
			t.Fatalf("%s delay did not explode at saturation: %.1f vs %.1f ms",
				p, res.PPS("delay@16x4"), res.PPS("delay@4x4"))
		}
	}
	// Protocol capacity ordering: token (collision-free) >= MACA (shorter
	// exchange) >= MACAW (DS+ACK overhead).
	tok := tab.Columns[2].Results.PPS("offered=16x4")
	maca := tab.Columns[0].Results.PPS("offered=16x4")
	macawC := tab.Columns[1].Results.PPS("offered=16x4")
	if !(tok >= maca && maca >= macawC) {
		t.Fatalf("capacity ordering violated: token %.1f, MACA %.1f, MACAW %.1f", tok, maca, macawC)
	}
}

func TestExtensionsRegistry(t *testing.T) {
	if len(Extensions()) != 5 {
		t.Fatalf("Extensions() has %d entries", len(Extensions()))
	}
	for _, g := range Extensions() {
		if g.Run == nil || g.ID == "" {
			t.Fatalf("incomplete extension %+v", g)
		}
	}
}
