// Package experiments regenerates every table in the paper's evaluation
// (Tables 1–11), pairing each measured column with the values the paper
// reports so the shape of each result — who wins, by roughly what factor,
// and which mechanism fixes which pathology — can be checked directly.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"macaw/internal/core"
	"macaw/internal/metrics"
	"macaw/internal/oracle"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
	"macaw/internal/topo"
	"macaw/internal/trace"
)

// RunConfig sets the length of each simulation run.
type RunConfig struct {
	// Total is the simulated duration; Warmup the portion excluded from
	// measurement ("simulations are typically run between 500 and 2000
	// seconds, with a warmup period of 50 seconds").
	Total  sim.Duration
	Warmup sim.Duration
	Seed   int64

	// Audit attaches the protocol-conformance oracle to every run. The
	// oracle is strictly passive — audited output is byte-identical to an
	// unaudited run — and a rule violation panics with a replayable report
	// rather than letting a non-conformant run masquerade as a result.
	Audit bool

	// Metrics, when non-nil, attaches a passive metrics.Collector to every
	// run and stores each run's snapshot in the sink under a deterministic
	// label ("<tableID>/<column name>"). Like the oracle, collection is
	// observation-only: table output stays byte-identical.
	Metrics *metrics.Sink

	// Trace, when non-nil, records every run's MAC-internal events as
	// typed trace events and adds them to the sink under the same labels.
	Trace *trace.JSONLSink

	// TraceMax caps the events recorded per run when Trace is set (0
	// means DefaultTraceMax). Overflow is counted, not silently lost.
	TraceMax int

	// TraceFrom, when Trace is set, suppresses recording before this
	// virtual time. Time-travel triage restores a checkpoint taken just
	// before a violation and records only the tail that matters.
	TraceFrom sim.Time

	// Checkpoint, when non-nil, runs every simulation under the plan:
	// pausing at virtual-time barriers to capture (and optionally write
	// and verify) the canonical state inventory, memoizing completed runs
	// in the manifest, and honouring cooperative stop requests. See
	// CheckpointPlan. Checkpointed runs stay on the monolithic serial
	// engine, like metrics- and trace-instrumented ones.
	Checkpoint *CheckpointPlan

	// Shards, when > 1, executes eligible runs on the spatially-sharded
	// parallel engine (core.Blueprint.Run): the building's causally
	// independent radio components run on separate event heaps across up
	// to Shards goroutines, with results merged back into canonical
	// order. Output is byte-identical to the serial engine at any shard
	// count. Runs that the sharded engine cannot reproduce exactly stay
	// on the monolithic path automatically: runs with scenario mods
	// (noise, mobility, power events — their hooks close over the
	// monolithic network), checkpointed runs (barriers pause the one big
	// heap), and warm-started delta runs. The audit oracle is per-station
	// and passive, so audited runs shard fine. Metrics- and
	// trace-instrumented runs shard too: each component records under a
	// "<label>#c0000"-style sub-label, and because a component's event
	// interleaving is identical on its own heap at every shard count, the
	// label-sorted sink output is byte-identical across shard counts >= 2
	// (it differs from the serial run's single-label document, whose
	// queue high-water marks and emission order are properties of the one
	// big heap).
	Shards int

	// Delta, when non-nil, applies one typed sweep parameter delta
	// (DESIGN.md §15) to the run at the delta barrier — virtual time
	// start+Warmup — through core.ApplyDelta. The delta is part of the
	// run's config identity: configDesc (and so every snapshot and
	// manifest key) carries it, while warm-state cache keys use the
	// delta-free prefix, which is what lets one warmed network serve
	// every variant.
	Delta *snapshot.Delta

	// runner, when set via WithRunner, executes the independent runs
	// inside each generator on a worker pool instead of inline.
	runner *Runner

	// table is the run-label prefix ("table1"…), set by ForTable.
	table string
}

// DefaultTraceMax bounds per-run trace recording: enough for several
// minutes of simulated traffic per station without unbounded memory.
const DefaultTraceMax = 200_000

// ForTable returns a copy of cfg whose run labels are prefixed with the
// given table id. Tables applies it automatically; call it directly when
// invoking a single generator by hand.
func (cfg RunConfig) ForTable(id string) RunConfig {
	cfg.table = id
	return cfg
}

// runLabel returns the deterministic label identifying one run in the
// metrics and trace sinks.
func (cfg RunConfig) runLabel(name string) string {
	if cfg.table == "" {
		return name
	}
	return cfg.table + "/" + name
}

// Paper returns the paper's run length.
func Paper() RunConfig {
	return RunConfig{Total: 500 * sim.Second, Warmup: 50 * sim.Second, Seed: 1}
}

// Quick returns a shortened run for tests and benchmarks; long enough for
// every table's dynamics (capture effects, starvation, noise) to develop.
func Quick() RunConfig {
	return RunConfig{Total: 120 * sim.Second, Warmup: 10 * sim.Second, Seed: 1}
}

// Bench returns the shortest run that still exhibits each table's shape.
func Bench() RunConfig {
	return RunConfig{Total: 40 * sim.Second, Warmup: 5 * sim.Second, Seed: 1}
}

// Column is one protocol variant's measurements.
type Column struct {
	// Name identifies the variant as the paper's table header does.
	Name string
	// Paper holds the values the paper reports, keyed by stream name;
	// missing entries mean the paper's table omitted or truncated them.
	Paper map[string]float64
	// Results holds this reproduction's measurements.
	Results core.Results
}

// Table is one reproduced experiment.
type Table struct {
	// ID is "table1".."table11"; Figure names the topology.
	ID, Figure string
	// Title describes the experiment.
	Title string
	// Streams lists the row order (stream names).
	Streams []string
	// Columns holds one entry per protocol variant.
	Columns []Column
	// Notes records interpretation decisions affecting comparison.
	Notes string
}

// Render returns an aligned text table interleaving paper and measured
// values.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", strings.ToUpper(t.ID), t.Title, t.Figure)
	fmt.Fprintf(&b, "%-10s", "stream")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " | %22s", c.Name)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "")
	for range t.Columns {
		fmt.Fprintf(&b, " | %10s %11s", "paper", "measured")
	}
	b.WriteString("\n")
	for _, s := range t.Streams {
		fmt.Fprintf(&b, "%-10s", s)
		for _, c := range t.Columns {
			paper := "-"
			if v, ok := c.Paper[s]; ok {
				paper = fmt.Sprintf("%.2f", v)
			}
			fmt.Fprintf(&b, " | %10s %11.2f", paper, c.Results.PPS(s))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "TOTAL")
	for _, c := range t.Columns {
		var paperTotal float64
		seen := true
		for _, s := range t.Streams {
			v, ok := c.Paper[s]
			if !ok {
				seen = false
				break
			}
			paperTotal += v
		}
		paper := "-"
		if seen {
			paper = fmt.Sprintf("%.2f", paperTotal)
		}
		var total float64
		for _, s := range t.Streams {
			total += c.Results.PPS(s)
		}
		fmt.Fprintf(&b, " | %10s %11.2f", paper, total)
	}
	b.WriteString("\n")
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as comma-separated values: one row per stream,
// with a paper and a measured column per variant.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("stream")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, ",%s paper,%s measured", c.Name, c.Name)
	}
	b.WriteString("\n")
	for _, s := range t.Streams {
		b.WriteString(s)
		for _, c := range t.Columns {
			if v, ok := c.Paper[s]; ok {
				fmt.Fprintf(&b, ",%.2f", v)
			} else {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, ",%.2f", c.Results.PPS(s))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MeasuredTotal sums the measured rates of column i over the table's rows.
func (t Table) MeasuredTotal(i int) float64 {
	var total float64
	for _, s := range t.Streams {
		total += t.Columns[i].Results.PPS(s)
	}
	return total
}

// runLayout builds the layout on a fresh network, applies mods (noise,
// mobility, power events), and runs it. name labels the run in the metrics
// and trace sinks.
func runLayout(cfg RunConfig, name string, l topo.Layout, f core.MACFactory, mods ...func(*core.Network)) core.Results {
	if res, ok := cfg.runSharded(cfg.runLabel(name), l, f, len(mods) == 0); ok {
		return res
	}
	n := core.NewNetwork(cfg.Seed)
	rc := cfg.instrument(name, n)
	if err := l.Build(n, f); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	for _, mod := range mods {
		mod(n)
	}
	return rc.run(n)
}

// runSharded dispatches an eligible run to the sharded engine. plain is
// false when the run carries scenario mods, which pins it to the monolithic
// path (see RunConfig.Shards); so do checkpoint plans and sweep deltas. ok
// is false when the monolithic path must run instead. label keys the
// metrics and trace sinks; component networks record under
// "label#c<comp>" sub-labels, merged canonically by the label-sorted
// writers.
func (cfg RunConfig) runSharded(label string, l topo.Layout, f core.MACFactory, plain bool) (core.Results, bool) {
	if cfg.Shards <= 1 || !plain || cfg.Checkpoint != nil || cfg.Delta != nil {
		return core.Results{}, false
	}
	bp, err := l.Blueprint(f)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	bp.Seed = cfg.Seed
	if cfg.Audit || cfg.Metrics != nil || cfg.Trace != nil {
		bp.Instrument = cfg.shardInstrument(label)
	}
	res, _, err := bp.Run(cfg.Total, cfg.Warmup, cfg.Shards)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res, true
}

// shardInstrument builds the blueprint Instrument hook attaching every
// configured passive observer to each materialized network. The oracle is
// interleaving-independent, so audited sharded output is byte-identical to
// serial; the metrics collector and trace recorder are per-heap, so each
// component stores under its own deterministic sub-label ("label#c0003" for
// component 3, the plain label on the serial fallback) and the sink
// documents are byte-identical across shard counts >= 2.
func (cfg RunConfig) shardInstrument(label string) func(*core.Network, int) func(core.Results) {
	return func(n *core.Network, comp int) func(core.Results) {
		sub := label
		if comp >= 0 {
			sub = fmt.Sprintf("%s#c%04d", label, comp)
		}
		var fins []func(core.Results)
		if cfg.Audit {
			o := oracle.New(cfg.Seed)
			o.Attach(n)
			fins = append(fins, func(core.Results) {
				if err := o.Err(); err != nil {
					panic(fmt.Sprintf("experiments: %v", err))
				}
			})
		}
		if cfg.Metrics != nil {
			col := metrics.NewCollector()
			n.AddMACObserver(col.Observer)
			fins = append(fins, func(res core.Results) {
				cfg.Metrics.Add(sub, col.Snapshot(n, res, cfg.Seed))
			})
		}
		if cfg.Trace != nil {
			rec := trace.NewRecorder(n.Sim)
			rec.Max = cfg.TraceMax
			if rec.Max == 0 {
				rec.Max = DefaultTraceMax
			}
			rec.From = cfg.TraceFrom
			n.AddMACObserver(rec.MACObserver)
			fins = append(fins, func(core.Results) {
				cfg.Trace.Add(sub, rec.Events(), rec.Dropped())
			})
		}
		return func(res core.Results) {
			for _, fin := range fins {
				fin(res)
			}
		}
	}
}

// runCtl is the per-run control handle instrument returns: the run's sink
// label, the finish hook for its passive observers, and (when auditing) the
// oracle's state appender so checkpoints capture audit expectations too.
// Its run method is the chokepoint that executes the network — plainly, or
// under the config's checkpoint plan.
type runCtl struct {
	cfg    RunConfig
	label  string
	finish func(core.Results)
	obs    func([]byte) []byte
	aud    audit
	// warm, when non-nil, makes run fork the warmed twin instead of
	// simulating the warmup itself: the built network adopts the twin's
	// state at the barrier, applies the config's delta, and runs only the
	// measured tail. See WarmSource.
	warm *WarmSource
}

// instrument attaches every configured passive observer (oracle, metrics
// collector, trace recorder) to a freshly built network and returns the
// run's control handle; call rc.run(n) once the layout is built. It must be
// called before the layout adds stations. All attachments are
// observation-only, so an instrumented run's results are byte-identical to
// a bare one.
func (cfg RunConfig) instrument(name string, n *core.Network) runCtl {
	a := cfg.newAudit(n)
	var col *metrics.Collector
	if cfg.Metrics != nil {
		col = metrics.NewCollector()
		n.AddMACObserver(col.Observer)
	}
	var rec *trace.Recorder
	if cfg.Trace != nil {
		rec = trace.NewRecorder(n.Sim)
		rec.Max = cfg.TraceMax
		if rec.Max == 0 {
			rec.Max = DefaultTraceMax
		}
		rec.From = cfg.TraceFrom
		n.AddMACObserver(rec.MACObserver)
	}
	rc := runCtl{cfg: cfg, label: cfg.runLabel(name), aud: a}
	if a.o != nil {
		rc.obs = a.o.AppendState
	}
	rc.finish = func(res core.Results) {
		a.check()
		if col != nil {
			cfg.Metrics.Add(rc.label, col.Snapshot(n, res, cfg.Seed))
		}
		if rec != nil {
			cfg.Trace.Add(rc.label, rec.Events(), rec.Dropped())
		}
	}
	return rc
}

// audit is the per-run handle of the conformance oracle; the zero value (no
// auditing) is a no-op.
type audit struct{ o *oracle.Oracle }

// newAudit attaches the oracle to a freshly built network when cfg.Audit is
// set. It must be called before the layout adds stations.
func (cfg RunConfig) newAudit(n *core.Network) audit {
	if !cfg.Audit {
		return audit{}
	}
	o := oracle.New(cfg.Seed)
	o.Attach(n)
	return audit{o: o}
}

// check panics with the replayable violation report if the audited run broke
// any protocol rule.
func (a audit) check() {
	if a.o == nil {
		return
	}
	if err := a.o.Err(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

// streamNames lists a layout's stream names in declaration order.
func streamNames(l topo.Layout) []string {
	out := make([]string, 0, len(l.Streams))
	for _, s := range l.Streams {
		out = append(out, s.From+"-"+s.To)
	}
	return out
}

// Generator is a named experiment factory.
type Generator struct {
	ID   string
	Name string
	Run  func(cfg RunConfig) Table
}

// All returns every table generator in order.
func All() []Generator {
	return []Generator{
		{"table1", "BEB vs backoff copying (Figure 2)", Table1},
		{"table2", "BEB vs MILD under contention (Figure 3)", Table2},
		{"table3", "single vs per-stream queues (Figure 4)", Table3},
		{"table4", "link-level ACK under noise", Table4},
		{"table5", "DS and the exposed terminal (Figure 5)", Table5},
		{"table6", "RRTS and receiver-side contention (Figure 6)", Table6},
		{"table7", "the unsolved configuration (Figure 7)", Table7},
		{"table8", "per-destination backoff with a dead pad (Figure 9)", Table8},
		{"table9", "single-stream protocol overhead", Table9},
		{"table10", "MACA vs MACAW, three cells (Figure 10)", Table10},
		{"table11", "MACA vs MACAW, office scenario (Figure 11)", Table11},
	}
}

// ByID returns the generator with the given id, or false.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, g := range All() {
		ids = append(ids, g.ID)
	}
	sort.Strings(ids)
	return ids
}
