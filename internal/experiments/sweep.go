package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/csma"
	"macaw/internal/mac/dcf"
	"macaw/internal/mac/macaw"
	"macaw/internal/mac/token"
	"macaw/internal/mac/tournament"
	"macaw/internal/sim"
	"macaw/internal/snapshot"
	"macaw/internal/stats"
	"macaw/internal/topo"
)

// This file implements the warm-started sweep engine (DESIGN.md §15): one
// warmed network per (protocol, seed) is forked into many parameter
// variants, so a 16-variant sweep pays for the warmup once per protocol
// instead of 16 times. Each variant declares a typed delta — a backoff
// constant, the offered load, a retry limit — that core.ApplyDelta installs
// at the warmup barrier, the same instant a cold run under RunConfig.Delta
// would change it; TestSweepWarmMatchesCold pins the byte-identity of the
// two paths. A delta that would invalidate the warmed state (fault.*
// trajectories are fixed at build time) fails closed with a typed error
// instead of producing a silently wrong variant.

// SweepVariant is one parameter point of a sweep: the delta kind (one of
// core.DeltaKinds) and the value it takes after the warmup barrier.
type SweepVariant struct {
	Kind  string
	Value float64
}

// Label renders the variant as it appears in sweep specs and table rows.
func (v SweepVariant) Label() string { return fmt.Sprintf("%s=%g", v.Kind, v.Value) }

// ParseSweepSpec parses a sweep specification of the form
// "kind=v1,v2[;kind2=v3,…]" — for example
// "backoff.max=16,32;load.rate=40,64" — into the variant list, in spec
// order. Unknown parameter kinds and malformed values are errors naming the
// offending field.
func ParseSweepSpec(spec string) ([]SweepVariant, error) {
	known := make(map[string]bool)
	for _, k := range core.DeltaKinds() {
		known[k] = true
	}
	var out []SweepVariant
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		kind, vals, ok := strings.Cut(group, "=")
		kind = strings.TrimSpace(kind)
		if !ok || kind == "" || strings.TrimSpace(vals) == "" {
			return nil, fmt.Errorf("experiments: sweep group %q is not kind=v1,v2,…", group)
		}
		if !known[kind] {
			return nil, fmt.Errorf("experiments: unknown sweep parameter %q (known: %s)",
				kind, strings.Join(core.DeltaKinds(), ", "))
		}
		for _, vs := range strings.Split(vals, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep value %q of %s is not a number", strings.TrimSpace(vs), kind)
			}
			out = append(out, SweepVariant{Kind: kind, Value: v})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: sweep spec %q names no variants", spec)
	}
	return out, nil
}

// SweepOptions selects how RunSweep executes.
type SweepOptions struct {
	// CacheDir, when non-empty, holds one warm-state snapshot per
	// (protocol, seed, barrier), keyed by the delta-free config prefix. A
	// warmed network whose state matches the cached snapshot counts a hit;
	// one that diverges fails closed (the cache caught nondeterminism); a
	// missing, corrupt, or configuration-stale file is rewarmed and
	// overwritten.
	CacheDir string
	// CacheMax, when > 0, bounds the number of warm snapshots kept in
	// CacheDir; the oldest beyond the bound are evicted after each write.
	CacheMax int
	// Cold runs every variant from scratch — build, warm up, apply the
	// delta at the barrier, run the tail — with no forking. It exists to
	// measure the speedup and to hold the differential line: warm and cold
	// sweeps must render byte-identical tables.
	Cold bool
}

// SweepInfo reports how a sweep executed.
type SweepInfo struct {
	// Variants and Protocols give the sweep grid: Variants*Protocols runs.
	Variants, Protocols int
	// Warmups counts full warmup simulations performed (one per protocol
	// when warm-started; zero — they are inside ColdRuns — when cold).
	Warmups int
	// Forks counts warm-started tail runs; ColdRuns counts full cold runs.
	Forks, ColdRuns int
	// CacheHits and CacheWrites count warm-cache verifications and
	// (re)writes.
	CacheHits, CacheWrites int
}

// sweepCol is one protocol column of the sweep grid.
type sweepCol struct {
	name    string
	factory func() core.MACFactory
}

// sweepCols returns the sweep's protocol columns: every MAC family the
// reproduction implements, in the paper's order of appearance, then the
// comparison backends (802.11 DCF and the tournament scheme). Every engine
// here implements the full mac.Engine SPI, which is what lets the sweep
// fork one warmed twin per column without per-protocol cases.
func sweepCols() []sweepCol {
	return []sweepCol{
		{"CSMA", func() core.MACFactory { return core.CSMAFactory(csma.Options{ACK: true}) }},
		{"MACA", func() core.MACFactory { return core.MACAFactory() }},
		{"MACAW", func() core.MACFactory { return core.MACAWFactory(macaw.DefaultOptions()) }},
		{"token", func() core.MACFactory { return core.TokenFactory(token.Options{Ring: core.RingOf(5)}) }},
		{"DCF", func() core.MACFactory { return core.DCFFactory(dcf.Options{}) }},
		{"TOURN", func() core.MACFactory { return core.TournamentFactory(tournament.Options{}) }},
	}
}

// SweepLayout is the sweep topology: one cell, a base station and four pads
// all in range of each other, four uplink streams. Dense enough that every
// backoff and load knob moves throughput, small enough that a variant's
// tail runs in milliseconds.
func SweepLayout() topo.Layout {
	l := topo.Layout{
		Name: "sweep",
		Doc:  "one cell, four pads uplink to one base",
		Stations: []topo.StationSpec{
			{Name: "B", Pos: geom.V(0, 0, 12), Base: true},
			{Name: "P1", Pos: geom.V(4, 3, 6)},
			{Name: "P2", Pos: geom.V(2, 3, 6)},
			{Name: "P3", Pos: geom.V(0, 3, 6)},
			{Name: "P4", Pos: geom.V(-2, 3, 6)},
		},
	}
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		l.Streams = append(l.Streams, topo.StreamSpec{From: p, To: "B", Kind: core.UDP, Rate: 16})
		l.Relations = append(l.Relations,
			topo.Relation{A: p, B: "B", Hears: true},
			topo.Relation{A: "B", B: p, Hears: true})
	}
	return l
}

// sweeper coordinates one RunSweep: the per-protocol warmed twins (each
// built at most once, then shared read-only by every fork) and the
// execution counters.
type sweeper struct {
	cfg   RunConfig
	opts  SweepOptions
	warms map[string]*warmRun

	mu   sync.Mutex
	info SweepInfo
}

// warmRun is the once-cell for one protocol's warmed twin.
type warmRun struct {
	once sync.Once
	src  *WarmSource
	pan  any
}

func (s *sweeper) note(fn func(*SweepInfo)) {
	s.mu.Lock()
	fn(&s.info)
	s.mu.Unlock()
}

// warmLabel keys one protocol's warm state: the sweep's run label without
// any variant suffix, shared by every delta forked from it.
func (s *sweeper) warmLabel(col sweepCol) string {
	return s.cfg.runLabel(col.name)
}

// warm returns the protocol's warmed twin, building it on first use. The
// build runs on whichever variant goroutine gets there first; the others
// block on the once and then fork the same immobile twin (adoption only
// reads it). A warmup failure is replayed to every waiter.
func (s *sweeper) warm(col sweepCol) *WarmSource {
	w := s.warms[col.name]
	w.once.Do(func() {
		defer func() { w.pan = recover() }()
		w.src = s.doWarm(col)
	})
	if w.pan != nil {
		panic(w.pan)
	}
	return w.src
}

// doWarm builds the protocol's network, simulates exactly the warmup, and
// parks it at the barrier with a compacted event queue — the state every
// variant forks from. With a cache directory configured, the parked state
// is verified against (or written as) the cached warm snapshot.
func (s *sweeper) doWarm(col sweepCol) *WarmSource {
	cfg := s.cfg
	n := core.NewNetwork(cfg.Seed)
	a := cfg.newAudit(n)
	if err := SweepLayout().Build(n, col.factory()); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	n.Start(cfg.Total, cfg.Warmup)
	barrier := n.Sim.Now() + sim.Time(cfg.Warmup)
	n.RunTo(barrier)
	n.ForceCompactEvents()
	src := &WarmSource{Net: n, Aud: a.o, Barrier: barrier}
	s.note(func(i *SweepInfo) { i.Warmups++ })
	s.syncCache(col, src)
	return src
}

// warmState renders the warm source's capture-ordered state inventory:
// network first, oracle expectations second — the order runCtl.capture
// uses, so cached warm snapshots compare line by line with checkpoints.
func warmState(src *WarmSource) []byte {
	b := src.Net.AppendState(nil)
	if src.Aud != nil {
		b = src.Aud.AppendState(b)
	}
	return b
}

// syncCache verifies the freshly warmed state against the cached warm
// snapshot, or (re)writes the cache entry when there is nothing valid to
// verify against. A state mismatch against a configuration-matched entry is
// nondeterminism and fails closed; every other defect — missing file, torn
// write, CRC damage, a stale entry from another configuration — is repaired
// by overwriting with the state just computed.
func (s *sweeper) syncCache(col sweepCol, src *WarmSource) {
	if s.opts.CacheDir == "" {
		return
	}
	cfg, label := s.cfg, s.warmLabel(col)
	desc := cfg.warmDesc(label)
	state := warmState(src)
	path := filepath.Join(s.opts.CacheDir, "warm-"+snapshot.FileName(label, cfg.Seed, src.Barrier))
	if snap, err := snapshot.ReadFile(path); err == nil &&
		snap.MatchesConfig(desc, cfg.Seed, label) == nil && snap.Barrier == src.Barrier {
		if err := snap.Verify(state); err != nil {
			panic(fmt.Sprintf("experiments: warm cache %s: %v", path, err))
		}
		s.note(func(i *SweepInfo) { i.CacheHits++ })
		return
	}
	if err := os.MkdirAll(s.opts.CacheDir, 0o755); err != nil {
		panic(fmt.Sprintf("experiments: warm cache: %v", err))
	}
	err := snapshot.WriteFile(path, &snapshot.Snapshot{
		ConfigHash: snapshot.ConfigHash(desc), Seed: cfg.Seed, Barrier: src.Barrier,
		Total: cfg.Total, Warmup: cfg.Warmup, Audit: cfg.Audit,
		Table: cfg.table, Run: label, State: state, Desc: desc,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: warm cache: %v", err))
	}
	s.note(func(i *SweepInfo) { i.CacheWrites++ })
	s.evict()
}

// evict prunes the oldest warm snapshots beyond CacheMax. Eviction is
// bookkeeping, not correctness — an evicted entry just rewarms later — so
// unreadable directory entries are skipped rather than fatal.
func (s *sweeper) evict() {
	if s.opts.CacheMax <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.opts.CacheDir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var files []aged
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "warm-") || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), fi.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for len(files) > s.opts.CacheMax {
		os.Remove(filepath.Join(s.opts.CacheDir, files[0].name))
		files = files[1:]
	}
}

// runCell executes one (variant, protocol) cell and returns its Results.
func (s *sweeper) runCell(cfg RunConfig, v SweepVariant, col sweepCol) core.Results {
	name := col.name + "/" + v.Label()
	if s.opts.Cold {
		defer s.note(func(i *SweepInfo) { i.ColdRuns++ })
		return runLayout(cfg, name, SweepLayout(), col.factory())
	}
	src := s.warm(col)
	n := core.NewNetwork(cfg.Seed)
	rc := cfg.instrument(name, n)
	if err := SweepLayout().Build(n, col.factory()); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	rc.warm = src
	res := rc.run(n)
	s.note(func(i *SweepInfo) { i.Forks++ })
	return res
}

// RunSweep executes the sweep grid — every variant against every protocol
// column — and renders it as a Table whose rows are variants and whose cell
// values are each run's aggregate throughput. It is RunSweepTables keeping
// only the throughput table, for callers that predate the fairness table.
func RunSweep(cfg RunConfig, variants []SweepVariant, opts SweepOptions) (Table, SweepInfo, error) {
	tabs, info, err := RunSweepTables(cfg, variants, opts)
	if len(tabs) == 0 {
		return Table{}, info, err
	}
	return tabs[0], info, err
}

// RunSweepTables executes the sweep grid — every variant against every
// protocol column — and renders two Tables over the same runs: aggregate
// throughput per cell, then Jain's fairness index across the four uplink
// streams per cell (the tournament-versus-DCF comparison is exactly these
// two read together: a constant window trades peak throughput for a flatter
// allocation). Warm-started by default: one warmup per protocol, forked
// into every variant; opts.Cold runs each cell from scratch instead and
// must produce byte-identical tables.
//
// Sweeps are measurement-grade runs, not triage runs: metrics and trace
// sinks are refused, because a warm-started variant only observes the tail
// — its instrumentation document would silently differ from a cold run's.
// The audit oracle works (its warmup expectations are adopted along with
// the network) and checkpoint plans are refused for the same reason as
// sinks. Runs dispatch through cfg's runner when one is set (WithRunner),
// so variants fork the shared twin concurrently.
func RunSweepTables(cfg RunConfig, variants []SweepVariant, opts SweepOptions) ([]Table, SweepInfo, error) {
	if cfg.Metrics != nil || cfg.Trace != nil {
		return nil, SweepInfo{}, fmt.Errorf("experiments: sweeps cannot carry metrics or trace sinks (a warm fork observes only the tail)")
	}
	if cfg.Checkpoint != nil {
		return nil, SweepInfo{}, fmt.Errorf("experiments: sweeps cannot run under a checkpoint plan")
	}
	if cfg.Delta != nil {
		return nil, SweepInfo{}, fmt.Errorf("experiments: RunConfig.Delta is set per variant by the sweep itself")
	}
	if len(variants) == 0 {
		return nil, SweepInfo{}, fmt.Errorf("experiments: sweep has no variants")
	}
	cfg = cfg.ForTable("sweep")
	cols := sweepCols()
	s := &sweeper{cfg: cfg, opts: opts, warms: make(map[string]*warmRun)}
	for _, col := range cols {
		s.warms[col.name] = &warmRun{}
	}
	s.info.Variants, s.info.Protocols = len(variants), len(cols)

	futs := make([][]*future[core.Results], len(variants))
	for vi, v := range variants {
		futs[vi] = make([]*future[core.Results], len(cols))
		for ci, col := range cols {
			v, col := v, col
			cfgv := cfg
			cfgv.Delta = &snapshot.Delta{Kind: v.Kind, Value: v.Value}
			futs[vi][ci] = goFuture(cfgv, func() core.Results { return s.runCell(cfgv, v, col) })
		}
	}

	rows := make([]string, len(variants))
	for i, v := range variants {
		rows[i] = v.Label()
	}
	mode := "warm-started"
	if opts.Cold {
		mode = "cold"
	}
	tab := Table{
		ID:      "sweep",
		Figure:  "sweep topology",
		Title:   fmt.Sprintf("parameter sweep (%s), aggregate pkt/s per variant", mode),
		Streams: rows,
		Notes:   "each cell is the run's total delivered rate; a warm-started cell is byte-identical to its cold twin",
	}
	fair := Table{
		ID:      "sweep-fairness",
		Figure:  "sweep topology",
		Title:   fmt.Sprintf("parameter sweep (%s), Jain fairness index per variant", mode),
		Streams: rows,
		Notes:   "each cell is Jain's index over the four uplink streams' delivered rates (1.00 = even split)",
	}
	for ci, col := range cols {
		c := Column{Name: col.name, Paper: map[string]float64{}}
		fc := Column{Name: col.name, Paper: map[string]float64{}}
		rs := make([]core.StreamResult, len(variants))
		frs := make([]core.StreamResult, len(variants))
		for vi := range variants {
			res := futs[vi][ci].wait()
			rs[vi] = core.StreamResult{Name: rows[vi], PPS: res.TotalPPS()}
			pps := make([]float64, 0, len(res.Streams))
			for _, sr := range res.Streams {
				rs[vi].Delivered += sr.Delivered
				rs[vi].Offered += sr.Offered
				pps = append(pps, sr.PPS)
			}
			frs[vi] = core.StreamResult{Name: rows[vi], PPS: stats.Jain(pps)}
		}
		c.Results = core.Results{Streams: rs, Duration: cfg.Total, Warmup: cfg.Warmup}
		fc.Results = core.Results{Streams: frs, Duration: cfg.Total, Warmup: cfg.Warmup}
		tab.Columns = append(tab.Columns, c)
		fair.Columns = append(fair.Columns, fc)
	}
	tabs := []Table{tab, fair}
	if f := cfg.runner.Failure(); f != nil {
		return tabs, s.info, f
	}
	s.mu.Lock()
	info := s.info
	s.mu.Unlock()
	return tabs, info, nil
}
