package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"macaw/internal/core"
	"macaw/internal/topo"
)

// Runner executes independent simulation runs on a bounded pool of worker
// goroutines. Every run builds its own core.Network from the RunConfig seed
// — its own Simulator, medium, and per-station RNG streams — so runs share
// no mutable state and each is a pure function of (layout, factory, config).
// Parallel execution therefore changes only wall-clock order: the results,
// and any output rendered from them, are byte-identical to a serial run.
//
// A run that panics (an oracle violation, a watchdog abort, a checkpoint
// divergence) does not take the process down from a worker goroutine: the
// failure is captured as a RunFailure naming the (table, seed) that died,
// runs already executing drain normally — their results reach the manifest
// — queued runs are cancelled, and Tables returns the failure as an error.
type Runner struct {
	// sem bounds the number of runs executing at once. Generators submit
	// every run before waiting on the first, and waiters never hold a
	// slot, so the pool cannot deadlock however small it is.
	sem chan struct{}

	// failure holds the first run failure; once set, queued runs are
	// skipped instead of started.
	failure atomic.Pointer[RunFailure]
}

// RunFailure identifies a run that panicked under the pool.
type RunFailure struct {
	// Table is the run-label prefix of the generator that died ("" for an
	// unprefixed run).
	Table string
	// Seed is the dead run's seed.
	Seed int64
	// Err is the recovered panic value; Stack the goroutine stack at the
	// point of panic.
	Err   any
	Stack []byte
}

// Error renders the failure with its (table, seed) identity first.
func (f *RunFailure) Error() string {
	table := f.Table
	if table == "" {
		table = "(unlabelled)"
	}
	return fmt.Sprintf("run failed in table %s, seed %d: %v", table, f.Seed, f.Err)
}

// Failure returns the first recorded run failure, or nil.
func (r *Runner) Failure() *RunFailure {
	if r == nil {
		return nil
	}
	return r.failure.Load()
}

// fail records f as the pool's failure if none is recorded yet.
func (r *Runner) fail(f *RunFailure) {
	r.failure.CompareAndSwap(nil, f)
}

// NewRunner returns a Runner executing at most jobs runs concurrently.
// jobs < 1 is treated as 1, and the effective count is capped at
// runtime.NumCPU(): the runs are CPU-bound, so workers beyond the core
// count only add scheduling and synchronization overhead — on a one-core
// machine, enough to make "-jobs 4" slower than serial.
func NewRunner(jobs int) *Runner {
	if jobs < 1 {
		jobs = 1
	}
	if n := runtime.NumCPU(); jobs > n {
		jobs = n
	}
	return &Runner{sem: make(chan struct{}, jobs)}
}

// Jobs reports the runner's effective concurrency after capping.
func (r *Runner) Jobs() int { return cap(r.sem) }

// WithRunner returns a copy of cfg whose runs are dispatched through r. A
// nil r keeps the serial path: runs execute inline at their submission
// point, in exactly the order the generator code states them.
func (cfg RunConfig) WithRunner(r *Runner) RunConfig {
	cfg.runner = r
	return cfg
}

// Do executes fn under a pool slot, blocking until a worker frees up or ctx
// is cancelled. It is the context-aware submission path long-running callers
// (the campaign daemon) use: a cancellation while queued returns ctx.Err()
// without running fn, so a drained or cancelled campaign stops consuming
// workers the moment its context dies, while runs already executing finish
// normally. A panic inside fn is recovered into a *RunFailure naming the
// (table, seed) that died and returned as the error — it is NOT latched as
// the pool's first failure, because independent submissions (unlike the runs
// of one table sweep) must not cancel each other.
func (r *Runner) Do(ctx context.Context, table string, seed int64, fn func()) (err error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() {
		<-r.sem
		if p := recover(); p != nil {
			err = &RunFailure{Table: table, Seed: seed, Err: p, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// future is the pending value of a dispatched run.
type future[T any] struct {
	done chan struct{}
	val  T
}

// wait blocks until the run completes and returns its value.
func (f *future[T]) wait() T {
	if f.done != nil {
		<-f.done
	}
	return f.val
}

// goFuture dispatches fn according to cfg. With no runner it calls fn inline
// and returns an already-resolved future — the serial path is the exact
// pre-runner execution order, not a degenerate pool. With a runner, fn runs
// on a pooled goroutine; the caller keeps submitting and waits later. A
// panicking fn resolves its future to the zero value and records the first
// RunFailure on the pool; once one run has failed, queued runs resolve to
// zero without starting (cancelled), while runs already executing finish.
func goFuture[T any](cfg RunConfig, fn func() T) *future[T] {
	if cfg.runner == nil {
		return &future[T]{val: fn()}
	}
	f := &future[T]{done: make(chan struct{})}
	go func() {
		cfg.runner.sem <- struct{}{}
		defer func() {
			if p := recover(); p != nil {
				cfg.runner.fail(&RunFailure{
					Table: cfg.table, Seed: cfg.Seed, Err: p, Stack: debug.Stack(),
				})
			}
			<-cfg.runner.sem
			close(f.done)
		}()
		if cfg.runner.Failure() == nil {
			f.val = fn()
		}
	}()
	return f
}

// goRun dispatches the standard build-layout-and-run shape (the future twin
// of runLayout). name labels the run in the metrics and trace sinks.
func (cfg RunConfig) goRun(name string, l topo.Layout, f core.MACFactory, mods ...func(*core.Network)) *future[core.Results] {
	return goFuture(cfg, func() core.Results { return runLayout(cfg, name, l, f, mods...) })
}

// Tables runs the generators — concurrently across and within tables — and
// returns the finished tables in generator order. Seeds travel inside cfg,
// fixed before any dispatch, so the output is byte-identical to calling
// g.Run(cfg) serially for each generator. When the runner's effective
// concurrency is 1 (one core, or -jobs 1) the pool is skipped entirely:
// generators execute inline, one after another, with zero goroutine or
// channel overhead — a degenerate pool would serialize the same work
// through futures and cost wall-clock for nothing.
//
// If any run fails, Tables still drains every in-flight run (completed
// sibling results are kept, and flushed to the checkpoint manifest when one
// is configured), then returns the tables produced so far together with a
// *RunFailure error naming the (table, seed) that died.
func (r *Runner) Tables(gens []Generator, cfg RunConfig) ([]Table, error) {
	out := make([]Table, len(gens))
	if r.Jobs() <= 1 {
		for i, g := range gens {
			tab, err := r.runTable(g, cfg)
			if err != nil {
				return out[:i], err
			}
			out[i] = tab
		}
		return out, nil
	}
	cfg = cfg.WithRunner(r)
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g Generator) {
			defer wg.Done()
			out[i], _ = r.runTable(g, cfg)
		}(i, g)
	}
	wg.Wait()
	if f := r.Failure(); f != nil {
		return out, f
	}
	return out, nil
}

// runTable executes one generator, converting a panic on this goroutine
// (generator code outside any pooled run, or an inline serial run) into the
// same RunFailure shape pooled workers record.
func (r *Runner) runTable(g Generator, cfg RunConfig) (tab Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			f := &RunFailure{Table: g.ID, Seed: cfg.Seed, Err: p, Stack: debug.Stack()}
			r.fail(f)
			err = f
		}
	}()
	return g.Run(cfg.ForTable(g.ID)), nil
}
