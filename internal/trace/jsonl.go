package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// EncodeJSONL writes events as JSON Lines: one compact object per line, in
// order — the streaming-friendly format cmd/macawtrace summarizes.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a JSON Lines stream back into events. Blank lines are
// skipped; a malformed line fails with its line number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSONL writes the recorded events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error { return EncodeJSONL(w, r.events) }

// MACObserver returns a mac.Observer recording this station's MAC-internal
// events — transmissions (with backoff headers), receptions, typed FSM
// transitions, timer operations, queue operations, retries, drops, and
// deliveries — into the recorder. Its signature matches
// core.MACObserverFactory, so it plugs into Network.AddMACObserver directly.
// The bridge is passive: it only appends to the recorder.
func (r *Recorder) MACObserver(st *core.Station) mac.Observer {
	return &macBridge{rec: r, name: st.Name()}
}

// macBridge adapts the mac.Observer hooks onto Recorder events.
type macBridge struct {
	rec  *Recorder
	name string
}

func (b *macBridge) ObserveTx(f *frame.Frame) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Transmit,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq, Backoff: f.LocalBackoff})
}

func (b *macBridge) ObserveRx(f *frame.Frame) {
	if b.rec.OmitBridgeRx {
		return
	}
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Receive,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
}

func (b *macBridge) ObserveState(from, to string) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: State, From: from, To: to})
}

func (b *macBridge) ObserveTimer(at sim.Time) {
	e := Event{At: b.rec.s.Now(), Station: b.name, Kind: Timer, Op: "arm", Deadline: at}
	if at < 0 {
		e.Op, e.Deadline = "cancel", 0
	}
	b.rec.Record(e)
}

func (b *macBridge) ObserveQueue(op string, dst frame.NodeID, n int) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Queue, Op: op, Dst: dst, QLen: n})
}

func (b *macBridge) ObserveDeliver(f *frame.Frame) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Deliver,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
}

func (b *macBridge) ObserveRetry(dst frame.NodeID) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Retry, Dst: dst})
}

func (b *macBridge) ObserveDrop(dst frame.NodeID, reason mac.DropReason) {
	b.rec.Record(Event{At: b.rec.s.Now(), Station: b.name, Kind: Drop, Dst: dst, Note: string(reason)})
}

// JSONLSink aggregates the traces of many runs into one JSON Lines stream.
// Runs add their recorded events under a deterministic label; the writer
// orders runs by label and stamps each event's Run field, so the output is
// byte-identical regardless of the completion order a parallel runner
// produced. Add is safe for concurrent use.
type JSONLSink struct {
	mu      sync.Mutex
	runs    map[string][]Event
	dropped int
}

// NewJSONLSink returns an empty sink.
func NewJSONLSink() *JSONLSink { return &JSONLSink{runs: make(map[string][]Event)} }

// Add stores one run's events under the given label. Events from repeated
// labels are appended in call order (labels are expected to be unique).
func (s *JSONLSink) Add(run string, events []Event, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs[run] = append(s.runs[run], events...)
	s.dropped += dropped
}

// Len reports the total number of stored events.
func (s *JSONLSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.runs {
		n += len(ev)
	}
	return n
}

// Dropped reports how many events the per-run caps discarded.
func (s *JSONLSink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteRunJSONL writes one stored run's events as JSON Lines, each stamped
// with the run label. Time-travel triage replays a whole table but wants
// only the restored run's tail.
func (s *JSONLSink) WriteRunJSONL(w io.Writer, run string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range s.runs[run] {
		e.Run = run
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes every stored run, sorted by run label, as JSON Lines.
func (s *JSONLSink) WriteJSONL(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	labels := make([]string, 0, len(s.runs))
	for l := range s.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, l := range labels {
		for _, e := range s.runs[l] {
			e.Run = l
			if err := enc.Encode(e); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
