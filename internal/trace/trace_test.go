package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

func smallNet(t *testing.T) (*core.Network, *Recorder) {
	t.Helper()
	n := core.NewNetwork(1)
	f := core.MACAWFactory(macaw.DefaultOptions())
	p := n.AddStation("P", geom.V(-4, 0, 6), f)
	b := n.AddStation("B", geom.V(0, 0, 12), f)
	n.AddStream(p, b, core.UDP, 16)
	r := NewRecorder(n.Sim)
	r.AttachAll(n)
	return n, r
}

func TestRecordsFullExchange(t *testing.T) {
	n, r := smallNet(t)
	n.Run(2*sim.Second, 0)
	types := map[frame.Type]int{}
	for _, e := range r.Events() {
		if e.Kind == Receive && e.Station == "B" && e.Dst == 2 {
			types[e.Type]++
		}
	}
	for _, ty := range []frame.Type{frame.RTS, frame.DS, frame.DATA} {
		if types[ty] == 0 {
			t.Fatalf("no %s recorded at B; got %v", ty, types)
		}
	}
	// The pad must have received CTS and ACK frames.
	ctsAtP := r.Count(func(e Event) bool {
		return e.Station == "P" && e.Kind == Receive && e.Type == frame.CTS
	})
	if ctsAtP == 0 {
		t.Fatal("no CTS recorded at P")
	}
}

func TestWindowBounds(t *testing.T) {
	n, r := smallNet(t)
	r.From = 1 * sim.Second
	r.To = 1500 * sim.Millisecond
	n.Run(2*sim.Second, 0)
	for _, e := range r.Events() {
		if e.At < r.From || e.At >= r.To {
			t.Fatalf("event at %v outside window", e.At)
		}
	}
	if len(r.Events()) == 0 {
		t.Fatal("window recorded nothing")
	}
}

func TestCarrierEventsOptIn(t *testing.T) {
	n, r := smallNet(t)
	n.Run(500*sim.Millisecond, 0)
	if r.Count(func(e Event) bool { return e.Kind == Carrier }) != 0 {
		t.Fatal("carrier events recorded without opt-in")
	}

	n2, r2 := smallNet(t)
	r2.Carrier = true
	n2.Run(500*sim.Millisecond, 0)
	if r2.Count(func(e Event) bool { return e.Kind == Carrier }) == 0 {
		t.Fatal("no carrier events with opt-in")
	}
}

func TestCorruptionRecorded(t *testing.T) {
	// Two hidden pads collide at the base.
	n := core.NewNetwork(2)
	f := core.MACAFactory()
	a := n.AddStation("A", geom.V(0, 0, 6), f)
	b := n.AddStation("B", geom.V(8, 0, 6), f)
	c := n.AddStation("C", geom.V(16, 0, 6), f)
	n.AddStream(a, b, core.UDP, 40)
	n.AddStream(c, b, core.UDP, 40)
	r := NewRecorder(n.Sim)
	r.AttachAll(n)
	n.Run(10*sim.Second, 0)
	if r.Count(func(e Event) bool { return e.Kind == Corrupt && e.Station == "B" }) == 0 {
		t.Fatal("no corrupted receptions recorded at the hidden-terminal receiver")
	}
}

func TestTextAndJSONOutput(t *testing.T) {
	n, r := smallNet(t)
	n.Run(200*sim.Millisecond, 0)
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "rx") {
		t.Fatalf("text output missing rx lines:\n%s", txt.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back) != len(r.Events()) {
		t.Fatalf("JSON round trip lost events: %d vs %d", len(back), len(r.Events()))
	}
}

func TestSinkStreamsLines(t *testing.T) {
	n := core.NewNetwork(1)
	f := core.MACAWFactory(macaw.DefaultOptions())
	p := n.AddStation("P", geom.V(-4, 0, 6), f)
	b := n.AddStation("B", geom.V(0, 0, 12), f)
	n.AddStream(p, b, core.UDP, 16)
	r := NewRecorder(n.Sim)
	var sink bytes.Buffer
	r.Sink = &sink
	r.AttachAll(n)
	n.Run(200*sim.Millisecond, 0)
	if sink.Len() == 0 {
		t.Fatal("sink received nothing")
	}
}

func TestEventStrings(t *testing.T) {
	e := Event{At: sim.Second, Station: "P1", Kind: Receive, Type: frame.RTS, Src: 1, Dst: 2, Seq: 3}
	if !strings.Contains(e.String(), "rx") || !strings.Contains(e.String(), "RTS") {
		t.Fatalf("rx string: %q", e.String())
	}
	e.Kind = Corrupt
	if !strings.Contains(e.String(), "LOST") {
		t.Fatalf("lost string: %q", e.String())
	}
	e.Kind = Carrier
	e.Busy = true
	if !strings.Contains(e.String(), "busy=true") {
		t.Fatalf("carrier string: %q", e.String())
	}
}
