// Package trace provides structured packet-level tracing for simulation
// runs: every clean reception (including overhears), every corrupted
// reception at an intended destination, and every carrier transition can be
// recorded per station and rendered as text or JSON, or replayed through
// filters in tests.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// Kind classifies a trace event.
type Kind string

// Event kinds.
const (
	// Receive is a cleanly received frame (including overhears).
	Receive Kind = "rx"
	// Corrupt is a reception destroyed by collision or noise, reported
	// only at the frame's intended destination.
	Corrupt Kind = "lost"
	// Carrier is a carrier-sense transition.
	Carrier Kind = "carrier"
	// Transmit is a frame radiated by a station. The radio has no transmit
	// tap; these events come from MAC-internal observers (the conformance
	// oracle), not from Recorder wrappers.
	Transmit Kind = "tx"
	// Mark is an annotated MAC-internal event (state transition, timer
	// arm, queue operation, delivery) recorded by a mac.Observer; the
	// detail lives in Note.
	Mark Kind = "mark"
	// State is a typed FSM transition (From/To carry the state names).
	State Kind = "state"
	// Timer is a state-timer operation: Op "arm" with Deadline, or Op
	// "cancel".
	Timer Kind = "timer"
	// Queue is a queue operation (Op "push"/"pop"/"drop" toward Dst, QLen
	// the length after it).
	Queue Kind = "queue"
	// Retry is a failed attempt toward Dst being retried.
	Retry Kind = "retry"
	// Drop is a packet toward Dst being abandoned; Note carries the reason.
	Drop Kind = "drop"
	// Deliver is a DATA frame handed up to transport.
	Deliver Kind = "deliver"
)

// Event is one recorded occurrence. The typed fields beyond Note (From/To,
// Op, QLen, Deadline, Backoff, Run) carry what Mark events used to fold into
// free text, so JSONL consumers can filter and aggregate without parsing.
type Event struct {
	At      sim.Time     `json:"at"`
	Station string       `json:"station"`
	Kind    Kind         `json:"kind"`
	Type    frame.Type   `json:"type,omitempty"`
	Src     frame.NodeID `json:"src,omitempty"`
	Dst     frame.NodeID `json:"dst,omitempty"`
	Seq     uint32       `json:"seq,omitempty"`
	Busy    bool         `json:"busy,omitempty"`
	Note    string       `json:"note,omitempty"`
	// From/To are the FSM state names of a State event.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Op is the operation of a Timer ("arm"/"cancel") or Queue
	// ("push"/"pop"/"drop") event.
	Op string `json:"op,omitempty"`
	// QLen is the queue length after a Queue operation.
	QLen int `json:"qlen,omitempty"`
	// Deadline is the firing time a Timer arm targets.
	Deadline sim.Time `json:"deadline,omitempty"`
	// Backoff is the transmitted frame's local backoff header on a
	// Transmit event (frame.IDontKnow when the sender did not stamp one).
	Backoff int16 `json:"backoff,omitempty"`
	// Run labels which simulation run the event belongs to in a multi-run
	// JSONL stream (stamped by JSONLSink).
	Run string `json:"run,omitempty"`
}

// String renders the event as one trace line.
func (e Event) String() string {
	switch e.Kind {
	case Carrier:
		return fmt.Sprintf("%12.6f  %-4s carrier busy=%v", e.At.Seconds(), e.Station, e.Busy)
	case Corrupt:
		return fmt.Sprintf("%12.6f  %-4s LOST %s %v->%v seq=%d", e.At.Seconds(), e.Station, e.Type, e.Src, e.Dst, e.Seq)
	case Transmit:
		return fmt.Sprintf("%12.6f  %-4s tx   %s %v->%v seq=%d", e.At.Seconds(), e.Station, e.Type, e.Src, e.Dst, e.Seq)
	case Mark:
		return fmt.Sprintf("%12.6f  %-4s %s", e.At.Seconds(), e.Station, e.Note)
	case State:
		return fmt.Sprintf("%12.6f  %-4s %s -> %s", e.At.Seconds(), e.Station, e.From, e.To)
	case Timer:
		if e.Op == "cancel" {
			return fmt.Sprintf("%12.6f  %-4s timer cancel", e.At.Seconds(), e.Station)
		}
		return fmt.Sprintf("%12.6f  %-4s timer arm @%.6f", e.At.Seconds(), e.Station, e.Deadline.Seconds())
	case Queue:
		return fmt.Sprintf("%12.6f  %-4s queue %s dst=%v len=%d", e.At.Seconds(), e.Station, e.Op, e.Dst, e.QLen)
	case Retry:
		return fmt.Sprintf("%12.6f  %-4s retry dst=%v", e.At.Seconds(), e.Station, e.Dst)
	case Drop:
		return fmt.Sprintf("%12.6f  %-4s drop dst=%v (%s)", e.At.Seconds(), e.Station, e.Dst, e.Note)
	case Deliver:
		return fmt.Sprintf("%12.6f  %-4s dlvr %s %v->%v seq=%d", e.At.Seconds(), e.Station, e.Type, e.Src, e.Dst, e.Seq)
	default:
		return fmt.Sprintf("%12.6f  %-4s rx   %s %v->%v seq=%d", e.At.Seconds(), e.Station, e.Type, e.Src, e.Dst, e.Seq)
	}
}

// Recorder collects events from any number of stations.
type Recorder struct {
	s *sim.Simulator
	// From/To bound the recording window; a zero To means unbounded.
	From, To sim.Time
	// Carrier enables carrier-transition events (noisy; off by default).
	Carrier bool
	events  []Event
	// Sink, if non-nil, receives each event line as it is recorded.
	Sink io.Writer
	// Tap, if non-nil, receives every event as it happens, before the
	// From/To window filter — an online subscription for consumers (such
	// as the conformance oracle's tests) that need the full stream rather
	// than the recorded slice.
	Tap func(Event)
	// Max, when positive, bounds the recorded slice: events beyond it are
	// counted in dropped instead of retained, so a long instrumented run
	// cannot grow an unbounded trace. The Tap still sees everything.
	Max int
	// OmitBridgeRx suppresses Receive events from MAC-observer bridges
	// (MACObserver); set it when the recorder is also attached as a radio
	// wrapper (Attach/AttachAll), which records receptions already.
	OmitBridgeRx bool
	dropped      int
}

// NewRecorder returns a recorder bound to the simulator clock.
func NewRecorder(s *sim.Simulator) *Recorder { return &Recorder{s: s} }

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Filter returns the recorded events matching keep.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many recorded events match keep.
func (r *Recorder) Count(keep func(Event) bool) int { return len(r.Filter(keep)) }

// WriteJSON writes the recorded events as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.events)
}

// WriteText writes the recorded events as one line each.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Record appends e to the trace, honouring the Tap, the From/To window, and
// the Max cap. It is the single entry point for both the radio wrappers and
// the MAC-observer bridges.
func (r *Recorder) Record(e Event) {
	if r.Tap != nil {
		r.Tap(e)
	}
	if r.s.Now() < r.From || (r.To > 0 && r.s.Now() >= r.To) {
		return
	}
	if r.Max > 0 && len(r.events) >= r.Max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
	if r.Sink != nil {
		fmt.Fprintln(r.Sink, e)
	}
}

// Dropped reports how many in-window events the Max cap discarded.
func (r *Recorder) Dropped() int { return r.dropped }

// Attach interposes the recorder between a station's radio and its MAC. It
// must be called after the station's protocol is constructed (the factory
// installs the MAC as the radio handler).
func (r *Recorder) Attach(st *core.Station) {
	w := &wrapper{rec: r, name: st.Name(), inner: st.MAC()}
	st.Radio().SetHandler(w)
}

// AttachAll attaches the recorder to every station of the network.
func (r *Recorder) AttachAll(n *core.Network) {
	for _, st := range n.Stations() {
		r.Attach(st)
	}
}

// wrapper forwards physical-layer indications, recording them.
type wrapper struct {
	rec   *Recorder
	name  string
	inner phy.Handler
}

func (w *wrapper) RadioReceive(f *frame.Frame) {
	w.rec.Record(Event{At: w.rec.s.Now(), Station: w.name, Kind: Receive,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
	w.inner.RadioReceive(f)
}

func (w *wrapper) RadioCarrier(busy bool) {
	if w.rec.Carrier {
		w.rec.Record(Event{At: w.rec.s.Now(), Station: w.name, Kind: Carrier, Busy: busy})
	}
	w.inner.RadioCarrier(busy)
}

func (w *wrapper) RadioCorrupted(f *frame.Frame) {
	w.rec.Record(Event{At: w.rec.s.Now(), Station: w.name, Kind: Corrupt,
		Type: f.Type, Src: f.Src, Dst: f.Dst, Seq: f.Seq})
	if obs, ok := w.inner.(phy.CorruptionObserver); ok {
		obs.RadioCorrupted(f)
	}
}
