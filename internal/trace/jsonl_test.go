package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{At: sim.FromSeconds(0.1), Station: "P1", Kind: Transmit, Type: frame.RTS, Src: 1, Dst: 2, Seq: 7, Backoff: 4},
		{At: sim.FromSeconds(0.2), Station: "P1", Kind: State, From: "IDLE", To: "CONTEND"},
		{At: sim.FromSeconds(0.3), Station: "B", Kind: Timer, Op: "arm", Deadline: sim.FromSeconds(0.5)},
		{At: sim.FromSeconds(0.4), Station: "B", Kind: Queue, Op: "push", Dst: 2, QLen: 3},
		{At: sim.FromSeconds(0.5), Station: "B", Kind: Retry, Dst: 2},
		{At: sim.FromSeconds(0.6), Station: "B", Kind: Drop, Dst: 2, Note: "retry limit"},
		{At: sim.FromSeconds(0.7), Station: "B", Kind: Deliver, Type: frame.DATA, Src: 1, Dst: 2, Seq: 7},
	}
}

// TestJSONLRoundTrip pins that every typed field survives encode/decode.
func TestJSONLRoundTrip(t *testing.T) {
	in := sampleEvents()
	var b bytes.Buffer
	if err := EncodeJSONL(&b, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != len(in) {
		t.Fatalf("%d lines, want %d", got, len(in))
	}
	out, err := DecodeJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestDecodeJSONLBadLine(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader("{\"at\":1}\n\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line-numbered failure", err)
	}
}

// TestRecorderMaxCap pins the bounded-recording contract: events beyond Max
// are counted, not kept.
func TestRecorderMaxCap(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s)
	r.Max = 3
	for i := 0; i < 5; i++ {
		r.Record(Event{At: s.Now(), Station: "X", Kind: Retry})
	}
	if len(r.Events()) != 3 {
		t.Errorf("kept %d events, want 3", len(r.Events()))
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
}

// TestJSONLSinkOrdersByLabel pins that the multi-run stream is sorted by run
// label and stamps each event's Run field, independent of Add order.
func TestJSONLSinkOrdersByLabel(t *testing.T) {
	mk := func(order []string) []byte {
		s := NewJSONLSink()
		for _, label := range order {
			s.Add(label, sampleEvents(), 1)
		}
		var b bytes.Buffer
		if err := s.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a := mk([]string{"t2/B", "t1/A"})
	b := mk([]string{"t1/A", "t2/B"})
	if !bytes.Equal(a, b) {
		t.Error("sink output depends on Add order")
	}
	s := NewJSONLSink()
	s.Add("t1/A", sampleEvents(), 2)
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d", s.Dropped())
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.Run != "t1/A" {
			t.Fatalf("event missing run stamp: %+v", e)
		}
	}
}
