package token

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

type station struct {
	m         *Token
	radio     *phy.Radio
	delivered int
	sent      int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
	nodes  []*station
}

// newRing builds n stations in a single cell sharing one token ring.
func newRing(seed int64, n int, opt Options) *world {
	s := sim.New(seed)
	w := &world{s: s, medium: phy.New(s, phy.DefaultParams())}
	var ring []frame.NodeID
	for i := 0; i < n; i++ {
		ring = append(ring, frame.NodeID(i+1))
	}
	opt.Ring = ring
	positions := []geom.Vec3{
		{X: 0, Y: 0, Z: 6}, {X: 4, Y: 0, Z: 6}, {X: 0, Y: 4, Z: 6},
		{X: -4, Y: 0, Z: 6}, {X: 0, Y: -4, Z: 6}, {X: 3, Y: 3, Z: 6},
		{X: -3, Y: -3, Z: 6}, {X: 3, Y: -3, Z: 6},
	}
	for i := 0; i < n; i++ {
		st := &station{}
		st.radio = w.medium.Attach(ring[i], positions[i], nil)
		env := &mac.Env{
			Sim: s, Radio: st.radio, Rand: s.NewRand(), Cfg: mac.DefaultConfig(),
			Callbacks: mac.Callbacks{
				Deliver: func(frame.NodeID, []byte) { st.delivered++ },
				Sent:    func(*mac.Packet) { st.sent++ },
			},
		}
		st.m = New(env, opt)
		w.nodes = append(w.nodes, st)
	}
	return w
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: frame.DefaultDataBytes, Payload: []byte("x")}
}

func TestStateStrings(t *testing.T) {
	if NoToken.String() != "NOTOKEN" || Holding.String() != "HOLDING" || Passing.String() != "PASSING" {
		t.Fatal("state names")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state name")
	}
}

func TestNotInRingPanics(t *testing.T) {
	s := sim.New(1)
	m := phy.New(s, phy.DefaultParams())
	radio := m.Attach(99, geom.V(0, 0, 6), nil)
	env := &mac.Env{Sim: s, Radio: radio, Rand: s.NewRand(), Cfg: mac.DefaultConfig()}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for station outside the ring")
		}
	}()
	New(env, Options{Ring: []frame.NodeID{1, 2}})
}

func TestSingleTransferCompletes(t *testing.T) {
	w := newRing(1, 2, Options{})
	w.nodes[0].m.Enqueue(pkt(2))
	w.s.Run(2 * sim.Second)
	if w.nodes[1].delivered != 1 || w.nodes[0].sent != 1 {
		t.Fatalf("delivered=%d sent=%d", w.nodes[1].delivered, w.nodes[0].sent)
	}
}

func TestRoundRobinIsPerfectlyFair(t *testing.T) {
	// Six saturating pads all sending to station 1: the token's
	// round-robin service is exactly fair, with no backoff dynamics.
	w := newRing(2, 6, Options{})
	for i := 1; i < 6; i++ {
		for j := 0; j < 500; j++ {
			w.nodes[i].m.Enqueue(pkt(1))
		}
	}
	w.s.Run(30 * sim.Second)
	sent := make([]int, 6)
	total := 0
	for i := 1; i < 6; i++ {
		sent[i] = w.nodes[i].sent
		total += sent[i]
	}
	if total < 500 {
		t.Fatalf("total sent %d too low", total)
	}
	for i := 1; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			diff := sent[i] - sent[j]
			if diff < -2 || diff > 2 {
				t.Fatalf("round robin uneven: %v", sent[1:])
			}
		}
	}
}

func TestNoCollisionsEver(t *testing.T) {
	w := newRing(3, 5, Options{})
	for i := 0; i < 5; i++ {
		for j := 0; j < 200; j++ {
			w.nodes[i].m.Enqueue(pkt(frame.NodeID((i+1)%5 + 1)))
		}
	}
	w.s.Run(30 * sim.Second)
	if c := w.medium.Counters().Corrupted; c != 0 {
		t.Fatalf("token access produced %d corrupted receptions", c)
	}
}

func TestDeadSuccessorIsSkipped(t *testing.T) {
	w := newRing(4, 3, Options{})
	// Station 2 dies immediately; 1 and 3 keep exchanging data.
	w.nodes[1].radio.SetEnabled(false)
	for j := 0; j < 50; j++ {
		w.nodes[0].m.Enqueue(pkt(3))
		w.nodes[2].m.Enqueue(pkt(1))
	}
	w.s.Run(30 * sim.Second)
	if w.nodes[2].delivered < 50 || w.nodes[0].delivered < 50 {
		t.Fatalf("deliveries with dead member: %d / %d", w.nodes[2].delivered, w.nodes[0].delivered)
	}
	skips := w.nodes[0].m.Skips + w.nodes[2].m.Skips
	if skips == 0 {
		t.Fatal("dead successor was never skipped")
	}
}

func TestTokenRegeneratedAfterHolderDies(t *testing.T) {
	w := newRing(5, 3, Options{})
	for j := 0; j < 200; j++ {
		w.nodes[1].m.Enqueue(pkt(3))
		w.nodes[2].m.Enqueue(pkt(2))
	}
	// Kill station 1 (the bootstrap holder) mid-run while it may hold
	// the token.
	w.s.At(2*sim.Second, func() { w.nodes[0].radio.SetEnabled(false) })
	w.s.Run(30 * sim.Second)
	// Traffic between the survivors must continue after the death.
	if w.nodes[1].delivered < 150 || w.nodes[2].delivered < 150 {
		t.Fatalf("ring stalled after holder death: %d / %d",
			w.nodes[1].delivered, w.nodes[2].delivered)
	}
	regen := w.nodes[1].m.Regenerations + w.nodes[2].m.Regenerations
	skips := w.nodes[1].m.Skips + w.nodes[2].m.Skips
	if regen+skips == 0 {
		t.Fatal("no recovery events despite a dead member")
	}
}

func TestThroughputNearChannelCapacity(t *testing.T) {
	// With one saturating sender and MaxPerToken 1, each data packet
	// costs DATA + (ring-1) token passes; with a 2-station ring the
	// overhead is one 30-byte token per 512-byte packet.
	w := newRing(6, 2, Options{})
	for j := 0; j < 5000; j++ {
		w.nodes[0].m.Enqueue(pkt(2))
	}
	w.s.Run(30 * sim.Second)
	pps := float64(w.nodes[1].delivered) / 30
	// Ideal: 1/(16ms + 2*0.94ms + watch gaps) ~ 45-55 pps.
	if pps < 40 {
		t.Fatalf("token throughput %.1f pps too low", pps)
	}
}

func TestQueueLenAndStats(t *testing.T) {
	w := newRing(7, 2, Options{})
	w.nodes[0].m.Enqueue(pkt(2))
	w.nodes[0].m.Enqueue(pkt(2))
	if w.nodes[0].m.QueueLen() != 2 {
		t.Fatal("QueueLen")
	}
	w.s.Run(5 * sim.Second)
	if w.nodes[0].m.Stats().DataSent != 2 || w.nodes[1].m.Stats().DataReceived != 2 {
		t.Fatalf("stats: %+v %+v", w.nodes[0].m.Stats(), w.nodes[1].m.Stats())
	}
	if w.nodes[0].m.State() != Passing && w.nodes[0].m.State() != NoToken && w.nodes[0].m.State() != Holding {
		t.Fatal("state accessor broken")
	}
}

// TestNeverWedgesUnderArbitraryFrames: random frames (including spurious
// TOKENs, which can momentarily duplicate the token) must never leave the
// ring unable to carry traffic.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := newRing(seed, 3, Options{})
		r := w.s.NewRand()
		for i := 0; i < 5; i++ {
			w.nodes[0].m.Enqueue(pkt(2))
			w.nodes[1].m.Enqueue(pkt(3))
		}
		types := []frame.Type{frame.TOKEN, frame.DATA, frame.RTS, frame.ACK}
		for i := 0; i < 200; i++ {
			nd := w.nodes[r.Intn(3)]
			f := &frame.Frame{
				Type: types[r.Intn(len(types))],
				Src:  frame.NodeID(1 + r.Intn(4)),
				Dst:  frame.NodeID(1 + r.Intn(4)),
				Seq:  uint32(r.Intn(5)),
			}
			if f.Src != nd.m.env.ID() && !nd.m.env.Radio.Transmitting() {
				nd.m.RadioReceive(f)
			}
			w.s.Run(w.s.Now() + sim.Duration(r.Intn(4))*sim.Millisecond)
		}
		w.s.Run(w.s.Now() + 200*sim.Second)
		for i, nd := range w.nodes {
			if nd.m.QueueLen() > 0 {
				t.Fatalf("seed %d: station %d has %d packets stuck (state %v)",
					seed, i+1, nd.m.QueueLen(), nd.m.State())
			}
		}
	}
}
