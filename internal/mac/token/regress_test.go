package token

// Regression tests for the convention-divergence bugs the MAC SPI extraction
// flushed out of the token engine: before the extraction the engine had no
// Halt at all, skipped the observer discipline the other engines follow, and
// its snapshot inventory omitted the timer-cancellation and halt bits.

import (
	"strings"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// recObs records every observer hook invocation in order.
type recObs struct {
	timers   []sim.Time
	queueOps []string
	tx       int
	rx       int
	states   []string
	deliver  int
	drops    []mac.DropReason
}

func (o *recObs) ObserveTx(*frame.Frame)       { o.tx++ }
func (o *recObs) ObserveRx(*frame.Frame)       { o.rx++ }
func (o *recObs) ObserveState(from, to string) { o.states = append(o.states, from+">"+to) }
func (o *recObs) ObserveTimer(at sim.Time)     { o.timers = append(o.timers, at) }
func (o *recObs) ObserveDeliver(*frame.Frame)  { o.deliver++ }
func (o *recObs) ObserveQueue(op string, _ frame.NodeID, n int) {
	o.queueOps = append(o.queueOps, op)
}
func (o *recObs) ObserveDrop(_ frame.NodeID, reason mac.DropReason) {
	o.drops = append(o.drops, reason)
}
func (o *recObs) ObserveRetry(frame.NodeID) {}

// observedRing builds a 2-station ring with a recording observer on station 1.
func observedRing(seed int64) (*world, *recObs) {
	w := newRing(seed, 2, Options{})
	obs := &recObs{}
	w.nodes[0].m.env.Obs = obs
	w.nodes[0].m.lobs = mac.AsLossObserver(obs)
	return w, obs
}

// TestHaltSilencesZombieInstance pins the convention bug the SPI extraction
// exposed: the token engine had no Halt, so a crashed station's instance kept
// re-arming its watchdog and driving the shared radio after a restart bound a
// fresh engine. A halted instance must cancel both events, drop its queue as
// DropDisabled, and never transmit again.
func TestHaltSilencesZombieInstance(t *testing.T) {
	w := newRing(11, 2, Options{})
	a := w.nodes[0]
	for i := 0; i < 3; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(200 * sim.Millisecond) // ring running, token circulating
	dropped := 0
	a.m.env.Callbacks.Dropped = func(_ *mac.Packet, r mac.DropReason) {
		if r != mac.DropDisabled {
			t.Fatalf("drop reason %v, want DropDisabled", r)
		}
		dropped++
	}
	a.m.Enqueue(pkt(2))
	a.m.Halt()
	if !a.m.Halted() || a.m.QueueLen() != 0 {
		t.Fatalf("halted=%t queue=%d", a.m.Halted(), a.m.QueueLen())
	}
	if dropped == 0 {
		t.Fatal("halt drained the queue without NotifyDropped accounting")
	}
	if a.m.TimerPending() {
		t.Fatal("state timer or watchdog still armed after Halt — the zombie would regenerate the token")
	}
	sentBefore := a.m.Stats().DataSent
	a.m.Enqueue(pkt(2)) // must be refused, not queued
	// Hand the zombie the token and let the watchdog horizon pass: a
	// pre-fix instance would acquire, transmit, and regenerate.
	a.m.RadioReceive(&frame.Frame{Type: frame.TOKEN, Src: 2, Dst: 1})
	w.s.Run(w.s.Now() + 30*sim.Second)
	if a.m.Stats().DataSent != sentBefore || a.m.QueueLen() != 0 {
		t.Fatalf("halted instance still active: sent %d->%d queue=%d",
			sentBefore, a.m.Stats().DataSent, a.m.QueueLen())
	}
}

// TestObserverDisciplineMatchesConvention pins the observer-notification
// convention the other engines follow and the token engine used to skip
// entirely: push/pop queue accounting, ObserveTx before every radiated frame,
// ObserveTimer cancellation reports, and ObserveDeliver for handed-up data.
func TestObserverDisciplineMatchesConvention(t *testing.T) {
	w, obs := observedRing(12)
	w.nodes[0].m.Enqueue(pkt(2))
	w.nodes[1].m.Enqueue(pkt(1))
	w.s.Run(5 * sim.Second)
	if obs.tx == 0 {
		t.Fatal("no ObserveTx despite token passes and data")
	}
	if obs.rx == 0 {
		t.Fatal("no ObserveRx despite receptions")
	}
	push, pop := 0, 0
	for _, op := range obs.queueOps {
		switch op {
		case "push":
			push++
		case "pop":
			pop++
		}
	}
	if push != 1 || pop != 1 {
		t.Fatalf("queue accounting push=%d pop=%d, want 1/1 (ops %v)", push, pop, obs.queueOps)
	}
	if obs.deliver != 1 {
		t.Fatalf("ObserveDeliver = %d, want 1", obs.deliver)
	}
	if len(obs.states) == 0 {
		t.Fatal("no FSM transitions observed")
	}
	cancelled := false
	for _, at := range obs.timers {
		if at < 0 {
			cancelled = true
		}
	}
	if !cancelled {
		t.Fatal("no ObserveTimer(-1): timer cancellations go unreported")
	}
}

// TestHaltReportsTimerCancellation pins the ordering rule: Halt must report
// the state-timer cancellation through ObserveTimer(-1) as its last timer
// observation, exactly like the other engines' halt paths.
func TestHaltReportsTimerCancellation(t *testing.T) {
	w, obs := observedRing(13)
	w.nodes[0].m.Enqueue(pkt(2))
	w.s.Run(200 * sim.Millisecond)
	w.nodes[0].m.Enqueue(pkt(2)) // still queued at halt time
	w.nodes[0].m.Halt()
	if n := len(obs.timers); n == 0 || obs.timers[n-1] != -1 {
		t.Fatalf("timer observations %v: Halt did not report cancellation last", obs.timers)
	}
	if len(obs.drops) == 0 {
		t.Fatal("queue drain bypassed the loss observer")
	}
	for _, r := range obs.drops {
		if r != mac.DropDisabled {
			t.Fatalf("loss observer saw %v, want DropDisabled", r)
		}
	}
}

// TestAppendStateCarriesCancellationAndHalt pins the AppendState field-order
// fix: the inventory must carry the timer Cancelled flags (a cancelled but
// uncompacted event is an ordering-key difference a fork must reproduce) and
// the halted bit, in the SPI's conventional positions.
func TestAppendStateCarriesCancellationAndHalt(t *testing.T) {
	w := newRing(14, 2, Options{})
	line := string(w.nodes[0].m.AppendState(nil))
	for _, field := range []string{"timerCancelled=", "watchdogCancelled=", "halted=false"} {
		if !strings.Contains(line, field) {
			t.Fatalf("inventory %q missing %q", line, field)
		}
	}
	if !strings.Contains(line, "halted=false") {
		t.Fatalf("inventory %q missing halt bit", line)
	}
	w.nodes[0].m.Halt()
	if line := string(w.nodes[0].m.AppendState(nil)); !strings.Contains(line, "halted=true") {
		t.Fatalf("inventory %q does not flip the halt bit", line)
	}
}
