// Package token implements the token-based single-cell access scheme the
// paper defers to future work ("Various token-based schemes, or those
// involving polling or reservations, are possibilities we hope to explore").
//
// A static ring of stations circulates a TOKEN control packet; the holder
// transmits up to MaxPerToken queued data packets, then passes the token to
// its successor. The scheme needs no RTS/CTS — token possession is the
// collision-avoidance — but it pays exactly the costs §2.1 predicts for a
// mobile environment: hand-off overhead on every rotation, and recovery
// timeouts whenever a station holding (or about to receive) the token
// disappears. Stations skip dead successors after a watch timeout, and the
// lowest-numbered live station regenerates a token lost to silence.
//
// The implementation is deliberately single-cell (every ring member must
// hear every other); the paper's other reason for rejecting tokens —
// hand-off across cells — is out of scope.
package token

import (
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// State is a token MAC state.
type State int

// Token states.
const (
	// NoToken: listening; the token is elsewhere.
	NoToken State = iota
	// Holding: this station owns the channel.
	Holding
	// Passing: token transmitted, watching for the successor to use it.
	Passing
)

var stateNames = [...]string{"NOTOKEN", "HOLDING", "PASSING"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Options configures a token MAC instance.
type Options struct {
	// Ring lists every station of the cell in token order; it must be
	// identical at every member. The first listed station generates the
	// initial token.
	Ring []frame.NodeID
	// MaxPerToken bounds the data packets sent per token possession
	// (default 1, round-robin fairness).
	MaxPerToken int
	// WatchSlots is how many slot times a passer waits to hear its
	// successor use the token before skipping it. Receptions complete at
	// frame end, so the window must cover the successor's largest first
	// transmission — a full data frame (~17.1 slots for 512 bytes) plus
	// slack (default 24).
	WatchSlots int
	// RecoverySlots is how many slots of total silence any station
	// tolerates before the lowest live member regenerates the token
	// (default 64).
	RecoverySlots int
}

func (o Options) withDefaults() Options {
	if o.MaxPerToken <= 0 {
		o.MaxPerToken = 1
	}
	if o.WatchSlots <= 0 {
		o.WatchSlots = 24
	}
	if o.RecoverySlots <= 0 {
		o.RecoverySlots = 64
	}
	return o
}

// Token is one station's protocol instance.
type Token struct {
	env  *mac.Env
	opt  Options
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st       State
	q        mac.Queue
	ringPos  int // own index in the ring
	passTo   int // ring index the token was passed to (Passing state)
	sentThis int // packets sent during the current possession
	// sending is the packet on the air during a possession (already popped
	// off the queue), completed by onDataSent.
	sending *mac.Packet
	// skipNext is the skip distance the Passing watch timer will retry
	// with when the successor never shows life.
	skipNext int
	timer    sim.Event
	watchdog sim.Event
	seq      uint32
	halted   bool // crashed instance: every entry point is a no-op
	stats    mac.Stats
	// Regenerations counts token-recovery events at this station.
	Regenerations int
	// Skips counts successors skipped after a watch timeout.
	Skips int
}

// New returns a token MAC bound to env's radio. The env's station must be
// listed in opt.Ring.
func New(env *mac.Env, opt Options) *Token {
	opt = opt.withDefaults()
	t := &Token{env: env, opt: opt, lobs: mac.AsLossObserver(env.Obs), ringPos: -1}
	for i, id := range opt.Ring {
		if id == env.ID() {
			t.ringPos = i
			break
		}
	}
	if t.ringPos < 0 {
		panic(fmt.Sprintf("token: station %v not in ring %v", env.ID(), opt.Ring))
	}
	env.Radio.SetHandler(t)
	t.armWatchdog()
	if t.ringPos == 0 {
		// The first member bootstraps the token once the ring settles.
		t.env.Sim.After(t.env.Cfg.Slot(), t.acquire)
	}
	return t
}

// State returns the current protocol state.
func (t *Token) State() State { return t.st }

// timerAt returns when e fires, or -1 for an unarmed or cancelled event.
func timerAt(e sim.Event) sim.Time {
	if e.IsZero() || e.Cancelled() {
		return -1
	}
	return e.When()
}

// FSMState implements mac.Inspector.
func (t *Token) FSMState() string { return t.st.String() }

// TimerPending implements mac.Inspector. The silence watchdog counts: it is
// the event that guarantees liveness in NOTOKEN (the token is elsewhere and
// only recovery or a reception can change that), so the scheme's pending
// continuation is whichever of the state timer and the watchdog fires first.
func (t *Token) TimerPending() bool { return t.TimerWhen() >= 0 }

// TimerWhen implements mac.Inspector: the earlier of the state timer and the
// silence watchdog, or -1 when neither is armed.
func (t *Token) TimerWhen() sim.Time {
	a, b := timerAt(t.timer), timerAt(t.watchdog)
	if a < 0 {
		return b
	}
	if b < 0 || a < b {
		return a
	}
	return b
}

// Halt implements mac.Halter: cancel both pending events, drop the queue
// (reported with DropDisabled), and turn every subsequent entry point into a
// no-op so a restarted MAC can own the radio without interference. Before the
// MAC SPI extraction the token engine had no Halt at all, so a crashed
// station's instance kept driving the shared radio after a restart bound a
// fresh one — see TestHaltSilencesZombieInstance.
func (t *Token) Halt() {
	if t.halted {
		return
	}
	t.halted = true
	t.clearTimer()
	t.watchdog.Cancel()
	t.watchdog = sim.Event{}
	t.st = NoToken
	t.sending = nil
	for p := t.q.Pop(); p != nil; p = t.q.Pop() {
		t.stats.Drops++
		t.noteDrop(p.Dst, mac.DropDisabled)
		t.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (t *Token) Halted() bool { return t.halted }

// Protocol implements mac.Engine.
func (t *Token) Protocol() string { return "token" }

// Stats implements mac.MAC.
func (t *Token) Stats() mac.Stats { return t.stats }

// QueueLen implements mac.MAC.
func (t *Token) QueueLen() int { return t.q.Len() }

// Enqueue implements mac.MAC.
func (t *Token) Enqueue(p *mac.Packet) {
	if t.halted {
		t.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	t.seq++
	p.SetSeq(t.seq)
	p.Enqueued = t.env.Sim.Now()
	t.q.Push(p)
	t.noteQueue("push", p.Dst)
}

func (t *Token) setTimer(d sim.Duration, fn func()) {
	t.timer.Cancel()
	t.timer = t.env.Sim.After(d, fn)
	if t.env.Obs != nil {
		t.env.Obs.ObserveTimer(t.timer.When())
	}
}

// clearTimer cancels the state timer, reporting the cancellation. The silence
// watchdog is deliberately not reported through ObserveTimer — the observer
// contract traces the state timer; the watchdog is visible via TimerWhen.
func (t *Token) clearTimer() {
	t.timer.Cancel()
	t.timer = sim.Event{}
	if t.env.Obs != nil {
		t.env.Obs.ObserveTimer(-1)
	}
}

// transmit radiates f, notifying the conformance observer first.
func (t *Token) transmit(f *frame.Frame) sim.Duration {
	if t.env.Obs != nil {
		t.env.Obs.ObserveTx(f)
	}
	return t.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (t *Token) setState(s State) {
	if t.env.Obs != nil && s != t.st {
		t.env.Obs.ObserveState(t.st.String(), s.String())
	}
	t.st = s
}

// noteQueue reports a queue operation to the observer.
func (t *Token) noteQueue(op string, dst frame.NodeID) {
	if t.env.Obs != nil {
		t.env.Obs.ObserveQueue(op, dst, t.q.Len())
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (t *Token) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if t.lobs != nil {
		t.lobs.ObserveDrop(dst, reason)
	}
}

// armWatchdog (re)starts the silence watchdog that triggers token recovery.
func (t *Token) armWatchdog() {
	t.watchdog.Cancel()
	t.watchdog = t.env.Sim.After(sim.Duration(t.opt.RecoverySlots+t.ringPos)*t.env.Cfg.Slot(), t.onSilence)
}

// onSilence fires when nothing has been heard for the recovery window. The
// per-station ringPos stagger makes the lowest live member win the
// regeneration race.
func (t *Token) onSilence() {
	t.watchdog = sim.Event{}
	if t.st != NoToken {
		t.armWatchdog()
		return
	}
	t.Regenerations++
	t.acquire()
}

// acquire takes possession of the token.
func (t *Token) acquire() {
	if t.halted || t.env.Radio.Transmitting() {
		return
	}
	t.setState(Holding)
	t.sentThis = 0
	t.serve()
}

// serve transmits queued data while the possession budget lasts, then
// passes the token on.
func (t *Token) serve() {
	t.armWatchdog()
	head := t.q.Peek()
	if head == nil || t.sentThis >= t.opt.MaxPerToken {
		t.pass(1)
		return
	}
	t.q.Pop()
	t.noteQueue("pop", head.Dst)
	t.sentThis++
	data := &frame.Frame{Type: frame.DATA, Src: t.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
	air := t.transmit(data)
	t.sending = head
	t.setTimer(air, t.onDataSent)
}

// onDataSent completes the data frame on the air and keeps serving.
func (t *Token) onDataSent() {
	t.timer = sim.Event{}
	head := t.sending
	t.sending = nil
	t.stats.DataSent++
	t.env.Callbacks.NotifySent(head)
	t.serve()
}

// onHoldPause resumes serving after a held-token pause: either the recovery
// pause taken when every successor looked dead, or the one-slot self-pass of
// a ring of one. Both reopen the possession budget.
func (t *Token) onHoldPause() {
	t.timer = sim.Event{}
	t.sentThis = 0
	t.serve()
}

// onWatchTimeout fires when the successor the token was passed to never
// showed life: skip it and pass further around the ring.
func (t *Token) onWatchTimeout() {
	t.timer = sim.Event{}
	t.Skips++
	t.pass(t.skipNext)
}

// pass hands the token to the skip-th successor and watches for it to show
// life.
func (t *Token) pass(skip int) {
	if skip >= len(t.opt.Ring) {
		// Everyone else looks dead; keep the token and try again after
		// a recovery pause.
		t.setState(Holding)
		t.setTimer(sim.Duration(t.opt.RecoverySlots)*t.env.Cfg.Slot(), t.onHoldPause)
		return
	}
	t.passTo = (t.ringPos + skip) % len(t.opt.Ring)
	succ := t.opt.Ring[t.passTo]
	if succ == t.env.ID() {
		// Ring of one: keep serving after a slot's pause.
		t.sentThis = 0
		t.setTimer(t.env.Cfg.Slot(), t.onHoldPause)
		return
	}
	tok := &frame.Frame{Type: frame.TOKEN, Src: t.env.ID(), Dst: succ}
	air := t.transmit(tok)
	t.setState(Passing)
	t.skipNext = skip + 1
	t.setTimer(air+sim.Duration(t.opt.WatchSlots)*t.env.Cfg.Slot(), t.onWatchTimeout)
}

// RadioCarrier implements phy.Handler; token access needs no carrier sense.
func (t *Token) RadioCarrier(bool) {}

// RadioReceive implements phy.Handler.
func (t *Token) RadioReceive(f *frame.Frame) {
	if t.halted {
		return
	}
	if t.env.Obs != nil {
		t.env.Obs.ObserveRx(f)
	}
	t.armWatchdog()
	if t.st == Passing {
		// Any transmission from the successor proves the hand-off.
		if f.Src == t.opt.Ring[t.passTo] {
			t.clearTimer()
			t.setState(NoToken)
		}
	}
	switch f.Type {
	case frame.TOKEN:
		if f.Dst == t.env.ID() {
			t.clearTimer()
			t.acquire()
		}
	case frame.DATA:
		if f.Dst == t.env.ID() || f.Dst == frame.Broadcast {
			t.stats.DataReceived++
			if t.env.Obs != nil {
				t.env.Obs.ObserveDeliver(f)
			}
			t.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
		}
	}
}
