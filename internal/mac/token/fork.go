package token

import (
	"fmt"

	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into t, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15).
// Queued packets are shared — a mac.Packet is immutable once enqueued — and
// both pending events (the state timer and the silence watchdog) are re-armed
// at their exact (when, prio, seq) ordering keys. The state timer's callback
// is discriminated by FSM state: Holding completes a DATA frame when sending
// is set and resumes after a hold pause when it is nil; Passing watches the
// successor. The one timer this path cannot reproduce is the ring-bootstrap
// acquire armed by New at station zero — its handle is discarded at build —
// but it fires one slot into the run, so it can never still be pending at a
// warm barrier; if it somehow were, the fork's event heap would hold fewer
// events than the warm capture and the byte-verification step fails closed.
func (t *Token) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*Token)
	if !ok {
		return fmt.Errorf("token: adopt: engine is %T here vs %T in warm twin", t, peer)
	}
	if w.halted || t.halted {
		return fmt.Errorf("token: adopt: halted instance (warm=%t fork=%t)", w.halted, t.halted)
	}
	if t.ringPos != w.ringPos || len(t.opt.Ring) != len(w.opt.Ring) {
		return fmt.Errorf("token: adopt: ring position %d/%d here vs %d/%d in warm twin",
			t.ringPos, len(t.opt.Ring), w.ringPos, len(w.opt.Ring))
	}
	t.st = w.st
	t.q.AdoptFrom(&w.q)
	t.passTo = w.passTo
	t.sentThis = w.sentThis
	t.sending = w.sending
	t.skipNext = w.skipNext
	t.seq = w.seq
	t.stats = w.stats
	t.Regenerations = w.Regenerations
	t.Skips = w.Skips

	var fn func()
	switch w.st {
	case Holding:
		if w.sending != nil {
			fn = t.onDataSent
		} else {
			fn = t.onHoldPause
		}
	case Passing:
		fn = t.onWatchTimeout
	}
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("token: adopt: live timer in state %s, which never arms one", w.st)
	}
	t.timer = t.env.Sim.Readopt(w.timer, fn)
	t.watchdog = t.env.Sim.Readopt(w.watchdog, t.onSilence)
	return nil
}
