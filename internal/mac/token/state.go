package token

import (
	"fmt"

	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14). The field ordering follows the SPI convention
// the other engines use: timer fields carry their Cancelled flag (a cancelled
// but uncompacted event is an ordering-key difference a fork must reproduce)
// and seq/halted close the FSM line.
func (t *Token) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "token st=%s ringPos=%d passTo=%d sentThis=%d skipNext=%d timer=%d timerCancelled=%t watchdog=%d watchdogCancelled=%t seq=%d halted=%t regen=%d skips=%d",
		t.st, t.ringPos, t.passTo, t.sentThis, t.skipNext, t.timer.When(), t.timer.Cancelled(), t.watchdog.When(), t.watchdog.Cancelled(), t.seq, t.halted, t.Regenerations, t.Skips)
	b = mac.AppendPacketRef(b, "sending", t.sending)
	b = append(b, '\n')
	b = t.q.AppendState(b)
	b = t.stats.AppendState(b)
	return b
}
