package token

import (
	"fmt"

	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14).
func (t *Token) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "token st=%s ringPos=%d passTo=%d sentThis=%d skipNext=%d timer=%d watchdog=%d seq=%d regen=%d skips=%d",
		t.st, t.ringPos, t.passTo, t.sentThis, t.skipNext, t.timer.When(), t.watchdog.When(), t.seq, t.Regenerations, t.Skips)
	b = mac.AppendPacketRef(b, "sending", t.sending)
	b = append(b, '\n')
	b = t.q.AppendState(b)
	b = t.stats.AppendState(b)
	return b
}
