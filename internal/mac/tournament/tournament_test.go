package tournament

import (
	"strings"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

type station struct {
	m         *Tournament
	delivered int
	sent      int
	dropped   int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, medium: phy.New(s, phy.DefaultParams())}
}

func (w *world) add(id frame.NodeID, pos geom.Vec3, opt Options) *station {
	st := &station{}
	radio := w.medium.Attach(id, pos, nil)
	env := &mac.Env{
		Sim: w.s, Radio: radio, Rand: w.s.NewRand(), Cfg: mac.DefaultConfig(),
		Callbacks: mac.Callbacks{
			Deliver: func(frame.NodeID, []byte) { st.delivered++ },
			Sent:    func(*mac.Packet) { st.sent++ },
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	st.m = New(env, opt)
	return st
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: 512, Payload: []byte("x")}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Idle: "IDLE", WaitIdle: "WAITIDLE", Tourn: "TOURN", SendData: "SENDDATA", WFACK: "WFACK",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%v = %q want %q", s, s.String(), n)
		}
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state")
	}
}

func TestSoloWinnerDelivers(t *testing.T) {
	w := newWorld(1)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{})
	a.m.Enqueue(pkt(2))
	w.s.Run(2 * sim.Second)
	if b.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered=%d sent=%d", b.delivered, a.sent)
	}
	if a.m.State() != Idle {
		t.Fatalf("state = %v", a.m.State())
	}
	if b.m.Stats().ACKSent != 1 {
		t.Fatal("no ACK sent")
	}
}

func TestContendersAllDrain(t *testing.T) {
	// Three contenders in mutual range play tournaments for the channel;
	// everything must eventually drain to the sink.
	w := newWorld(2)
	d := w.add(4, geom.V(8, 0, 6), Options{})
	contenders := []*station{
		w.add(1, geom.V(0, 0, 6), Options{}),
		w.add(2, geom.V(4, 0, 6), Options{}),
		w.add(3, geom.V(12, 0, 6), Options{}),
	}
	for _, c := range contenders {
		for i := 0; i < 10; i++ {
			c.m.Enqueue(pkt(4))
		}
	}
	w.s.Run(120 * sim.Second)
	if d.delivered != 30 {
		t.Fatalf("delivered = %d of 30", d.delivered)
	}
	var sigs int
	for _, c := range contenders {
		if c.m.QueueLen() != 0 {
			t.Fatalf("queue stuck at %d (state %v)", c.m.QueueLen(), c.m.State())
		}
		sigs += c.m.Sigs()
	}
	if sigs == 0 {
		t.Fatal("no tournament signals were ever transmitted")
	}
}

func TestBroadcastDataNotACKed(t *testing.T) {
	w := newWorld(3)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{})
	a.m.Enqueue(pkt(frame.Broadcast))
	w.s.Run(2 * sim.Second)
	if b.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered=%d sent=%d", b.delivered, a.sent)
	}
	if b.m.Stats().ACKSent != 0 {
		t.Fatal("broadcast data must not be ACKed")
	}
}

func TestRetryLimitDrops(t *testing.T) {
	w := newWorld(4)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	a.m.Enqueue(pkt(9)) // nobody there: every ACK times out
	w.s.Run(60 * sim.Second)
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
	if a.m.State() != Idle || a.m.QueueLen() != 0 {
		t.Fatalf("state=%v queue=%d", a.m.State(), a.m.QueueLen())
	}
}

func TestHaltDrainsQueueAndSilences(t *testing.T) {
	w := newWorld(5)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	w.add(2, geom.V(6, 0, 6), Options{})
	for i := 0; i < 3; i++ {
		a.m.Enqueue(pkt(2))
	}
	a.m.Halt()
	if !a.m.Halted() || a.m.QueueLen() != 0 || a.m.State() != Idle {
		t.Fatalf("halted=%t queue=%d state=%v", a.m.Halted(), a.m.QueueLen(), a.m.State())
	}
	if a.dropped != 3 {
		t.Fatalf("dropped = %d, want 3", a.dropped)
	}
	if a.m.TimerPending() {
		t.Fatal("timer still pending after halt")
	}
	a.m.Enqueue(pkt(2)) // must be refused
	w.s.Run(5 * sim.Second)
	if a.sent != 0 || a.m.Sigs() != 0 {
		t.Fatal("halted station transmitted")
	}
}

func TestAdoptFromMatchesByteState(t *testing.T) {
	mk := func() (*world, *station, *station) {
		w := newWorld(6)
		a := w.add(1, geom.V(0, 0, 6), Options{})
		b := w.add(2, geom.V(6, 0, 6), Options{})
		return w, a, b
	}
	w1, a1, b1 := mk()
	for i := 0; i < 5; i++ {
		a1.m.Enqueue(pkt(2))
	}
	w1.s.Run(30 * sim.Millisecond) // park mid-traffic

	_, a2, b2 := mk()
	if err := a2.m.AdoptFrom(a1.m); err != nil {
		t.Fatal(err)
	}
	if err := b2.m.AdoptFrom(b1.m); err != nil {
		t.Fatal(err)
	}
	got, want := string(a2.m.AppendState(nil)), string(a1.m.AppendState(nil))
	if got != want {
		t.Fatalf("adopted state diverges:\n got %q\nwant %q", got, want)
	}
	if !strings.HasPrefix(want, "tournament st=") {
		t.Fatalf("state inventory missing protocol prefix: %q", want)
	}
}

func TestAdoptFromRefusesWrongEngineAndOptions(t *testing.T) {
	w := newWorld(7)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{Window: 8})
	if err := a.m.AdoptFrom(b.m); err == nil {
		t.Fatal("adopt across differing options succeeded")
	}
	b.m.Halt()
	if err := a.m.AdoptFrom(b.m); err == nil {
		t.Fatal("adopt from a halted twin succeeded")
	}
}

func TestWindowRetuneFailsClosedAtFloor(t *testing.T) {
	w := newWorld(8)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	if got := a.m.Options().Window; got != 32 {
		t.Fatalf("default window = %d, want 32", got)
	}
	if err := a.m.SetWindow(2); err != nil { // exactly the floor is legal
		t.Fatalf("SetWindow(2): %v", err)
	}
	if err := a.m.SetWindow(1); err == nil {
		t.Fatal("SetWindow(1) succeeded (floor is 2)")
	}
	if got := a.m.Options().Window; got != 2 {
		t.Fatalf("window = %d after rejected retune, want 2", got)
	}
}

// TestNeverWedgesUnderArbitraryFrames injects random frames and checks the
// engine always drains its queue once injections stop.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	types := []frame.Type{frame.RTS, frame.CTS, frame.DS, frame.DATA, frame.ACK, frame.RRTS, frame.NACK, frame.TOKEN, frame.SIG}
	for seed := int64(1); seed <= 10; seed++ {
		w := newWorld(seed)
		a := w.add(1, geom.V(0, 0, 6), Options{})
		w.add(2, geom.V(6, 0, 6), Options{})
		r := w.s.NewRand()
		for i := 0; i < 3; i++ {
			a.m.Enqueue(pkt(2))
		}
		for i := 0; i < 300; i++ {
			f := &frame.Frame{
				Type:      types[r.Intn(len(types))],
				Src:       frame.NodeID(2 + r.Intn(4)),
				Dst:       frame.NodeID(1 + r.Intn(5)),
				DataBytes: uint16(r.Intn(600)),
				Seq:       uint32(r.Intn(6)),
			}
			if !a.m.env.Radio.Transmitting() {
				a.m.RadioReceive(f)
			}
			w.s.Run(w.s.Now() + sim.Duration(r.Intn(3))*sim.Millisecond)
		}
		w.s.Run(w.s.Now() + 120*sim.Second)
		if a.m.QueueLen() > 0 {
			t.Fatalf("seed %d: %d packets stuck (state %v)", seed, a.m.QueueLen(), a.m.State())
		}
	}
}
