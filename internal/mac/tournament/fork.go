package tournament

import (
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into t, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15). Queued packets are shared — a mac.Packet
// is immutable once enqueued — and the pending state timer is re-armed at its
// exact (when, prio, seq) ordering key, with the timer kind (not the FSM
// state) selecting the continuation. It fails closed on anything this path
// cannot reproduce.
func (t *Tournament) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*Tournament)
	if !ok {
		return fmt.Errorf("tournament: adopt: engine is %T here vs %T in warm twin", t, peer)
	}
	if w.halted || t.halted {
		return fmt.Errorf("tournament: adopt: halted instance (warm=%t fork=%t)", w.halted, t.halted)
	}
	if t.opt != w.opt {
		return fmt.Errorf("tournament: adopt: options differ (%+v here vs %+v in warm twin)", t.opt, w.opt)
	}
	t.st = w.st
	t.q.AdoptFrom(&w.q)
	t.draw = w.draw
	t.round = w.round
	t.roundStart = w.roundStart
	t.sentSig = w.sentSig
	t.lastBusy = w.lastBusy
	t.retries = w.retries
	t.sending = w.sending
	t.lastSeq = make(map[frame.NodeID]uint32, len(w.lastSeq))
	for k, v := range w.lastSeq {
		t.lastSeq[k] = v
	}
	t.seq = w.seq
	t.sigs = w.sigs
	t.stats = w.stats

	t.tk = w.tk
	var fn func()
	if w.tk != tNone {
		fn = t.timerFn(w.tk)
	}
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("tournament: adopt: live timer with kind %d, which has no continuation", w.tk)
	}
	t.timer = t.env.Sim.Readopt(w.timer, fn)
	return nil
}

// SetWindow rewrites the constant contention window at a sweep barrier. It
// fails closed below the floor of 2 (a 1-wide window has zero rounds and
// every contention would collide) — the sweep delta layer surfaces this as a
// validation error rather than clamping silently.
func (t *Tournament) SetWindow(v int) error {
	if v < 2 {
		return fmt.Errorf("tournament: window %d below floor 2", v)
	}
	t.opt.Window = v
	return nil
}

// SetMaxRetries rewrites the per-packet retry limit, effective from the next
// unacknowledged data frame.
func (t *Tournament) SetMaxRetries(n int) { t.env.Cfg.MaxRetries = n }
