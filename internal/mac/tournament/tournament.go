// Package tournament implements a constant-window tournament MAC in the
// spirit of Galtier's selective-signaling schemes: instead of spreading
// retransmissions over an ever-growing backoff window, contenders resolve
// each contention in a fixed number of elimination rounds on a global slot
// grid.
//
// Every contender draws one value from a constant window [0, W) and plays
// K = ceil(log2 W) rounds, presenting the draw's bits most-significant
// first. A contender whose current bit is 1 radiates a one-slot SIG burst
// and survives the round unconditionally; a contender whose bit is 0 stays
// silent and survives only if the slot stays silent too. After K rounds the
// survivors — exactly the stations holding the maximum draw — transmit
// their data; distinct draws yield a single winner, equal maximal draws
// collide and retry. The window never adapts: fairness comes from fresh
// uniform draws each contention, and the access delay is bounded by K slots
// regardless of load — the trade the paper's §5 backoff discussion circles
// around (stability versus bounded access time).
//
// The slot grid is global (slot = one control packet's airtime, and a SIG
// is a control packet, so a signaling burst fills its round exactly).
// Stations join a contention only after observing the medium idle for a
// full slot, which keeps concurrent tournaments aligned in the common case;
// misaligned joins resolve as ordinary collisions through the ACK retry
// path. Losses during the elimination rounds cost no retry budget — only a
// transmitted-but-unacknowledged data frame counts against MaxRetries.
package tournament

import (
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// State is a tournament FSM state.
type State int

// Tournament states.
const (
	// Idle: nothing queued.
	Idle State = iota
	// WaitIdle: queued data pending, polling grid boundaries for a
	// slot-long idle period to start a tournament.
	WaitIdle
	// Tourn: playing elimination rounds.
	Tourn
	// SendData: broadcast data on the air (no ACK follows).
	SendData
	// WFACK: unicast data radiated, awaiting the ACK.
	WFACK
)

var stateNames = [...]string{"IDLE", "WAITIDLE", "TOURN", "SENDDATA", "WFACK"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// tKind discriminates the single state timer's continuation for forking.
type tKind int

const (
	tNone tKind = iota
	tBoundary
	tRound
	tDataAir
	tACKTimeout
)

// Options configures a tournament instance.
type Options struct {
	// Window is the constant contention window W: draws are uniform over
	// [0, W) and a tournament runs ceil(log2 W) rounds (default 32, five
	// rounds). Must be at least 2.
	Window int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 32
	}
	return o
}

// Tournament is one station's protocol instance.
type Tournament struct {
	env  *mac.Env
	opt  Options
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st State
	q  mac.Queue
	// draw is the value drawn for the live tournament; round counts the
	// rounds still to play (K down to 0, bit round-1 presented next).
	draw, round int
	// roundStart is when the current round's slot began; sentSig records
	// whether this station radiated in it (transmitters cannot lose).
	roundStart sim.Time
	sentSig    bool
	// lastBusy is the time of the last carrier edge (rise or fall); the
	// medium has been idle a full slot iff it is at least a slot old and
	// the carrier is down now.
	lastBusy sim.Time
	retries  int
	timer    sim.Event
	tk       tKind
	// sending references the head packet from data transmission until its
	// exchange completes (still queued; success or drop pops it).
	sending *mac.Packet
	// lastSeq records the last delivered sequence number per source so a
	// retransmission after a lost ACK is re-acknowledged, not re-delivered.
	lastSeq map[frame.NodeID]uint32
	seq     uint32
	sigs    int  // SIG bursts radiated (engine-local; mac.Stats has no slot for them)
	halted  bool // crashed instance: every entry point is a no-op
	stats   mac.Stats
}

// New returns a tournament instance bound to env's radio. The link-layer
// sequence origin is drawn randomly per lifetime, so a rebooted station
// cannot collide with its pre-crash numbering.
func New(env *mac.Env, opt Options) *Tournament {
	opt = opt.withDefaults()
	t := &Tournament{
		env: env, opt: opt, lobs: mac.AsLossObserver(env.Obs),
		lastBusy: -1,
		lastSeq:  make(map[frame.NodeID]uint32),
		seq:      env.Rand.Uint32() & 0x3fffffff,
	}
	env.Radio.SetHandler(t)
	return t
}

// State returns the current FSM state.
func (t *Tournament) State() State { return t.st }

// Options returns the configured options (post-default).
func (t *Tournament) Options() Options { return t.opt }

// Sigs returns the number of SIG bursts radiated (tests and benchmarks).
func (t *Tournament) Sigs() int { return t.sigs }

// rounds returns K = ceil(log2 Window).
func (t *Tournament) rounds() int {
	k := 0
	for 1<<k < t.opt.Window {
		k++
	}
	return k
}

// TimerAt returns the firing time of the pending state timer, or -1 when no
// timer is armed.
func (t *Tournament) TimerAt() sim.Time {
	if t.timer.IsZero() || t.timer.Cancelled() {
		return -1
	}
	return t.timer.When()
}

// FSMState implements mac.Inspector.
func (t *Tournament) FSMState() string { return t.st.String() }

// TimerPending implements mac.Inspector.
func (t *Tournament) TimerPending() bool { return t.TimerAt() >= 0 }

// TimerWhen implements mac.Inspector.
func (t *Tournament) TimerWhen() sim.Time { return t.TimerAt() }

// Halt implements mac.Halter: cancel the state timer, drop the queue
// (reported with DropDisabled), and turn every subsequent entry point into a
// no-op so a restarted MAC can own the radio without interference.
func (t *Tournament) Halt() {
	if t.halted {
		return
	}
	t.halted = true
	t.clearTimer()
	t.st = Idle
	t.sending = nil
	for p := t.q.Pop(); p != nil; p = t.q.Pop() {
		t.stats.Drops++
		t.noteDrop(p.Dst, mac.DropDisabled)
		t.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (t *Tournament) Halted() bool { return t.halted }

// Protocol implements mac.Engine.
func (t *Tournament) Protocol() string { return "tournament" }

// Stats implements mac.MAC.
func (t *Tournament) Stats() mac.Stats { return t.stats }

// QueueLen implements mac.MAC.
func (t *Tournament) QueueLen() int { return t.q.Len() }

// Enqueue implements mac.MAC.
func (t *Tournament) Enqueue(p *mac.Packet) {
	if t.halted {
		t.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	t.seq++
	p.SetSeq(t.seq)
	p.Enqueued = t.env.Sim.Now()
	t.q.Push(p)
	t.noteQueue("push", p.Dst)
	if t.st == Idle {
		t.startWait()
	}
}

// timerFn maps a timer kind to its continuation.
func (t *Tournament) timerFn(k tKind) func() {
	switch k {
	case tBoundary:
		return t.onBoundary
	case tRound:
		return t.onRoundEnd
	case tDataAir:
		return t.onDataAirDone
	case tACKTimeout:
		return t.onACKTimeout
	}
	return nil
}

func (t *Tournament) setTimer(dur sim.Duration, k tKind) {
	t.timer.Cancel()
	t.tk = k
	t.timer = t.env.Sim.After(dur, t.timerFn(k))
	if t.env.Obs != nil {
		t.env.Obs.ObserveTimer(t.timer.When())
	}
}

func (t *Tournament) clearTimer() {
	t.timer.Cancel()
	t.timer = sim.Event{}
	t.tk = tNone
	if t.env.Obs != nil {
		t.env.Obs.ObserveTimer(-1)
	}
}

// fired marks the state timer consumed at the top of every timer callback.
func (t *Tournament) fired() {
	t.timer = sim.Event{}
	t.tk = tNone
}

// transmit radiates f, notifying the conformance observer first.
func (t *Tournament) transmit(f *frame.Frame) sim.Duration {
	if t.env.Obs != nil {
		t.env.Obs.ObserveTx(f)
	}
	return t.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (t *Tournament) setState(s State) {
	if t.env.Obs != nil && s != t.st {
		t.env.Obs.ObserveState(t.st.String(), s.String())
	}
	t.st = s
}

// noteQueue reports a queue operation to the observer.
func (t *Tournament) noteQueue(op string, dst frame.NodeID) {
	if t.env.Obs != nil {
		t.env.Obs.ObserveQueue(op, dst, t.q.Len())
	}
}

// noteRetry reports a retried attempt to the loss observer.
func (t *Tournament) noteRetry(dst frame.NodeID) {
	if t.lobs != nil {
		t.lobs.ObserveRetry(dst)
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (t *Tournament) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if t.lobs != nil {
		t.lobs.ObserveDrop(dst, reason)
	}
}

// slot returns the global grid pitch (one control packet's airtime).
func (t *Tournament) slot() sim.Duration { return t.env.Cfg.Slot() }

// startWait enters WaitIdle toward the next grid boundary, or Idle when the
// queue is empty.
func (t *Tournament) startWait() {
	if t.q.Peek() == nil {
		t.setState(Idle)
		return
	}
	t.setState(WaitIdle)
	t.armBoundary()
}

// armBoundary schedules the next grid-boundary check.
func (t *Tournament) armBoundary() {
	now := t.env.Sim.Now()
	slot := t.slot()
	next := (now/slot + 1) * slot
	t.setTimer(next-now, tBoundary)
}

// onBoundary fires at a grid boundary in WaitIdle: a tournament starts only
// if the medium has been idle for a full slot; otherwise the station keeps
// polling boundaries.
func (t *Tournament) onBoundary() {
	t.fired()
	if t.q.Peek() == nil {
		t.setState(Idle)
		return
	}
	now := t.env.Sim.Now()
	if t.env.Radio.Transmitting() || t.env.Radio.CarrierBusy() || t.lastBusy+t.slot() > now {
		t.armBoundary()
		return
	}
	t.draw = t.env.Rand.Intn(t.opt.Window)
	t.round = t.rounds()
	t.setState(Tourn)
	t.stepRound()
}

// stepRound plays the next elimination round, or transmits the data frame
// when every round has been survived.
func (t *Tournament) stepRound() {
	if t.round == 0 {
		t.sendHead()
		return
	}
	t.round--
	t.roundStart = t.env.Sim.Now()
	if (t.draw>>t.round)&1 == 1 {
		sig := &frame.Frame{Type: frame.SIG, Src: t.env.ID(), Dst: frame.Broadcast}
		t.transmit(sig)
		t.sigs++
		t.sentSig = true
	} else {
		t.sentSig = false
	}
	t.setTimer(t.slot(), tRound)
}

// onRoundEnd closes a round: silent contenders that heard traffic lose and
// return to WaitIdle; everyone else proceeds.
func (t *Tournament) onRoundEnd() {
	t.fired()
	if !t.sentSig && (t.lastBusy >= t.roundStart || t.env.Radio.CarrierBusy()) {
		t.startWait()
		return
	}
	t.stepRound()
}

// sendHead transmits the head packet as the tournament's survivor.
func (t *Tournament) sendHead() {
	head := t.q.Peek()
	if head == nil {
		t.setState(Idle)
		return
	}
	data := &frame.Frame{Type: frame.DATA, Src: t.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
	air := t.transmit(data)
	t.sending = head
	if head.Dst == frame.Broadcast {
		t.setState(SendData)
		t.setTimer(air, tDataAir)
		return
	}
	t.setState(WFACK)
	t.setTimer(air+t.env.Cfg.CtrlTime()+t.env.Cfg.Margin, tACKTimeout)
}

// onDataAirDone completes a broadcast data frame (no ACK).
func (t *Tournament) onDataAirDone() {
	t.fired()
	head := t.sending
	t.sending = nil
	t.q.Pop()
	t.noteQueue("pop", head.Dst)
	t.retries = 0
	t.stats.DataSent++
	t.env.Callbacks.NotifySent(head)
	t.startWait()
}

// onACKTimeout charges an unacknowledged data frame against MaxRetries —
// the only path that consumes retry budget (elimination losses are free).
func (t *Tournament) onACKTimeout() {
	t.fired()
	t.sending = nil
	t.retries++
	t.stats.Retries++
	if head := t.q.Peek(); head != nil {
		t.noteRetry(head.Dst)
		if t.retries > t.env.Cfg.MaxRetries {
			t.q.Pop()
			t.noteQueue("drop", head.Dst)
			t.retries = 0
			t.stats.Drops++
			t.noteDrop(head.Dst, mac.DropRetries)
			t.env.Callbacks.NotifyDropped(head, mac.DropRetries)
		}
	}
	t.startWait()
}

// deliver hands a DATA payload up unless it is a retransmission of the last
// delivered frame from that source.
func (t *Tournament) deliver(f *frame.Frame) {
	if last, ok := t.lastSeq[f.Src]; ok && last == f.Seq {
		return
	}
	t.lastSeq[f.Src] = f.Seq
	t.stats.DataReceived++
	if t.env.Obs != nil {
		t.env.Obs.ObserveDeliver(f)
	}
	t.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
}

// RadioCarrier implements phy.Handler: both edges timestamp lastBusy, so
// "idle for a full slot" is lastBusy at least a slot old with the carrier
// down.
func (t *Tournament) RadioCarrier(bool) {
	if t.halted {
		return
	}
	t.lastBusy = t.env.Sim.Now()
}

// RadioReceive implements phy.Handler.
func (t *Tournament) RadioReceive(f *frame.Frame) {
	if t.halted {
		return
	}
	if t.env.Obs != nil {
		t.env.Obs.ObserveRx(f)
	}
	if f.Dst == frame.Broadcast && f.Type == frame.DATA {
		t.deliver(f)
		return
	}
	if f.Dst != t.env.ID() {
		return
	}
	switch f.Type {
	case frame.DATA:
		t.deliver(f)
		// The ACK follows immediately (the receiver is in WaitIdle or
		// Idle by the data frame's end: contenders lost their round when
		// the data's carrier rose). No state change: an armed boundary
		// timer simply finds the medium busy and re-polls.
		if !t.env.Radio.Transmitting() {
			ack := &frame.Frame{Type: frame.ACK, Src: t.env.ID(), Dst: f.Src, Seq: f.Seq}
			t.transmit(ack)
			t.stats.ACKSent++
		}
	case frame.ACK:
		if t.st != WFACK {
			return
		}
		head := t.q.Peek()
		if head == nil || f.Src != head.Dst || f.Seq != head.Seq() {
			return
		}
		t.clearTimer()
		t.sending = nil
		t.q.Pop()
		t.noteQueue("pop", head.Dst)
		t.retries = 0
		t.stats.DataSent++
		t.env.Callbacks.NotifySent(head)
		t.startWait()
	}
}
