package tournament

import (
	"fmt"
	"sort"

	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14). Field order follows the repository convention:
// FSM scalars, then timer + cancellation flag, then seq/halted, then the
// in-flight packet reference, then maps (sorted), queue, and counters.
func (t *Tournament) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "tournament st=%s draw=%d round=%d roundStart=%d sentSig=%t lastBusy=%d retries=%d timer=%d timerCancelled=%t tk=%d seq=%d sigs=%d halted=%t",
		t.st, t.draw, t.round, t.roundStart, t.sentSig, t.lastBusy, t.retries,
		t.timer.When(), t.timer.Cancelled(), t.tk, t.seq, t.sigs, t.halted)
	b = mac.AppendPacketRef(b, "sending", t.sending)
	b = append(b, '\n')
	b = appendSeqMap(b, "tournament.lastSeq", t.lastSeq)
	b = t.q.AppendState(b)
	b = t.stats.AppendState(b)
	return b
}

// appendSeqMap dumps a per-source sequence map in sorted key order.
func appendSeqMap(b []byte, name string, m map[frame.NodeID]uint32) []byte {
	keys := make([]frame.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = fmt.Appendf(b, "%s n=%d", name, len(keys))
	for _, k := range keys {
		b = fmt.Appendf(b, " %d=%d", k, m[k])
	}
	return append(b, '\n')
}
