package mac

import "fmt"

// This file provides the queue dumps shared by every protocol engine's
// snapshot state inventory (DESIGN.md §14). Packet identity is (dst, size,
// seq, enqueue time, payload length) — payload bytes are transport segments
// already pinned by the transport dump, so their length suffices here.

// AppendState appends the queue's packets in FIFO order.
func (q *Queue) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "queue n=%d", len(q.items))
	for _, p := range q.items {
		b = fmt.Appendf(b, " {dst=%d size=%d seq=%d enq=%d pay=%d}", p.Dst, p.Size, p.seq, p.Enqueued, len(p.Payload))
	}
	return append(b, '\n')
}

// AppendState appends every per-destination queue in first-seen order —
// the same deterministic order the protocols themselves iterate in.
func (s *StreamQueues) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "streamqueues dests=%d\n", len(s.order))
	for _, d := range s.order {
		b = fmt.Appendf(b, "  dst=%d ", d)
		b = s.qs[d].AppendState(b)
	}
	return b
}

// AppendPacketRef appends a named reference to an in-flight packet (or nil)
// using the same identity fields as the queue dump — the engines' sending /
// txHead continuation fields are inventory: a fork that lost track of the
// packet its pending air-time timer completes must diverge visibly here.
func AppendPacketRef(b []byte, name string, p *Packet) []byte {
	if p == nil {
		return fmt.Appendf(b, " %s=nil", name)
	}
	return fmt.Appendf(b, " %s={dst=%d size=%d seq=%d enq=%d pay=%d}", name, p.Dst, p.Size, p.seq, p.Enqueued, len(p.Payload))
}

// AppendState appends the MAC counters (part of each engine's dump).
func (st Stats) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "macstats data=%d rx=%d rts=%d retries=%d drops=%d cts=%d ds=%d ack=%d rrts=%d\n",
		st.DataSent, st.DataReceived, st.RTSSent, st.Retries, st.Drops,
		st.CTSSent, st.DSSent, st.ACKSent, st.RRTSSent)
}
