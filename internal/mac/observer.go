package mac

import (
	"macaw/internal/frame"
	"macaw/internal/sim"
)

// LossObserver is an optional Observer extension receiving retry and drop
// accounting. It is separate from Observer so existing observers (the
// conformance oracle) keep compiling unchanged; engines probe for it once at
// construction with a type assertion on Env.Obs. The passivity contract of
// Observer applies: implementations must not transmit, schedule, or consume
// randomness.
type LossObserver interface {
	// ObserveRetry reports one failed attempt toward dst being retried
	// (every Stats.Retries increment).
	ObserveRetry(dst frame.NodeID)
	// ObserveDrop reports a packet toward dst being abandoned (every
	// Stats.Drops increment), with the reason.
	ObserveDrop(dst frame.NodeID, reason DropReason)
}

// AsLossObserver returns obs as a LossObserver, or nil when obs is nil or
// does not implement the extension. Engines call it once at construction so
// the per-event hook is a plain nil check, not a type assertion.
func AsLossObserver(obs Observer) LossObserver {
	if lo, ok := obs.(LossObserver); ok {
		return lo
	}
	return nil
}

// multiObserver fans every hook out to several observers in attachment
// order. The loss slice is pre-split at construction so the LossObserver
// hooks stay assertion-free.
type multiObserver struct {
	obs  []Observer
	loss []LossObserver
}

// CombineObservers composes observers into one. nil entries are skipped; a
// single survivor is returned unwrapped, and nil is returned when none
// remain. The composite forwards LossObserver hooks to every member that
// implements them.
func CombineObservers(os ...Observer) Observer {
	var kept []Observer
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	m := &multiObserver{obs: kept}
	for _, o := range kept {
		if lo := AsLossObserver(o); lo != nil {
			m.loss = append(m.loss, lo)
		}
	}
	return m
}

func (m *multiObserver) ObserveTx(f *frame.Frame) {
	for _, o := range m.obs {
		o.ObserveTx(f)
	}
}

func (m *multiObserver) ObserveRx(f *frame.Frame) {
	for _, o := range m.obs {
		o.ObserveRx(f)
	}
}

func (m *multiObserver) ObserveState(from, to string) {
	for _, o := range m.obs {
		o.ObserveState(from, to)
	}
}

func (m *multiObserver) ObserveTimer(at sim.Time) {
	for _, o := range m.obs {
		o.ObserveTimer(at)
	}
}

func (m *multiObserver) ObserveQueue(op string, dst frame.NodeID, n int) {
	for _, o := range m.obs {
		o.ObserveQueue(op, dst, n)
	}
}

func (m *multiObserver) ObserveDeliver(f *frame.Frame) {
	for _, o := range m.obs {
		o.ObserveDeliver(f)
	}
}

func (m *multiObserver) ObserveRetry(dst frame.NodeID) {
	for _, o := range m.loss {
		o.ObserveRetry(dst)
	}
}

func (m *multiObserver) ObserveDrop(dst frame.NodeID, reason DropReason) {
	for _, o := range m.loss {
		o.ObserveDrop(dst, reason)
	}
}
