package mac

import "macaw/internal/frame"

// Queue is a FIFO packet queue.
type Queue struct {
	items []*Packet
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) }

// Push appends p.
func (q *Queue) Push(p *Packet) { q.items = append(q.items, p) }

// PushFront reinstates p at the head of the queue (used when a tentatively
// completed packet turns out to need retransmission).
func (q *Queue) PushFront(p *Packet) {
	q.items = append([]*Packet{p}, q.items...)
}

// Peek returns the head without removing it, or nil when empty.
func (q *Queue) Peek() *Packet {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the head, or nil when empty.
func (q *Queue) Pop() *Packet {
	if len(q.items) == 0 {
		return nil
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return p
}

// StreamQueues keys packets by destination, implementing §3.2's
// one-queue-per-stream design: "a separate queue for each stream, and ...
// each queue has its own backoff counter and retry counter". Destinations
// are tracked in first-seen order so iteration is deterministic.
type StreamQueues struct {
	order []frame.NodeID
	qs    map[frame.NodeID]*Queue
}

// NewStreamQueues returns an empty set of per-destination queues.
func NewStreamQueues() *StreamQueues {
	return &StreamQueues{qs: make(map[frame.NodeID]*Queue)}
}

// Push enqueues p on its destination's queue.
func (s *StreamQueues) Push(p *Packet) {
	q := s.qs[p.Dst]
	if q == nil {
		q = &Queue{}
		s.qs[p.Dst] = q
		s.order = append(s.order, p.Dst)
	}
	q.Push(p)
}

// Queue returns the queue for dst, or nil if none exists.
func (s *StreamQueues) Queue(dst frame.NodeID) *Queue { return s.qs[dst] }

// Destinations returns the known destinations in first-seen order,
// including those whose queues are currently empty.
func (s *StreamQueues) Destinations() []frame.NodeID { return s.order }

// NonEmpty returns the destinations with at least one queued packet, in
// first-seen order.
func (s *StreamQueues) NonEmpty() []frame.NodeID {
	var out []frame.NodeID
	for _, d := range s.order {
		if s.qs[d].Len() > 0 {
			out = append(out, d)
		}
	}
	return out
}

// TotalLen returns the total number of queued packets across streams.
func (s *StreamQueues) TotalLen() int {
	n := 0
	for _, q := range s.qs {
		n += q.Len()
	}
	return n
}
