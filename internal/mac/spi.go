package mac

// This file defines the explicit MAC service-provider interface (SPI). The
// protocol engines (csma, maca, macaw, token, dcf, tournament) used to agree
// on lifecycle, introspection, snapshotting, and forking only by convention —
// each capability was an optional interface probed with a type assertion, so
// an engine could silently miss one (the token scheme shipped without Halt,
// observer hooks, or queue-drop accounting for exactly that reason). Engine
// turns the convention into a compiler-checked contract: core.MACFactory
// returns an Engine, so a backend that misses any piece of the SPI no longer
// builds.
//
// The SPI's behavioral conventions, enforced by the conformance suite in
// internal/experiments (DESIGN.md §16):
//
//   - Observer discipline: ObserveTx immediately before Radio.Transmit;
//     ObserveRx for every clean reception a live engine processes;
//     ObserveQueue("push"/"pop"/"drop") with the post-op length;
//     ObserveTimer(when) on arm and ObserveTimer(-1) on cancel;
//     ObserveState only on actual change; ObserveDeliver before the Deliver
//     callback.
//   - Halt discipline: cancel the state timer (reporting ObserveTimer(-1)),
//     return to the idle state, drain the queue as drops counted in
//     Stats().Drops and reported via LossObserver.ObserveDrop and the
//     Dropped callback with DropDisabled, and turn every entry point —
//     Enqueue, radio indications, stray timers — into a no-op.
//   - Liveness invariant (the fault watchdog's wedge rule): whenever the
//     engine is quiescent in a non-idle FSM state, or idle with a non-empty
//     queue, a timer must be pending.
//   - AppendState completeness: every field that can affect future behavior
//     appears in the dump; fork byte-verification diffs the dumps.
type Engine interface {
	MAC
	Halter
	Inspector

	// Halted reports whether Halt has been called on this instance.
	Halted() bool

	// Protocol returns the engine's stable protocol name ("csma", "maca",
	// "macaw", "token", "dcf", "tournament"). The conformance oracle and
	// the sweep delta taxonomy dispatch on it instead of on concrete types.
	Protocol() string

	// AppendState appends the engine's canonical FSM dump for the snapshot
	// state inventory (DESIGN.md §14).
	AppendState(b []byte) []byte

	// AdoptFrom copies peer's mutable protocol state into the receiver,
	// which must be a freshly built twin of the same concrete type bound to
	// an identically built environment (DESIGN.md §15). It fails closed on
	// a type mismatch, a halted instance on either side, differing options,
	// or a live timer it cannot re-arm.
	AdoptFrom(peer Engine) error
}
