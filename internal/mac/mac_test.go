package mac

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/sim"
)

func TestConfigTimes(t *testing.T) {
	c := DefaultConfig()
	if c.Slot() != 937500*sim.Nanosecond {
		t.Fatalf("slot = %v, want 937.5us", c.Slot())
	}
	if c.CtrlTime() != c.Slot() {
		t.Fatal("ctrl time != slot")
	}
	if c.DataTime(512) != 16*sim.Millisecond {
		t.Fatalf("data time = %v, want 16ms", c.DataTime(512))
	}
	if c.MaxRetries <= 0 {
		t.Fatal("MaxRetries must be positive")
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Peek() != nil || q.Pop() != nil || q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
	a, b := &Packet{Dst: 1}, &Packet{Dst: 2}
	q.Push(a)
	q.Push(b)
	if q.Len() != 2 || q.Peek() != a {
		t.Fatal("push/peek broken")
	}
	if q.Pop() != a || q.Pop() != b || q.Pop() != nil {
		t.Fatal("pop order broken")
	}
}

func TestStreamQueues(t *testing.T) {
	s := NewStreamQueues()
	s.Push(&Packet{Dst: 5})
	s.Push(&Packet{Dst: 3})
	s.Push(&Packet{Dst: 5})
	if s.TotalLen() != 3 {
		t.Fatalf("TotalLen = %d", s.TotalLen())
	}
	if got := s.Destinations(); len(got) != 2 || got[0] != 5 || got[1] != 3 {
		t.Fatalf("Destinations = %v (want first-seen order)", got)
	}
	if s.Queue(5).Len() != 2 || s.Queue(3).Len() != 1 {
		t.Fatal("per-stream lengths wrong")
	}
	if s.Queue(9) != nil {
		t.Fatal("unknown destination returned a queue")
	}
	s.Queue(3).Pop()
	if got := s.NonEmpty(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("NonEmpty = %v", got)
	}
	// An emptied stream remains a known destination.
	if got := s.Destinations(); len(got) != 2 {
		t.Fatalf("Destinations after drain = %v", got)
	}
}

func TestPacketSeq(t *testing.T) {
	p := &Packet{Dst: 1}
	p.SetSeq(42)
	if p.Seq() != 42 {
		t.Fatal("seq round-trip failed")
	}
}

func TestCallbacksNilSafe(t *testing.T) {
	var c Callbacks
	c.NotifyDeliver(1, nil)
	c.NotifySent(nil)
	c.NotifyDropped(nil, DropRetries)

	var delivered frame.NodeID
	var sentP, droppedP *Packet
	c = Callbacks{
		Deliver: func(src frame.NodeID, _ []byte) { delivered = src },
		Sent:    func(p *Packet) { sentP = p },
		Dropped: func(p *Packet, _ DropReason) { droppedP = p },
	}
	pkt := &Packet{Dst: 2}
	c.NotifyDeliver(7, nil)
	c.NotifySent(pkt)
	c.NotifyDropped(pkt, DropRetries)
	if delivered != 7 || sentP != pkt || droppedP != pkt {
		t.Fatal("callbacks not invoked")
	}
}
