package maca

import (
	"fmt"

	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14).
func (m *MACA) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "maca st=%s retries=%d timer=%d timerCancelled=%t defer=%d curDst=%d expectFrom=%d seq=%d halted=%t",
		m.st, m.retries, m.timer.When(), m.timer.Cancelled(), m.deferUntil, m.curDst, m.expectFrom, m.seq, m.halted)
	b = mac.AppendPacketRef(b, "sending", m.sending)
	b = append(b, '\n')
	b = m.q.AppendState(b)
	if a, ok := m.pol.(interface{ AppendState([]byte) []byte }); ok {
		b = a.AppendState(b)
	}
	b = m.stats.AppendState(b)
	return b
}
