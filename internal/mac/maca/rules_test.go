package maca

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// Rule-by-rule tests for the Appendix A state machine.

func step(w *world, m *MACA, want State, deadline sim.Duration) bool {
	for w.s.Now() < deadline {
		if m.State() == want {
			return true
		}
		if !w.s.Step() {
			break
		}
	}
	return m.State() == want
}

func TestControlRule1ContendOnEnqueue(t *testing.T) {
	// "When A is in IDLE state and wants to transmit a data packet to B,
	// it sets a random timer and goes to the CONTEND state."
	w := newWorld(71)
	a := w.addStation(1, geom.V(0, 0, 6))
	w.addStation(2, geom.V(6, 0, 6))
	a.m.Enqueue(pkt(2))
	if a.m.State() != Contend {
		t.Fatalf("state = %v, want CONTEND", a.m.State())
	}
}

func TestControlRule2CTSAndWFData(t *testing.T) {
	// "When B is in IDLE state and receives a RTS packet from A, it
	// transmits a Clear To Send (CTS) packet ... and goes to Wait For
	// Data (WFData) state."
	w := newWorld(72)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(6, 0, 6))
	a.m.Enqueue(pkt(2))
	if !step(w, b.m, WFData, 100*sim.Millisecond) {
		t.Fatalf("B state = %v, want WFDATA", b.m.State())
	}
	if b.m.Stats().CTSSent != 1 {
		t.Fatal("no CTS")
	}
}

func TestControlRules3and4DataExchange(t *testing.T) {
	// Rule 3: A in WFCTS receiving the CTS clears its timer and sends the
	// data; rule 4: B in WFData receiving the data returns to IDLE.
	w := newWorld(73)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(6, 0, 6))
	a.m.Enqueue(pkt(2))
	if !step(w, a.m, WFCTS, 100*sim.Millisecond) {
		t.Fatalf("A never reached WFCTS (state %v)", a.m.State())
	}
	if !step(w, a.m, SendData, 100*sim.Millisecond) {
		t.Fatalf("A never transmitted data (state %v)", a.m.State())
	}
	w.s.Run(100 * sim.Millisecond)
	if a.m.State() != Idle || b.m.State() != Idle {
		t.Fatalf("end states %v/%v", a.m.State(), b.m.State())
	}
	if len(b.delivered) != 1 {
		t.Fatal("no delivery")
	}
}

func TestDeferRule1OverheardRTS(t *testing.T) {
	// "When C hears an RTS packet from A to B, it goes from its current
	// state to the QUIET state, and sets a timer value sufficient for A
	// to hear B's CTS."
	w := newWorld(74)
	c := w.addStation(3, geom.V(3, 3, 6))
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v, want QUIET", c.m.State())
	}
}

func TestDeferRule2OverheardCTS(t *testing.T) {
	// "When D hears a CTS packet from B to A, it goes from its current
	// state to the QUIET state, and sets a timer value sufficient for B
	// to hear A's Data." After the defer, queued traffic flows.
	w := newWorld(75)
	d := w.addStation(4, geom.V(3, 3, 6))
	w.addStation(5, geom.V(6, 0, 6))
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.CTS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, d.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("D state = %v, want QUIET", d.m.State())
	}
	// The CTS defer must cover the announced 16 ms data transmission.
	d.m.Enqueue(pkt(5))
	w.s.Run(12 * sim.Millisecond)
	if got := d.m.Stats().RTSSent; got != 0 {
		t.Fatalf("transmitted %d RTS during the CTS defer", got)
	}
	w.s.Run(200 * sim.Millisecond)
	if got := d.m.Stats().RTSSent; got == 0 {
		t.Fatal("never transmitted after the defer ended")
	}
}

func TestTimeoutRule2BrokenExchangeReturnsToIdle(t *testing.T) {
	// "From any other state, when a timer expires, a station goes to the
	// IDLE state."
	w := newWorld(76)
	b := w.addStation(2, geom.V(6, 0, 6))
	probe := w.medium.Attach(9, geom.V(3, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 2, DataBytes: 512})
	if !step(w, b.m, WFData, 50*sim.Millisecond) {
		t.Fatalf("B state = %v, want WFDATA", b.m.State())
	}
	w.s.Run(200 * sim.Millisecond) // the data never comes
	if b.m.State() != Idle {
		t.Fatalf("B stuck in %v", b.m.State())
	}
}

func TestDeferringStationsDoNotAnswerWhileHorizonActive(t *testing.T) {
	// MACA's receiver answers only "if it is not currently deferring",
	// independent of the state the FSM happens to occupy.
	w := newWorld(77)
	c := w.addStation(3, geom.V(0, 0, 6))
	p1 := w.medium.Attach(8, geom.V(3, 0, 6), nil)
	p2 := w.medium.Attach(9, geom.V(-3, 0, 6), nil)
	// A long CTS defer at C.
	p1.Transmit(&frame.Frame{Type: frame.CTS, Src: 8, Dst: 7, DataBytes: 512})
	w.s.Run(3 * sim.Millisecond)
	// An RTS addressed to C mid-defer must not be answered.
	p2.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 3, DataBytes: 512})
	w.s.Run(8 * sim.Millisecond)
	if got := c.m.Stats().CTSSent; got != 0 {
		t.Fatalf("deferring MACA station answered %d RTS", got)
	}
}

// TestNeverWedgesUnderArbitraryFrames injects random frames and checks the
// engine always drains its queue once injections stop.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	types := []frame.Type{frame.RTS, frame.CTS, frame.DS, frame.DATA, frame.ACK, frame.RRTS, frame.NACK, frame.TOKEN}
	for seed := int64(1); seed <= 10; seed++ {
		w := newWorld(seed)
		a := w.addStation(1, geom.V(0, 0, 6))
		w.addStation(2, geom.V(6, 0, 6))
		r := w.s.NewRand()
		for i := 0; i < 3; i++ {
			a.m.Enqueue(pkt(2))
		}
		for i := 0; i < 300; i++ {
			f := &frame.Frame{
				Type:      types[r.Intn(len(types))],
				Src:       frame.NodeID(2 + r.Intn(4)),
				Dst:       frame.NodeID(1 + r.Intn(5)),
				DataBytes: uint16(r.Intn(600)),
				Seq:       uint32(r.Intn(6)),
			}
			if !a.m.env.Radio.Transmitting() {
				a.m.RadioReceive(f)
				a.m.RadioCarrier(r.Intn(2) == 0)
			}
			w.s.Run(w.s.Now() + sim.Duration(r.Intn(3))*sim.Millisecond)
		}
		w.s.Run(w.s.Now() + 120*sim.Second)
		if a.m.QueueLen() > 0 {
			t.Fatalf("seed %d: %d packets stuck (state %v)", seed, a.m.QueueLen(), a.m.State())
		}
	}
}
