package maca

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into m, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15).
// Queued packets are shared — a mac.Packet is immutable once enqueued — and
// the pending state timer is re-armed at its exact (when, prio, seq) ordering
// key, with the callback named by the FSM state that armed it (each MACA
// state arms at most one timer, so the state is the full discriminator). It
// fails closed on anything this fork path cannot reproduce: a halted
// instance, a mismatched backoff policy, or a live timer in a state that
// never arms one.
func (m *MACA) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*MACA)
	if !ok {
		return fmt.Errorf("maca: adopt: engine is %T here vs %T in warm twin", m, peer)
	}
	if w.halted || m.halted {
		return fmt.Errorf("maca: adopt: halted instance (warm=%t fork=%t)", w.halted, m.halted)
	}
	if err := backoff.Adopt(m.pol, w.pol); err != nil {
		return err
	}
	m.st = w.st
	m.q.AdoptFrom(&w.q)
	m.retries = w.retries
	m.deferUntil = w.deferUntil
	m.curDst = w.curDst
	m.expectFrom = w.expectFrom
	m.sending = w.sending
	m.seq = w.seq
	m.stats = w.stats

	fn := map[State]func(){
		Contend:  m.onContendTimeout,
		WFCTS:    m.onCTSTimeout,
		WFData:   m.onTimeoutToIdle,
		Quiet:    m.onQuietEnd,
		SendData: m.onDataSent,
	}[w.st]
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("maca: adopt: live timer in state %s, which never arms one", w.st)
	}
	m.timer = m.env.Sim.Readopt(w.timer, fn)
	return nil
}

// BackoffPolicy exposes the live policy for barrier-time retuning (sweep
// deltas).
func (m *MACA) BackoffPolicy() backoff.Policy { return m.pol }

// SetMaxRetries rewrites the per-packet retry limit, effective from the next
// failed attempt.
func (m *MACA) SetMaxRetries(n int) { m.env.Cfg.MaxRetries = n }
