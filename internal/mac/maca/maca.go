// Package maca implements the original MACA media access protocol exactly
// as specified in Appendix A of the paper: an RTS-CTS-DATA exchange driven
// by a five-state machine (IDLE, CONTEND, WFCTS, WFData, QUIET), a single
// FIFO queue, a single backoff counter, and binary exponential backoff.
package maca

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// State is a MACA protocol state (Appendix A: "A pad running MACA can be in
// one of five states").
type State int

// The five MACA states plus the transient data-transmission phase.
const (
	Idle State = iota
	Contend
	WFCTS
	WFData
	Quiet
	// SendData covers the interval during which the station radiates its
	// DATA packet; Appendix A folds this into the IDLE transition, but a
	// distinct state keeps the engine from contending mid-transmission.
	SendData
)

var stateNames = [...]string{"IDLE", "CONTEND", "WFCTS", "WFDATA", "QUIET", "SENDDATA"}

// String returns the Appendix A state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Option configures a MACA instance.
type Option func(*MACA)

// WithPolicy overrides the backoff policy (default: single-counter BEB
// without copying, the paper's original MACA).
func WithPolicy(p backoff.Policy) Option { return func(m *MACA) { m.pol = p } }

// MACA is one station's protocol instance.
type MACA struct {
	env  *mac.Env
	pol  backoff.Policy
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st         State
	q          mac.Queue
	retries    int
	timer      sim.Event
	deferUntil sim.Time
	curDst     frame.NodeID // destination of the exchange in flight
	expectFrom frame.NodeID // sender we issued a CTS to (WFData)
	// sending is the packet on the air during SendData; it is popped off
	// the queue when the DATA frame starts and completed by onDataSent.
	sending *mac.Packet
	seq     uint32
	halted  bool // crashed instance: every entry point is a no-op
	stats   mac.Stats
}

// New returns a MACA instance bound to env's radio. It installs itself as
// the radio's handler.
func New(env *mac.Env, opts ...Option) *MACA {
	m := &MACA{env: env, pol: backoff.NewSingle(backoff.NewBEB(), false), lobs: mac.AsLossObserver(env.Obs)}
	for _, o := range opts {
		o(m)
	}
	env.Radio.SetHandler(m)
	return m
}

// State returns the current protocol state, for tests and traces.
func (m *MACA) State() State { return m.st }

// TimerAt returns the firing time of the pending state timer, or -1 when no
// timer is armed (introspection for tests and the liveness watchdog).
func (m *MACA) TimerAt() sim.Time {
	if m.timer.IsZero() || m.timer.Cancelled() {
		return -1
	}
	return m.timer.When()
}

// FSMState implements mac.Inspector.
func (m *MACA) FSMState() string { return m.st.String() }

// TimerPending implements mac.Inspector.
func (m *MACA) TimerPending() bool { return m.TimerAt() >= 0 }

// TimerWhen implements mac.Inspector.
func (m *MACA) TimerWhen() sim.Time { return m.TimerAt() }

// Halt implements mac.Halter: cancel the state timer, drop the queue
// (reported with DropDisabled), and turn every subsequent entry point into a
// no-op so a restarted MAC can own the radio without interference.
func (m *MACA) Halt() {
	if m.halted {
		return
	}
	m.halted = true
	m.clearTimer()
	m.st = Idle
	m.deferUntil = 0
	m.sending = nil
	for p := m.q.Pop(); p != nil; p = m.q.Pop() {
		m.stats.Drops++
		m.noteDrop(p.Dst, mac.DropDisabled)
		m.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (m *MACA) Halted() bool { return m.halted }

// Protocol implements mac.Engine.
func (m *MACA) Protocol() string { return "maca" }

// Stats implements mac.MAC.
func (m *MACA) Stats() mac.Stats { return m.stats }

// QueueLen implements mac.MAC.
func (m *MACA) QueueLen() int { return m.q.Len() }

// Enqueue implements mac.MAC: Control rule 1 — "When A is in IDLE state and
// wants to transmit a data packet to B, it sets a random timer and goes to
// the CONTEND state."
func (m *MACA) Enqueue(p *mac.Packet) {
	if m.halted {
		m.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	m.seq++
	p.SetSeq(m.seq)
	p.Enqueued = m.env.Sim.Now()
	m.q.Push(p)
	m.noteQueue("push", p.Dst)
	if m.st == Idle {
		m.enterContend()
	}
}

func (m *MACA) setTimer(d sim.Duration, fn func()) {
	m.setTimerAt(m.env.Sim.Now()+d, fn)
}

func (m *MACA) setTimerAt(t sim.Time, fn func()) {
	m.timer.Cancel()
	m.timer = m.env.Sim.At(t, fn)
	if m.env.Obs != nil {
		m.env.Obs.ObserveTimer(t)
	}
}

func (m *MACA) clearTimer() {
	m.timer.Cancel()
	m.timer = sim.Event{}
	if m.env.Obs != nil {
		m.env.Obs.ObserveTimer(-1)
	}
}

// transmit radiates f, notifying the conformance observer first.
func (m *MACA) transmit(f *frame.Frame) sim.Duration {
	if m.env.Obs != nil {
		m.env.Obs.ObserveTx(f)
	}
	return m.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (m *MACA) setState(s State) {
	if m.env.Obs != nil && s != m.st {
		m.env.Obs.ObserveState(m.st.String(), s.String())
	}
	m.st = s
}

// deliver hands a received DATA frame's payload to transport.
func (m *MACA) deliver(f *frame.Frame) {
	m.stats.DataReceived++
	if m.env.Obs != nil {
		m.env.Obs.ObserveDeliver(f)
	}
	m.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
}

// noteQueue reports a queue operation to the observer.
func (m *MACA) noteQueue(op string, dst frame.NodeID) {
	if m.env.Obs != nil {
		m.env.Obs.ObserveQueue(op, dst, m.q.Len())
	}
}

// noteRetry reports a retried attempt to the loss observer.
func (m *MACA) noteRetry(dst frame.NodeID) {
	if m.lobs != nil {
		m.lobs.ObserveRetry(dst)
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (m *MACA) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if m.lobs != nil {
		m.lobs.ObserveDrop(dst, reason)
	}
}

// enterContend schedules the next RTS attempt "an integer number of slot
// times after the end of the last defer period", the integer drawn uniformly
// from 1..BO.
func (m *MACA) enterContend() {
	head := m.q.Peek()
	if head == nil {
		m.setState(Idle)
		return
	}
	m.setState(Contend)
	base := m.env.Sim.Now()
	if m.deferUntil > base {
		base = m.deferUntil
	}
	bo := m.pol.Backoff(head.Dst)
	k := 1 + m.env.Rand.Intn(bo)
	m.setTimerAt(base+sim.Duration(k)*m.env.Cfg.Slot(), m.onContendTimeout)
}

// onContendTimeout is Timeout rule 1: transmit the RTS and wait for the CTS.
func (m *MACA) onContendTimeout() {
	head := m.q.Peek()
	if m.st != Contend || head == nil {
		return
	}
	if m.deferUntil+m.env.Cfg.Slot() > m.env.Sim.Now() {
		// §3.2 / Appendix A: transmission begins an integer number of
		// slot times — at least one — after the end of the last defer
		// period. Contention draws already guarantee this (base + k·slot
		// with k ≥ 1 and base ≥ deferUntil); the redraw is a hardening
		// backstop for a horizon that moved under an armed timer.
		m.enterContend()
		return
	}
	f := &frame.Frame{Type: frame.RTS, Src: m.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq()}
	m.pol.StampSend(f)
	air := m.transmit(f)
	m.stats.RTSSent++
	m.curDst = head.Dst
	m.setState(WFCTS)
	m.setTimer(air+m.env.Cfg.CTSWait(), m.onCTSTimeout)
}

// onCTSTimeout handles a lost RTS-CTS exchange: back off and retry, or give
// up past the retry limit.
func (m *MACA) onCTSTimeout() {
	if m.st != WFCTS {
		return
	}
	m.timer = sim.Event{}
	m.failAttempt()
}

func (m *MACA) failAttempt() {
	head := m.q.Peek()
	m.pol.OnFailure(m.curDst)
	m.retries++
	m.stats.Retries++
	m.noteRetry(m.curDst)
	if head != nil && m.retries > m.env.Cfg.MaxRetries {
		m.q.Pop()
		m.noteQueue("drop", head.Dst)
		m.retries = 0
		m.stats.Drops++
		m.noteDrop(head.Dst, mac.DropRetries)
		m.pol.OnGiveUp(head.Dst)
		m.env.Callbacks.NotifyDropped(head, mac.DropRetries)
	}
	m.next()
}

// next returns to IDLE or starts contending for the next queued packet.
func (m *MACA) next() {
	if m.q.Len() > 0 {
		m.enterContend()
	} else {
		m.setState(Idle)
	}
}

// enterQuiet is the Defer rules' QUIET transition. From WFCTS and WFData the
// pending exchange keeps its timer (the defer horizon still advances), since
// abandoning a half-completed exchange would deadlock both parties; Appendix
// A's precedence note is interpreted as applying to contention states.
func (m *MACA) enterQuiet(d sim.Duration) {
	until := m.env.Sim.Now() + d
	if until > m.deferUntil {
		m.deferUntil = until
	}
	switch m.st {
	case Idle, Contend:
		m.setState(Quiet)
		m.setTimer(m.deferUntil-m.env.Sim.Now(), m.onQuietEnd)
	case Quiet:
		m.setTimer(m.deferUntil-m.env.Sim.Now(), m.onQuietEnd)
	case WFCTS, WFData, SendData:
		// Keep the exchange; deferUntil constrains future contention.
	}
}

func (m *MACA) onQuietEnd() {
	if m.st != Quiet {
		return
	}
	m.timer = sim.Event{}
	if m.deferUntil > m.env.Sim.Now() {
		m.setTimer(m.deferUntil-m.env.Sim.Now(), m.onQuietEnd)
		return
	}
	m.next()
}

// RadioCarrier implements phy.Handler; MACA does not sense carrier.
func (m *MACA) RadioCarrier(bool) {}

// RadioReceive implements phy.Handler.
func (m *MACA) RadioReceive(f *frame.Frame) {
	if m.halted {
		return
	}
	if m.env.Obs != nil {
		m.env.Obs.ObserveRx(f)
	}
	if f.Dst == m.env.ID() {
		m.receiveForMe(f)
		return
	}
	m.pol.OnOverhear(f)
	switch f.Type {
	case frame.RTS:
		// Defer rule 1: long enough for the sender to hear the CTS.
		// Defer spans carry no margin so that all stations' contention
		// grids stay anchored to the exact frame boundaries.
		m.enterQuiet(m.env.Cfg.Turnaround + m.env.Cfg.CtrlTime())
	case frame.CTS:
		// Defer rule 2: long enough for the data transmission.
		m.enterQuiet(m.env.Cfg.Turnaround + m.env.Cfg.DataTime(int(f.DataBytes)))
	}
}

func (m *MACA) receiveForMe(f *frame.Frame) {
	m.pol.OnReceive(f)
	switch f.Type {
	case frame.RTS:
		// Control rules 2 and 5: reply with a CTS from IDLE or
		// CONTEND — but only "if it is not currently deferring",
		// whatever state the FSM occupies.
		if (m.st != Idle && m.st != Contend) || m.deferUntil > m.env.Sim.Now() {
			return
		}
		m.clearTimer()
		cts := &frame.Frame{Type: frame.CTS, Src: m.env.ID(), Dst: f.Src, DataBytes: f.DataBytes, Seq: f.Seq}
		m.pol.StampSend(cts)
		air := m.transmit(cts)
		m.stats.CTSSent++
		m.expectFrom = f.Src
		m.setState(WFData)
		m.setTimer(air+m.env.Cfg.Turnaround+m.env.Cfg.DataTime(int(f.DataBytes))+m.env.Cfg.Margin, m.onTimeoutToIdle)
	case frame.CTS:
		// Control rule 3: send the data.
		if m.st != WFCTS || f.Src != m.curDst {
			return
		}
		m.clearTimer()
		m.pol.OnSuccess(m.curDst)
		m.retries = 0
		head := m.q.Pop()
		m.noteQueue("pop", head.Dst)
		data := &frame.Frame{Type: frame.DATA, Src: m.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
		m.pol.StampSend(data)
		air := m.transmit(data)
		m.setState(SendData)
		m.sending = head
		m.setTimer(air, m.onDataSent)
	case frame.DATA:
		// Control rule 4.
		if m.st == WFData && f.Src == m.expectFrom {
			m.clearTimer()
			m.deliver(f)
			m.next()
			return
		}
		// A data packet that arrives outside WFData is still data.
		m.deliver(f)
	}
}

// onDataSent completes the DATA transmission started by the CTS: the packet
// held in sending is reported sent and the station moves on. A named method
// (rather than a closure over the popped head) keeps the pending-timer
// callback symbol stable, which warm-started forks rely on.
func (m *MACA) onDataSent() {
	m.timer = sim.Event{}
	head := m.sending
	m.sending = nil
	m.stats.DataSent++
	m.env.Callbacks.NotifySent(head)
	m.next()
}

// onTimeoutToIdle is Timeout rule 2: "From any other state, when a timer
// expires, a station goes to the IDLE state."
func (m *MACA) onTimeoutToIdle() {
	m.timer = sim.Event{}
	m.next()
}
