package maca

import (
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// station bundles one MACA instance with its delivery log.
type station struct {
	m         *MACA
	delivered []frame.NodeID // sources of received data packets
	sent      int
	dropped   int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
	nodes  map[frame.NodeID]*station
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, medium: phy.New(s, phy.DefaultParams()), nodes: make(map[frame.NodeID]*station)}
}

func (w *world) addStation(id frame.NodeID, pos geom.Vec3, opts ...Option) *station {
	st := &station{}
	radio := w.medium.Attach(id, pos, nil)
	env := &mac.Env{
		Sim: w.s, Radio: radio, Rand: w.s.NewRand(), Cfg: mac.DefaultConfig(),
		Callbacks: mac.Callbacks{
			Deliver: func(src frame.NodeID, _ []byte) { st.delivered = append(st.delivered, src) },
			Sent:    func(*mac.Packet) { st.sent++ },
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	st.m = New(env, opts...)
	w.nodes[id] = st
	return st
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: frame.DefaultDataBytes, Payload: []byte("x")}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{Idle: "IDLE", Contend: "CONTEND", WFCTS: "WFCTS", WFData: "WFDATA", Quiet: "QUIET", SendData: "SENDDATA"}
	for s, n := range names {
		if s.String() != n {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), n)
		}
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown state string wrong")
	}
}

func TestSingleExchangeDeliversData(t *testing.T) {
	w := newWorld(1)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(6, 0, 6))
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if len(b.delivered) != 1 || b.delivered[0] != 1 {
		t.Fatalf("b delivered %v, want [1]", b.delivered)
	}
	if a.sent != 1 {
		t.Fatalf("a.sent = %d, want 1", a.sent)
	}
	sa, sb := a.m.Stats(), b.m.Stats()
	if sa.RTSSent != 1 || sb.CTSSent != 1 || sa.DataSent != 1 || sb.DataReceived != 1 {
		t.Fatalf("stats a=%+v b=%+v", sa, sb)
	}
	if a.m.State() != Idle || b.m.State() != Idle {
		t.Fatalf("states after exchange: %v, %v", a.m.State(), b.m.State())
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	w := newWorld(2)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(6, 0, 6))
	for i := 0; i < 5; i++ {
		a.m.Enqueue(pkt(2))
	}
	if a.m.QueueLen() != 5 {
		t.Fatalf("QueueLen = %d", a.m.QueueLen())
	}
	w.s.Run(5 * sim.Second)
	if len(b.delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(b.delivered))
	}
	if a.m.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", a.m.QueueLen())
	}
}

func TestUnreachableDestinationDropsAfterRetries(t *testing.T) {
	w := newWorld(3)
	a := w.addStation(1, geom.V(0, 0, 6))
	// Destination 9 does not exist.
	a.m.Enqueue(&mac.Packet{Dst: 9, Size: 512})
	w.s.Run(30 * sim.Second)
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
	st := a.m.Stats()
	if st.Drops != 1 {
		t.Fatalf("stats.Drops = %d", st.Drops)
	}
	if st.RTSSent != mac.DefaultConfig().MaxRetries+1 {
		t.Fatalf("RTSSent = %d, want %d", st.RTSSent, mac.DefaultConfig().MaxRetries+1)
	}
	if a.m.State() != Idle {
		t.Fatalf("state = %v, want IDLE", a.m.State())
	}
}

func TestBackoffGrowsOnFailures(t *testing.T) {
	pol := backoff.NewSingle(backoff.NewBEB(), false)
	w := newWorld(4)
	a := w.addStation(1, geom.V(0, 0, 6), WithPolicy(pol))
	a.m.Enqueue(&mac.Packet{Dst: 9, Size: 512})
	w.s.Run(2 * sim.Second)
	if pol.Value() <= 2 {
		t.Fatalf("backoff did not grow: %d", pol.Value())
	}
}

func TestReceiverRepliesFromContend(t *testing.T) {
	// Control rule 5: A in CONTEND receiving an RTS answers with a CTS
	// (yields to the incoming transfer).
	w := newWorld(5)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(6, 0, 6))
	// Both want to talk to each other simultaneously.
	a.m.Enqueue(pkt(2))
	b.m.Enqueue(pkt(1))
	w.s.Run(5 * sim.Second)
	if len(a.delivered) != 1 || len(b.delivered) != 1 {
		t.Fatalf("deliveries a=%v b=%v; the two transfers should both complete", a.delivered, b.delivered)
	}
}

func TestDeferringStationDoesNotAnswerRTS(t *testing.T) {
	// C overhears B's CTS (deferring for A's data); an RTS addressed to C
	// during that period must not elicit a CTS.
	w := newWorld(6)
	a := w.addStation(1, geom.V(0, 0, 6))
	w.addStation(2, geom.V(6, 0, 6))
	c := w.addStation(3, geom.V(9, 3, 6)) // hears both A and B
	a.m.Enqueue(pkt(2))
	// Get A->B going; once C is in QUIET, inject an RTS to C from a
	// fourth, distant station via direct radio access.
	d := w.medium.Attach(4, geom.V(14, 5, 6), nil)
	w.s.After(3*sim.Millisecond, func() {
		if c.m.State() != Quiet {
			t.Errorf("C state = %v at 3ms, want QUIET", c.m.State())
		}
		d.Transmit(&frame.Frame{Type: frame.RTS, Src: 4, Dst: 3, DataBytes: 512})
	})
	w.s.Run(60 * sim.Millisecond)
	if got := c.m.Stats().CTSSent; got != 0 {
		t.Fatalf("deferring station sent %d CTS, want 0", got)
	}
}

func TestOverhearRTSDefersThroughCTS(t *testing.T) {
	// A station that hears an RTS must be QUIET for the CTS slot.
	w := newWorld(7)
	a := w.addStation(1, geom.V(0, 0, 6))
	w.addStation(2, geom.V(6, 0, 6))
	c := w.addStation(3, geom.V(3, 3, 6))
	a.m.Enqueue(pkt(2))
	// Find when the RTS lands: state of C should become QUIET shortly
	// after the first RTS completes and before the CTS completes.
	seen := false
	var probe func()
	probe = func() {
		if c.m.State() == Quiet {
			seen = true
			return
		}
		if w.s.Now() < 100*sim.Millisecond {
			w.s.After(100*sim.Microsecond, probe)
		}
	}
	w.s.After(0, probe)
	w.s.Run(100 * sim.Millisecond)
	if !seen {
		t.Fatal("overhearing station never entered QUIET")
	}
}

func TestHiddenTerminalBothStreamsProgress(t *testing.T) {
	// Figure 1: A and C both in range of B, out of range of each other.
	// MACA's RTS/CTS lets both deliver data to B despite being hidden.
	w := newWorld(8)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(8, 0, 6))
	c := w.addStation(3, geom.V(16, 0, 6))
	if w.medium.InRange(w.medium.Radios()[0], w.medium.Radios()[2]) {
		t.Fatal("geometry broken: A and C in range")
	}
	for i := 0; i < 10; i++ {
		a.m.Enqueue(pkt(2))
		c.m.Enqueue(pkt(2))
	}
	w.s.Run(20 * sim.Second)
	var fromA, fromC int
	for _, src := range b.delivered {
		switch src {
		case 1:
			fromA++
		case 3:
			fromC++
		}
	}
	if fromA < 8 || fromC < 8 {
		t.Fatalf("hidden terminal deliveries: fromA=%d fromC=%d, want >=8 each", fromA, fromC)
	}
}

func TestExposedTerminalMayTransmit(t *testing.T) {
	// Figure 1 exposed case: B sends to A; C hears B but not A. C's
	// transfer to D (out of everyone's range but C's) should proceed
	// concurrently under MACA.
	w := newWorld(9)
	a := w.addStation(1, geom.V(0, 0, 6))
	b := w.addStation(2, geom.V(8, 0, 6))
	c := w.addStation(3, geom.V(16, 0, 6))
	d := w.addStation(4, geom.V(24, 0, 6))
	_ = a
	_ = d
	for i := 0; i < 20; i++ {
		b.m.Enqueue(pkt(1))
		c.m.Enqueue(pkt(4))
	}
	w.s.Run(20 * sim.Second)
	if len(w.nodes[1].delivered) < 15 {
		t.Fatalf("B->A delivered only %d", len(w.nodes[1].delivered))
	}
	if len(w.nodes[4].delivered) < 15 {
		t.Fatalf("C->D delivered only %d (exposed terminal starved)", len(w.nodes[4].delivered))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		w := newWorld(42)
		a := w.addStation(1, geom.V(0, 0, 6))
		b := w.addStation(2, geom.V(6, 0, 6))
		c := w.addStation(3, geom.V(3, 3, 6))
		for i := 0; i < 50; i++ {
			a.m.Enqueue(pkt(2))
			c.m.Enqueue(pkt(2))
		}
		w.s.Run(30 * sim.Second)
		return len(b.delivered), a.m.Stats().Retries + c.m.Stats().Retries
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
}

func TestTwoContendersShareChannel(t *testing.T) {
	// Both pads saturate the channel toward the base; both must make
	// progress (BEB unfairness needs sustained saturation, tested at the
	// experiment level).
	w := newWorld(10)
	p1 := w.addStation(1, geom.V(-4, 0, 6))
	p2 := w.addStation(2, geom.V(4, 0, 6))
	base := w.addStation(3, geom.V(0, 0, 12))
	for i := 0; i < 30; i++ {
		p1.m.Enqueue(pkt(3))
		p2.m.Enqueue(pkt(3))
	}
	w.s.Run(30 * sim.Second)
	if len(base.delivered) < 55 {
		t.Fatalf("only %d of 60 packets delivered", len(base.delivered))
	}
}
