// Package mac defines the interfaces shared by the media access protocol
// implementations (CSMA, MACA, MACAW): the transport-facing packet type,
// the host callbacks, per-stream queueing, and the common timing
// configuration (slot time, control packet time, timeouts).
package mac

import (
	"math/rand"

	"macaw/internal/frame"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// Packet is one transport-layer packet handed to a MAC for transmission.
type Packet struct {
	// Dst is the destination station (frame.Broadcast for multicast).
	Dst frame.NodeID
	// Size is the on-air size in bytes (the paper's data packets are 512
	// bytes regardless of payload).
	Size int
	// Payload is the transport payload carried to the receiver.
	Payload []byte
	// Enqueued is when the packet entered the MAC queue.
	Enqueued sim.Time

	seq uint32 // link-layer sequence number, assigned by the MAC
}

// Seq returns the link-layer sequence number the MAC assigned.
func (p *Packet) Seq() uint32 { return p.seq }

// SetSeq is used by MAC implementations to assign the sequence number.
func (p *Packet) SetSeq(s uint32) { p.seq = s }

// DropReason explains why a packet was abandoned.
type DropReason string

// Drop reasons.
const (
	DropRetries  DropReason = "retry limit exceeded"
	DropDisabled DropReason = "station disabled"
)

// Callbacks are the MAC-to-host upcalls. Any of them may be nil.
type Callbacks struct {
	// Deliver hands a received data packet to the host.
	Deliver func(src frame.NodeID, payload []byte)
	// Sent reports that a local packet completed (for MACA: data
	// transmitted; for MACAW: link-level ACK received).
	Sent func(p *Packet)
	// Dropped reports that a local packet was abandoned.
	Dropped func(p *Packet, reason DropReason)
}

// NotifyDeliver invokes Deliver if set.
func (c Callbacks) NotifyDeliver(src frame.NodeID, payload []byte) {
	if c.Deliver != nil {
		c.Deliver(src, payload)
	}
}

// NotifySent invokes Sent if set.
func (c Callbacks) NotifySent(p *Packet) {
	if c.Sent != nil {
		c.Sent(p)
	}
}

// NotifyDropped invokes Dropped if set.
func (c Callbacks) NotifyDropped(p *Packet, r DropReason) {
	if c.Dropped != nil {
		c.Dropped(p, r)
	}
}

// MAC is a media access protocol instance bound to one radio. It consumes
// physical-layer indications (phy.Handler) and transmits queued packets.
type MAC interface {
	phy.Handler
	// Enqueue submits a packet for transmission.
	Enqueue(p *Packet)
	// QueueLen reports the number of packets waiting (all streams).
	QueueLen() int
	// Stats returns MAC-level counters.
	Stats() Stats
}

// Halter is an optional MAC capability used by fault injection: Halt
// silences the instance permanently — the state timer is cancelled, queued
// packets are dropped (reported via the Dropped callback with DropDisabled),
// and every subsequent enqueue, radio indication, or stray timer becomes a
// no-op. A crashed station halts its MAC so a later restart can bind a
// fresh instance to the same radio without the two fighting over it.
type Halter interface {
	Halt()
}

// Inspector is an optional MAC capability exposing the FSM introspection a
// liveness watchdog needs: the current state's name, and whether a state
// timer (or scheduled continuation) is pending. All protocol engines in
// this repository implement it.
type Inspector interface {
	// FSMState names the current protocol state ("IDLE", "WFCTS", ...).
	FSMState() string
	// TimerPending reports whether a state timer is armed.
	TimerPending() bool
	// TimerWhen reports when the pending timer fires, or -1 when none is
	// armed.
	TimerWhen() sim.Time
}

// Observer receives MAC-internal events for passive protocol auditing (the
// conformance oracle). Implementations must be strictly passive: they may
// not transmit, enqueue packets, schedule simulator events, or consume
// randomness — attaching an observer must leave every simulation result
// bit-identical. Every protocol engine (csma, maca, macaw, token, dcf,
// tournament) invokes the hooks when Env.Obs is non-nil.
type Observer interface {
	// ObserveTx is invoked immediately before the MAC radiates f.
	ObserveTx(f *frame.Frame)
	// ObserveRx is invoked for every clean reception the MAC processes,
	// including overheard frames and broadcasts.
	ObserveRx(f *frame.Frame)
	// ObserveState reports an FSM transition (Appendix A/B state names).
	ObserveState(from, to string)
	// ObserveTimer reports the state timer being armed to fire at 'at';
	// a negative value reports cancellation.
	ObserveTimer(at sim.Time)
	// ObserveQueue reports a queue operation ("push", "pop", "drop") on
	// the queue toward dst, with the queue length after the operation.
	ObserveQueue(op string, dst frame.NodeID, n int)
	// ObserveDeliver reports a DATA frame whose payload was handed to
	// transport.
	ObserveDeliver(f *frame.Frame)
}

// Stats counts MAC-level events.
type Stats struct {
	// DataSent counts completed local data transmissions.
	DataSent int
	// DataReceived counts data packets delivered up the stack.
	DataReceived int
	// RTSSent counts RTS transmissions (including retries).
	RTSSent int
	// Retries counts RTS attempts beyond the first per packet.
	Retries int
	// Drops counts packets abandoned at the retry limit.
	Drops int
	// CTSSent, DSSent, ACKSent, RRTSSent count control transmissions.
	CTSSent, DSSent, ACKSent, RRTSSent int
}

// Config carries the timing constants shared by all protocols. The zero
// value is not useful; start from DefaultConfig.
type Config struct {
	// BitrateBPS is the channel rate (256 kbps in the paper).
	BitrateBPS int
	// CtrlBytes is the control packet size (30 bytes in the paper); its
	// airtime defines the contention slot.
	CtrlBytes int
	// Turnaround is the receive-to-transmit switch time ("the
	// simulations use a null turnaround").
	Turnaround sim.Duration
	// Margin is the scheduling epsilon added to timeouts so that events
	// arriving exactly on time beat the timer.
	Margin sim.Duration
	// MaxRetries bounds RTS attempts per packet before the packet is
	// discarded ("we allow a certain number of retries on each packet
	// before discarding the packet").
	MaxRetries int
	// CTSTimeoutSlots is how many slot times a sender waits for the CTS
	// (or ACK) beyond the control packet's own airtime before declaring
	// the attempt failed. The paper leaves the value unspecified; a
	// conservative multi-slot timeout reproduces the collision costs its
	// tables imply (see EXPERIMENTS.md).
	CTSTimeoutSlots int
}

// CTSWait returns the post-transmission wait for an answering control
// packet.
func (c Config) CTSWait() sim.Duration {
	n := c.CTSTimeoutSlots
	if n <= 0 {
		n = 1
	}
	return c.Turnaround + sim.Duration(n)*c.Slot() + c.Margin
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		BitrateBPS:      256000,
		CtrlBytes:       frame.ControlBytes,
		Turnaround:      0,
		Margin:          100 * sim.Microsecond,
		MaxRetries:      8,
		CTSTimeoutSlots: 1,
	}
}

// Slot returns the contention slot: the transmission time of a control
// packet.
func (c Config) Slot() sim.Duration { return frame.Airtime(c.CtrlBytes, c.BitrateBPS) }

// CtrlTime returns the airtime of a control packet.
func (c Config) CtrlTime() sim.Duration { return c.Slot() }

// DataTime returns the airtime of an n-byte data packet.
func (c Config) DataTime(n int) sim.Duration { return frame.Airtime(n, c.BitrateBPS) }

// Radio is the physical-layer surface a MAC implementation drives.
// *phy.Radio implements it inside the simulator; internal/netem provides a
// socket-backed implementation for live emulation.
type Radio interface {
	// ID returns the station identifier.
	ID() frame.NodeID
	// Transmit radiates f and returns its airtime; the MAC schedules its
	// own end-of-transmission continuation.
	Transmit(f *frame.Frame) sim.Duration
	// Transmitting reports whether a transmission is in flight.
	Transmitting() bool
	// CarrierBusy reports the carrier-sense indication.
	CarrierBusy() bool
	// Enabled reports whether the radio is powered.
	Enabled() bool
	// SetHandler installs the upper-layer indication handler.
	SetHandler(h phy.Handler)
}

// Env bundles what a MAC implementation needs from its host.
type Env struct {
	Sim   *sim.Simulator
	Radio Radio
	Rand  *rand.Rand
	Cfg   Config
	// Obs, when non-nil, receives MAC-internal events for passive
	// protocol auditing (see Observer).
	Obs Observer
	Callbacks
}

// ID returns the station identifier of the bound radio.
func (e *Env) ID() frame.NodeID { return e.Radio.ID() }
