package mac

import "macaw/internal/frame"

// This file provides the queue side of warm-started forking (DESIGN.md §15).
// Queued packets are shared between the warm twin and the fork rather than
// cloned: a Packet is immutable once enqueued — the engines write only SetSeq
// and Enqueued inside Enqueue, and every later stage reads — so sharing
// preserves pointer identity (MACAW's piggyback path compares queue head and
// pending entry by identity) and is safe under concurrent forks.

// AdoptFrom replaces q's contents with w's, sharing the packets.
func (q *Queue) AdoptFrom(w *Queue) {
	q.items = append(q.items[:0], w.items...)
}

// AdoptFrom rebuilds s as a copy of w: the same first-seen destination order
// and per-destination queues (sharing the queued packets). Destinations whose
// queues have drained remain present, exactly as in the warm twin.
func (s *StreamQueues) AdoptFrom(w *StreamQueues) {
	s.order = append(s.order[:0], w.order...)
	s.qs = make(map[frame.NodeID]*Queue, len(w.qs))
	for d, q := range w.qs {
		nq := &Queue{}
		nq.AdoptFrom(q)
		s.qs[d] = nq
	}
}
