package macaw

import (
	"fmt"
	"math/rand"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// TestNeverWedgesUnderArbitraryFrames injects random (often nonsensical)
// frame sequences straight into the engine across all option combinations
// and checks the liveness invariant: whenever the station has pending work
// or is mid-exchange, a timer is armed — i.e. no input sequence can park
// the FSM in a state it cannot leave.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	options := []Options{
		{Exchange: Basic},
		{Exchange: WithACK},
		DefaultOptions(),
		{Exchange: Full, PerStream: true, RRTS: true, NACK: true},
		func() Options { o := DefaultOptions(); o.PiggybackACK = true; return o }(),
		func() Options { o := DefaultOptions(); o.CarrierSense = true; return o }(),
	}
	types := []frame.Type{frame.RTS, frame.CTS, frame.DS, frame.DATA, frame.ACK, frame.RRTS, frame.NACK, frame.TOKEN}
	for oi, opt := range options {
		opt := opt
		t.Run(fmt.Sprintf("options%d", oi), func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				w := newWorld(seed)
				a := w.add(1, geom.V(0, 0, 6), opt)
				r := rand.New(rand.NewSource(seed))
				// Some genuine work so the engine has reasons to act.
				for i := 0; i < 3; i++ {
					a.m.Enqueue(pkt(frame.NodeID(2 + r.Intn(3))))
				}
				for i := 0; i < 400; i++ {
					f := &frame.Frame{
						Type:          types[r.Intn(len(types))],
						Src:           frame.NodeID(1 + r.Intn(5)),
						Dst:           frame.NodeID(1 + r.Intn(5)),
						DataBytes:     uint16(r.Intn(600)),
						Seq:           uint32(r.Intn(6)),
						ESN:           uint32(r.Intn(6)),
						LocalBackoff:  int16(r.Intn(70)),
						RemoteBackoff: int16(r.Intn(70) - 1),
						Multicast:     r.Intn(8) == 0,
						AckRequested:  r.Intn(2) == 0,
						HasAck:        r.Intn(4) == 0,
						Ack:           uint32(r.Intn(6)),
					}
					if f.Src == 1 {
						f.Src = 5 // a station never hears itself
					}
					// Deliver directly when the radio isn't mid-transmission,
					// interleaved with simulated time.
					if !a.m.env.Radio.Transmitting() {
						a.m.RadioReceive(f)
						a.m.RadioCarrier(r.Intn(2) == 0)
					}
					w.s.Run(w.s.Now() + sim.Duration(r.Intn(3))*sim.Millisecond)
					checkLive(t, w, a.m, seed, i)
				}
				// Drain: with injections stopped, pending real work must
				// eventually resolve (delivered or dropped).
				w.s.Run(w.s.Now() + 120*sim.Second)
				if a.m.QueueLen() > 0 {
					t.Fatalf("seed %d: %d packets stuck after drain (state %v, timer %v)",
						seed, a.m.QueueLen(), a.m.State(), a.m.TimerAt())
				}
			}
		})
	}
}

// checkLive asserts the liveness invariant at one instant.
func checkLive(t *testing.T, w *world, m *MACAW, seed int64, step int) {
	t.Helper()
	if m.State() == Idle {
		return
	}
	if m.TimerAt() < 0 && w.s.Pending() == 0 {
		t.Fatalf("seed %d step %d: state %v with no timer and no pending events — wedged",
			seed, step, m.State())
	}
}
