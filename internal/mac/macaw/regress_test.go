package macaw

// Regression tests for defects flushed out by the protocol-conformance
// oracle (internal/oracle). Each test pins the engine-level fix for one
// audited rule breach at the choreography that originally triggered it.

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// sniffer is a bare radio handler recording reception times by frame type.
type sniffer struct {
	s  *sim.Simulator
	rx map[frame.Type][]sim.Time
}

func newSniffer(s *sim.Simulator) *sniffer {
	return &sniffer{s: s, rx: make(map[frame.Type][]sim.Time)}
}

func (sn *sniffer) RadioReceive(f *frame.Frame) {
	sn.rx[f.Type] = append(sn.rx[f.Type], sn.s.Now())
}

func (sn *sniffer) RadioCarrier(bool) {}

func testRTS(src, dst frame.NodeID, seq, esn uint32) *frame.Frame {
	return &frame.Frame{
		Type: frame.RTS, Src: src, Dst: dst, Seq: seq, ESN: esn,
		DataBytes: frame.DefaultDataBytes, LocalBackoff: 2, RemoteBackoff: frame.IDontKnow,
	}
}

// TestGrantedRTSSatisfiesRRTSNote pins the fix for the oracle's ORD-RRTS
// finding (table6, seed 1): a station noted an RTS while deferring, later
// granted the sender's own retry directly — completing the exchange — and
// then still transmitted the RRTS, soliciting a transmission the sender no
// longer had pending. A direct grant of the noted sender's RTS must
// satisfy the note.
func TestGrantedRTSSatisfiesRRTSNote(t *testing.T) {
	w := newWorld(3)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	w.s.After(0, func() {
		// The note is armed for station 2, as if its RTS had arrived
		// during a defer period...
		a.m.hasRRTS = true
		a.m.rrtsFor = 2
		a.m.rrtsSeen = w.s.Now()
		// ...and now the same sender retries while the station is free.
		a.m.RadioReceive(testRTS(2, 1, 11, 1))
		if got := a.m.Stats().CTSSent; got != 1 {
			t.Fatalf("CTSSent = %d, want 1 (retry should be granted)", got)
		}
		if a.m.hasRRTS {
			t.Fatal("RRTS note survived a direct grant of the noted sender's RTS")
		}
	})
	w.s.Run(2 * sim.Second)
	if got := a.m.Stats().RRTSSent; got != 0 {
		t.Fatalf("RRTSSent = %d: stale RRTS transmitted after the noted sender was granted directly", got)
	}
}

// TestRebootedPeerSeqCollisionGetsCTS pins the fix for the oracle's ORD-ACK
// finding (chaos, macaw, seed 32): a crashed-and-restarted sender reused a
// sequence number its previous lifetime had already gotten acknowledged, and
// the receiver's stale dedup state answered the new packet's RTS with a
// repeated ACK (control rule 7) — silently losing it. An ESN regression
// marks the reboot and must drop the dead lifetime's dedup state.
func TestRebootedPeerSeqCollisionGetsCTS(t *testing.T) {
	// Same lifetime first: a repeat RTS for the acknowledged exchange is
	// answered with the ACK again, not a CTS (control rule 7 is intact).
	w := newWorld(5)
	b := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	w.s.After(0, func() {
		b.m.everAcked[2] = true
		b.m.lastAcked[2] = 7
		b.m.seenESN[2] = 9
		b.m.RadioReceive(testRTS(2, 1, 7, 9))
		if s := b.m.Stats(); s.ACKSent != 1 || s.CTSSent != 0 {
			t.Fatalf("same-lifetime repeat RTS: ACKSent=%d CTSSent=%d, want 1/0", s.ACKSent, s.CTSSent)
		}
	})
	w.s.Run(sim.Second)

	// After a reboot the same (seq, dedup) collision is a brand-new
	// packet: the regressed ESN must resynchronize the receiver, which
	// grants a CTS instead of replaying the stale ACK.
	w2 := newWorld(5)
	b2 := w2.add(1, geom.V(0, 0, 6), DefaultOptions())
	w2.s.After(0, func() {
		b2.m.everAcked[2] = true
		b2.m.lastAcked[2] = 7
		b2.m.seenESN[2] = 9
		b2.m.RadioReceive(testRTS(2, 1, 7, 2))
		if s := b2.m.Stats(); s.CTSSent != 1 || s.ACKSent != 0 {
			t.Fatalf("post-reboot colliding RTS: CTSSent=%d ACKSent=%d, want 1/0", s.CTSSent, s.ACKSent)
		}
	})
	w2.s.Run(sim.Second)
}

// TestSeqOriginRandomPerLifetime: each MAC lifetime numbers its packets from
// a random origin drawn from its own stream, so two instances — or two
// lifetimes of one station — do not start from the same point and hand a
// peer's stale dedup state an easy collision.
func TestSeqOriginRandomPerLifetime(t *testing.T) {
	w := newWorld(9)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	if a.m.seq == b.m.seq {
		t.Fatalf("two instances share seq origin %d", a.m.seq)
	}
	if a.m.seq == 0 && b.m.seq == 0 {
		t.Fatal("seq origins not randomized")
	}
}

// TestContendRedrawWhenDeferHorizonMoves pins the §3.2 slot rule backstop:
// "a transmission must begin an integer number of slot times — at least one
// — after the end of the last defer period". If the defer horizon moves
// under an armed contention timer, the timeout must redraw from the new
// horizon instead of transmitting inside the forbidden band.
func TestContendRedrawWhenDeferHorizonMoves(t *testing.T) {
	w := newWorld(6)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	sn := newSniffer(w.s)
	w.medium.Attach(99, geom.V(1, 0, 6), sn)
	slot := mac.DefaultConfig().Slot()
	var horizon sim.Time
	w.s.After(0, func() {
		a.m.Enqueue(pkt(2))
		if a.m.State() != Contend {
			t.Fatal("enqueue did not start contention")
		}
		// Move the horizon to just past the armed fire time: firing as
		// armed would start a transmission less than one slot after it.
		horizon = a.m.TimerAt() + slot/2
		a.m.deferUntil = horizon
	})
	w.s.Run(2 * sim.Second)
	rts := sn.rx[frame.RTS]
	if len(rts) == 0 {
		t.Fatal("no RTS ever transmitted")
	}
	// The sniffer sees the frame one control-airtime (= one slot) after
	// it begins, so a legal start at horizon+slot arrives at horizon+2·slot.
	if rts[0] < horizon+2*slot {
		t.Fatalf("RTS heard at %v — began inside one slot of the defer horizon %v", rts[0], horizon)
	}
}
