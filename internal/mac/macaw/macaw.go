// Package macaw implements the MACAW media access protocol of Appendix B:
// the RTS-CTS-DS-DATA-ACK message exchange, the RRTS receiver-initiated
// contention, per-stream queues, and pluggable backoff policies.
//
// Every §3 design increment is a configuration toggle rather than a fork, so
// the paper's ablation tables are reproducible from a single engine:
//
//   - Exchange selects RTS-CTS-DATA, RTS-CTS-DATA-ACK, or the full
//     RTS-CTS-DS-DATA-ACK pattern (§3.3.1, §3.3.2).
//   - RRTS enables receiver-initiated contention (§3.3.3).
//   - PerStream selects one queue per stream instead of a single FIFO
//     (§3.2).
//   - Policy selects the backoff algorithm and sharing scheme (§3.1, §3.4).
//
// Interpretation notes (see DESIGN.md §3): Appendix B's WFCONTEND state is
// merged into QUIET — both mean "defer until a known horizon, then contend" —
// and the RRTS sender waits in WFRTS (the text's "goes to WFDATA" only makes
// sense together with rule 12, which answers the returning RTS from WFRTS).
package macaw

import (
	"fmt"
	"sort"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// Exchange selects the message exchange pattern.
type Exchange int

// Exchange patterns, in the order the paper develops them.
const (
	// Basic is the original RTS-CTS-DATA exchange.
	Basic Exchange = iota
	// WithACK adds the link-level acknowledgement (§3.3.1).
	WithACK
	// Full adds the DS announcement: RTS-CTS-DS-DATA-ACK (§3.3.2).
	Full
)

// String names the exchange pattern as the paper does.
func (e Exchange) String() string {
	switch e {
	case Basic:
		return "RTS-CTS-DATA"
	case WithACK:
		return "RTS-CTS-DATA-ACK"
	case Full:
		return "RTS-CTS-DS-DATA-ACK"
	}
	return fmt.Sprintf("Exchange(%d)", int(e))
}

// HasACK reports whether the pattern ends with a link-level ACK.
func (e Exchange) HasACK() bool { return e != Basic }

// HasDS reports whether the pattern announces data with a DS packet.
func (e Exchange) HasDS() bool { return e == Full }

// State is a MACAW protocol state (Appendix B lists ten; WFCONTEND is
// merged into QUIET, and SendData covers all local transmissions).
type State int

// MACAW states.
const (
	Idle State = iota
	Contend
	WFCTS
	SendData
	WFACK
	WFDS
	WFData
	WFRTS
	Quiet
)

var stateNames = [...]string{"IDLE", "CONTEND", "WFCTS", "SENDDATA", "WFACK", "WFDS", "WFDATA", "WFRTS", "QUIET"}

// String returns the Appendix B state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Options configures a MACAW instance.
type Options struct {
	// Exchange is the message exchange pattern.
	Exchange Exchange
	// RRTS enables the Request-for-Request-to-Send mechanism.
	RRTS bool
	// PerStream gives every destination its own queue and contention
	// timer; false reproduces the single-FIFO design of early §3.
	PerStream bool
	// Policy is the backoff policy; nil selects the full MACAW default,
	// per-destination MILD with copying.
	Policy backoff.Policy
	// NACK enables the §4 alternative in which a receiver that issued a
	// CTS but got no data returns a NACK, prompting an immediate
	// retransmission attempt.
	NACK bool
	// CarrierSense enables §3.3.2's alternative to the DS packet: "A
	// station must defer transmission until one slot time after it
	// detects no carrier (the inclusion of a single slot time of clear
	// air is to ensure that exposed terminals do not clobber the
	// returning ACK). This is essentially the CSMA/CA protocol."
	CarrierSense bool
	// PiggybackACK enables the §4 alternative acking scheme: a sender
	// with more packets queued for the destination clears the DATA
	// frame's ack-request bit and collects the acknowledgement from the
	// receiver's next CTS, which carries "the sequence number of the
	// most recently arrived packet". Only meaningful with an
	// ACK-carrying exchange.
	PiggybackACK bool
}

// DefaultOptions returns the full MACAW protocol as evaluated in §3.5.
func DefaultOptions() Options {
	return Options{Exchange: Full, RRTS: true, PerStream: true}
}

// contender identifies what a station is contending to send.
type contender struct {
	dst  frame.NodeID
	rrts bool
}

// txKind discriminates which transmission the SendData-state timer is
// completing. Five different frames can be on the air in SendData; the kind
// (with txHead/txWantAck) is the full continuation state, so the timer
// callbacks can be named methods instead of capturing closures — which keeps
// their symbols stable for warm-started forks.
type txKind int

const (
	txNone txKind = iota
	txMcastRTS
	txMcastData
	txDS
	txData
	txCtrl
)

// MACAW is one station's protocol instance.
type MACAW struct {
	env  *mac.Env
	opt  Options
	pol  backoff.Policy
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st         State
	timer      sim.Event
	deferUntil sim.Time
	// carrierClearAt is the earliest transmission time permitted by the
	// CarrierSense option: one slot after the carrier last went quiet,
	// effectively unbounded while it is busy.
	carrierClearAt sim.Time

	// Queueing: streams when PerStream, fifo otherwise.
	streams *mac.StreamQueues
	fifo    mac.Queue

	attempts map[frame.NodeID]int // RTS attempts for the head packet per destination
	seq      uint32

	cur       contender    // what the contend timer is armed for
	curDst    frame.NodeID // destination of the exchange in flight
	expectSrc frame.NodeID // sender we issued a CTS/RRTS toward

	// tx/txHead/txWantAck are the continuation state of the SendData
	// timer: which frame is on the air, the packet it belongs to, and
	// whether the DATA frame requested an ACK.
	tx        txKind
	txHead    *mac.Packet
	txWantAck bool

	// rrtsFor is the first RTS sender we could not answer while
	// deferring ("it only responds to the first received RTS").
	rrtsFor frame.NodeID
	rrtsLen int
	hasRRTS bool
	// rrtsSeen is when the noted sender last retried; a note whose sender
	// has gone silent past its worst-case retry period is dropped at the
	// next fresh defer window instead of soliciting a dead station.
	rrtsSeen  sim.Time
	lastAcked map[frame.NodeID]uint32 // per-sender last delivered/acked seq
	everAcked map[frame.NodeID]bool
	// seenESN is the highest exchange number observed from each sender; a
	// regression marks a rebooted peer whose dedup state must be dropped.
	seenESN map[frame.NodeID]uint32
	// pending holds, per destination, a data packet transmitted without
	// an ack request, awaiting its piggybacked confirmation (§4).
	pending map[frame.NodeID]*mac.Packet
	// pendingRetries counts consecutive retransmissions of a lost pending
	// packet per destination. The RTS-CTS leg succeeds on every lap of
	// that loop, so the ordinary attempt counter (reset by each tentative
	// completion) never trips; without this bound a link whose data
	// direction is dead retries forever.
	pendingRetries map[frame.NodeID]int

	// halted marks a crashed instance: every entry point is a no-op so a
	// restarted MAC can own the radio without interference (mac.Halter).
	halted bool

	stats mac.Stats
}

// New returns a MACAW instance bound to env's radio, installing itself as
// the radio handler.
func New(env *mac.Env, opt Options) *MACAW {
	m := &MACAW{
		env:            env,
		opt:            opt,
		pol:            opt.Policy,
		lobs:           mac.AsLossObserver(env.Obs),
		streams:        mac.NewStreamQueues(),
		attempts:       make(map[frame.NodeID]int),
		lastAcked:      make(map[frame.NodeID]uint32),
		everAcked:      make(map[frame.NodeID]bool),
		seenESN:        make(map[frame.NodeID]uint32),
		pending:        make(map[frame.NodeID]*mac.Packet),
		pendingRetries: make(map[frame.NodeID]int),
	}
	// Each lifetime numbers its packets from a random point (the TCP
	// initial-sequence-number argument): a rebooted station restarting
	// from 1 could collide with the dedup bookkeeping peers kept about its
	// previous life — an RTS whose (seq, ESN) pair happens to equal an
	// already-acknowledged exchange draws a spurious repeated ACK and the
	// new packet is silently lost. The ESN-regression resync in
	// receiveForMe catches most reboots from the headers alone, but an
	// exact collision is indistinguishable there; randomizing the origin
	// makes it vanishingly unlikely.
	m.seq = env.Rand.Uint32() & 0x3fffffff
	if m.pol == nil {
		m.pol = backoff.NewPerDest(backoff.NewMILD())
	}
	env.Radio.SetHandler(m)
	return m
}

// State returns the current protocol state.
func (m *MACAW) State() State { return m.st }

// DeferUntil returns the current defer horizon (introspection for tests and
// traces).
func (m *MACAW) DeferUntil() sim.Time { return m.deferUntil }

// TimerAt returns the firing time of the pending state timer, or -1 when no
// timer is armed (introspection for tests and traces).
func (m *MACAW) TimerAt() sim.Time {
	if m.timer.IsZero() || m.timer.Cancelled() {
		return -1
	}
	return m.timer.When()
}

// FSMState implements mac.Inspector.
func (m *MACAW) FSMState() string { return m.st.String() }

// TimerPending implements mac.Inspector.
func (m *MACAW) TimerPending() bool { return m.TimerAt() >= 0 }

// TimerWhen implements mac.Inspector.
func (m *MACAW) TimerWhen() sim.Time { return m.TimerAt() }

// Halt implements mac.Halter: cancel the state timer, drop all queued and
// tentatively-completed packets (reported with DropDisabled), and turn every
// subsequent entry point into a no-op.
func (m *MACAW) Halt() {
	if m.halted {
		return
	}
	m.halted = true
	m.clearTimer()
	m.st = Idle
	m.hasRRTS = false
	m.deferUntil = 0
	m.tx, m.txHead, m.txWantAck = txNone, nil, false
	drain := func(q *mac.Queue) {
		for p := q.Pop(); p != nil; p = q.Pop() {
			m.stats.Drops++
			m.noteDrop(p.Dst, mac.DropDisabled)
			m.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		}
	}
	if m.opt.PerStream {
		for _, d := range m.streams.Destinations() {
			drain(m.streams.Queue(d))
		}
	} else {
		drain(&m.fifo)
	}
	// Pending piggyback packets die with the station too; sorted order
	// keeps the callback sequence deterministic.
	dsts := make([]frame.NodeID, 0, len(m.pending))
	for d := range m.pending {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		p := m.pending[d]
		delete(m.pending, d)
		m.stats.Drops++
		m.noteDrop(d, mac.DropDisabled)
		m.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (m *MACAW) Halted() bool { return m.halted }

// Protocol implements mac.Engine.
func (m *MACAW) Protocol() string { return "macaw" }

// Options returns the configured options.
func (m *MACAW) Options() Options { return m.opt }

// Policy returns the backoff policy in use.
func (m *MACAW) Policy() backoff.Policy { return m.pol }

// Stats implements mac.MAC.
func (m *MACAW) Stats() mac.Stats { return m.stats }

// QueueLen implements mac.MAC.
func (m *MACAW) QueueLen() int {
	if m.opt.PerStream {
		return m.streams.TotalLen()
	}
	return m.fifo.Len()
}

// queueFor returns the queue holding packets for dst.
func (m *MACAW) queueFor(dst frame.NodeID) *mac.Queue {
	if m.opt.PerStream {
		return m.streams.Queue(dst)
	}
	return &m.fifo
}

// head returns the packet an RTS toward dst would announce.
func (m *MACAW) head(dst frame.NodeID) *mac.Packet {
	q := m.queueFor(dst)
	if q == nil {
		return nil
	}
	p := q.Peek()
	if p == nil || (!m.opt.PerStream && p.Dst != dst) {
		return nil
	}
	return p
}

// Enqueue implements mac.MAC.
func (m *MACAW) Enqueue(p *mac.Packet) {
	if m.halted {
		m.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	m.seq++
	p.SetSeq(m.seq)
	p.Enqueued = m.env.Sim.Now()
	if m.opt.PerStream {
		m.streams.Push(p)
	} else {
		m.fifo.Push(p)
	}
	m.noteQueue("push", p.Dst)
	switch m.st {
	case Idle:
		m.enterContend()
	case Contend:
		// Let a newly-busy stream join the contention without
		// redrawing the others (a full redraw on every enqueue would
		// systematically postpone transmission — the inspection
		// paradox).
		if q := m.queueFor(p.Dst); q != nil && q.Len() == 1 {
			m.considerContender(contender{dst: p.Dst})
		}
	}
}

// considerContender draws a retry slot for c and re-arms the contention
// timer if c's slot precedes the currently armed one.
func (m *MACAW) considerContender(c contender) {
	base := m.env.Sim.Now()
	if m.deferUntil > base {
		base = m.deferUntil
	}
	k := 1 + m.env.Rand.Intn(m.pol.Backoff(c.dst))
	at := base + sim.Duration(k)*m.env.Cfg.Slot()
	if m.timer.IsZero() || m.timer.Cancelled() || at < m.timer.When() {
		m.cur = c
		m.setTimerAt(at, m.onContendTimeout)
	}
}

func (m *MACAW) setTimer(d sim.Duration, fn func()) {
	m.setTimerAt(m.env.Sim.Now()+d, fn)
}

func (m *MACAW) setTimerAt(t sim.Time, fn func()) {
	m.timer.Cancel()
	m.timer = m.env.Sim.At(t, fn)
	if m.env.Obs != nil {
		m.env.Obs.ObserveTimer(t)
	}
}

func (m *MACAW) clearTimer() {
	m.timer.Cancel()
	m.timer = sim.Event{}
	if m.env.Obs != nil {
		m.env.Obs.ObserveTimer(-1)
	}
}

// transmit radiates f, notifying the conformance observer first.
func (m *MACAW) transmit(f *frame.Frame) sim.Duration {
	if m.env.Obs != nil {
		m.env.Obs.ObserveTx(f)
	}
	return m.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (m *MACAW) setState(s State) {
	if m.env.Obs != nil && s != m.st {
		m.env.Obs.ObserveState(m.st.String(), s.String())
	}
	m.st = s
}

// deliver hands a received DATA frame's payload to transport.
func (m *MACAW) deliver(f *frame.Frame) {
	m.stats.DataReceived++
	if m.env.Obs != nil {
		m.env.Obs.ObserveDeliver(f)
	}
	m.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
}

// noteQueue reports a queue operation on dst's queue to the observer.
func (m *MACAW) noteQueue(op string, dst frame.NodeID) {
	if m.env.Obs == nil {
		return
	}
	n := 0
	if q := m.queueFor(dst); q != nil {
		n = q.Len()
	}
	m.env.Obs.ObserveQueue(op, dst, n)
}

// noteRetry reports a retried attempt to the loss observer.
func (m *MACAW) noteRetry(dst frame.NodeID) {
	if m.lobs != nil {
		m.lobs.ObserveRetry(dst)
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (m *MACAW) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if m.lobs != nil {
		m.lobs.ObserveDrop(dst, reason)
	}
}

// contendTargets lists the destinations with pending work.
func (m *MACAW) contendTargets() []frame.NodeID {
	if m.opt.PerStream {
		return m.streams.NonEmpty()
	}
	if p := m.fifo.Peek(); p != nil {
		return []frame.NodeID{p.Dst}
	}
	return nil
}

// enterContend draws a retry slot for every pending stream (and a pending
// RRTS) and arms the timer for the earliest — §3.2: "a random delay interval
// is chosen for each stream and the stream with the earliest retry slot is
// chosen for transmission".
func (m *MACAW) enterContend() {
	targets := m.contendTargets()
	if len(targets) == 0 && !m.hasRRTS {
		if m.deferring() {
			// Nothing to send, but a defer period is still running:
			// stay QUIET so arriving RTSes are answered with an
			// RRTS later rather than a mid-exchange CTS.
			m.setState(Quiet)
			m.setTimerAt(m.deferUntil, m.onQuietEnd)
			return
		}
		m.setState(Idle)
		m.clearTimer()
		return
	}
	m.setState(Contend)
	base := m.env.Sim.Now()
	if m.deferUntil > base {
		base = m.deferUntil
	}
	if hold := m.carrierHold(); hold > base && hold != maxTime {
		base = hold
	}
	slot := m.env.Cfg.Slot()
	var best sim.Time = -1
	var pick contender
	ties := 0
	draw := func(c contender) {
		k := 1 + m.env.Rand.Intn(m.pol.Backoff(c.dst))
		at := base + sim.Duration(k)*slot
		switch {
		case best < 0 || at < best:
			best = at
			pick = c
			ties = 1
		case at == best:
			// Reservoir-sample among equal draws so stream order
			// confers no systematic service advantage.
			ties++
			if m.env.Rand.Intn(ties) == 0 {
				pick = c
			}
		}
	}
	if m.hasRRTS {
		draw(contender{dst: m.rrtsFor, rrts: true})
	}
	for _, d := range targets {
		draw(contender{dst: d})
	}
	m.cur = pick
	m.setTimerAt(best, m.onContendTimeout)
}

// onContendTimeout transmits the RTS (or RRTS) the station contended for
// (Appendix B timeout rule 2).
func (m *MACAW) onContendTimeout() {
	if m.st != Contend {
		return
	}
	m.timer = sim.Event{}
	if m.deferUntil+m.env.Cfg.Slot() > m.env.Sim.Now() {
		// §3.2: a transmission must begin an integer number of slot
		// times — at least one — after the end of the last defer
		// period. Contention draws always satisfy this (every draw is
		// base + k·slot with k ≥ 1 and base ≥ deferUntil), so this
		// redraw is a hardening backstop: if the horizon ever moved
		// under an armed timer, firing within a slot of it would break
		// the slotted collision-avoidance grid.
		m.enterContend()
		return
	}
	if hold := m.carrierHold(); hold > m.env.Sim.Now() {
		if hold == maxTime {
			// The carrier is busy: wait for it to clear, then
			// redraw from the cleared instant.
			m.setState(Quiet)
			m.setTimer(m.env.Cfg.Slot(), m.onQuietEnd)
			return
		}
		m.enterContend()
		return
	}
	if m.cur.rrts {
		m.sendRRTS()
		return
	}
	head := m.head(m.cur.dst)
	if head == nil {
		m.enterContend()
		return
	}
	if head.Dst == frame.Broadcast {
		m.sendMulticast(head)
		return
	}
	if m.attempts[head.Dst] == 0 {
		m.pol.StartExchange(head.Dst)
	}
	f := &frame.Frame{Type: frame.RTS, Src: m.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq()}
	m.pol.StampSend(f)
	air := m.transmit(f)
	m.stats.RTSSent++
	m.curDst = head.Dst
	m.setState(WFCTS)
	m.setTimer(air+m.env.Cfg.CTSWait(), m.onCTSTimeout)
}

// sendRRTS contends on behalf of a blocked sender (§3.3.3).
func (m *MACAW) sendRRTS() {
	dst, n := m.rrtsFor, m.rrtsLen
	m.hasRRTS = false
	f := &frame.Frame{Type: frame.RRTS, Src: m.env.ID(), Dst: dst, DataBytes: uint16(n)}
	m.pol.StampSend(f)
	air := m.transmit(f)
	m.stats.RRTSSent++
	m.expectSrc = dst
	m.setState(WFRTS)
	// Long enough for the answering RTS to arrive.
	m.setTimer(air+m.env.Cfg.Turnaround+m.env.Cfg.CtrlTime()+m.env.Cfg.Margin, m.onExpectTimeout)
}

// sendMulticast performs the §3.3.4 multicast exchange: an RTS immediately
// followed by the DATA packet, with no CTS.
func (m *MACAW) sendMulticast(head *mac.Packet) {
	rts := &frame.Frame{Type: frame.RTS, Src: m.env.ID(), Dst: frame.Broadcast, DataBytes: uint16(head.Size), Seq: head.Seq(), Multicast: true}
	m.pol.StampSend(rts)
	air := m.transmit(rts)
	m.stats.RTSSent++
	m.setState(SendData)
	m.tx, m.txHead = txMcastRTS, head
	m.setTimer(air, m.onMcastRTSSent)
}

// onMcastRTSSent follows the multicast RTS with the DATA packet itself.
func (m *MACAW) onMcastRTSSent() {
	m.timer = sim.Event{}
	head := m.txHead
	data := &frame.Frame{Type: frame.DATA, Src: m.env.ID(), Dst: frame.Broadcast, DataBytes: uint16(head.Size), Seq: head.Seq(), Multicast: true, Payload: head.Payload}
	m.pol.StampSend(data)
	dair := m.transmit(data)
	m.tx = txMcastData
	m.setTimer(dair, m.onMcastDataSent)
}

// onMcastDataSent completes the multicast exchange.
func (m *MACAW) onMcastDataSent() {
	m.timer = sim.Event{}
	head := m.txHead
	m.tx, m.txHead = txNone, nil
	m.queueFor(frame.Broadcast).Pop()
	m.noteQueue("pop", frame.Broadcast)
	m.stats.DataSent++
	m.env.Callbacks.NotifySent(head)
	m.next()
}

// onCTSTimeout handles an RTS that evoked no CTS (or ACK): the failure is
// charged to the destination's backoff and the packet retried or dropped.
func (m *MACAW) onCTSTimeout() {
	if m.st != WFCTS {
		return
	}
	m.timer = sim.Event{}
	m.pol.OnFailure(m.curDst)
	m.stats.Retries++
	m.noteRetry(m.curDst)
	m.bumpAttempts(m.curDst)
	m.next()
}

// bumpAttempts increments the per-destination attempt counter, dropping the
// head packet once the retry limit is exceeded.
func (m *MACAW) bumpAttempts(dst frame.NodeID) {
	m.attempts[dst]++
	if m.attempts[dst] <= m.env.Cfg.MaxRetries {
		return
	}
	if q := m.queueFor(dst); q != nil {
		if p := q.Peek(); p != nil && p.Dst == dst {
			q.Pop()
			m.noteQueue("drop", dst)
			m.stats.Drops++
			m.noteDrop(dst, mac.DropRetries)
			m.pol.OnGiveUp(dst)
			m.env.Callbacks.NotifyDropped(p, mac.DropRetries)
		}
		if p := m.pending[dst]; p != nil {
			// An unconfirmed piggyback packet cannot stay in limbo
			// once its successor is gone; retransmit it normally.
			delete(m.pending, dst)
			q.PushFront(p)
			m.noteQueue("push", dst)
		}
	}
	m.attempts[dst] = 0
}

// next resumes contention for remaining work or returns to IDLE.
func (m *MACAW) next() { m.enterContend() }

// rrtsStale bounds how long a noted-but-unserved RTS stays eligible for an
// RRTS. A live blocked sender retries within its CTS timeout plus its
// contention draw — at most the doubled per-destination window of 2·BOmax
// slots (§3.4) — so doubling that span keeps a sender whose retries are
// merely slow while letting the invitation for a crashed or departed one die
// at the next fresh defer window.
func (m *MACAW) rrtsStale() sim.Duration {
	return 2 * (m.env.Cfg.CTSWait() + sim.Duration(2*backoff.DefaultMax)*m.env.Cfg.Slot())
}

// enterQuiet extends the defer horizon and (when not mid-exchange) moves to
// QUIET. QUIET absorbs Appendix B's WFCONTEND: when the horizon passes the
// station contends for pending work.
func (m *MACAW) enterQuiet(d sim.Duration) {
	if m.hasRRTS && !m.deferring() && m.env.Sim.Now()-m.rrtsSeen > m.rrtsStale() {
		// A fresh defer window is opening and the noted sender has been
		// silent for longer than its worst-case retry period: it either
		// crashed or went away, so an RRTS would solicit a station with
		// nothing pending. Drop the invitation; a live sender's next RTS
		// re-arms it (§3.3.3).
		m.hasRRTS = false
	}
	until := m.env.Sim.Now() + d
	if until > m.deferUntil {
		m.deferUntil = until
	}
	switch m.st {
	case Idle, Contend, Quiet:
		m.setState(Quiet)
		m.setTimerAt(m.deferUntil, m.onQuietEnd)
	default:
		// Mid-exchange states keep their timers; the advanced horizon
		// constrains the next contention.
	}
}

func (m *MACAW) onQuietEnd() {
	if m.st != Quiet {
		return
	}
	m.timer = sim.Event{}
	if m.deferUntil > m.env.Sim.Now() {
		m.setTimerAt(m.deferUntil, m.onQuietEnd)
		return
	}
	if hold := m.carrierHold(); hold == maxTime {
		// Still carrier-busy: poll again a slot later (the carrier
		// callback cannot restart a cancelled timer for us).
		m.setTimer(m.env.Cfg.Slot(), m.onQuietEnd)
		return
	}
	m.next()
}

// onExpectTimeout covers WFRTS/WFDS/WFData expiries: Appendix B timeout
// rule 3 — "From any other state, when a timer expires, a station goes to
// the IDLE state."
func (m *MACAW) onExpectTimeout() {
	m.timer = sim.Event{}
	if m.opt.NACK && m.st == WFData {
		// §4: tell the sender its data never arrived.
		nack := &frame.Frame{Type: frame.NACK, Src: m.env.ID(), Dst: m.expectSrc}
		m.pol.StampSend(nack)
		air := m.transmit(nack)
		m.expectSrc = 0
		m.setState(SendData)
		m.tx = txCtrl
		m.setTimer(air, m.onCtrlSent)
		return
	}
	// The expected peer never followed through; forget it so no later
	// path can mistake a stale expectation for a live exchange.
	m.expectSrc = 0
	m.next()
}

// RadioCarrier implements phy.Handler. The default MACAW avoids carrier
// sense, using the DS packet instead (§3.3.2); with the CarrierSense option
// the station holds its transmissions until one slot after the carrier
// clears.
func (m *MACAW) RadioCarrier(busy bool) {
	if m.halted || !m.opt.CarrierSense {
		return
	}
	if busy {
		m.carrierClearAt = maxTime
		return
	}
	m.carrierClearAt = m.env.Sim.Now() + m.env.Cfg.Slot()
}

// maxTime is far beyond any simulated horizon.
const maxTime = sim.Time(1) << 62

// carrierHold returns the earliest time the CarrierSense option allows a
// transmission, or 0 when the option is off or the air is clear. A stale
// busy indication (the clear transition was never delivered) is
// resynchronized against the radio's live carrier state so a lost callback
// cannot park the station forever.
func (m *MACAW) carrierHold() sim.Time {
	if !m.opt.CarrierSense {
		return 0
	}
	if m.carrierClearAt == maxTime && !m.env.Radio.CarrierBusy() {
		m.carrierClearAt = m.env.Sim.Now() + m.env.Cfg.Slot()
	}
	return m.carrierClearAt
}

// dataPlusAck is the defer span covering a data packet of the given size
// plus the returning ACK when the exchange uses one. Defer spans carry no
// scheduling margin: every station's contention grid must stay anchored to
// the exact frame boundaries or the slotted retransmission discipline
// ("an integer number of slot times after the end of the last defer
// period") loses its collision-avoidance property.
func (m *MACAW) dataPlusAck(dataBytes int) sim.Duration {
	d := m.env.Cfg.Turnaround + m.env.Cfg.DataTime(dataBytes)
	if m.opt.Exchange.HasACK() {
		d += m.env.Cfg.Turnaround + m.env.Cfg.CtrlTime()
	}
	return d
}

// RadioReceive implements phy.Handler.
func (m *MACAW) RadioReceive(f *frame.Frame) {
	if m.halted {
		return
	}
	if m.env.Obs != nil {
		m.env.Obs.ObserveRx(f)
	}
	if f.Dst == m.env.ID() {
		m.receiveForMe(f)
		return
	}
	if f.Dst == frame.Broadcast {
		m.receiveMulticast(f)
		return
	}
	m.pol.OnOverhear(f)
	switch f.Type {
	case frame.RTS:
		// Defer rule: long enough for the sender to hear the CTS.
		m.enterQuiet(m.env.Cfg.Turnaround + m.env.Cfg.CtrlTime())
	case frame.CTS:
		// Defer rule 3: long enough for the receiver to hear the data
		// (plus DS and ACK as configured).
		d := m.dataPlusAck(int(f.DataBytes))
		if m.opt.Exchange.HasDS() {
			d += m.env.Cfg.Turnaround + m.env.Cfg.CtrlTime()
		}
		m.enterQuiet(d)
	case frame.DS:
		// Defer rule 2: through the data packet and its ACK.
		m.enterQuiet(m.dataPlusAck(int(f.DataBytes)))
	case frame.RRTS:
		// Defer rule 4: "sufficient for an RTS-CTS exchange".
		m.enterQuiet(2 * (m.env.Cfg.Turnaround + m.env.Cfg.CtrlTime()))
	}
}

// receiveMulticast handles frames addressed to the broadcast group.
func (m *MACAW) receiveMulticast(f *frame.Frame) {
	m.pol.OnOverhear(f)
	switch f.Type {
	case frame.RTS:
		// "All stations defer for the length of the following DATA
		// transmission" (§3.3.4).
		m.enterQuiet(m.env.Cfg.Turnaround + m.env.Cfg.DataTime(int(f.DataBytes)))
	case frame.DATA:
		m.deliver(f)
	}
}

func (m *MACAW) receiveForMe(f *frame.Frame) {
	if last, ok := m.seenESN[f.Src]; ok && f.ESN < last {
		// Exchange numbers only grow within one lifetime of the peer and
		// per-sender delivery is ordered, so a smaller number means the
		// peer rebooted and is numbering from scratch. The dedup state the
		// dead instance earned is then poison: a new packet that happens
		// to reuse an acknowledged sequence number would be answered with
		// a spurious repeated ACK (control rule 7) and silently lost.
		// Resynchronize before acting on the frame.
		delete(m.everAcked, f.Src)
		delete(m.lastAcked, f.Src)
	}
	m.seenESN[f.Src] = f.ESN
	m.pol.OnReceive(f)
	switch f.Type {
	case frame.RTS:
		m.onRTS(f)
	case frame.CTS:
		m.onCTS(f)
	case frame.DS:
		m.onDS(f)
	case frame.DATA:
		m.onData(f)
	case frame.ACK:
		m.onACK(f)
	case frame.RRTS:
		m.onRRTS(f)
	case frame.NACK:
		m.onNACK(f)
	}
}

// deferring reports whether the station's defer horizon is still ahead —
// MACA/MACAW receivers reply to an RTS only "if [they are] not currently
// deferring", regardless of which state the FSM happens to occupy.
func (m *MACAW) deferring() bool { return m.deferUntil > m.env.Sim.Now() }

// onRTS answers an RTS addressed to this station.
func (m *MACAW) onRTS(f *frame.Frame) {
	switch m.st {
	case WFRTS:
		// Control rule 12: the solicited reply to our RRTS is part of
		// an exchange the RRTS already reserved slots for (overhearers
		// deferred two slots), so it is granted even if our own defer
		// horizon is still technically running.
		if f.Src == m.expectSrc {
			break
		}
		if m.deferring() {
			m.noteRRTS(f)
			return
		}
	case Idle, Contend:
		// Control rules 2 and 8 — unless a defer period is still
		// running (e.g. the station timed out of a broken exchange
		// while a neighbour's data transmission it must respect is
		// still in the air).
		if m.deferring() {
			m.noteRRTS(f)
			return
		}
	case Quiet:
		m.noteRRTS(f)
		return
	default:
		return
	}
	m.grantRTS(f)
}

// noteRRTS remembers the first RTS received while deferring so the station
// can contend with an RRTS on the sender's behalf (§3.3.3: "it only
// responds to the first received RTS").
func (m *MACAW) noteRRTS(f *frame.Frame) {
	if !m.opt.RRTS {
		return
	}
	if !m.hasRRTS {
		m.hasRRTS = true
		m.rrtsFor = f.Src
	}
	if f.Src == m.rrtsFor {
		// Each retry from the noted sender proves it is still alive and
		// still blocked; refresh the note's liveness stamp.
		m.rrtsSeen = m.env.Sim.Now()
		m.rrtsLen = int(f.DataBytes)
	}
}

// grantRTS answers an RTS with a CTS (or a repeated ACK).
func (m *MACAW) grantRTS(f *frame.Frame) {
	if m.hasRRTS && m.rrtsFor == f.Src {
		// The sender we noted for an RRTS retried on its own and is
		// being answered right now: the invitation is satisfied. Left
		// armed, it would fire after this exchange completes and solicit
		// a transmission the sender no longer has pending (§3.3.3 pairs
		// each RRTS with one unanswered RTS).
		m.hasRRTS = false
	}
	// Control rule 7: an RTS for the packet acknowledged last time gets
	// the ACK again instead of a CTS.
	if m.opt.Exchange.HasACK() && m.everAcked[f.Src] && m.lastAcked[f.Src] == f.Seq {
		m.clearTimer()
		m.sendAck(f.Src, f.Seq)
		return
	}
	m.clearTimer()
	cts := &frame.Frame{Type: frame.CTS, Src: m.env.ID(), Dst: f.Src, DataBytes: f.DataBytes, Seq: f.Seq}
	if m.opt.PiggybackACK && m.everAcked[f.Src] {
		cts.HasAck = true
		cts.Ack = m.lastAcked[f.Src]
	}
	m.pol.StampSend(cts)
	air := m.transmit(cts)
	m.stats.CTSSent++
	m.expectSrc = f.Src
	if m.opt.Exchange.HasDS() {
		m.setState(WFDS)
		m.setTimer(air+m.env.Cfg.Turnaround+m.env.Cfg.CtrlTime()+m.env.Cfg.Margin, m.onExpectTimeout)
	} else {
		m.setState(WFData)
		m.setTimer(air+m.env.Cfg.Turnaround+m.env.Cfg.DataTime(int(f.DataBytes))+m.env.Cfg.Margin, m.onExpectTimeout)
	}
}

// onCTS starts the data phase (control rule 3).
func (m *MACAW) onCTS(f *frame.Frame) {
	if m.st != WFCTS || f.Src != m.curDst {
		return
	}
	m.clearTimer()
	if p := m.pending[f.Src]; p != nil {
		if f.HasAck && f.Ack >= p.Seq() {
			// Piggybacked confirmation of the previous packet.
			delete(m.pending, f.Src)
			delete(m.pendingRetries, f.Src)
			m.pol.OnSuccess(f.Src)
			m.env.Callbacks.NotifySent(p)
		} else {
			// The previous packet never arrived: abandon this
			// exchange (the receiver's WFDS will time out) and
			// retransmit the lost packet first. The retransmission
			// must count against its own retry budget: the RTS-CTS
			// leg succeeds on every lap of this loop, so the
			// ordinary attempt counter (reset by each tentative
			// completion) can never bound it, and a link whose data
			// direction is dead would otherwise retry forever.
			delete(m.pending, f.Src)
			m.stats.Retries++
			m.noteRetry(f.Src)
			m.pendingRetries[f.Src]++
			if m.pendingRetries[f.Src] > m.env.Cfg.MaxRetries {
				delete(m.pendingRetries, f.Src)
				m.stats.Drops++
				m.noteDrop(f.Src, mac.DropRetries)
				m.pol.OnGiveUp(f.Src)
				m.env.Callbacks.NotifyDropped(p, mac.DropRetries)
			} else if q := m.queueFor(f.Src); q != nil {
				q.PushFront(p)
				m.noteQueue("push", f.Src)
			}
			m.next()
			return
		}
	}
	head := m.head(m.curDst)
	if head == nil {
		m.next()
		return
	}
	if !m.opt.Exchange.HasACK() {
		// Without a link-level ACK the successful RTS-CTS exchange is
		// the success signal (MACA semantics).
		m.pol.OnSuccess(m.curDst)
	}
	if m.opt.Exchange.HasDS() {
		ds := &frame.Frame{Type: frame.DS, Src: m.env.ID(), Dst: m.curDst, DataBytes: uint16(head.Size), Seq: head.Seq()}
		m.pol.StampSend(ds)
		air := m.transmit(ds)
		m.stats.DSSent++
		m.setState(SendData)
		m.tx, m.txHead = txDS, head
		m.setTimer(air, m.onDSSent)
	} else {
		m.setState(SendData)
		m.sendData(head)
	}
}

// sendData transmits the head packet's DATA frame back-to-back after the
// CTS (or DS) and arms the ACK timer when the exchange uses one. In
// piggyback mode a sender with more packets queued clears the ack-request
// bit and defers confirmation to the destination's next CTS (§4).
func (m *MACAW) sendData(head *mac.Packet) {
	wantAck := m.opt.Exchange.HasACK()
	if wantAck && m.opt.PiggybackACK && m.pending[head.Dst] == nil {
		if q := m.queueFor(head.Dst); q != nil && q.Len() > 1 {
			wantAck = false
		}
	}
	data := &frame.Frame{Type: frame.DATA, Src: m.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload, AckRequested: wantAck}
	m.pol.StampSend(data)
	air := m.transmit(data)
	m.tx, m.txHead, m.txWantAck = txData, head, wantAck
	m.setTimer(air, m.onDataAirDone)
}

// onDSSent transmits the announced data once the DS frame leaves the air.
func (m *MACAW) onDSSent() {
	m.timer = sim.Event{}
	head := m.txHead
	m.tx, m.txHead = txNone, nil
	m.sendData(head)
}

// onDataAirDone fires when the DATA frame leaves the air: wait for the ACK,
// tentatively complete a piggybacked packet, or finish a basic exchange.
func (m *MACAW) onDataAirDone() {
	m.timer = sim.Event{}
	head, wantAck := m.txHead, m.txWantAck
	m.tx, m.txHead, m.txWantAck = txNone, nil, false
	if wantAck {
		m.setState(WFACK)
		m.setTimer(m.env.Cfg.CTSWait(), m.onACKTimeout)
		return
	}
	if m.opt.Exchange.HasACK() {
		// Piggyback mode: tentatively complete; the packet is held
		// aside until the next CTS confirms it.
		q := m.queueFor(head.Dst)
		if q != nil && q.Peek() == head {
			q.Pop()
			m.noteQueue("pop", head.Dst)
		}
		m.pending[head.Dst] = head
		m.attempts[head.Dst] = 0
		m.stats.DataSent++
		m.next()
		return
	}
	// Basic exchange: the transmission is complete.
	m.completeSend(head.Dst)
}

// onCtrlSent resumes after a standalone control frame (ACK or NACK) leaves
// the air.
func (m *MACAW) onCtrlSent() {
	m.timer = sim.Event{}
	m.tx = txNone
	m.next()
}

// completeSend finishes the head packet toward dst.
func (m *MACAW) completeSend(dst frame.NodeID) {
	q := m.queueFor(dst)
	var p *mac.Packet
	if q != nil {
		p = q.Pop()
		m.noteQueue("pop", dst)
	}
	m.attempts[dst] = 0
	m.stats.DataSent++
	if p != nil {
		m.env.Callbacks.NotifySent(p)
	}
	m.next()
}

// onACKTimeout retries the packet. Appendix B's timeout rule penalizes the
// destination's backoff on every per-packet timeout ("When a Pad P times
// out on a packet to Q: Q's backoff += retry_count * ALPHA"), WFACK
// included; without the penalty, a sender whose data keeps colliding at the
// receiver (an intruding exposed terminal) retries at full aggression
// forever and two cells can lock into mutual destruction. §3.3.1's earlier
// "backoff not changed" rule predates the Appendix B revision.
func (m *MACAW) onACKTimeout() {
	if m.st != WFACK {
		return
	}
	m.timer = sim.Event{}
	m.pol.OnFailure(m.curDst)
	m.stats.Retries++
	m.noteRetry(m.curDst)
	m.bumpAttempts(m.curDst)
	m.next()
}

// onACK completes the exchange (control rule 6): the backoff decreases only
// now, when the ACK arrives (§3.3.1).
func (m *MACAW) onACK(f *frame.Frame) {
	if p := m.pending[f.Src]; p != nil && p.Seq() == f.Seq {
		delete(m.pending, f.Src)
		delete(m.pendingRetries, f.Src)
		m.pol.OnSuccess(f.Src)
		m.env.Callbacks.NotifySent(p)
		return
	}
	head := m.head(f.Src)
	if head == nil || head.Seq() != f.Seq {
		return
	}
	switch m.st {
	case WFACK:
		if f.Src != m.curDst {
			return
		}
	case WFCTS:
		// Control rule 7's counterpart: the receiver answered our
		// retransmitted RTS with the ACK for data it already has.
		if f.Src != m.curDst {
			return
		}
	default:
		return
	}
	m.clearTimer()
	m.pol.OnSuccess(f.Src)
	m.completeSend(f.Src)
}

// onDS moves the receiver from WFDS to WFData (control rule 4).
func (m *MACAW) onDS(f *frame.Frame) {
	if m.st != WFDS || f.Src != m.expectSrc {
		return
	}
	m.clearTimer()
	m.setState(WFData)
	m.setTimer(m.env.Cfg.Turnaround+m.env.Cfg.DataTime(int(f.DataBytes))+m.env.Cfg.Margin, m.onExpectTimeout)
}

// onData delivers the payload and returns the ACK (control rule 5). A
// retransmission of the most recently delivered packet (its ACK was lost,
// or our WFData timed out while its bits were still in the air) is
// re-acknowledged but not delivered again.
func (m *MACAW) onData(f *frame.Frame) {
	if m.opt.Exchange.HasACK() && m.everAcked[f.Src] && m.lastAcked[f.Src] == f.Seq {
		if m.st == WFData && f.Src == m.expectSrc {
			m.clearTimer()
			m.sendAck(f.Src, f.Seq)
		}
		return
	}
	if m.st == WFData && f.Src == m.expectSrc {
		m.clearTimer()
		m.deliver(f)
		if m.opt.Exchange.HasACK() {
			m.lastAcked[f.Src] = f.Seq
			m.everAcked[f.Src] = true
			if !f.AckRequested && m.opt.PiggybackACK {
				// §4: the sender will collect the ack from our
				// next CTS.
				m.next()
				return
			}
			m.sendAck(f.Src, f.Seq)
			return
		}
		m.next()
		return
	}
	// Data outside the expected window is still data; record it so a
	// retransmitted copy is not delivered twice.
	if m.opt.Exchange.HasACK() {
		m.lastAcked[f.Src] = f.Seq
		m.everAcked[f.Src] = true
	}
	m.deliver(f)
}

// sendAck transmits a link-level ACK and resumes.
func (m *MACAW) sendAck(dst frame.NodeID, seq uint32) {
	ack := &frame.Frame{Type: frame.ACK, Src: m.env.ID(), Dst: dst, Seq: seq}
	m.pol.StampSend(ack)
	air := m.transmit(ack)
	m.stats.ACKSent++
	m.setState(SendData)
	m.tx = txCtrl
	m.setTimer(air, m.onCtrlSent)
}

// onRRTS answers a Request-for-RTS (control rule 13): transmit the RTS
// immediately if data for the requester is queued.
func (m *MACAW) onRRTS(f *frame.Frame) {
	if (m.st != Idle && m.st != Contend) || m.deferring() {
		return
	}
	head := m.head(f.Src)
	if head == nil {
		return
	}
	m.clearTimer()
	if m.attempts[head.Dst] == 0 {
		m.pol.StartExchange(head.Dst)
	}
	rts := &frame.Frame{Type: frame.RTS, Src: m.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq()}
	m.pol.StampSend(rts)
	air := m.transmit(rts)
	m.stats.RTSSent++
	m.curDst = head.Dst
	m.setState(WFCTS)
	m.setTimer(air+m.env.Cfg.CTSWait(), m.onCTSTimeout)
}

// onNACK (§4 alternative): the receiver's CTS went unanswered by data; the
// sender retries immediately at the next contention without a backoff
// penalty.
func (m *MACAW) onNACK(f *frame.Frame) {
	if !m.opt.NACK || m.st != WFACK || f.Src != m.curDst {
		return
	}
	m.clearTimer()
	m.stats.Retries++
	m.noteRetry(m.curDst)
	m.bumpAttempts(m.curDst)
	m.next()
}
