package macaw

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// Rule-by-rule tests for the Appendix B state machine. Each test drives the
// engine to the state a rule covers and checks the prescribed transition.

// step runs the world until the station reaches the wanted state or the
// deadline passes.
func step(w *world, m *MACAW, want State, deadline sim.Duration) bool {
	for w.s.Now() < deadline {
		if m.State() == want {
			return true
		}
		if !w.s.Step() {
			break
		}
	}
	return m.State() == want
}

func TestControlRule1ContendOnEnqueue(t *testing.T) {
	// "When A is in IDLE state and wants to transmit a data packet to B,
	// it sets a random timer and goes to the CONTEND state."
	w := newWorld(41)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	w.add(2, geom.V(6, 0, 6), DefaultOptions())
	if a.m.State() != Idle {
		t.Fatal("not idle initially")
	}
	a.m.Enqueue(pkt(2))
	if a.m.State() != Contend {
		t.Fatalf("state after enqueue = %v, want CONTEND", a.m.State())
	}
	if a.m.TimerAt() < 0 {
		t.Fatal("no contention timer set")
	}
}

func TestControlRule2CTSAndWFDS(t *testing.T) {
	// "When station B is in IDLE state and receives a RTS packet from A,
	// it transmits a Clear To Send (CTS) packet. B then sets a timer and
	// goes to Wait for DataSend (WFDS) state."
	w := newWorld(42)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	if !step(w, b.m, WFDS, 100*sim.Millisecond) {
		t.Fatalf("B state = %v, want WFDS after RTS", b.m.State())
	}
	if b.m.Stats().CTSSent != 1 {
		t.Fatal("no CTS transmitted")
	}
}

func TestControlRules3to6FullHappyPath(t *testing.T) {
	// Rules 3-6: CTS -> DS+DATA (sender through SENDDATA to WFACK);
	// DS -> WFDATA at the receiver; DATA -> ACK; ACK -> IDLE.
	w := newWorld(43)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	if !step(w, a.m, SendData, 100*sim.Millisecond) {
		t.Fatalf("sender never reached SENDDATA (state %v)", a.m.State())
	}
	if !step(w, b.m, WFData, 100*sim.Millisecond) {
		t.Fatalf("receiver never reached WFDATA (state %v)", b.m.State())
	}
	if !step(w, a.m, WFACK, 200*sim.Millisecond) {
		t.Fatalf("sender never reached WFACK (state %v)", a.m.State())
	}
	w.s.Run(300 * sim.Millisecond)
	if a.m.State() != Idle || b.m.State() != Idle {
		t.Fatalf("end states %v/%v, want IDLE/IDLE", a.m.State(), b.m.State())
	}
	if a.sent != 1 || len(b.delivered) != 1 {
		t.Fatal("exchange did not complete")
	}
}

func TestControlRule7RepeatedRTSGetsACK(t *testing.T) {
	// Covered end-to-end by TestLostACKRecoveredByRule7; here the direct
	// transition: B in IDLE, RTS for an already-acked seq -> ACK, no CTS.
	w := newWorld(44)
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(3, 0, 6), nil)
	rts := &frame.Frame{Type: frame.RTS, Src: 9, Dst: 2, DataBytes: 512, Seq: 5}
	ds := &frame.Frame{Type: frame.DS, Src: 9, Dst: 2, DataBytes: 512, Seq: 5}
	data := &frame.Frame{Type: frame.DATA, Src: 9, Dst: 2, DataBytes: 512, Seq: 5}
	// First, a complete RTS-CTS-DS-DATA exchange so B acknowledges seq 5.
	// Timing: B's CTS occupies [937.5us, 1875us] and its WFDS window ends
	// ~2.91ms, so the DS goes out right after the CTS and the DATA
	// back-to-back after the DS.
	probe.Transmit(rts)
	w.s.Run(1900 * sim.Microsecond)
	air := probe.Transmit(ds)
	w.s.Run(w.s.Now() + air)
	probe.Transmit(data.Clone())
	w.s.Run(40 * sim.Millisecond)
	acks := b.m.Stats().ACKSent
	if acks != 1 {
		t.Fatalf("ACKSent = %d after first exchange", acks)
	}
	// The retransmitted RTS for the same seq gets the ACK again, not a CTS.
	ctsBefore := b.m.Stats().CTSSent
	probe.Transmit(rts.Clone())
	w.s.Run(80 * sim.Millisecond)
	if b.m.Stats().ACKSent != 2 {
		t.Fatalf("ACKSent = %d, want 2 (rule 7)", b.m.Stats().ACKSent)
	}
	if b.m.Stats().CTSSent != ctsBefore {
		t.Fatal("rule 7 answered with a CTS")
	}
}

func TestControlRule8CTSFromContend(t *testing.T) {
	// "If A receives a RTS packet when it is in CONTEND state, it
	// transmits CTS packet to the sender."
	w := newWorld(45)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	// Make B contend (it has its own packet for A), then hit it with A's
	// RTS before its timer fires.
	a.m.Enqueue(pkt(2))
	b.m.Enqueue(pkt(1))
	if b.m.State() != Contend {
		t.Fatal("B not contending")
	}
	w.s.Run(2 * sim.Second)
	// Both transfers complete despite the crossed intentions.
	if len(a.delivered) != 1 || len(b.delivered) != 1 {
		t.Fatalf("deliveries a=%d b=%d", len(a.delivered), len(b.delivered))
	}
}

func TestTimeoutRule3BrokenExchangeReturnsToIdle(t *testing.T) {
	// "From any other state, when a timer expires, a station goes to the
	// IDLE state." A receiver whose sender dies mid-exchange must not
	// wedge in WFDS.
	w := newWorld(46)
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(3, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 2, DataBytes: 512, Seq: 1})
	if !step(w, b.m, WFDS, 50*sim.Millisecond) {
		t.Fatalf("B state = %v, want WFDS", b.m.State())
	}
	// The sender never follows up with a DS; B must time out to IDLE.
	w.s.Run(200 * sim.Millisecond)
	if b.m.State() != Idle {
		t.Fatalf("B stuck in %v after broken exchange", b.m.State())
	}
}

func TestDeferRule1RTSQuietThroughCTS(t *testing.T) {
	// "When C hears a RTS packet from A to B, it goes from its current
	// state to the QUIET state."
	w := newWorld(47)
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v, want QUIET after overheard RTS", c.m.State())
	}
	// The defer covers only the CTS slot (main-text semantics): ~1.9ms.
	horizon := c.m.DeferUntil() - w.s.Now()
	if horizon <= 0 || horizon > 3*sim.Millisecond {
		t.Fatalf("RTS defer horizon = %v", horizon)
	}
}

func TestDeferRule2DSQuietThroughDataAndACK(t *testing.T) {
	w := newWorld(48)
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.DS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v, want QUIET after overheard DS", c.m.State())
	}
	// DATA (16ms) + ACK slot.
	horizon := c.m.DeferUntil() - w.s.Now()
	if horizon < 16*sim.Millisecond || horizon > 19*sim.Millisecond {
		t.Fatalf("DS defer horizon = %v, want ~16.9ms", horizon)
	}
}

func TestDeferRule3CTSQuietThroughData(t *testing.T) {
	w := newWorld(49)
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.CTS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v, want QUIET after overheard CTS", c.m.State())
	}
	// DS + DATA + ACK from the CTS end.
	horizon := c.m.DeferUntil() - w.s.Now()
	if horizon < 17*sim.Millisecond || horizon > 20*sim.Millisecond {
		t.Fatalf("CTS defer horizon = %v, want ~17.9ms", horizon)
	}
}

func TestDeferRule4RRTSQuietForExchange(t *testing.T) {
	w := newWorld(50)
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RRTS, Src: 9, Dst: 8, DataBytes: 512})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v, want QUIET after overheard RRTS", c.m.State())
	}
	horizon := c.m.DeferUntil() - w.s.Now()
	if horizon <= sim.Millisecond || horizon > 3*sim.Millisecond {
		t.Fatalf("RRTS defer horizon = %v, want ~2 slots", horizon)
	}
}

func TestQuietStationStoresOnlyFirstRTSForRRTS(t *testing.T) {
	// "If it has received several RTS's during the deferral period, it
	// only responds to the first received RTS."
	w := newWorld(51)
	c := w.add(3, geom.V(0, 0, 6), DefaultOptions())
	// Two probes that C hears; they cannot hear each other is irrelevant
	// here — transmissions are sequenced so both RTSes arrive cleanly.
	p1 := w.medium.Attach(8, geom.V(3, 0, 6), nil)
	p2 := w.medium.Attach(9, geom.V(-3, 0, 6), nil)
	// Put C into a long defer with a DS.
	p1.Transmit(&frame.Frame{Type: frame.DS, Src: 8, Dst: 7, DataBytes: 512})
	w.s.Run(2 * sim.Millisecond)
	if c.m.State() != Quiet {
		t.Fatalf("C state = %v", c.m.State())
	}
	// Two RTSes addressed to C while it defers.
	p2.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 3, DataBytes: 512, Seq: 1})
	w.s.Run(4 * sim.Millisecond)
	p1.Transmit(&frame.Frame{Type: frame.RTS, Src: 8, Dst: 3, DataBytes: 512, Seq: 2})
	w.s.Run(30 * sim.Millisecond) // defer ends, C contends with the RRTS
	w.s.Run(60 * sim.Millisecond)
	if got := c.m.Stats().RRTSSent; got != 1 {
		t.Fatalf("RRTSSent = %d, want exactly 1 (first RTS only)", got)
	}
}

func TestRRTSRecipientRespondsImmediately(t *testing.T) {
	// "The recipient of an RRTS immediately responds with an RTS" —
	// control rule 13, without a contention delay.
	w := newWorld(52)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	// Freeze A in CONTEND, then deliver an RRTS from its destination.
	if a.m.State() != Contend {
		t.Fatal("not contending")
	}
	before := a.m.Stats().RTSSent
	probe := w.medium.Attach(2+7, geom.V(30, 30, 6), nil)
	_ = probe
	// Inject the RRTS directly from station 2's radio position via a
	// probe co-located with it is unnecessary — drive the handler.
	a.m.RadioReceive(&frame.Frame{Type: frame.RRTS, Src: 2, Dst: 1, DataBytes: 512})
	if a.m.Stats().RTSSent != before+1 {
		t.Fatal("RRTS recipient did not answer with an immediate RTS")
	}
	if a.m.State() != WFCTS {
		t.Fatalf("state = %v, want WFCTS", a.m.State())
	}
}

func TestRRTSRecipientIgnoresWithoutQueuedData(t *testing.T) {
	w := newWorld(53)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	a.m.RadioReceive(&frame.Frame{Type: frame.RRTS, Src: 2, Dst: 1, DataBytes: 512})
	if a.m.Stats().RTSSent != 0 {
		t.Fatal("answered an RRTS with no data queued")
	}
	if a.m.State() != Idle {
		t.Fatalf("state = %v", a.m.State())
	}
}

func TestNoCTSGrantWhileDeferHorizonActive(t *testing.T) {
	// A station that drops to IDLE mid-defer (e.g. out of a broken
	// exchange) must still not grant a CTS before its horizon passes.
	w := newWorld(54)
	c := w.add(3, geom.V(0, 0, 6), DefaultOptions())
	p1 := w.medium.Attach(8, geom.V(3, 0, 6), nil)
	p2 := w.medium.Attach(9, geom.V(-3, 0, 6), nil)
	// A DS puts C into a ~17ms defer.
	p1.Transmit(&frame.Frame{Type: frame.DS, Src: 8, Dst: 7, DataBytes: 512})
	w.s.Run(3 * sim.Millisecond)
	// An RTS addressed to C arrives mid-defer: no CTS allowed.
	p2.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: 3, DataBytes: 512, Seq: 1})
	w.s.Run(8 * sim.Millisecond)
	if got := c.m.Stats().CTSSent; got != 0 {
		t.Fatalf("granted %d CTS during an active defer horizon", got)
	}
}

func TestMulticastRTSDefersAllForDataLength(t *testing.T) {
	// §3.3.4: "The overhearing stations can identify that the RTS is for
	// a multicast address, and therefore all stations defer for the
	// length of the following DATA transmission."
	w := newWorld(55)
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	probe := w.medium.Attach(9, geom.V(0, 0, 6), nil)
	probe.Transmit(&frame.Frame{Type: frame.RTS, Src: 9, Dst: frame.Broadcast, DataBytes: 512, Multicast: true})
	if !step(w, c.m, Quiet, 10*sim.Millisecond) {
		t.Fatalf("C state = %v after multicast RTS", c.m.State())
	}
	horizon := c.m.DeferUntil() - w.s.Now()
	if horizon < 15*sim.Millisecond || horizon > 17*sim.Millisecond {
		t.Fatalf("multicast defer horizon = %v, want ~16ms", horizon)
	}
}
