package macaw

import (
	"math/rand"
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

type station struct {
	m         *MACAW
	delivered []frame.NodeID
	payloads  [][]byte
	sent      int
	dropped   int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, medium: phy.New(s, phy.DefaultParams())}
}

func (w *world) add(id frame.NodeID, pos geom.Vec3, opt Options) *station {
	st := &station{}
	radio := w.medium.Attach(id, pos, nil)
	env := &mac.Env{
		Sim: w.s, Radio: radio, Rand: w.s.NewRand(), Cfg: mac.DefaultConfig(),
		Callbacks: mac.Callbacks{
			Deliver: func(src frame.NodeID, payload []byte) {
				st.delivered = append(st.delivered, src)
				st.payloads = append(st.payloads, payload)
			},
			Sent:    func(*mac.Packet) { st.sent++ },
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	st.m = New(env, opt)
	return st
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: frame.DefaultDataBytes, Payload: []byte("payload")}
}

func TestExchangeStrings(t *testing.T) {
	if Basic.String() != "RTS-CTS-DATA" || WithACK.String() != "RTS-CTS-DATA-ACK" || Full.String() != "RTS-CTS-DS-DATA-ACK" {
		t.Fatal("exchange names wrong")
	}
	if Exchange(9).String() != "Exchange(9)" {
		t.Fatal("unknown exchange name wrong")
	}
	if Basic.HasACK() || !WithACK.HasACK() || !Full.HasACK() {
		t.Fatal("HasACK wrong")
	}
	if Basic.HasDS() || WithACK.HasDS() || !Full.HasDS() {
		t.Fatal("HasDS wrong")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Idle: "IDLE", Contend: "CONTEND", WFCTS: "WFCTS", SendData: "SENDDATA",
		WFACK: "WFACK", WFDS: "WFDS", WFData: "WFDATA", WFRTS: "WFRTS", Quiet: "QUIET"}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d = %q, want %q", s, s.String(), n)
		}
	}
	if State(42).String() != "State(42)" {
		t.Error("unknown state name wrong")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Exchange != Full || !o.RRTS || !o.PerStream {
		t.Fatalf("DefaultOptions = %+v", o)
	}
	w := newWorld(1)
	st := w.add(1, geom.V(0, 0, 6), o)
	if _, ok := st.m.Policy().(*backoff.PerDest); !ok {
		t.Fatal("default policy is not per-destination")
	}
	if st.m.Options().Exchange != Full {
		t.Fatal("Options() accessor wrong")
	}
}

func TestFullExchangeDelivers(t *testing.T) {
	w := newWorld(1)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if len(b.delivered) != 1 || string(b.payloads[0]) != "payload" {
		t.Fatalf("delivery failed: %v", b.delivered)
	}
	if a.sent != 1 {
		t.Fatalf("sender not notified: sent=%d", a.sent)
	}
	sa, sb := a.m.Stats(), b.m.Stats()
	if sa.RTSSent != 1 || sb.CTSSent != 1 || sa.DSSent != 1 || sa.DataSent != 1 || sb.ACKSent != 1 {
		t.Fatalf("stats a=%+v b=%+v", sa, sb)
	}
	if a.m.State() != Idle || b.m.State() != Idle {
		t.Fatalf("states %v %v", a.m.State(), b.m.State())
	}
}

func TestBasicExchangeSkipsDSAndACK(t *testing.T) {
	opt := Options{Exchange: Basic, Policy: backoff.NewSingle(backoff.NewBEB(), false)}
	w := newWorld(2)
	a := w.add(1, geom.V(0, 0, 6), opt)
	b := w.add(2, geom.V(6, 0, 6), Options{Exchange: Basic, Policy: backoff.NewSingle(backoff.NewBEB(), false)})
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if len(b.delivered) != 1 {
		t.Fatal("basic exchange failed")
	}
	sa, sb := a.m.Stats(), b.m.Stats()
	if sa.DSSent != 0 || sb.ACKSent != 0 {
		t.Fatalf("basic exchange emitted DS/ACK: %+v %+v", sa, sb)
	}
	if a.sent != 1 {
		t.Fatal("basic exchange did not report Sent")
	}
}

func TestWithACKExchange(t *testing.T) {
	opt := Options{Exchange: WithACK}
	w := newWorld(3)
	a := w.add(1, geom.V(0, 0, 6), opt)
	b := w.add(2, geom.V(6, 0, 6), opt)
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if len(b.delivered) != 1 || a.sent != 1 {
		t.Fatal("WithACK exchange failed")
	}
	if a.m.Stats().DSSent != 0 || b.m.Stats().ACKSent != 1 {
		t.Fatal("WithACK should send ACK but no DS")
	}
}

func TestQueueDrains(t *testing.T) {
	w := newWorld(4)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	for i := 0; i < 10; i++ {
		a.m.Enqueue(pkt(2))
	}
	if a.m.QueueLen() != 10 {
		t.Fatalf("QueueLen = %d", a.m.QueueLen())
	}
	w.s.Run(10 * sim.Second)
	if len(b.delivered) != 10 || a.m.QueueLen() != 0 {
		t.Fatalf("delivered %d, queue %d", len(b.delivered), a.m.QueueLen())
	}
}

func TestUnreachableDropsAfterRetries(t *testing.T) {
	w := newWorld(5)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(9))
	w.s.Run(60 * sim.Second)
	if a.dropped != 1 || a.m.Stats().Drops != 1 {
		t.Fatalf("dropped=%d stats=%+v", a.dropped, a.m.Stats())
	}
	if a.m.Stats().RTSSent != mac.DefaultConfig().MaxRetries+1 {
		t.Fatalf("RTSSent = %d", a.m.Stats().RTSSent)
	}
}

// ackDropper corrupts the first n ACK frames it sees.
type ackDropper struct{ n int }

func (d *ackDropper) Corrupts(_ *rand.Rand, rx *phy.Radio, f *frame.Frame) bool {
	if f.Type == frame.ACK && f.Dst == rx.ID() && d.n > 0 {
		d.n--
		return true
	}
	return false
}

func TestLostACKRecoveredByRule7(t *testing.T) {
	// Control rule 7: data received but ACK lost; the retransmitted RTS
	// is answered with the ACK instead of a CTS, and the data is not
	// transmitted twice.
	w := newWorld(6)
	w.medium.SetNoise(&ackDropper{n: 1})
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	w.s.Run(5 * sim.Second)
	if len(b.delivered) != 1 {
		t.Fatalf("delivered %d, want exactly 1 (no duplicate)", len(b.delivered))
	}
	if a.sent != 1 {
		t.Fatalf("sender completions = %d, want 1", a.sent)
	}
	if got := a.m.Stats().RTSSent; got < 2 {
		t.Fatalf("RTSSent = %d, want a retry", got)
	}
	if got := b.m.Stats().ACKSent; got != 2 {
		t.Fatalf("ACKSent = %d, want 2 (original + re-ACK)", got)
	}
	if got := a.m.Stats().DataSent; got != 1 {
		t.Fatalf("DataSent = %d, want 1", got)
	}
}

// dataDropper corrupts the first n DATA frames at their destination.
type dataDropper struct{ n int }

func (d *dataDropper) Corrupts(_ *rand.Rand, rx *phy.Radio, f *frame.Frame) bool {
	if f.Type == frame.DATA && f.Dst == rx.ID() && d.n > 0 {
		d.n--
		return true
	}
	return false
}

func TestLostDataRetransmitted(t *testing.T) {
	w := newWorld(7)
	w.medium.SetNoise(&dataDropper{n: 1})
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	w.s.Run(5 * sim.Second)
	if len(b.delivered) != 1 {
		t.Fatalf("delivered %d after data loss, want 1", len(b.delivered))
	}
	if a.m.Stats().Retries == 0 {
		t.Fatal("no retry recorded for lost data")
	}
}

func TestNACKModeRecovers(t *testing.T) {
	opt := DefaultOptions()
	opt.NACK = true
	w := newWorld(8)
	w.medium.SetNoise(&dataDropper{n: 1})
	a := w.add(1, geom.V(0, 0, 6), opt)
	b := w.add(2, geom.V(6, 0, 6), opt)
	a.m.Enqueue(pkt(2))
	w.s.Run(5 * sim.Second)
	if len(b.delivered) != 1 {
		t.Fatalf("NACK mode delivered %d, want 1", len(b.delivered))
	}
}

func TestACKTimeoutPenalizesBackoff(t *testing.T) {
	// Appendix B's timeout rule penalizes every per-packet timeout, WFACK
	// included; persistent ACK loss must therefore raise the backoff.
	pol := backoff.NewSingle(backoff.NewMILD(), false)
	opt := Options{Exchange: WithACK, Policy: pol}
	w := newWorld(9)
	w.medium.SetNoise(&ackDropper{n: 1000})
	a := w.add(1, geom.V(0, 0, 6), opt)
	w.add(2, geom.V(6, 0, 6), Options{Exchange: WithACK})
	a.m.Enqueue(pkt(2))
	w.s.Run(500 * sim.Millisecond)
	if v := pol.Value(); v <= 2 {
		t.Fatalf("backoff = %d after persistent ACK loss, want > 2", v)
	}
	// The recovery path still works once the noise clears: rule 7 returns
	// the ACK for the retransmitted RTS without resending the data.
	if a.m.Stats().Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestCTSTimeoutIncreasesBackoff(t *testing.T) {
	pol := backoff.NewSingle(backoff.NewMILD(), false)
	opt := Options{Exchange: Full, Policy: pol}
	w := newWorld(10)
	a := w.add(1, geom.V(0, 0, 6), opt)
	a.m.Enqueue(pkt(9)) // nobody there
	w.s.Run(2 * sim.Second)
	if pol.Value() <= 2 {
		t.Fatalf("backoff = %d after CTS timeouts, want > 2", pol.Value())
	}
}

func TestPerStreamAvoidsHeadOfLineBlocking(t *testing.T) {
	// FIFO mode: a packet to a dead station blocks the queue for the
	// whole retry sequence; per-stream mode lets the live stream proceed.
	run := func(perStream bool) sim.Time {
		w := newWorld(11)
		opt := DefaultOptions()
		opt.PerStream = perStream
		a := w.add(1, geom.V(0, 0, 6), opt)
		b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
		a.m.Enqueue(pkt(9)) // dead destination first
		a.m.Enqueue(pkt(2))
		var deliveredAt sim.Time = -1
		for i := 0; i < 2000 && deliveredAt < 0; i++ {
			w.s.Run(w.s.Now() + 50*sim.Millisecond)
			if len(b.delivered) > 0 && deliveredAt < 0 {
				deliveredAt = w.s.Now()
			}
		}
		return deliveredAt
	}
	tPer := run(true)
	tFifo := run(false)
	if tPer < 0 || tFifo < 0 {
		t.Fatalf("delivery never happened: per=%v fifo=%v", tPer, tFifo)
	}
	if tPer*2 >= tFifo {
		t.Fatalf("per-stream (%v) not significantly faster than FIFO (%v)", tPer, tFifo)
	}
}

func TestMulticastRTSDataDeliversToAllInRange(t *testing.T) {
	w := newWorld(12)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	d := w.add(4, geom.V(30, 0, 6), DefaultOptions()) // out of range
	a.m.Enqueue(&mac.Packet{Dst: frame.Broadcast, Size: 512, Payload: []byte("mc")})
	w.s.Run(2 * sim.Second)
	if len(b.delivered) != 1 || len(c.delivered) != 1 {
		t.Fatalf("multicast deliveries: b=%d c=%d", len(b.delivered), len(c.delivered))
	}
	if len(d.delivered) != 0 {
		t.Fatal("out-of-range station received multicast")
	}
	if a.sent != 1 {
		t.Fatal("multicast sender not notified")
	}
	// No CTS or ACK in the multicast exchange.
	if b.m.Stats().CTSSent != 0 || b.m.Stats().ACKSent != 0 {
		t.Fatal("multicast elicited CTS/ACK")
	}
}

func TestOverhearingDSDefersStation(t *testing.T) {
	// C hears A's DS and must stay quiet through DATA + ACK.
	w := newWorld(13)
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	w.add(2, geom.V(6, 0, 6), DefaultOptions())
	c := w.add(3, geom.V(3, 3, 6), DefaultOptions())
	a.m.Enqueue(pkt(2))
	quietDuringData := false
	var probe func()
	probe = func() {
		// DS ends around 2.9ms (RTS+CTS+DS), data runs ~16ms after.
		if w.s.Now() > 5*sim.Millisecond && w.s.Now() < 18*sim.Millisecond {
			if c.m.State() == Quiet {
				quietDuringData = true
			}
		}
		if w.s.Now() < 30*sim.Millisecond {
			w.s.After(500*sim.Microsecond, probe)
		}
	}
	w.s.After(0, probe)
	w.s.Run(40 * sim.Millisecond)
	if !quietDuringData {
		t.Fatal("DS overhearer was not quiet during the data transmission")
	}
}

func TestRRTSEnablesBlockedReceiver(t *testing.T) {
	// Figure 6 in miniature: B1 sends to P1; P1 defers to the P2-B2
	// stream it overhears. With RRTS, P1 contends on B1's behalf. The
	// scenario is bistable across seeds (see table6's note); this seed is
	// one where B1's RTSes land while P1 is deferring.
	w := newWorld(3)
	b1 := w.add(1, geom.V(0, 0, 12), DefaultOptions())
	p1 := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	p2 := w.add(3, geom.V(12, 0, 6), DefaultOptions())
	b2 := w.add(4, geom.V(18, 0, 12), DefaultOptions())
	_ = p1
	// Keep P2's stream saturated for the whole run so B1's RTSes mostly
	// land while P1 is deferring.
	for i := 0; i < 3000; i++ {
		p2.m.Enqueue(pkt(4))
	}
	for i := 0; i < 500; i++ {
		b1.m.Enqueue(pkt(2))
	}
	w.s.Run(30 * sim.Second)
	if len(p1.delivered) < 10 {
		t.Fatalf("B1->P1 delivered only %d with RRTS", len(p1.delivered))
	}
	if len(b2.delivered) < 100 {
		t.Fatalf("P2->B2 delivered only %d", len(b2.delivered))
	}
	if p1.m.Stats().RRTSSent == 0 {
		t.Fatal("no RRTS was ever sent")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		w := newWorld(77)
		a := w.add(1, geom.V(-4, 0, 6), DefaultOptions())
		b := w.add(2, geom.V(4, 0, 6), DefaultOptions())
		base := w.add(3, geom.V(0, 0, 12), DefaultOptions())
		for i := 0; i < 100; i++ {
			a.m.Enqueue(pkt(3))
			b.m.Enqueue(pkt(3))
		}
		w.s.Run(60 * sim.Second)
		return len(base.delivered)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSaturatedCellSharesChannel(t *testing.T) {
	w := newWorld(15)
	pads := []*station{
		w.add(1, geom.V(-4, 0, 6), DefaultOptions()),
		w.add(2, geom.V(4, 0, 6), DefaultOptions()),
		w.add(3, geom.V(0, 4, 6), DefaultOptions()),
	}
	base := w.add(4, geom.V(0, 0, 12), DefaultOptions())
	for i := 0; i < 200; i++ {
		for _, p := range pads {
			p.m.Enqueue(pkt(4))
		}
	}
	w.s.Run(30 * sim.Second)
	counts := map[frame.NodeID]int{}
	for _, src := range base.delivered {
		counts[src]++
	}
	total := len(base.delivered)
	if total < 400 {
		t.Fatalf("throughput too low: %d delivered in 30s", total)
	}
	for id, n := range counts {
		if n < total/6 {
			t.Fatalf("station %v starved: %d of %d", id, n, total)
		}
	}
}
