package macaw

import (
	"math/rand"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

func pbOptions() Options {
	o := DefaultOptions()
	o.PiggybackACK = true
	return o
}

func TestPiggybackDeliversBacklogWithFewerACKs(t *testing.T) {
	run := func(opt Options) (delivered, acks, sent int) {
		w := newWorld(31)
		a := w.add(1, geom.V(0, 0, 6), opt)
		b := w.add(2, geom.V(6, 0, 6), opt)
		for i := 0; i < 40; i++ {
			a.m.Enqueue(pkt(2))
		}
		w.s.Run(30 * sim.Second)
		return len(b.delivered), b.m.Stats().ACKSent, a.sent
	}
	dPlain, ackPlain, sentPlain := run(DefaultOptions())
	dPb, ackPb, sentPb := run(pbOptions())
	if dPlain != 40 || dPb != 40 {
		t.Fatalf("deliveries: plain=%d piggyback=%d, want 40", dPlain, dPb)
	}
	if sentPlain != 40 || sentPb != 40 {
		t.Fatalf("sender completions: plain=%d piggyback=%d, want 40", sentPlain, sentPb)
	}
	// Piggyback mode must suppress most explicit ACKs: only the last
	// packet of each backlog burst requests one.
	if ackPb >= ackPlain/2 {
		t.Fatalf("piggyback sent %d explicit ACKs vs plain %d", ackPb, ackPlain)
	}
	if ackPb == 0 {
		t.Fatal("the final single-packet exchange must still request an ACK")
	}
}

func TestPiggybackThroughputGain(t *testing.T) {
	// Removing one ACK slot per data packet buys a few percent of
	// throughput on a saturated stream.
	run := func(opt Options) int {
		w := newWorld(32)
		a := w.add(1, geom.V(0, 0, 6), opt)
		b := w.add(2, geom.V(6, 0, 6), opt)
		for i := 0; i < 5000; i++ {
			a.m.Enqueue(pkt(2))
		}
		w.s.Run(30 * sim.Second)
		return len(b.delivered)
	}
	plain := run(DefaultOptions())
	pb := run(pbOptions())
	if pb <= plain {
		t.Fatalf("piggyback %d not above plain %d", pb, plain)
	}
}

// dataSeqDropper corrupts the nth distinct DATA frame at its destination,
// once. MAC sequence numbers start at a random per-lifetime origin, so the
// target is identified by position in the stream rather than absolute seq.
type dataSeqDropper struct {
	nth      int
	lastSeq  uint32
	distinct int
	done     bool
}

func (d *dataSeqDropper) Corrupts(_ *rand.Rand, rx *phy.Radio, f *frame.Frame) bool {
	if d.done || f.Type != frame.DATA || f.Dst != rx.ID() {
		return false
	}
	if d.distinct == 0 || f.Seq != d.lastSeq {
		d.distinct++
		d.lastSeq = f.Seq
	}
	if d.distinct == d.nth {
		d.done = true
		return true
	}
	return false
}

func TestPiggybackRecoversLostUnackedData(t *testing.T) {
	// The risky case: a DATA frame sent without an ack request is lost.
	// The next CTS's piggybacked ack (for the previous seq) must trigger
	// a retransmission, and every packet must still arrive exactly once.
	w := newWorld(33)
	w.medium.SetNoise(&dataSeqDropper{nth: 3})
	a := w.add(1, geom.V(0, 0, 6), pbOptions())
	b := w.add(2, geom.V(6, 0, 6), pbOptions())
	for i := 0; i < 10; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(30 * sim.Second)
	if len(b.delivered) != 10 {
		t.Fatalf("delivered %d, want 10 (lost unacked data must be retransmitted)", len(b.delivered))
	}
	if a.sent != 10 {
		t.Fatalf("sender completions = %d, want 10", a.sent)
	}
	if a.m.Stats().Retries == 0 {
		t.Fatal("no retransmission recorded for the lost packet")
	}
}

func TestPiggybackOrderPreserved(t *testing.T) {
	w := newWorld(34)
	w.medium.SetNoise(&dataSeqDropper{nth: 5})
	a := w.add(1, geom.V(0, 0, 6), pbOptions())
	b := w.add(2, geom.V(6, 0, 6), pbOptions())
	for i := 0; i < 12; i++ {
		a.m.Enqueue(&mac.Packet{Dst: 2, Size: frame.DefaultDataBytes, Payload: []byte{byte(i)}})
	}
	w.s.Run(30 * sim.Second)
	if len(b.payloads) != 12 {
		t.Fatalf("delivered %d, want 12", len(b.payloads))
	}
	// The lost packet is retransmitted before its successors' payloads
	// continue, so the delivery order matches the enqueue order.
	for i, p := range b.payloads {
		if len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("delivery %d carried tag %v, want %d", i, p, i)
		}
	}
}
