package macaw

import (
	"testing"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// csOptions is the §3.3.2 carrier-sense alternative: RTS-CTS-DATA-ACK plus
// CSMA/CA-style deferral instead of the DS packet.
func csOptions() Options {
	return Options{Exchange: WithACK, PerStream: true, CarrierSense: true}
}

func TestCarrierSenseHoldsTransmissionDuringBusyAir(t *testing.T) {
	w := newWorld(21)
	a := w.add(1, geom.V(0, 0, 6), csOptions())
	w.add(2, geom.V(6, 0, 6), csOptions())
	// A third station floods the air with a long data frame; A must not
	// transmit its RTS until one slot after the frame ends.
	jam := w.medium.Attach(9, geom.V(3, 3, 6), nil)
	jam.Transmit(&frame.Frame{Type: frame.DATA, Src: 9, Dst: 99, DataBytes: 512})
	a.m.Enqueue(pkt(2))
	w.s.Run(10 * sim.Millisecond) // mid-jam
	if got := a.m.Stats().RTSSent; got != 0 {
		t.Fatalf("transmitted %d RTS during carrier-busy air", got)
	}
	w.s.Run(1 * sim.Second)
	if got := a.m.Stats().RTSSent; got == 0 {
		t.Fatal("never transmitted after the carrier cleared")
	}
	if len(w.s.Now().String()) == 0 {
		t.Fatal("clock broken")
	}
}

func TestCarrierSenseStillDeliversSingleStream(t *testing.T) {
	w := newWorld(22)
	a := w.add(1, geom.V(0, 0, 6), csOptions())
	b := w.add(2, geom.V(6, 0, 6), csOptions())
	for i := 0; i < 20; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(10 * sim.Second)
	if len(b.delivered) != 20 {
		t.Fatalf("delivered %d of 20 under carrier sense", len(b.delivered))
	}
	if a.sent != 20 {
		t.Fatalf("sender completions = %d", a.sent)
	}
}

func TestCarrierSenseRescuesExposedTerminals(t *testing.T) {
	// The Figure 5 geometry: without DS or carrier sense the exposed
	// pads trash each other; §3.3.2's carrier-sense alternative must
	// recover most of the throughput, like the DS packet does.
	run := func(opt Options) (int, int) {
		w := newWorld(23)
		withPolicy := func(o Options) Options {
			o.Policy = backoff.NewSingle(backoff.NewMILD(), true)
			return o
		}
		b1 := w.add(1, geom.V(0, 0, 12), withPolicy(opt))
		p1 := w.add(2, geom.V(6, 0, 6), withPolicy(opt))
		p2 := w.add(3, geom.V(12, 0, 6), withPolicy(opt))
		b2 := w.add(4, geom.V(18, 0, 12), withPolicy(opt))
		for i := 0; i < 2000; i++ {
			p1.m.Enqueue(pkt(1))
			p2.m.Enqueue(pkt(4))
		}
		w.s.Run(30 * sim.Second)
		return len(b1.delivered), len(b2.delivered)
	}
	plainA, plainB := run(Options{Exchange: WithACK, PerStream: true})
	csA, csB := run(csOptions())
	plain, cs := plainA+plainB, csA+csB
	if cs < plain*14/10 {
		t.Fatalf("carrier sense total %d not clearly above plain %d", cs, plain)
	}
	// Both streams must flow under carrier sense.
	if csA < 300 || csB < 300 {
		t.Fatalf("carrier sense starved a stream: %d / %d", csA, csB)
	}
}
