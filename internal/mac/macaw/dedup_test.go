package macaw

import (
	"math/rand"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

// dsDropper corrupts the first n DS frames at their destination, forcing
// the receiver's WFDS to time out while the sender, which got the CTS,
// proceeds to transmit data into a receiver that is no longer expecting it.
type dsDropper struct{ n int }

func (d *dsDropper) Corrupts(_ *rand.Rand, rx *phy.Radio, f *frame.Frame) bool {
	if f.Type == frame.DS && f.Dst == rx.ID() && d.n > 0 {
		d.n--
		return true
	}
	return false
}

func TestNoDuplicateDeliveryAfterBrokenExchange(t *testing.T) {
	// A lost DS means the data lands "outside the expected window" at the
	// receiver; the sender's ACK timeout then retransmits the same packet
	// through a fresh exchange. Exactly one copy must reach the host.
	w := newWorld(61)
	w.medium.SetNoise(&dsDropper{n: 1})
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	for i := 0; i < 5; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(20 * sim.Second)
	if len(b.delivered) != 5 {
		t.Fatalf("delivered %d, want exactly 5 (no duplicates, no losses)", len(b.delivered))
	}
	if a.sent != 5 {
		t.Fatalf("sender completions = %d", a.sent)
	}
}

func TestRepeatedNoiseNeverDuplicates(t *testing.T) {
	// Sustained random loss across all frame types: every packet arrives
	// exactly once despite arbitrary retransmission interleavings.
	w := newWorld(62)
	w.medium.SetNoise(phy.DestLoss{P: 0.15})
	a := w.add(1, geom.V(0, 0, 6), DefaultOptions())
	b := w.add(2, geom.V(6, 0, 6), DefaultOptions())
	const n = 200
	for i := 0; i < n; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(120 * sim.Second)
	drops := a.dropped
	if len(b.delivered)+drops < n {
		t.Fatalf("lost packets: delivered %d + dropped %d < %d", len(b.delivered), drops, n)
	}
	if len(b.delivered)+drops > n {
		t.Fatalf("duplicates: delivered %d + dropped %d > %d", len(b.delivered), drops, n)
	}
}
