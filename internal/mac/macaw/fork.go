package macaw

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into m, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15).
// Queued and pending packets are shared — a mac.Packet is immutable once
// enqueued, and sharing preserves the pointer identity the piggyback path
// compares (queue head vs pending entry). The pending state timer is re-armed
// at its exact (when, prio, seq) ordering key; the FSM state names its
// callback, except in SendData where five different frames can be on the air
// and the tx kind is the discriminator. It fails closed on anything this
// fork path cannot reproduce: a halted instance, mismatched options, a
// mismatched backoff policy, or a live timer with no discriminable owner.
func (m *MACAW) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*MACAW)
	if !ok {
		return fmt.Errorf("macaw: adopt: engine is %T here vs %T in warm twin", m, peer)
	}
	if w.halted || m.halted {
		return fmt.Errorf("macaw: adopt: halted instance (warm=%t fork=%t)", w.halted, m.halted)
	}
	mo, wo := m.opt, w.opt
	mo.Policy, wo.Policy = nil, nil
	if mo != wo {
		return fmt.Errorf("macaw: adopt: options differ (%+v here vs %+v in warm twin)", mo, wo)
	}
	if err := backoff.Adopt(m.pol, w.pol); err != nil {
		return err
	}
	m.st = w.st
	m.deferUntil = w.deferUntil
	m.carrierClearAt = w.carrierClearAt
	if m.opt.PerStream {
		m.streams.AdoptFrom(w.streams)
	} else {
		m.fifo.AdoptFrom(&w.fifo)
	}
	m.attempts = copyMap(w.attempts)
	m.seq = w.seq
	m.cur = w.cur
	m.curDst = w.curDst
	m.expectSrc = w.expectSrc
	m.tx, m.txHead, m.txWantAck = w.tx, w.txHead, w.txWantAck
	m.rrtsFor, m.rrtsLen, m.hasRRTS, m.rrtsSeen = w.rrtsFor, w.rrtsLen, w.hasRRTS, w.rrtsSeen
	m.lastAcked = copyMap(w.lastAcked)
	m.everAcked = copyMap(w.everAcked)
	m.seenESN = copyMap(w.seenESN)
	m.pending = copyMap(w.pending)
	m.pendingRetries = copyMap(w.pendingRetries)
	m.stats = w.stats

	var fn func()
	switch w.st {
	case Contend:
		fn = m.onContendTimeout
	case WFCTS:
		fn = m.onCTSTimeout
	case WFACK:
		fn = m.onACKTimeout
	case WFDS, WFData, WFRTS:
		fn = m.onExpectTimeout
	case Quiet:
		fn = m.onQuietEnd
	case SendData:
		switch w.tx {
		case txMcastRTS:
			fn = m.onMcastRTSSent
		case txMcastData:
			fn = m.onMcastDataSent
		case txDS:
			fn = m.onDSSent
		case txData:
			fn = m.onDataAirDone
		case txCtrl:
			fn = m.onCtrlSent
		default:
			return fmt.Errorf("macaw: adopt: SendData with tx kind %d has no timer owner", w.tx)
		}
	}
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("macaw: adopt: live timer in state %s, which never arms one", w.st)
	}
	m.timer = m.env.Sim.Readopt(w.timer, fn)
	return nil
}

func copyMap[K frame.NodeID, V int | uint32 | bool | *mac.Packet](src map[K]V) map[K]V {
	dst := make(map[K]V, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// BackoffPolicy exposes the live policy for barrier-time retuning (sweep
// deltas).
func (m *MACAW) BackoffPolicy() backoff.Policy { return m.pol }

// SetMaxRetries rewrites the per-packet retry limit, effective from the next
// failed attempt.
func (m *MACAW) SetMaxRetries(n int) { m.env.Cfg.MaxRetries = n }
