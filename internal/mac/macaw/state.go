package macaw

import (
	"fmt"
	"sort"

	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM and bookkeeping state for the
// snapshot inventory (DESIGN.md §14). Per-destination maps are dumped in
// ascending destination order so the dump is canonical; the backoff policy
// appends its own table when it supports the hook.
func (m *MACAW) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "macaw st=%s timer=%d timerCancelled=%t defer=%d carrierClear=%d seq=%d halted=%t\n",
		m.st, m.timer.When(), m.timer.Cancelled(), m.deferUntil, m.carrierClearAt, m.seq, m.halted)
	b = fmt.Appendf(b, "macaw.exchange cur={dst=%d rrts=%t} curDst=%d expectSrc=%d rrtsFor=%d rrtsLen=%d hasRRTS=%t rrtsSeen=%d tx=%d wantAck=%t",
		m.cur.dst, m.cur.rrts, m.curDst, m.expectSrc, m.rrtsFor, m.rrtsLen, m.hasRRTS, m.rrtsSeen, m.tx, m.txWantAck)
	b = mac.AppendPacketRef(b, "txHead", m.txHead)
	b = append(b, '\n')
	if m.opt.PerStream {
		b = m.streams.AppendState(b)
	} else {
		b = m.fifo.AppendState(b)
	}
	b = appendIntMap(b, "attempts", m.attempts)
	b = appendU32Map(b, "lastAcked", m.lastAcked)
	b = appendBoolMap(b, "everAcked", m.everAcked)
	b = appendU32Map(b, "seenESN", m.seenESN)
	b = appendPendingMap(b, m.pending)
	b = appendIntMap(b, "pendingRetries", m.pendingRetries)
	if a, ok := m.pol.(interface{ AppendState([]byte) []byte }); ok {
		b = a.AppendState(b)
	}
	b = m.stats.AppendState(b)
	return b
}

func sortedIDs[V any](m map[frame.NodeID]V) []frame.NodeID {
	ids := make([]frame.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func appendIntMap(b []byte, name string, m map[frame.NodeID]int) []byte {
	b = fmt.Appendf(b, "macaw.%s n=%d", name, len(m))
	for _, id := range sortedIDs(m) {
		b = fmt.Appendf(b, " %d=%d", id, m[id])
	}
	return append(b, '\n')
}

func appendU32Map(b []byte, name string, m map[frame.NodeID]uint32) []byte {
	b = fmt.Appendf(b, "macaw.%s n=%d", name, len(m))
	for _, id := range sortedIDs(m) {
		b = fmt.Appendf(b, " %d=%d", id, m[id])
	}
	return append(b, '\n')
}

func appendBoolMap(b []byte, name string, m map[frame.NodeID]bool) []byte {
	b = fmt.Appendf(b, "macaw.%s n=%d", name, len(m))
	for _, id := range sortedIDs(m) {
		b = fmt.Appendf(b, " %d=%t", id, m[id])
	}
	return append(b, '\n')
}

func appendPendingMap(b []byte, m map[frame.NodeID]*mac.Packet) []byte {
	b = fmt.Appendf(b, "macaw.pending n=%d", len(m))
	for _, id := range sortedIDs(m) {
		p := m[id]
		b = fmt.Appendf(b, " %d={size=%d seq=%d enq=%d}", id, p.Size, p.Seq(), p.Enqueued)
	}
	return append(b, '\n')
}
