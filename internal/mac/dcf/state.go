package dcf

import (
	"fmt"
	"sort"

	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14). Field order follows the repository convention:
// FSM scalars, then timer + cancellation flag, then seq/halted, then the
// in-flight packet reference, then maps (sorted), queue, and counters.
func (d *DCF) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "dcf st=%s cw=%d bo=%d src=%d lrc=%d nav=%d peer=%d peerBytes=%d peerSeq=%d timer=%d timerCancelled=%t tk=%d seq=%d halted=%t",
		d.st, d.cw, d.bo, d.src, d.lrc, d.nav, d.peer, d.peerBytes, d.peerSeq,
		d.timer.When(), d.timer.Cancelled(), d.tk, d.seq, d.halted)
	b = mac.AppendPacketRef(b, "sending", d.sending)
	b = append(b, '\n')
	b = appendSeqMap(b, "dcf.lastSeq", d.lastSeq)
	b = d.q.AppendState(b)
	b = d.stats.AppendState(b)
	return b
}

// appendSeqMap dumps a per-source sequence map in sorted key order.
func appendSeqMap(b []byte, name string, m map[frame.NodeID]uint32) []byte {
	keys := make([]frame.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = fmt.Appendf(b, "%s n=%d", name, len(keys))
	for _, k := range keys {
		b = fmt.Appendf(b, " %d=%d", k, m[k])
	}
	return append(b, '\n')
}
