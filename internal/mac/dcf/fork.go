package dcf

import (
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into d, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15). Queued packets are shared — a mac.Packet
// is immutable once enqueued — and the pending state timer is re-armed at its
// exact (when, prio, seq) ordering key. The timer kind, not the FSM state,
// discriminates the callback: WFACK chains a broadcast-airtime timer and an
// ACK timeout, and SendACK chains a SIFS gap and an ACK airtime, so state
// alone is ambiguous. It fails closed on anything this path cannot reproduce.
func (d *DCF) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*DCF)
	if !ok {
		return fmt.Errorf("dcf: adopt: engine is %T here vs %T in warm twin", d, peer)
	}
	if w.halted || d.halted {
		return fmt.Errorf("dcf: adopt: halted instance (warm=%t fork=%t)", w.halted, d.halted)
	}
	if d.opt != w.opt {
		return fmt.Errorf("dcf: adopt: options differ (%+v here vs %+v in warm twin)", d.opt, w.opt)
	}
	d.st = w.st
	d.q.AdoptFrom(&w.q)
	d.cw = w.cw
	d.bo = w.bo
	d.src = w.src
	d.lrc = w.lrc
	d.nav = w.nav
	d.sending = w.sending
	d.peer = w.peer
	d.peerBytes = w.peerBytes
	d.peerSeq = w.peerSeq
	d.lastSeq = make(map[frame.NodeID]uint32, len(w.lastSeq))
	for k, v := range w.lastSeq {
		d.lastSeq[k] = v
	}
	d.seq = w.seq
	d.stats = w.stats

	d.tk = w.tk
	var fn func()
	if w.tk != tNone {
		fn = d.timerFn(w.tk)
	}
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("dcf: adopt: live timer with kind %d, which has no continuation", w.tk)
	}
	d.timer = d.env.Sim.Readopt(w.timer, fn)
	return nil
}

// CWBounds returns the live CWmin/CWmax pair — the sweep delta layer reads
// them to validate a cw.* delta against every station before applying it to
// any.
func (d *DCF) CWBounds() (min, max int) { return d.opt.CWMin, d.opt.CWMax }

// SetCWMin rewrites the minimum contention window at a sweep barrier. It
// fails closed when v would invert the window bounds — the sweep delta layer
// surfaces this as a validation error rather than clamping silently.
func (d *DCF) SetCWMin(v int) error {
	if v < 1 {
		return fmt.Errorf("dcf: cw.min %d below floor 1", v)
	}
	if v > d.opt.CWMax {
		return fmt.Errorf("dcf: cw.min %d above cw.max %d", v, d.opt.CWMax)
	}
	d.opt.CWMin = v
	if d.cw < v {
		d.cw = v
	}
	return nil
}

// SetCWMax rewrites the maximum contention window at a sweep barrier, failing
// closed when v would fall below the configured minimum.
func (d *DCF) SetCWMax(v int) error {
	if v < d.opt.CWMin {
		return fmt.Errorf("dcf: cw.max %d below cw.min %d", v, d.opt.CWMin)
	}
	d.opt.CWMax = v
	if d.cw > v {
		d.cw = v
	}
	return nil
}

// SetShortRetry rewrites dot11ShortRetryLimit, effective from the next failed
// RTS attempt.
func (d *DCF) SetShortRetry(n int) error {
	if n < 1 {
		return fmt.Errorf("dcf: retry.short %d below floor 1", n)
	}
	d.opt.ShortRetry = n
	return nil
}

// SetLongRetry rewrites dot11LongRetryLimit, effective from the next failed
// data attempt.
func (d *DCF) SetLongRetry(n int) error {
	if n < 1 {
		return fmt.Errorf("dcf: retry.long %d below floor 1", n)
	}
	d.opt.LongRetry = n
	return nil
}
