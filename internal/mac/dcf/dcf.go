// Package dcf implements the IEEE 802.11 Distributed Coordination Function —
// the protocol that historically displaced MACAW. It is CSMA/CA with the
// pieces MACAW lacks or does differently:
//
//   - NAV virtual carrier sense: every overheard RTS/CTS/DATA frame reserves
//     the medium for the remainder of its exchange, so stations defer on
//     decoded headers, not only on raw carrier.
//   - SIFS/DIFS interframe spacing: responses (CTS, DATA after CTS, ACK)
//     follow after a short interframe space; fresh contention waits a DIFS
//     plus the backoff countdown.
//   - CWmin/CWmax binary exponential backoff: the contention window starts
//     at CWmin, doubles (cw' = 2·cw+1) on every failed attempt up to CWmax,
//     and resets to CWmin on success — per station, with no MILD decay and
//     no backoff copying.
//   - Short/long retry limits: RTS failures count against the short limit,
//     data (post-CTS) failures against the long limit; either limit
//     exhausting drops the head packet and resets the window.
//
// The engine keeps the repository's one-state-timer discipline: every
// non-idle state has exactly one pending timer, discriminated for forking by
// a timer kind rather than by state alone. Backoff freezing is conservative:
// when the attempt timer finds the medium busy (carrier or NAV), the drawn
// countdown is kept and re-waited in full after the medium clears, which
// over-defers slightly but never under-defers.
package dcf

import (
	"fmt"

	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// State is a DCF FSM state.
type State int

// DCF states.
const (
	// Idle: nothing queued, nothing owed.
	Idle State = iota
	// Backoff: DIFS + backoff countdown pending toward the next attempt.
	Backoff
	// WFCTS: RTS radiated, awaiting the CTS.
	WFCTS
	// SendData: CTS in hand, SIFS gap before the DATA frame.
	SendData
	// WFACK: DATA radiated (unicast, or on the air for broadcast),
	// awaiting the ACK.
	WFACK
	// SendCTS: RTS received, SIFS gap before the CTS reply.
	SendCTS
	// WFData: CTS radiated, awaiting the announced DATA frame.
	WFData
	// SendACK: DATA delivered, SIFS gap before (then airtime of) the ACK.
	SendACK
)

var stateNames = [...]string{"IDLE", "BACKOFF", "WFCTS", "SENDDATA", "WFACK", "SENDCTS", "WFDATA", "SENDACK"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// tKind discriminates which continuation the single state timer carries; the
// fork path re-arms by kind (several states chain two timers).
type tKind int

const (
	tNone tKind = iota
	tAttempt
	tCTSTimeout
	tSendData
	tACKTimeout
	tSendCTS
	tDataTimeout
	tSendACK
	tAckAir
	tBcastAir
)

// Options configures a DCF instance.
type Options struct {
	// CWMin and CWMax bound the contention window (defaults 15 and 1023,
	// the 802.11 DSSS values). The backoff is drawn uniformly from
	// [0, cw]; cw doubles as 2·cw+1 on failure and resets to CWMin on
	// success.
	CWMin, CWMax int
	// ShortRetry is dot11ShortRetryLimit: RTS attempts per packet before
	// the packet is dropped (default 7).
	ShortRetry int
	// LongRetry is dot11LongRetryLimit: post-CTS data attempts per packet
	// before the packet is dropped (default 4).
	LongRetry int
	// SIFS is the short interframe space separating the frames of one
	// exchange (default 100µs — the paper's radio has a null turnaround,
	// so the SIFS models only the processing gap).
	SIFS sim.Duration
}

func (o Options) withDefaults() Options {
	if o.CWMin <= 0 {
		o.CWMin = 15
	}
	if o.CWMax <= 0 {
		o.CWMax = 1023
	}
	if o.ShortRetry <= 0 {
		o.ShortRetry = 7
	}
	if o.LongRetry <= 0 {
		o.LongRetry = 4
	}
	if o.SIFS <= 0 {
		o.SIFS = 100 * sim.Microsecond
	}
	return o
}

// DCF is one station's protocol instance.
type DCF struct {
	env  *mac.Env
	opt  Options
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st State
	q  mac.Queue
	// cw is the live contention window; the countdown is drawn from [0, cw].
	cw int
	// bo is the drawn countdown in slots, kept across busy deferrals.
	bo int
	// src and lrc are the short (RTS) and long (data) retry counters for
	// the head packet.
	src, lrc int
	// nav is the virtual-carrier reservation: the medium is considered
	// busy until this time regardless of physical carrier.
	nav   sim.Time
	timer sim.Event
	tk    tKind
	// sending references the head packet from CTS receipt until its
	// exchange completes (still queued; success or drop pops it).
	sending *mac.Packet
	// peer/peerBytes/peerSeq track the responder side: the RTS sender owed
	// a CTS, the data size its RTS announced, and the exchange's sequence
	// number.
	peer      frame.NodeID
	peerBytes uint16
	peerSeq   uint32
	// lastSeq records the last delivered sequence number per source so a
	// retransmission after a lost ACK is re-acknowledged, not re-delivered.
	lastSeq map[frame.NodeID]uint32
	seq     uint32
	halted  bool // crashed instance: every entry point is a no-op
	stats   mac.Stats
}

// New returns a DCF instance bound to env's radio. The link-layer sequence
// origin is drawn randomly per lifetime, so a rebooted station cannot collide
// with its pre-crash numbering (the same defense macaw uses).
func New(env *mac.Env, opt Options) *DCF {
	opt = opt.withDefaults()
	d := &DCF{
		env: env, opt: opt, lobs: mac.AsLossObserver(env.Obs),
		cw:      opt.CWMin,
		lastSeq: make(map[frame.NodeID]uint32),
		seq:     env.Rand.Uint32() & 0x3fffffff,
	}
	env.Radio.SetHandler(d)
	return d
}

// State returns the current FSM state.
func (d *DCF) State() State { return d.st }

// CW returns the live contention window (tests and the sweep oracle).
func (d *DCF) CW() int { return d.cw }

// Options returns the configured options (post-default).
func (d *DCF) Options() Options { return d.opt }

// TimerAt returns the firing time of the pending state timer, or -1 when no
// timer is armed.
func (d *DCF) TimerAt() sim.Time {
	if d.timer.IsZero() || d.timer.Cancelled() {
		return -1
	}
	return d.timer.When()
}

// FSMState implements mac.Inspector.
func (d *DCF) FSMState() string { return d.st.String() }

// TimerPending implements mac.Inspector.
func (d *DCF) TimerPending() bool { return d.TimerAt() >= 0 }

// TimerWhen implements mac.Inspector.
func (d *DCF) TimerWhen() sim.Time { return d.TimerAt() }

// Halt implements mac.Halter: cancel the state timer, drop the queue
// (reported with DropDisabled), and turn every subsequent entry point into a
// no-op so a restarted MAC can own the radio without interference.
func (d *DCF) Halt() {
	if d.halted {
		return
	}
	d.halted = true
	d.clearTimer()
	d.st = Idle
	d.sending = nil
	for p := d.q.Pop(); p != nil; p = d.q.Pop() {
		d.stats.Drops++
		d.noteDrop(p.Dst, mac.DropDisabled)
		d.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (d *DCF) Halted() bool { return d.halted }

// Protocol implements mac.Engine.
func (d *DCF) Protocol() string { return "dcf" }

// Stats implements mac.MAC.
func (d *DCF) Stats() mac.Stats { return d.stats }

// QueueLen implements mac.MAC.
func (d *DCF) QueueLen() int { return d.q.Len() }

// Enqueue implements mac.MAC.
func (d *DCF) Enqueue(p *mac.Packet) {
	if d.halted {
		d.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	d.seq++
	p.SetSeq(d.seq)
	p.Enqueued = d.env.Sim.Now()
	d.q.Push(p)
	d.noteQueue("push", p.Dst)
	if d.st == Idle {
		d.startContention()
	}
}

// timerFn maps a timer kind to its continuation.
func (d *DCF) timerFn(k tKind) func() {
	switch k {
	case tAttempt:
		return d.attempt
	case tCTSTimeout:
		return d.onCTSTimeout
	case tSendData:
		return d.sendData
	case tACKTimeout:
		return d.onACKTimeout
	case tSendCTS:
		return d.sendCTS
	case tDataTimeout:
		return d.onDataTimeout
	case tSendACK:
		return d.sendACK
	case tAckAir:
		return d.onAckAirDone
	case tBcastAir:
		return d.onBcastAirDone
	}
	return nil
}

func (d *DCF) setTimer(dur sim.Duration, k tKind) {
	d.timer.Cancel()
	d.tk = k
	d.timer = d.env.Sim.After(dur, d.timerFn(k))
	if d.env.Obs != nil {
		d.env.Obs.ObserveTimer(d.timer.When())
	}
}

func (d *DCF) clearTimer() {
	d.timer.Cancel()
	d.timer = sim.Event{}
	d.tk = tNone
	if d.env.Obs != nil {
		d.env.Obs.ObserveTimer(-1)
	}
}

// fired marks the state timer consumed at the top of every timer callback.
func (d *DCF) fired() {
	d.timer = sim.Event{}
	d.tk = tNone
}

// transmit radiates f, notifying the conformance observer first.
func (d *DCF) transmit(f *frame.Frame) sim.Duration {
	if d.env.Obs != nil {
		d.env.Obs.ObserveTx(f)
	}
	return d.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (d *DCF) setState(s State) {
	if d.env.Obs != nil && s != d.st {
		d.env.Obs.ObserveState(d.st.String(), s.String())
	}
	d.st = s
}

// noteQueue reports a queue operation to the observer.
func (d *DCF) noteQueue(op string, dst frame.NodeID) {
	if d.env.Obs != nil {
		d.env.Obs.ObserveQueue(op, dst, d.q.Len())
	}
}

// noteRetry reports a retried attempt to the loss observer.
func (d *DCF) noteRetry(dst frame.NodeID) {
	if d.lobs != nil {
		d.lobs.ObserveRetry(dst)
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (d *DCF) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if d.lobs != nil {
		d.lobs.ObserveDrop(dst, reason)
	}
}

// slot returns the contention slot time.
func (d *DCF) slot() sim.Duration { return d.env.Cfg.Slot() }

// difs is the distributed interframe space: SIFS plus two slots.
func (d *DCF) difs() sim.Duration { return d.opt.SIFS + 2*d.slot() }

// growCW doubles the contention window: cw' = min(2·cw+1, CWMax).
func (d *DCF) growCW() {
	d.cw = 2*d.cw + 1
	if d.cw > d.opt.CWMax {
		d.cw = d.opt.CWMax
	}
}

// resetCW returns the window to CWMin and zeroes both retry counters.
func (d *DCF) resetCW() {
	d.cw = d.opt.CWMin
	d.src, d.lrc = 0, 0
}

// startContention draws a fresh backoff countdown from the live window and
// arms the attempt.
func (d *DCF) startContention() {
	if d.q.Peek() == nil {
		d.setState(Idle)
		return
	}
	d.bo = d.env.Rand.Intn(d.cw + 1)
	d.armAttempt()
}

// armAttempt schedules the attempt a DIFS plus the (kept) countdown past the
// later of now and the NAV reservation.
func (d *DCF) armAttempt() {
	d.setState(Backoff)
	now := d.env.Sim.Now()
	base := now
	if d.nav > base {
		base = d.nav
	}
	d.setTimer(base-now+d.difs()+sim.Duration(d.bo)*d.slot(), tAttempt)
}

// attempt fires at the end of the countdown: if the medium is busy the
// countdown is kept and re-armed (conservative freeze), otherwise the RTS —
// or a broadcast DATA frame, which 802.11 sends without RTS or ACK — goes on
// the air.
func (d *DCF) attempt() {
	d.fired()
	head := d.q.Peek()
	if head == nil {
		d.setState(Idle)
		return
	}
	if d.env.Radio.CarrierBusy() || d.nav > d.env.Sim.Now() {
		d.armAttempt()
		return
	}
	if head.Dst == frame.Broadcast {
		data := &frame.Frame{Type: frame.DATA, Src: d.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
		air := d.transmit(data)
		d.sending = head
		d.setState(WFACK)
		d.setTimer(air, tBcastAir)
		return
	}
	rts := &frame.Frame{Type: frame.RTS, Src: d.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq()}
	air := d.transmit(rts)
	d.stats.RTSSent++
	d.setState(WFCTS)
	d.setTimer(air+d.opt.SIFS+d.env.Cfg.CtrlTime()+d.env.Cfg.Margin, tCTSTimeout)
}

// onBcastAirDone completes a broadcast DATA frame (no ACK in 802.11).
func (d *DCF) onBcastAirDone() {
	d.fired()
	head := d.sending
	d.sending = nil
	d.q.Pop()
	d.noteQueue("pop", head.Dst)
	d.resetCW()
	d.stats.DataSent++
	d.env.Callbacks.NotifySent(head)
	d.startContention()
}

// onCTSTimeout charges a failed RTS against the short retry limit and doubles
// the window.
func (d *DCF) onCTSTimeout() {
	d.fired()
	d.src++
	d.stats.Retries++
	d.growCW()
	if head := d.q.Peek(); head != nil {
		d.noteRetry(head.Dst)
		if d.src > d.opt.ShortRetry {
			d.dropHead(head)
		}
	}
	d.startContention()
}

// onACKTimeout charges a failed data transmission against the long retry
// limit and doubles the window; the retry restarts from the RTS.
func (d *DCF) onACKTimeout() {
	d.fired()
	d.sending = nil
	d.lrc++
	d.stats.Retries++
	d.growCW()
	if head := d.q.Peek(); head != nil {
		d.noteRetry(head.Dst)
		if d.lrc > d.opt.LongRetry {
			d.dropHead(head)
		}
	}
	d.startContention()
}

// dropHead abandons the head packet at a retry limit and resets the window
// (802.11 resets CW after a drop exactly as after a success).
func (d *DCF) dropHead(head *mac.Packet) {
	d.q.Pop()
	d.noteQueue("drop", head.Dst)
	d.resetCW()
	d.stats.Drops++
	d.noteDrop(head.Dst, mac.DropRetries)
	d.env.Callbacks.NotifyDropped(head, mac.DropRetries)
}

// sendData radiates the head DATA frame a SIFS after the CTS arrived.
func (d *DCF) sendData() {
	d.fired()
	head := d.sending
	data := &frame.Frame{Type: frame.DATA, Src: d.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
	air := d.transmit(data)
	d.setState(WFACK)
	d.setTimer(air+d.opt.SIFS+d.env.Cfg.CtrlTime()+d.env.Cfg.Margin, tACKTimeout)
}

// sendCTS radiates the CTS a SIFS after the granted RTS.
func (d *DCF) sendCTS() {
	d.fired()
	cts := &frame.Frame{Type: frame.CTS, Src: d.env.ID(), Dst: d.peer, DataBytes: d.peerBytes, Seq: d.peerSeq}
	air := d.transmit(cts)
	d.stats.CTSSent++
	d.setState(WFData)
	d.setTimer(air+d.opt.SIFS+d.env.Cfg.DataTime(int(d.peerBytes))+d.env.Cfg.Margin, tDataTimeout)
}

// onDataTimeout gives up on a granted exchange whose DATA never arrived.
func (d *DCF) onDataTimeout() {
	d.fired()
	d.resume()
}

// sendACK radiates the ACK a SIFS after the DATA frame.
func (d *DCF) sendACK() {
	d.fired()
	ack := &frame.Frame{Type: frame.ACK, Src: d.env.ID(), Dst: d.peer, Seq: d.peerSeq}
	air := d.transmit(ack)
	d.stats.ACKSent++
	d.setTimer(air, tAckAir)
}

// onAckAirDone completes the responder side of an exchange.
func (d *DCF) onAckAirDone() {
	d.fired()
	d.resume()
}

// resume returns to contention (fresh draw) or idle after responder duty or
// an abandoned grant.
func (d *DCF) resume() {
	d.startContention()
}

// deliver hands a DATA payload up unless it is a retransmission of the last
// delivered frame from that source (the ACK was lost, not the data).
func (d *DCF) deliver(f *frame.Frame) {
	if last, ok := d.lastSeq[f.Src]; ok && last == f.Seq {
		return
	}
	d.lastSeq[f.Src] = f.Seq
	d.stats.DataReceived++
	if d.env.Obs != nil {
		d.env.Obs.ObserveDeliver(f)
	}
	d.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
}

// updateNAV extends the virtual-carrier reservation from an overheard frame:
// the remainder of the exchange the frame announces, measured from its end
// (receptions complete at frame end, so now is the frame boundary).
func (d *DCF) updateNAV(f *frame.Frame) {
	sifs, ctrl := d.opt.SIFS, d.env.Cfg.CtrlTime()
	var resv sim.Duration
	switch f.Type {
	case frame.RTS:
		resv = 3*sifs + ctrl + d.env.Cfg.DataTime(int(f.DataBytes)) + ctrl
	case frame.CTS:
		resv = 2*sifs + d.env.Cfg.DataTime(int(f.DataBytes)) + ctrl
	case frame.DATA:
		resv = sifs + ctrl
	default:
		return
	}
	if until := d.env.Sim.Now() + resv; until > d.nav {
		d.nav = until
	}
}

// RadioCarrier implements phy.Handler; physical carrier is polled at attempt
// time (the NAV covers decodable traffic).
func (d *DCF) RadioCarrier(bool) {}

// RadioReceive implements phy.Handler.
func (d *DCF) RadioReceive(f *frame.Frame) {
	if d.halted {
		return
	}
	if d.env.Obs != nil {
		d.env.Obs.ObserveRx(f)
	}
	if f.Dst != d.env.ID() {
		if f.Dst == frame.Broadcast && f.Type == frame.DATA {
			d.deliver(f)
			return
		}
		d.updateNAV(f)
		return
	}
	switch f.Type {
	case frame.RTS:
		d.onRTS(f)
	case frame.CTS:
		d.onCTS(f)
	case frame.DATA:
		d.onData(f)
	case frame.ACK:
		d.onACK(f)
	}
}

// onRTS grants the exchange when the station is available (idle or counting
// down, no NAV reservation, not transmitting); a repeated RTS from the peer
// currently being waited on re-grants immediately.
func (d *DCF) onRTS(f *frame.Frame) {
	avail := d.st == Idle || d.st == Backoff || (d.st == WFData && f.Src == d.peer)
	if !avail || d.env.Radio.Transmitting() {
		return
	}
	if d.st != WFData && d.nav > d.env.Sim.Now() {
		return
	}
	d.peer, d.peerBytes, d.peerSeq = f.Src, f.DataBytes, f.Seq
	d.setState(SendCTS)
	d.setTimer(d.opt.SIFS, tSendCTS)
}

// onCTS advances the sender a SIFS toward the DATA frame.
func (d *DCF) onCTS(f *frame.Frame) {
	if d.st != WFCTS {
		return
	}
	head := d.q.Peek()
	if head == nil || f.Src != head.Dst || f.Seq != head.Seq() {
		return
	}
	d.clearTimer()
	d.sending = head
	d.setState(SendData)
	d.setTimer(d.opt.SIFS, tSendData)
}

// onData delivers and schedules the ACK when the DATA answers this station's
// grant; out-of-exchange unicast data is delivered without an ACK (the sender
// retries through a proper exchange and the duplicate is suppressed).
func (d *DCF) onData(f *frame.Frame) {
	if d.st == WFData && f.Src == d.peer {
		d.clearTimer()
		d.peerSeq = f.Seq
		d.deliver(f)
		d.setState(SendACK)
		d.setTimer(d.opt.SIFS, tSendACK)
		return
	}
	d.deliver(f)
}

// onACK completes the head packet's exchange.
func (d *DCF) onACK(f *frame.Frame) {
	if d.st != WFACK {
		return
	}
	head := d.q.Peek()
	if head == nil || f.Src != head.Dst || f.Seq != head.Seq() {
		return
	}
	d.clearTimer()
	d.sending = nil
	d.q.Pop()
	d.noteQueue("pop", head.Dst)
	d.resetCW()
	d.stats.DataSent++
	d.env.Callbacks.NotifySent(head)
	d.startContention()
}
