package dcf

import (
	"strings"
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

type station struct {
	m         *DCF
	delivered int
	sent      int
	dropped   int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, medium: phy.New(s, phy.DefaultParams())}
}

func (w *world) add(id frame.NodeID, pos geom.Vec3, opt Options) *station {
	st := &station{}
	radio := w.medium.Attach(id, pos, nil)
	env := &mac.Env{
		Sim: w.s, Radio: radio, Rand: w.s.NewRand(), Cfg: mac.DefaultConfig(),
		Callbacks: mac.Callbacks{
			Deliver: func(frame.NodeID, []byte) { st.delivered++ },
			Sent:    func(*mac.Packet) { st.sent++ },
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	st.m = New(env, opt)
	return st
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: 512, Payload: []byte("x")}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Idle: "IDLE", Backoff: "BACKOFF", WFCTS: "WFCTS", SendData: "SENDDATA",
		WFACK: "WFACK", SendCTS: "SENDCTS", WFData: "WFDATA", SendACK: "SENDACK",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%v = %q want %q", s, s.String(), n)
		}
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state")
	}
}

func TestFourWayExchangeDelivers(t *testing.T) {
	w := newWorld(1)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{})
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if b.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered=%d sent=%d", b.delivered, a.sent)
	}
	if a.m.State() != Idle || b.m.State() != Idle {
		t.Fatalf("states = %v/%v, want IDLE/IDLE", a.m.State(), b.m.State())
	}
	st := a.m.Stats()
	if st.RTSSent != 1 || st.DataSent != 1 {
		t.Fatalf("RTSSent=%d DataSent=%d, want 1/1", st.RTSSent, st.DataSent)
	}
	if b.m.Stats().CTSSent != 1 || b.m.Stats().ACKSent != 1 {
		t.Fatalf("receiver CTSSent=%d ACKSent=%d, want 1/1", b.m.Stats().CTSSent, b.m.Stats().ACKSent)
	}
	if a.m.CW() != a.m.Options().CWMin {
		t.Fatalf("cw=%d after success, want CWMin %d", a.m.CW(), a.m.Options().CWMin)
	}
}

func TestHiddenTerminalsResolved(t *testing.T) {
	// A and C cannot hear each other; the RTS/CTS + NAV exchange must still
	// get almost everything through to B.
	w := newWorld(2)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(8, 0, 6), Options{})
	c := w.add(3, geom.V(16, 0, 6), Options{})
	for i := 0; i < 50; i++ {
		a.m.Enqueue(pkt(2))
		c.m.Enqueue(pkt(2))
	}
	w.s.Run(60 * sim.Second)
	if b.delivered < 95 {
		t.Fatalf("delivered %d of 100 across hidden terminals", b.delivered)
	}
	if a.dropped+c.dropped > 5 {
		t.Fatalf("drops a=%d c=%d", a.dropped, c.dropped)
	}
}

func TestShortRetryLimitDropsAndResetsCW(t *testing.T) {
	w := newWorld(3)
	a := w.add(1, geom.V(0, 0, 6), Options{ShortRetry: 3})
	a.m.Enqueue(pkt(9)) // nobody there: every RTS times out
	w.s.Run(60 * sim.Second)
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
	// 1 initial attempt + 3 retries.
	if got := a.m.Stats().RTSSent; got != 4 {
		t.Fatalf("RTSSent = %d, want 4", got)
	}
	// 802.11 resets the window when the packet is discarded.
	if a.m.CW() != a.m.Options().CWMin {
		t.Fatalf("cw=%d after drop, want CWMin %d", a.m.CW(), a.m.Options().CWMin)
	}
	if a.m.State() != Idle {
		t.Fatalf("state = %v", a.m.State())
	}
}

func TestBroadcastSkipsHandshake(t *testing.T) {
	w := newWorld(4)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{})
	c := w.add(3, geom.V(3, 0, 6), Options{})
	a.m.Enqueue(pkt(frame.Broadcast))
	w.s.Run(1 * sim.Second)
	if b.delivered != 1 || c.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered b=%d c=%d sent=%d", b.delivered, c.delivered, a.sent)
	}
	st := a.m.Stats()
	if st.RTSSent != 0 || st.DataSent != 1 {
		t.Fatalf("RTSSent=%d DataSent=%d, want 0/1 for broadcast", st.RTSSent, st.DataSent)
	}
	if b.m.Stats().ACKSent != 0 || c.m.Stats().ACKSent != 0 {
		t.Fatal("broadcast data must not be ACKed")
	}
}

func TestDupSuppressionOnRetriedData(t *testing.T) {
	// Run the same granted exchange twice with one seq — the retry a sender
	// makes when the ACK (not the data) was lost. The receiver must deliver
	// once but ACK both exchanges.
	w := newWorld(5)
	b := w.add(2, geom.V(6, 0, 6), Options{})
	rts := &frame.Frame{Type: frame.RTS, Src: 1, Dst: 2, DataBytes: 512, Seq: 7}
	data := &frame.Frame{Type: frame.DATA, Src: 1, Dst: 2, DataBytes: 512, Seq: 7, Payload: []byte("x")}
	for round := 0; round < 2; round++ {
		b.m.RadioReceive(rts)
		w.s.Run(w.s.Now() + 2*sim.Millisecond) // CTS radiated, now in WFDATA
		if b.m.State() != WFData {
			t.Fatalf("round %d: state = %v after RTS, want WFDATA", round, b.m.State())
		}
		b.m.RadioReceive(data)
		w.s.Run(w.s.Now() + 100*sim.Millisecond) // ACK radiated
	}
	if b.delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (dup suppressed)", b.delivered)
	}
	if b.m.Stats().ACKSent != 2 {
		t.Fatalf("ACKSent = %d, want 2 (retry still ACKed)", b.m.Stats().ACKSent)
	}
}

func TestQueueDrains(t *testing.T) {
	w := newWorld(6)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{})
	for i := 0; i < 10; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(20 * sim.Second)
	if b.delivered != 10 || a.m.QueueLen() != 0 {
		t.Fatalf("delivered=%d queue=%d", b.delivered, a.m.QueueLen())
	}
}

func TestHaltDrainsQueueAndSilences(t *testing.T) {
	w := newWorld(7)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	w.add(2, geom.V(6, 0, 6), Options{})
	for i := 0; i < 3; i++ {
		a.m.Enqueue(pkt(2))
	}
	a.m.Halt()
	if !a.m.Halted() || a.m.QueueLen() != 0 || a.m.State() != Idle {
		t.Fatalf("halted=%t queue=%d state=%v", a.m.Halted(), a.m.QueueLen(), a.m.State())
	}
	if a.dropped != 3 {
		t.Fatalf("dropped = %d, want 3", a.dropped)
	}
	if a.m.TimerPending() {
		t.Fatal("timer still pending after halt")
	}
	a.m.Enqueue(pkt(2)) // must be refused
	w.s.Run(5 * sim.Second)
	if a.sent != 0 || a.m.Stats().RTSSent != 0 {
		t.Fatal("halted station transmitted")
	}
}

func TestAdoptFromMatchesByteState(t *testing.T) {
	mk := func() (*world, *station, *station) {
		w := newWorld(8)
		a := w.add(1, geom.V(0, 0, 6), Options{})
		b := w.add(2, geom.V(6, 0, 6), Options{})
		return w, a, b
	}
	w1, a1, b1 := mk()
	for i := 0; i < 5; i++ {
		a1.m.Enqueue(pkt(2))
	}
	w1.s.Run(20 * sim.Millisecond) // park mid-traffic

	_, a2, b2 := mk()
	if err := a2.m.AdoptFrom(a1.m); err != nil {
		t.Fatal(err)
	}
	if err := b2.m.AdoptFrom(b1.m); err != nil {
		t.Fatal(err)
	}
	got, want := string(a2.m.AppendState(nil)), string(a1.m.AppendState(nil))
	if got != want {
		t.Fatalf("adopted state diverges:\n got %q\nwant %q", got, want)
	}
	if !strings.HasPrefix(want, "dcf st=") {
		t.Fatalf("state inventory missing protocol prefix: %q", want)
	}
}

func TestAdoptFromRefusesWrongEngineAndOptions(t *testing.T) {
	w := newWorld(9)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	b := w.add(2, geom.V(6, 0, 6), Options{CWMin: 31})
	if err := a.m.AdoptFrom(b.m); err == nil {
		t.Fatal("adopt across differing options succeeded")
	}
	b.m.Halt()
	if err := a.m.AdoptFrom(b.m); err == nil {
		t.Fatal("adopt from a halted twin succeeded")
	}
}

func TestCWRetuneFailsClosedAtBounds(t *testing.T) {
	w := newWorld(10)
	a := w.add(1, geom.V(0, 0, 6), Options{})
	lo, hi := a.m.CWBounds()
	if lo != 15 || hi != 1023 {
		t.Fatalf("default bounds = [%d, %d], want [15, 1023]", lo, hi)
	}
	if err := a.m.SetCWMin(hi); err != nil { // exactly at the ceiling is legal
		t.Fatalf("SetCWMin(%d): %v", hi, err)
	}
	if err := a.m.SetCWMin(hi + 1); err == nil {
		t.Fatal("SetCWMin above cw.max succeeded")
	}
	if err := a.m.SetCWMax(hi - 1); err == nil {
		t.Fatal("SetCWMax below cw.min succeeded")
	}
	if err := a.m.SetCWMax(hi); err != nil { // exactly at the floor is legal
		t.Fatalf("SetCWMax(%d): %v", hi, err)
	}
	if err := a.m.SetShortRetry(0); err == nil {
		t.Fatal("SetShortRetry(0) succeeded")
	}
	if err := a.m.SetLongRetry(0); err == nil {
		t.Fatal("SetLongRetry(0) succeeded")
	}
}

// TestNeverWedgesUnderArbitraryFrames injects random frames and checks the
// engine always drains its queue once injections stop.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	types := []frame.Type{frame.RTS, frame.CTS, frame.DS, frame.DATA, frame.ACK, frame.RRTS, frame.NACK, frame.TOKEN, frame.SIG}
	for seed := int64(1); seed <= 10; seed++ {
		w := newWorld(seed)
		a := w.add(1, geom.V(0, 0, 6), Options{})
		w.add(2, geom.V(6, 0, 6), Options{})
		r := w.s.NewRand()
		for i := 0; i < 3; i++ {
			a.m.Enqueue(pkt(2))
		}
		for i := 0; i < 300; i++ {
			f := &frame.Frame{
				Type:      types[r.Intn(len(types))],
				Src:       frame.NodeID(2 + r.Intn(4)),
				Dst:       frame.NodeID(1 + r.Intn(5)),
				DataBytes: uint16(r.Intn(600)),
				Seq:       uint32(r.Intn(6)),
			}
			if !a.m.env.Radio.Transmitting() {
				a.m.RadioReceive(f)
			}
			w.s.Run(w.s.Now() + sim.Duration(r.Intn(3))*sim.Millisecond)
		}
		w.s.Run(w.s.Now() + 120*sim.Second)
		if a.m.QueueLen() > 0 {
			t.Fatalf("seed %d: %d packets stuck (state %v)", seed, a.m.QueueLen(), a.m.State())
		}
	}
}
