package csma

import (
	"testing"

	"macaw/internal/geom"
	"macaw/internal/mac"
)

// TestDisabledObserverHooksAllocationFree pins the cost side of the
// passivity contract (DESIGN.md §12): with no observer attached, the note
// hooks must be a nil check and nothing else — zero allocations — so
// instrumentation support cannot tax a bare run.
func TestDisabledObserverHooksAllocationFree(t *testing.T) {
	w := newWorld(1)
	st := w.add(1, geom.V(0, 0, 6), Options{})
	if n := testing.AllocsPerRun(100, func() {
		st.m.noteQueue("push", 2)
		st.m.noteRetry(2)
		st.m.noteDrop(2, mac.DropRetries)
	}); n != 0 {
		t.Fatalf("disabled observer hooks allocated %.1f times per call set, want 0", n)
	}
}
