package csma

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/mac"
)

// AdoptFrom implements mac.Engine: it copies the warm twin's mutable protocol
// state into c, which must be a freshly built twin bound to an identically
// built environment (DESIGN.md §15).
// Queued packets are shared — a mac.Packet is immutable once enqueued — and
// the pending state timer is re-armed at its exact (when, prio, seq) ordering
// key. The FSM state discriminates the callback, with one refinement: in
// Sending the timer completes a DATA frame when sending is set and an ACK
// frame when it is nil (the engine maintains exactly that invariant). It
// fails closed on anything this fork path cannot reproduce.
func (c *CSMA) AdoptFrom(peer mac.Engine) error {
	w, ok := peer.(*CSMA)
	if !ok {
		return fmt.Errorf("csma: adopt: engine is %T here vs %T in warm twin", c, peer)
	}
	if w.halted || c.halted {
		return fmt.Errorf("csma: adopt: halted instance (warm=%t fork=%t)", w.halted, c.halted)
	}
	if c.opt.ACK != w.opt.ACK {
		return fmt.Errorf("csma: adopt: options differ (ack=%t here vs %t in warm twin)", c.opt.ACK, w.opt.ACK)
	}
	if err := backoff.Adopt(c.pol, w.pol); err != nil {
		return err
	}
	c.st = w.st
	c.q.AdoptFrom(&w.q)
	c.retries = w.retries
	c.sending = w.sending
	c.seq = w.seq
	c.stats = w.stats

	var fn func()
	switch w.st {
	case Backoff:
		fn = c.attempt
	case Sending:
		if w.sending != nil {
			fn = c.onDataAirDone
		} else {
			fn = c.onAckAirDone
		}
	case WFACK:
		fn = c.onACKTimeout
	}
	if fn == nil && w.timer.Live() {
		return fmt.Errorf("csma: adopt: live timer in state %s, which never arms one", w.st)
	}
	c.timer = c.env.Sim.Readopt(w.timer, fn)
	return nil
}

// BackoffPolicy exposes the live policy for barrier-time retuning (sweep
// deltas).
func (c *CSMA) BackoffPolicy() backoff.Policy { return c.pol }

// SetMaxRetries rewrites the per-packet retry limit, effective from the next
// failed attempt.
func (c *CSMA) SetMaxRetries(n int) { c.env.Cfg.MaxRetries = n }
