package csma

// Regression test for a convention-divergence bug the MAC SPI extraction
// flushed out: the csma Halt path cancelled its state timer directly instead
// of through clearTimer, so the cancellation never reached ObserveTimer and
// an attached trace showed a timer still pending on a halted station.

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// timerObs records every ObserveTimer report.
type timerObs struct{ timers []sim.Time }

func (o *timerObs) ObserveTx(*frame.Frame)                 {}
func (o *timerObs) ObserveRx(*frame.Frame)                 {}
func (o *timerObs) ObserveState(string, string)            {}
func (o *timerObs) ObserveTimer(at sim.Time)               { o.timers = append(o.timers, at) }
func (o *timerObs) ObserveQueue(string, frame.NodeID, int) {}
func (o *timerObs) ObserveDeliver(*frame.Frame)            {}

// TestHaltReportsTimerCancellation pins the fix: Halt on a station with an
// armed backoff timer must report the cancellation, so its last timer
// observation is -1, matching the convention every engine follows.
func TestHaltReportsTimerCancellation(t *testing.T) {
	w := newWorld(21)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
	obs := &timerObs{}
	a.m.env.Obs = obs
	a.m.Enqueue(pkt(9)) // arms the attempt timer toward an absent peer
	w.s.Run(5 * sim.Millisecond)
	if n := len(obs.timers); n == 0 || obs.timers[n-1] < 0 {
		t.Fatalf("precondition: timer observations %v, want an armed timer", obs.timers)
	}
	a.m.Halt()
	if n := len(obs.timers); obs.timers[n-1] != -1 {
		t.Fatalf("timer observations %v: Halt did not report the cancellation", obs.timers)
	}
	if a.m.TimerPending() {
		t.Fatal("timer still pending after Halt")
	}
	_ = mac.DropDisabled // the drain reason is pinned by the fault-injection suite
}
