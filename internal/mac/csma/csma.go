// Package csma implements the carrier-sense baseline that §2.2 of the paper
// argues against: stations sense the channel at the transmitter and send
// data directly, with no RTS-CTS exchange. It exists to demonstrate the
// hidden- and exposed-terminal pathologies that motivate MACA/MACAW.
//
// The variant implemented is non-persistent CSMA with an optional link-level
// ACK (without an ACK the sender has no way to observe hidden-terminal
// collisions at all). Binary exponential backoff spaces retransmissions.
package csma

import (
	"fmt"

	"macaw/internal/backoff"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// State is a CSMA sender state.
type State int

// CSMA states.
const (
	Idle State = iota
	Backoff
	Sending
	WFACK
)

var stateNames = [...]string{"IDLE", "BACKOFF", "SENDING", "WFACK"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Options configures a CSMA instance.
type Options struct {
	// ACK enables the link-level acknowledgement; without it the sender
	// fires and forgets.
	ACK bool
	// Policy is the backoff policy (default single-counter BEB).
	Policy backoff.Policy
}

// CSMA is one station's protocol instance.
type CSMA struct {
	env  *mac.Env
	opt  Options
	pol  backoff.Policy
	lobs mac.LossObserver // optional retry/drop extension of env.Obs

	st      State
	q       mac.Queue
	retries int
	timer   sim.Event
	// sending references the head packet while its DATA frame is on the
	// air (still queued; finish pops it). It stays nil while an ACK is on
	// the air, which is how the two Sending-state timers are told apart.
	sending *mac.Packet
	seq     uint32
	halted  bool // crashed instance: every entry point is a no-op
	stats   mac.Stats
}

// New returns a CSMA instance bound to env's radio.
func New(env *mac.Env, opt Options) *CSMA {
	c := &CSMA{env: env, opt: opt, pol: opt.Policy, lobs: mac.AsLossObserver(env.Obs)}
	if c.pol == nil {
		c.pol = backoff.NewSingle(backoff.NewBEB(), false)
	}
	env.Radio.SetHandler(c)
	return c
}

// State returns the current sender state.
func (c *CSMA) State() State { return c.st }

// TimerAt returns the firing time of the pending state timer, or -1 when no
// timer is armed (introspection for tests and the liveness watchdog).
func (c *CSMA) TimerAt() sim.Time {
	if c.timer.IsZero() || c.timer.Cancelled() {
		return -1
	}
	return c.timer.When()
}

// FSMState implements mac.Inspector.
func (c *CSMA) FSMState() string { return c.st.String() }

// TimerPending implements mac.Inspector.
func (c *CSMA) TimerPending() bool { return c.TimerAt() >= 0 }

// TimerWhen implements mac.Inspector.
func (c *CSMA) TimerWhen() sim.Time { return c.TimerAt() }

// Halt implements mac.Halter: cancel the state timer, drop the queue
// (reported with DropDisabled), and turn every subsequent entry point into a
// no-op so a restarted MAC can own the radio without interference.
func (c *CSMA) Halt() {
	if c.halted {
		return
	}
	c.halted = true
	c.clearTimer()
	c.st = Idle
	c.sending = nil
	for p := c.q.Pop(); p != nil; p = c.q.Pop() {
		c.stats.Drops++
		c.noteDrop(p.Dst, mac.DropDisabled)
		c.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
	}
}

// Halted reports whether Halt has been called.
func (c *CSMA) Halted() bool { return c.halted }

// Protocol implements mac.Engine.
func (c *CSMA) Protocol() string { return "csma" }

// Stats implements mac.MAC.
func (c *CSMA) Stats() mac.Stats { return c.stats }

// QueueLen implements mac.MAC.
func (c *CSMA) QueueLen() int { return c.q.Len() }

// Enqueue implements mac.MAC.
func (c *CSMA) Enqueue(p *mac.Packet) {
	if c.halted {
		c.env.Callbacks.NotifyDropped(p, mac.DropDisabled)
		return
	}
	c.seq++
	p.SetSeq(c.seq)
	p.Enqueued = c.env.Sim.Now()
	c.q.Push(p)
	c.noteQueue("push", p.Dst)
	if c.st == Idle {
		c.schedule()
	}
}

func (c *CSMA) setTimer(d sim.Duration, fn func()) {
	c.timer.Cancel()
	c.timer = c.env.Sim.After(d, fn)
	if c.env.Obs != nil {
		c.env.Obs.ObserveTimer(c.timer.When())
	}
}

func (c *CSMA) clearTimer() {
	c.timer.Cancel()
	c.timer = sim.Event{}
	if c.env.Obs != nil {
		c.env.Obs.ObserveTimer(-1)
	}
}

// transmit radiates f, notifying the conformance observer first.
func (c *CSMA) transmit(f *frame.Frame) sim.Duration {
	if c.env.Obs != nil {
		c.env.Obs.ObserveTx(f)
	}
	return c.env.Radio.Transmit(f)
}

// setState moves the FSM to s, notifying the conformance observer.
func (c *CSMA) setState(s State) {
	if c.env.Obs != nil && s != c.st {
		c.env.Obs.ObserveState(c.st.String(), s.String())
	}
	c.st = s
}

// noteQueue reports a queue operation to the observer.
func (c *CSMA) noteQueue(op string, dst frame.NodeID) {
	if c.env.Obs != nil {
		c.env.Obs.ObserveQueue(op, dst, c.q.Len())
	}
}

// noteRetry reports a retried attempt to the loss observer.
func (c *CSMA) noteRetry(dst frame.NodeID) {
	if c.lobs != nil {
		c.lobs.ObserveRetry(dst)
	}
}

// noteDrop reports an abandoned packet to the loss observer.
func (c *CSMA) noteDrop(dst frame.NodeID, reason mac.DropReason) {
	if c.lobs != nil {
		c.lobs.ObserveDrop(dst, reason)
	}
}

// schedule arms the next sense attempt 1..BO slots from now (non-persistent
// CSMA defers a random interval rather than waiting for the carrier edge).
func (c *CSMA) schedule() {
	head := c.q.Peek()
	if head == nil {
		c.setState(Idle)
		return
	}
	c.setState(Backoff)
	k := 1 + c.env.Rand.Intn(c.pol.Backoff(head.Dst))
	c.setTimer(sim.Duration(k)*c.env.Cfg.Slot(), c.attempt)
}

// attempt senses the carrier and transmits if the channel appears clear —
// the transmitter-side test whose inadequacy §2.2 demonstrates.
func (c *CSMA) attempt() {
	c.timer = sim.Event{}
	head := c.q.Peek()
	if head == nil {
		c.setState(Idle)
		return
	}
	if c.env.Radio.CarrierBusy() {
		c.schedule()
		return
	}
	data := &frame.Frame{Type: frame.DATA, Src: c.env.ID(), Dst: head.Dst, DataBytes: uint16(head.Size), Seq: head.Seq(), Payload: head.Payload}
	c.pol.StampSend(data)
	air := c.transmit(data)
	c.setState(Sending)
	c.sending = head
	c.setTimer(air, c.onDataAirDone)
}

// onDataAirDone fires when the DATA frame leaves the air: fire-and-forget
// completes immediately, an ACK-bearing exchange moves to WFACK.
func (c *CSMA) onDataAirDone() {
	c.timer = sim.Event{}
	head := c.sending
	c.sending = nil
	if !c.opt.ACK {
		c.finish(head)
		return
	}
	c.setState(WFACK)
	c.setTimer(c.env.Cfg.Turnaround+c.env.Cfg.CtrlTime()+c.env.Cfg.Margin, c.onACKTimeout)
}

// onAckAirDone fires when a returned ACK leaves the air.
func (c *CSMA) onAckAirDone() {
	c.timer = sim.Event{}
	c.schedule()
}

func (c *CSMA) finish(head *mac.Packet) {
	c.q.Pop()
	c.noteQueue("pop", head.Dst)
	c.retries = 0
	c.stats.DataSent++
	c.env.Callbacks.NotifySent(head)
	c.schedule()
}

func (c *CSMA) onACKTimeout() {
	if c.st != WFACK {
		return
	}
	c.timer = sim.Event{}
	c.pol.OnFailure(0)
	c.retries++
	c.stats.Retries++
	if head := c.q.Peek(); head != nil {
		c.noteRetry(head.Dst)
		if c.retries > c.env.Cfg.MaxRetries {
			c.q.Pop()
			c.noteQueue("drop", head.Dst)
			c.retries = 0
			c.stats.Drops++
			c.noteDrop(head.Dst, mac.DropRetries)
			c.pol.OnGiveUp(head.Dst)
			c.env.Callbacks.NotifyDropped(head, mac.DropRetries)
		}
	}
	c.schedule()
}

// RadioCarrier implements phy.Handler; the non-persistent variant polls the
// carrier at attempt time instead of reacting to edges.
func (c *CSMA) RadioCarrier(bool) {}

// RadioReceive implements phy.Handler.
func (c *CSMA) RadioReceive(f *frame.Frame) {
	if c.halted {
		return
	}
	if c.env.Obs != nil {
		c.env.Obs.ObserveRx(f)
	}
	if f.Dst != c.env.ID() {
		return
	}
	switch f.Type {
	case frame.DATA:
		c.stats.DataReceived++
		if c.env.Obs != nil {
			c.env.Obs.ObserveDeliver(f)
		}
		c.env.Callbacks.NotifyDeliver(f.Src, f.Payload)
		if c.opt.ACK && !c.env.Radio.Transmitting() {
			ack := &frame.Frame{Type: frame.ACK, Src: c.env.ID(), Dst: f.Src, Seq: f.Seq}
			c.pol.StampSend(ack)
			// The ACK may itself collide; CSMA has no protection.
			air := c.transmit(ack)
			c.stats.ACKSent++
			c.setState(Sending)
			c.setTimer(air, c.onAckAirDone)
		}
	case frame.ACK:
		if c.st != WFACK {
			return
		}
		head := c.q.Peek()
		if head == nil || head.Seq() != f.Seq {
			return
		}
		c.clearTimer()
		c.pol.OnSuccess(f.Src)
		c.finish(head)
	}
}
