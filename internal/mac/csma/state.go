package csma

import (
	"fmt"

	"macaw/internal/mac"
)

// AppendState appends the engine's full FSM state for the snapshot
// inventory (DESIGN.md §14).
func (c *CSMA) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "csma st=%s retries=%d timer=%d timerCancelled=%t seq=%d halted=%t",
		c.st, c.retries, c.timer.When(), c.timer.Cancelled(), c.seq, c.halted)
	b = mac.AppendPacketRef(b, "sending", c.sending)
	b = append(b, '\n')
	b = c.q.AppendState(b)
	if a, ok := c.pol.(interface{ AppendState([]byte) []byte }); ok {
		b = a.AppendState(b)
	}
	b = c.stats.AppendState(b)
	return b
}
