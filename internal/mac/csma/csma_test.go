package csma

import (
	"testing"

	"macaw/internal/frame"
	"macaw/internal/geom"
	"macaw/internal/mac"
	"macaw/internal/phy"
	"macaw/internal/sim"
)

type station struct {
	m         *CSMA
	delivered int
	sent      int
	dropped   int
}

type world struct {
	s      *sim.Simulator
	medium *phy.Medium
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, medium: phy.New(s, phy.DefaultParams())}
}

func (w *world) add(id frame.NodeID, pos geom.Vec3, opt Options) *station {
	st := &station{}
	radio := w.medium.Attach(id, pos, nil)
	env := &mac.Env{
		Sim: w.s, Radio: radio, Rand: w.s.NewRand(), Cfg: mac.DefaultConfig(),
		Callbacks: mac.Callbacks{
			Deliver: func(frame.NodeID, []byte) { st.delivered++ },
			Sent:    func(*mac.Packet) { st.sent++ },
			Dropped: func(*mac.Packet, mac.DropReason) { st.dropped++ },
		},
	}
	st.m = New(env, opt)
	return st
}

func pkt(dst frame.NodeID) *mac.Packet {
	return &mac.Packet{Dst: dst, Size: 512, Payload: []byte("x")}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Idle: "IDLE", Backoff: "BACKOFF", Sending: "SENDING", WFACK: "WFACK"}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%v = %q want %q", s, s.String(), n)
		}
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state")
	}
}

func TestDirectDelivery(t *testing.T) {
	w := newWorld(1)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
	b := w.add(2, geom.V(6, 0, 6), Options{ACK: true})
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if b.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered=%d sent=%d", b.delivered, a.sent)
	}
	if a.m.State() != Idle {
		t.Fatalf("state = %v", a.m.State())
	}
	if b.m.Stats().ACKSent != 1 {
		t.Fatal("no ACK sent")
	}
}

func TestNoACKFireAndForget(t *testing.T) {
	w := newWorld(2)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: false})
	b := w.add(2, geom.V(6, 0, 6), Options{ACK: false})
	a.m.Enqueue(pkt(2))
	w.s.Run(1 * sim.Second)
	if b.delivered != 1 || a.sent != 1 {
		t.Fatalf("delivered=%d sent=%d", b.delivered, a.sent)
	}
	if b.m.Stats().ACKSent != 0 {
		t.Fatal("ACK sent in no-ACK mode")
	}
}

func TestCarrierDefersExposedStation(t *testing.T) {
	// B transmits a long stream; C (in range of B) senses carrier and
	// waits, so C's packets arrive late but uncollided at D.
	w := newWorld(3)
	b := w.add(1, geom.V(8, 0, 6), Options{ACK: true})
	a := w.add(2, geom.V(0, 0, 6), Options{ACK: true})
	c := w.add(3, geom.V(16, 0, 6), Options{ACK: true})
	d := w.add(4, geom.V(24, 0, 6), Options{ACK: true})
	_ = a
	for i := 0; i < 20; i++ {
		b.m.Enqueue(pkt(2))
		c.m.Enqueue(pkt(4))
	}
	w.s.Run(60 * sim.Second)
	if a.delivered < 15 || d.delivered < 15 {
		t.Fatalf("deliveries a=%d d=%d", a.delivered, d.delivered)
	}
}

func TestHiddenTerminalCollapse(t *testing.T) {
	// The motivating pathology: A and C cannot hear each other, so
	// carrier sense fails and collisions at B are rampant. Throughput
	// must be far below what the MACA test achieves in the same setup.
	w := newWorld(4)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
	b := w.add(2, geom.V(8, 0, 6), Options{ACK: true})
	c := w.add(3, geom.V(16, 0, 6), Options{ACK: true})
	for i := 0; i < 100; i++ {
		a.m.Enqueue(pkt(2))
		c.m.Enqueue(pkt(2))
	}
	w.s.Run(60 * sim.Second)
	st := a.m.Stats().Retries + c.m.Stats().Retries
	if st == 0 {
		t.Fatal("hidden terminals never collided — physics or carrier sense broken")
	}
	if b.delivered == 0 {
		t.Fatal("nothing delivered at all")
	}
	// Compare against capacity: 200 packets of 16ms is 3.2s of airtime;
	// in 60s a healthy protocol delivers everything. CSMA should lose a
	// sizeable share to drops instead.
	drops := a.dropped + c.dropped
	if drops == 0 {
		t.Fatalf("expected hidden-terminal drops, got none (delivered=%d)", b.delivered)
	}
}

func TestRetryLimitDrops(t *testing.T) {
	w := newWorld(5)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
	a.m.Enqueue(pkt(9)) // nobody there
	w.s.Run(60 * sim.Second)
	if a.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.dropped)
	}
}

func TestQueueDrains(t *testing.T) {
	w := newWorld(6)
	a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
	b := w.add(2, geom.V(6, 0, 6), Options{ACK: true})
	for i := 0; i < 10; i++ {
		a.m.Enqueue(pkt(2))
	}
	w.s.Run(20 * sim.Second)
	if b.delivered != 10 || a.m.QueueLen() != 0 {
		t.Fatalf("delivered=%d queue=%d", b.delivered, a.m.QueueLen())
	}
}

// TestNeverWedgesUnderArbitraryFrames injects random frames and checks the
// engine always drains its queue once injections stop.
func TestNeverWedgesUnderArbitraryFrames(t *testing.T) {
	types := []frame.Type{frame.RTS, frame.CTS, frame.DS, frame.DATA, frame.ACK, frame.RRTS, frame.NACK, frame.TOKEN}
	for seed := int64(1); seed <= 10; seed++ {
		w := newWorld(seed)
		a := w.add(1, geom.V(0, 0, 6), Options{ACK: true})
		w.add(2, geom.V(6, 0, 6), Options{ACK: true})
		r := w.s.NewRand()
		for i := 0; i < 3; i++ {
			a.m.Enqueue(pkt(2))
		}
		for i := 0; i < 300; i++ {
			f := &frame.Frame{
				Type:      types[r.Intn(len(types))],
				Src:       frame.NodeID(2 + r.Intn(4)),
				Dst:       frame.NodeID(1 + r.Intn(5)),
				DataBytes: uint16(r.Intn(600)),
				Seq:       uint32(r.Intn(6)),
			}
			if !a.m.env.Radio.Transmitting() {
				a.m.RadioReceive(f)
			}
			w.s.Run(w.s.Now() + sim.Duration(r.Intn(3))*sim.Millisecond)
		}
		w.s.Run(w.s.Now() + 120*sim.Second)
		if a.m.QueueLen() > 0 {
			t.Fatalf("seed %d: %d packets stuck (state %v)", seed, a.m.QueueLen(), a.m.State())
		}
	}
}
