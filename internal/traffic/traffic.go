// Package traffic provides the workload generators of the paper's
// simulator: constant-bit-rate sources ("the devices generate data at a
// constant rate of either 32 or 64 packets per second") plus a Poisson
// source for robustness experiments.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"macaw/internal/sim"
)

// Generator produces application packets by invoking an offer callback.
type Generator interface {
	// Start begins generation at time t.
	Start(t sim.Time)
	// Stop ceases generation at time t.
	Stop(t sim.Time)
	// Generated reports the number of offers made so far.
	Generated() int
}

// CBR is a constant-bit-rate source emitting one packet every 1/rate
// seconds. A random initial phase (drawn from rng) decorrelates multiple
// CBR sources that would otherwise fire in lockstep.
type CBR struct {
	s        *sim.Simulator
	interval sim.Duration
	phase    sim.Duration
	offer    func()
	count    int
	running  bool
	stopAt   sim.Time
	hasStop  bool
	ev       sim.Event
}

// NewCBR returns a CBR source at rate packets/second calling offer for each
// packet. rng supplies the initial phase; it may be nil for phase zero.
func NewCBR(s *sim.Simulator, rate float64, rng *rand.Rand, offer func()) *CBR {
	if rate <= 0 {
		panic("traffic: non-positive CBR rate")
	}
	interval := sim.Duration(math.Round(float64(sim.Second) / rate))
	c := &CBR{s: s, interval: interval, offer: offer}
	if rng != nil {
		c.phase = sim.Duration(rng.Int63n(int64(interval)))
	}
	return c
}

// Interval returns the inter-packet gap.
func (c *CBR) Interval() sim.Duration { return c.interval }

// Generated implements Generator.
func (c *CBR) Generated() int { return c.count }

// Start implements Generator.
func (c *CBR) Start(t sim.Time) {
	if c.running {
		return
	}
	c.running = true
	c.ev = c.s.At(t+c.phase, c.tick)
}

// Stop implements Generator.
func (c *CBR) Stop(t sim.Time) {
	c.stopAt = t
	c.hasStop = true
	if t <= c.s.Now() {
		c.running = false
		c.ev.Cancel()
	}
}

func (c *CBR) tick() {
	if !c.running || (c.hasStop && c.s.Now() >= c.stopAt) {
		c.running = false
		return
	}
	c.count++
	c.offer()
	c.ev = c.s.After(c.interval, c.tick)
}

// Poisson emits packets with exponentially distributed gaps at the given
// mean rate.
type Poisson struct {
	s       *sim.Simulator
	rate    float64
	rng     *rand.Rand
	offer   func()
	count   int
	running bool
	stopAt  sim.Time
	hasStop bool
	ev      sim.Event
}

// NewPoisson returns a Poisson source at mean rate packets/second.
func NewPoisson(s *sim.Simulator, rate float64, rng *rand.Rand, offer func()) *Poisson {
	if rate <= 0 {
		panic("traffic: non-positive Poisson rate")
	}
	if rng == nil {
		panic("traffic: Poisson requires an rng")
	}
	return &Poisson{s: s, rate: rate, rng: rng, offer: offer}
}

// Generated implements Generator.
func (p *Poisson) Generated() int { return p.count }

// Start implements Generator.
func (p *Poisson) Start(t sim.Time) {
	if p.running {
		return
	}
	p.running = true
	p.ev = p.s.At(t+p.gap(), p.tick)
}

// Stop implements Generator.
func (p *Poisson) Stop(t sim.Time) {
	p.stopAt = t
	p.hasStop = true
	if t <= p.s.Now() {
		p.running = false
		p.ev.Cancel()
	}
}

func (p *Poisson) gap() sim.Duration {
	return sim.Duration(p.rng.ExpFloat64() / p.rate * float64(sim.Second))
}

func (p *Poisson) tick() {
	if !p.running || (p.hasStop && p.s.Now() >= p.stopAt) {
		p.running = false
		return
	}
	p.count++
	p.offer()
	p.ev = p.s.After(p.gap(), p.tick)
}

// AppendState appends the source's full state for the snapshot inventory
// (DESIGN.md §14): phase, tick count, running/stop flags, and the pending
// tick's scheduled time (the event's identity lives in the engine dump).
func (c *CBR) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "cbr interval=%d phase=%d count=%d running=%t stopAt=%d hasStop=%t next=%d\n",
		c.interval, c.phase, c.count, c.running, c.stopAt, c.hasStop, c.ev.When())
}

// AppendState appends the source's full state for the snapshot inventory.
func (p *Poisson) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "poisson rate=%g count=%d running=%t stopAt=%d hasStop=%t next=%d\n",
		p.rate, p.count, p.running, p.stopAt, p.hasStop, p.ev.When())
}
