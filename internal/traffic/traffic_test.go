package traffic

import (
	"testing"

	"macaw/internal/sim"
)

func TestCBRRateExact(t *testing.T) {
	s := sim.New(1)
	n := 0
	c := NewCBR(s, 64, nil, func() { n++ })
	if c.Interval() != 15625*sim.Microsecond {
		t.Fatalf("interval = %v, want 15.625ms", c.Interval())
	}
	c.Start(0)
	s.Run(1 * sim.Second)
	if n < 64 || n > 65 {
		t.Fatalf("64pps generated %d in 1s", n)
	}
	if c.Generated() != n {
		t.Fatal("Generated() mismatch")
	}
}

func TestCBRPhaseDesynchronizes(t *testing.T) {
	s := sim.New(1)
	var t1, t2 []sim.Time
	c1 := NewCBR(s, 32, s.NewRand(), func() { t1 = append(t1, s.Now()) })
	c2 := NewCBR(s, 32, s.NewRand(), func() { t2 = append(t2, s.Now()) })
	c1.Start(0)
	c2.Start(0)
	s.Run(1 * sim.Second)
	if len(t1) == 0 || len(t2) == 0 {
		t.Fatal("no packets generated")
	}
	if t1[0] == t2[0] {
		t.Fatal("two randomized CBR sources fired at the identical instant")
	}
}

func TestCBRStop(t *testing.T) {
	s := sim.New(1)
	n := 0
	c := NewCBR(s, 100, nil, func() { n++ })
	c.Start(0)
	c.Stop(500 * sim.Millisecond)
	s.Run(2 * sim.Second)
	if n < 45 || n > 55 {
		t.Fatalf("stopped CBR generated %d, want ~50", n)
	}
}

func TestCBRStopImmediately(t *testing.T) {
	s := sim.New(1)
	n := 0
	c := NewCBR(s, 100, nil, func() { n++ })
	c.Start(0)
	s.Run(100 * sim.Millisecond)
	c.Stop(s.Now())
	s.Run(1 * sim.Second)
	if n > 12 {
		t.Fatalf("immediate stop generated %d", n)
	}
}

func TestCBRDoubleStartIgnored(t *testing.T) {
	s := sim.New(1)
	n := 0
	c := NewCBR(s, 10, nil, func() { n++ })
	c.Start(0)
	c.Start(0)
	s.Run(1 * sim.Second)
	if n > 11 {
		t.Fatalf("double start doubled the rate: %d", n)
	}
}

func TestCBRInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate 0")
		}
	}()
	NewCBR(sim.New(1), 0, nil, func() {})
}

func TestPoissonMeanRate(t *testing.T) {
	s := sim.New(2)
	n := 0
	p := NewPoisson(s, 100, s.NewRand(), func() { n++ })
	p.Start(0)
	s.Run(20 * sim.Second)
	if n < 1700 || n > 2300 {
		t.Fatalf("poisson 100pps generated %d in 20s", n)
	}
	if p.Generated() != n {
		t.Fatal("Generated() mismatch")
	}
}

func TestPoissonStop(t *testing.T) {
	s := sim.New(3)
	n := 0
	p := NewPoisson(s, 100, s.NewRand(), func() { n++ })
	p.Start(0)
	p.Stop(1 * sim.Second)
	s.Run(5 * sim.Second)
	if n > 130 {
		t.Fatalf("stopped poisson generated %d", n)
	}
}

func TestPoissonRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil rng")
		}
	}()
	NewPoisson(sim.New(1), 1, nil, func() {})
}

func TestGeneratorInterfaces(t *testing.T) {
	s := sim.New(1)
	var _ Generator = NewCBR(s, 1, nil, func() {})
	var _ Generator = NewPoisson(s, 1, s.NewRand(), func() {})
}
