package traffic

import (
	"fmt"
	"math"

	"macaw/internal/sim"
)

// AdoptFrom copies w's generation state into c and re-arms the pending tick
// at its exact (when, prio, seq) ordering key (DESIGN.md §15). The build-time
// parameters — interval and the RNG-drawn phase — must already match: a fork
// is only valid against an identically built network, whose build-time draws
// reproduce the warm twin's. Adoption fails closed on any other generator
// shape (Poisson draws from its RNG on every tick; forking it would need the
// cursor fast-forward to land mid-gap, which the core layer does not claim).
// SetRate rewrites the source's rate to rate packets/second, effective from
// the next tick: the pending tick keeps its scheduled time, and every gap
// after it uses the new interval. Barrier-time sweep deltas use this; applied
// at the same virtual time on a cold run and a warm fork, the tick sequences
// are identical.
func (c *CBR) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: non-positive CBR rate %g", rate)
	}
	c.interval = sim.Duration(math.Round(float64(sim.Second) / rate))
	return nil
}

func (c *CBR) AdoptFrom(w Generator) error {
	wc, ok := w.(*CBR)
	if !ok {
		return fmt.Errorf("traffic: adopt: generator is %T here vs %T in warm twin", c, w)
	}
	if c.interval != wc.interval || c.phase != wc.phase {
		return fmt.Errorf("traffic: adopt: cbr interval/phase %d/%d here vs %d/%d in warm twin",
			c.interval, c.phase, wc.interval, wc.phase)
	}
	c.count = wc.count
	c.running = wc.running
	c.stopAt = wc.stopAt
	c.hasStop = wc.hasStop
	c.ev = c.s.Readopt(wc.ev, c.tick)
	return nil
}
