// Package topo encodes the network configurations of the paper's Figures
// 1–11 as concrete coordinate layouts whose hearing relationships are
// verified (by tests and at build time) against the prose descriptions.
//
// Conventions: coordinates are in feet; base stations sit at z = 12 (the
// ceiling) and pads at z = 6 ("all pads are 6 feet below the base station
// height"). With the default physics (10-foot range), a pad hears a base
// within 8 horizontal feet, and stations at equal height hear each other
// within 10 feet.
package topo

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/sim"
)

// StationSpec places one named station.
type StationSpec struct {
	Name string
	Pos  geom.Vec3
	Base bool
}

// StreamSpec declares a unidirectional stream between named stations.
type StreamSpec struct {
	From, To string
	Kind     core.TransportKind
	Rate     float64
	// StartSec delays the stream's generator (seconds). The two-cell
	// scenarios of §3.3 assume one stream is established before the
	// other begins contending ("one of the pads loses the first
	// contention period").
	StartSec float64
}

// Relation is an expected (or forbidden) hearing relationship used to pin
// the geometry to the paper's description.
type Relation struct {
	A, B  string
	Hears bool
}

// Layout is a complete named configuration.
type Layout struct {
	Name     string
	Doc      string
	Stations []StationSpec
	Streams  []StreamSpec
	// Relations are the hearing constraints stated (or implied) by the
	// paper; Verify checks them against the physics.
	Relations []Relation
}

// Build adds the layout's stations and streams to n, every station running
// the protocol built by f. It returns an error if the realized hearing
// graph violates the layout's relations.
func (l Layout) Build(n *core.Network, f core.MACFactory) error {
	for _, s := range l.Stations {
		n.AddStation(s.Name, s.Pos, f)
	}
	for _, s := range l.Streams {
		from, to := n.Station(s.From), n.Station(s.To)
		if from == nil || to == nil {
			return fmt.Errorf("topo: stream %s-%s references unknown station", s.From, s.To)
		}
		st := n.AddStream(from, to, s.Kind, s.Rate)
		st.SetStart(sim.FromSeconds(s.StartSec))
	}
	return l.Verify(n)
}

// Verify checks the layout's hearing relations against the realized
// physics.
func (l Layout) Verify(n *core.Network) error {
	for _, r := range l.Relations {
		a, b := n.Station(r.A), n.Station(r.B)
		if a == nil || b == nil {
			return fmt.Errorf("topo: relation references unknown station %s or %s", r.A, r.B)
		}
		got := n.Medium.InRange(a.Radio(), b.Radio())
		if got != r.Hears {
			return fmt.Errorf("topo %s: %s hears %s = %v, want %v", l.Name, r.A, r.B, got, r.Hears)
		}
	}
	return nil
}

// pad and base are position helpers.
func pad(name string, x, y float64) StationSpec {
	return StationSpec{Name: name, Pos: geom.V(x, y, 6)}
}

func base(name string, x, y float64) StationSpec {
	return StationSpec{Name: name, Pos: geom.V(x, y, 12), Base: true}
}

// mutual expands to both directions of a hearing constraint.
func mutual(a, b string, hears bool) []Relation {
	return []Relation{{a, b, hears}, {b, a, hears}}
}

func concat(rs ...[]Relation) []Relation {
	var out []Relation
	for _, r := range rs {
		out = append(out, r...)
	}
	return out
}

// Figure1 is the hidden/exposed terminal illustration: B hears both A and
// C, but A and C cannot hear each other.
func Figure1() Layout {
	return Layout{
		Name: "figure1",
		Doc:  "hidden/exposed terminal: A-B-C in a line, A and C mutually out of range",
		Stations: []StationSpec{
			pad("A", 0, 0), pad("B", 8, 0), pad("C", 16, 0),
		},
		Relations: concat(
			mutual("A", "B", true),
			mutual("B", "C", true),
			mutual("A", "C", false),
		),
	}
}

// Figure2 is the single cell with two pads sending to the base station
// (Table 1): each pad generates 64 pps of UDP.
func Figure2() Layout {
	return Layout{
		Name: "figure2",
		Doc:  "single cell, P1 and P2 each sending 64pps UDP to B",
		Stations: []StationSpec{
			base("B", 0, 0), pad("P1", -4, 0), pad("P2", 4, 0),
		},
		Streams: []StreamSpec{
			{From: "P1", To: "B", Kind: core.UDP, Rate: 64},
			{From: "P2", To: "B", Kind: core.UDP, Rate: 64},
		},
		Relations: concat(
			mutual("P1", "B", true),
			mutual("P2", "B", true),
			mutual("P1", "P2", true),
		),
	}
}

// Figure3 is the single cell with six pads sending to the base station
// (Table 2): each stream generates 32 pps of UDP.
func Figure3() Layout {
	l := Layout{
		Name: "figure3",
		Doc:  "single cell, six pads each sending 32pps UDP to B",
		Stations: []StationSpec{
			base("B", 0, 0),
			pad("P1", 4, 0), pad("P2", 2, 3), pad("P3", -2, 3),
			pad("P4", -4, 0), pad("P5", -2, -3), pad("P6", 2, -3),
		},
	}
	pads := []string{"P1", "P2", "P3", "P4", "P5", "P6"}
	for _, p := range pads {
		l.Streams = append(l.Streams, StreamSpec{From: p, To: "B", Kind: core.UDP, Rate: 32})
		l.Relations = append(l.Relations, mutual(p, "B", true)...)
	}
	for i, a := range pads {
		for _, b := range pads[i+1:] {
			l.Relations = append(l.Relations, mutual(a, b, true)...)
		}
	}
	return l
}

// Figure4 is the single cell with two downstream and one upstream stream
// (Table 3): B->P1, B->P2 and P3->B at 32 pps UDP each.
func Figure4() Layout {
	return Layout{
		Name: "figure4",
		Doc:  "single cell, B->P1, B->P2, P3->B at 32pps UDP",
		Stations: []StationSpec{
			base("B", 0, 0), pad("P1", 4, 0), pad("P2", -4, 0), pad("P3", 0, 4),
		},
		Streams: []StreamSpec{
			{From: "B", To: "P1", Kind: core.UDP, Rate: 32},
			{From: "B", To: "P2", Kind: core.UDP, Rate: 32},
			{From: "P3", To: "B", Kind: core.UDP, Rate: 32},
		},
		Relations: concat(
			mutual("P1", "B", true), mutual("P2", "B", true), mutual("P3", "B", true),
			mutual("P1", "P2", true), mutual("P1", "P3", true), mutual("P2", "P3", true),
		),
	}
}

// twoCells is the shared Figure 5/6/7 geometry: two adjacent cells whose
// pads are in range of each other but can hear only their own base.
func twoCells(name, doc string, streams []StreamSpec) Layout {
	return Layout{
		Name: name,
		Doc:  doc,
		Stations: []StationSpec{
			base("B1", 0, 0), pad("P1", 6, 0), pad("P2", 12, 0), base("B2", 18, 0),
		},
		Streams: streams,
		Relations: concat(
			mutual("P1", "B1", true),
			mutual("P2", "B2", true),
			mutual("P1", "P2", true),
			mutual("P1", "B2", false),
			mutual("P2", "B1", false),
			mutual("B1", "B2", false),
		),
	}
}

// Figure5 is the exposed-terminal configuration (Table 5): each pad sends
// to its own base station; each pad is exposed to the other's stream.
func Figure5() Layout {
	return twoCells("figure5",
		"two cells, P1->B1 and P2->B2 at 64pps UDP; each pad exposed to the other",
		[]StreamSpec{
			{From: "P1", To: "B1", Kind: core.UDP, Rate: 64},
			{From: "P2", To: "B2", Kind: core.UDP, Rate: 64, StartSec: 1},
		})
}

// Figure6 is Figure 5 with both flows reversed (Table 6): B1->P1 and
// B2->P2. P1 defers to the data transmissions it overhears toward P2, so
// B1 cannot elicit a CTS without the RRTS mechanism.
func Figure6() Layout {
	return twoCells("figure6",
		"two cells, B1->P1 and B2->P2 at 64pps UDP; receiver-side contention",
		[]StreamSpec{
			{From: "B1", To: "P1", Kind: core.UDP, Rate: 64, StartSec: 1},
			{From: "B2", To: "P2", Kind: core.UDP, Rate: 64},
		})
}

// Figure7 is the unsolved configuration (Table 7): B1->P1 with P2->B2.
// P2's long data transmissions collide with B1's RTS at P1, so P1 never
// learns B1 is trying and even RRTS cannot help.
func Figure7() Layout {
	return twoCells("figure7",
		"two cells, B1->P1 and P2->B2 at 64pps UDP; P1 jammed by P2's data",
		[]StreamSpec{
			{From: "B1", To: "P1", Kind: core.UDP, Rate: 64, StartSec: 1},
			{From: "P2", To: "B2", Kind: core.UDP, Rate: 64},
		})
}

// Figure8 is the backoff-leakage discussion configuration (§3.4): cell C1
// holds four border pads P1-P4, cell C2 holds border pad P5 and interior
// pad P6. No table in the paper; used by the leakage ablation.
func Figure8() Layout {
	l := Layout{
		Name: "figure8",
		Doc:  "two cells; P1-P5 overhear each other across the border, P6 interior to C2",
		Stations: []StationSpec{
			base("B1", 0, 0),
			pad("P1", 6, 2), pad("P2", 7, 0), pad("P3", 6, -2), pad("P4", 5, 1),
			base("B2", 20, 0), pad("P5", 14, 0), pad("P6", 25, 2),
		},
		Streams: []StreamSpec{
			{From: "P1", To: "B1", Kind: core.UDP, Rate: 64}, {From: "P2", To: "B1", Kind: core.UDP, Rate: 64},
			{From: "P3", To: "B1", Kind: core.UDP, Rate: 64}, {From: "P4", To: "B1", Kind: core.UDP, Rate: 64},
			{From: "P5", To: "B2", Kind: core.UDP, Rate: 64}, {From: "P6", To: "B2", Kind: core.UDP, Rate: 64},
		},
	}
	border := []string{"P1", "P2", "P3", "P4", "P5"}
	for i, a := range border {
		for _, b := range border[i+1:] {
			l.Relations = append(l.Relations, mutual(a, b, true)...)
		}
	}
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		l.Relations = append(l.Relations, mutual(p, "B1", true)...)
		l.Relations = append(l.Relations, mutual(p, "B2", false)...)
	}
	l.Relations = append(l.Relations, concat(
		mutual("P5", "B2", true), mutual("P5", "B1", false),
		mutual("P6", "B2", true), mutual("P6", "B1", false),
		mutual("P6", "P5", false), mutual("B1", "B2", false),
	)...)
	return l
}

// Figure9 is the dead-pad configuration (Table 8): a single cell with
// three pads, bidirectional 32 pps UDP streams, and P1 powered off during
// the run (the experiment schedules the power-off).
func Figure9() Layout {
	l := Layout{
		Name: "figure9",
		Doc:  "single cell, B<->P1..P3 bidirectional 32pps UDP; P1 is switched off mid-run",
		Stations: []StationSpec{
			base("B", 0, 0), pad("P1", 4, 0), pad("P2", -4, 0), pad("P3", 0, 4),
		},
		Streams: []StreamSpec{
			{From: "B", To: "P1", Kind: core.UDP, Rate: 32}, {From: "P1", To: "B", Kind: core.UDP, Rate: 32},
			{From: "B", To: "P2", Kind: core.UDP, Rate: 32}, {From: "P2", To: "B", Kind: core.UDP, Rate: 32},
			{From: "B", To: "P3", Kind: core.UDP, Rate: 32}, {From: "P3", To: "B", Kind: core.UDP, Rate: 32},
		},
		Relations: concat(
			mutual("P1", "B", true), mutual("P2", "B", true), mutual("P3", "B", true),
			mutual("P1", "P2", true), mutual("P1", "P3", true), mutual("P2", "P3", true),
		),
	}
	return l
}

// Figure10 is the three-cell evaluation scenario (Table 10): C1 holds
// border pads P1-P4, C2 holds border pad P5, and P6 straddles the C2-C3
// border, in range of both B2 and B3. All streams are 32 pps UDP.
func Figure10() Layout {
	l := Layout{
		Name: "figure10",
		Doc:  "three cells; P1-P5 overhear each other, P6 straddles C2/C3 and sends to B3",
		Stations: []StationSpec{
			base("B1", 0, 0),
			pad("P1", 5, 2), pad("P2", 6, 0), pad("P3", 5, -2), pad("P4", 7, 1),
			base("B2", 20, 0), pad("P5", 13, 0),
			base("B3", 32, 0), pad("P6", 26, 0),
		},
		Streams: []StreamSpec{
			{From: "P1", To: "B1", Kind: core.UDP, Rate: 32}, {From: "P2", To: "B1", Kind: core.UDP, Rate: 32},
			{From: "P3", To: "B1", Kind: core.UDP, Rate: 32}, {From: "P4", To: "B1", Kind: core.UDP, Rate: 32},
			{From: "B1", To: "P1", Kind: core.UDP, Rate: 32}, {From: "B1", To: "P2", Kind: core.UDP, Rate: 32},
			{From: "B1", To: "P3", Kind: core.UDP, Rate: 32}, {From: "B1", To: "P4", Kind: core.UDP, Rate: 32},
			{From: "P5", To: "B2", Kind: core.UDP, Rate: 32}, {From: "B2", To: "P5", Kind: core.UDP, Rate: 32},
			{From: "P6", To: "B3", Kind: core.UDP, Rate: 32},
		},
	}
	border := []string{"P1", "P2", "P3", "P4", "P5"}
	for i, a := range border {
		for _, b := range border[i+1:] {
			l.Relations = append(l.Relations, mutual(a, b, true)...)
		}
	}
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		l.Relations = append(l.Relations, mutual(p, "B1", true)...)
		l.Relations = append(l.Relations, mutual(p, "B2", false)...)
		l.Relations = append(l.Relations, mutual(p, "B3", false)...)
	}
	l.Relations = append(l.Relations, concat(
		mutual("P5", "B2", true), mutual("P5", "B1", false), mutual("P5", "B3", false),
		mutual("P6", "B2", true), mutual("P6", "B3", true),
		mutual("P6", "B1", false), mutual("P6", "P5", false),
		mutual("B1", "B2", false), mutual("B2", "B3", false), mutual("B1", "B3", false),
	)...)
	return l
}

// Figure11Move describes the mobile pad in Figure 11: P7 starts in a
// distant uncongested area and is brought into the coffee room (cell C4)
// at MoveAt.
type Figure11Move struct {
	Start geom.Vec3
	Dest  geom.Vec3
}

// Figure11MoveSpec returns P7's trajectory endpoints.
func Figure11MoveSpec() Figure11Move {
	return Figure11Move{Start: geom.V(0, 40, 6), Dest: geom.V(0, 9, 6)}
}

// Figure11 is the office scenario (Table 11): an open area C1 with pads
// P1-P4 and a noise source, office cells C2 (P6) and C3 (P5), and a coffee
// room C4 into which P7 is carried mid-run. Every pad sends a 32 pps TCP
// stream to the base of its cell.
//
// The layout places P7 at its *final* coffee-room position for relation
// verification; experiments should start it at Figure11MoveSpec().Start and
// schedule the move.
func Figure11() Layout {
	l := Layout{
		Name: "figure11",
		Doc:  "four-cell office: open area with noise, two offices, coffee room with mobile pad",
		Stations: []StationSpec{
			base("B1", 0, 0),
			pad("P1", -3, 1), pad("P2", 0, -5), pad("P3", 4, 2), pad("P4", 5, -3),
			base("B2", 20, 0), pad("P6", 14, -1),
			base("B3", 16, -10), pad("P5", 12, -6),
			base("B4", 0, 14), pad("P7", 0, 9),
		},
		Streams: []StreamSpec{
			{From: "P1", To: "B1", Kind: core.TCP, Rate: 32}, {From: "P2", To: "B1", Kind: core.TCP, Rate: 32},
			{From: "P3", To: "B1", Kind: core.TCP, Rate: 32}, {From: "P4", To: "B1", Kind: core.TCP, Rate: 32},
			{From: "P5", To: "B3", Kind: core.TCP, Rate: 32}, {From: "P6", To: "B2", Kind: core.TCP, Rate: 32},
			{From: "P7", To: "B4", Kind: core.TCP, Rate: 32},
		},
	}
	inCell1 := []string{"P1", "P2", "P3", "P4"}
	for i, a := range inCell1 {
		l.Relations = append(l.Relations, mutual(a, "B1", true)...)
		for _, b := range inCell1[i+1:] {
			l.Relations = append(l.Relations, mutual(a, b, true)...)
		}
	}
	l.Relations = append(l.Relations, concat(
		mutual("P6", "B2", true), mutual("P6", "B1", false),
		mutual("P5", "B3", true), mutual("P5", "B1", false),
		mutual("P7", "B4", true), mutual("P7", "B1", false),
		// "P7 can hear P1 and P3 in cell C1".
		mutual("P7", "P1", true), mutual("P7", "P3", true),
		mutual("P7", "P2", false), mutual("P7", "P4", false),
		// "the pads P4, P5, and P6 can hear each other".
		mutual("P4", "P5", true), mutual("P4", "P6", true), mutual("P5", "P6", true),
		// Other cross-cell pairs stay isolated.
		mutual("P5", "P3", false), mutual("P6", "P3", false),
		mutual("B1", "B2", false), mutual("B1", "B3", false), mutual("B1", "B4", false),
		mutual("B2", "B3", false),
	)...)
	return l
}

// Cell1NoiseRegion reports whether a position lies in Figure 11's open
// area, where the electronic whiteboard induces a 1% packet error rate.
func Cell1NoiseRegion(p geom.Vec3) bool {
	dx, dy := p.X, p.Y
	return dx*dx+dy*dy <= 8*8
}

// All returns every tabulated layout keyed by name.
func All() map[string]Layout {
	ls := []Layout{
		Figure1(), Figure2(), Figure3(), Figure4(), Figure5(), Figure6(),
		Figure7(), Figure8(), Figure9(), Figure10(), Figure11(),
	}
	out := make(map[string]Layout, len(ls))
	for _, l := range ls {
		out[l.Name] = l
	}
	return out
}
