package topo

import (
	"fmt"

	"macaw/internal/core"
	"macaw/internal/sim"
)

// Blueprint converts the layout into a declarative core.Blueprint with
// every station running the protocol built by f, resolving stream endpoint
// names to station indices. The blueprint's Verify hook re-checks the
// layout's hearing relations on whatever network subset the runner
// materializes: relations whose endpoints are both present are verified
// against the physics; relations split across shard components are skipped
// — the partition's cutoff certificate already proves those pairs cannot
// hear each other, and a Hears=true relation can never straddle components
// (hearing implies a gain at or above the reception threshold, which is
// above the negligibility floor, which is within the cutoff).
func (l Layout) Blueprint(f core.MACFactory) (core.Blueprint, error) {
	bp := core.Blueprint{}
	index := make(map[string]int, len(l.Stations))
	for i, s := range l.Stations {
		if _, dup := index[s.Name]; dup {
			return core.Blueprint{}, fmt.Errorf("topo: duplicate station name %q", s.Name)
		}
		index[s.Name] = i
		bp.Stations = append(bp.Stations, core.BlueprintStation{
			Name: s.Name, Pos: s.Pos, Factory: f,
		})
	}
	for _, s := range l.Streams {
		from, okFrom := index[s.From]
		to, okTo := index[s.To]
		if !okFrom || !okTo {
			return core.Blueprint{}, fmt.Errorf("topo: stream %s-%s references unknown station", s.From, s.To)
		}
		bp.Streams = append(bp.Streams, core.BlueprintStream{
			From: from, To: to, Kind: s.Kind, Rate: s.Rate,
			Start: sim.FromSeconds(s.StartSec),
		})
	}
	relations := l.Relations
	name := l.Name
	bp.Verify = func(n *core.Network) error {
		for _, r := range relations {
			a, b := n.Station(r.A), n.Station(r.B)
			if a == nil || b == nil {
				continue // split across components: certified out of range
			}
			got := n.Medium.InRange(a.Radio(), b.Radio())
			if got != r.Hears {
				return fmt.Errorf("topo %s: %s hears %s = %v, want %v", name, r.A, r.B, got, r.Hears)
			}
		}
		return nil
	}
	return bp, nil
}
