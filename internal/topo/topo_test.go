package topo

import (
	"testing"

	"macaw/internal/core"
	"macaw/internal/geom"
	"macaw/internal/mac/macaw"
)

func macawDefaults() macaw.Options { return macaw.DefaultOptions() }

// buildAndVerify constructs each layout on a fresh network and checks its
// hearing relations against the physics.
func buildAndVerify(t *testing.T, l Layout) *core.Network {
	t.Helper()
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAWFactory(macawDefaults())); err != nil {
		t.Fatalf("%s: %v", l.Name, err)
	}
	return n
}

func TestAllLayoutsVerify(t *testing.T) {
	for name, l := range All() {
		l := l
		t.Run(name, func(t *testing.T) {
			buildAndVerify(t, l)
		})
	}
}

func TestAllReturnsElevenFigures(t *testing.T) {
	if got := len(All()); got != 11 {
		t.Fatalf("All() has %d layouts, want 11", got)
	}
}

func TestStreamCountsMatchTables(t *testing.T) {
	cases := map[string]int{
		"figure1": 0, "figure2": 2, "figure3": 6, "figure4": 3,
		"figure5": 2, "figure6": 2, "figure7": 2, "figure8": 6,
		"figure9": 6, "figure10": 11, "figure11": 7,
	}
	for name, want := range cases {
		if got := len(All()[name].Streams); got != want {
			t.Errorf("%s has %d streams, want %d", name, got, want)
		}
	}
}

func TestFigure11UsesTCP(t *testing.T) {
	for _, s := range Figure11().Streams {
		if s.Kind != core.TCP {
			t.Fatalf("figure11 stream %s-%s is %v, want TCP", s.From, s.To, s.Kind)
		}
	}
}

func TestOthersUseUDP(t *testing.T) {
	for _, name := range []string{"figure2", "figure3", "figure4", "figure5", "figure6", "figure7", "figure9", "figure10"} {
		for _, s := range All()[name].Streams {
			if s.Kind != core.UDP {
				t.Fatalf("%s stream %s-%s is %v, want UDP", name, s.From, s.To, s.Kind)
			}
		}
	}
}

func TestRatesMatchPaper(t *testing.T) {
	for _, s := range Figure2().Streams {
		if s.Rate != 64 {
			t.Fatal("figure2 rate must be 64pps")
		}
	}
	for _, s := range Figure3().Streams {
		if s.Rate != 32 {
			t.Fatal("figure3 rate must be 32pps")
		}
	}
	for _, s := range Figure10().Streams {
		if s.Rate != 32 {
			t.Fatal("figure10 rate must be 32pps")
		}
	}
}

func TestBuildRejectsUnknownStreamStation(t *testing.T) {
	l := Layout{
		Name:     "bogus",
		Stations: []StationSpec{pad("A", 0, 0)},
		Streams:  []StreamSpec{{From: "A", To: "Z", Kind: core.UDP, Rate: 1}},
	}
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err == nil {
		t.Fatal("unknown station accepted")
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	l := Layout{
		Name: "broken",
		Stations: []StationSpec{
			pad("A", 0, 0), pad("B", 50, 0),
		},
		Relations: mutual("A", "B", true), // physically false
	}
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err == nil {
		t.Fatal("violated relation not reported")
	}
}

func TestVerifyUnknownRelationStation(t *testing.T) {
	l := Layout{
		Name:      "unknownrel",
		Stations:  []StationSpec{pad("A", 0, 0)},
		Relations: []Relation{{"A", "Z", true}},
	}
	n := core.NewNetwork(1)
	if err := l.Build(n, core.MACAFactory()); err == nil {
		t.Fatal("unknown relation station accepted")
	}
}

func TestFigure11MoveSpec(t *testing.T) {
	mv := Figure11MoveSpec()
	// The start must be out of range of everything in the office.
	n := buildAndVerify(t, Figure11())
	p7 := n.Station("P7")
	p7.Radio().SetPos(mv.Start)
	for _, st := range n.Stations() {
		if st == p7 {
			continue
		}
		if n.Medium.InRange(p7.Radio(), st.Radio()) {
			t.Fatalf("P7 at its start position hears %s", st.Name())
		}
	}
	// The destination is the verified coffee-room position.
	if mv.Dest != geom.V(0, 9, 6) {
		t.Fatalf("Dest = %v", mv.Dest)
	}
}

func TestCell1NoiseRegion(t *testing.T) {
	l := Figure11()
	in := map[string]bool{
		"B1": true, "P1": true, "P2": true, "P3": true, "P4": true,
		"B2": false, "B3": false, "B4": false, "P5": false, "P6": false, "P7": false,
	}
	for _, s := range l.Stations {
		if got := Cell1NoiseRegion(s.Pos); got != in[s.Name] {
			t.Errorf("Cell1NoiseRegion(%s at %v) = %v, want %v", s.Name, s.Pos, got, in[s.Name])
		}
	}
}

func TestBaseHeights(t *testing.T) {
	for name, l := range All() {
		for _, s := range l.Stations {
			if s.Base && s.Pos.Z != 12 {
				t.Errorf("%s: base %s at z=%v, want 12", name, s.Name, s.Pos.Z)
			}
			if !s.Base && s.Pos.Z != 6 {
				t.Errorf("%s: pad %s at z=%v, want 6 (6ft below bases)", name, s.Name, s.Pos.Z)
			}
		}
	}
}
