package topo

import (
	"reflect"
	"testing"

	"macaw/internal/core"
	"macaw/internal/mac/macaw"
	"macaw/internal/sim"
)

func TestRandomDeterministic(t *testing.T) {
	spec := RandomSpec{N: 40, Seed: 11, Clustered: true}
	a, b := Random(spec), Random(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different layouts")
	}
	c := Random(RandomSpec{N: 40, Seed: 12, Clustered: true})
	if reflect.DeepEqual(a.Stations, c.Stations) {
		t.Fatal("different seeds produced identical station placement")
	}
}

func TestRandomShape(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		l := Random(RandomSpec{N: 50, Seed: 3, Clustered: clustered})
		if len(l.Stations) != 50 {
			t.Fatalf("clustered=%v: %d stations, want 50", clustered, len(l.Stations))
		}
		bases := 0
		for _, s := range l.Stations {
			if s.Base {
				bases++
			}
		}
		if bases != 50/8 {
			t.Fatalf("clustered=%v: %d bases, want %d", clustered, bases, 50/8)
		}
		if len(l.Streams) != 50-bases {
			t.Fatalf("clustered=%v: %d streams, want one per pad (%d)",
				clustered, len(l.Streams), 50-bases)
		}
		for _, st := range l.Streams {
			if st.Rate <= 0 {
				t.Fatalf("stream %s-%s has rate %v", st.From, st.To, st.Rate)
			}
		}
	}
}

func TestRandomBuilds(t *testing.T) {
	n := core.NewNetwork(1)
	l := Random(RandomSpec{N: 30, Seed: 7, Clustered: true})
	if err := l.Build(n, core.MACAWFactory(macaw.Options{})); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(n.Stations()); got != 30 {
		t.Fatalf("network has %d stations, want 30", got)
	}
	// A clustered layout at this density should leave the medium's
	// neighborhood index active and non-degenerate.
	if !n.Medium.IndexEnabled() {
		t.Fatal("index disabled under default params")
	}
	n.Sim.Run(sim.FromSeconds(2))
}
