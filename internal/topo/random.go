package topo

import (
	"fmt"
	"math"
	"math/rand"

	"macaw/internal/core"
	"macaw/internal/geom"
)

// RandomSpec parameterizes a seeded synthetic large-topology generator,
// used by the scaling benchmarks and by cmd/macawtopo -rand. The generated
// layouts are deterministic in Seed: the same spec always produces the same
// layout, so benchmark runs and differential tests are reproducible.
type RandomSpec struct {
	// N is the total number of stations (bases + pads).
	N int
	// Seed drives every random choice.
	Seed int64
	// Clustered places pads around their base station within CellRadiusFt
	// (an office building of nanocells); false scatters pads uniformly
	// over the whole area.
	Clustered bool
	// AreaFt is the side of the square floor plan. Zero derives a side
	// that keeps station density roughly constant as N grows (about one
	// station per 20x20 ft office bay), so larger N means a larger
	// building rather than a denser one — the regime where radio
	// neighborhoods stay local while the station count climbs.
	AreaFt float64
	// PadsPerBase sets the base:pad ratio (default 7 pads per base).
	PadsPerBase int
	// Rate is the per-stream offered load in packets per second
	// (default 8).
	Rate float64
	// CellRadiusFt bounds pad placement around a base when Clustered
	// (default 8, the paper's one-cell hearing distance).
	CellRadiusFt float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.PadsPerBase <= 0 {
		s.PadsPerBase = 7
	}
	if s.Rate <= 0 {
		s.Rate = 8
	}
	if s.CellRadiusFt <= 0 {
		s.CellRadiusFt = 8
	}
	if s.AreaFt <= 0 {
		s.AreaFt = math.Sqrt(float64(s.N) * 400)
	}
	return s
}

// Random generates a building-scale layout: base stations on a jittered
// coarse grid at ceiling height, pads at desk height, and one upstream UDP
// stream per pad toward its nearest base. No hearing relations are pinned —
// the geometry is synthetic, not from the paper.
func Random(spec RandomSpec) Layout {
	spec = spec.withDefaults()
	if spec.N < 2 {
		panic("topo: Random needs at least 2 stations")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nBases := spec.N / (spec.PadsPerBase + 1)
	if nBases < 1 {
		nBases = 1
	}
	nPads := spec.N - nBases

	l := Layout{
		Name: fmt.Sprintf("rand-n%d-s%d", spec.N, spec.Seed),
		Doc: fmt.Sprintf("seeded synthetic topology: %d bases, %d pads over %.0fx%.0f ft",
			nBases, nPads, spec.AreaFt, spec.AreaFt),
	}

	// Bases on a jittered √nBases × √nBases grid, so coverage is roughly
	// uniform no matter the seed.
	side := int(math.Ceil(math.Sqrt(float64(nBases))))
	pitch := spec.AreaFt / float64(side)
	basePos := make([]geom.Vec3, 0, nBases)
	for i := 0; i < nBases; i++ {
		cx := (float64(i%side) + 0.5) * pitch
		cy := (float64(i/side) + 0.5) * pitch
		jitter := pitch * 0.2
		p := geom.V(
			cx+(rng.Float64()*2-1)*jitter,
			cy+(rng.Float64()*2-1)*jitter,
			12)
		basePos = append(basePos, p)
		l.Stations = append(l.Stations, StationSpec{
			Name: fmt.Sprintf("B%d", i+1), Pos: p, Base: true,
		})
	}

	for i := 0; i < nPads; i++ {
		var p geom.Vec3
		if spec.Clustered {
			// Around a (seeded) random base, within the cell radius.
			b := basePos[rng.Intn(nBases)]
			ang := rng.Float64() * 2 * math.Pi
			rad := spec.CellRadiusFt * math.Sqrt(rng.Float64())
			p = geom.V(b.X+rad*math.Cos(ang), b.Y+rad*math.Sin(ang), 6)
		} else {
			p = geom.V(rng.Float64()*spec.AreaFt, rng.Float64()*spec.AreaFt, 6)
		}
		name := fmt.Sprintf("P%d", i+1)
		l.Stations = append(l.Stations, StationSpec{Name: name, Pos: p})

		// One upstream stream per pad toward the nearest base. Start
		// times are staggered over the first second so the whole
		// building does not contend in lockstep.
		best, bestD := 0, math.Inf(1)
		for bi, bp := range basePos {
			if d := bp.Dist(p); d < bestD {
				best, bestD = bi, d
			}
		}
		l.Streams = append(l.Streams, StreamSpec{
			From: name, To: fmt.Sprintf("B%d", best+1),
			Kind: core.UDP, Rate: spec.Rate,
			StartSec: rng.Float64(),
		})
	}
	return l
}
