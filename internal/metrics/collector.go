package metrics

import (
	"fmt"
	"strings"

	"macaw/internal/core"
	"macaw/internal/frame"
	"macaw/internal/mac"
	"macaw/internal/sim"
)

// Collector gathers per-station metrics for one simulation run through the
// passive mac.Observer hooks. Its Observer method matches
// core.MACObserverFactory, so it attaches with Network.AddMACObserver and
// composes with the conformance oracle. A collector belongs to exactly one
// network: runs are single-threaded, so it takes no locks.
type Collector struct {
	clock    *sim.Simulator
	stations map[string]*stationCollector
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{stations: make(map[string]*stationCollector)}
}

// Observer returns the station's collector as a mac.Observer. It is invoked
// once per MAC lifetime; a restarted station keeps accumulating into the
// same record, with the FSM residency interval reset to the rebooted
// engine's IDLE state.
func (c *Collector) Observer(st *core.Station) mac.Observer {
	if c.clock == nil {
		c.clock = st.Clock()
	}
	sc := c.stations[st.Name()]
	if sc == nil {
		sc = &stationCollector{
			c:         c,
			reg:       NewRegistry(),
			backoff:   make(map[frame.NodeID]*Series),
			residency: make(map[string]sim.Duration),
			cur:       "IDLE",
			since:     c.clock.Now(),
		}
		c.stations[st.Name()] = sc
	} else {
		sc.closeResidency(c.clock.Now())
		sc.cur = "IDLE"
		sc.reg.Counter("mac_restarts").Inc()
	}
	return sc
}

// stationCollector accumulates one station's metrics across MAC lifetimes.
type stationCollector struct {
	c       *Collector
	reg     *Registry
	backoff map[frame.NodeID]*Series

	// FSM residency bookkeeping: time spent in cur since 'since'.
	residency map[string]sim.Duration
	cur       string
	since     sim.Time
}

func (sc *stationCollector) closeResidency(now sim.Time) {
	sc.residency[sc.cur] += now - sc.since
	sc.since = now
}

func (sc *stationCollector) ObserveTx(f *frame.Frame) {
	sc.reg.Counter("tx_" + f.Type.String()).Inc()
	if f.LocalBackoff >= 0 {
		s := sc.backoff[f.Dst]
		if s == nil {
			s = &Series{}
			sc.backoff[f.Dst] = s
		}
		s.Observe(sc.c.clock.Now(), float64(f.LocalBackoff))
		sc.reg.Histogram("backoff", BackoffBuckets()).Observe(float64(f.LocalBackoff))
	}
}

func (sc *stationCollector) ObserveRx(f *frame.Frame) {
	sc.reg.Counter("rx_" + f.Type.String()).Inc()
}

func (sc *stationCollector) ObserveState(from, to string) {
	now := sc.c.clock.Now()
	sc.closeResidency(now)
	sc.cur = to
	sc.reg.Counter("fsm_transitions").Inc()
}

func (sc *stationCollector) ObserveTimer(at sim.Time) {
	if at < 0 {
		sc.reg.Counter("timer_cancel").Inc()
		return
	}
	sc.reg.Counter("timer_arm").Inc()
}

func (sc *stationCollector) ObserveQueue(op string, dst frame.NodeID, n int) {
	sc.reg.Counter("queue_" + op).Inc()
	sc.reg.Gauge("queue_depth").Set(float64(n))
	sc.reg.Histogram("queue_depth", QueueBuckets()).Observe(float64(n))
}

func (sc *stationCollector) ObserveDeliver(f *frame.Frame) {
	sc.reg.Counter("deliver").Inc()
}

func (sc *stationCollector) ObserveRetry(dst frame.NodeID) {
	sc.reg.Counter("retries").Inc()
}

func (sc *stationCollector) ObserveDrop(dst frame.NodeID, reason mac.DropReason) {
	sc.reg.Counter("drops_" + dropSlug(reason)).Inc()
}

// dropSlug maps a drop reason to a stable counter-name suffix.
func dropSlug(r mac.DropReason) string {
	switch r {
	case mac.DropRetries:
		return "retry_limit"
	case mac.DropDisabled:
		return "disabled"
	}
	return strings.ReplaceAll(string(r), " ", "_")
}

// StationMetrics is one station's snapshot: the instrument registry, the
// per-state FSM residency in seconds, and the MAC's own final counters.
type StationMetrics struct {
	*Registry
	FSMResidencyS map[string]float64 `json:"fsm_residency_s,omitempty"`
	MACStats      mac.Stats          `json:"mac_stats"`
}

// StreamMetrics is one stream's snapshot, including the in-window delay
// histogram (seconds).
type StreamMetrics struct {
	Transport  string     `json:"transport"`
	RatePPS    float64    `json:"rate_pps"`
	PPS        float64    `json:"pps"`
	Offered    int        `json:"offered"`
	Delivered  int        `json:"delivered"`
	MeanDelayS float64    `json:"mean_delay_s"`
	P95DelayS  float64    `json:"p95_delay_s"`
	Delay      *Histogram `json:"delay_s"`
}

// EngineMetrics snapshots the discrete-event engine's cost counters.
type EngineMetrics struct {
	EventsFired   uint64 `json:"events_fired"`
	MaxEventQueue int    `json:"max_event_queue"`
}

// RunMetrics is the full snapshot of one instrumented run — the JSON schema
// documented in DESIGN.md §12.
type RunMetrics struct {
	Seed     int64                      `json:"seed"`
	TotalS   float64                    `json:"total_s"`
	WarmupS  float64                    `json:"warmup_s"`
	Engine   EngineMetrics              `json:"engine"`
	Stations map[string]*StationMetrics `json:"stations"`
	Streams  map[string]*StreamMetrics  `json:"streams"`
}

// Snapshot folds the collected hooks together with the run's results into a
// RunMetrics: per-station registries (backoff series renamed to their
// destination station), per-stream delay histograms (also aggregated into
// the sending station's registry), and the engine counters. Call it once,
// after the run completes.
func (c *Collector) Snapshot(n *core.Network, res core.Results, seed int64) *RunMetrics {
	names := make(map[frame.NodeID]string, len(n.Stations()))
	for _, st := range n.Stations() {
		names[st.ID()] = st.Name()
	}
	rm := &RunMetrics{
		Seed:    seed,
		TotalS:  res.Duration.Seconds(),
		WarmupS: res.Warmup.Seconds(),
		Engine: EngineMetrics{
			EventsFired:   n.Sim.Fired(),
			MaxEventQueue: n.Sim.MaxQueued(),
		},
		Stations: make(map[string]*StationMetrics),
		Streams:  make(map[string]*StreamMetrics),
	}
	now := n.Sim.Now()
	for _, st := range n.Stations() {
		sc := c.stations[st.Name()]
		if sc == nil {
			// Station never emitted a hook (e.g. token scheme without
			// observer support); still report its MAC counters.
			rm.Stations[st.Name()] = &StationMetrics{Registry: NewRegistry(), MACStats: st.MAC().Stats()}
			continue
		}
		sc.closeResidency(now)
		for dst, s := range sc.backoff {
			name, ok := names[dst]
			if !ok {
				if dst == frame.Broadcast {
					name = "MCAST"
				} else {
					name = fmt.Sprintf("N%d", dst)
				}
			}
			sc.reg.Series["backoff_to_"+name] = s
		}
		sm := &StationMetrics{
			Registry:      sc.reg,
			FSMResidencyS: make(map[string]float64, len(sc.residency)),
			MACStats:      st.MAC().Stats(),
		}
		for state, d := range sc.residency {
			sm.FSMResidencyS[state] = d.Seconds()
		}
		rm.Stations[st.Name()] = sm
	}
	for i, s := range n.Streams() {
		h := NewHistogram(DelayBuckets())
		for _, d := range s.Delays() {
			h.Observe(d.Seconds())
		}
		var sr core.StreamResult
		if i < len(res.Streams) {
			sr = res.Streams[i]
		}
		rm.Streams[s.Name] = &StreamMetrics{
			Transport:  s.Kind.String(),
			RatePPS:    s.Rate,
			PPS:        sr.PPS,
			Offered:    sr.Offered,
			Delivered:  sr.Delivered,
			MeanDelayS: sr.MeanDelay.Seconds(),
			P95DelayS:  sr.P95Delay.Seconds(),
			Delay:      h,
		}
		if from := rm.Stations[s.From.Name()]; from != nil {
			agg := from.Histogram("delay_s", DelayBuckets())
			for _, d := range s.Delays() {
				agg.Observe(d.Seconds())
			}
		}
	}
	return rm
}
