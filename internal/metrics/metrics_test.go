package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"macaw/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Errorf("counter = %d, want 5", c.N)
	}
	b, err := json.Marshal(&c)
	if err != nil || string(b) != "5" {
		t.Errorf("counter JSON = %s, %v; want bare 5", b, err)
	}

	var g Gauge
	for _, v := range []float64{3, -1, 7} {
		g.Set(v)
	}
	if g.Last != 7 || g.Min != -1 || g.Max != 7 || g.N != 3 {
		t.Errorf("gauge = %+v", g)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// v lands in the first bucket with v <= bound; 100 overflows.
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if h.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], n, h.Counts)
		}
	}
	if h.Count != 5 || h.Min != 0.5 || h.Max != 100 {
		t.Errorf("count/min/max = %d/%g/%g", h.Count, h.Min, h.Max)
	}
	if m := h.Mean(); m != (0.5+1+1.5+3+100)/5 {
		t.Errorf("mean = %g", m)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("p50 = %g, want bucket bound 2", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %g, want overflow max 100", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
}

func TestSeriesDecimationDeterministic(t *testing.T) {
	s := &Series{MaxPoints: 8}
	for i := 0; i < 1000; i++ {
		s.Observe(sim.Time(i), float64(i))
	}
	if s.Len() > 8 {
		t.Fatalf("len = %d exceeds cap 8", s.Len())
	}
	if s.Seen() != 1000 {
		t.Errorf("seen = %d", s.Seen())
	}
	// The retained set is a pure function of the observed sequence.
	s2 := &Series{MaxPoints: 8}
	for i := 0; i < 1000; i++ {
		s2.Observe(sim.Time(i), float64(i))
	}
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(s2)
	if !bytes.Equal(a, b) {
		t.Error("identical observation sequences produced different series")
	}
	// Points stay in time order and evenly strided.
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("points out of order at %d: %v", i, pts)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter not reused")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("gauge not reused")
	}
	h := r.Histogram("h", []float64{1, 2})
	if r.Histogram("h", nil) != h {
		t.Error("histogram not reused")
	}
	if r.TimeSeries("s") != r.TimeSeries("s") {
		t.Error("series not reused")
	}
}

func TestSinkDeterministicJSON(t *testing.T) {
	mk := func(order []string) []byte {
		s := NewSink()
		for _, label := range order {
			rm := &RunMetrics{Seed: 1, Stations: map[string]*StationMetrics{}, Streams: map[string]*StreamMetrics{}}
			s.Add(label, rm)
		}
		var b bytes.Buffer
		if err := s.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a := mk([]string{"t1/A", "t1/B", "t2/A"})
	b := mk([]string{"t2/A", "t1/B", "t1/A"})
	if !bytes.Equal(a, b) {
		t.Error("sink JSON depends on Add order")
	}
}
