package metrics

import (
	"encoding/json"

	"macaw/internal/sim"
)

// seriesCap is the default bound on retained points per series.
const seriesCap = 2048

// Point is one retained time-series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is a bounded time-series with deterministic decimation: it keeps
// every stride-th sample, and when the retained points would exceed the cap
// it halves them (keeping every second point) and doubles the stride. The
// retained set is a pure function of the observed sequence — no randomness,
// no wall clock — so parallel runs stay byte-identical. The shape survives
// decimation: samples stay evenly spaced in sample count, which is what a
// Fig. 2-style backoff-evolution plot needs.
type Series struct {
	// MaxPoints bounds the retained points (default seriesCap when 0).
	MaxPoints int

	stride int64
	seen   int64
	pts    []Point
}

func (s *Series) cap() int {
	if s.MaxPoints > 0 {
		return s.MaxPoints
	}
	return seriesCap
}

// Observe records the sample (t, v).
func (s *Series) Observe(t sim.Time, v float64) {
	if s.stride == 0 {
		s.stride = 1
	}
	if s.seen%s.stride == 0 {
		if len(s.pts) >= s.cap() {
			kept := s.pts[:0]
			for i := 0; i < len(s.pts); i += 2 {
				kept = append(kept, s.pts[i])
			}
			s.pts = kept
			s.stride *= 2
		}
		if s.seen%s.stride == 0 {
			s.pts = append(s.pts, Point{T: t, V: v})
		}
	}
	s.seen++
}

// Len reports the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Seen reports the total number of observed samples.
func (s *Series) Seen() int64 { return s.seen }

// Points returns the retained points in time order.
func (s *Series) Points() []Point { return s.pts }

// seriesJSON is the marshalled form: points as [seconds, value] pairs.
type seriesJSON struct {
	Stride int64        `json:"stride"`
	Seen   int64        `json:"seen"`
	Points [][2]float64 `json:"points"`
}

// MarshalJSON renders the series with timestamps in seconds.
func (s *Series) MarshalJSON() ([]byte, error) {
	out := seriesJSON{Stride: s.stride, Seen: s.seen, Points: make([][2]float64, len(s.pts))}
	for i, p := range s.pts {
		out.Points[i] = [2]float64{p.T.Seconds(), p.V}
	}
	return json.Marshal(out)
}
