// Package metrics is the simulation-time observability layer: a registry of
// counters, gauges, fixed-bucket histograms and bounded time-series sampled
// per station and per stream by a passive mac.Observer, snapshotted into a
// deterministic JSON document after a run.
//
// The package is strictly passive (DESIGN.md §12): collectors consume no
// randomness, schedule nothing, and transmit nothing, so an instrumented run
// is byte-identical to a bare one at any -jobs value. Every map in the JSON
// output is keyed by name and Go's encoder sorts map keys, so the document
// bytes are a pure function of the run.
package metrics

import (
	"encoding/json"
	"math"
)

// Counter is a monotonically increasing event count.
type Counter struct{ N int64 }

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.N += d }

// MarshalJSON renders the bare number.
func (c *Counter) MarshalJSON() ([]byte, error) { return json.Marshal(c.N) }

// Gauge tracks the last, minimum and maximum of a sampled value.
type Gauge struct {
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int64   `json:"n"`
}

// Set records a sample.
func (g *Gauge) Set(v float64) {
	if g.N == 0 || v < g.Min {
		g.Min = v
	}
	if g.N == 0 || v > g.Max {
		g.Max = v
	}
	g.Last = v
	g.N++
}

// Histogram is a fixed-bucket histogram: Bounds are ascending upper bounds
// (a value v lands in the first bucket with v <= bound), and Counts has one
// extra overflow bucket for values above the last bound.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// NewHistogram returns a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the running mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile: the bound of
// the bucket in which the quantile falls (Max for the overflow bucket).
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// DelayBuckets returns the packet-delay bucket bounds in seconds: a
// geometric ladder from 1 ms to ~2 min, wide enough for the paper's
// saturated queues.
func DelayBuckets() []float64 {
	var b []float64
	for v := 0.001; v < 130; v *= 2 {
		b = append(b, v)
	}
	return b
}

// QueueBuckets returns the queue-depth bucket bounds.
func QueueBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// BackoffBuckets returns bucket bounds for backoff-counter values (slots);
// the paper's counters live in [MinBO=2, MaxBO=64].
func BackoffBuckets() []float64 {
	return []float64{2, 4, 8, 16, 32, 64, 128}
}

// Registry is a named bag of instruments with get-or-create accessors. The
// zero value is not useful; use NewRegistry. Its JSON form groups the
// instruments by kind, each map sorted by name.
type Registry struct {
	Counters   map[string]*Counter   `json:"counters,omitempty"`
	Gauges     map[string]*Gauge     `json:"gauges,omitempty"`
	Histograms map[string]*Histogram `json:"histograms,omitempty"`
	Series     map[string]*Series    `json:"series,omitempty"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		Counters:   make(map[string]*Counter),
		Gauges:     make(map[string]*Gauge),
		Histograms: make(map[string]*Histogram),
		Series:     make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.Counters[name]
	if c == nil {
		c = &Counter{}
		r.Counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.Gauges[name]
	if g == nil {
		g = &Gauge{}
		r.Gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.Histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.Histograms[name] = h
	}
	return h
}

// TimeSeries returns the named series, creating it on first use.
func (r *Registry) TimeSeries(name string) *Series {
	s := r.Series[name]
	if s == nil {
		s = &Series{}
		r.Series[name] = s
	}
	return s
}
