package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Sink aggregates the RunMetrics of many runs into one JSON document, keyed
// by a deterministic run label assigned at submission time (e.g.
// "table2/MILD copy"). Labels are stated by the generator code, not by
// completion order, and the JSON encoder sorts map keys, so the document is
// byte-identical at any -jobs value. Add is safe for concurrent use.
type Sink struct {
	mu   sync.Mutex
	runs map[string]*RunMetrics
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{runs: make(map[string]*RunMetrics)} }

// Add stores one run's snapshot under its label.
func (s *Sink) Add(label string, rm *RunMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs[label] = rm
}

// Len reports the number of stored runs.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Run returns the snapshot stored under label, or nil.
func (s *Sink) Run(label string) *RunMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[label]
}

// Labels returns the stored run labels in sorted order — the same canonical
// order the JSON document uses, so callers enumerating runs see the
// submission-order-independent view the sink's determinism contract names
// (the trace sink's WriteJSONL sorts identically).
func (s *Sink) Labels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.runs))
	for l := range s.runs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes every stored run as one indented JSON document:
// {"runs": {label: RunMetrics, ...}}.
func (s *Sink) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Runs map[string]*RunMetrics `json:"runs"`
	}{Runs: s.runs})
}
