// Package backoff implements the backoff machinery of the paper: the BEB
// and MILD adjustment functions (§3.1), the backoff-copying scheme in which
// stations adopt the counter carried in overheard packet headers (§3.1), and
// the per-destination backoff tables of §3.4 with the local/remote/ESN/retry
// bookkeeping from Appendix B.
package backoff

import "macaw/internal/frame"

// Paper constants: "we have chosen BOmin = 2 and BOmax = 64".
const (
	DefaultMin = 2
	DefaultMax = 64
	// DefaultAlpha is the additive retry penalty ALPHA from Appendix B.
	DefaultAlpha = 1
)

// IDontKnow marks an unknown remote backoff estimate.
const IDontKnow = int(frame.IDontKnow)

// Strategy is a backoff adjustment algorithm: Inc is applied after a failed
// RTS (Finc), Dec after a successful exchange (Fdec).
type Strategy interface {
	Inc(x int) int
	Dec(x int) int
	Min() int
	Max() int
	Name() string
}

// BEB is binary exponential backoff: Finc(x) = min(2x, BOmax),
// Fdec(x) = BOmin.
type BEB struct {
	BOMin, BOMax int
}

// NewBEB returns BEB with the paper's bounds.
func NewBEB() BEB { return BEB{DefaultMin, DefaultMax} }

// Inc implements Strategy.
func (b BEB) Inc(x int) int { return min(2*x, b.BOMax) }

// Dec implements Strategy.
func (b BEB) Dec(int) int { return b.BOMin }

// Min implements Strategy.
func (b BEB) Min() int { return b.BOMin }

// Max implements Strategy.
func (b BEB) Max() int { return b.BOMax }

// Name implements Strategy.
func (BEB) Name() string { return "BEB" }

// MILD is multiplicative increase, linear decrease: Finc(x) =
// min(1.5x, BOmax), Fdec(x) = max(x-1, BOmin) (§3.1). The increase factor
// and decrease step are parameterized for sweep experiments; the zero values
// select the paper's 1.5 and 1 exactly.
type MILD struct {
	BOMin, BOMax int
	// IncNum/IncDen override the multiplicative increase factor:
	// Finc(x) = min(ceil(x·IncNum/IncDen), BOmax). Both zero selects the
	// paper's 3/2.
	IncNum, IncDen int
	// DecStep overrides the linear decrease step: Fdec(x) =
	// max(x-DecStep, BOmin). Zero selects the paper's 1.
	DecStep int
}

// NewMILD returns MILD with the paper's bounds.
func NewMILD() MILD { return MILD{BOMin: DefaultMin, BOMax: DefaultMax} }

// Inc implements Strategy.
func (m MILD) Inc(x int) int {
	num, den := m.IncNum, m.IncDen
	if num == 0 || den == 0 {
		num, den = 3, 2
	}
	return min((x*num+den-1)/den, m.BOMax) // ceil(x·num/den)
}

// Dec implements Strategy.
func (m MILD) Dec(x int) int {
	step := m.DecStep
	if step == 0 {
		step = 1
	}
	return max(x-step, m.BOMin)
}

// Min implements Strategy.
func (m MILD) Min() int { return m.BOMin }

// Max implements Strategy.
func (m MILD) Max() int { return m.BOMax }

// Name implements Strategy.
func (MILD) Name() string { return "MILD" }

// Policy is the interface the MAC layer programs against. A policy answers
// the contention window to use toward a destination and digests the backoff
// information carried by sent, received and overheard frames.
type Policy interface {
	// Backoff returns the current contention window, in slots, for
	// transmissions to dst.
	Backoff(dst frame.NodeID) int
	// StartExchange notes that a brand-new data packet exchange with dst
	// is beginning (advances the ESN in per-destination mode).
	StartExchange(dst frame.NodeID)
	// StampSend fills the frame's LocalBackoff, RemoteBackoff and ESN
	// header fields prior to transmission.
	StampSend(f *frame.Frame)
	// OnOverhear digests a frame addressed to somebody else. Appendix B:
	// RTS packets are ignored "because they may not carry the correct
	// backoff values".
	OnOverhear(f *frame.Frame)
	// OnReceive digests a frame addressed to this station.
	OnReceive(f *frame.Frame)
	// OnSuccess records a completed exchange with dst (Fdec).
	OnSuccess(dst frame.NodeID)
	// OnFailure records a failed RTS toward dst (Finc).
	OnFailure(dst frame.NodeID)
	// OnGiveUp records that the retry limit toward dst was exhausted and
	// the packet dropped.
	OnGiveUp(dst frame.NodeID)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
