package backoff

import "macaw/internal/frame"

// Single is the original MACA-style policy: one backoff counter governs
// transmissions to every destination. With Copy enabled it additionally
// implements §3.1's sharing scheme: "Whenever a station hears a packet, it
// copies that value into its own backoff counter."
type Single struct {
	strat Strategy
	copy  bool
	value int
}

// NewSingle returns a single-counter policy using strat, optionally copying
// overheard counters.
func NewSingle(strat Strategy, copyOverheard bool) *Single {
	return &Single{strat: strat, copy: copyOverheard, value: strat.Min()}
}

// Value returns the current counter, for tests and traces.
func (s *Single) Value() int { return s.value }

// Backoff implements Policy.
func (s *Single) Backoff(frame.NodeID) int { return s.value }

// StartExchange implements Policy (no per-exchange state in single mode).
func (s *Single) StartExchange(frame.NodeID) {}

// StampSend implements Policy.
func (s *Single) StampSend(f *frame.Frame) {
	f.LocalBackoff = int16(s.value)
	f.RemoteBackoff = frame.IDontKnow
	f.ESN = 0
}

// OnOverhear implements Policy. Table 1's fix: adopt the counter carried in
// the overheard header, clamped into [BOmin, BOmax] at adoption time. RTS
// packets are excluded, consistent with Appendix B, and a negative header
// (IDontKnow or garbage) carries no adoptable estimate at all.
func (s *Single) OnOverhear(f *frame.Frame) {
	if !s.copy || f.Type == frame.RTS || f.LocalBackoff < 0 {
		return
	}
	s.value = clamp(int(f.LocalBackoff), s.strat.Min(), s.strat.Max())
}

// OnReceive implements Policy. Frames addressed to this station do NOT
// overwrite the counter: the copying scheme shares congestion estimates
// among *bystanders* ("whenever a station hears a packet..."), while an
// exchange participant's counter must keep reflecting its own failures —
// otherwise every CTS a struggling sender finally elicits would reset the
// very backoff its timeouts accumulated, and two interfering cells can lock
// into a permanent low-backoff collision war.
func (s *Single) OnReceive(f *frame.Frame) {}

// OnSuccess implements Policy.
func (s *Single) OnSuccess(frame.NodeID) { s.value = s.strat.Dec(s.value) }

// OnFailure implements Policy.
func (s *Single) OnFailure(frame.NodeID) { s.value = s.strat.Inc(s.value) }

// OnGiveUp implements Policy. In single-counter mode abandoning a packet
// carries no extra state beyond the failures already recorded.
func (s *Single) OnGiveUp(frame.NodeID) {}
