package backoff

import (
	"fmt"

	"macaw/internal/frame"
)

// This file is the backoff layer's side of warm-started forking (DESIGN.md
// §15): a freshly built policy adopts the counters of a warmed twin. The
// strategy parameters must already match — they are build-time configuration,
// and a fork is only valid against an identically built network.

// Adopter is implemented by policies that support warm-started forking.
type Adopter interface {
	// AdoptFrom copies the warm twin's counters into the receiver, failing
	// closed when the two policies are observably different shapes.
	AdoptFrom(w Policy) error
}

// Adopt copies w's state into p when both sides support forking.
func Adopt(p, w Policy) error {
	a, ok := p.(Adopter)
	if !ok {
		return fmt.Errorf("backoff: adopt: policy %T does not support forking", p)
	}
	return a.AdoptFrom(w)
}

// AdoptFrom implements Adopter.
func (s *Single) AdoptFrom(w Policy) error {
	ws, ok := w.(*Single)
	if !ok {
		return fmt.Errorf("backoff: adopt: policy is %T here vs %T in warm twin", s, w)
	}
	if s.strat != ws.strat || s.copy != ws.copy {
		return fmt.Errorf("backoff: adopt: single policy parameters differ (%+v copy=%t here vs %+v copy=%t)",
			s.strat, s.copy, ws.strat, ws.copy)
	}
	s.value = ws.value
	return nil
}

// AdoptFrom implements Adopter. Peer entries are deep-copied — they are
// plain counters — so the twins never alias each other's tables.
func (p *PerDest) AdoptFrom(w Policy) error {
	wp, ok := w.(*PerDest)
	if !ok {
		return fmt.Errorf("backoff: adopt: policy is %T here vs %T in warm twin", p, w)
	}
	if p.strat != wp.strat || p.Alpha != wp.Alpha {
		return fmt.Errorf("backoff: adopt: per-dest policy parameters differ (%+v alpha=%d here vs %+v alpha=%d)",
			p.strat, p.Alpha, wp.strat, wp.Alpha)
	}
	p.My = wp.My
	p.peers = make(map[frame.NodeID]*Peer, len(wp.peers))
	for id, pe := range wp.peers {
		cp := *pe
		p.peers[id] = &cp
	}
	return nil
}
