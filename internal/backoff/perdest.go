package backoff

import (
	"sort"

	"macaw/internal/frame"
)

// Peer is the per-remote-station state of Appendix B. The pseudocode's
// exchange_seq_number and retry_count each serve two distinct roles —
// numbering our own exchanges toward the peer and tracking the peer's
// exchanges toward us — which this implementation keeps separate.
type Peer struct {
	// Local is the local end's counter for this stream ("the backoff
	// value at this station as estimated by the remote station").
	Local int
	// Remote is the estimated backoff value for the remote station, or
	// IDontKnow.
	Remote int
	// SendESN numbers our own packet exchanges toward the peer.
	SendESN uint32
	// SendRetry counts our transmission attempts for the current packet.
	SendRetry int
	// SeenESN is the highest exchange number observed from the peer.
	SeenESN uint32
	// SeenRetry counts observed retransmissions of the peer's current
	// exchange.
	SeenRetry int
}

// PerDest is the per-destination backoff policy of §3.4 and Appendix B.
// Each station keeps its own counter (My) plus, for every remote station, a
// local/remote pair; the contention window toward a destination combines
// the congestion estimates of both ends by summing them (footnote 9).
type PerDest struct {
	strat Strategy
	// Alpha is the additive retry penalty from the Appendix B pseudocode.
	Alpha int
	// My is "the backoff value at this station".
	My    int
	peers map[frame.NodeID]*Peer
}

// NewPerDest returns a per-destination policy using strat.
func NewPerDest(strat Strategy) *PerDest {
	return &PerDest{strat: strat, Alpha: DefaultAlpha, My: strat.Min(), peers: make(map[frame.NodeID]*Peer)}
}

// Peer returns the bookkeeping entry for id, creating it on first use.
func (p *PerDest) Peer(id frame.NodeID) *Peer {
	pe := p.peers[id]
	if pe == nil {
		pe = &Peer{Local: p.My, Remote: IDontKnow, SendESN: 1, SendRetry: 1}
		p.peers[id] = pe
	}
	return pe
}

// PeerIDs lists the stations with bookkeeping entries in ascending order —
// introspection for the fault watchdog's stale-entry checks.
func (p *PerDest) PeerIDs() []frame.NodeID {
	ids := make([]frame.NodeID, 0, len(p.peers))
	for id := range p.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (p *PerDest) clamp(v int) int { return clamp(v, p.strat.Min(), p.strat.Max()) }

// headerVal sanitizes a backoff counter copied from a packet header at
// adoption time (§3.1): out-of-range values — a corrupted-but-accepted or
// legacy header — are clamped into [BOmin, BOmax], and any negative value
// (IDontKnow or garbage) is reported as unknown rather than clamped into a
// confident estimate. Valid headers pass through unchanged.
func (p *PerDest) headerVal(v int16) (int, bool) {
	if v < 0 {
		return 0, false
	}
	return p.clamp(int(v)), true
}

// bump adds d to a possibly-unknown estimate.
func (p *PerDest) bump(v, d int) int {
	if v == IDontKnow {
		v = p.strat.Min()
	}
	return p.clamp(v + d)
}

// Backoff implements Policy: the sum of the congestion estimates at both
// ends of the stream.
func (p *PerDest) Backoff(dst frame.NodeID) int {
	pe := p.Peer(dst)
	bo := pe.Local
	if pe.Remote != IDontKnow {
		bo += pe.Remote
	}
	return clamp(bo, p.strat.Min(), 2*p.strat.Max())
}

// StartExchange implements Policy: at the beginning of a new packet the
// stream's local counter re-synchronizes with my_backoff and the exchange
// sequence number advances.
func (p *PerDest) StartExchange(dst frame.NodeID) {
	pe := p.Peer(dst)
	pe.Local = p.My
	pe.SendESN++
	pe.SendRetry = 1
}

// StampSend implements Policy.
func (p *PerDest) StampSend(f *frame.Frame) {
	pe := p.Peer(f.Dst)
	f.LocalBackoff = int16(pe.Local)
	f.RemoteBackoff = int16(pe.Remote)
	f.ESN = pe.SendESN
}

// OnOverhear implements Policy. Appendix B: "When a pad P hears a packet,
// other than an RTS, from Q to R, P updates its estimate about Q and R's
// contention levels by copying the local_backoff and remote_backoff values
// carried in the packet. In addition, P also copies Q's backoff value as
// its own backoff, assuming that Q is a nearby station." The my_backoff
// copy mixes neighbourhood congestion both ways: it leaks high values
// across cell borders (the §3.4 leakage caveat) but is also the only
// channel through which an overheated sender/receiver pair cools back down
// to its neighbourhood's level.
func (p *PerDest) OnOverhear(f *frame.Frame) {
	if f.Type == frame.RTS {
		return
	}
	if local, ok := p.headerVal(f.LocalBackoff); ok {
		p.Peer(f.Src).Remote = local
		p.My = local
	}
	if remote, ok := p.headerVal(f.RemoteBackoff); ok {
		p.Peer(f.Dst).Remote = remote
	}
}

// OnReceive implements Policy, the Appendix B receive rule.
//
// The values carried by an RTS are never adopted — extending the copying
// rules' own rationale that RTS packets "may not carry the correct backoff
// values" (the sender has not completed a handshake that would validate
// them) — but a repeated RTS for the same exchange is direct evidence of a
// collision at the sender's end, so the peer's estimate is penalized by the
// observed retry count times ALPHA.
//
// Post-handshake frames (CTS, DS, DATA, ACK) carry authoritative values:
// the peer's estimate is refreshed, and the peer's view of *our* congestion
// is adopted as our local counter and my_backoff.
func (p *PerDest) OnReceive(f *frame.Frame) {
	pe := p.Peer(f.Src)
	local, okLocal := p.headerVal(f.LocalBackoff)
	if f.Type == frame.RTS {
		switch {
		case f.ESN > pe.SeenESN:
			pe.SeenESN = f.ESN
			pe.SeenRetry = 1
		case f.ESN < pe.SeenESN:
			// ESN regression. Exchange numbers only grow within one
			// lifetime of the peer, and the medium delivers each
			// sender's frames in transmit order, so a smaller number
			// means the peer rebooted and is numbering from scratch.
			// Resynchronize the entry as if this were a first RTS;
			// without the reset every frame from the restarted peer
			// would be discarded as stale against the dead
			// instance's high-water mark.
			pe.SeenESN = f.ESN
			pe.SeenRetry = 1
		case f.ESN == pe.SeenESN:
			// "Q's backoff = local_backoff + retry_count * ALPHA" —
			// a replacement anchored to the packet's claim, not a
			// cumulative bump: the estimate stays bounded by the
			// retry limit instead of ratcheting to the maximum.
			if okLocal {
				pe.Remote = p.clamp(local + pe.SeenRetry*p.Alpha)
				if remote, ok := p.headerVal(f.RemoteBackoff); ok {
					// "P's local_backoff = (local_backoff +
					// remote_backoff) - Q's backoff": the sum of
					// the two ends is preserved regardless of
					// which end the collision charged.
					pe.Local = p.clamp(local + remote - pe.Remote)
				}
			}
			pe.SeenRetry++
		}
		return
	}
	// An ESN below the high-water mark is a regression, not a stale frame
	// (per-sender delivery is ordered): the peer rebooted, and its fresh
	// post-handshake values are authoritative — adopt them.
	pe.SeenESN = f.ESN
	pe.SeenRetry = 1
	if okLocal {
		pe.Remote = local
	}
	if remote, ok := p.headerVal(f.RemoteBackoff); ok {
		pe.Local = remote
		p.My = pe.Local
	}
}

// OnSuccess implements Policy: a completed exchange applies Fdec to both
// ends' estimates and resynchronizes my_backoff.
func (p *PerDest) OnSuccess(dst frame.NodeID) {
	pe := p.Peer(dst)
	pe.Local = p.strat.Dec(pe.Local)
	if pe.Remote != IDontKnow {
		pe.Remote = p.strat.Dec(pe.Remote)
	}
	p.My = pe.Local
	pe.SendRetry = 1
}

// OnFailure implements Policy: an RTS that evoked no response indicates
// congestion at the receiver's end. Appendix B's timeout rule is additive —
// "Q's backoff += retry_count * ALPHA" — so repeated retries of one packet
// escalate (1+2+3+...) while an isolated collision costs only ALPHA. (A
// multiplicative Finc here would let a busy neighbour starve a lightly
// loaded sender permanently: each rare success undoes only Fdec's worth.)
func (p *PerDest) OnFailure(dst frame.NodeID) {
	pe := p.Peer(dst)
	pe.Remote = p.bump(pe.Remote, pe.SendRetry*p.Alpha)
	pe.SendRetry++
}

// OnGiveUp implements Policy: "If reached max_retry_count, P's
// local_backoff used with Q = MAX_BACKOFF." The pseudocode also resets Q's
// estimate to I_DONT_KNOW; this implementation keeps the accumulated remote
// estimate instead — forgetting it (while the next packet re-syncs the
// local counter with my_backoff) would erase all memory of the congestion
// that caused the drop, letting a jammed sender return at full aggression
// after every discarded packet. The estimate still decays normally through
// Fdec on success and the copying rules.
func (p *PerDest) OnGiveUp(dst frame.NodeID) {
	pe := p.Peer(dst)
	pe.Local = p.strat.Max()
	pe.SendRetry = 1
}
