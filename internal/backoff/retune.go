package backoff

import "fmt"

// This file provides the live retuning hooks behind warm-started parameter
// sweeps (DESIGN.md §15): a delta applied at a barrier rewrites strategy
// constants — bounds, the MILD increase factor and decrease step — inside
// the policies of a running network. Counters are left untouched; the new
// constants take effect from the next adjustment, identically on a cold run
// and a warm fork applying the same delta at the same barrier.

// retuneStrategy rewrites p's strategy in place via fn.
func retuneStrategy(p Policy, fn func(Strategy) (Strategy, error)) error {
	switch pp := p.(type) {
	case *Single:
		st, err := fn(pp.strat)
		if err != nil {
			return err
		}
		pp.strat = st
		return nil
	case *PerDest:
		st, err := fn(pp.strat)
		if err != nil {
			return err
		}
		pp.strat = st
		return nil
	default:
		return fmt.Errorf("backoff: retune: policy %T has no strategy hook", p)
	}
}

// SetBOMin rewrites the strategy's BOmin, keeping its BOmax.
func SetBOMin(p Policy, bomin int) error { return setBounds(p, bomin, 0) }

// SetBOMax rewrites the strategy's BOmax, keeping its BOmin.
func SetBOMax(p Policy, bomax int) error { return setBounds(p, 0, bomax) }

// setBounds rewrites whichever bound is non-zero, validating the pair.
func setBounds(p Policy, bomin, bomax int) error {
	pick := func(curMin, curMax int) (int, int, error) {
		if bomin != 0 {
			curMin = bomin
		}
		if bomax != 0 {
			curMax = bomax
		}
		if curMin < 1 || curMax < curMin {
			return 0, 0, fmt.Errorf("backoff: retune: invalid bounds [%d, %d]", curMin, curMax)
		}
		return curMin, curMax, nil
	}
	return retuneStrategy(p, func(s Strategy) (Strategy, error) {
		switch st := s.(type) {
		case BEB:
			lo, hi, err := pick(st.BOMin, st.BOMax)
			if err != nil {
				return nil, err
			}
			st.BOMin, st.BOMax = lo, hi
			return st, nil
		case MILD:
			lo, hi, err := pick(st.BOMin, st.BOMax)
			if err != nil {
				return nil, err
			}
			st.BOMin, st.BOMax = lo, hi
			return st, nil
		default:
			return nil, fmt.Errorf("backoff: retune: strategy %T has no bounds", s)
		}
	})
}

// SetMILDInc rewrites the MILD increase factor to num/den. Policies using a
// non-MILD strategy are left untouched (a deterministic no-op), so one sweep
// delta can cover a mixed-protocol table.
func SetMILDInc(p Policy, num, den int) error {
	if num < den || den < 1 {
		return fmt.Errorf("backoff: retune: increase factor %d/%d below 1", num, den)
	}
	return retuneStrategy(p, func(s Strategy) (Strategy, error) {
		if st, ok := s.(MILD); ok {
			st.IncNum, st.IncDen = num, den
			return st, nil
		}
		return s, nil
	})
}

// SetMILDDec rewrites the MILD decrease step; non-MILD strategies are a
// deterministic no-op. A step wider than the strategy's window span
// (BOmax - BOmin) is rejected: every decrease would clamp straight to the
// floor, so the configured value would silently not be the effective one —
// the sweep layer requires that to fail at validation time instead.
func SetMILDDec(p Policy, step int) error {
	if step < 1 {
		return fmt.Errorf("backoff: retune: non-positive decrease step %d", step)
	}
	return retuneStrategy(p, func(s Strategy) (Strategy, error) {
		if st, ok := s.(MILD); ok {
			if span := st.BOMax - st.BOMin; step > span {
				return nil, fmt.Errorf("backoff: retune: decrease step %d exceeds window span %d (BOmax %d - BOmin %d): every decrease would clamp to the floor",
					step, span, st.BOMax, st.BOMin)
			}
			st.DecStep = step
			return st, nil
		}
		return s, nil
	})
}
