package backoff

import (
	"testing"
	"testing/quick"

	"macaw/internal/frame"
)

func TestBEBAdjustments(t *testing.T) {
	b := NewBEB()
	if b.Name() != "BEB" || b.Min() != 2 || b.Max() != 64 {
		t.Fatalf("BEB identity wrong: %+v", b)
	}
	if got := b.Inc(2); got != 4 {
		t.Fatalf("Inc(2) = %d, want 4", got)
	}
	if got := b.Inc(48); got != 64 {
		t.Fatalf("Inc(48) = %d, want 64 (capped)", got)
	}
	// BEB resets to the minimum on success regardless of current value.
	if got := b.Dec(64); got != 2 {
		t.Fatalf("Dec(64) = %d, want 2", got)
	}
}

func TestMILDAdjustments(t *testing.T) {
	m := NewMILD()
	if m.Name() != "MILD" || m.Min() != 2 || m.Max() != 64 {
		t.Fatalf("MILD identity wrong: %+v", m)
	}
	if got := m.Inc(2); got != 3 {
		t.Fatalf("Inc(2) = %d, want 3", got)
	}
	if got := m.Inc(4); got != 6 {
		t.Fatalf("Inc(4) = %d, want 6", got)
	}
	if got := m.Inc(5); got != 8 { // ceil(7.5)
		t.Fatalf("Inc(5) = %d, want 8", got)
	}
	if got := m.Inc(60); got != 64 {
		t.Fatalf("Inc(60) = %d, want 64 (capped)", got)
	}
	// MILD decreases by one, not to the minimum.
	if got := m.Dec(10); got != 9 {
		t.Fatalf("Dec(10) = %d, want 9", got)
	}
	if got := m.Dec(2); got != 2 {
		t.Fatalf("Dec(2) = %d, want 2 (floored)", got)
	}
}

// Property: both strategies keep the counter within [BOmin, BOmax] under any
// sequence of adjustments.
func TestQuickStrategiesStayBounded(t *testing.T) {
	for _, s := range []Strategy{NewBEB(), NewMILD()} {
		s := s
		f := func(ops []bool) bool {
			x := s.Min()
			for _, inc := range ops {
				if inc {
					x = s.Inc(x)
				} else {
					x = s.Dec(x)
				}
				if x < s.Min() || x > s.Max() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// Property: MILD increases dominate decreases (§3.4: "the multiplicative
// backoff increases will always dominate the additive backoff decreases").
func TestMILDIncreaseDominates(t *testing.T) {
	m := NewMILD()
	for x := m.Min(); x < m.Max(); x++ {
		up := m.Inc(x)
		down := m.Dec(up)
		if x > 2 && down < x {
			t.Fatalf("Inc then Dec from %d fell to %d", x, down)
		}
	}
}

func TestSingleLifecycle(t *testing.T) {
	p := NewSingle(NewBEB(), false)
	if p.Value() != 2 || p.Backoff(5) != 2 {
		t.Fatalf("initial value = %d, want BOmin", p.Value())
	}
	p.OnFailure(5)
	p.OnFailure(5)
	if p.Value() != 8 {
		t.Fatalf("after 2 failures = %d, want 8", p.Value())
	}
	// Failure to one destination inflates the shared counter for all.
	if p.Backoff(9) != 8 {
		t.Fatal("single counter not shared across destinations")
	}
	p.OnSuccess(5)
	if p.Value() != 2 {
		t.Fatalf("after success = %d, want 2", p.Value())
	}
	p.OnGiveUp(5) // no-op, but must not panic
	p.StartExchange(5)
}

func TestSingleStamp(t *testing.T) {
	p := NewSingle(NewMILD(), true)
	p.OnFailure(1)
	f := &frame.Frame{Type: frame.DATA, Src: 1, Dst: 2}
	p.StampSend(f)
	if f.LocalBackoff != 3 || f.RemoteBackoff != frame.IDontKnow {
		t.Fatalf("stamp = local %d remote %d", f.LocalBackoff, f.RemoteBackoff)
	}
}

func TestSingleCopyFromOverheard(t *testing.T) {
	p := NewSingle(NewBEB(), true)
	p.OnOverhear(&frame.Frame{Type: frame.CTS, LocalBackoff: 17})
	if p.Value() != 17 {
		t.Fatalf("copy failed: %d", p.Value())
	}
	// RTS packets are ignored by the copy rule.
	p.OnOverhear(&frame.Frame{Type: frame.RTS, LocalBackoff: 40})
	if p.Value() != 17 {
		t.Fatal("copied from an RTS")
	}
	// Copied values are clamped into the legal window.
	p.OnOverhear(&frame.Frame{Type: frame.CTS, LocalBackoff: 1000})
	if p.Value() != 64 {
		t.Fatalf("copy not clamped: %d", p.Value())
	}
	// Frames addressed to this station must NOT reset the counter.
	p.OnReceive(&frame.Frame{Type: frame.DATA, LocalBackoff: 9})
	if p.Value() != 64 {
		t.Fatal("OnReceive overwrote the participant's own counter")
	}
}

func TestSingleNoCopyIgnoresOverheard(t *testing.T) {
	p := NewSingle(NewBEB(), false)
	p.OnOverhear(&frame.Frame{Type: frame.CTS, LocalBackoff: 17})
	if p.Value() != 2 {
		t.Fatal("no-copy policy copied anyway")
	}
}

func TestPerDestInitialState(t *testing.T) {
	p := NewPerDest(NewMILD())
	if p.Backoff(7) != 2 {
		t.Fatalf("initial backoff = %d, want BOmin", p.Backoff(7))
	}
	pe := p.Peer(7)
	if pe.Remote != IDontKnow || pe.Local != 2 {
		t.Fatalf("initial peer = %+v", pe)
	}
}

func TestPerDestFailureIsolation(t *testing.T) {
	// The Table 8 mechanism: failures toward a dead pad must not inflate
	// the window used toward live pads.
	p := NewPerDest(NewMILD())
	for i := 0; i < 20; i++ {
		p.OnFailure(1) // dead pad: consecutive retries cost 1+2+3+...
	}
	if p.Backoff(1) < 60 {
		t.Fatalf("dead-pad backoff = %d, want large", p.Backoff(1))
	}
	if got := p.Backoff(2); got != 2 {
		t.Fatalf("live-pad backoff = %d, want 2", got)
	}
}

func TestPerDestSumsBothEnds(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(3)
	pe.Local, pe.Remote = 10, 20
	if got := p.Backoff(3); got != 30 {
		t.Fatalf("Backoff = %d, want 30 (sum of ends)", got)
	}
	pe.Remote = IDontKnow
	if got := p.Backoff(3); got != 10 {
		t.Fatalf("Backoff with unknown remote = %d, want 10", got)
	}
}

func TestPerDestStartExchange(t *testing.T) {
	p := NewPerDest(NewMILD())
	p.My = 12
	p.StartExchange(4)
	pe := p.Peer(4)
	if pe.Local != 12 {
		t.Fatalf("StartExchange did not sync local with my_backoff: %d", pe.Local)
	}
	if pe.SendESN != 2 || pe.SendRetry != 1 {
		t.Fatalf("StartExchange state = %+v", pe)
	}
}

func TestPerDestStamp(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(4)
	pe.Local, pe.Remote, pe.SendESN = 7, 9, 3
	f := &frame.Frame{Type: frame.RTS, Src: 1, Dst: 4}
	p.StampSend(f)
	if f.LocalBackoff != 7 || f.RemoteBackoff != 9 || f.ESN != 3 {
		t.Fatalf("stamp = %+v", f)
	}
}

func TestPerDestOverhearCopies(t *testing.T) {
	p := NewPerDest(NewMILD())
	f := &frame.Frame{Type: frame.CTS, Src: 5, Dst: 6, LocalBackoff: 11, RemoteBackoff: 13}
	p.OnOverhear(f)
	if p.Peer(5).Remote != 11 {
		t.Fatalf("Q's backoff = %d, want 11", p.Peer(5).Remote)
	}
	if p.Peer(6).Remote != 13 {
		t.Fatalf("R's backoff = %d, want 13", p.Peer(6).Remote)
	}
	if p.My != 11 {
		t.Fatalf("my_backoff = %d, want 11 (copied from the neighbour)", p.My)
	}
}

func TestPerDestOverhearIgnoresRTSAndIDK(t *testing.T) {
	p := NewPerDest(NewMILD())
	p.OnOverhear(&frame.Frame{Type: frame.RTS, Src: 5, Dst: 6, LocalBackoff: 11})
	if p.Peer(5).Remote != IDontKnow {
		t.Fatal("copied from an RTS")
	}
	p.OnOverhear(&frame.Frame{Type: frame.CTS, Src: 5, Dst: 6, LocalBackoff: 11, RemoteBackoff: frame.IDontKnow})
	if p.Peer(6).Remote != IDontKnow {
		t.Fatal("copied an I_DONT_KNOW remote value")
	}
}

func TestPerDestReceiveRTSTracksOnlyESN(t *testing.T) {
	// RTS values are never adopted ("may not carry the correct backoff
	// values"), but the exchange number is tracked.
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	f := &frame.Frame{Type: frame.RTS, Src: 5, Dst: 1, LocalBackoff: 8, RemoteBackoff: 6, ESN: 2}
	p.OnReceive(f)
	if pe.Remote != IDontKnow || pe.Local != 2 || p.My != 2 {
		t.Fatalf("RTS values adopted: %+v my=%d", pe, p.My)
	}
	if pe.SeenESN != 2 || pe.SeenRetry != 1 {
		t.Fatalf("seen esn/retry = %d/%d", pe.SeenESN, pe.SeenRetry)
	}
}

func TestPerDestRepeatedRTSPenalizesRemote(t *testing.T) {
	// A retransmitted RTS (same exchange number) is observed evidence of
	// congestion at the sender's end of the exchange.
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	rts := &frame.Frame{Type: frame.RTS, Src: 5, Dst: 1, LocalBackoff: 4, RemoteBackoff: frame.IDontKnow, ESN: 2}
	p.OnReceive(rts) // new exchange
	p.OnReceive(rts) // retransmission: claim + 1*ALPHA
	p.OnReceive(rts) // retransmission: claim + 2*ALPHA
	if pe.Remote != 4+2 {
		t.Fatalf("remote = %d, want 6 (claim-anchored)", pe.Remote)
	}
	if pe.SeenRetry != 3 {
		t.Fatalf("seen retry = %d, want 3", pe.SeenRetry)
	}
}

func TestPerDestReceiveValidatedFrameAdoptsValues(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	f := &frame.Frame{Type: frame.CTS, Src: 5, Dst: 1, LocalBackoff: 8, RemoteBackoff: 6, ESN: 2}
	p.OnReceive(f)
	if pe.Remote != 8 {
		t.Fatalf("remote = %d, want 8", pe.Remote)
	}
	if pe.Local != 6 || p.My != 6 {
		t.Fatalf("local = %d my = %d, want 6", pe.Local, p.My)
	}
}

func TestPerDestReceiveESNRegressionResyncs(t *testing.T) {
	// An ESN below the high-water mark cannot be a delayed frame (the
	// medium delivers each sender's frames in order): it means the peer
	// rebooted and is numbering exchanges from scratch. The entry must
	// resynchronize — post-handshake values are adopted — or every frame
	// from the restarted peer would be discarded against the dead
	// instance's mark.
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	pe.SeenESN = 9
	p.My = 7
	f := &frame.Frame{Type: frame.DATA, Src: 5, Dst: 1, LocalBackoff: 8, RemoteBackoff: 3, ESN: 4}
	p.OnReceive(f)
	if pe.SeenESN != 4 || pe.Remote != 8 || pe.Local != 3 || p.My != 3 {
		t.Fatalf("regression not resynced: %+v my=%d", pe, p.My)
	}
}

func TestPerDestRTSESNRegressionResyncs(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	pe.SeenESN = 9
	pe.SeenRetry = 3
	f := &frame.Frame{Type: frame.RTS, Src: 5, Dst: 1, LocalBackoff: 8, RemoteBackoff: 3, ESN: 2}
	p.OnReceive(f)
	if pe.SeenESN != 2 || pe.SeenRetry != 1 {
		t.Fatalf("RTS regression not resynced: %+v", pe)
	}
	if pe.Remote != IDontKnow {
		t.Fatalf("RTS values adopted: %+v", pe)
	}
}

func TestPerDestReceiveIDKRemoteKeepsLocal(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	pe.Local = 9
	f := &frame.Frame{Type: frame.CTS, Src: 5, Dst: 1, LocalBackoff: 8, RemoteBackoff: frame.IDontKnow, ESN: 2}
	p.OnReceive(f)
	if pe.Local != 9 {
		t.Fatalf("local = %d, want 9 (unchanged)", pe.Local)
	}
}

func TestPerDestSuccessDecrementsBothEnds(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	pe.Local, pe.Remote = 10, 20
	p.OnSuccess(5)
	if pe.Local != 9 || pe.Remote != 19 {
		t.Fatalf("after success: %+v", pe)
	}
	if p.My != 9 {
		t.Fatalf("my_backoff = %d, want 9", p.My)
	}
}

func TestPerDestGiveUp(t *testing.T) {
	p := NewPerDest(NewMILD())
	pe := p.Peer(5)
	pe.Remote = 30
	p.OnGiveUp(5)
	if pe.Local != 64 {
		t.Fatalf("after give-up: %+v", pe)
	}
	if pe.Remote != 30 {
		t.Fatalf("give-up erased the congestion estimate: %+v", pe)
	}
}

// Property: per-destination backoff always lies within [BOmin, 2*BOmax]
// under arbitrary interleavings of the policy operations.
func TestQuickPerDestBounded(t *testing.T) {
	f := func(ops []uint8, dsts []uint8) bool {
		p := NewPerDest(NewMILD())
		for i, op := range ops {
			var dst frame.NodeID = 1
			if len(dsts) > 0 {
				dst = frame.NodeID(dsts[i%len(dsts)]%4) + 1
			}
			switch op % 6 {
			case 0:
				p.OnFailure(dst)
			case 1:
				p.OnSuccess(dst)
			case 2:
				p.OnGiveUp(dst)
			case 3:
				p.StartExchange(dst)
			case 4:
				p.OnOverhear(&frame.Frame{Type: frame.CTS, Src: 7, Dst: 8,
					LocalBackoff: int16(op), RemoteBackoff: int16(op / 2)})
			case 5:
				ty := frame.DATA
				if op%2 == 0 {
					ty = frame.RTS
				}
				p.OnReceive(&frame.Frame{Type: ty, Src: dst, Dst: 0,
					LocalBackoff: int16(op), RemoteBackoff: frame.IDontKnow, ESN: uint32(op)})
			}
			bo := p.Backoff(dst)
			if bo < 2 || bo > 128 {
				return false
			}
			if p.My < 2 || p.My > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The capture pathology of Table 1, reproduced at the policy level: under
// BEB without copying, a station that wins keeps a minimal counter while the
// loser's grows; with copying both see the same value after any packet.
func TestCopyEqualizesCounters(t *testing.T) {
	winner := NewSingle(NewBEB(), true)
	loser := NewSingle(NewBEB(), true)
	winner.OnSuccess(1)
	loser.OnFailure(1)
	loser.OnFailure(1)
	// Winner transmits a DATA packet; loser overhears it.
	f := &frame.Frame{Type: frame.DATA, Src: 1, Dst: 2}
	winner.StampSend(f)
	loser.OnOverhear(f)
	if loser.Value() != winner.Value() {
		t.Fatalf("copy failed to equalize: %d vs %d", loser.Value(), winner.Value())
	}
}

// TestHeaderSanitizedAtAdoption: backoff counters copied out of overheard
// or received packet headers are clamped into [BOmin, BOmax] at adoption
// time, and negative values are treated as unknown rather than clamped
// into a confident estimate.
func TestHeaderSanitizedAtAdoption(t *testing.T) {
	p := NewPerDest(NewMILD())
	// An overheard CTS advertising absurd counters is clamped, not
	// adopted verbatim.
	p.OnOverhear(&frame.Frame{Type: frame.CTS, Src: 7, Dst: 8, LocalBackoff: 30000, RemoteBackoff: 21000})
	if got := p.Peer(7).Remote; got != DefaultMax {
		t.Fatalf("overheard local 30000 adopted as %d, want clamp to %d", got, DefaultMax)
	}
	if p.My != DefaultMax {
		t.Fatalf("my_backoff copied as %d, want clamp to %d", p.My, DefaultMax)
	}
	if got := p.Peer(8).Remote; got != DefaultMax {
		t.Fatalf("overheard remote 21000 adopted as %d, want clamp to %d", got, DefaultMax)
	}
	// Below the window clamps up to BOmin.
	p.OnOverhear(&frame.Frame{Type: frame.DATA, Src: 7, Dst: 8, LocalBackoff: 0, RemoteBackoff: 1})
	if got := p.Peer(7).Remote; got != DefaultMin {
		t.Fatalf("overheard local 0 adopted as %d, want clamp to %d", got, DefaultMin)
	}
	// Negative headers are unknown, not estimates.
	q := NewPerDest(NewMILD())
	q.OnOverhear(&frame.Frame{Type: frame.ACK, Src: 7, Dst: 8, LocalBackoff: -7, RemoteBackoff: frame.IDontKnow})
	if got := q.Peer(7).Remote; got != IDontKnow {
		t.Fatalf("overheard local -7 adopted as %d, want IDontKnow", got)
	}
	if q.My != DefaultMin {
		t.Fatalf("my_backoff moved to %d by a negative header", q.My)
	}
	if got := q.Peer(8).Remote; got != IDontKnow {
		t.Fatalf("overheard IDontKnow remote adopted as %d", got)
	}
	// The validated-receive path sanitizes the same way.
	r := NewPerDest(NewMILD())
	r.OnReceive(&frame.Frame{Type: frame.CTS, Src: 7, Dst: 1, ESN: 1, LocalBackoff: 30000, RemoteBackoff: -3})
	if got := r.Peer(7).Remote; got != DefaultMax {
		t.Fatalf("received local 30000 adopted as %d, want clamp to %d", got, DefaultMax)
	}
	if got := r.Peer(7).Local; got != DefaultMin {
		t.Fatalf("received negative remote moved local counter to %d", got)
	}
}
