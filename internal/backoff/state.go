package backoff

import "fmt"

// This file is the backoff layer's contribution to the snapshot state
// inventory (DESIGN.md §14). The per-destination tables are the paper's
// distributed congestion estimate — exactly the state the chaos suite's
// crash/restart faults stress — so every counter and ESN high-water mark is
// dumped, with peers in ascending id order (the map's only canonical
// ordering).

// AppendState appends the single-counter policy's state.
func (s *Single) AppendState(b []byte) []byte {
	return fmt.Appendf(b, "backoff.single value=%d copy=%t\n", s.value, s.copy)
}

// AppendState appends the per-destination policy's full table.
func (p *PerDest) AppendState(b []byte) []byte {
	b = fmt.Appendf(b, "backoff.perdest my=%d alpha=%d peers=%d\n", p.My, p.Alpha, len(p.peers))
	for _, id := range p.PeerIDs() {
		pe := p.peers[id]
		b = fmt.Appendf(b, "  peer id=%d local=%d remote=%d sendESN=%d sendRetry=%d seenESN=%d seenRetry=%d\n",
			id, pe.Local, pe.Remote, pe.SendESN, pe.SendRetry, pe.SeenESN, pe.SeenRetry)
	}
	return b
}
