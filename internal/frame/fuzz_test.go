package frame

import (
	"reflect"
	"testing"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it must
// never panic, and any buffer it accepts must re-encode to the identical
// bytes (canonical round trip).
func FuzzUnmarshal(f *testing.F) {
	seed := &Frame{Type: DATA, Src: 1, Dst: 2, DataBytes: 512, Seq: 9,
		LocalBackoff: 3, RemoteBackoff: IDontKnow, ESN: 4, Ack: 8,
		Multicast: true, AckRequested: true, HasAck: true, Payload: []byte("seed")}
	b, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte{})
	f.Add([]byte{0x4D, 0x41, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := fr.Marshal()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(fr, back) {
			t.Fatalf("canonical round trip diverged:\n%+v\n%+v", fr, back)
		}
	})
}
